//! Umbrella crate for the CHOCO reproduction: re-exports every workspace crate.
//!
//! Use the individual crates directly for development; this crate exists so
//! the repository-level examples and integration tests have a single
//! dependency root.

#![forbid(unsafe_code)]
pub use choco;
pub use choco_apps as apps;
pub use choco_he as he;
pub use choco_math as math;
pub use choco_prng as prng;
pub use choco_taco as taco;
