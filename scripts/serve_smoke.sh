#!/usr/bin/env bash
# Loopback smoke test for the choco-serve binary, two phases:
#   1. boot the real server process on an ephemeral port, run the load
#      generator against it over TCP, take a stats snapshot, drain
#      gracefully via stdin, and check session records were persisted;
#   2. restart the server over the same checkpoint directory and re-run
#      the same (tenant, session) workloads — the reloaded dedup cursors
#      must bill the replayed frames as retransmissions while the
#      clients still complete, proving record continuity across restart.
# ci.sh wraps this in a hard `timeout` so a hung accept loop or a
# non-converging drain fails CI instead of wedging it.
set -euo pipefail
cd "$(dirname "$0")/.."

SERVE=target/release/choco-serve
BENCH=target/release/choco-serve-bench
[[ -x $SERVE && -x $BENCH ]] || cargo build --release -q -p choco-serve

workdir=$(mktemp -d)
serve_pid=""

cleanup() {
    exec 3>&- 2>/dev/null || true
    [[ -n $serve_pid ]] && kill "$serve_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

# Boots choco-serve reading stdin from a fifo held open on fd 3; sets
# $serve_pid and $addr. $1 names the phase (log + fifo suffix).
boot_server() {
    local phase=$1
    log="$workdir/serve-$phase.log"
    local fifo="$workdir/stdin-$phase.fifo"
    mkfifo "$fifo"
    # Port 0 = kernel-assigned ephemeral port; the server prints the real one.
    "$SERVE" --addr 127.0.0.1:0 --max-sessions 8 \
        --checkpoint-dir "$workdir/ckpt" \
        --tenant 1=serve-bench-tenant-1 --tenant 2=serve-bench-tenant-2 \
        <"$fifo" >"$log" 2>&1 &
    serve_pid=$!
    exec 3>"$fifo" # hold the write end open so the server doesn't see EOF

    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^choco-serve listening on \([0-9.:]*\).*/\1/p' "$log")
        [[ -n $addr ]] && break
        kill -0 "$serve_pid" 2>/dev/null || { cat "$log"; echo "serve_smoke: server died at startup ($phase)"; exit 1; }
        sleep 0.1
    done
    [[ -n $addr ]] || { cat "$log"; echo "serve_smoke: server never reported its address ($phase)"; exit 1; }
    echo "serve_smoke: server up on $addr (pid $serve_pid, phase $phase)"
}

drain_server() {
    echo stats >&3
    echo drain >&3
    exec 3>&-
    wait "$serve_pid"
    serve_pid=""
    grep -q "choco-serve: drained" "$log" || { cat "$log"; echo "serve_smoke: no clean drain marker"; exit 1; }
}

# Phase 1: fresh server, clean run, drain persists records.
boot_server first
"$BENCH" --addr "$addr" --smoke --json "$workdir/bench1.json"
drain_server
grep -q '"failed": 0' "$workdir/bench1.json" || { cat "$workdir/bench1.json"; echo "serve_smoke: phase-1 bench reported failures"; exit 1; }
ls "$workdir/ckpt"/*.csr >/dev/null 2>&1 || { cat "$log"; echo "serve_smoke: no session records persisted on drain"; exit 1; }
# The stdin `stats` command must answer with one machine-readable JSON
# line covering serve + eval + isolation + journal counters.
grep -q '^{"accepted":.*"isolation":{"quarantined":.*"journal":{"accepted":' "$log" \
    || { cat "$log"; echo "serve_smoke: stats command printed no JSON stats line"; exit 1; }

# Phase 2: restart over the same checkpoint dir; identical (tenant,
# session) ids replay sequence numbers the reloaded cursors have already
# seen, so the server must bill retransmissions yet still echo them.
boot_server second
"$BENCH" --addr "$addr" --smoke --json "$workdir/bench2.json"
drain_server
grep -q '"failed": 0' "$workdir/bench2.json" || { cat "$workdir/bench2.json"; echo "serve_smoke: phase-2 bench reported failures"; exit 1; }
grep -q 'retransmit_bytes=[1-9]' "$log" || { cat "$log"; echo "serve_smoke: restarted server shows no retransmit billing — records not resumed"; exit 1; }

echo "serve_smoke: OK (clean run + drain + persisted records + restart resume)"
