//! Cross-crate integration tests: the full CHOCO stack exercised end to
//! end — client-aided DNN convolution, KNN over encrypted distances,
//! encrypted PageRank vs. its reference, and accelerator/parameter-selection
//! consistency.

use choco::params::{select_bfv_params, WorkloadProfile};
use choco::protocol::Client;
use choco::transport::{LinkConfig, Session};
use choco_apps::distance::{
    distance_rotation_steps, distances_plain, encrypted_distances, knn_classify, PackingVariant,
};
use choco_apps::dnn::{
    client_aided_plan, conv2d_plain_circular, conv_rotation_steps, run_encrypted_conv_layer,
    Network,
};
use choco_apps::pagerank::{pagerank_encrypted, pagerank_plain, Graph};
use choco_he::params::HeParams;
use choco_he::{Bfv, Ckks};
use choco_taco::baseline::sw_encryption_time;
use choco_taco::config::AcceleratorConfig;
use choco_taco::dse::{explore, select_operating_point};
use choco_taco::link::{compose_client_cost, LinkModel};
use choco_taco::model::{decryption_profile, encryption_profile};

#[test]
fn client_aided_conv_layer_through_the_whole_stack() {
    let params = HeParams::bfv_insecure(2048, &[45, 45, 46], 18).unwrap();
    let (h, w, f, in_ch, out_ch) = (5usize, 5usize, 3usize, 4usize, 3usize);
    let steps = conv_rotation_steps(in_ch, h, w, f);
    let mut session = Session::<Bfv>::direct(&params, b"integration conv", &steps).unwrap();

    let image: Vec<Vec<u64>> = (0..in_ch)
        .map(|c| (0..h * w).map(|i| ((i * 3 + c * 5) % 16) as u64).collect())
        .collect();
    let weights: Vec<Vec<Vec<u64>>> = (0..out_ch)
        .map(|o| {
            (0..in_ch)
                .map(|c| (0..f * f).map(|i| ((i * 2 + o + c) % 16) as u64).collect())
                .collect()
        })
        .collect();

    let got = run_encrypted_conv_layer(&mut session, &image, &weights, h, w, f).unwrap();
    let plain_t = session.server().context().plain_modulus();
    let want = conv2d_plain_circular(&image, &weights, h, w, f, plain_t);
    assert_eq!(got, want);
    // Accounting: one upload, one download per output channel.
    let ledger = session.ledger();
    assert_eq!(ledger.uploads, 1);
    assert_eq!(ledger.downloads, out_ch as u32);
    assert_eq!(
        ledger.total_bytes(),
        ((1 + out_ch) * params.ciphertext_bytes()) as u64
    );
}

#[test]
fn knn_classification_over_encrypted_distances() {
    let params = HeParams::ckks_insecure(1024, &[45, 45, 45, 46], 38).unwrap();
    let points = vec![
        vec![0.0, 0.1, 0.0, 0.1],
        vec![0.1, 0.0, 0.1, 0.0],
        vec![3.0, 3.1, 2.9, 3.0],
        vec![3.1, 3.0, 3.0, 2.9],
    ];
    let labels = vec![7usize, 7, 9, 9];
    let query = vec![2.9, 3.0, 3.1, 3.0];
    for variant in PackingVariant::all() {
        let steps = distance_rotation_steps(4, points.len(), params.slot_count());
        let mut session = Session::<Ckks>::direct(&params, b"integration knn", &steps).unwrap();
        let res = encrypted_distances(variant, &mut session, &query, &points).unwrap();
        assert_eq!(
            knn_classify(&res.distances, &labels, 3),
            9,
            "variant {} must classify into the near cluster",
            variant.label()
        );
        let want = distances_plain(&query, &points);
        for (g, w) in res.distances.iter().zip(&want) {
            assert!((g - w).abs() < 5e-2);
        }
    }
}

#[test]
fn encrypted_pagerank_matches_reference_with_refresh() {
    let graph = Graph::from_adjacency(&[vec![1], vec![2, 3], vec![0], vec![0, 2], vec![1, 2]]);
    let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 24).unwrap();
    let enc =
        pagerank_encrypted::<Bfv>(&graph, 0.85, 10, 1, &params, 10, LinkConfig::direct()).unwrap();
    let plain = pagerank_plain(&graph, 0.85, 10);
    for (e, p) in enc.ranks.iter().zip(&plain) {
        assert!((e - p).abs() < 0.02, "{e} vs {p}");
    }
    // One round trip per iteration, constant ciphertext size.
    assert_eq!(enc.ledger.rounds, 10);
    assert_eq!(enc.ledger.uploads, 10);
    assert_eq!(enc.ledger.downloads, 10);
}

#[test]
fn parameter_selection_feeds_the_accelerator_envelope() {
    // The parameters CHOCO selects for a conv workload stay inside the
    // hardware envelope the DSE-chosen accelerator supports (§5.6).
    let params = select_bfv_params(&WorkloadProfile::choco_conv(64), 1).unwrap();
    assert!(params.degree() <= 8192);
    assert!(params.prime_count() <= 3);
    let cfg = AcceleratorConfig::paper_operating_point();
    let prof = encryption_profile(&cfg, params.degree(), params.prime_count());
    assert!(prof.time_s < 1e-3, "encryption must stay sub-millisecond");
}

#[test]
fn dse_selected_point_reproduces_published_operating_point() {
    // Subsample the grid for test speed; the full sweep runs in fig7_dse.
    let points: Vec<_> = explore(8192, 3).into_iter().step_by(7).collect();
    let chosen = select_operating_point(&points, 200.0, 0.01).unwrap();
    assert!(chosen.profile.power_w <= 0.2);
    assert!(
        (5.0..40.0).contains(&chosen.profile.area_mm2),
        "area {} mm2",
        chosen.profile.area_mm2
    );
    assert!(
        chosen.profile.time_s < 2e-3,
        "encryption {} s",
        chosen.profile.time_s
    );
}

#[test]
fn end_to_end_dnn_offload_is_communication_bound_on_bluetooth() {
    // Compose a full VGG16 inference and confirm the paper's §5.7 structure:
    // communication dominates, but hardware crypto is sub-second.
    let params = HeParams::set_a();
    let plan = client_aided_plan(&Network::vgg16(), &params);
    let cfg = AcceleratorConfig::paper_operating_point();
    let enc = encryption_profile(&cfg, params.degree(), params.prime_count());
    let dec = decryption_profile(&cfg, params.degree(), params.prime_count());
    let cost = compose_client_cost(
        plan.encryptions,
        plan.decryptions,
        enc.time_s,
        dec.time_s,
        enc.energy_j,
        dec.energy_j,
        0.01,
        plan.comm_bytes,
        &LinkModel::bluetooth(),
    );
    assert!(
        cost.comm_s > cost.crypto_s,
        "comm should dominate with TACO"
    );
    assert!(cost.crypto_s < 1.0, "accelerated crypto under a second");
    // And without the accelerator the same inference is crypto-bound.
    let sw_crypto =
        plan.encryptions as f64 * sw_encryption_time(params.degree(), params.prime_count());
    assert!(
        sw_crypto > cost.comm_s,
        "software crypto dwarfs communication"
    );
}

#[test]
fn communication_shrinks_with_choco_parameters() {
    // Set A (CHOCO, 2 data residues) vs SEAL-default 5-prime chain at the
    // same degree: ~2x smaller ciphertexts → ~2x less traffic (§5.3).
    let choco = HeParams::set_a();
    let seal_default = HeParams::bfv(8192, &[43, 43, 44, 44, 44], 20).unwrap();
    let net = Network::lenet_large();
    let plan_choco = client_aided_plan(&net, &choco);
    let plan_seal = client_aided_plan(&net, &seal_default);
    let ratio = plan_seal.comm_bytes as f64 / plan_choco.comm_bytes as f64;
    assert!(ratio > 1.5, "expected ~2x saving, got {ratio:.2}x");
}

#[test]
fn provisioning_traffic_is_accounted_and_amortizable() {
    let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 18).unwrap();
    let mut client = Client::<Bfv>::new(&params, b"provision").unwrap();
    let server = client.provision_server(&[1, 2, 4]).unwrap();
    let bytes = server.provisioning_bytes();
    // pk (2 polys) + relin (2 digits × 2 polys × 3 residues) + 4 galois keys
    // (3 steps + column swap).
    let poly = 2 * 1024 * 8; // one data-basis polynomial
    let ksk = 2 * 2 * 3 * 1024 * 8; // one key-switching key
    assert_eq!(bytes, 2 * poly + ksk + 4 * ksk);
    // Provisioning is one-time: it exceeds a single ciphertext but amortizes
    // across inferences.
    assert!(bytes > params.ciphertext_bytes());
}
