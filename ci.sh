#!/usr/bin/env bash
# The full local CI gate: build, tests, lints, formatting.
#
# This is the same bar every PR must clear. It is offline-friendly — the
# workspace has no registry dependencies, so `cargo` never touches the
# network.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> choco-verify (static circuit verification, both schemes)"
# The abstract interpreter (crates/verify) must accept all four paper
# workloads under both the BFV set-A and CKKS set-C parameter sets before
# the tests run; any diagnostic is a hard failure (exit 1). The committed
# per-node dump must match what the verifier computes now — regenerate
# with: cargo run --release -q --bin choco-verify -- --json > VERIFY_workloads.json
cargo run --release -q --bin choco-verify -- --scheme both > /dev/null
cargo run --release -q --bin choco-verify -- --json > /tmp/VERIFY_workloads.json
diff -u VERIFY_workloads.json /tmp/VERIFY_workloads.json

echo "==> cargo test (all workspace members)"
cargo test -q --workspace

echo "==> parallel/sequential equivalence suite (CHOCO_THREADS=1)"
CHOCO_THREADS=1 cargo test -q -p choco-math --test prop_math
CHOCO_THREADS=1 cargo test -q -p choco-he --test prop_he

echo "==> parallel/sequential equivalence suite (CHOCO_THREADS=4)"
CHOCO_THREADS=4 cargo test -q -p choco-math --test prop_math
CHOCO_THREADS=4 cargo test -q -p choco-he --test prop_he

echo "==> simd/scalar equivalence suite (CHOCO_SIMD=0 and =1, both thread counts)"
# The dispatched NTT and dyadic kernels must be bit-identical whichever
# backend runs them (crates/math/tests/prop_math.rs asserts simd == scalar
# == strict in-process; running the suites under both CHOCO_SIMD settings
# additionally proves the forced-scalar build computes the same bits the
# vectorized build does, at every thread count).
CHOCO_SIMD=0 CHOCO_THREADS=1 cargo test -q -p choco-math --test prop_math
CHOCO_SIMD=0 CHOCO_THREADS=4 cargo test -q -p choco-he --test prop_he
CHOCO_SIMD=1 CHOCO_THREADS=1 cargo test -q -p choco-math --test prop_math
CHOCO_SIMD=1 CHOCO_THREADS=4 cargo test -q -p choco-he --test prop_he

echo "==> zero-alloc steady state (PolyPool counters, both schemes)"
# Warm keyswitch -> hoisted rotation -> matvec loops must not touch the
# allocator for polynomial buffers (crates/he/tests/zero_alloc.rs).
cargo test -q --release -p choco-he --test zero_alloc

echo "==> chaos soak: crash-point sweep under both thread counts"
# The seeded kill/checkpoint-resume matrix (crates/apps/tests/chaos_sweep.rs):
# every crash point must replay to a bit-identical final ciphertext with
# primary ledger lines matching the uninterrupted run. Runs under both
# worker-pool configurations to catch scheduling-dependent state leaking
# into checkpoints.
CHOCO_THREADS=1 cargo test -q -p choco-apps --test chaos_sweep
CHOCO_THREADS=4 cargo test -q -p choco-apps --test chaos_sweep

echo "==> socket chaos: TCP crash/restart sweep + serve e2e"
# Real-socket counterpart of the chaos sweep (crates/apps/tests/chaos_tcp.rs):
# mid-run connection teardowns and full server restarts must redial and
# resume to bit-identical ciphertexts. serve_e2e covers concurrent
# admission, typed Overloaded, drain/restart record continuity, and a
# mid-frame proxy cut.
cargo test -q -p choco-apps --test chaos_tcp
cargo test -q -p choco-serve

echo "==> eval chaos: fault-isolated remote evaluation sweep"
# Kill-point sweep over every evaluation stage x both schemes
# (crates/apps/tests/chaos_eval.rs): hard server kills mid-evaluation must
# drive to completion through reconnects with bit-identical outputs and
# exact primary-ledger billing; poison jobs bisect out of batches, breakers
# trip and recover, and restarted servers report dead requests from the
# journal. The hard timeout guards against a retry loop that never
# converges.
timeout 300 cargo test -q -p choco-apps --test chaos_eval

echo "==> loopback serve smoke: real server process + load generator"
# Boots the choco-serve binary on an ephemeral port, runs the bench client
# against it over loopback, then drains it via stdin. The hard timeout
# guards CI against a hung accept loop or a drain that never converges.
timeout 120 ./scripts/serve_smoke.sh

echo "==> remote-eval batching gate: pipelined batches vs sequential round trips"
# The batching scheduler must coalesce a pipelined batch of 4 evaluate
# requests into shared kernel dispatches and beat 4 sequential round trips
# on throughput. The report (same shape as the committed BENCH_serve.json)
# must show a clean run — zero failed clients, zero server-side eval
# errors — and, when the host has the cores to fan a batch out (>= 4), a
# >= 2.0x throughput speedup. On starved runners the ratio is reported
# but not asserted (the parallel dispatch has nothing to run on).
# --faults additionally sweeps the fault-injection kinds (clean baseline,
# bisected poison, shed deadline) against dedicated chaos servers; a
# result that differs from the local reference fails the run.
CHOCO_THREADS=1 timeout 300 ./target/release/choco-serve-bench \
    --smoke --batch 4 --faults --json /tmp/bench_serve_batch.json
grep -q '"failed_clients": 0' /tmp/bench_serve_batch.json \
    || { cat /tmp/bench_serve_batch.json; echo "ci: batch bench had failed clients"; exit 1; }
grep -q '"errors": 0' /tmp/bench_serve_batch.json \
    || { cat /tmp/bench_serve_batch.json; echo "ci: server reported eval errors"; exit 1; }
grep -q '"wrong_results": 0' /tmp/bench_serve_batch.json \
    || { cat /tmp/bench_serve_batch.json; echo "ci: injected faults produced wrong results"; exit 1; }
grep -q '"failed_rounds": 0' /tmp/bench_serve_batch.json \
    || { cat /tmp/bench_serve_batch.json; echo "ci: fault-injection rounds failed"; exit 1; }
speedup=$(sed -n 's/.*"speedup": \([0-9.]*\).*/\1/p' /tmp/bench_serve_batch.json)
if [ "$(nproc)" -ge 4 ]; then
    awk -v s="$speedup" 'BEGIN { exit !(s >= 2.0) }' \
        || { cat /tmp/bench_serve_batch.json; echo "ci: batch-4 speedup ${speedup}x < 2.0x"; exit 1; }
    echo "ci: batch-4 throughput speedup ${speedup}x (gate: >= 2.0x)"
else
    echo "ci: nproc $(nproc) < 4 — speedup ratio measured at ${speedup}x, not asserted"
fi

echo "==> kernel bench reporter (smoke mode + generic-core and simd gates)"
# Besides the kernel timings, bench_kernels asserts that the scheme-generic
# HeScheme::dot_diagonals path stays within noise (< 1.25x) of a
# hand-inlined twin for both BFV and CKKS — the generic protocol core is
# monomorphized, so any measurable gap is a regression. It also gates the
# SIMD forward-NTT peak speedup at >= 2.0x over the scalar kernel whenever
# a vector backend (AVX2/AVX-512/NEON) is active; on scalar-only hosts the
# gate is skipped gracefully (a note in the report, not a failure).
cargo run --release -q -p choco-bench --bin bench_kernels -- --smoke --json /tmp/bench_kernels_smoke.json

echo "==> choco-lint (secret-independence, lazy-reduction, panic/unsafe audit)"
# The committed lint.toml pins every allowlisted site by exact count; any
# drift (new or removed sites) fails here. To regenerate after an audited
# change: cargo run --release -q -p choco-lint -- --fix-allowlist, then
# review the diff (git diff lint.toml) and replace any TODO reasons before
# committing.
cargo run --release -q -p choco-lint -- --workspace

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "CI green."
