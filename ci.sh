#!/usr/bin/env bash
# The full local CI gate: build, tests, lints, formatting.
#
# This is the same bar every PR must clear. It is offline-friendly — the
# workspace has no registry dependencies, so `cargo` never touches the
# network.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (all workspace members)"
cargo test -q --workspace

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "CI green."
