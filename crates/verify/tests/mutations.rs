//! Mutation tests: corrupt a compiled program in one targeted way and pin
//! the exact rule + node the verifier rejects it with.
//!
//! Each case follows the same shape: compile a fixture (verified by
//! construction — the uncorrupted twin must pass), break one invariant via
//! the `into_raw_parts`/`from_raw_parts` escape hatch, and assert the
//! verifier names precisely the broken invariant at precisely the broken
//! node. A verifier that flags the wrong rule, the wrong node, or the
//! intact twin fails these tests just as hard as one that misses the
//! corruption.

use choco::compiler::{compile, CompiledProgram, CompilerOptions, NodeId, Op, Program};
use choco_verify::{verify, RuleId, Scheme, VerifyOptions};

/// Uniform-prime options: every post-rescale scale sits exactly on the
/// waterline, so the fixtures are stable under all scale rules.
fn opts() -> CompilerOptions {
    CompilerOptions {
        scale_bits: 40,
        prime_bits: 40,
        max_levels: 4,
    }
}

/// Fixture with a ct×ct multiply (⇒ a scheduled `Rescale`), a rotation,
/// and two constants (⇒ a width join at the final `AddPlain`).
fn fixture() -> CompiledProgram {
    let mut p = Program::new();
    let x = p.input("x");
    let y = p.input("y");
    let prod = p.mul(x, y);
    let r = p.rotate(prod, 2);
    let c1 = p.constant(&[1.0; 8]);
    let m = p.mul_plain(r, c1);
    let c2 = p.constant(&[2.0; 8]);
    let s = p.add_plain(m, c2);
    p.output(s);
    compile(&p, &opts()).expect("fixture compiles and self-verifies")
}

/// Index of the first op matching `pred`, which every mutation locates
/// dynamically so the tests survive scheduling changes.
fn find(ops: &[Op], pred: impl Fn(&Op) -> bool) -> usize {
    ops.iter()
        .position(pred)
        .expect("fixture contains the op the mutation targets")
}

#[test]
fn uncorrupted_fixture_verifies_clean() {
    let compiled = fixture();
    assert!(compiled.verify().is_ok());
    // Key coverage also holds against the program's own rotation list.
    let verify_opts = compiled
        .verify_options()
        .with_galois_steps(&compiled.rotation_steps());
    assert!(verify(&compiled.to_circuit(), &verify_opts).is_ok());
}

#[test]
fn dropped_rescale_is_level002_at_the_consumer() {
    let mut parts = fixture().into_raw_parts();
    // Rewire every consumer of the first Rescale to the raw product: the
    // schedule now claims a rescale nobody uses, and the consumer reads a
    // value still above the waterline band.
    let resc = find(&parts.ops, |op| matches!(op, Op::Rescale(_)));
    let Op::Rescale(raw) = parts.ops[resc].clone() else {
        unreachable!()
    };
    let mut consumer = None;
    for (i, op) in parts.ops.iter_mut().enumerate().skip(resc + 1) {
        if let Op::Rotate(a, _) = op {
            if a.index() == resc {
                *a = raw;
                consumer = Some(i);
            }
        }
    }
    let consumer = consumer.expect("fixture rotates the rescaled product");
    let err = CompiledProgram::from_raw_parts(parts)
        .verify()
        .expect_err("missing rescale must be rejected");
    assert!(
        err.has(RuleId::Level002, consumer),
        "want LEVEL002 at node {consumer}, got: {}",
        err
    );
}

#[test]
fn bypassed_modswitch_is_level001_at_the_join() {
    // A fresh input added to a rescaled product forces the compiler to
    // insert a ModSwitch on the fresh side; bypassing it leaves the Add's
    // operands at different levels.
    let mut p = Program::new();
    let x = p.input("x");
    let sq = p.mul(x, x);
    let s = p.add(x, sq);
    p.output(s);
    let compiled = compile(&p, &opts()).expect("fixture compiles");
    assert!(compiled.verify().is_ok());

    let mut parts = compiled.into_raw_parts();
    let ms = find(&parts.ops, |op| matches!(op, Op::ModSwitch(_)));
    let Op::ModSwitch(raw) = parts.ops[ms].clone() else {
        unreachable!()
    };
    let mut join = None;
    for (i, op) in parts.ops.iter_mut().enumerate().skip(ms + 1) {
        if let Op::Add(a, b) = op {
            if a.index() == ms {
                *a = raw;
                join = Some(i);
            }
            if b.index() == ms {
                *b = raw;
                join = Some(i);
            }
        }
    }
    let join = join.expect("fixture adds across the ModSwitch");
    let err = CompiledProgram::from_raw_parts(parts)
        .verify()
        .expect_err("level mismatch must be rejected");
    assert!(
        err.has(RuleId::Level001, join),
        "want LEVEL001 at node {join}, got: {}",
        err
    );
}

#[test]
fn skewed_level_claim_is_level004_at_the_skewed_node() {
    let mut parts = fixture().into_raw_parts();
    let mul = find(&parts.ops, |op| matches!(op, Op::Mul(..)));
    parts.meta[mul].level += 1;
    let err = CompiledProgram::from_raw_parts(parts)
        .verify()
        .expect_err("metadata corruption must be rejected");
    assert!(
        err.has(RuleId::Level004, mul),
        "want LEVEL004 at node {mul}, got: {}",
        err
    );
}

#[test]
fn skewed_scale_claim_is_scale003_at_the_skewed_node() {
    let mut parts = fixture().into_raw_parts();
    let mul = find(&parts.ops, |op| matches!(op, Op::Mul(..)));
    parts.meta[mul].scale_bits += 1.5;
    let err = CompiledProgram::from_raw_parts(parts)
        .verify()
        .expect_err("metadata corruption must be rejected");
    assert!(
        err.has(RuleId::Scale003, mul),
        "want SCALE003 at node {mul}, got: {}",
        err
    );
}

#[test]
fn removed_galois_step_is_key001_at_the_rotation() {
    use choco_verify::CircuitOp;
    let compiled = fixture();
    let circuit = compiled.to_circuit();
    let rot = circuit
        .ops
        .iter()
        .position(|op| matches!(op, CircuitOp::Rotate(_, s) if *s != 0))
        .expect("fixture rotates");
    // The client provisions every step except the one the rotation needs.
    let full = compiled.rotation_steps();
    let missing: Vec<i64> = full.iter().copied().filter(|&s| s != 2).collect();
    let verify_opts = compiled.verify_options().with_galois_steps(&missing);
    let err = verify(&compiled.to_circuit(), &verify_opts)
        .expect_err("uncovered rotation must be rejected");
    assert!(
        err.has(RuleId::Key001, rot),
        "want KEY001 at node {rot}, got: {}",
        err
    );
}

#[test]
fn mismatched_constant_width_is_slot001_at_the_join() {
    let mut parts = fixture().into_raw_parts();
    // Shrink the *last* constant: the widths meeting at the final AddPlain
    // now disagree (8 from the first constant's join vs 4).
    let last_const = parts
        .ops
        .iter()
        .rposition(|op| matches!(op, Op::Constant(_)))
        .expect("fixture has constants");
    parts.ops[last_const] = Op::Constant(vec![2.0; 4]);
    let join = find(&parts.ops, |op| matches!(op, Op::AddPlain(..)));
    let err = CompiledProgram::from_raw_parts(parts)
        .verify()
        .expect_err("width mismatch must be rejected");
    assert!(
        err.has(RuleId::Slot001, join),
        "want SLOT001 at node {join}, got: {}",
        err
    );
}

#[test]
fn over_deep_mul_chain_is_level003_under_ckks() {
    // Depth 4 against a 3-level chain: the verifier's virtual scheduling
    // must report tower exhaustion on the source program — the same
    // program compile() rejects with DepthExceeded.
    let mut p = Program::new();
    let x = p.input("x");
    let mut acc = x;
    let mut muls = Vec::new();
    for _ in 0..4 {
        acc = p.mul(acc, acc);
        muls.push(acc.index());
    }
    p.output(acc);
    let err = verify(&p.to_circuit(), &VerifyOptions::ckks(40, 40, 3))
        .expect_err("over-deep chain must be rejected");
    // The tower (3 levels) is exhausted at the *third* multiply — the
    // first whose virtual rescale lands below level 1.
    let crossing = muls[2];
    assert!(
        err.has(RuleId::Level003, crossing),
        "want LEVEL003 at node {crossing}, got: {}",
        err
    );
    // The same chain fits a 5-level tower.
    assert!(verify(&p.to_circuit(), &VerifyOptions::ckks(40, 40, 5)).is_ok());
}

#[test]
fn over_deep_mul_chain_is_noise001_under_bfv() {
    use choco_he::params::HeParams;
    use choco_verify::NoiseModel;
    // Three ct×ct multiplies under paper set A: 11.3 fresh + 3·37 consumed
    // crosses the 92-bit budget exactly at the third multiply.
    let model = NoiseModel::from_params(&HeParams::set_a());
    let mut p = Program::new();
    let x = p.input("x");
    let m1 = p.mul(x, x);
    let m2 = p.mul(m1, m1);
    let m3 = p.mul(m2, m2);
    p.output(m3);
    let verify_opts = VerifyOptions::bfv(model, 2);
    let err =
        verify(&p.to_circuit(), &verify_opts).expect_err("noise-budget crossing must be rejected");
    assert!(
        err.has(RuleId::Noise001, m3.index()),
        "want NOISE001 at node {}, got: {}",
        m3.index(),
        err
    );
    // Two multiplies stay inside the budget.
    let mut q = Program::new();
    let x = q.input("x");
    let m1 = q.mul(x, x);
    let m2 = q.mul(m1, m1);
    q.output(m2);
    assert!(verify(&q.to_circuit(), &VerifyOptions::bfv(model, 2)).is_ok());
}

#[test]
fn forward_reference_is_struct001_and_suppresses_interpretation() {
    let mut parts = fixture().into_raw_parts();
    let mul = find(&parts.ops, |op| matches!(op, Op::Mul(..)));
    let n = parts.ops.len();
    parts.ops[mul] = Op::Mul(NodeId::new(n + 3), NodeId::new(0));
    let err = CompiledProgram::from_raw_parts(parts)
        .verify()
        .expect_err("forward reference must be rejected");
    assert!(
        err.has(RuleId::Struct001, mul),
        "want STRUCT001 at node {mul}, got: {}",
        err
    );
    // No abstract-pass diagnostics piggyback on a malformed topology.
    assert!(err
        .diagnostics
        .iter()
        .all(|d| matches!(d.rule, RuleId::Struct001 | RuleId::Struct003)));
}

#[test]
fn scheme_names_match_cli_flags() {
    assert_eq!(Scheme::Bfv.name(), "bfv");
    assert_eq!(Scheme::Ckks.name(), "ckks");
}
