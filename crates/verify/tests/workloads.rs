//! Acceptance: all four paper workloads verify clean at the paper's
//! parameter sets (Table 3) — the same checks the `choco-verify` CLI and
//! the ci.sh gate run.

use choco::compiler::{compile, CompilerOptions};
use choco_apps::circuits::all_workloads;
use choco_he::params::HeParams;
use choco_verify::{verify, VerifyOptions};

#[test]
fn all_workloads_verify_under_set_a_bfv() {
    let params = HeParams::set_a();
    for w in all_workloads() {
        let opts = VerifyOptions::for_params(&params).with_galois_steps(&w.galois_steps);
        let report = verify(&w.program.to_circuit(), &opts)
            .unwrap_or_else(|e| panic!("{} rejected under set A: {e}", w.name));
        assert!(report.is_clean());
        // The noise rule was genuinely armed, not vacuously skipped.
        assert!(report.rows.iter().any(|r| r.state.noise_bits > 0.0));
    }
}

#[test]
fn all_workloads_verify_under_set_c_ckks() {
    let params = HeParams::set_c();
    let copts = CompilerOptions {
        scale_bits: params.scale_bits(),
        prime_bits: params.prime_bits().first().copied().unwrap_or(0),
        max_levels: params.data_prime_count(),
    };
    for w in all_workloads() {
        let compiled = compile(&w.program, &copts)
            .unwrap_or_else(|e| panic!("{} fails to compile for set C: {e}", w.name));
        let opts = VerifyOptions::for_params(&params).with_galois_steps(&w.galois_steps);
        let report = verify(&compiled.to_circuit(), &opts)
            .unwrap_or_else(|e| panic!("{} rejected under set C: {e}", w.name));
        assert!(report.is_clean());
        // The scheduled circuit really carries compiler claims.
        assert!(compiled.to_circuit().is_scheduled());
    }
}

#[test]
fn set_b_budget_discriminates_between_workloads() {
    // Paper set B is the tight 4096-degree BFV chain (53-bit budget),
    // sized for single shallow kernels: the conv layer fits, while the
    // 16-diagonal FC matvec, the double plain-multiply of a PageRank
    // iteration, and the ct×ct distance square all exceed the worst-case
    // bound — and the *only* rule that fires is the noise budget. Evidence
    // the bound is discriminating, not vacuously loose.
    use choco_verify::RuleId;
    let params = HeParams::set_b();
    for w in all_workloads() {
        let opts = VerifyOptions::for_params(&params).with_galois_steps(&w.galois_steps);
        let result = verify(&w.program.to_circuit(), &opts);
        if w.name == "dnn_conv" {
            result.unwrap_or_else(|e| panic!("{} rejected under set B: {e}", w.name));
        } else {
            let Err(err) = result else {
                panic!("{} must exceed set B's budget", w.name)
            };
            assert!(
                err.diagnostics.iter().all(|d| d.rule == RuleId::Noise001),
                "{}: only the noise rule should fire: {err}",
                w.name
            );
        }
    }
}
