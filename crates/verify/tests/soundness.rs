//! Soundness properties, via `choco-quickprop`:
//!
//! 1. every random well-formed source program that `compile()` accepts
//!    verifies clean — both the compiled circuit (claims cross-checked)
//!    and the source circuit (virtual scheduling), with key coverage
//!    against the program's own rotation list;
//! 2. verified programs agree with `execute_plain` on the reference
//!    semantics the generator computes alongside the IR.
//!
//! The generator uses *uniform* primes (`scale_bits == prime_bits`): under
//! the waterline rule every post-rescale scale then sits exactly on the
//! waterline, so a diagnostic can only mean a verifier or compiler bug,
//! never an over-tight tolerance.

use std::collections::HashMap;

use choco::compiler::{compile, CompilerOptions, NodeId, Program};
use choco_quickprop::{run_cases, Gen};
use choco_verify::{verify, VerifyOptions};

const LEN: usize = 8;
const MAX_LEVELS: usize = 6;
/// Multiplies consumed along any path — keeps `compile()` inside the tower.
const MAX_DEPTH: usize = MAX_LEVELS - 2;

/// One generated ciphertext node with its reference value and mul depth.
struct CtNode {
    id: NodeId,
    value: Vec<f64>,
    depth: usize,
}

fn rotate_ref(v: &[f64], s: i64) -> Vec<f64> {
    let n = v.len() as i64;
    (0..n)
        .map(|j| v[((j + s).rem_euclid(n)) as usize])
        .collect()
}

/// Builds a random well-formed program plus its reference output values.
fn gen_program(g: &mut Gen) -> (Program, HashMap<String, Vec<f64>>, Vec<Vec<f64>>) {
    let mut prog = Program::new();
    let mut inputs = HashMap::new();
    let mut cts: Vec<CtNode> = Vec::new();

    for name in ["x", "y"] {
        let value: Vec<f64> = (0..LEN).map(|_| g.f64() * 2.0 - 1.0).collect();
        let id = prog.input(name);
        inputs.insert(name.to_string(), value.clone());
        cts.push(CtNode {
            id,
            value,
            depth: 0,
        });
    }

    let op_count = g.usize_in(3, 14);
    for _ in 0..op_count {
        let a = g.usize_in(0, cts.len());
        let b = g.usize_in(0, cts.len());
        let (id, value, depth) = match g.usize_in(0, 6) {
            0 => (
                prog.add(cts[a].id, cts[b].id),
                cts[a]
                    .value
                    .iter()
                    .zip(&cts[b].value)
                    .map(|(x, y)| x + y)
                    .collect(),
                cts[a].depth.max(cts[b].depth),
            ),
            1 => (
                prog.sub(cts[a].id, cts[b].id),
                cts[a]
                    .value
                    .iter()
                    .zip(&cts[b].value)
                    .map(|(x, y)| x - y)
                    .collect(),
                cts[a].depth.max(cts[b].depth),
            ),
            2 => {
                let depth = cts[a].depth.max(cts[b].depth) + 1;
                if depth > MAX_DEPTH {
                    continue;
                }
                (
                    prog.mul(cts[a].id, cts[b].id),
                    cts[a]
                        .value
                        .iter()
                        .zip(&cts[b].value)
                        .map(|(x, y)| x * y)
                        .collect(),
                    depth,
                )
            }
            3 => {
                let depth = cts[a].depth + 1;
                if depth > MAX_DEPTH {
                    continue;
                }
                let c: Vec<f64> = (0..LEN).map(|_| g.f64() * 2.0 - 1.0).collect();
                let cid = prog.constant(&c);
                (
                    prog.mul_plain(cts[a].id, cid),
                    cts[a].value.iter().zip(&c).map(|(x, y)| x * y).collect(),
                    depth,
                )
            }
            4 => {
                let c: Vec<f64> = (0..LEN).map(|_| g.f64() * 2.0 - 1.0).collect();
                let cid = prog.constant(&c);
                (
                    prog.add_plain(cts[a].id, cid),
                    cts[a].value.iter().zip(&c).map(|(x, y)| x + y).collect(),
                    cts[a].depth,
                )
            }
            _ => {
                let s = g.i64_in(-4, 5);
                (
                    prog.rotate(cts[a].id, s),
                    rotate_ref(&cts[a].value, s),
                    cts[a].depth,
                )
            }
        };
        cts.push(CtNode { id, value, depth });
    }

    // 1–2 outputs, always including the most recently built node.
    let mut expected = Vec::new();
    let last = cts.len() - 1;
    let mut outs = vec![last];
    if g.bool_with(0.5) {
        outs.push(g.usize_in(0, cts.len()));
    }
    for o in outs {
        prog.output(cts[o].id);
        expected.push(cts[o].value.clone());
    }
    (prog, inputs, expected)
}

#[test]
fn compiled_programs_always_verify_clean() {
    run_cases("compile implies verified", 96, |g| {
        let (prog, _, _) = gen_program(g);
        let opts = CompilerOptions {
            scale_bits: 40,
            prime_bits: 40,
            max_levels: MAX_LEVELS,
        };
        // compile() gates on the verifier, so Ok *is* the property; the
        // explicit re-checks pin the source-circuit path and key coverage.
        let compiled = compile(&prog, &opts).expect("generated program compiles");
        let verify_opts = compiled
            .verify_options()
            .with_galois_steps(&compiled.rotation_steps());
        assert!(verify(&compiled.to_circuit(), &verify_opts).is_ok());
        assert!(verify(&prog.to_circuit(), &VerifyOptions::ckks(40, 40, MAX_LEVELS)).is_ok());
    });
}

#[test]
fn verified_programs_agree_with_execute_plain() {
    run_cases("verified implies plain-exact", 96, |g| {
        let (prog, inputs, expected) = gen_program(g);
        let opts = CompilerOptions {
            scale_bits: 40,
            prime_bits: 40,
            max_levels: MAX_LEVELS,
        };
        let compiled = compile(&prog, &opts).expect("generated program compiles");
        assert!(compiled.verify().is_ok());
        let got = compiled.execute_plain(&inputs).expect("plain execution");
        assert_eq!(got.len(), expected.len());
        for (g_out, e_out) in got.iter().zip(&expected) {
            assert_eq!(g_out.len(), e_out.len());
            for (a, b) in g_out.iter().zip(e_out) {
                assert!((a - b).abs() < 1e-9, "plain execution diverged: {a} vs {b}");
            }
        }
    });
}
