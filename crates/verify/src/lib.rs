//! `choco-verify`: static verification of compiled HE circuits.
//!
//! The offload model only works if the client can trust that a compiled
//! circuit will decrypt correctly *before* paying to upload ciphertexts.
//! This crate checks that — without executing anything — by abstract
//! interpretation over a scheme-agnostic [`Circuit`] view of the compiler
//! IR (CHET-style static checking; see DESIGN.md §13):
//!
//! * **level/rescale discipline** (`LEVEL001–004`): binary operands meet at
//!   the same level, every multiply is rescaled back to the waterline
//!   before its result is consumed, and the chain never exhausts the
//!   modulus tower;
//! * **CKKS scale tracking** (`SCALE001–003`): `Add`/`Sub` operand scales
//!   agree within tolerance and outputs land on the target scale band;
//! * **BFV noise budget** (`NOISE001`): a conservative worst-case bound
//!   from the paper's parameter cost model must stay positive at every
//!   output;
//! * **Galois-key coverage** (`KEY001`): every rotation step the circuit
//!   requests is in the key set the client will generate;
//! * **slot-shape compatibility** (`SLOT001–002`): packed operand widths
//!   are mutually consistent and fit the parameter set's slot capacity.
//!
//! Structural soundness (`STRUCT001–003`) is checked first; the abstract
//! pass only runs on well-formed graphs. Every diagnostic names the
//! offending node id, its op, and the violated invariant, in the same
//! fixture-pinnable style as `choco-lint`.

#![forbid(unsafe_code)]

pub mod analyze;
pub mod circuit;
pub mod report;

pub use analyze::{analyze, verify, AbstractState, NoiseModel, Scheme, ValueKind, VerifyOptions};
pub use circuit::{Circuit, CircuitOp, NodeClaim};
pub use report::{NodeRow, VerifyReport};

use std::fmt;

/// Verification rule identifiers (stable textual ids, lint-style).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// An operand refers to itself or a later node (topology violation).
    Struct001,
    /// Ciphertext/plaintext kind mismatch at an operand position.
    Struct002,
    /// The circuit has no outputs, or an output is not a ciphertext.
    Struct003,
    /// Binary-op operand levels differ.
    Level001,
    /// A value above the rescale waterline is consumed without the rescale
    /// the options demand (the "missed rescale after Mul" case).
    Level002,
    /// The modulus tower is exhausted (rescale/mod-switch below level 1).
    Level003,
    /// A node's claimed (compiler-assigned) level disagrees with the
    /// recomputed level.
    Level004,
    /// `Add`/`Sub` operand scales differ beyond tolerance.
    Scale001,
    /// An output scale misses the target band around the waterline.
    Scale002,
    /// A node's claimed scale disagrees with the recomputed scale.
    Scale003,
    /// The worst-case BFV noise budget goes negative before an output.
    Noise001,
    /// A rotation step is not covered by the Galois key set.
    Key001,
    /// Operand slot widths are incompatible (silent truncation hazard).
    Slot001,
    /// A packed width exceeds the parameter set's slot capacity.
    Slot002,
}

impl RuleId {
    /// Stable id used in diagnostics, tests, and JSON output.
    pub fn id(self) -> &'static str {
        match self {
            RuleId::Struct001 => "STRUCT001",
            RuleId::Struct002 => "STRUCT002",
            RuleId::Struct003 => "STRUCT003",
            RuleId::Level001 => "LEVEL001",
            RuleId::Level002 => "LEVEL002",
            RuleId::Level003 => "LEVEL003",
            RuleId::Level004 => "LEVEL004",
            RuleId::Scale001 => "SCALE001",
            RuleId::Scale002 => "SCALE002",
            RuleId::Scale003 => "SCALE003",
            RuleId::Noise001 => "NOISE001",
            RuleId::Key001 => "KEY001",
            RuleId::Slot001 => "SLOT001",
            RuleId::Slot002 => "SLOT002",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One verification finding: the violated rule, the offending node, its op
/// kind, and a human-readable account of the invariant that broke.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The violated rule.
    pub rule: RuleId,
    /// Index of the offending node in the circuit.
    pub node: usize,
    /// Op kind of the offending node (e.g. `"Mul"`).
    pub op: String,
    /// What broke, with the concrete abstract values involved.
    pub msg: String,
}

impl Diagnostic {
    pub(crate) fn new(rule: RuleId, node: usize, op: &str, msg: impl Into<String>) -> Diagnostic {
        Diagnostic {
            rule,
            node,
            op: op.to_string(),
            msg: msg.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} node {} ({}): {}",
            self.rule.id(),
            self.node,
            self.op,
            self.msg
        )
    }
}

/// Verification failure: the non-empty list of diagnostics, ordered by
/// (node, rule).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// All findings, most upstream node first.
    pub diagnostics: Vec<Diagnostic>,
}

impl VerifyError {
    /// True when `rule` fired on `node` — the shape mutation tests pin.
    pub fn has(&self, rule: RuleId, node: usize) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.rule == rule && d.node == node)
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.diagnostics.split_first() {
            Some((first, [])) => write!(f, "{first}"),
            Some((first, rest)) => write!(f, "{first} (+{} more)", rest.len()),
            None => write!(f, "verification failed with no diagnostics (bug)"),
        }
    }
}

impl std::error::Error for VerifyError {}
