//! The scheme-agnostic circuit form the verifier analyzes.
//!
//! `choco-verify` sits *below* the compiler in the dependency graph, so it
//! cannot see `choco::compiler::{Program, CompiledProgram}` directly.
//! Instead the compiler lowers its IR into this mirror: plain `usize` node
//! indices, constants reduced to their slot width (the verifier never needs
//! the values), and — for compiled programs — the compiler's per-node
//! scale/level claims, which the abstract interpreter cross-checks against
//! its own recomputation (`LEVEL004`/`SCALE003`).

/// One circuit operation. Operands are indices of earlier nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum CircuitOp {
    /// An encrypted input, by name (kept for diagnostics).
    Input(String),
    /// A plaintext constant, reduced to its packed slot width.
    Constant {
        /// Number of packed slots the constant occupies.
        len: usize,
    },
    /// Ciphertext + ciphertext.
    Add(usize, usize),
    /// Ciphertext − ciphertext.
    Sub(usize, usize),
    /// Ciphertext × ciphertext.
    Mul(usize, usize),
    /// Ciphertext × plaintext constant.
    MulPlain(usize, usize),
    /// Ciphertext + plaintext constant.
    AddPlain(usize, usize),
    /// Slot rotation left by the given step.
    Rotate(usize, i64),
    /// Divide by the level's last prime (compiler-inserted).
    Rescale(usize),
    /// Drop one level without rescaling (compiler-inserted).
    ModSwitch(usize),
}

impl CircuitOp {
    /// Short op-kind name used in diagnostics (`"Mul"`, `"Rescale"`, …).
    pub fn name(&self) -> &'static str {
        match self {
            CircuitOp::Input(_) => "Input",
            CircuitOp::Constant { .. } => "Constant",
            CircuitOp::Add(..) => "Add",
            CircuitOp::Sub(..) => "Sub",
            CircuitOp::Mul(..) => "Mul",
            CircuitOp::MulPlain(..) => "MulPlain",
            CircuitOp::AddPlain(..) => "AddPlain",
            CircuitOp::Rotate(..) => "Rotate",
            CircuitOp::Rescale(_) => "Rescale",
            CircuitOp::ModSwitch(_) => "ModSwitch",
        }
    }

    /// Full rendering with operand indices (`"Mul(3, 5)"`), for the
    /// per-node state dump.
    pub fn describe(&self) -> String {
        match self {
            CircuitOp::Input(name) => format!("Input({name})"),
            CircuitOp::Constant { len } => format!("Constant[{len}]"),
            CircuitOp::Add(a, b) => format!("Add({a}, {b})"),
            CircuitOp::Sub(a, b) => format!("Sub({a}, {b})"),
            CircuitOp::Mul(a, b) => format!("Mul({a}, {b})"),
            CircuitOp::MulPlain(a, c) => format!("MulPlain({a}, {c})"),
            CircuitOp::AddPlain(a, c) => format!("AddPlain({a}, {c})"),
            CircuitOp::Rotate(a, s) => format!("Rotate({a}, {s})"),
            CircuitOp::Rescale(a) => format!("Rescale({a})"),
            CircuitOp::ModSwitch(a) => format!("ModSwitch({a})"),
        }
    }

    /// Operand indices, in order.
    pub fn operands(&self) -> Vec<usize> {
        match self {
            CircuitOp::Input(_) | CircuitOp::Constant { .. } => Vec::new(),
            CircuitOp::Add(a, b)
            | CircuitOp::Sub(a, b)
            | CircuitOp::Mul(a, b)
            | CircuitOp::MulPlain(a, b)
            | CircuitOp::AddPlain(a, b) => vec![*a, *b],
            CircuitOp::Rotate(a, _) | CircuitOp::Rescale(a) | CircuitOp::ModSwitch(a) => {
                vec![*a]
            }
        }
    }
}

/// The compiler's claimed metadata for one node of a compiled program —
/// cross-checked against the verifier's own recomputation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeClaim {
    /// Claimed log2 fixed-point scale.
    pub scale_bits: f64,
    /// Claimed level (active data primes).
    pub level: usize,
}

/// A circuit to verify: op list, output nodes, and (for compiled programs)
/// the compiler's per-node claims. `claims == None` marks an *unscheduled*
/// source program: the analyzer then replays the compiler's scheduling
/// abstractly (virtual rescales/mod-switches) to bound depth, but skips the
/// discipline rules that only make sense once a schedule exists.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    /// Operations in topological order.
    pub ops: Vec<CircuitOp>,
    /// Output node indices (must be ciphertexts).
    pub outputs: Vec<usize>,
    /// Compiler claims, one per op, when lowered from a `CompiledProgram`.
    pub claims: Option<Vec<NodeClaim>>,
}

impl Circuit {
    /// True when per-node compiler claims are present (compiled program).
    pub fn is_scheduled(&self) -> bool {
        self.claims.is_some()
    }

    /// Distinct nonzero rotation steps the circuit requests, sorted.
    pub fn rotation_steps(&self) -> Vec<i64> {
        let mut steps: Vec<i64> = Vec::new();
        for op in &self.ops {
            if let CircuitOp::Rotate(_, s) = op {
                if *s != 0 && !steps.contains(s) {
                    steps.push(*s);
                }
            }
        }
        steps.sort_unstable();
        steps
    }
}
