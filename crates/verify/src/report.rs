//! Report rendering: the per-node abstract-state dump the `choco-verify`
//! CLI prints, in plain text and in JSON.
//!
//! JSON is rendered by hand (the workspace carries no serde); the schema is
//! committed as `VERIFY_workloads.json` and consumed by ci.sh, so keep field
//! names stable.

use crate::analyze::{analyze, AbstractState, Scheme, VerifyOptions};
use crate::circuit::Circuit;
use crate::Diagnostic;
use std::fmt::Write as _;

/// One row of the per-node dump: node index, rendered op, abstract state.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRow {
    /// Node index.
    pub node: usize,
    /// Rendered op with operand indices (`"Mul(3, 5)"`).
    pub op: String,
    /// The abstract value the pass computed.
    pub state: AbstractState,
}

/// The full result of one verification pass: per-node states and every
/// diagnostic, whether or not verification succeeded.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// Scheme the pass targeted.
    pub scheme: Scheme,
    /// Per-node rows, in circuit order (empty for malformed topologies).
    pub rows: Vec<NodeRow>,
    /// Output node indices.
    pub outputs: Vec<usize>,
    /// All findings, sorted by (node, rule); empty on success.
    pub diagnostics: Vec<Diagnostic>,
}

impl VerifyReport {
    /// Runs [`analyze`] and packages states + diagnostics together — what
    /// the CLI renders even when verification fails.
    pub fn build(circuit: &Circuit, opts: &VerifyOptions) -> VerifyReport {
        let (states, diagnostics) = analyze(circuit, opts);
        let rows = circuit
            .ops
            .iter()
            .zip(states)
            .enumerate()
            .map(|(node, (op, state))| NodeRow {
                node,
                op: op.describe(),
                state,
            })
            .collect();
        VerifyReport {
            scheme: opts.scheme,
            rows,
            outputs: circuit.outputs.clone(),
            diagnostics,
        }
    }

    /// True when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Plain-text rendering: a header, one aligned row per node, the output
    /// list, and every diagnostic.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let verdict = if self.is_clean() {
            "OK".to_string()
        } else {
            format!("{} diagnostic(s)", self.diagnostics.len())
        };
        let _ = writeln!(
            out,
            "# choco-verify ({}): {} nodes, {} output(s), {verdict}",
            self.scheme.name(),
            self.rows.len(),
            self.outputs.len(),
        );
        let op_w = self
            .rows
            .iter()
            .map(|r| r.op.len())
            .max()
            .unwrap_or(2)
            .max(2);
        let _ = writeln!(
            out,
            "{:>5}  {:<op_w$}  {:<6}  {:>5}  {:>7}  {:>7}  {:>5}",
            "node", "op", "kind", "level", "scale", "noise", "width"
        );
        for r in &self.rows {
            let width = r
                .state
                .width
                .map_or_else(|| "-".to_string(), |w| w.to_string());
            let _ = writeln!(
                out,
                "{:>5}  {:<op_w$}  {:<6}  {:>5}  {:>7.1}  {:>7.1}  {:>5}",
                r.node,
                r.op,
                r.state.kind.name(),
                r.state.level,
                r.state.scale_bits,
                r.state.noise_bits,
                width,
            );
        }
        let _ = writeln!(out, "outputs: {:?}", self.outputs);
        for d in &self.diagnostics {
            let _ = writeln!(out, "error: {d}");
        }
        out
    }

    /// JSON rendering (hand-built; stable field names).
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"scheme\": \"{}\",", self.scheme.name());
        let _ = writeln!(out, "  \"clean\": {},", self.is_clean());
        let _ = writeln!(out, "  \"outputs\": {:?},", self.outputs);
        out.push_str("  \"nodes\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let width = r
                .state
                .width
                .map_or_else(|| "null".to_string(), |w| w.to_string());
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"node\": {}, \"op\": {}, \"kind\": \"{}\", \"level\": {}, \
                 \"scale_bits\": {:.3}, \"noise_bits\": {:.3}, \"width\": {width}}}{comma}",
                r.node,
                json_string(&r.op),
                r.state.kind.name(),
                r.state.level,
                r.state.scale_bits,
                r.state.noise_bits,
            );
        }
        out.push_str("  ],\n");
        out.push_str("  \"diagnostics\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            let comma = if i + 1 < self.diagnostics.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    {{\"rule\": \"{}\", \"node\": {}, \"op\": {}, \"msg\": {}}}{comma}",
                d.rule.id(),
                d.node,
                json_string(&d.op),
                json_string(&d.msg),
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Minimal JSON string escaping: quotes, backslashes, control characters.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
