//! The abstract interpreter.
//!
//! One forward pass over the circuit computes, per node, an element of the
//! product domain *kind × level × scale × noise × width*:
//!
//! * **kind** — ciphertext or plaintext (exact);
//! * **level** — remaining data primes, replaying the compiler's arithmetic
//!   (exact for compiled programs; for source programs the pass simulates
//!   the waterline scheduling the compiler would perform);
//! * **scale** — log2 fixed-point scale, the same f64 recurrence the
//!   compiler uses (exact);
//! * **noise** — *consumed* BFV noise bits, an upper bound from the
//!   `choco::params` cost model (conservative, never tight);
//! * **width** — packed slot width, `Unknown ⊔ Exact(w)` (constants are
//!   exact, encrypted inputs unknown, joins meet at binary ops).
//!
//! Compiled programs additionally carry the compiler's per-node claims;
//! the pass cross-checks claim against recomputation (`LEVEL004` /
//! `SCALE003`), which is what catches metadata corruption that a pure
//! recomputation would silently repeat.

use crate::circuit::{Circuit, CircuitOp};
use crate::report::VerifyReport;
use crate::{Diagnostic, RuleId, VerifyError};
use choco_he::params::{HeParams, SchemeType};

/// Scheme the verification pass targets. Structural, key-coverage, and
/// slot-shape rules apply to both; scale rules are CKKS-only and the noise
/// budget is BFV-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// Exact modular arithmetic; noise-budget rule applies.
    Bfv,
    /// Approximate fixed point; scale rules apply.
    Ckks,
}

impl Scheme {
    /// Lower-case name used by the CLI and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Bfv => "bfv",
            Scheme::Ckks => "ckks",
        }
    }
}

/// Whether a node's value is a ciphertext or a plaintext constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueKind {
    /// Encrypted value.
    Cipher,
    /// Server-known plaintext constant.
    Plain,
}

impl ValueKind {
    /// Lower-case name used by the CLI and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            ValueKind::Cipher => "cipher",
            ValueKind::Plain => "plain",
        }
    }
}

/// The BFV worst-case noise cost model, mirroring
/// `choco::params::round_noise_bits`: fresh noise `log2(6σ) + ½log2(2N)`,
/// each plaintext multiply `t_bits + ½log2(2N)`, each ciphertext multiply
/// `t_bits + log2(2N)`, rotations ~2 bits, additions and chain-maintenance
/// ops ~1 bit. The budget is `data_bits − t_bits − 1`. Every figure is an
/// upper bound on the measured behaviour of `choco-he`, so `NOISE001` has
/// no false negatives against this model — but it may reject programs that
/// would in fact decrypt (conservative, not tight; see DESIGN.md §13).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Ring degree `N`.
    pub n: usize,
    /// Plaintext-modulus bits.
    pub t_bits: u32,
    /// Total data-modulus bits (special prime excluded).
    pub data_bits: u32,
}

impl NoiseModel {
    /// Noise bits one rotation consumes.
    pub const ROTATE_BITS: f64 = 2.0;
    /// Noise bits one addition consumes.
    pub const ADD_BITS: f64 = 1.0;
    /// Noise bits one rescale/mod-switch consumes.
    pub const SWITCH_BITS: f64 = 1.0;

    /// Derives the model from a BFV parameter set.
    pub fn from_params(params: &HeParams) -> NoiseModel {
        let t_bits = 64 - params.plain_modulus().leading_zeros();
        let data_bits = params
            .prime_bits()
            .iter()
            .take(params.data_prime_count())
            .sum();
        NoiseModel {
            n: params.degree(),
            t_bits,
            data_bits,
        }
    }

    fn half_log_2n(&self) -> f64 {
        0.5 * (2.0 * self.n as f64).log2()
    }

    /// Invariant-noise bits of a fresh ciphertext: `log2(6σ) + ½log2(2N)`.
    pub fn fresh_bits(&self) -> f64 {
        (6.0 * 3.2f64).log2() + self.half_log_2n()
    }

    /// Noise bits one plaintext multiply consumes.
    pub fn plain_mult_bits(&self) -> f64 {
        self.t_bits as f64 + self.half_log_2n()
    }

    /// Noise bits one ciphertext multiply (with relinearization) consumes.
    pub fn ct_mult_bits(&self) -> f64 {
        self.t_bits as f64 + 2.0 * self.half_log_2n()
    }

    /// Total noise budget of a fresh ciphertext: `data_bits − t_bits − 1`.
    pub fn budget_bits(&self) -> f64 {
        self.data_bits as f64 - self.t_bits as f64 - 1.0
    }
}

/// Configuration of one verification pass.
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Scheme the pass targets.
    pub scheme: Scheme,
    /// The compiler's waterline (input/encoding scale) in bits.
    pub waterline_bits: u32,
    /// Bits of each rescaling prime.
    pub prime_bits: u32,
    /// Levels the target chain provides.
    pub max_levels: usize,
    /// `SCALE001` tolerance for `Add`/`Sub` operand-scale disagreement, in
    /// bits. Defaults to `prime_bits / 2` — the half-prime band the
    /// compiler's waterline rule keeps all post-rescale scales inside.
    pub scale_tol_bits: f64,
    /// Slot capacity of the parameter set, when known (`SLOT002`).
    pub slot_count: Option<usize>,
    /// Galois key steps the client will generate, when known (`KEY001`).
    pub galois_steps: Option<Vec<i64>>,
    /// BFV noise model (`NOISE001`); `None` disables the noise rule.
    pub noise: Option<NoiseModel>,
}

impl VerifyOptions {
    /// CKKS options matching a `CompilerOptions` triple.
    pub fn ckks(waterline_bits: u32, prime_bits: u32, max_levels: usize) -> VerifyOptions {
        VerifyOptions {
            scheme: Scheme::Ckks,
            waterline_bits,
            prime_bits,
            max_levels,
            scale_tol_bits: prime_bits as f64 / 2.0,
            slot_count: None,
            galois_steps: None,
            noise: None,
        }
    }

    /// BFV options: no scale tracking, noise model active.
    pub fn bfv(noise: NoiseModel, max_levels: usize) -> VerifyOptions {
        VerifyOptions {
            scheme: Scheme::Bfv,
            waterline_bits: 0,
            prime_bits: 0,
            max_levels,
            scale_tol_bits: 0.0,
            slot_count: None,
            galois_steps: None,
            noise: Some(noise),
        }
    }

    /// Derives full options from a parameter set: scheme, waterline, prime
    /// size, chain length, slot capacity, and (BFV) the noise model.
    pub fn for_params(params: &HeParams) -> VerifyOptions {
        let prime_bits = params.prime_bits().first().copied().unwrap_or(0);
        let base = match params.scheme() {
            SchemeType::Ckks => {
                VerifyOptions::ckks(params.scale_bits(), prime_bits, params.data_prime_count())
            }
            SchemeType::Bfv => {
                VerifyOptions::bfv(NoiseModel::from_params(params), params.data_prime_count())
            }
        };
        VerifyOptions {
            slot_count: Some(params.slot_count()),
            ..base
        }
    }

    /// Sets the Galois key steps the client will provision (`KEY001`).
    #[must_use]
    pub fn with_galois_steps(mut self, steps: &[i64]) -> VerifyOptions {
        self.galois_steps = Some(steps.to_vec());
        self
    }

    /// Sets the slot capacity (`SLOT002`).
    #[must_use]
    pub fn with_slot_count(mut self, slots: usize) -> VerifyOptions {
        self.slot_count = Some(slots);
        self
    }
}

/// The abstract value the pass computes for one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbstractState {
    /// Ciphertext or plaintext.
    pub kind: ValueKind,
    /// Remaining data primes (0 marks a node past tower exhaustion).
    pub level: usize,
    /// log2 fixed-point scale (CKKS; 0 under BFV options).
    pub scale_bits: f64,
    /// Consumed worst-case noise bits (BFV; 0 without a noise model).
    pub noise_bits: f64,
    /// Packed slot width, when statically known.
    pub width: Option<usize>,
}

/// Working state: level as `i64` so tower underflow is representable.
#[derive(Clone, Copy)]
struct Work {
    kind: ValueKind,
    level: i64,
    scale: f64,
    noise: f64,
    width: Option<usize>,
}

impl Work {
    fn missing() -> Work {
        Work {
            kind: ValueKind::Cipher,
            level: 0,
            scale: 0.0,
            noise: 0.0,
            width: None,
        }
    }
}

fn get(work: &[Work], i: usize) -> Work {
    work.get(i).copied().unwrap_or_else(Work::missing)
}

/// Pushes `STRUCT002` when operand `j` of node `i` is not of `want` kind.
fn check_kind(
    work: &[Work],
    i: usize,
    name: &str,
    j: usize,
    want: ValueKind,
    diags: &mut Vec<Diagnostic>,
) {
    let have = get(work, j).kind;
    if have != want {
        diags.push(Diagnostic::new(
            RuleId::Struct002,
            i,
            name,
            format!(
                "operand {j} is a {} value where a {} is required",
                have.name(),
                want.name()
            ),
        ));
    }
}

/// Joins two slot widths, reporting `SLOT001` on conflict; the result takes
/// the smaller width (the truncating semantics the executors implement).
fn join_width(
    a: Option<usize>,
    b: Option<usize>,
    i: usize,
    name: &str,
    diags: &mut Vec<Diagnostic>,
) -> Option<usize> {
    match (a, b) {
        (Some(wa), Some(wb)) if wa != wb => {
            diags.push(Diagnostic::new(
                RuleId::Slot001,
                i,
                name,
                format!(
                    "operand widths disagree: {wa} vs {wb} slots — zip would silently truncate"
                ),
            ));
            Some(wa.min(wb))
        }
        (Some(w), _) | (_, Some(w)) => Some(w),
        (None, None) => None,
    }
}

/// Runs the abstract pass and returns per-node states plus all diagnostics,
/// sorted by (node, rule). On a malformed topology (`STRUCT001` or an
/// out-of-range output) the states are empty: interpretation is not
/// meaningful over a broken graph.
pub fn analyze(circuit: &Circuit, opts: &VerifyOptions) -> (Vec<AbstractState>, Vec<Diagnostic>) {
    let mut diags: Vec<Diagnostic> = Vec::new();

    // --- structural pass -------------------------------------------------
    let mut malformed = false;
    for (i, op) in circuit.ops.iter().enumerate() {
        for j in op.operands() {
            if j >= i {
                diags.push(Diagnostic::new(
                    RuleId::Struct001,
                    i,
                    op.name(),
                    format!("operand {j} is not an earlier node (topological order violated)"),
                ));
                malformed = true;
            }
        }
    }
    if circuit.outputs.is_empty() {
        diags.push(Diagnostic::new(
            RuleId::Struct003,
            0,
            "Program",
            "program has no outputs",
        ));
    }
    for &out in &circuit.outputs {
        if out >= circuit.ops.len() {
            diags.push(Diagnostic::new(
                RuleId::Struct003,
                out,
                "Output",
                format!(
                    "output index {out} is out of range ({} nodes)",
                    circuit.ops.len()
                ),
            ));
            malformed = true;
        }
    }
    if malformed {
        diags.sort_by_key(|d| (d.node, d.rule));
        return (Vec::new(), diags);
    }

    // --- abstract pass ----------------------------------------------------
    let scheduled = circuit.is_scheduled();
    let claims = circuit.claims.as_deref().unwrap_or(&[]);
    let waterline = opts.waterline_bits as f64;
    let prime = opts.prime_bits as f64;
    let half_prime = prime / 2.0;
    let top = opts.max_levels as i64;
    let fresh_noise = opts.noise.map_or(0.0, |m| m.fresh_bits());
    // Virtual rescale for *unscheduled* circuits: what the compiler's
    // `rescale_to_waterline` would do at this use site.
    let virt = |mut w: Work| -> Work {
        if !scheduled {
            while w.scale > waterline + half_prime {
                w.scale -= prime;
                w.level -= 1;
            }
        }
        w
    };
    // LEVEL002 (scheduled only): no op other than the scheduled `Rescale`
    // may consume a value still above the waterline band.
    let consume = |work: &[Work], i: usize, name: &str, j: usize, diags: &mut Vec<Diagnostic>| {
        let w = get(work, j);
        if scheduled && w.kind == ValueKind::Cipher && w.scale > waterline + half_prime {
            diags.push(Diagnostic::new(
                RuleId::Level002,
                i,
                name,
                format!(
                    "operand {j} carries scale 2^{:.1} above the waterline band 2^{:.1} — a Rescale is missing",
                    w.scale,
                    waterline + half_prime
                ),
            ));
        }
    };

    let mut work: Vec<Work> = Vec::with_capacity(circuit.ops.len());
    for (i, op) in circuit.ops.iter().enumerate() {
        let name = op.name();
        let state = match op {
            CircuitOp::Input(_) => Work {
                kind: ValueKind::Cipher,
                level: top,
                scale: waterline,
                noise: fresh_noise,
                width: None,
            },
            CircuitOp::Constant { len } => {
                if let Some(slots) = opts.slot_count {
                    if *len > slots {
                        diags.push(Diagnostic::new(
                            RuleId::Slot002,
                            i,
                            name,
                            format!(
                                "constant packs {len} slots but the parameter set provides {slots}"
                            ),
                        ));
                    }
                }
                Work {
                    kind: ValueKind::Plain,
                    level: top,
                    scale: waterline,
                    noise: 0.0,
                    width: Some(*len),
                }
            }
            CircuitOp::Add(a, b) | CircuitOp::Sub(a, b) | CircuitOp::Mul(a, b) => {
                check_kind(&work, i, name, *a, ValueKind::Cipher, &mut diags);
                check_kind(&work, i, name, *b, ValueKind::Cipher, &mut diags);
                consume(&work, i, name, *a, &mut diags);
                consume(&work, i, name, *b, &mut diags);
                let (wa, wb) = (virt(get(&work, *a)), virt(get(&work, *b)));
                let is_mul = matches!(op, CircuitOp::Mul(..));
                if scheduled && wa.level != wb.level {
                    diags.push(Diagnostic::new(
                        RuleId::Level001,
                        i,
                        name,
                        format!(
                            "operand levels differ: node {a} at level {} vs node {b} at level {} — a ModSwitch is missing",
                            wa.level, wb.level
                        ),
                    ));
                }
                if scheduled
                    && !is_mul
                    && opts.scheme == Scheme::Ckks
                    && (wa.scale - wb.scale).abs() > opts.scale_tol_bits
                {
                    diags.push(Diagnostic::new(
                        RuleId::Scale001,
                        i,
                        name,
                        format!(
                            "operand scales disagree beyond tolerance: 2^{:.1} vs 2^{:.1} (tol {:.1} bits)",
                            wa.scale, wb.scale, opts.scale_tol_bits
                        ),
                    ));
                }
                let level = wa.level.min(wb.level);
                let scale = if is_mul {
                    wa.scale + wb.scale
                } else {
                    wa.scale.max(wb.scale)
                };
                let noise_cost = match (is_mul, opts.noise) {
                    (true, Some(m)) => m.ct_mult_bits(),
                    (false, Some(_)) => NoiseModel::ADD_BITS,
                    (_, None) => 0.0,
                };
                let mut w = Work {
                    kind: ValueKind::Cipher,
                    level,
                    scale,
                    noise: wa.noise.max(wb.noise) + noise_cost,
                    width: join_width(wa.width, wb.width, i, name, &mut diags),
                };
                if !scheduled && is_mul {
                    // The compiler rescales a fresh product immediately.
                    while w.scale > waterline + half_prime {
                        w.scale -= prime;
                        w.level -= 1;
                    }
                }
                w
            }
            CircuitOp::MulPlain(a, c) | CircuitOp::AddPlain(a, c) => {
                check_kind(&work, i, name, *a, ValueKind::Cipher, &mut diags);
                check_kind(&work, i, name, *c, ValueKind::Plain, &mut diags);
                consume(&work, i, name, *a, &mut diags);
                let wa = virt(get(&work, *a));
                let wc = get(&work, *c);
                let is_mul = matches!(op, CircuitOp::MulPlain(..));
                let (scale, noise_cost) = if is_mul {
                    (
                        wa.scale + waterline,
                        opts.noise.map_or(0.0, |m| m.plain_mult_bits()),
                    )
                } else {
                    (wa.scale, opts.noise.map_or(0.0, |_| NoiseModel::ADD_BITS))
                };
                let mut w = Work {
                    kind: ValueKind::Cipher,
                    level: wa.level,
                    scale,
                    noise: wa.noise + noise_cost,
                    width: join_width(wa.width, wc.width, i, name, &mut diags),
                };
                if !scheduled && is_mul {
                    while w.scale > waterline + half_prime {
                        w.scale -= prime;
                        w.level -= 1;
                    }
                }
                w
            }
            CircuitOp::Rotate(a, s) => {
                check_kind(&work, i, name, *a, ValueKind::Cipher, &mut diags);
                consume(&work, i, name, *a, &mut diags);
                if *s != 0 {
                    if let Some(galois) = &opts.galois_steps {
                        if !galois.contains(s) {
                            diags.push(Diagnostic::new(
                                RuleId::Key001,
                                i,
                                name,
                                format!(
                                    "rotation step {s} is not covered by the Galois key set {galois:?}"
                                ),
                            ));
                        }
                    }
                }
                let wa = get(&work, *a);
                let rot_cost = if *s != 0 && opts.noise.is_some() {
                    NoiseModel::ROTATE_BITS
                } else {
                    0.0
                };
                Work {
                    noise: wa.noise + rot_cost,
                    ..wa
                }
            }
            CircuitOp::Rescale(a) | CircuitOp::ModSwitch(a) => {
                if !scheduled {
                    diags.push(Diagnostic::new(
                        RuleId::Struct002,
                        i,
                        name,
                        "compiler-inserted op in a source program — only compile() may schedule these",
                    ));
                }
                check_kind(&work, i, name, *a, ValueKind::Cipher, &mut diags);
                let wa = get(&work, *a);
                let scale = if matches!(op, CircuitOp::Rescale(_)) {
                    wa.scale - prime
                } else {
                    wa.scale
                };
                Work {
                    kind: ValueKind::Cipher,
                    level: wa.level - 1,
                    scale,
                    noise: wa.noise + opts.noise.map_or(0.0, |_| NoiseModel::SWITCH_BITS),
                    width: wa.width,
                }
            }
        };
        // LEVEL003 at the first node whose level underflows the tower.
        if state.kind == ValueKind::Cipher
            && state.level < 1
            && op.operands().iter().all(|&j| get(&work, j).level >= 1)
        {
            diags.push(Diagnostic::new(
                RuleId::Level003,
                i,
                name,
                format!(
                    "level {} underflows the modulus tower (chain provides {}, min usable level is 1)",
                    state.level, opts.max_levels
                ),
            ));
        }
        // Cross-check the compiler's claims against the recomputation.
        if let Some(claim) = claims.get(i) {
            if claim.level as i64 != state.level {
                diags.push(Diagnostic::new(
                    RuleId::Level004,
                    i,
                    name,
                    format!(
                        "compiler claims level {} but recomputation gives {}",
                        claim.level, state.level
                    ),
                ));
            }
            if opts.scheme == Scheme::Ckks && (claim.scale_bits - state.scale).abs() > 1e-6 {
                diags.push(Diagnostic::new(
                    RuleId::Scale003,
                    i,
                    name,
                    format!(
                        "compiler claims scale 2^{:.3} but recomputation gives 2^{:.3}",
                        claim.scale_bits, state.scale
                    ),
                ));
            }
        }
        work.push(state);
    }

    // --- output rules -----------------------------------------------------
    for &out in &circuit.outputs {
        let w = get(&work, out);
        let name = circuit.ops.get(out).map_or("Output", CircuitOp::name);
        if w.kind != ValueKind::Cipher {
            diags.push(Diagnostic::new(
                RuleId::Struct003,
                out,
                name,
                "program output is not a ciphertext",
            ));
        }
        if scheduled && opts.scheme == Scheme::Ckks {
            let band = opts.scale_tol_bits.max(half_prime);
            if (w.scale - waterline).abs() > band {
                diags.push(Diagnostic::new(
                    RuleId::Scale002,
                    out,
                    name,
                    format!(
                        "output scale 2^{:.1} misses the target 2^{:.1} by more than {band:.1} bits",
                        w.scale, waterline
                    ),
                ));
            }
        }
    }

    // --- noise budget (live ct nodes, first crossing only) ----------------
    if let Some(model) = opts.noise {
        let budget = model.budget_bits();
        let mut live = vec![false; circuit.ops.len()];
        for &out in &circuit.outputs {
            if let Some(slot) = live.get_mut(out) {
                *slot = true;
            }
        }
        for (i, op) in circuit.ops.iter().enumerate().rev() {
            if live.get(i).copied().unwrap_or(false) {
                for j in op.operands() {
                    if let Some(slot) = live.get_mut(j) {
                        *slot = true;
                    }
                }
            }
        }
        for (i, op) in circuit.ops.iter().enumerate() {
            let w = get(&work, i);
            let crossing = w.kind == ValueKind::Cipher
                && w.noise >= budget
                && op.operands().iter().all(|&j| get(&work, j).noise < budget);
            if live.get(i).copied().unwrap_or(false) && crossing {
                diags.push(Diagnostic::new(
                    RuleId::Noise001,
                    i,
                    op.name(),
                    format!(
                        "worst-case consumed noise {:.1} bits exceeds the budget {budget:.1} \
                         (N={}, t={} bits, data modulus {} bits)",
                        w.noise, model.n, model.t_bits, model.data_bits
                    ),
                ));
            }
        }
    }

    diags.sort_by_key(|d| (d.node, d.rule));
    let states = work
        .into_iter()
        .map(|w| AbstractState {
            kind: w.kind,
            level: w.level.max(0) as usize,
            scale_bits: w.scale,
            noise_bits: w.noise,
            width: w.width,
        })
        .collect();
    (states, diags)
}

/// Verifies a circuit: `Ok(report)` when no rule fires, otherwise a
/// [`VerifyError`] carrying every diagnostic.
///
/// # Errors
///
/// Returns [`VerifyError`] when any verification rule fires.
pub fn verify(circuit: &Circuit, opts: &VerifyOptions) -> Result<VerifyReport, VerifyError> {
    let rep = VerifyReport::build(circuit, opts);
    if rep.diagnostics.is_empty() {
        Ok(rep)
    } else {
        Err(VerifyError {
            diagnostics: rep.diagnostics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{CircuitOp, NodeClaim};

    fn unscheduled(ops: Vec<CircuitOp>, outputs: Vec<usize>) -> Circuit {
        Circuit {
            ops,
            outputs,
            claims: None,
        }
    }

    /// A scheduled circuit whose claims are taken from the scheduled
    /// recomputation itself, so only the rule under test can fire. The
    /// probe pass uses dummy claims — states never depend on claims, only
    /// the cross-check diagnostics do.
    fn scheduled(ops: Vec<CircuitOp>, outputs: Vec<usize>, opts: &VerifyOptions) -> Circuit {
        let dummy = vec![
            NodeClaim {
                scale_bits: 0.0,
                level: 0,
            };
            ops.len()
        ];
        let probe = Circuit {
            ops: ops.clone(),
            outputs: outputs.clone(),
            claims: Some(dummy),
        };
        let (states, _) = analyze(&probe, opts);
        let claims = states
            .iter()
            .map(|s| NodeClaim {
                scale_bits: s.scale_bits,
                level: s.level,
            })
            .collect();
        Circuit {
            ops,
            outputs,
            claims: Some(claims),
        }
    }

    #[test]
    fn struct002_plain_operand_where_cipher_required() {
        let c = unscheduled(
            vec![
                CircuitOp::Input("x".into()),
                CircuitOp::Constant { len: 4 },
                CircuitOp::Add(0, 1),
            ],
            vec![2],
        );
        let err = verify(&c, &VerifyOptions::ckks(40, 40, 3)).unwrap_err();
        assert!(err.has(RuleId::Struct002, 2));
    }

    #[test]
    fn struct002_cipher_operand_where_plain_required() {
        let c = unscheduled(
            vec![
                CircuitOp::Input("x".into()),
                CircuitOp::Input("y".into()),
                CircuitOp::MulPlain(0, 1),
            ],
            vec![2],
        );
        let err = verify(&c, &VerifyOptions::ckks(40, 40, 3)).unwrap_err();
        assert!(err.has(RuleId::Struct002, 2));
    }

    #[test]
    fn struct002_compiler_op_in_source_program() {
        let c = unscheduled(
            vec![CircuitOp::Input("x".into()), CircuitOp::Rescale(0)],
            vec![1],
        );
        let err = verify(&c, &VerifyOptions::ckks(40, 40, 3)).unwrap_err();
        assert!(err.has(RuleId::Struct002, 1));
    }

    #[test]
    fn struct003_no_outputs_and_plain_output() {
        let none = unscheduled(vec![CircuitOp::Input("x".into())], vec![]);
        let err = verify(&none, &VerifyOptions::ckks(40, 40, 3)).unwrap_err();
        assert!(err.has(RuleId::Struct003, 0));

        let plain = unscheduled(vec![CircuitOp::Constant { len: 4 }], vec![0]);
        let err = verify(&plain, &VerifyOptions::ckks(40, 40, 3)).unwrap_err();
        assert!(err.has(RuleId::Struct003, 0));
    }

    #[test]
    fn scale001_operand_scales_beyond_tolerance() {
        // MulPlain then Rescale leaves one Add operand at 2^20 against a
        // fresh 2^40 input; with the tolerance tightened to 10 bits the
        // disagreement is flagged.
        let mut opts = VerifyOptions::ckks(40, 60, 3);
        let ops = vec![
            CircuitOp::Input("x".into()),
            CircuitOp::Constant { len: 4 },
            CircuitOp::MulPlain(0, 1),
            CircuitOp::Rescale(2),
            CircuitOp::ModSwitch(0),
            CircuitOp::Add(3, 4),
        ];
        let c = scheduled(ops.clone(), vec![5], &opts);
        assert!(verify(&c, &opts).is_ok(), "default half-prime band passes");
        opts.scale_tol_bits = 10.0;
        let c = scheduled(ops, vec![5], &opts);
        let err = verify(&c, &opts).unwrap_err();
        assert!(err.has(RuleId::Scale001, 5));
    }

    #[test]
    fn scale002_output_off_the_target_band() {
        // An un-rescaled plaintext product (2^80) reaches the output 40
        // bits off the waterline; nothing consumes it, so only the output
        // rule can complain.
        let opts = VerifyOptions::ckks(40, 60, 3);
        let c = scheduled(
            vec![
                CircuitOp::Input("x".into()),
                CircuitOp::Constant { len: 4 },
                CircuitOp::MulPlain(0, 1),
            ],
            vec![2],
            &opts,
        );
        let err = verify(&c, &opts).unwrap_err();
        assert!(err.has(RuleId::Scale002, 2));
    }

    #[test]
    fn slot002_constant_exceeds_slot_capacity() {
        let opts = VerifyOptions::ckks(40, 40, 3).with_slot_count(8);
        let c = unscheduled(
            vec![
                CircuitOp::Input("x".into()),
                CircuitOp::Constant { len: 16 },
                CircuitOp::AddPlain(0, 1),
            ],
            vec![2],
        );
        let err = verify(&c, &opts).unwrap_err();
        assert!(err.has(RuleId::Slot002, 1));
    }

    #[test]
    fn zero_step_rotation_needs_no_key() {
        let opts = VerifyOptions::ckks(40, 40, 3).with_galois_steps(&[]);
        let c = unscheduled(
            vec![CircuitOp::Input("x".into()), CircuitOp::Rotate(0, 0)],
            vec![1],
        );
        assert!(verify(&c, &opts).is_ok());
    }

    #[test]
    fn noise_model_matches_paper_set_a() {
        let model = NoiseModel::from_params(&HeParams::set_a());
        assert_eq!(model.t_bits, 23);
        assert_eq!(model.data_bits, 116);
        assert!((model.budget_bits() - 92.0).abs() < 1e-9);
        assert!((model.plain_mult_bits() - 30.0).abs() < 1e-9);
        assert!((model.ct_mult_bits() - 37.0).abs() < 1e-9);
    }
}
