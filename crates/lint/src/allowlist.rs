//! The committed allowlist (`lint.toml`): reviewed, count-pinned exceptions
//! for the panic/unsafe audits.
//!
//! Grammar — one entry per line, `#` comments allowed:
//!
//! ```text
//! allow RULE path/to/file.rs [fn=name] count=N reason="one-line justification"
//! ```
//!
//! Counts are exact: if a file gains *or* loses a panic site the build
//! breaks, forcing a reviewed regeneration via `choco-lint --fix-allowlist`.
//! Blanket patterns are rejected by construction (no wildcards, a concrete
//! rule id per entry, non-placeholder reasons).
//!
//! Only the audit rules are allowlistable here: PANIC001–004 and
//! UNSAFE001–002. A pinned UNSAFE001 entry is how a crate root opts down
//! from `#![forbid(unsafe_code)]` to `#![deny(unsafe_code)]` (required for
//! the audited `core::arch` kernels in `choco-math::simd`); the count pin
//! means any further crate can't silently follow. Secret-independence and
//! lazy-domain findings must be fixed or suppressed at the offending line
//! with an inline `allow` marker, where the reviewer can see the code.

use std::collections::HashSet;
use std::fmt::Write as _;

use crate::{Diagnostic, Rule};

/// Rules that may appear in the allowlist file.
pub const ALLOWLISTABLE: &[Rule] = &[
    Rule::Panic001,
    Rule::Panic002,
    Rule::Panic003,
    Rule::Panic004,
    Rule::Unsafe001,
    Rule::Unsafe002,
];

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub rule: Rule,
    pub file: String,
    /// `Some` pins the entry to one function; `None` covers the whole file.
    pub func: Option<String>,
    pub count: usize,
    pub reason: String,
}

/// Parses `lint.toml` text. Returns entries or per-line error messages.
pub fn parse(text: &str) -> Result<Vec<Entry>, Vec<String>> {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_line(line) {
            Ok(e) => entries.push(e),
            Err(msg) => errors.push(format!("lint.toml:{}: {}", ln + 1, msg)),
        }
    }
    if errors.is_empty() {
        Ok(entries)
    } else {
        Err(errors)
    }
}

fn parse_line(line: &str) -> Result<Entry, String> {
    let rest = line
        .strip_prefix("allow ")
        .ok_or("expected `allow RULE file ... reason=\"...\"`")?;
    // Split off the quoted reason first so spaces inside it survive.
    let (head, reason) = match rest.split_once("reason=\"") {
        Some((h, r)) => {
            let reason = r.strip_suffix('"').ok_or("unterminated reason string")?;
            (h.trim(), reason.trim())
        }
        None => return Err("missing reason=\"...\"".into()),
    };
    if reason.is_empty() {
        return Err("reason must not be empty".into());
    }
    if reason.to_ascii_uppercase().starts_with("TODO") {
        return Err("placeholder reason — write a real one-line justification".into());
    }
    let mut fields = head.split_whitespace();
    let rule_txt = fields.next().ok_or("missing rule id")?;
    let rule = Rule::from_id(rule_txt).ok_or_else(|| format!("unknown rule '{rule_txt}'"))?;
    if !ALLOWLISTABLE.contains(&rule) {
        return Err(format!(
            "{} is not allowlistable — fix it or use an inline allow marker",
            rule.id()
        ));
    }
    let file = fields.next().ok_or("missing file path")?.to_string();
    if file.contains('*') || file.contains("..") {
        return Err("blanket patterns are not allowed — name one file".into());
    }
    let mut func = None;
    let mut count = None;
    for field in fields {
        if let Some(v) = field.strip_prefix("fn=") {
            func = Some(v.to_string());
        } else if let Some(v) = field.strip_prefix("count=") {
            let n: usize = v.parse().map_err(|_| format!("bad count '{v}'"))?;
            if n == 0 {
                return Err("count=0 is meaningless — delete the entry".into());
            }
            count = Some(n);
        } else {
            return Err(format!("unexpected field '{field}'"));
        }
    }
    Ok(Entry {
        rule,
        file,
        func,
        count: count.ok_or("missing count=N")?,
        reason: reason.to_string(),
    })
}

/// Applies the allowlist to a diagnostic set: suppresses exactly-covered
/// buckets, and reports count mismatches / stale entries as errors.
///
/// Returns `(surviving_diagnostics, errors)`.
pub fn apply(diags: Vec<Diagnostic>, entries: &[Entry]) -> (Vec<Diagnostic>, Vec<String>) {
    let mut errors = Vec::new();
    let mut suppressed: HashSet<usize> = HashSet::new();
    // Function-scoped entries bind tighter than file-scoped ones.
    let ordered = entries
        .iter()
        .filter(|e| e.func.is_some())
        .chain(entries.iter().filter(|e| e.func.is_none()));
    for e in ordered {
        let matching: Vec<usize> = diags
            .iter()
            .enumerate()
            .filter(|(i, d)| {
                !suppressed.contains(i)
                    && d.rule == e.rule
                    && d.file == e.file
                    && e.func.as_ref().is_none_or(|f| &d.func == f)
            })
            .map(|(i, _)| i)
            .collect();
        if matching.len() == e.count {
            suppressed.extend(matching);
        } else {
            let scope = match &e.func {
                Some(f) => format!("{} fn={f}", e.file),
                None => e.file.clone(),
            };
            errors.push(format!(
                "allowlist drift: {} {} pins count={} but found {} — \
                 re-review and run `choco-lint --fix-allowlist`",
                e.rule.id(),
                scope,
                e.count,
                matching.len()
            ));
        }
    }
    let survivors = diags
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !suppressed.contains(i))
        .map(|(_, d)| d)
        .collect();
    (survivors, errors)
}

/// Regenerates allowlist text from the current diagnostic set, preserving
/// reasons from `old` where the bucket still exists. New buckets get a
/// `TODO` placeholder that the gate refuses, forcing the author to write a
/// real justification before committing.
pub fn generate(diags: &[Diagnostic], old: &[Entry]) -> String {
    let mut out = String::from(
        "# choco-lint allowlist — reviewed, count-pinned panic/unsafe exceptions.\n\
         # Regenerate with `cargo run -q --release -p choco-lint -- --workspace --fix-allowlist`,\n\
         # then review the diff and replace any TODO reasons before committing.\n\
         # Grammar: allow RULE file [fn=name] count=N reason=\"...\"\n",
    );
    // Bucket granularity per rule: unwrap/expect and explicit panics are
    // rare enough to pin per-function; index/assert sites are pinned
    // per-file to keep the list reviewable.
    let mut buckets: Vec<(Rule, String, Option<String>, usize)> = Vec::new();
    for d in diags {
        if !ALLOWLISTABLE.contains(&d.rule) {
            continue;
        }
        let func = match d.rule {
            Rule::Panic001 | Rule::Panic002 => Some(d.func.clone()),
            _ => None,
        };
        match buckets
            .iter_mut()
            .find(|(r, f, fnm, _)| *r == d.rule && *f == d.file && *fnm == func)
        {
            Some(b) => b.3 += 1,
            None => buckets.push((d.rule, d.file.clone(), func, 1)),
        }
    }
    buckets.sort_by(|a, b| {
        (a.1.as_str(), a.0.id(), a.2.as_deref()).cmp(&(b.1.as_str(), b.0.id(), b.2.as_deref()))
    });
    for (rule, file, func, count) in buckets {
        let reason = old
            .iter()
            .find(|e| e.rule == rule && e.file == file && e.func == func)
            .map(|e| e.reason.clone())
            .unwrap_or_else(|| "TODO: justify this exception".into());
        let _ = write!(out, "allow {} {file}", rule.id());
        if let Some(f) = func {
            let _ = write!(out, " fn={f}");
        }
        let _ = writeln!(out, " count={count} reason=\"{reason}\"");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: Rule, file: &str, line: u32, func: &str) -> Diagnostic {
        Diagnostic::new(rule, file, line, func, "msg")
    }

    #[test]
    fn parse_roundtrip() {
        let text = "# header\nallow PANIC001 crates/he/src/x.rs fn=load count=2 reason=\"validated at startup\"\nallow PANIC003 crates/math/src/ntt.rs count=12 reason=\"indices bounded by transform size\"\n";
        let entries = parse(text).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].func.as_deref(), Some("load"));
        assert_eq!(entries[1].count, 12);
    }

    #[test]
    fn parse_rejects_blanket_and_placeholder() {
        assert!(parse("allow PANIC001 crates/* count=1 reason=\"x\"").is_err());
        assert!(parse("allow PANIC001 a.rs count=1 reason=\"TODO: later\"").is_err());
        assert!(parse("allow SEC001 a.rs count=1 reason=\"x\"").is_err());
        assert!(parse("allow PANIC001 a.rs count=0 reason=\"x\"").is_err());
        assert!(parse("allow PANIC001 a.rs count=1").is_err());
    }

    #[test]
    fn apply_exact_count_suppresses() {
        let diags = vec![
            diag(Rule::Panic003, "a.rs", 3, "f"),
            diag(Rule::Panic003, "a.rs", 9, "g"),
        ];
        let entries = parse("allow PANIC003 a.rs count=2 reason=\"bounded\"").unwrap();
        let (left, errs) = apply(diags, &entries);
        assert!(left.is_empty());
        assert!(errs.is_empty());
    }

    #[test]
    fn apply_detects_drift_both_directions() {
        let entries = parse("allow PANIC003 a.rs count=2 reason=\"bounded\"").unwrap();
        let (left, errs) = apply(vec![diag(Rule::Panic003, "a.rs", 3, "f")], &entries);
        assert_eq!(left.len(), 1, "mismatched entries suppress nothing");
        assert_eq!(errs.len(), 1);
        let three = vec![
            diag(Rule::Panic003, "a.rs", 1, "f"),
            diag(Rule::Panic003, "a.rs", 2, "f"),
            diag(Rule::Panic003, "a.rs", 3, "f"),
        ];
        let (_, errs2) = apply(three, &entries);
        assert_eq!(errs2.len(), 1);
    }

    #[test]
    fn fn_scoped_binds_before_file_scoped() {
        let diags = vec![
            diag(Rule::Panic001, "a.rs", 3, "f"),
            diag(Rule::Panic001, "a.rs", 9, "g"),
        ];
        let entries = parse(
            "allow PANIC001 a.rs fn=f count=1 reason=\"checked\"\nallow PANIC001 a.rs fn=g count=1 reason=\"checked\"",
        )
        .unwrap();
        let (left, errs) = apply(diags, &entries);
        assert!(left.is_empty());
        assert!(errs.is_empty());
    }

    #[test]
    fn generate_preserves_reasons_and_buckets() {
        let diags = vec![
            diag(Rule::Panic001, "a.rs", 3, "f"),
            diag(Rule::Panic003, "a.rs", 4, "f"),
            diag(Rule::Panic003, "a.rs", 9, "g"),
        ];
        let old = parse("allow PANIC003 a.rs count=1 reason=\"bounded by n\"").unwrap();
        let text = generate(&diags, &old);
        assert!(text.contains("allow PANIC001 a.rs fn=f count=1 reason=\"TODO"));
        assert!(text.contains("allow PANIC003 a.rs count=2 reason=\"bounded by n\""));
        // Regenerated text with TODO must not parse cleanly (gate refuses it).
        assert!(parse(&text).is_err());
    }
}
