//! The rule families: secret-independence (SEC), lazy-reduction
//! discipline (LAZY), panic-freedom (PANIC), unsafe audit (UNSAFE), and
//! the encrypted-execution verify gate (VERIFY).
//!
//! Everything here works on the token stream — there is no type inference.
//! SEC taint and LAZY u64-typing are lexical approximations, tuned to be
//! conservative on the crypto kernels this workspace actually contains; the
//! escape hatch for reviewed false positives is an inline
//! `// choco-lint: allow(RULE) reason` marker.

use std::collections::{HashMap, HashSet};

use crate::lexer::{Tok, Token};
use crate::parse::{is_keyword, FnInfo, FnMarker, ParsedFile};
use crate::{Diagnostic, Rule};

/// How a file participates in each rule family.
#[derive(Debug, Clone, Default)]
pub struct FileScope {
    /// PANIC001–004 apply (library code of an audited crate).
    pub panic_audit: bool,
    /// LAZY001/LAZY002 apply (modular-arithmetic kernel file).
    pub lazy: bool,
    /// UNSAFE001 applies (this file is a crate/bin root).
    pub crate_root: bool,
}

/// Workspace-wide map from function name to "trusted from secret context"
/// (marked `secret`, `ct-safe`, or `modops`). Functions absent from the map
/// are unknown to the workspace (std / external) and are not checked.
pub type FnRegistry = HashMap<String, bool>;

/// Adds this file's function definitions to the SEC003 registry.
pub fn register_fns(p: &ParsedFile, reg: &mut FnRegistry) {
    for f in &p.fns {
        let trusted = f.marker.is_some();
        // Name collisions across impls: trust wins, to avoid false SEC003
        // positives on same-named helpers (documented limitation).
        let e = reg.entry(f.name.clone()).or_insert(trusted);
        *e = *e || trusted;
    }
}

/// Runs every applicable rule pass over one parsed file.
pub fn check_file(
    path: &str,
    p: &ParsedFile,
    scope: &FileScope,
    reg: &FnRegistry,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (line, msg) in &p.marker_errors {
        out.push(Diagnostic::new(Rule::Marker, path, *line, "-", msg.clone()));
    }
    check_unsafe(path, p, scope, &mut out);
    check_verify(path, p, &mut out);
    if scope.panic_audit {
        check_panics(path, p, &mut out);
    }
    if scope.lazy {
        check_lazy(path, p, &mut out);
    }
    for f in &p.fns {
        if let Some(FnMarker::Secret(publics)) = &f.marker {
            check_secret_fn(path, p, f, publics, reg, &mut out);
        }
    }
    // Inline allows suppress everything they name on their target line.
    out.retain(|d| !p.is_allowed(d.rule, d.line));
    out.sort_by_key(|d| (d.line, d.rule.id()));
    out
}

/// True when the token at `i` looks like the *end of an operand*, i.e. a
/// following `[`, `+`, `*`, `%` is a postfix/binary use rather than a prefix.
fn ends_operand(t: &Token) -> bool {
    match &t.tok {
        Tok::Ident(s) => !is_keyword(s),
        Tok::Int(_) | Tok::Float => true,
        Tok::Punct(")") | Tok::Punct("]") => true,
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// UNSAFE
// ---------------------------------------------------------------------------

fn check_unsafe(path: &str, p: &ParsedFile, scope: &FileScope, out: &mut Vec<Diagnostic>) {
    for (i, t) in p.toks.iter().enumerate() {
        if t.is_ident("unsafe") && !p.is_excluded(i) {
            let func = p
                .enclosing_fn(i)
                .map(|f| f.name.clone())
                .unwrap_or_else(|| "-".into());
            out.push(Diagnostic::new(
                Rule::Unsafe002,
                path,
                t.line,
                &func,
                "unsafe code in a forbid(unsafe_code) workspace",
            ));
        }
    }
    if scope.crate_root {
        let has_forbid = p.toks.windows(7).any(|w| {
            w[0].is_punct("#")
                && w[1].is_punct("!")
                && w[2].is_punct("[")
                && w[3].is_ident("forbid")
                && w[4].is_punct("(")
                && w[5].is_ident("unsafe_code")
        });
        if !has_forbid {
            out.push(Diagnostic::new(
                Rule::Unsafe001,
                path,
                1,
                "-",
                "crate root is missing #![forbid(unsafe_code)]",
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// VERIFY
// ---------------------------------------------------------------------------

/// Calls that establish verified provenance for VERIFY001: `compile()`
/// output is verified by construction, `verify()` re-checks an existing
/// program.
const VERIFY_GATES: &[&str] = &["compile", "verify"];

/// VERIFY001: `execute_encrypted` may only run on a program obtained from
/// `compile()` or re-checked with `verify()`. The lexical approximation is
/// per-function: a call site whose enclosing body has no *earlier* gate
/// call is flagged. Provenance the token scan cannot see (a verified
/// program handed across a function boundary) is suppressed at the call
/// site with an inline `// choco-lint: allow(VERIFY001) reason` marker —
/// the rule is deliberately not count-allowlistable.
fn check_verify(path: &str, p: &ParsedFile, out: &mut Vec<Diagnostic>) {
    let toks = &p.toks;
    // A call shape is `name(` or turbofish `name::<S>(`.
    let is_call = |j: usize| {
        toks.get(j + 1)
            .is_some_and(|t| t.is_punct("(") || t.is_punct("::"))
    };
    for i in 0..toks.len() {
        if p.is_excluded(i) || !toks[i].is_ident("execute_encrypted") {
            continue;
        }
        // Skip the definition itself; only call sites carry the obligation.
        if !is_call(i) || (i > 0 && toks[i - 1].is_ident("fn")) {
            continue;
        }
        let enclosing = p.enclosing_fn(i);
        let gated = enclosing.is_some_and(|f| {
            let start = f.body.map_or(i, |(a, _)| a);
            (start..i).any(|j| {
                matches!(&toks[j].tok, Tok::Ident(s) if VERIFY_GATES.contains(&s.as_str()))
                    && is_call(j)
            })
        });
        if !gated {
            let func = enclosing
                .map(|f| f.name.clone())
                .unwrap_or_else(|| "-".into());
            out.push(Diagnostic::new(
                Rule::Verify001,
                path,
                toks[i].line,
                &func,
                "execute_encrypted on a program with no compile()/verify() provenance in this function — verify before executing",
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// PANIC
// ---------------------------------------------------------------------------

fn check_panics(path: &str, p: &ParsedFile, out: &mut Vec<Diagnostic>) {
    let toks = &p.toks;
    for i in 0..toks.len() {
        if p.is_excluded(i) {
            continue;
        }
        let func = || {
            p.enclosing_fn(i)
                .map(|f| f.name.clone())
                .unwrap_or_else(|| "-".into())
        };
        match &toks[i].tok {
            // `.unwrap(` / `.expect(`
            Tok::Ident(s) if (s == "unwrap" || s == "expect") => {
                let dotted = i > 0 && toks[i - 1].is_punct(".");
                let called = toks.get(i + 1).is_some_and(|t| t.is_punct("("));
                if dotted && called {
                    out.push(Diagnostic::new(
                        Rule::Panic001,
                        path,
                        toks[i].line,
                        &func(),
                        format!(".{s}() in library code — return a typed error instead"),
                    ));
                }
            }
            // `panic!` / `unreachable!` / `todo!` / `unimplemented!`
            Tok::Ident(s)
                if matches!(
                    s.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) && toks.get(i + 1).is_some_and(|t| t.is_punct("!")) =>
            {
                out.push(Diagnostic::new(
                    Rule::Panic002,
                    path,
                    toks[i].line,
                    &func(),
                    format!("{s}! in library code — return a typed error instead"),
                ));
            }
            // `assert!` family (debug_assert* is exempt: compiled out in release)
            Tok::Ident(s)
                if matches!(s.as_str(), "assert" | "assert_eq" | "assert_ne")
                    && toks.get(i + 1).is_some_and(|t| t.is_punct("!")) =>
            {
                out.push(Diagnostic::new(
                    Rule::Panic004,
                    path,
                    toks[i].line,
                    &func(),
                    format!("{s}! in library code — validate and return a typed error"),
                ));
            }
            // slice/array indexing `expr[...]` (panics on out-of-bounds)
            Tok::Punct("[") if i > 0 && ends_operand(&toks[i - 1]) => {
                // `name![` is a macro invocation, not an index.
                if i >= 2 && toks[i - 1].is_punct("]") {
                    // could be chained index a[i][j]; still an index — fall through
                }
                out.push(Diagnostic::new(
                    Rule::Panic003,
                    path,
                    toks[i].line,
                    &func(),
                    "slice index may panic — audited via allowlist or use .get()",
                ));
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// LAZY
// ---------------------------------------------------------------------------

/// Calls that take a lazy value back to the canonical domain.
const CANONICAL_CALLS: &[&str] = &[
    "reduce",
    "reduce_2q",
    "reduce_4q",
    "reduce_signed",
    "mul_mod_shoup",
    "mul_mod",
    "center",
];

/// Calls after which a lazy value must not still be lazy.
const ESCAPE_CALLS: &[&str] = &[
    "serialize",
    "to_bytes",
    "write_u64",
    "encode",
    "decode",
    "compose",
    "push_u64",
];

fn check_lazy(path: &str, p: &ParsedFile, out: &mut Vec<Diagnostic>) {
    let toks = &p.toks;
    // LAZY001: raw +/*/% on u64-ish operands outside modops fns and outside
    // lazy-domain regions.
    for f in &p.fns {
        let Some((body_start, body_end)) = f.body else {
            continue;
        };
        if matches!(f.marker, Some(FnMarker::Modops)) {
            continue;
        }
        let u64ish = collect_u64_idents(toks, f, body_start, body_end);
        for i in body_start..=body_end {
            if p.is_excluded(i) || p.in_lazy_region(i) {
                continue;
            }
            let op = match &toks[i].tok {
                Tok::Punct(op @ ("+" | "*" | "%")) => *op,
                _ => continue,
            };
            if i == 0 || !ends_operand(&toks[i - 1]) {
                continue; // unary or not a binary op
            }
            if operand_is_u64(toks, i, &u64ish) {
                out.push(Diagnostic::new(
                    Rule::Lazy001,
                    path,
                    toks[i].line,
                    &f.name,
                    format!(
                        "raw `{op}` on u64 outside modops wrappers — use choco_math::modops or a lazy-domain region"
                    ),
                ));
            }
        }
    }
    // LAZY002: inside each lazy-domain region, comparisons or serialization
    // before the first canonicalizing call; and regions that never
    // canonicalize at all.
    for r in &p.lazy_regions {
        let mut canonical_seen = false;
        for i in r.start..=r.end {
            match &toks[i].tok {
                Tok::Ident(s) if toks.get(i + 1).is_some_and(|t| t.is_punct("(")) => {
                    if CANONICAL_CALLS.contains(&s.as_str()) {
                        canonical_seen = true;
                    } else if !canonical_seen && ESCAPE_CALLS.contains(&s.as_str()) {
                        out.push(Diagnostic::new(
                            Rule::Lazy002,
                            path,
                            toks[i].line,
                            "-",
                            format!(
                                "`{s}` on a value still in the lazy domain — canonicalize first"
                            ),
                        ));
                    }
                }
                Tok::Punct("%") | Tok::Punct("%=") => canonical_seen = true,
                Tok::Punct(op @ ("==" | "!=")) if !canonical_seen => {
                    out.push(Diagnostic::new(
                        Rule::Lazy002,
                        path,
                        toks[i].line,
                        "-",
                        format!("`{op}` comparison in the lazy domain — representations are not unique, canonicalize first"),
                    ));
                }
                _ => {}
            }
        }
        if !canonical_seen {
            out.push(Diagnostic::new(
                Rule::Lazy002,
                path,
                r.end_line,
                "-",
                "lazy-domain region ends without reaching canonical reduction",
            ));
        }
    }
}

/// Idents we can lexically conclude are u64/u128-valued within `f`'s body.
fn collect_u64_idents(
    toks: &[Token],
    f: &FnInfo,
    body_start: usize,
    body_end: usize,
) -> HashSet<String> {
    let mut set: HashSet<String> = HashSet::new();
    for p in &f.params {
        if p.type_text.contains("u64") || p.type_text.contains("u128") {
            for n in &p.names {
                set.insert(n.clone());
            }
        }
    }
    // Two propagation passes over `let` bindings: explicit annotations,
    // suffixed literals, `as u64`/`as u128` casts, and RHS mentioning an
    // already-u64 ident.
    for _ in 0..2 {
        let mut i = body_start;
        while i <= body_end {
            if toks[i].is_ident("let") {
                // pattern idents until `=` or `;`
                let mut names = Vec::new();
                let mut j = i + 1;
                let mut annotated = false;
                while j <= body_end {
                    match &toks[j].tok {
                        Tok::Punct("=") | Tok::Punct(";") => break,
                        Tok::Ident(s) if s == "u64" || s == "u128" => annotated = true,
                        Tok::Ident(s) if !is_keyword(s) => names.push(s.clone()),
                        _ => {}
                    }
                    j += 1;
                }
                let mut rhs_u64 = false;
                if j <= body_end && toks[j].is_punct("=") {
                    // RHS until the terminating `;` at the same brace depth.
                    let mut d = 0i64;
                    let mut k = j + 1;
                    while k <= body_end {
                        match &toks[k].tok {
                            Tok::Punct("{") | Tok::Punct("(") | Tok::Punct("[") => d += 1,
                            Tok::Punct("}") | Tok::Punct(")") | Tok::Punct("]") => d -= 1,
                            Tok::Punct(";") if d <= 0 => break,
                            Tok::Ident(s) if s == "u64" || s == "u128" => rhs_u64 = true,
                            Tok::Ident(s) if set.contains(s) => rhs_u64 = true,
                            Tok::Int(Some(suf))
                                if suf.starts_with("u64") || suf.starts_with("u128") =>
                            {
                                rhs_u64 = true
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    i = k;
                }
                if annotated || rhs_u64 {
                    for n in names {
                        set.insert(n);
                    }
                }
            }
            i += 1;
        }
    }
    set
}

/// Does the binary op at token `i` have a u64-ish operand on either side?
fn operand_is_u64(toks: &[Token], i: usize, u64ish: &HashSet<String>) -> bool {
    // Left operand: direct ident, or `]` → resolve the indexed base ident.
    let left = match &toks[i - 1].tok {
        Tok::Ident(s) => u64ish.contains(s),
        Tok::Int(Some(suf)) => suf.starts_with("u64") || suf.starts_with("u128"),
        Tok::Punct("]") => indexed_base(toks, i - 1).is_some_and(|b| u64ish.contains(b)),
        _ => false,
    };
    if left {
        return true;
    }
    // Right operand: skip unary `&`/`*`-free cases; check ident or suffixed
    // literal, or `base[` indexing.
    if let Some(t) = toks.get(i + 1) {
        match &t.tok {
            Tok::Ident(s) if u64ish.contains(s) => {
                return true;
            }
            Tok::Int(Some(suf)) if suf.starts_with("u64") || suf.starts_with("u128") => {
                return true;
            }
            _ => {}
        }
    }
    false
}

/// For a `]` at index `close`, finds the ident immediately before the
/// matching `[` (the indexing base), if it is a simple `base[...]`.
fn indexed_base(toks: &[Token], close: usize) -> Option<&str> {
    let mut d = 0i64;
    let mut i = close;
    loop {
        match &toks[i].tok {
            Tok::Punct("]") => d += 1,
            Tok::Punct("[") => {
                d -= 1;
                if d == 0 {
                    return if i > 0 { toks[i - 1].ident() } else { None };
                }
            }
            _ => {}
        }
        if i == 0 {
            return None;
        }
        i -= 1;
    }
}

// ---------------------------------------------------------------------------
// SEC
// ---------------------------------------------------------------------------

fn check_secret_fn(
    path: &str,
    p: &ParsedFile,
    f: &FnInfo,
    publics: &[String],
    reg: &FnRegistry,
    out: &mut Vec<Diagnostic>,
) {
    let Some((body_start, body_end)) = f.body else {
        return;
    };
    let toks = &p.toks;
    // Seed taint: every parameter not declared public. `self` counts as
    // secret (methods on secret-key holders).
    let mut taint: HashSet<String> = HashSet::new();
    for param in &f.params {
        for n in &param.names {
            if !publics.iter().any(|pn| pn == n) {
                taint.insert(n.clone());
            }
        }
    }
    // Propagate through let-bindings and compound assignments. Two passes
    // reach a fixpoint for the straight-line bodies in this workspace.
    for _ in 0..2 {
        let mut i = body_start;
        while i <= body_end {
            if toks[i].is_ident("let") {
                let mut names = Vec::new();
                let mut j = i + 1;
                while j <= body_end {
                    match &toks[j].tok {
                        Tok::Punct("=") | Tok::Punct(";") => break,
                        Tok::Ident(s) if !is_keyword(s) => names.push(s.clone()),
                        _ => {}
                    }
                    j += 1;
                }
                if j <= body_end && toks[j].is_punct("=") {
                    let mut d = 0i64;
                    let mut k = j + 1;
                    let mut tainted = false;
                    while k <= body_end {
                        match &toks[k].tok {
                            Tok::Punct("{") | Tok::Punct("(") | Tok::Punct("[") => d += 1,
                            Tok::Punct("}") | Tok::Punct(")") | Tok::Punct("]") => d -= 1,
                            Tok::Punct(";") if d <= 0 => break,
                            Tok::Ident(s) if taint.contains(s) => tainted = true,
                            _ => {}
                        }
                        k += 1;
                    }
                    if tainted {
                        for n in names {
                            taint.insert(n);
                        }
                    }
                    i = k;
                    continue;
                }
            } else if let Tok::Ident(s) = &toks[i].tok {
                // `x += tainted_expr;` / `x = tainted_expr;` reassignment.
                if !is_keyword(s) && !taint.contains(s) {
                    if let Some(next) = toks.get(i + 1) {
                        let assign = matches!(
                            next.tok,
                            Tok::Punct(
                                "=" | "+="
                                    | "-="
                                    | "*="
                                    | "/="
                                    | "%="
                                    | "&="
                                    | "|="
                                    | "^="
                                    | "<<="
                                    | ">>="
                            )
                        );
                        if assign && (i == body_start || !toks[i - 1].is_ident("let")) {
                            let mut d = 0i64;
                            let mut k = i + 2;
                            let mut tainted = false;
                            while k <= body_end {
                                match &toks[k].tok {
                                    Tok::Punct("{") | Tok::Punct("(") | Tok::Punct("[") => d += 1,
                                    Tok::Punct("}") | Tok::Punct(")") | Tok::Punct("]") => d -= 1,
                                    Tok::Punct(";") if d <= 0 => break,
                                    Tok::Ident(id) if taint.contains(id) => tainted = true,
                                    _ => {}
                                }
                                k += 1;
                            }
                            if tainted {
                                taint.insert(s.clone());
                            }
                        }
                    }
                }
            }
            i += 1;
        }
    }
    // SEC001: branches whose condition/scrutinee mentions tainted idents.
    let mut i = body_start;
    while i <= body_end {
        match &toks[i].tok {
            Tok::Ident(kw) if matches!(kw.as_str(), "if" | "while" | "match") => {
                // Condition runs to the `{` at depth 0 (struct-literal-free
                // conditions, which is what idiomatic Rust requires anyway).
                let mut d = 0i64;
                let mut j = i + 1;
                let mut tainted_ident = None;
                while j <= body_end {
                    match &toks[j].tok {
                        Tok::Punct("(") | Tok::Punct("[") => d += 1,
                        Tok::Punct(")") | Tok::Punct("]") => d -= 1,
                        Tok::Punct("{") if d <= 0 => break,
                        Tok::Ident(s) if taint.contains(s) => {
                            tainted_ident.get_or_insert_with(|| s.clone());
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(ident) = tainted_ident {
                    out.push(Diagnostic::new(
                        Rule::Sec001,
                        path,
                        toks[i].line,
                        &f.name,
                        format!("`{kw}` on secret-derived `{ident}` — timing leaks the secret"),
                    ));
                }
            }
            // assert!/assert_eq!/assert_ne! on tainted values also branch.
            Tok::Ident(kw)
                if matches!(kw.as_str(), "assert" | "assert_eq" | "assert_ne")
                    && toks.get(i + 1).is_some_and(|t| t.is_punct("!")) =>
            {
                let mut d = 0i64;
                let mut j = i + 2;
                let mut tainted_ident = None;
                while j <= body_end {
                    match &toks[j].tok {
                        Tok::Punct("(") => d += 1,
                        Tok::Punct(")") => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        Tok::Ident(s) if taint.contains(s) => {
                            tainted_ident.get_or_insert_with(|| s.clone());
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(ident) = tainted_ident {
                    out.push(Diagnostic::new(
                        Rule::Sec001,
                        path,
                        toks[i].line,
                        &f.name,
                        format!("`{kw}!` on secret-derived `{ident}` — aborts reveal the secret"),
                    ));
                }
            }
            // SEC002: indexing with a tainted index expression.
            Tok::Punct("[") if i > body_start && ends_operand(&toks[i - 1]) => {
                let mut d = 0i64;
                let mut j = i;
                let mut tainted_ident = None;
                while j <= body_end {
                    match &toks[j].tok {
                        Tok::Punct("[") => d += 1,
                        Tok::Punct("]") => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        Tok::Ident(s) if taint.contains(s) => {
                            tainted_ident.get_or_insert_with(|| s.clone());
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(ident) = tainted_ident {
                    out.push(Diagnostic::new(
                        Rule::Sec002,
                        path,
                        toks[i].line,
                        &f.name,
                        format!(
                            "index derived from secret `{ident}` — memory access pattern leaks"
                        ),
                    ));
                }
            }
            // SEC003: direct call to a workspace fn that is not marked.
            Tok::Ident(name)
                if toks.get(i + 1).is_some_and(|t| t.is_punct("("))
                    && !is_keyword(name)
                    && (i == 0 || !toks[i - 1].is_punct("."))
                    && (i == 0 || !toks[i - 1].is_ident("fn"))
                    && name != &f.name =>
            {
                if let Some(&trusted) = reg.get(name) {
                    if !trusted {
                        out.push(Diagnostic::new(
                            Rule::Sec003,
                            path,
                            toks[i].line,
                            &f.name,
                            format!(
                                "call to `{name}` which is not marked secret/ct-safe/modops — review and mark it"
                            ),
                        ));
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn run(src: &str, scope: FileScope) -> Vec<Diagnostic> {
        let p = parse(src);
        let mut reg = FnRegistry::new();
        register_fns(&p, &mut reg);
        check_file("test.rs", &p, &scope, &reg)
    }

    fn panic_scope() -> FileScope {
        FileScope {
            panic_audit: true,
            ..Default::default()
        }
    }

    #[test]
    fn sec001_branch_on_secret() {
        let src = "// choco-lint: secret (public: n)\nfn f(s: u64, n: usize) { if s > 3 { } }";
        let d = run(src, FileScope::default());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::Sec001);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn sec001_respects_public_params() {
        let src = "// choco-lint: secret (public: n)\nfn f(s: u64, n: usize) { if n > 3 { } }";
        assert!(run(src, FileScope::default()).is_empty());
    }

    #[test]
    fn sec001_taint_propagates_through_let() {
        let src =
            "// choco-lint: secret\nfn f(s: u64) { let t = s + 1; let u = t * 2; while u > 0 { } }";
        let d = run(src, FileScope::default());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::Sec001);
    }

    #[test]
    fn sec002_secret_index() {
        let src = "// choco-lint: secret (public: table)\nfn f(s: usize, table: &[u8]) -> u8 { table[s] }";
        let d = run(src, FileScope::default());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::Sec002);
    }

    #[test]
    fn sec003_unmarked_callee() {
        let src =
            "fn helper(x: u64) -> u64 { x }\n// choco-lint: secret\nfn f(s: u64) { helper(s); }";
        let d = run(src, FileScope::default());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::Sec003);
        let marked =
            "// choco-lint: ct-safe\nfn helper(x: u64) -> u64 { x }\n// choco-lint: secret\nfn f(s: u64) { helper(s); }";
        assert!(run(marked, FileScope::default()).is_empty());
    }

    #[test]
    fn panic_rules_fire_and_tests_are_exempt() {
        let src = "fn f(o: Option<u64>, v: &[u64]) -> u64 { o.unwrap() + v[0] }\n#[cfg(test)]\nmod tests { fn g(o: Option<u64>) { o.unwrap(); panic!(); } }";
        let d = run(src, panic_scope());
        let rules: Vec<_> = d.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&Rule::Panic001));
        assert!(rules.contains(&Rule::Panic003));
        assert_eq!(rules.iter().filter(|r| **r == Rule::Panic001).count(), 1);
        assert!(!rules.contains(&Rule::Panic002));
    }

    #[test]
    fn panic002_and_004() {
        let src =
            "fn f(x: u64) { if x > 0 { unreachable!() } assert_eq!(x, 0); debug_assert!(x == 0); }";
        let d = run(src, panic_scope());
        let rules: Vec<_> = d.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&Rule::Panic002));
        assert!(rules.contains(&Rule::Panic004));
        assert_eq!(rules.iter().filter(|r| **r == Rule::Panic004).count(), 1);
    }

    #[test]
    fn inline_allow_suppresses() {
        let src = "fn f(o: Option<u64>) -> u64 {\n    // choco-lint: allow(PANIC001) invariant: always Some after init\n    o.unwrap()\n}";
        assert!(run(src, panic_scope()).is_empty());
    }

    #[test]
    fn lazy001_raw_arith_flagged_only_outside_regions() {
        let scope = FileScope {
            lazy: true,
            ..Default::default()
        };
        let src = "fn f(a: u64, b: u64) -> u64 { a + b }";
        let d = run(src, scope.clone());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::Lazy001);
        let src2 = "fn f(a: u64, b: u64) -> u64 {\n    // choco-lint: lazy-domain\n    let c = a + b;\n    let r = reduce_4q(c, 7);\n    // choco-lint: end-lazy-domain\n    r\n}";
        assert!(run(src2, scope).is_empty());
    }

    #[test]
    fn lazy001_modops_marker_licenses_raw_ops() {
        let scope = FileScope {
            lazy: true,
            ..Default::default()
        };
        let src = "// choco-lint: modops\nfn add_mod(a: u64, b: u64, q: u64) -> u64 { a + b }";
        assert!(run(src, scope).is_empty());
    }

    #[test]
    fn lazy002_compare_before_canonical() {
        let scope = FileScope {
            lazy: true,
            ..Default::default()
        };
        let src = "fn f(a: u64, q: u64) -> bool {\n    // choco-lint: lazy-domain\n    let c = a == q;\n    let r = reduce_4q(a, q);\n    // choco-lint: end-lazy-domain\n    c\n}";
        let d = run(src, scope.clone());
        assert!(d.iter().any(|d| d.rule == Rule::Lazy002 && d.line == 3));
        let src2 = "fn f(a: u64) {\n    // choco-lint: lazy-domain\n    let c = a;\n    // choco-lint: end-lazy-domain\n}";
        let d2 = run(src2, scope);
        assert!(
            d2.iter().any(|d| d.rule == Rule::Lazy002),
            "never-canonical region flagged"
        );
    }

    #[test]
    fn verify001_ungated_execution_is_flagged() {
        let src = "fn f(prog: &Compiled, ctx: &Ctx) { prog.execute_encrypted::<Ckks>(ctx); }";
        let d = run(src, FileScope::default());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::Verify001);
    }

    #[test]
    fn verify001_compile_or_verify_provenance_gates() {
        let compiled =
            "fn f(p: &Program, ctx: &Ctx) { let c = compile(p); c.execute_encrypted::<Ckks>(ctx); }";
        assert!(run(compiled, FileScope::default()).is_empty());
        let verified =
            "fn f(c: &Compiled, ctx: &Ctx) { c.verify().ok(); c.execute_encrypted::<Ckks>(ctx); }";
        assert!(run(verified, FileScope::default()).is_empty());
        // The gate must come *before* the execution.
        let late =
            "fn f(c: &Compiled, ctx: &Ctx) { c.execute_encrypted::<Ckks>(ctx); c.verify().ok(); }";
        assert_eq!(run(late, FileScope::default()).len(), 1);
    }

    #[test]
    fn verify001_definition_and_tests_are_exempt() {
        let src = "fn execute_encrypted(x: u64) -> u64 { x }\n#[cfg(test)]\nmod tests { fn g(c: &Compiled, ctx: &Ctx) { c.execute_encrypted::<Ckks>(ctx); } }";
        assert!(run(src, FileScope::default()).is_empty());
    }

    #[test]
    fn verify001_inline_allow_suppresses() {
        let src = "fn f(c: &Compiled, ctx: &Ctx) {\n    // choco-lint: allow(VERIFY001) caller verified the program at the trust boundary\n    c.execute_encrypted::<Ckks>(ctx);\n}";
        assert!(run(src, FileScope::default()).is_empty());
    }

    #[test]
    fn unsafe_rules() {
        let scope = FileScope {
            crate_root: true,
            ..Default::default()
        };
        let src = "fn f() { let x = unsafe { 1 }; }";
        let d = run(src, scope.clone());
        let rules: Vec<_> = d.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&Rule::Unsafe001));
        assert!(rules.contains(&Rule::Unsafe002));
        let clean = "#![forbid(unsafe_code)]\nfn f() {}";
        assert!(run(clean, scope).is_empty());
    }
}
