//! A lightweight Rust lexer.
//!
//! Produces just enough token structure for the lint passes: identifiers,
//! literals, punctuation, and — crucially — comments, because the marker
//! grammar (`// choco-lint: ...`) lives in comments that ordinary parsers
//! throw away. It is not a full Rust grammar; the analysis layers above are
//! explicit about the token-level heuristics they apply.

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// A lifetime such as `'a` (kept distinct from char literals).
    Lifetime,
    /// Integer literal; the payload keeps any type suffix (`1u64` → `u64`).
    Int(Option<String>),
    /// Float literal.
    Float,
    /// String / raw string / byte string literal.
    Str,
    /// Char or byte literal.
    Char,
    /// Punctuation, longest-match (`<<=`, `==`, `->`, `::`, `+`, ...).
    Punct(&'static str),
    /// `//` or `/* */` comment; payload is the comment text without markers.
    Comment(String),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when this token is the given punctuation.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(&self.tok, Tok::Punct(q) if *q == p)
    }

    /// True when this token is the given identifier/keyword.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(&self.tok, Tok::Ident(s) if s == name)
    }
}

/// Multi-character punctuation, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "...", "..=", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "::", "..", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "(", ")", "[", "]", "{", "}", ",", ";",
    ":", "#", "!", "?", ".", "=", "<", ">", "+", "-", "*", "/", "%", "^", "&", "|", "@", "$", "~",
];

/// Lexes `src` into tokens. Unknown bytes are skipped (the lint passes are
/// heuristics; a best-effort token stream beats a hard error on exotic
/// source).
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        let start_line = line;
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let end = memchr_newline(b, i);
                let text = src[i + 2..end].trim().to_string();
                toks.push(Token {
                    tok: Tok::Comment(text),
                    line: start_line,
                });
                i = end;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let (end, nl) = block_comment_end(b, i + 2);
                let text = src[i + 2..end.saturating_sub(2).max(i + 2)]
                    .trim()
                    .to_string();
                toks.push(Token {
                    tok: Tok::Comment(text),
                    line: start_line,
                });
                line += nl;
                i = end;
            }
            b'"' => {
                let (end, nl) = string_end(b, i + 1);
                toks.push(Token {
                    tok: Tok::Str,
                    line: start_line,
                });
                line += nl;
                i = end;
            }
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                let (end, nl) = raw_or_byte_string_end(b, i);
                toks.push(Token {
                    tok: Tok::Str,
                    line: start_line,
                });
                line += nl;
                i = end;
            }
            b'\'' => {
                // Lifetime ('a followed by non-quote) vs char literal ('a').
                if is_lifetime(b, i) {
                    let mut j = i + 1;
                    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                        j += 1;
                    }
                    toks.push(Token {
                        tok: Tok::Lifetime,
                        line: start_line,
                    });
                    i = j;
                } else {
                    let (end, nl) = char_literal_end(b, i + 1);
                    toks.push(Token {
                        tok: Tok::Char,
                        line: start_line,
                    });
                    line += nl;
                    i = end;
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let mut j = i;
                while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
                toks.push(Token {
                    tok: Tok::Ident(src[i..j].to_string()),
                    line: start_line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let (end, tok) = number_end(src, b, i);
                toks.push(Token {
                    tok,
                    line: start_line,
                });
                i = end;
            }
            _ => {
                let rest = &src[i..];
                if let Some(p) = PUNCTS.iter().find(|p| rest.starts_with(**p)) {
                    toks.push(Token {
                        tok: Tok::Punct(p),
                        line: start_line,
                    });
                    i += p.len();
                } else {
                    i += 1; // unknown byte: skip
                }
            }
        }
    }
    toks
}

fn memchr_newline(b: &[u8], from: usize) -> usize {
    b[from..]
        .iter()
        .position(|&c| c == b'\n')
        .map(|p| from + p)
        .unwrap_or(b.len())
}

/// Returns (index past `*/`, newline count). Handles nesting.
fn block_comment_end(b: &[u8], mut i: usize) -> (usize, u32) {
    let mut depth = 1usize;
    let mut nl = 0u32;
    while i < b.len() {
        if b[i] == b'\n' {
            nl += 1;
            i += 1;
        } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
            depth -= 1;
            i += 2;
            if depth == 0 {
                return (i, nl);
            }
        } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            depth += 1;
            i += 2;
        } else {
            i += 1;
        }
    }
    (b.len(), nl)
}

/// Returns (index past closing quote, newline count).
fn string_end(b: &[u8], mut i: usize) -> (usize, u32) {
    let mut nl = 0u32;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return (i + 1, nl),
            b'\n' => {
                nl += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (b.len(), nl)
}

fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    // r"...", r#"..."#, b"...", br"...", b'x'
    match b[i] {
        b'r' => matches!(b.get(i + 1), Some(b'"') | Some(b'#')),
        b'b' => matches!(b.get(i + 1), Some(b'"') | Some(b'\'') | Some(b'r')),
        _ => false,
    }
}

fn raw_or_byte_string_end(b: &[u8], i: usize) -> (usize, u32) {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'\'' {
        // byte literal b'x'
        let (end, nl) = char_literal_end(b, j + 1);
        return (end, nl);
    }
    let raw = j < b.len() && b[j] == b'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= b.len() || b[j] != b'"' {
        return (j, 0); // not actually a string; treat consumed prefix as junk
    }
    j += 1;
    let mut nl = 0u32;
    while j < b.len() {
        if b[j] == b'\n' {
            nl += 1;
            j += 1;
        } else if !raw && b[j] == b'\\' {
            j += 2;
        } else if b[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while raw && seen < hashes && k < b.len() && b[k] == b'#' {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return (k, nl);
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    (b.len(), nl)
}

fn is_lifetime(b: &[u8], i: usize) -> bool {
    // 'a is a lifetime unless followed by a closing quote ('a').
    let Some(&c1) = b.get(i + 1) else {
        return false;
    };
    if c1 == b'\\' {
        return false;
    }
    if !(c1 == b'_' || c1.is_ascii_alphabetic()) {
        return false;
    }
    let mut j = i + 2;
    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
        j += 1;
    }
    b.get(j) != Some(&b'\'')
}

fn char_literal_end(b: &[u8], mut i: usize) -> (usize, u32) {
    let mut nl = 0u32;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return (i + 1, nl),
            b'\n' => {
                nl += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (b.len(), nl)
}

fn number_end(src: &str, b: &[u8], i: usize) -> (usize, Tok) {
    let mut j = i;
    let hex = b[i] == b'0'
        && matches!(
            b.get(i + 1),
            Some(b'x') | Some(b'X') | Some(b'o') | Some(b'b')
        );
    if hex {
        j += 2;
    }
    let mut is_float = false;
    while j < b.len() {
        let c = b[j];
        if c.is_ascii_hexdigit() || c == b'_' {
            j += 1;
        } else if (!hex && c == b'.' && b.get(j + 1).is_some_and(|d| d.is_ascii_digit()))
            || (!hex && (c == b'e' || c == b'E') && {
                let k = if matches!(b.get(j + 1), Some(b'+') | Some(b'-')) {
                    j + 2
                } else {
                    j + 1
                };
                b.get(k).is_some_and(|d| d.is_ascii_digit())
            })
        {
            is_float = true;
            j += 2;
        } else {
            break;
        }
    }
    // Type suffix (u64, i32, usize, f64, ...).
    let suffix_start = j;
    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
        j += 1;
    }
    let suffix = if j > suffix_start {
        Some(src[suffix_start..j].to_string())
    } else {
        None
    };
    if is_float || matches!(&suffix, Some(s) if s.starts_with('f')) {
        (j, Tok::Float)
    } else {
        (j, Tok::Int(suffix))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_puncts_and_lines() {
        let toks = lex("fn foo(a: u64) {\n  a + 1\n}");
        assert!(toks[0].is_ident("fn"));
        assert!(toks[1].is_ident("foo"));
        let plus = toks.iter().find(|t| t.is_punct("+")).unwrap();
        assert_eq!(plus.line, 2);
    }

    #[test]
    fn comments_are_tokens_with_text() {
        let toks = lex("// choco-lint: secret\nfn f() {}");
        assert_eq!(toks[0].tok, Tok::Comment("choco-lint: secret".into()));
        assert_eq!(toks[0].line, 1);
    }

    #[test]
    fn strings_and_chars_do_not_confuse() {
        let toks = kinds(r#"let s = "a + b // not comment"; let c = 'x';"#);
        assert!(toks.contains(&Tok::Str));
        assert!(toks.contains(&Tok::Char));
        assert!(!toks.iter().any(|t| matches!(t, Tok::Comment(_))));
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let toks = kinds("fn f<'a>(x: &'a str) { let r = r#\"raw \" here\"#; }");
        assert!(toks.contains(&Tok::Lifetime));
        assert!(toks.contains(&Tok::Str));
    }

    #[test]
    fn int_suffixes_are_kept() {
        let toks = kinds("let x = 1u64 + 0x3f_u128 + 2.5;");
        assert!(toks.contains(&Tok::Int(Some("u64".into()))));
        assert!(toks.contains(&Tok::Int(Some("u128".into()))));
        assert!(toks.contains(&Tok::Float));
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* outer /* inner */ still */ fn");
        assert!(matches!(toks[0].tok, Tok::Comment(_)));
        assert!(toks[1].is_ident("fn"));
    }

    #[test]
    fn maximal_munch_puncts() {
        let toks = kinds("a <<= b == c != d..=e");
        assert!(toks.contains(&Tok::Punct("<<=")));
        assert!(toks.contains(&Tok::Punct("==")));
        assert!(toks.contains(&Tok::Punct("!=")));
        assert!(toks.contains(&Tok::Punct("..=")));
    }
}
