//! Item-level structure recovered from the token stream: functions with
//! their parameters and marker comments, test-code ranges, lazy-domain
//! regions, and inline `allow` suppressions.

use crate::lexer::{lex, Tok, Token};
use crate::Rule;

/// Rust keywords that can never be an indexing base or a call target.
pub const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "Self", "static", "struct", "super", "trait", "type", "unsafe", "use",
    "where", "while", "yield",
];

/// Is `s` a Rust keyword?
pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Marker attached to a function via a `// choco-lint: ...` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FnMarker {
    /// `secret` — body must be secret-independent; payload = declared-public
    /// parameter names.
    Secret(Vec<String>),
    /// `ct-safe` — reviewed constant-time helper, callable from secret fns.
    CtSafe,
    /// `modops` — blessed modular-arithmetic wrapper (licenses raw u64
    /// arithmetic inside its body).
    Modops,
}

/// One parsed parameter: pattern idents plus the flat type text.
#[derive(Debug, Clone)]
pub struct Param {
    pub names: Vec<String>,
    pub type_text: String,
}

/// A function found in the token stream.
#[derive(Debug, Clone)]
pub struct FnInfo {
    pub name: String,
    pub line: u32,
    pub params: Vec<Param>,
    /// Token-index range of the body, `{` .. matching `}` inclusive.
    pub body: Option<(usize, usize)>,
    pub marker: Option<FnMarker>,
}

/// An inline `// choco-lint: allow(RULE) reason` suppression.
#[derive(Debug, Clone)]
pub struct InlineAllow {
    pub rule: Rule,
    /// The source line the suppression applies to.
    pub target_line: u32,
}

/// A `lazy-domain` .. `end-lazy-domain` region (token-index range).
#[derive(Debug, Clone)]
pub struct LazyRegion {
    pub start: usize,
    pub end: usize,
    pub end_line: u32,
}

/// Fully parsed file, ready for the rule passes.
pub struct ParsedFile {
    pub toks: Vec<Token>,
    pub fns: Vec<FnInfo>,
    /// Token ranges belonging to `#[cfg(test)]` / `#[test]` items.
    pub excluded: Vec<(usize, usize)>,
    pub allows: Vec<InlineAllow>,
    pub lazy_regions: Vec<LazyRegion>,
    /// Marker-syntax problems (malformed `choco-lint:` comments).
    pub marker_errors: Vec<(u32, String)>,
}

impl ParsedFile {
    /// True when token index `i` falls in test-only code.
    pub fn is_excluded(&self, i: usize) -> bool {
        self.excluded.iter().any(|&(a, b)| i >= a && i <= b)
    }

    /// True when token index `i` falls inside a lazy-domain region.
    pub fn in_lazy_region(&self, i: usize) -> bool {
        self.lazy_regions.iter().any(|r| i >= r.start && i <= r.end)
    }

    /// The innermost function whose body contains token index `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnInfo> {
        self.fns
            .iter()
            .filter(|f| matches!(f.body, Some((a, b)) if i >= a && i <= b))
            .min_by_key(|f| match f.body {
                Some((a, b)) => b - a,
                None => usize::MAX,
            })
    }

    /// True when `rule` is suppressed at `line` by an inline allow.
    pub fn is_allowed(&self, rule: Rule, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && a.target_line == line)
    }
}

/// Parses source text into a [`ParsedFile`].
pub fn parse(src: &str) -> ParsedFile {
    let toks = lex(src);
    let excluded = find_test_ranges(&toks);
    let (allows, lazy_regions, mut marker_errors) = scan_markers(&toks);
    let fns = find_fns(&toks, &mut marker_errors);
    ParsedFile {
        toks,
        fns,
        excluded,
        allows,
        lazy_regions,
        marker_errors,
    }
}

/// Finds the token index of the brace matching the `{` at `open`.
fn match_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0i64;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match &t.tok {
            Tok::Punct("{") => depth += 1,
            Tok::Punct("}") => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Token ranges covered by `#[cfg(test)]` / `#[test]` items.
fn find_test_ranges(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct("#") && i + 1 < toks.len() && toks[i + 1].is_punct("[") {
            // Collect the attribute tokens.
            let mut j = i + 2;
            let mut depth = 1i64;
            let mut has_test = false;
            let mut has_cfg = false;
            while j < toks.len() && depth > 0 {
                match &toks[j].tok {
                    Tok::Punct("[") => depth += 1,
                    Tok::Punct("]") => depth -= 1,
                    Tok::Ident(s) if s == "test" => has_test = true,
                    Tok::Ident(s) if s == "cfg" => has_cfg = true,
                    _ => {}
                }
                j += 1;
            }
            // `#[test]` is exactly `test`; `#[cfg(test)]` is cfg+test.
            let attr_len = j - (i + 2);
            let is_test_attr = has_test && (has_cfg || attr_len <= 2);
            if is_test_attr {
                // Skip further attributes and find the item end.
                let mut k = j;
                while k + 1 < toks.len() && toks[k].is_punct("#") && toks[k + 1].is_punct("[") {
                    let mut d = 0i64;
                    k += 1;
                    while k < toks.len() {
                        match &toks[k].tok {
                            Tok::Punct("[") => d += 1,
                            Tok::Punct("]") => {
                                d -= 1;
                                if d == 0 {
                                    k += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                }
                // Item body: first `{` (match it) or `;` at paren depth 0.
                let mut pd = 0i64;
                let mut end = toks.len() - 1;
                let mut m = k;
                while m < toks.len() {
                    match &toks[m].tok {
                        Tok::Punct("(") => pd += 1,
                        Tok::Punct(")") => pd -= 1,
                        Tok::Punct("{") if pd == 0 => {
                            end = match_brace(toks, m);
                            break;
                        }
                        Tok::Punct(";") if pd == 0 => {
                            end = m;
                            break;
                        }
                        _ => {}
                    }
                    m += 1;
                }
                out.push((i, end));
                i = end + 1;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    out
}

/// Parses every `choco-lint:` comment: inline allows, lazy regions, and
/// syntax errors. Function markers are resolved separately in [`find_fns`].
fn scan_markers(toks: &[Token]) -> (Vec<InlineAllow>, Vec<LazyRegion>, Vec<(u32, String)>) {
    let mut allows = Vec::new();
    let mut regions = Vec::new();
    let mut errors = Vec::new();
    let mut open_region: Option<(usize, u32)> = None;
    for (i, t) in toks.iter().enumerate() {
        let Tok::Comment(text) = &t.tok else { continue };
        let Some(rest) = marker_body(text) else {
            continue;
        };
        if rest == "lazy-domain"
            || rest.starts_with("lazy-domain(")
            || rest.starts_with("lazy-domain ")
        {
            if open_region.is_some() {
                errors.push((t.line, "nested lazy-domain region".into()));
            } else {
                open_region = Some((i, t.line));
            }
        } else if rest == "end-lazy-domain" {
            match open_region.take() {
                Some((start, _)) => regions.push(LazyRegion {
                    start,
                    end: i,
                    end_line: t.line,
                }),
                None => errors.push((t.line, "end-lazy-domain without open region".into())),
            }
        } else if let Some(args) = rest.strip_prefix("allow(") {
            match args.split_once(')') {
                Some((rule_txt, reason)) => match Rule::from_id(rule_txt.trim()) {
                    Some(rule) => {
                        if reason.trim().is_empty() {
                            errors.push((t.line, format!("allow({rule_txt}) needs a reason")));
                        } else {
                            allows.push(InlineAllow {
                                rule,
                                target_line: allow_target_line(toks, i),
                            });
                        }
                    }
                    None => errors.push((t.line, format!("unknown rule '{}'", rule_txt.trim()))),
                },
                None => errors.push((t.line, "malformed allow marker".into())),
            }
        } else if !(rest == "secret"
            || rest.starts_with("secret(")
            || rest.starts_with("secret (")
            || rest == "ct-safe"
            || rest == "modops")
        {
            errors.push((t.line, format!("unknown choco-lint marker '{rest}'")));
        }
    }
    if let Some((_, line)) = open_region {
        errors.push((line, "lazy-domain region never closed".into()));
    }
    (allows, regions, errors)
}

/// Extracts the text after `choco-lint:` if this comment is a marker.
fn marker_body(text: &str) -> Option<&str> {
    let t = text.trim_start_matches('!').trim_start_matches('/').trim();
    t.strip_prefix("choco-lint:").map(str::trim)
}

/// The source line an allow-comment at token `i` suppresses: its own line if
/// code precedes it there, otherwise the next code line.
fn allow_target_line(toks: &[Token], i: usize) -> u32 {
    let line = toks[i].line;
    let code_before = toks[..i]
        .iter()
        .rev()
        .take_while(|t| t.line == line)
        .any(|t| !matches!(t.tok, Tok::Comment(_)));
    if code_before {
        return line;
    }
    toks[i + 1..]
        .iter()
        .find(|t| !matches!(t.tok, Tok::Comment(_)))
        .map(|t| t.line)
        .unwrap_or(line)
}

/// Scans for `fn` items, resolving their marker comments and parameters.
fn find_fns(toks: &[Token], marker_errors: &mut Vec<(u32, String)>) -> Vec<FnInfo> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("fn") && i + 1 < toks.len() {
            if let Some(name) = toks[i + 1].ident() {
                let name = name.to_string();
                let line = toks[i].line;
                let marker = fn_marker(toks, i, marker_errors);
                // Skip generics to the parameter list.
                let mut j = i + 2;
                let mut angle = 0i64;
                while j < toks.len() {
                    match &toks[j].tok {
                        Tok::Punct("<") => angle += 1,
                        Tok::Punct(">") => angle -= 1,
                        Tok::Punct(">>") => angle -= 2,
                        Tok::Punct("(") if angle <= 0 => break,
                        Tok::Punct("{") | Tok::Punct(";") => break,
                        _ => {}
                    }
                    j += 1;
                }
                let (params, after_params) = if j < toks.len() && toks[j].is_punct("(") {
                    parse_params(toks, j)
                } else {
                    (Vec::new(), j)
                };
                // Find the body `{` (or `;` for a bodyless declaration).
                let mut k = after_params;
                let mut body = None;
                while k < toks.len() {
                    match &toks[k].tok {
                        Tok::Punct("{") => {
                            body = Some((k, match_brace(toks, k)));
                            break;
                        }
                        Tok::Punct(";") => break,
                        _ => k += 1,
                    }
                }
                fns.push(FnInfo {
                    name,
                    line,
                    params,
                    body,
                    marker,
                });
            }
        }
        i += 1;
    }
    fns
}

/// Resolves the marker comment (if any) preceding the `fn` token at `at`.
fn fn_marker(
    toks: &[Token],
    at: usize,
    marker_errors: &mut Vec<(u32, String)>,
) -> Option<FnMarker> {
    // Walk back over visibility/attribute/doc tokens to the nearest comment
    // block, stopping at anything that ends a previous item.
    let mut i = at;
    while i > 0 {
        i -= 1;
        match &toks[i].tok {
            Tok::Comment(text) => {
                if let Some(rest) = marker_body(text) {
                    if rest == "ct-safe" {
                        return Some(FnMarker::CtSafe);
                    }
                    if rest == "modops" {
                        return Some(FnMarker::Modops);
                    }
                    if rest == "secret" {
                        return Some(FnMarker::Secret(Vec::new()));
                    }
                    if let Some(args) = rest
                        .strip_prefix("secret")
                        .map(str::trim_start)
                        .and_then(|s| s.strip_prefix('('))
                    {
                        let Some((inner, _)) = args.split_once(')') else {
                            marker_errors.push((toks[i].line, "malformed secret marker".into()));
                            return None;
                        };
                        let publics = match inner.trim().strip_prefix("public:") {
                            Some(list) => list
                                .split(',')
                                .map(|s| s.trim().to_string())
                                .filter(|s| !s.is_empty())
                                .collect(),
                            None => {
                                marker_errors.push((
                                    toks[i].line,
                                    "secret marker expects (public: ...)".into(),
                                ));
                                Vec::new()
                            }
                        };
                        return Some(FnMarker::Secret(publics));
                    }
                    // Other markers (allow / lazy-domain) are positional, not
                    // function markers; keep walking.
                }
                // Plain comment or doc: keep walking.
            }
            Tok::Ident(s)
                if matches!(
                    s.as_str(),
                    "pub"
                        | "const"
                        | "unsafe"
                        | "extern"
                        | "crate"
                        | "in"
                        | "super"
                        | "self"
                        | "async"
                ) => {}
            Tok::Punct("(")
            | Tok::Punct(")")
            | Tok::Punct("#")
            | Tok::Punct("[")
            | Tok::Punct("]")
            | Tok::Punct("::") => {}
            Tok::Str => {}
            Tok::Ident(_) => {
                // Attribute content like `inline` / `derive` idents sit
                // between `[` `]`; anything else ends the search.
                let in_attr = toks[..i]
                    .iter()
                    .rev()
                    .find(|t| {
                        t.is_punct("[") || t.is_punct("]") || t.is_punct(";") || t.is_punct("}")
                    })
                    .is_some_and(|t| t.is_punct("["));
                if !in_attr {
                    return None;
                }
            }
            _ => return None,
        }
    }
    None
}

/// Parses a parameter list starting at the `(` token; returns the params and
/// the index just past the matching `)`.
fn parse_params(toks: &[Token], open: usize) -> (Vec<Param>, usize) {
    let mut depth = 0i64;
    let mut end = open;
    for (idx, t) in toks.iter().enumerate().skip(open) {
        match &t.tok {
            Tok::Punct("(") | Tok::Punct("[") | Tok::Punct("{") => depth += 1,
            Tok::Punct(")") | Tok::Punct("]") | Tok::Punct("}") => {
                depth -= 1;
                if depth == 0 {
                    end = idx;
                    break;
                }
            }
            _ => {}
        }
    }
    // Split the interior at top-level commas.
    let mut params = Vec::new();
    let mut cur: Vec<&Token> = Vec::new();
    let mut d = 0i64;
    let mut angle = 0i64;
    for t in &toks[open + 1..end] {
        match &t.tok {
            Tok::Punct("(") | Tok::Punct("[") | Tok::Punct("{") => d += 1,
            Tok::Punct(")") | Tok::Punct("]") | Tok::Punct("}") => d -= 1,
            Tok::Punct("<") => angle += 1,
            Tok::Punct(">") => angle -= 1,
            Tok::Punct(">>") => angle -= 2,
            Tok::Punct(",") if d == 0 && angle <= 0 => {
                if let Some(p) = param_from_tokens(&cur) {
                    params.push(p);
                }
                cur.clear();
                continue;
            }
            _ => {}
        }
        cur.push(t);
    }
    if let Some(p) = param_from_tokens(&cur) {
        params.push(p);
    }
    (params, end + 1)
}

/// Builds a [`Param`] from the tokens of one comma-separated parameter.
fn param_from_tokens(toks: &[&Token]) -> Option<Param> {
    if toks.is_empty() {
        return None;
    }
    // `self` forms: `self`, `&self`, `&mut self`, `mut self`.
    if toks.iter().any(|t| t.is_ident("self")) && !toks.iter().any(|t| t.is_punct(":")) {
        return Some(Param {
            names: vec!["self".into()],
            type_text: "Self".into(),
        });
    }
    // Split at the first top-level `:` into pattern and type.
    let mut d = 0i64;
    let mut colon = None;
    for (i, t) in toks.iter().enumerate() {
        match &t.tok {
            Tok::Punct("(") | Tok::Punct("[") | Tok::Punct("{") | Tok::Punct("<") => d += 1,
            Tok::Punct(")") | Tok::Punct("]") | Tok::Punct("}") | Tok::Punct(">") => d -= 1,
            Tok::Punct(":") if d == 0 => {
                colon = Some(i);
                break;
            }
            _ => {}
        }
    }
    let colon = colon?;
    let names: Vec<String> = toks[..colon]
        .iter()
        .filter_map(|t| t.ident())
        .filter(|s| !is_keyword(s))
        .map(str::to_string)
        .collect();
    let type_text = toks[colon + 1..]
        .iter()
        .map(|t| match &t.tok {
            Tok::Ident(s) => s.as_str(),
            Tok::Punct(p) => p,
            _ => "_",
        })
        .collect::<Vec<_>>()
        .join(" ");
    Some(Param { names, type_text })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_fns_with_params_and_bodies() {
        let p = parse("pub fn add(a: u64, b: u64) -> u64 { a + b }\nfn empty();");
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "add");
        assert_eq!(p.fns[0].params.len(), 2);
        assert_eq!(p.fns[0].params[0].names, vec!["a"]);
        assert!(p.fns[0].params[0].type_text.contains("u64"));
        assert!(p.fns[0].body.is_some());
        assert!(p.fns[1].body.is_none());
    }

    #[test]
    fn secret_marker_with_publics() {
        let src =
            "// choco-lint: secret (public: n, q)\npub fn sample(rng: &mut R, n: usize, q: u64) {}";
        let p = parse(src);
        assert_eq!(
            p.fns[0].marker,
            Some(FnMarker::Secret(vec!["n".into(), "q".into()]))
        );
    }

    #[test]
    fn marker_survives_attributes_and_docs() {
        let src =
            "// choco-lint: modops\n/// Doc line.\n#[inline(always)]\npub fn add_mod(a: u64) {}";
        let p = parse(src);
        assert_eq!(p.fns[0].marker, Some(FnMarker::Modops));
    }

    #[test]
    fn cfg_test_mod_is_excluded() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n fn helper() { x.unwrap(); }\n}";
        let p = parse(src);
        let unwrap_idx = p.toks.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(p.is_excluded(unwrap_idx));
        let lib_idx = p.toks.iter().position(|t| t.is_ident("lib")).unwrap();
        assert!(!p.is_excluded(lib_idx));
    }

    #[test]
    fn lazy_regions_and_allows() {
        let src = "// choco-lint: lazy-domain\nlet x = a + b;\n// choco-lint: end-lazy-domain\n// choco-lint: allow(PANIC001) checked above\nlet y = o.unwrap();";
        let p = parse(src);
        assert_eq!(p.lazy_regions.len(), 1);
        assert_eq!(p.allows.len(), 1);
        assert_eq!(p.allows[0].target_line, 5);
        assert!(p.marker_errors.is_empty());
    }

    #[test]
    fn malformed_markers_are_reported() {
        let p = parse("// choco-lint: allow(NOPE123) reason\nfn f() {}");
        assert_eq!(p.marker_errors.len(), 1);
        let p2 = parse("// choco-lint: end-lazy-domain\nfn f() {}");
        assert_eq!(p2.marker_errors.len(), 1);
    }

    #[test]
    fn trailing_allow_targets_its_own_line() {
        let src = "let y = o.unwrap(); // choco-lint: allow(PANIC001) startup only";
        let p = parse(src);
        assert_eq!(p.allows[0].target_line, 1);
    }
}
