//! `choco-lint`: HE-aware static analysis for the CHOCO workspace.
//!
//! A dependency-free lint pass (own lexer — the offline-build rule rules out
//! syn/proc-macro) enforcing four rule families over the workspace sources,
//! driven by in-source `// choco-lint:` marker comments and the committed
//! count-pinned allowlist (`lint.toml`):
//!
//! | family | rules | meaning |
//! |---|---|---|
//! | secret-independence | SEC001–003 | fns marked `secret` may not branch on, index with, or pass secrets to unreviewed helpers |
//! | lazy-reduction | LAZY001–002 | raw u64 arithmetic stays inside `modops` wrappers or `lazy-domain` regions, which must canonicalize |
//! | panic audit | PANIC001–004 | unwrap/expect, panic-family macros, slice indexing, assert-family in library code |
//! | unsafe audit | UNSAFE001–002 | every crate root carries `#![forbid(unsafe_code)]`; no `unsafe` tokens |
//! | verify gate | VERIFY001 | `execute_encrypted` call sites need `compile()`/`verify()` provenance in the same function |
//!
//! See DESIGN.md §7 for the marker grammar and the allowlist workflow.

#![forbid(unsafe_code)]

pub mod allowlist;
pub mod lexer;
pub mod parse;
pub mod rules;

use std::fmt;
use std::path::{Path, PathBuf};

pub use rules::{FileScope, FnRegistry};

/// Crates whose library code is subject to the panic audit. The tooling
/// crates (`lint` itself, `bench`, `quickprop`) are exempt: they are not
/// shipped library surface. All crates get the unsafe audit.
pub const PANIC_AUDIT_CRATES: &[&str] = &[
    "math", "prng", "he", "choco", "apps", "taco", "serve", "verify",
];

/// Files subject to the lazy-reduction discipline (modular kernels).
pub const LAZY_FILES: &[&str] = &[
    "crates/math/src/ntt.rs",
    "crates/math/src/modops.rs",
    "crates/he/src/keyswitch.rs",
];

/// Lint rule identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Branch (`if`/`while`/`match`/`assert!`) on a secret-derived value.
    Sec001,
    /// Memory index derived from a secret value.
    Sec002,
    /// Call from a secret fn to an unreviewed workspace helper.
    Sec003,
    /// Raw `+`/`*`/`%` on u64 outside modops wrappers / lazy regions.
    Lazy001,
    /// Comparison/serialization before canonical reduction in a lazy region.
    Lazy002,
    /// `.unwrap()` / `.expect()` in library code.
    Panic001,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!` in library code.
    Panic002,
    /// Slice index (may panic) in library code.
    Panic003,
    /// `assert!` family (not `debug_assert!`) in library code.
    Panic004,
    /// Crate root missing `#![forbid(unsafe_code)]`.
    Unsafe001,
    /// An `unsafe` token anywhere.
    Unsafe002,
    /// `execute_encrypted` with no `compile()`/`verify()` provenance.
    Verify001,
    /// Malformed `choco-lint:` marker comment.
    Marker,
}

impl Rule {
    /// The stable textual id used in output, markers, and the allowlist.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Sec001 => "SEC001",
            Rule::Sec002 => "SEC002",
            Rule::Sec003 => "SEC003",
            Rule::Lazy001 => "LAZY001",
            Rule::Lazy002 => "LAZY002",
            Rule::Panic001 => "PANIC001",
            Rule::Panic002 => "PANIC002",
            Rule::Panic003 => "PANIC003",
            Rule::Panic004 => "PANIC004",
            Rule::Unsafe001 => "UNSAFE001",
            Rule::Unsafe002 => "UNSAFE002",
            Rule::Verify001 => "VERIFY001",
            Rule::Marker => "MARKER",
        }
    }

    /// Parses a rule id as written in markers/allowlist entries.
    pub fn from_id(s: &str) -> Option<Rule> {
        Some(match s {
            "SEC001" => Rule::Sec001,
            "SEC002" => Rule::Sec002,
            "SEC003" => Rule::Sec003,
            "LAZY001" => Rule::Lazy001,
            "LAZY002" => Rule::Lazy002,
            "PANIC001" => Rule::Panic001,
            "PANIC002" => Rule::Panic002,
            "PANIC003" => Rule::Panic003,
            "PANIC004" => Rule::Panic004,
            "UNSAFE001" => Rule::Unsafe001,
            "UNSAFE002" => Rule::Unsafe002,
            "VERIFY001" => Rule::Verify001,
            "MARKER" => Rule::Marker,
            _ => return None,
        })
    }
}

/// One finding: rule, location, enclosing function, and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: Rule,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    pub line: u32,
    /// Enclosing function name, or `-` at module level.
    pub func: String,
    pub msg: String,
}

impl Diagnostic {
    pub fn new(
        rule: Rule,
        file: &str,
        line: u32,
        func: &str,
        msg: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            rule,
            file: file.to_string(),
            line,
            func: func.to_string(),
            msg: msg.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} [{}] {}",
            self.rule.id(),
            self.file,
            self.line,
            self.func,
            self.msg
        )
    }
}

/// Computes how a workspace-relative file participates in each rule family.
pub fn scope_for(rel: &str) -> FileScope {
    let panic_audit = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .is_some_and(|c| PANIC_AUDIT_CRATES.contains(&c))
        && rel.contains("/src/");
    let lazy = LAZY_FILES.contains(&rel);
    let crate_root = rel.ends_with("/src/lib.rs")
        || rel == "src/lib.rs"
        || rel.ends_with("/src/main.rs")
        || rel == "src/main.rs"
        || rel.contains("/src/bin/");
    FileScope {
        panic_audit,
        lazy,
        crate_root,
    }
}

/// Discovers the workspace source files to lint: every `.rs` under
/// `crates/*/src/` plus the umbrella `src/`. Test directories (`tests/`,
/// `benches/`, `examples/`) are intentionally out of scope.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for c in crate_dirs {
            let src = c.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut out)?;
            }
        }
    }
    let umbrella = root.join("src");
    if umbrella.is_dir() {
        collect_rs(&umbrella, &mut out)?;
    }
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Result of a full lint run.
pub struct RunResult {
    /// Surviving diagnostics after inline allows + allowlist.
    pub diags: Vec<Diagnostic>,
    /// Allowlist parse/drift errors (always fatal).
    pub errors: Vec<String>,
    /// All audit-rule diagnostics *before* the allowlist was applied
    /// (input to `--fix-allowlist`).
    pub pre_allowlist: Vec<Diagnostic>,
    pub files_checked: usize,
}

/// Lints the given files (workspace-relative paths resolved against `root`)
/// against `allowlist_text`.
pub fn run(root: &Path, files: &[PathBuf], allowlist_text: &str) -> std::io::Result<RunResult> {
    let mut parsed = Vec::new();
    let mut registry = FnRegistry::new();
    for path in files {
        let src = std::fs::read_to_string(path)?;
        let rel = rel_path(root, path);
        let p = parse::parse(&src);
        rules::register_fns(&p, &mut registry);
        parsed.push((rel, p));
    }
    let mut all = Vec::new();
    for (rel, p) in &parsed {
        let scope = scope_for(rel);
        all.extend(rules::check_file(rel, p, &scope, &registry));
    }
    let (entries, mut errors) = match allowlist::parse(allowlist_text) {
        Ok(e) => (e, Vec::new()),
        Err(errs) => (Vec::new(), errs),
    };
    let pre_allowlist = all.clone();
    let (mut survivors, drift) = allowlist::apply(all, &entries);
    errors.extend(drift);
    survivors
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(RunResult {
        diags: survivors,
        errors,
        pre_allowlist,
        files_checked: parsed.len(),
    })
}

/// Workspace-relative path with forward slashes.
pub fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_roundtrip() {
        for r in [
            Rule::Sec001,
            Rule::Sec002,
            Rule::Sec003,
            Rule::Lazy001,
            Rule::Lazy002,
            Rule::Panic001,
            Rule::Panic002,
            Rule::Panic003,
            Rule::Panic004,
            Rule::Unsafe001,
            Rule::Unsafe002,
            Rule::Verify001,
            Rule::Marker,
        ] {
            assert_eq!(Rule::from_id(r.id()), Some(r));
        }
        assert_eq!(Rule::from_id("NOPE"), None);
    }

    #[test]
    fn scopes_are_computed_from_paths() {
        let s = scope_for("crates/math/src/ntt.rs");
        assert!(s.panic_audit && s.lazy && !s.crate_root);
        let s = scope_for("crates/he/src/lib.rs");
        assert!(s.panic_audit && !s.lazy && s.crate_root);
        let s = scope_for("crates/lint/src/lib.rs");
        assert!(!s.panic_audit && s.crate_root);
        let s = scope_for("src/lib.rs");
        assert!(!s.panic_audit && s.crate_root);
        let s = scope_for("crates/bench/src/bin/ntt.rs");
        assert!(!s.panic_audit && s.crate_root);
    }
}
