//! `choco-lint` CLI.
//!
//! ```text
//! choco-lint --workspace [--root DIR] [--allowlist FILE] [--fix-allowlist]
//! choco-lint [--root DIR] [--allowlist FILE] FILE...
//! ```
//!
//! Exit codes: 0 clean, 1 violations or allowlist drift, 2 usage/IO error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use choco_lint::{allowlist, run, workspace_files};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut allowlist_path: Option<PathBuf> = None;
    let mut workspace = false;
    let mut fix = false;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--fix-allowlist" => fix = true,
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a directory"),
            },
            "--allowlist" => match args.next() {
                Some(v) => allowlist_path = Some(PathBuf::from(v)),
                None => return usage("--allowlist needs a file"),
            },
            "--help" | "-h" => {
                println!(
                    "choco-lint: HE-aware static analysis for the CHOCO workspace\n\n\
                     USAGE:\n  choco-lint --workspace [--root DIR] [--allowlist FILE] [--fix-allowlist]\n  \
                     choco-lint [--root DIR] [--allowlist FILE] FILE...\n\n\
                     Rules: SEC001-003 secret-independence, LAZY001-002 lazy-reduction,\n\
                     PANIC001-004 panic audit, UNSAFE001-002 unsafe audit (see DESIGN.md §7)."
                );
                return ExitCode::SUCCESS;
            }
            _ if a.starts_with('-') => return usage(&format!("unknown flag '{a}'")),
            _ => files.push(PathBuf::from(a)),
        }
    }
    if !workspace && files.is_empty() {
        return usage("pass --workspace or explicit files");
    }
    if workspace && !files.is_empty() {
        return usage("--workspace and explicit files are mutually exclusive");
    }
    let allowlist_path = allowlist_path.unwrap_or_else(|| root.join("lint.toml"));
    let targets = if workspace {
        match workspace_files(&root) {
            Ok(t) => t,
            Err(e) => return io_err(&format!("walking workspace: {e}")),
        }
    } else {
        files.iter().map(|f| root.join(f)).collect()
    };
    let allowlist_text = match std::fs::read_to_string(&allowlist_path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return io_err(&format!("reading {}: {e}", allowlist_path.display())),
    };
    let result = match run(&root, &targets, &allowlist_text) {
        Ok(r) => r,
        Err(e) => return io_err(&format!("lint run failed: {e}")),
    };

    if fix {
        // Regenerate the allowlist from pre-allowlist audit findings,
        // preserving reasons for still-existing buckets. The author reviews
        // the diff (and replaces any TODO reasons) before committing.
        let old = allowlist::parse(&allowlist_text).unwrap_or_default();
        let text = allowlist::generate(&result.pre_allowlist, &old);
        if let Err(e) = std::fs::write(&allowlist_path, &text) {
            return io_err(&format!("writing {}: {e}", allowlist_path.display()));
        }
        let todos = text.matches("TODO").count();
        println!(
            "choco-lint: wrote {} ({} entries, {todos} TODO reasons to fill in)",
            allowlist_path.display(),
            text.lines().filter(|l| l.starts_with("allow ")).count()
        );
        println!("review with: git diff {}", allowlist_path.display());
        return ExitCode::SUCCESS;
    }

    for e in &result.errors {
        eprintln!("error: {e}");
    }
    for d in &result.diags {
        println!("{d}");
    }
    if result.diags.is_empty() && result.errors.is_empty() {
        println!(
            "choco-lint: {} files clean ({} audited sites allowlisted)",
            result.files_checked,
            result.pre_allowlist.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "choco-lint: {} violation(s), {} allowlist error(s) in {} files",
            result.diags.len(),
            result.errors.len(),
            result.files_checked
        );
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("choco-lint: {msg} (try --help)");
    ExitCode::from(2)
}

fn io_err(msg: &str) -> ExitCode {
    eprintln!("choco-lint: {msg}");
    ExitCode::from(2)
}
