//! Clean PANIC counterpart: every fallible path returns a typed error and
//! element access goes through `.get()`.

pub fn takes_first(v: &[u64]) -> Result<u64, String> {
    v.first().copied().ok_or_else(|| "empty slice".to_string())
}

pub fn unwraps(o: Option<u64>) -> Result<u64, String> {
    o.ok_or_else(|| "missing value".to_string())
}

pub fn panics(x: u64) -> Result<u64, String> {
    if x == 0 {
        return Err("zero input".to_string());
    }
    Ok(x)
}

pub fn asserts(x: u64) -> Result<u64, String> {
    if x == 0 {
        return Err("positive input required".to_string());
    }
    Ok(x)
}
