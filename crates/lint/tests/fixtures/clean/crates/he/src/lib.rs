//! Clean UNSAFE counterpart: forbid attribute present, no unsafe code.

#![forbid(unsafe_code)]

pub mod panics;
