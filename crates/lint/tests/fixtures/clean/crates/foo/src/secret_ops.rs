//! Clean SEC counterpart: the same shape of computation written
//! constant-time — no secret-dependent branch, index, or unmarked call.

// choco-lint: ct-safe
fn mask_helper(x: u64) -> u64 {
    x.wrapping_mul(3)
}

// choco-lint: secret (public: n)
pub fn constant_time_fold(sk: u64, n: u64) -> u64 {
    let mut acc = 0u64;
    let mut i = 0u64;
    while i < n {
        acc = acc.wrapping_add(mask_helper(sk));
        i += 1;
    }
    acc
}
