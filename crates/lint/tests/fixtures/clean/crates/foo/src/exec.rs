//! Clean twin of the VERIFY001 fixture: every encrypted execution is gated
//! on a compile() or verify() call in the same function, or carries a
//! reviewed inline allow at the call site.

fn run_compiled(src: &Program, ctx: &Ctx) -> Out {
    let prog = compile(src);
    prog.execute_encrypted::<Ckks>(ctx)
}

fn run_reverified(prog: &Compiled, ctx: &Ctx) -> Out {
    prog.verify().ok();
    prog.execute_encrypted::<Ckks>(ctx)
}

fn run_reviewed(prog: &Compiled, ctx: &Ctx) -> Out {
    // choco-lint: allow(VERIFY001) caller passes a program straight out of compile()
    prog.execute_encrypted::<Ckks>(ctx)
}
