//! Clean LAZY counterpart: raw arithmetic only inside a modops-marked
//! wrapper or a lazy-domain region that reaches canonical reduction.

// choco-lint: modops
pub fn add_mod(a: u64, b: u64, q: u64) -> u64 {
    let s = a + b;
    if s >= q {
        s - q
    } else {
        s
    }
}

pub fn butterfly(a: u64, b: u64, q: u64) -> u64 {
    // choco-lint: lazy-domain
    let lazy = a + b;
    let r = reduce_4q(lazy, q);
    // choco-lint: end-lazy-domain
    r
}
