//! VERIFY001 fixture: encrypted execution with no compile()/verify()
//! provenance in the enclosing function.

fn run_unchecked(prog: &Compiled, ctx: &Ctx) -> Out {
    prog.execute_encrypted::<Ckks>(ctx)
}

#[cfg(test)]
mod tests {
    fn exempt(prog: &Compiled, ctx: &Ctx) -> Out {
        prog.execute_encrypted::<Ckks>(ctx)
    }
}
