//! SEC fixture: a secret-marked function that branches on, indexes with,
//! and forwards the secret to an unmarked helper. Lines are pinned by the
//! integration test — keep edits in sync with `tests/fixtures.rs`.

fn leak_helper(x: u64) -> u64 {
    x
}

// choco-lint: secret (public: table)
pub fn leaky(sk: u64, table: &[u64]) -> u64 {
    if sk > 3 {
        return 1;
    }
    let i = sk as usize;
    let v = table[i];
    leak_helper(v)
}
