//! Marker-grammar fixture: malformed markers are themselves diagnostics.

// choco-lint: allow(PANIC001)
pub fn missing_reason() {}

// choco-lint: frobnicate
pub fn unknown_marker() {}
