//! UNSAFE fixture: crate root without `#![forbid(unsafe_code)]` and an
//! `unsafe` block in library code.

pub mod panics;

pub fn reads_raw(p: *const u64) -> u64 {
    unsafe { *p }
}
