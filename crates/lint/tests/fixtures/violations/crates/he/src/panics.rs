//! PANIC fixture: one violation per panic rule in audited library code,
//! plus a test module that must be exempt.

pub fn takes_first(v: &[u64]) -> u64 {
    v[0]
}

pub fn unwraps(o: Option<u64>) -> u64 {
    o.unwrap()
}

pub fn expects(o: Option<u64>) -> u64 {
    o.expect("always present")
}

pub fn panics(x: u64) -> u64 {
    if x == 0 {
        panic!("zero input");
    }
    x
}

pub fn asserts(x: u64) -> u64 {
    assert!(x > 0, "positive input required");
    x
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        super::unwraps(Some(1));
        assert_eq!(super::takes_first(&[1]), 1);
    }
}
