//! LAZY fixture: raw u64 arithmetic outside the blessed wrappers, a
//! comparison inside a lazy-domain region, and a region that never reaches
//! canonical form.

pub fn raw_add(a: u64, b: u64) -> u64 {
    a + b
}

pub fn compare_while_lazy(a: u64, q: u64) -> bool {
    // choco-lint: lazy-domain
    let c = a == q;
    let r = reduce_4q(a, q);
    // choco-lint: end-lazy-domain
    let _ = r;
    c
}

pub fn never_canonical(a: u64) -> u64 {
    // choco-lint: lazy-domain
    let c = a;
    // choco-lint: end-lazy-domain
    c
}
