//! End-to-end fixture tests: each rule family has a violation file with
//! pinned (rule, file, line) expectations and a clean counterpart that must
//! produce zero diagnostics.

use std::path::{Path, PathBuf};

use choco_lint::{run, Rule};

fn fixture_root(which: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(which)
}

fn fixture_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

fn diag_tuples(root: &Path, allowlist: &str) -> (Vec<(Rule, String, u32)>, Vec<String>) {
    let result = run(root, &fixture_files(root), allowlist).unwrap();
    let tuples = result
        .diags
        .iter()
        .map(|d| (d.rule, d.file.clone(), d.line))
        .collect();
    (tuples, result.errors)
}

#[test]
fn violation_fixtures_produce_exact_diagnostics() {
    let (got, errors) = diag_tuples(&fixture_root("violations"), "");
    assert!(errors.is_empty(), "unexpected errors: {errors:?}");
    let expect: Vec<(Rule, String, u32)> = vec![
        (Rule::Marker, "crates/foo/src/bad_marker.rs".into(), 3),
        (Rule::Marker, "crates/foo/src/bad_marker.rs".into(), 6),
        (Rule::Verify001, "crates/foo/src/exec.rs".into(), 5),
        (Rule::Sec001, "crates/foo/src/secret_ops.rs".into(), 11),
        (Rule::Sec002, "crates/foo/src/secret_ops.rs".into(), 15),
        (Rule::Sec003, "crates/foo/src/secret_ops.rs".into(), 16),
        (Rule::Unsafe001, "crates/he/src/lib.rs".into(), 1),
        (Rule::Unsafe002, "crates/he/src/lib.rs".into(), 7),
        (Rule::Panic003, "crates/he/src/panics.rs".into(), 5),
        (Rule::Panic001, "crates/he/src/panics.rs".into(), 9),
        (Rule::Panic001, "crates/he/src/panics.rs".into(), 13),
        (Rule::Panic002, "crates/he/src/panics.rs".into(), 18),
        (Rule::Panic004, "crates/he/src/panics.rs".into(), 24),
        (Rule::Lazy001, "crates/math/src/ntt.rs".into(), 6),
        (Rule::Lazy002, "crates/math/src/ntt.rs".into(), 11),
        (Rule::Lazy002, "crates/math/src/ntt.rs".into(), 21),
    ];
    let mut got_sorted = got.clone();
    let mut expect_sorted = expect.clone();
    got_sorted.sort_by(|a, b| (a.1.as_str(), a.2, a.0.id()).cmp(&(b.1.as_str(), b.2, b.0.id())));
    expect_sorted.sort_by(|a, b| (a.1.as_str(), a.2, a.0.id()).cmp(&(b.1.as_str(), b.2, b.0.id())));
    assert_eq!(got_sorted, expect_sorted);
}

#[test]
fn clean_fixtures_are_silent() {
    let (got, errors) = diag_tuples(&fixture_root("clean"), "");
    assert!(errors.is_empty(), "unexpected errors: {errors:?}");
    assert!(
        got.is_empty(),
        "clean fixtures must produce no diagnostics: {got:?}"
    );
}

#[test]
fn allowlist_suppresses_exact_counts() {
    let allowlist = r#"
allow PANIC001 crates/he/src/panics.rs fn=unwraps count=1 reason="fixture audit"
allow PANIC001 crates/he/src/panics.rs fn=expects count=1 reason="fixture audit"
allow PANIC002 crates/he/src/panics.rs fn=panics count=1 reason="fixture audit"
allow PANIC003 crates/he/src/panics.rs count=1 reason="fixture audit"
allow PANIC004 crates/he/src/panics.rs count=1 reason="fixture audit"
allow UNSAFE002 crates/he/src/lib.rs count=1 reason="fixture audit"
"#;
    let (got, errors) = diag_tuples(&fixture_root("violations"), allowlist);
    assert!(
        errors.is_empty(),
        "allowlist should apply cleanly: {errors:?}"
    );
    // Only the non-allowlistable families survive: SEC, LAZY, markers, and
    // the missing-forbid attribute.
    assert!(
        got.iter().all(|(r, _, _)| matches!(
            r,
            Rule::Sec001
                | Rule::Sec002
                | Rule::Sec003
                | Rule::Lazy001
                | Rule::Lazy002
                | Rule::Marker
                | Rule::Unsafe001
                | Rule::Verify001
        )),
        "audited families must be fully suppressed: {got:?}"
    );
    assert_eq!(got.len(), 10);
}

#[test]
fn allowlist_count_drift_is_an_error() {
    let allowlist =
        "allow PANIC001 crates/he/src/panics.rs fn=unwraps count=2 reason=\"fixture audit\"\n";
    let (_, errors) = diag_tuples(&fixture_root("violations"), allowlist);
    assert!(
        errors.iter().any(|e| e.contains("fix-allowlist")),
        "count drift must point at --fix-allowlist: {errors:?}"
    );
}

#[test]
fn sec_rules_are_never_allowlistable() {
    let allowlist = "allow SEC001 crates/foo/src/secret_ops.rs count=1 reason=\"not allowed\"\n";
    let (_, errors) = diag_tuples(&fixture_root("violations"), allowlist);
    assert!(
        !errors.is_empty(),
        "SEC rules must be rejected by the allowlist parser"
    );
}

#[test]
fn verify001_is_never_allowlistable() {
    let allowlist = "allow VERIFY001 crates/foo/src/exec.rs count=1 reason=\"not allowed\"\n";
    let (_, errors) = diag_tuples(&fixture_root("violations"), allowlist);
    assert!(
        !errors.is_empty(),
        "VERIFY001 must be rejected by the allowlist parser"
    );
}
