//! Micro-benches for the NTT substrate (the kernel every HE op rests on;
//! Table 1's O(N log N) terms). Plain-std harness; see `choco_bench::bench`.

use std::hint::black_box;

use choco_bench::{bench, bench_group};
use choco_math::ntt::NttTable;
use choco_math::prime::generate_ntt_primes;

fn main() {
    bench_group("ntt");
    for n in [1024usize, 4096, 8192] {
        let q = generate_ntt_primes(58, n, 1)[0];
        let table = NttTable::new(n, q).unwrap();
        let data: Vec<u64> = (0..n as u64).map(|i| i % q).collect();
        bench(&format!("forward/{n}"), || {
            let mut a = data.clone();
            table.forward(black_box(&mut a));
            a
        });
        bench(&format!("negacyclic_mul/{n}"), || {
            table.negacyclic_mul(black_box(&data), black_box(&data))
        });
    }
}
