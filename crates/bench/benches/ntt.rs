//! Criterion benches for the NTT substrate (the kernel every HE op rests
//! on; Table 1's O(N log N) terms).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use choco_math::ntt::NttTable;
use choco_math::prime::generate_ntt_primes;

fn bench_ntt(c: &mut Criterion) {
    let mut group = c.benchmark_group("ntt");
    group.sample_size(20);
    for n in [1024usize, 4096, 8192] {
        let q = generate_ntt_primes(58, n, 1)[0];
        let table = NttTable::new(n, q).unwrap();
        let data: Vec<u64> = (0..n as u64).map(|i| i % q).collect();
        group.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter(|| {
                let mut a = data.clone();
                table.forward(black_box(&mut a));
                a
            })
        });
        group.bench_with_input(BenchmarkId::new("negacyclic_mul", n), &n, |b, _| {
            b.iter(|| table.negacyclic_mul(black_box(&data), black_box(&data)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ntt);
criterion_main!(benches);
