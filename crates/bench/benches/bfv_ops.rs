//! Criterion benches for the BFV primitive operations at the paper's
//! parameter sets (Table 1 measured, Figure 8's software column).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use choco_he::bfv::BfvContext;
use choco_he::params::HeParams;
use choco_prng::Blake3Rng;

fn bench_bfv(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfv_set_b");
    group.sample_size(10);
    let params = HeParams::set_b();
    let ctx = BfvContext::new(&params).unwrap();
    let mut rng = Blake3Rng::from_seed(b"bench bfv");
    let keys = ctx.keygen(&mut rng);
    let rk = ctx.relin_key(keys.secret_key(), &mut rng).unwrap();
    let gks = ctx.galois_keys(keys.secret_key(), &[1], &mut rng).unwrap();
    let encoder = ctx.batch_encoder().unwrap();
    let values: Vec<u64> = (0..params.degree() as u64).map(|i| i % 16).collect();
    let pt = encoder.encode(&values).unwrap();
    let ct = ctx.encryptor(keys.public_key()).encrypt(&pt, &mut rng);
    let eval = ctx.evaluator();

    group.bench_function("encrypt", |b| {
        b.iter(|| ctx.encryptor(keys.public_key()).encrypt(black_box(&pt), &mut rng))
    });
    group.bench_function("decrypt", |b| {
        b.iter(|| ctx.decryptor(keys.secret_key()).decrypt(black_box(&ct)))
    });
    group.bench_function("add", |b| b.iter(|| eval.add(black_box(&ct), &ct).unwrap()));
    group.bench_function("multiply_plain", |b| {
        b.iter(|| eval.multiply_plain(black_box(&ct), &pt))
    });
    group.bench_function("rotate_rows", |b| {
        b.iter(|| eval.rotate_rows(black_box(&ct), 1, &gks).unwrap())
    });
    group.bench_function("multiply_relin", |b| {
        b.iter(|| eval.multiply_relin(black_box(&ct), &ct, &rk).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_bfv);
criterion_main!(benches);
