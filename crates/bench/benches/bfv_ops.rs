//! Micro-benches for the BFV primitive operations at the paper's parameter
//! sets (Table 1 measured, Figure 8's software column).

use std::hint::black_box;

use choco_bench::{bench, bench_group};
use choco_he::bfv::BfvContext;
use choco_he::params::HeParams;
use choco_prng::Blake3Rng;

fn main() {
    bench_group("bfv_set_b");
    let params = HeParams::set_b();
    let ctx = BfvContext::new(&params).unwrap();
    let mut rng = Blake3Rng::from_seed(b"bench bfv");
    let keys = ctx.keygen(&mut rng);
    let rk = ctx.relin_key(keys.secret_key(), &mut rng).unwrap();
    let gks = ctx.galois_keys(keys.secret_key(), &[1], &mut rng).unwrap();
    let encoder = ctx.batch_encoder().unwrap();
    let values: Vec<u64> = (0..params.degree() as u64).map(|i| i % 16).collect();
    let pt = encoder.encode(&values).unwrap();
    let ct = ctx.encryptor(keys.public_key()).encrypt(&pt, &mut rng);
    let eval = ctx.evaluator();

    let mut enc_rng = Blake3Rng::from_seed(b"bench bfv encrypt");
    bench("encrypt", || {
        ctx.encryptor(keys.public_key())
            .encrypt(black_box(&pt), &mut enc_rng)
    });
    bench("decrypt", || {
        ctx.decryptor(keys.secret_key()).decrypt(black_box(&ct))
    });
    bench("add", || eval.add(black_box(&ct), &ct).unwrap());
    bench("multiply_plain", || {
        eval.multiply_plain(black_box(&ct), &pt)
    });
    bench("rotate_rows", || {
        eval.rotate_rows(black_box(&ct), 1, &gks).unwrap()
    });
    bench("multiply_relin", || {
        eval.multiply_relin(black_box(&ct), &ct, &rk).unwrap()
    });
}
