//! Benches for the Figure 11 distance kernels (server-side cost per packing
//! variant, small CKKS parameters for bench turnaround).

use choco::transport::Session;
use choco_apps::distance::{distance_rotation_steps, encrypted_distances, PackingVariant};
use choco_bench::{bench, bench_group};
use choco_he::params::HeParams;
use choco_he::Ckks;

fn main() {
    bench_group("distance_kernels");
    let params = HeParams::ckks_insecure(1024, &[45, 45, 45, 46], 38).unwrap();
    let (dims, n) = (4usize, 8usize);
    let query: Vec<f64> = (0..dims).map(|i| i as f64 * 0.1).collect();
    let points: Vec<Vec<f64>> = (0..n)
        .map(|p| (0..dims).map(|i| (p + i) as f64 * 0.05).collect())
        .collect();
    for variant in PackingVariant::all() {
        bench(variant.label(), || {
            let steps = distance_rotation_steps(dims, n, 512);
            let mut session = Session::<Ckks>::direct(&params, b"bench dist", &steps).unwrap();
            encrypted_distances(variant, &mut session, &query, &points).unwrap()
        });
    }
}
