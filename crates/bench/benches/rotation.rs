//! Criterion bench contrasting the paper's two windowed-rotation paths
//! (Figure 4 / Table 4): rotational redundancy vs. masked permutation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use choco::rotation::{windowed_rotate_masked, windowed_rotate_redundant, RedundantLayout};
use choco_he::bfv::BfvContext;
use choco_he::params::HeParams;
use choco_prng::Blake3Rng;

fn bench_rotation(c: &mut Criterion) {
    let mut group = c.benchmark_group("windowed_rotation_set_b");
    group.sample_size(10);
    let params = HeParams::set_b();
    let ctx = BfvContext::new(&params).unwrap();
    let mut rng = Blake3Rng::from_seed(b"bench rot");
    let keys = ctx.keygen(&mut rng);
    let gks = ctx
        .galois_keys(keys.secret_key(), &[3, -13], &mut rng)
        .unwrap();
    let encoder = ctx.batch_encoder().unwrap();
    let layout = RedundantLayout::new(16, 4);
    let values: Vec<u64> = (1..=16).collect();
    let ct_red = ctx
        .encryptor(keys.public_key())
        .encrypt(&encoder.encode(&layout.pack(&values)).unwrap(), &mut rng);
    let ct_plain = ctx
        .encryptor(keys.public_key())
        .encrypt(&encoder.encode(&values).unwrap(), &mut rng);

    group.bench_function("rotational_redundancy", |b| {
        b.iter(|| windowed_rotate_redundant(&ctx, black_box(&ct_red), &layout, 3, &gks).unwrap())
    });
    group.bench_function("masked_permute_baseline", |b| {
        b.iter(|| windowed_rotate_masked(&ctx, black_box(&ct_plain), 16, 3, &gks).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_rotation);
criterion_main!(benches);
