//! Bench contrasting the paper's two windowed-rotation paths (Figure 4 /
//! Table 4): rotational redundancy vs. masked permutation.

use std::hint::black_box;

use choco::rotation::{windowed_rotate_masked, windowed_rotate_redundant, RedundantLayout};
use choco_bench::{bench, bench_group};
use choco_he::bfv::BfvContext;
use choco_he::params::HeParams;
use choco_prng::Blake3Rng;

fn main() {
    bench_group("windowed_rotation_set_b");
    let params = HeParams::set_b();
    let ctx = BfvContext::new(&params).unwrap();
    let mut rng = Blake3Rng::from_seed(b"bench rot");
    let keys = ctx.keygen(&mut rng);
    let gks = ctx
        .galois_keys(keys.secret_key(), &[3, -13], &mut rng)
        .unwrap();
    let encoder = ctx.batch_encoder().unwrap();
    let layout = RedundantLayout::new(16, 4);
    let values: Vec<u64> = (1..=16).collect();
    let ct_red = ctx
        .encryptor(keys.public_key())
        .encrypt(&encoder.encode(&layout.pack(&values)).unwrap(), &mut rng);
    let ct_plain = ctx
        .encryptor(keys.public_key())
        .encrypt(&encoder.encode(&values).unwrap(), &mut rng);

    bench("rotational_redundancy", || {
        windowed_rotate_redundant(&ctx, black_box(&ct_red), &layout, 3, &gks).unwrap()
    });
    bench("masked_permute_baseline", || {
        windowed_rotate_masked(&ctx, black_box(&ct_plain), 16, 3, &gks).unwrap()
    });
}
