//! Micro-benches for CKKS primitives (the PageRank/KNN substrate; §4.7's
//! encode/decode costs).

use std::hint::black_box;

use choco_bench::{bench, bench_group};
use choco_he::ckks::CkksContext;
use choco_he::params::HeParams;
use choco_prng::Blake3Rng;

fn main() {
    bench_group("ckks_set_c");
    let params = HeParams::set_c();
    let ctx = CkksContext::new(&params).unwrap();
    let mut rng = Blake3Rng::from_seed(b"bench ckks");
    let keys = ctx.keygen(&mut rng);
    let rk = ctx.relin_key(keys.secret_key(), &mut rng);
    let gks = ctx.galois_keys(keys.secret_key(), &[1], &mut rng);
    let values: Vec<f64> = (0..ctx.slot_count())
        .map(|i| (i as f64 * 0.01).sin())
        .collect();
    let pt = ctx.encode(&values).unwrap();
    let ct = ctx.encrypt(&pt, keys.public_key(), &mut rng).unwrap();

    bench("encode", || ctx.encode(black_box(&values)).unwrap());
    let mut enc_rng = Blake3Rng::from_seed(b"bench ckks encrypt");
    bench("encrypt", || {
        ctx.encrypt(black_box(&pt), keys.public_key(), &mut enc_rng)
            .unwrap()
    });
    bench("decrypt_decode", || {
        ctx.decode(&ctx.decrypt(black_box(&ct), keys.secret_key()))
    });
    bench("multiply_relin", || {
        ctx.multiply_relin(black_box(&ct), &ct, &rk).unwrap()
    });
    bench("rotate", || ctx.rotate(black_box(&ct), 1, &gks).unwrap());
}
