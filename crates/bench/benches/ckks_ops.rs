//! Criterion benches for CKKS primitives (the PageRank/KNN substrate;
//! §4.7's encode/decode costs).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use choco_he::ckks::CkksContext;
use choco_he::params::HeParams;
use choco_prng::Blake3Rng;

fn bench_ckks(c: &mut Criterion) {
    let mut group = c.benchmark_group("ckks_set_c");
    group.sample_size(10);
    let params = HeParams::set_c();
    let ctx = CkksContext::new(&params).unwrap();
    let mut rng = Blake3Rng::from_seed(b"bench ckks");
    let keys = ctx.keygen(&mut rng);
    let rk = ctx.relin_key(keys.secret_key(), &mut rng);
    let gks = ctx.galois_keys(keys.secret_key(), &[1], &mut rng);
    let values: Vec<f64> = (0..ctx.slot_count()).map(|i| (i as f64 * 0.01).sin()).collect();
    let pt = ctx.encode(&values).unwrap();
    let ct = ctx.encrypt(&pt, keys.public_key(), &mut rng).unwrap();

    group.bench_function("encode", |b| b.iter(|| ctx.encode(black_box(&values)).unwrap()));
    group.bench_function("encrypt", |b| {
        b.iter(|| ctx.encrypt(black_box(&pt), keys.public_key(), &mut rng).unwrap())
    });
    group.bench_function("decrypt_decode", |b| {
        b.iter(|| ctx.decode(&ctx.decrypt(black_box(&ct), keys.secret_key())))
    });
    group.bench_function("multiply_relin", |b| {
        b.iter(|| ctx.multiply_relin(black_box(&ct), &ct, &rk).unwrap())
    });
    group.bench_function("rotate", |b| {
        b.iter(|| ctx.rotate(black_box(&ct), 1, &gks).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_ckks);
criterion_main!(benches);
