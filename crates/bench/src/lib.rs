//! Shared helpers for the table/figure regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper: it runs the relevant workload (real encrypted kernels where
//! feasible, the calibrated analytic models where the paper used hardware
//! we must simulate) and prints the same rows/series the paper reports,
//! alongside the paper's published values where they are point-comparable.
//! `EXPERIMENTS.md` archives one run of each.

#![forbid(unsafe_code)]
use std::time::Instant;

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints a sub-note line.
pub fn note(text: &str) {
    println!("    ({text})");
}

/// Formats a byte count as MB with two decimals.
pub fn mb(bytes: u64) -> String {
    format!("{:.2} MB", bytes as f64 / 1e6)
}

/// Formats seconds adaptively (s / ms / µs).
pub fn time_str(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Times a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Times a closure averaged over `iters` runs.
pub fn timed_avg(iters: usize, mut f: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64
}

/// A plain-std micro-benchmark runner (offline substitute for Criterion:
/// the container cannot fetch external crates, and the regeneration
/// binaries only need stable relative timings, not statistical rigor).
///
/// Warms the closure up, then auto-scales the iteration count so each
/// measurement window runs ≥ `min_window_ms`, and prints the mean time per
/// iteration. Results of the closure are passed through `std::hint::black_box`
/// to keep the optimizer honest.
pub fn bench<T>(name: &str, f: impl FnMut() -> T) {
    let (per_iter, iters) = measure(200.0, f);
    println!("{name:<40} {:>12} ({iters} iters)", time_str(per_iter));
}

/// Measures a closure like [`bench`] but returns the numbers instead of
/// printing them: `(seconds_per_iter, iters)`. `min_window_ms` bounds the
/// measurement window so smoke runs can stay fast.
pub fn measure<T>(min_window_ms: f64, mut f: impl FnMut() -> T) -> (f64, usize) {
    // Warm-up and initial calibration.
    let (_, first) = timed(|| std::hint::black_box(f()));
    let iters = ((min_window_ms / 1e3 / first.max(1e-9)).ceil() as usize).clamp(1, 10_000);
    let per_iter = timed_avg(iters, || {
        std::hint::black_box(f());
    });
    (per_iter, iters)
}

/// Prints the bench-group banner.
pub fn bench_group(name: &str) {
    println!("\n--- bench group: {name} ---");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(mb(2_600_000), "2.60 MB");
        assert_eq!(time_str(2.0), "2.00 s");
        assert_eq!(time_str(0.0025), "2.50 ms");
        assert_eq!(time_str(1e-5), "10.0 µs");
    }

    #[test]
    fn timed_returns_result_and_duration() {
        let (v, t) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
        let avg = timed_avg(3, || {
            std::hint::black_box(1 + 1);
        });
        assert!(avg >= 0.0);
    }
}
