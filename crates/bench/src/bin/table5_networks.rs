//! Regenerates **Table 5**: the evaluated neural networks — layer shape,
//! MACs, accuracy, model size, and single-image client-aided communication.

#![forbid(unsafe_code)]
use choco_apps::dnn::{client_aided_plan, Network};
use choco_bench::header;
use choco_he::params::HeParams;

fn main() {
    header("Table 5: Neural networks used for system evaluation");
    println!(
        "{:<8} {:>3} {:>3} {:>4} {:>3} {:>9} {:>6} {:>6} {:>6} {:>9} {:>9} {:>9}",
        "Network",
        "Cnv",
        "FC",
        "Act",
        "Pl",
        "MACs(1e6)",
        "%fp",
        "%8b",
        "%4b",
        "MB float",
        "MB 4b",
        "Comm"
    );
    for net in Network::all() {
        // MNIST networks use set B, CIFAR networks set A (as in §5.3).
        let params = if net.dataset == "MNIST" {
            HeParams::set_b()
        } else {
            HeParams::set_a()
        };
        let (cnv, fc, act, pl) = net.layer_counts();
        let plan = client_aided_plan(&net, &params);
        println!(
            "{:<8} {:>3} {:>3} {:>4} {:>3} {:>9.2} {:>6.1} {:>6.1} {:>6.1} {:>9.2} {:>9.2} {:>8.1}M",
            net.name,
            cnv,
            fc,
            act,
            pl,
            net.total_macs() as f64 / 1e6,
            net.accuracy.float,
            net.accuracy.int8,
            net.accuracy.int4,
            net.model_bytes(32) as f64 / 1e6,
            net.model_bytes(4) as f64 / 1e6,
            plan.comm_bytes as f64 / 1e6,
        );
    }
    println!(
        "\nPaper comm column: LeNetSm 0.66 MB, LeNetLg 2.6 MB, SqzNet 13.8 MB,\n\
         VGG16 22.2 MB. Accuracy columns are the paper's published values\n\
         (structural reproduction; no training pipeline)."
    );
}
