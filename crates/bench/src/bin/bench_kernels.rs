//! Op-level kernel timing reporter for the parallel HE runtime.
//!
//! Times the kernels the runtime rework targets — strict vs. lazy NTT,
//! BFV multiply, naive vs. hoisted rotation batches, and the
//! diagonal-method matvec through both the per-rotation path and the
//! fused double-hoisted `dot_rotations_plain` path — and reports the
//! speedups. It also times the scheme-generic [`HeScheme::dot_diagonals`]
//! entry point against a hand-inlined twin for both BFV and CKKS, and
//! fails (exit 1) if the trait indirection costs more than measurement
//! noise — the generic core is monomorphized, so there is no dyn dispatch
//! to pay for. `--json <path>` additionally writes a machine-readable
//! report (the committed baseline lives in `BENCH_kernels.json`);
//! `--smoke` shrinks the measurement windows so CI can run the reporter
//! as a gate without inflating wall-clock time.

#![forbid(unsafe_code)]
use std::hint::black_box;

use choco_bench::{header, measure, note, time_str};
use choco_he::bfv::{BfvContext, Ciphertext, Plaintext};
use choco_he::ckks::{CkksCiphertext, CkksContext, CkksGaloisKeys};
use choco_he::params::HeParams;
use choco_he::{Bfv, Ckks, HeScheme};
use choco_math::ntt::NttTable;
use choco_math::prime::generate_ntt_primes;
use choco_prng::Blake3Rng;

struct Entry {
    name: &'static str,
    seconds: f64,
    iters: usize,
}

fn record(entries: &mut Vec<Entry>, window_ms: f64, name: &'static str, f: impl FnMut()) {
    let (seconds, iters) = measure(window_ms, f);
    println!("{name:<44} {:>12} ({iters} iters)", time_str(seconds));
    entries.push(Entry {
        name,
        seconds,
        iters,
    });
}

fn seconds_of(entries: &[Entry], name: &str) -> f64 {
    entries
        .iter()
        .find(|e| e.name == name)
        .map(|e| e.seconds)
        .expect("entry recorded")
}

fn json_escape_free(name: &str) -> &str {
    // Entry names are static identifiers; assert rather than escape.
    assert!(
        name.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'),
        "entry name {name:?} needs JSON escaping"
    );
    name
}

fn write_json(
    path: &str,
    mode: &str,
    threads: usize,
    backend: &str,
    entries: &[Entry],
    derived: &[(&str, f64)],
) {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"choco-bench-kernels/1\",\n");
    out.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!(
        "  \"backend\": \"{}\",\n",
        json_escape_free(backend)
    ));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"seconds_per_iter\": {:.9}, \"iters\": {}}}{sep}\n",
            json_escape_free(e.name),
            e.seconds,
            e.iters
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"derived\": {\n");
    for (i, (name, value)) in derived.iter().enumerate() {
        let sep = if i + 1 == derived.len() { "" } else { "," };
        out.push_str(&format!(
            "    \"{}\": {value:.4}{sep}\n",
            json_escape_free(name)
        ));
    }
    out.push_str("  }\n}\n");
    std::fs::write(path, out).expect("write JSON report");
    println!("\nwrote {path}");
}

/// Per-diagonal path: one key-switch decomposition per rotation, one
/// multiply/add pair per diagonal (the pre-hoisting kernel shape).
fn matvec_naive(
    ctx: &BfvContext,
    ct: &Ciphertext,
    pts: &[Plaintext],
    gks: &choco_he::bfv::GaloisKeys,
) -> Ciphertext {
    let eval = ctx.evaluator();
    let mut acc = eval.multiply_plain(ct, &pts[0]);
    for (d, pt) in pts.iter().enumerate().skip(1) {
        let rot = eval.rotate_rows(ct, d as i64, gks).unwrap();
        acc = eval.add(&acc, &eval.multiply_plain(&rot, pt)).unwrap();
    }
    acc
}

/// Hoisted path: decompose once, permute per diagonal, and keep the whole
/// multiply/accumulate in the NTT domain (`dot_rotations_plain`).
fn matvec_hoisted(
    ctx: &BfvContext,
    ct: &Ciphertext,
    pts: &[Plaintext],
    gks: &choco_he::bfv::GaloisKeys,
) -> Ciphertext {
    let pairs: Vec<(i64, Plaintext)> = pts
        .iter()
        .enumerate()
        .map(|(d, p)| (d as i64, p.clone()))
        .collect();
    ctx.evaluator()
        .dot_rotations_plain(ct, &pairs, gks)
        .unwrap()
}

/// Hand-inlined twin of `<Bfv as HeScheme>::dot_diagonals`: encode each
/// diagonal, then the fused hoisted inner product. Any gap between this and
/// the trait call is pure indirection cost.
fn bfv_matvec_direct(
    ctx: &BfvContext,
    ct: &Ciphertext,
    diagonals: &[(i64, Vec<u64>)],
    gks: &choco_he::bfv::GaloisKeys,
) -> Ciphertext {
    let encoder = ctx.batch_encoder().unwrap();
    let pairs: Vec<(i64, Plaintext)> = diagonals
        .iter()
        .map(|(s, d)| (*s, encoder.encode(d).unwrap()))
        .collect();
    ctx.evaluator()
        .dot_rotations_plain(ct, &pairs, gks)
        .unwrap()
}

/// Hand-inlined twin of `<Ckks as HeScheme>::dot_diagonals`: one hoisted
/// decomposition across all shifts, then encode/multiply/accumulate.
fn ckks_matvec_direct(
    ctx: &CkksContext,
    ct: &CkksCiphertext,
    diagonals: &[(i64, Vec<f64>)],
    gks: &CkksGaloisKeys,
) -> CkksCiphertext {
    let steps: Vec<i64> = diagonals
        .iter()
        .map(|(s, _)| *s)
        .filter(|&s| s != 0)
        .collect();
    let rotated = ctx.rotate_many(ct, &steps, gks).unwrap();
    let mut by_step = rotated.into_iter();
    let mut acc: Option<CkksCiphertext> = None;
    for (shift, diag) in diagonals {
        let term_ct = if *shift == 0 {
            ct.clone()
        } else {
            by_step.next().unwrap()
        };
        let pt = ctx
            .encode_at(diag, term_ct.level(), ctx.default_scale())
            .unwrap();
        let term = ctx.multiply_plain(&term_ct, &pt).unwrap();
        acc = Some(match acc {
            None => term,
            Some(a) => ctx.add(&a, &term).unwrap(),
        });
    }
    acc.unwrap()
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            "--smoke" => smoke = true,
            other => panic!("unknown flag {other:?} (expected --json <path> or --smoke)"),
        }
    }
    let window_ms = if smoke { 15.0 } else { 250.0 };
    let mode = if smoke { "smoke" } else { "full" };
    let threads = choco_math::par::num_threads();
    let backend = choco_math::simd::backend();
    println!(
        "simd backend: {} (CHOCO_SIMD={}), worker threads: {threads} (CHOCO_THREADS={})",
        backend.name(),
        std::env::var("CHOCO_SIMD").unwrap_or_else(|_| "unset".into()),
        std::env::var("CHOCO_THREADS").unwrap_or_else(|_| "unset".into()),
    );
    let mut entries = Vec::new();

    header("kernel timings: NTT (n=4096, 55-bit prime)");
    let n = 4096;
    let q = generate_ntt_primes(55, n, 1)[0];
    let table = NttTable::new(n, q).unwrap();
    let mut rng = Blake3Rng::from_seed(b"bench kernels ntt");
    let mut buf: Vec<u64> = (0..n).map(|_| rng.next_below(q)).collect();
    // Repeated in-place transforms: the values churn but every iteration
    // does identical work, so the mean is a clean per-transform time.
    record(&mut entries, window_ms, "ntt_forward_lazy", || {
        table.forward(black_box(&mut buf))
    });
    record(&mut entries, window_ms, "ntt_forward_strict", || {
        table.forward_strict(black_box(&mut buf))
    });
    record(&mut entries, window_ms, "ntt_inverse_lazy", || {
        table.inverse(black_box(&mut buf))
    });
    record(&mut entries, window_ms, "ntt_inverse_strict", || {
        table.inverse_strict(black_box(&mut buf))
    });

    header(&format!(
        "kernel timings: SIMD vs scalar NTT (backend: {})",
        backend.name()
    ));
    // The dispatched transforms above already run the SIMD path; here the
    // scalar lazy kernel is timed explicitly against it across ring sizes.
    // The derived `simd_ntt_speedup` is the PEAK forward ratio across the
    // benched sizes, each side taken as the min over interleaved rounds —
    // robust against scheduler noise on loaded hosts, and a fair summary
    // because every size runs the identical butterfly kernels.
    let simd_sizes: [(usize, [&'static str; 4]); 3] = [
        (
            1024,
            [
                "ntt_forward_scalar_1k",
                "ntt_forward_simd_1k",
                "ntt_inverse_scalar_1k",
                "ntt_inverse_simd_1k",
            ],
        ),
        (
            4096,
            [
                "ntt_forward_scalar",
                "ntt_forward_simd",
                "ntt_inverse_scalar",
                "ntt_inverse_simd",
            ],
        ),
        (
            16384,
            [
                "ntt_forward_scalar_16k",
                "ntt_forward_simd_16k",
                "ntt_inverse_scalar_16k",
                "ntt_inverse_simd_16k",
            ],
        ),
    ];
    let mut simd_ntt_speedup = 0.0f64;
    for (sz, [fwd_s, fwd_v, inv_s, inv_v]) in simd_sizes {
        let qs = generate_ntt_primes(55, sz, 1)[0];
        let ts = NttTable::new(sz, qs).unwrap();
        let mut sbuf: Vec<u64> = (0..sz as u64).map(|i| i % qs).collect();
        record(&mut entries, window_ms, fwd_s, || {
            ts.forward_scalar(black_box(&mut sbuf))
        });
        record(&mut entries, window_ms, fwd_v, || {
            ts.forward(black_box(&mut sbuf))
        });
        record(&mut entries, window_ms, inv_s, || {
            ts.inverse_scalar(black_box(&mut sbuf))
        });
        record(&mut entries, window_ms, inv_v, || {
            ts.inverse(black_box(&mut sbuf))
        });
        let mut s_min = seconds_of(&entries, fwd_s);
        let mut v_min = seconds_of(&entries, fwd_v);
        for _ in 0..2 {
            s_min = s_min.min(measure(window_ms, || ts.forward_scalar(black_box(&mut sbuf))).0);
            v_min = v_min.min(measure(window_ms, || ts.forward(black_box(&mut sbuf))).0);
        }
        simd_ntt_speedup = simd_ntt_speedup.max(s_min / v_min);
    }

    header("kernel timings: dyadic multiply (n=4096, 55-bit prime)");
    let dy_b: Vec<u64> = (0..n as u64).map(|i| (i * 7 + 3) % q).collect();
    let dy_b_shoup: Vec<u64> = dy_b
        .iter()
        .map(|&y| choco_math::modops::shoup_precompute(y, q))
        .collect();
    record(&mut entries, window_ms, "dyadic_mul_scalar", || {
        let a = black_box(&mut buf);
        for (x, (&y, &ysh)) in a.iter_mut().zip(dy_b.iter().zip(&dy_b_shoup)) {
            *x = choco_math::modops::mul_mod_shoup(*x, y, ysh, q);
        }
    });
    record(&mut entries, window_ms, "dyadic_mul_simd", || {
        choco_math::simd::dyadic_mul_shoup_slices(black_box(&mut buf), &dy_b, &dy_b_shoup, q)
    });

    header("kernel timings: BFV ops (paper set B)");
    let params = HeParams::set_b();
    let ctx = BfvContext::new(&params).unwrap();
    let mut rng = Blake3Rng::from_seed(b"bench kernels bfv");
    let keys = ctx.keygen(&mut rng);
    let rk = ctx.relin_key(keys.secret_key(), &mut rng).unwrap();
    let cols = 16usize;
    let steps: Vec<i64> = (1..cols as i64).collect();
    let gks = ctx
        .galois_keys(keys.secret_key(), &steps, &mut rng)
        .unwrap();
    let encoder = ctx.batch_encoder().unwrap();
    let values: Vec<u64> = (0..params.degree() as u64).map(|i| i % 17).collect();
    let pt = encoder.encode(&values).unwrap();
    let ct = ctx.encryptor(keys.public_key()).encrypt(&pt, &mut rng);
    let eval = ctx.evaluator();
    record(&mut entries, window_ms, "bfv_multiply_relin", || {
        black_box(eval.multiply_relin(black_box(&ct), &ct, &rk).unwrap());
    });

    header("kernel timings: rotation batch (15 steps)");
    record(&mut entries, window_ms, "rotations_naive", || {
        for &s in &steps {
            black_box(eval.rotate_rows(black_box(&ct), s, &gks).unwrap());
        }
    });
    record(&mut entries, window_ms, "rotations_hoisted", || {
        black_box(eval.rotate_rows_many(black_box(&ct), &steps, &gks).unwrap());
    });

    header("kernel timings: diagonal matvec (16 diagonals)");
    let pts: Vec<Plaintext> = (0..cols as u64)
        .map(|d| {
            let diag: Vec<u64> = (0..params.degree() as u64).map(|i| (i + d) % 13).collect();
            encoder.encode(&diag).unwrap()
        })
        .collect();
    record(&mut entries, window_ms, "matvec_naive", || {
        black_box(matvec_naive(&ctx, black_box(&ct), &pts, &gks));
    });
    record(&mut entries, window_ms, "matvec_hoisted", || {
        black_box(matvec_hoisted(&ctx, black_box(&ct), &pts, &gks));
    });

    header("kernel timings: generic scheme core vs hand-inlined (BFV set B)");
    let diags_bfv: Vec<(i64, Vec<u64>)> = (0..cols as u64)
        .map(|d| {
            let diag: Vec<u64> = (0..params.degree() as u64).map(|i| (i + d) % 13).collect();
            (d as i64, diag)
        })
        .collect();
    record(&mut entries, window_ms, "bfv_matvec_direct", || {
        black_box(bfv_matvec_direct(&ctx, black_box(&ct), &diags_bfv, &gks));
    });
    record(&mut entries, window_ms, "bfv_matvec_generic", || {
        black_box(Bfv::dot_diagonals(&ctx, black_box(&ct), &diags_bfv, &gks).unwrap());
    });

    header("kernel timings: generic scheme core vs hand-inlined (CKKS set C)");
    let cparams = HeParams::set_c();
    let cctx = CkksContext::new(&cparams).unwrap();
    let mut crng = Blake3Rng::from_seed(b"bench kernels ckks");
    let ckeys = cctx.keygen(&mut crng);
    let ccols = 8usize;
    let csteps: Vec<i64> = (1..ccols as i64).collect();
    let cgks = cctx.galois_keys(ckeys.secret_key(), &csteps, &mut crng);
    let cvalues: Vec<f64> = (0..cctx.slot_count())
        .map(|i| (i % 17) as f64 * 0.25)
        .collect();
    let cpt = cctx.encode(&cvalues).unwrap();
    let cct = cctx.encrypt(&cpt, ckeys.public_key(), &mut crng).unwrap();
    let diags_ckks: Vec<(i64, Vec<f64>)> = (0..ccols)
        .map(|d| {
            let diag: Vec<f64> = (0..cctx.slot_count())
                .map(|i| ((i + d) % 13) as f64 * 0.125)
                .collect();
            (d as i64, diag)
        })
        .collect();
    record(&mut entries, window_ms, "ckks_matvec_direct", || {
        black_box(ckks_matvec_direct(
            &cctx,
            black_box(&cct),
            &diags_ckks,
            &cgks,
        ));
    });
    record(&mut entries, window_ms, "ckks_matvec_generic", || {
        black_box(Ckks::dot_diagonals(&cctx, black_box(&cct), &diags_ckks, &cgks).unwrap());
    });

    // Gate measurement: a second, interleaved window per path; the min of
    // the two windows filters out scheduler/allocator noise that a single
    // back-to-back measurement is exposed to.
    let (bfv_direct2, _) = measure(window_ms, || {
        black_box(bfv_matvec_direct(&ctx, black_box(&ct), &diags_bfv, &gks));
    });
    let (bfv_generic2, _) = measure(window_ms, || {
        black_box(Bfv::dot_diagonals(&ctx, black_box(&ct), &diags_bfv, &gks).unwrap());
    });
    let (ckks_direct2, _) = measure(window_ms, || {
        black_box(ckks_matvec_direct(
            &cctx,
            black_box(&cct),
            &diags_ckks,
            &cgks,
        ));
    });
    let (ckks_generic2, _) = measure(window_ms, || {
        black_box(Ckks::dot_diagonals(&cctx, black_box(&cct), &diags_ckks, &cgks).unwrap());
    });

    let fwd = seconds_of(&entries, "ntt_forward_strict") / seconds_of(&entries, "ntt_forward_lazy");
    let inv = seconds_of(&entries, "ntt_inverse_strict") / seconds_of(&entries, "ntt_inverse_lazy");
    let dyadic =
        seconds_of(&entries, "dyadic_mul_scalar") / seconds_of(&entries, "dyadic_mul_simd");
    let rot = seconds_of(&entries, "rotations_naive") / seconds_of(&entries, "rotations_hoisted");
    let mv = seconds_of(&entries, "matvec_naive") / seconds_of(&entries, "matvec_hoisted");
    let bfv_overhead = seconds_of(&entries, "bfv_matvec_generic").min(bfv_generic2)
        / seconds_of(&entries, "bfv_matvec_direct").min(bfv_direct2);
    let ckks_overhead = seconds_of(&entries, "ckks_matvec_generic").min(ckks_generic2)
        / seconds_of(&entries, "ckks_matvec_direct").min(ckks_direct2);
    header("speedups (old / new)");
    println!("ntt_forward   {fwd:.2}x");
    println!("ntt_inverse   {inv:.2}x");
    println!("rotations     {rot:.2}x");
    println!("matvec        {mv:.2}x");
    header("simd speedups (scalar / simd)");
    println!("ntt peak      {simd_ntt_speedup:.2}x  (best forward ratio across benched sizes)");
    println!("dyadic_mul    {dyadic:.2}x");
    if backend.is_vector() {
        // The ISSUE gate: a vector backend must at least double forward NTT
        // throughput at some benched size. min-of-rounds timing keeps this
        // stable on noisy shared hosts.
        assert!(
            simd_ntt_speedup >= 2.0,
            "simd forward NTT peak speedup is {simd_ntt_speedup:.2}x with the {} backend \
             (gate: >= 2.0x)",
            backend.name()
        );
    } else {
        note("scalar backend active: simd >= 2.0x gate skipped");
    }
    header("generic-core overhead (generic / hand-inlined; gate: < 1.25x)");
    println!("bfv_matvec    {bfv_overhead:.3}x");
    println!("ckks_matvec   {ckks_overhead:.3}x");
    note(&format!("worker threads: {threads}"));
    // The gate: HeScheme::dot_diagonals is monomorphized, so anything past
    // measurement noise means a real regression (accidental dyn dispatch,
    // an extra clone on the hot path, ...).
    assert!(
        bfv_overhead < 1.25,
        "generic BFV matvec is {bfv_overhead:.3}x the hand-inlined path (gate: < 1.25x)"
    );
    assert!(
        ckks_overhead < 1.25,
        "generic CKKS matvec is {ckks_overhead:.3}x the hand-inlined path (gate: < 1.25x)"
    );

    if let Some(path) = json_path {
        write_json(
            &path,
            mode,
            threads,
            backend.name(),
            &entries,
            &[
                ("ntt_forward_speedup", fwd),
                ("ntt_inverse_speedup", inv),
                ("simd_ntt_speedup", simd_ntt_speedup),
                ("dyadic_mul_speedup", dyadic),
                ("rotation_speedup", rot),
                ("matvec_speedup", mv),
                ("bfv_generic_overhead", bfv_overhead),
                ("ckks_generic_overhead", ckks_overhead),
            ],
        );
    }
}
