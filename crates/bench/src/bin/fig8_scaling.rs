//! Regenerates **Figure 8**: encryption time & energy across `(N, k)`
//! parameter settings — CHOCO-TACO hardware vs. the IMX6 software baseline.
//!
//! Hardware scales with `N` only (replicated residue layers absorb `k`);
//! software scales with `N·k`. The paper omits the software baseline at
//! `(32768, 16)` because the IMX6 board runs out of memory — reproduced
//! here as an explicit OOM marker.

#![forbid(unsafe_code)]
use choco_bench::{header, time_str};
use choco_taco::baseline::{sw_encryption_time, sw_energy};
use choco_taco::config::AcceleratorConfig;
use choco_taco::model::encryption_profile;

fn main() {
    header("Figure 8: encryption time & energy vs (N, k) — hw vs sw");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "(N, k)", "hw time", "hw energy", "sw time", "sw energy", "speedup"
    );
    let settings = [
        (2048usize, 1usize),
        (4096, 2),
        (8192, 3),
        (16384, 8),
        (32768, 16),
    ];
    for (n, k) in settings {
        let cfg = AcceleratorConfig {
            residue_layers: k.min(16),
            ..AcceleratorConfig::paper_operating_point()
        };
        let hw = encryption_profile(&cfg, n, k);
        if (n, k) == (32768, 16) {
            println!(
                "{:<14} {:>12} {:>11.3} mJ {:>12} {:>12} {:>9}",
                format!("({n}, {k})"),
                time_str(hw.time_s),
                hw.energy_j * 1e3,
                "OOM",
                "OOM",
                "-"
            );
            continue;
        }
        let sw_t = sw_encryption_time(n, k);
        let sw_e = sw_energy(sw_t);
        println!(
            "{:<14} {:>12} {:>11.3} mJ {:>12} {:>11.1} mJ {:>8.0}x",
            format!("({n}, {k})"),
            time_str(hw.time_s),
            hw.energy_j * 1e3,
            time_str(sw_t),
            sw_e * 1e3,
            sw_t / hw.time_s,
        );
    }
    println!(
        "\nPaper: 417x time / 603x energy at (8192,3); up to 1094x/648x across\n\
         settings. Hardware time grows with N only; software with N*k.\n\
         The (32768,16) software row is omitted on the IMX6 (out of memory),\n\
         as in the paper."
    );
}
