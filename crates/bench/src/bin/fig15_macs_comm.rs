//! Regenerates **Figure 15**: computation (MACs) vs. communication (MB) for
//! convolution-layer microbenchmarks, with the VGG16 and SqueezeNet layers
//! overlaid — the workload-structure analysis of §5.8.

#![forbid(unsafe_code)]
use choco_apps::dnn::{conv_microbenchmark, Layer, Network};
use choco_bench::{header, note};
use choco_he::params::HeParams;

fn main() {
    header("Figure 15: MACs vs communication for convolution layers");
    let params = HeParams::set_a();
    println!(
        "{:>5} {:>9} {:>7} {:>12} {:>10} {:>14}",
        "img", "channels", "filter", "MACs", "comm MB", "MACs per MB"
    );
    for p in conv_microbenchmark(&params) {
        let mb = p.comm_bytes as f64 / 1e6;
        println!(
            "{:>5} {:>9} {:>7} {:>12} {:>10.2} {:>14.0}",
            p.img,
            p.channels,
            p.filter,
            p.macs,
            mb,
            p.macs as f64 / mb
        );
    }

    for net in [Network::vgg16(), Network::squeezenet()] {
        println!("\n{} conv layers:", net.name);
        let row = params.degree() / 2;
        let ct_bytes = params.ciphertext_bytes() as u64;
        let mut total_macs = 0u64;
        let mut total_mb = 0.0;
        for layer in &net.layers {
            if let Layer::Conv {
                in_ch,
                in_h,
                in_w,
                filter,
                ..
            } = *layer
            {
                let red = (filter / 2) * (in_w + 1);
                let stride = (in_h * in_w + 2 * red).next_power_of_two();
                let up = (in_ch * stride).div_ceil(row) as u64;
                let down = (layer.output_elements()).div_ceil(row) as u64;
                let mb = (up + down) as f64 * ct_bytes as f64 / 1e6;
                total_macs += layer.macs();
                total_mb += mb;
                println!(
                    "  conv {in_ch}ch {in_h}x{in_w} f{filter}: {:>11} MACs, {:>7.2} MB, {:>10.0} MACs/MB",
                    layer.macs(),
                    mb,
                    layer.macs() as f64 / mb
                );
            }
        }
        println!(
            "  => network conv total: {:.1}M MACs / {:.1} MB = {:.0} MACs/MB",
            total_macs as f64 / 1e6,
            total_mb,
            total_macs as f64 / (total_mb * 1e6) * 1e6
        );
    }
    note("VGG-like layers maximize MACs per MB (big filters, deep channels) and benefit from offload");
    note("SqueezeNet-like layers (1x1 filters) sit low and break even or lose — §5.8's design guidance");
}
