//! Regenerates **Figure 13**: client-aided encrypted PageRank — total
//! communication vs. total iterations for every feasible refresh schedule,
//! in both BFV and CKKS, plus a real encrypted validation run.

#![forbid(unsafe_code)]
use choco::transport::LinkConfig;
use choco_apps::pagerank::{pagerank_comm_model, pagerank_encrypted, pagerank_plain, Graph};
use choco_bench::{header, note};
use choco_he::params::{HeParams, SchemeType};
use choco_he::Bfv;

fn or_die<T, E: std::fmt::Display>(what: &str, result: Result<T, E>) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("fig13_pagerank: {what}: {e}");
        std::process::exit(1)
    })
}

fn main() {
    header("Figure 13: encrypted PageRank communication vs refresh schedule");
    let nodes = 64usize;
    let scale_bits = 16u32;
    println!(
        "{:<7} {:<6} {:>6} {:>7} {:>4} {:>12}  (diamond = optimum)",
        "scheme", "total", "burst", "N", "k", "comm (MB)"
    );
    for scheme in [SchemeType::Bfv, SchemeType::Ckks] {
        for total in [4u32, 8, 12, 16, 24, 32, 48] {
            let mut rows = Vec::new();
            for set in 1..=total {
                if total % set != 0 {
                    continue; // iteration sets must tile the total
                }
                if let Some((n, k, bytes)) =
                    pagerank_comm_model(scheme, total, set, nodes, scale_bits)
                {
                    rows.push((set, n, k, bytes));
                }
            }
            let best = rows.iter().map(|r| r.3).min().unwrap_or(u64::MAX);
            for (set, n, k, bytes) in rows {
                println!(
                    "{:<7} {:<6} {:>6} {:>7} {:>4} {:>12.3}  {}",
                    format!("{scheme}"),
                    total,
                    set,
                    n,
                    k,
                    bytes as f64 / 1e6,
                    if bytes == best { "<> optimum" } else { "" }
                );
            }
        }
    }

    // Real encrypted validation at small scale.
    println!("\nValidation: real encrypted BFV PageRank vs plaintext reference");
    let g = Graph::from_adjacency(&[vec![1, 2], vec![2], vec![0], vec![0, 2]]);
    let params = or_die("params", HeParams::bfv_insecure(1024, &[45, 45, 46], 24));
    let enc = or_die(
        "encrypted run",
        pagerank_encrypted::<Bfv>(&g, 0.85, 8, 1, &params, 10, LinkConfig::direct()),
    );
    let plain = pagerank_plain(&g, 0.85, 8);
    let max_err = enc
        .ranks
        .iter()
        .zip(&plain)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "  8 iterations, refresh every 1: max |enc - plain| = {max_err:.4}, comm = {:.2} MB",
        enc.ledger.total_bytes() as f64 / 1e6
    );
    assert!(max_err < 0.02, "encrypted run must track the reference");

    note("frequent refresh with small parameters dominates; optima sit at N <= 8192, k <= 3 (the CHOCO-TACO envelope)");
    note("CKKS reaches the same schedules with smaller chains, so its curves sit at or below BFV");
}
