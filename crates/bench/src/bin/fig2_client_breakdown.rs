//! Regenerates **Figure 2**: characterization of active client compute time
//! for single-image DNN inference under the *server-optimized* baseline.
//!
//! Columns per network: default-SEAL client-aided HE on the IMX6 software
//! model, the same with HEAX-style and FPGA-style partial acceleration
//! (NTT + polynomial multiply only, Amdahl-limited), and local TFLite
//! inference — showing that >99% of client compute is enc/decryption and
//! that partial acceleration cannot close the gap.

#![forbid(unsafe_code)]
use choco_apps::dnn::{client_aided_plan, Network};
use choco_bench::{header, time_str};
use choco_he::params::HeParams;
use choco_taco::baseline::{
    client_nonlinear_time, fpga_accelerated_time, heax_accelerated_time, sw_decryption_time,
    sw_encryption_time, tflite_inference_time,
};

fn main() {
    header("Figure 2: active client compute time, server-optimized baseline");
    // "Default SEAL" parameters at N = 8192: the 5-prime BFVDefault chain.
    let params = HeParams::bfv(8192, &[43, 43, 44, 44, 44], 20).expect("SEAL default chain");
    let k = params.prime_count();
    let n = params.degree();
    let enc_t = sw_encryption_time(n, k);
    let dec_t = sw_decryption_time(n, k);

    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "Network", "HE crypto", "nonlinear", "HEAX-accel", "FPGA-accel", "TFLite", "HE/local"
    );
    for net in Network::all() {
        let plan = client_aided_plan(&net, &params);
        let crypto = plan.encryptions as f64 * enc_t + plan.decryptions as f64 * dec_t;
        let nl = client_nonlinear_time(plan.nonlinear_elements);
        let heax = plan.encryptions as f64 * heax_accelerated_time(enc_t)
            + plan.decryptions as f64 * heax_accelerated_time(dec_t)
            + nl;
        let fpga = plan.encryptions as f64 * fpga_accelerated_time(enc_t)
            + plan.decryptions as f64 * fpga_accelerated_time(dec_t)
            + nl;
        let local = tflite_inference_time(net.total_macs());
        let total = crypto + nl;
        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>12} {:>12} {:>7.0}x",
            net.name,
            time_str(crypto),
            time_str(nl),
            time_str(heax),
            time_str(fpga),
            time_str(local),
            total / local,
        );
        let crypto_frac = crypto / total * 100.0;
        assert!(
            crypto_frac > 99.0,
            "{}: crypto fraction {crypto_frac:.1}% (paper: >99%)",
            net.name
        );
    }
    println!(
        "\n>99% of client compute is HE enc/decryption in every network, and\n\
         even HEAX/FPGA-class partial acceleration (60% coverage) leaves the\n\
         client far slower than local TFLite — the motivation for CHOCO-TACO."
    );
}
