//! Regenerates **Table 4**: noise budget — initial, post-rotate, and
//! post-(masked)-permute — for six parameter selections.
//!
//! Runs the real BFV implementation: encrypt, measure the invariant noise
//! budget, apply one plain rotation (the rotational-redundancy path) or one
//! masked arbitrary permutation (Figure 4A: 2 rotations + 2 masking
//! multiplies + add), and measure again. The paper's published values are
//! printed alongside for comparison; see EXPERIMENTS.md for the discussion
//! of the absolute-offset difference in the "initial" column.

#![forbid(unsafe_code)]
use choco::rotation::{windowed_rotate_masked, windowed_rotate_redundant, RedundantLayout};
use choco_bench::header;
use choco_he::bfv::BfvContext;
use choco_he::params::HeParams;
use choco_prng::Blake3Rng;

struct Row {
    n: usize,
    t_bits: u32,
    chain: &'static [u32],
    paper: (i64, i64, i64), // initial / post-rotate / post-permute
}

fn main() {
    header("Table 4: noise budget — initial / post-rotate / post-permute");
    let rows = [
        Row {
            n: 8192,
            t_bits: 20,
            chain: &[58, 58, 59],
            paper: (68, 66, 42),
        },
        Row {
            n: 8192,
            t_bits: 23,
            chain: &[58, 58, 59],
            paper: (62, 59, 33),
        },
        Row {
            n: 8192,
            t_bits: 28,
            chain: &[58, 58, 59],
            paper: (52, 50, 18),
        },
        Row {
            n: 4096,
            t_bits: 16,
            chain: &[36, 36, 37],
            paper: (33, 31, 12),
        },
        Row {
            n: 4096,
            t_bits: 18,
            chain: &[36, 36, 37],
            paper: (29, 26, 5),
        },
        Row {
            n: 4096,
            t_bits: 20,
            chain: &[36, 36, 37],
            paper: (25, 22, 0),
        },
    ];
    println!(
        "{:<24} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "Parameters", "init", "rot", "perm", "p.init", "p.rot", "p.perm"
    );
    println!(
        "{:<24} | {:>26} | {:>26}",
        "(N, log2 t, {k})", "measured", "paper"
    );
    for row in rows {
        let params = HeParams::bfv(row.n, row.chain, row.t_bits).expect("table row valid");
        let ctx = BfvContext::new(&params).expect("context");
        let mut rng = Blake3Rng::from_seed(b"table4");
        let keys = ctx.keygen(&mut rng);
        let gks = ctx
            .galois_keys(keys.secret_key(), &[3, -13], &mut rng)
            .expect("galois keys");
        let encoder = ctx.batch_encoder().expect("batching");
        let dec = ctx.decryptor(keys.secret_key());

        let window = 16usize;
        let layout = RedundantLayout::new(window, 4);
        let values: Vec<u64> = (1..=window as u64).collect();

        let pt = encoder.encode(&layout.pack(&values)).expect("encode");
        let ct = ctx.encryptor(keys.public_key()).encrypt(&pt, &mut rng);
        let initial = dec.invariant_noise_budget(&ct);

        let rotated = windowed_rotate_redundant(&ctx, &ct, &layout, 3, &gks).expect("rotate");
        let post_rotate = dec.invariant_noise_budget(&rotated);

        let plain_pt = encoder.encode(&values).expect("encode");
        let ct2 = ctx
            .encryptor(keys.public_key())
            .encrypt(&plain_pt, &mut rng);
        let permuted = windowed_rotate_masked(&ctx, &ct2, window, 3, &gks).expect("permute");
        let post_permute = dec.invariant_noise_budget(&permuted);

        println!(
            "{:<24} | {:>8.0} {:>8.0} {:>8.0} | {:>8} {:>8} {:>8}",
            format!("{}, {}, {:?}", row.n, row.t_bits, row.chain),
            initial,
            post_rotate,
            post_permute,
            row.paper.0,
            row.paper.1,
            row.paper.2,
        );
    }
    println!(
        "\nShape checks: rotation costs a few bits; the masked permute costs\n\
         ~(log2 t + log2 sqrt(2N)) bits — enough to exhaust the 4096-family\n\
         rows, which is why rotational redundancy unlocks the small parameter\n\
         sets of Table 3."
    );
}
