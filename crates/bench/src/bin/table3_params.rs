//! Regenerates **Table 3**: HE parameter selections and ciphertext sizes.

#![forbid(unsafe_code)]
use choco_bench::header;
use choco_he::params::HeParams;

fn main() {
    header("Table 3: HE parameter selections (all >= 128-bit security)");
    println!(
        "{:<6} {:<7} {:>7} {:>9} {:<15} {:>8} {:>12}",
        "Label", "Scheme", "N", "log2 q", "{k}", "log2 t", "Size (Bytes)"
    );
    for (label, p, paper_size) in [
        ("A", HeParams::set_a(), 262_144usize),
        ("B", HeParams::set_b(), 131_072),
        ("C", HeParams::set_c(), 262_144),
    ] {
        let t_bits = if p.plain_modulus() > 0 {
            format!("{}", 64 - p.plain_modulus().leading_zeros())
        } else {
            "N/A".to_string()
        };
        println!(
            "{:<6} {:<7} {:>7} {:>9} {:<15} {:>8} {:>12}",
            label,
            format!("{}", p.scheme()),
            p.degree(),
            p.total_coeff_bits(),
            format!("{:?}", p.prime_bits()),
            t_bits,
            p.ciphertext_bytes(),
        );
        assert_eq!(p.ciphertext_bytes(), paper_size, "size must match Table 3");
    }
    println!("\nAll sizes match the paper exactly (2 polys x N coeffs x (k-1) residues x 8 B).");
}
