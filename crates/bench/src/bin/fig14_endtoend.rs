//! Regenerates **Figure 14**: end-to-end client time & energy for
//! single-image inference — local TFLite vs. the full CHOCO-TACO reference
//! implementation over 22 Mbps / 10 mW Bluetooth.

#![forbid(unsafe_code)]
use choco_apps::dnn::{client_aided_plan, Network};
use choco_bench::{header, note, time_str};
use choco_he::params::HeParams;
use choco_taco::baseline::{client_nonlinear_time, tflite_inference_energy, tflite_inference_time};
use choco_taco::config::AcceleratorConfig;
use choco_taco::link::{compose_client_cost, LinkModel};
use choco_taco::model::{decryption_profile, encryption_profile};

fn main() {
    header("Figure 14: end-to-end client time & energy over Bluetooth");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>11} {:>11} {:>9}",
        "Network", "crypto", "comm", "total", "energy", "local e.", "e ratio"
    );
    let cfg = AcceleratorConfig::paper_operating_point();
    let link = LinkModel::bluetooth();
    for net in Network::all() {
        let params = if net.dataset == "MNIST" {
            HeParams::set_b()
        } else {
            HeParams::set_a()
        };
        let n = params.degree();
        let k = params.prime_count();
        let enc = encryption_profile(&cfg, n, k);
        let dec = decryption_profile(&cfg, n, k);
        let plan = client_aided_plan(&net, &params);
        let cost = compose_client_cost(
            plan.encryptions,
            plan.decryptions,
            enc.time_s,
            dec.time_s,
            enc.energy_j,
            dec.energy_j,
            client_nonlinear_time(plan.nonlinear_elements),
            plan.comm_bytes,
            &link,
        );
        let local_t = tflite_inference_time(net.total_macs());
        let local_e = tflite_inference_energy(net.total_macs());
        println!(
            "{:<8} {:>10} {:>10} {:>10} {:>9.1} mJ {:>9.1} mJ {:>8.2}x",
            net.name,
            time_str(cost.crypto_s + cost.nonlinear_s),
            time_str(cost.comm_s),
            time_str(cost.total_time()),
            cost.energy_j * 1e3,
            local_e * 1e3,
            local_e / cost.energy_j,
        );
        let _ = local_t;
    }
    note("paper: Bluetooth communication dominates time (~24x local on average)");
    note("paper: VGG-class networks can win on energy (up to 37% savings); small networks break even or lose");
}
