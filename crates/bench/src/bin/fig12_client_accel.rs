//! Regenerates **Figure 12**: active client compute time for DNN inference
//! with CHOCO's software optimizations and with full CHOCO-TACO hardware,
//! against the partially-accelerated and local baselines of Figure 2.

#![forbid(unsafe_code)]
use choco_apps::dnn::{client_aided_plan, Network};
use choco_bench::{header, note, time_str};
use choco_he::params::HeParams;
use choco_taco::baseline::{
    client_nonlinear_time, heax_accelerated_time, sw_decryption_time, sw_encryption_time,
    tflite_inference_time,
};
use choco_taco::config::AcceleratorConfig;
use choco_taco::model::{decryption_profile, encryption_profile};

fn main() {
    header("Figure 12: active client compute — CHOCO sw-opt vs +TACO vs local");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "Network", "CHOCO(sw)", "+HEAX", "+TACO", "TFLite", "sw/local", "TACO/local"
    );
    let cfg = AcceleratorConfig::paper_operating_point();
    let mut taco_ratios = Vec::new();
    for net in Network::all() {
        // CHOCO parameter selection: set B for MNIST, set A for CIFAR.
        let params = if net.dataset == "MNIST" {
            HeParams::set_b()
        } else {
            HeParams::set_a()
        };
        let n = params.degree();
        let k = params.prime_count();
        let plan = client_aided_plan(&net, &params);
        let nl = client_nonlinear_time(plan.nonlinear_elements);

        let sw = plan.encryptions as f64 * sw_encryption_time(n, k)
            + plan.decryptions as f64 * sw_decryption_time(n, k)
            + nl;
        let heax = plan.encryptions as f64 * heax_accelerated_time(sw_encryption_time(n, k))
            + plan.decryptions as f64 * heax_accelerated_time(sw_decryption_time(n, k))
            + nl;
        let taco = plan.encryptions as f64 * encryption_profile(&cfg, n, k).time_s
            + plan.decryptions as f64 * decryption_profile(&cfg, n, k).time_s
            + nl;
        let local = tflite_inference_time(net.total_macs());
        taco_ratios.push(local / taco);
        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>12} {:>9.1}x {:>9.2}x",
            net.name,
            time_str(sw),
            time_str(heax),
            time_str(taco),
            time_str(local),
            sw / local,
            local / taco,
        );
    }
    let geo: f64 = taco_ratios
        .iter()
        .product::<f64>()
        .powf(1.0 / taco_ratios.len() as f64);
    println!("\ngeomean local/TACO speedup: {geo:.2}x");
    note("paper: CHOCO sw ~1.7x over default SEAL; +TACO makes active client compute 2.2x faster than local on average");
    note("paper: even HEAX-class partial support stays ~14.5x slower than local");
}
