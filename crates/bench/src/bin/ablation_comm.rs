//! Ablation: client-communication optimizations beyond the paper's
//! baseline accounting — seed-compressed symmetric uploads (c1 replaced by
//! a 32-byte PRNG seed) and modulus-switched downloads (dropping a residue
//! before the server replies). Quantifies how much further the CHOCO
//! communication column of Table 5 could shrink.

#![forbid(unsafe_code)]
use choco_apps::dnn::{client_aided_plan, Network};
use choco_bench::{header, note};
use choco_he::params::HeParams;

fn main() {
    header("Ablation: upload seeding + download modulus switching");
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>12} {:>8}",
        "Network", "baseline", "+seeded up", "+modswitch", "both", "saving"
    );
    for net in Network::all() {
        let params = if net.dataset == "MNIST" {
            HeParams::set_b()
        } else {
            HeParams::set_a()
        };
        let ct = params.ciphertext_bytes() as u64;
        let k_data = params.data_prime_count() as u64;
        let plan = client_aided_plan(&net, &params);
        let (ups, downs) = (plan.encryptions, plan.decryptions);

        let baseline = (ups + downs) * ct;
        let seeded_up = ups * (ct / 2 + 32) + downs * ct;
        // Mod-switching drops one of k_data residues from each download.
        let switched_down = if k_data >= 2 {
            ups * ct + downs * ct * (k_data - 1) / k_data
        } else {
            baseline
        };
        let both = ups * (ct / 2 + 32)
            + if k_data >= 2 {
                downs * ct * (k_data - 1) / k_data
            } else {
                downs * ct
            };
        println!(
            "{:<8} {:>8.2}MB {:>10.2}MB {:>10.2}MB {:>10.2}MB {:>7.0}%",
            net.name,
            baseline as f64 / 1e6,
            seeded_up as f64 / 1e6,
            switched_down as f64 / 1e6,
            both as f64 / 1e6,
            (1.0 - both as f64 / baseline as f64) * 100.0,
        );
    }
    note("both optimizations are implemented and tested in choco-he (encrypt_symmetric_seeded, mod_switch_to_next)");
    note("they compose with rotational redundancy: at k_data = 2 both halve their direction, cutting Table 5 totals by ~50%");
}
