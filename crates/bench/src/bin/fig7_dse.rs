//! Regenerates **Figure 7**: the accelerator design-space exploration —
//! power/area/energy across tens of thousands of configurations, the Pareto
//! frontier, and the paper's selected operating point.

#![forbid(unsafe_code)]
use choco_bench::{header, note, time_str};
use choco_taco::dse::{explore, pareto_frontier, select_operating_point};

fn main() {
    header("Figure 7: CHOCO-TACO design-space exploration (N=8192, k=3)");
    let points = explore(8192, 3);
    println!("evaluated configurations: {}", points.len());

    let (min_t, max_t) = points.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), p| {
        (lo.min(p.profile.time_s), hi.max(p.profile.time_s))
    });
    let (min_p, max_p) = points.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), p| {
        (lo.min(p.profile.power_w), hi.max(p.profile.power_w))
    });
    let (min_a, max_a) = points.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), p| {
        (lo.min(p.profile.area_mm2), hi.max(p.profile.area_mm2))
    });
    println!("time   range: {} .. {}", time_str(min_t), time_str(max_t));
    println!(
        "power  range: {:.0} mW .. {:.0} mW",
        min_p * 1e3,
        max_p * 1e3
    );
    println!("area   range: {min_a:.1} mm2 .. {max_a:.1} mm2");

    let frontier = pareto_frontier(&points);
    println!(
        "\nPareto frontier: {} points (time, power, area, energy):",
        frontier.len()
    );
    let mut sample: Vec<_> = frontier.clone();
    sample.sort_by(|a, b| a.profile.time_s.partial_cmp(&b.profile.time_s).unwrap());
    for p in sample.iter().step_by((sample.len() / 12).max(1)) {
        println!(
            "  {:>10}  {:>7.0} mW  {:>6.1} mm2  {:>8.4} mJ",
            time_str(p.profile.time_s),
            p.profile.power_w * 1e3,
            p.profile.area_mm2,
            p.profile.energy_j * 1e3,
        );
    }

    let chosen = select_operating_point(&points, 200.0, 0.01).expect("feasible point exists");
    println!("\nSelected operating point (power <= 200 mW, min area within 1% of best time):");
    println!(
        "  {:?}\n  time {}  energy {:.4} mJ  power {:.0} mW  area {:.1} mm2",
        chosen.config,
        time_str(chosen.profile.time_s),
        chosen.profile.energy_j * 1e3,
        chosen.profile.power_w * 1e3,
        chosen.profile.area_mm2,
    );
    note("paper's chosen point: 0.66 ms, 0.1228 mJ, <=200 mW, 19.3 mm2");
}
