//! Cross-validation of the two CHOCO-TACO latency estimators: the
//! closed-form analytic model (`taco::model`, used by the DSE for speed)
//! against the discrete-event dataflow simulator (`taco::sim`, the
//! reproduction of the paper's "custom simulation infrastructure").

#![forbid(unsafe_code)]
use choco_bench::{header, note, time_str};
use choco_taco::config::AcceleratorConfig;
use choco_taco::model::{decryption_profile, encryption_profile};
use choco_taco::sim::{simulate_decryption, simulate_encryption};

fn main() {
    header("Model validation: analytic closed form vs dataflow simulation");
    println!(
        "{:<12} {:>12} {:>12} {:>7} | {:>12} {:>12} {:>7}",
        "(N, k)", "enc model", "enc sim", "ratio", "dec model", "dec sim", "ratio"
    );
    let cfg = AcceleratorConfig::paper_operating_point();
    for (n, k) in [
        (2048usize, 1usize),
        (4096, 2),
        (8192, 3),
        (16384, 3),
        (32768, 3),
    ] {
        let em = encryption_profile(&cfg, n, k).time_s;
        let es = simulate_encryption(&cfg, n, k);
        let dm = decryption_profile(&cfg, n, k).time_s;
        let ds = simulate_decryption(&cfg, n, k);
        println!(
            "{:<12} {:>12} {:>12} {:>6.2}x | {:>12} {:>12} {:>6.2}x",
            format!("({n}, {k})"),
            time_str(em),
            time_str(es),
            em / es,
            time_str(dm),
            time_str(ds),
            dm / ds,
        );
    }
    note("the analytic model serializes module passes the scheduler overlaps; its memory-stall factor absorbs SRAM contention the scheduler does not see");
    note("agreement within a small constant across (N, k) validates using the fast closed form for the 38k-point DSE sweep");
}
