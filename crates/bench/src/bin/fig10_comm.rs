//! Regenerates **Figure 10**: total single-image inference communication —
//! CHOCO (measured from its own ciphertext stream) vs. seven prior
//! privacy-preserving DNN protocols.

#![forbid(unsafe_code)]
use choco_apps::dnn::{client_aided_plan, Network};
use choco_apps::protocols::{cifar_protocols, improvement, mnist_protocols};
use choco_bench::{header, note};
use choco_he::params::HeParams;

fn main() {
    header("Figure 10: communication vs prior protocols (single-image inference)");

    let lenet = client_aided_plan(&Network::lenet_large(), &HeParams::set_b());
    let lenet_mb = lenet.comm_bytes as f64 / 1e6;
    println!("MNIST (vs CHOCO LeNet-5-Large = {lenet_mb:.2} MB measured):");
    println!(
        "{:<12} {:>12} {:>14}",
        "Protocol", "Comm (MB)", "CHOCO gain"
    );
    for p in mnist_protocols() {
        println!(
            "{:<12} {:>12.1} {:>13.0}x",
            p.name,
            p.comm_mb,
            improvement(lenet_mb, &p)
        );
    }
    println!("{:<12} {:>12.1} {:>14}", "CHOCO", lenet_mb, "-");

    let sqz = client_aided_plan(&Network::squeezenet(), &HeParams::set_a());
    let sqz_mb = sqz.comm_bytes as f64 / 1e6;
    println!("\nCIFAR-10 (vs CHOCO SqueezeNet = {sqz_mb:.2} MB measured):");
    println!(
        "{:<12} {:>12} {:>14}",
        "Protocol", "Comm (MB)", "CHOCO gain"
    );
    for p in cifar_protocols() {
        println!(
            "{:<12} {:>12.1} {:>13.0}x",
            p.name,
            p.comm_mb,
            improvement(sqz_mb, &p)
        );
    }
    println!("{:<12} {:>12.1} {:>14}", "CHOCO", sqz_mb, "-");

    note("paper reports improvements of 14x-2948x, ~90x vs Gazelle");
    note("baseline constants reconstructed from published totals / the paper's factors (see crates/apps/src/protocols.rs)");
}
