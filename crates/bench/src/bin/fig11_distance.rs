//! Regenerates **Figure 11**: encrypted distance-calculation tradeoffs —
//! server time, client time, and communication for the five packing
//! variants of Figure 9, across representative (dimension, points) pairs.
//!
//! Server times are measured from the real CKKS kernels on this machine;
//! client times are the op counts multiplied by the CHOCO-TACO and IMX6
//! per-op costs (the paper's §5.2 methodology). Point counts are scaled
//! down from the paper's to keep Galois-key material tractable in a demo
//! binary; the *ordering* of variants is the result under test.

#![forbid(unsafe_code)]
use choco::transport::Session;
use choco_apps::distance::{
    distance_rotation_steps, distances_plain, encrypted_distances, PackingVariant,
};
use choco_bench::{header, note, time_str, timed};
use choco_he::params::HeParams;
use choco_he::Ckks;
use choco_taco::baseline::{sw_decryption_time, sw_encryption_time};
use choco_taco::config::AcceleratorConfig;
use choco_taco::model::{decryption_profile, encryption_profile};

fn or_die<T, E: std::fmt::Display>(what: &str, result: Result<T, E>) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("fig11_distance: {what}: {e}");
        std::process::exit(1)
    })
}

fn main() {
    header("Figure 11: encrypted distance kernels — packing-variant tradeoffs");
    // Deeper CKKS chain than set C so the collapsed variant has a rescale
    // level to spend on its masking multiplies (documented substitution).
    let params = or_die("params", HeParams::ckks(8192, &[50, 50, 40, 59], 40));
    let n_ring = params.degree();
    let k = params.prime_count();
    let cfg = AcceleratorConfig::paper_operating_point();
    let hw_enc = encryption_profile(&cfg, n_ring, k).time_s;
    let hw_dec = decryption_profile(&cfg, n_ring, k).time_s;
    let sw_enc = sw_encryption_time(n_ring, k);
    let sw_dec = sw_decryption_time(n_ring, k);

    for (dims, points_n) in [(4usize, 16usize), (16, 16), (128, 32)] {
        println!("\n--- dims = {dims}, points = {points_n} ---");
        println!(
            "{:<26} {:>11} {:>11} {:>11} {:>10} {:>9}",
            "Variant", "server", "client(sw)", "client(hw)", "comm", "srv ops"
        );
        let query: Vec<f64> = (0..dims).map(|i| (i as f64 * 0.31).sin()).collect();
        let points: Vec<Vec<f64>> = (0..points_n)
            .map(|p| {
                (0..dims)
                    .map(|i| ((p * dims + i) as f64 * 0.17).cos())
                    .collect()
            })
            .collect();
        let want = distances_plain(&query, &points);

        for variant in PackingVariant::all() {
            let steps = distance_rotation_steps(dims, points_n, params.slot_count());
            let mut session = or_die(
                "session",
                Session::<Ckks>::direct(&params, b"fig11", &steps),
            );
            let (res, server_time) = timed(|| {
                or_die(
                    "kernel",
                    encrypted_distances(variant, &mut session, &query, &points),
                )
            });
            // Validate against the plaintext reference.
            for (g, w) in res.distances.iter().zip(&want) {
                assert!((g - w).abs() < 5e-2, "{}: {g} vs {w}", variant.label());
            }
            let client_sw = res.encryptions as f64 * sw_enc + res.decryptions as f64 * sw_dec;
            let client_hw = res.encryptions as f64 * hw_enc + res.decryptions as f64 * hw_dec;
            println!(
                "{:<26} {:>11} {:>11} {:>11} {:>9.2}M {:>9}",
                variant.label(),
                time_str(server_time),
                time_str(client_sw),
                time_str(client_hw),
                res.ledger.total_bytes() as f64 / 1e6,
                res.server_ops,
            );
        }
    }
    note("collapsed point-major: most server ops, single dense reply — the client-optimized choice (§5.4)");
    note("stacked variants win when dimensions are small (high ciphertext utilization)");
}
