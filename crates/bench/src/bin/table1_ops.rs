//! Regenerates **Table 1**: the HE operation set with measured cost and
//! noise growth.
//!
//! The paper states asymptotic complexity; this binary measures the real
//! implementation at parameter set B (N = 4096, k = 3) — wall time per op
//! and invariant-noise-budget consumption — confirming the complexity and
//! noise-growth classes.

#![forbid(unsafe_code)]
use choco_bench::{header, time_str, timed_avg};
use choco_he::bfv::{BfvContext, Plaintext};
use choco_he::params::HeParams;
use choco_prng::Blake3Rng;

fn main() {
    header("Table 1: HE operations — measured time and noise growth (set B)");
    let params = HeParams::set_b();
    let ctx = BfvContext::new(&params).expect("context");
    let mut rng = Blake3Rng::from_seed(b"table1");
    let keys = ctx.keygen(&mut rng);
    let rk = ctx.relin_key(keys.secret_key(), &mut rng).expect("relin");
    let gks = ctx
        .galois_keys(keys.secret_key(), &[1], &mut rng)
        .expect("galois");
    let encoder = ctx.batch_encoder().expect("batch");
    let dec = ctx.decryptor(keys.secret_key());
    let eval = ctx.evaluator();

    let values: Vec<u64> = (0..params.degree() as u64).map(|i| i % 16).collect();
    let pt = encoder.encode(&values).expect("encode");
    let ct = ctx.encryptor(keys.public_key()).encrypt(&pt, &mut rng);
    let fresh = dec.invariant_noise_budget(&ct);
    let iters = 5;

    println!(
        "{:<22} {:>12} {:>16} {:<10}",
        "Operation", "Time", "Noise cost (bits)", "Class"
    );

    let t_enc = timed_avg(iters, || {
        let _ = ctx.encryptor(keys.public_key()).encrypt(&pt, &mut rng);
    });
    println!(
        "{:<22} {:>12} {:>16} {:<10}",
        "Encrypt",
        time_str(t_enc),
        "-",
        "N/A"
    );

    let t_dec = timed_avg(iters, || {
        let _ = dec.decrypt(&ct);
    });
    println!(
        "{:<22} {:>12} {:>16} {:<10}",
        "Decrypt",
        time_str(t_dec),
        "-",
        "N/A"
    );

    let pt_small = Plaintext::from_coeffs(vec![1; params.degree()]);
    let t_pa = timed_avg(iters, || {
        let _ = eval.add_plain(&ct, &pt_small);
    });
    let cost_pa = fresh - dec.invariant_noise_budget(&eval.add_plain(&ct, &pt_small));
    println!(
        "{:<22} {:>12} {:>16.1} {:<10}",
        "Plaintext Add",
        time_str(t_pa),
        cost_pa,
        "Small"
    );

    let t_ca = timed_avg(iters, || {
        let _ = eval.add(&ct, &ct).unwrap();
    });
    let cost_ca = fresh - dec.invariant_noise_budget(&eval.add(&ct, &ct).unwrap());
    println!(
        "{:<22} {:>12} {:>16.1} {:<10}",
        "Ciphertext Add",
        time_str(t_ca),
        cost_ca,
        "Small"
    );

    let t_pm = timed_avg(iters, || {
        let _ = eval.multiply_plain(&ct, &pt);
    });
    let cost_pm = fresh - dec.invariant_noise_budget(&eval.multiply_plain(&ct, &pt));
    println!(
        "{:<22} {:>12} {:>16.1} {:<10}",
        "Plaintext Multiply",
        time_str(t_pm),
        cost_pm,
        "Moderate"
    );

    let t_cm = timed_avg(2, || {
        let _ = eval.multiply_relin(&ct, &ct, &rk).unwrap();
    });
    let cost_cm = fresh - dec.invariant_noise_budget(&eval.multiply_relin(&ct, &ct, &rk).unwrap());
    println!(
        "{:<22} {:>12} {:>16.1} {:<10}",
        "Ciphertext Multiply",
        time_str(t_cm),
        cost_cm,
        "Large"
    );

    let t_rot = timed_avg(iters, || {
        let _ = eval.rotate_rows(&ct, 1, &gks).unwrap();
    });
    let cost_rot = fresh - dec.invariant_noise_budget(&eval.rotate_rows(&ct, 1, &gks).unwrap());
    println!(
        "{:<22} {:>12} {:>16.1} {:<10}",
        "Ciphertext Rotate",
        time_str(t_rot),
        cost_rot,
        "Small"
    );

    println!("\nFresh noise budget: {fresh:.1} bits.");
    println!(
        "Complexity classes (paper): add O(Nr); encrypt/decrypt/plain-mul\n\
         O(N logN r); ct-mul & rotate O(N logN r^2) — visible in the timings."
    );
}
