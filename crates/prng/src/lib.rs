//! Cryptographic pseudo-random number generation for the CHOCO stack.
//!
//! The paper's accelerator (and its modified SEAL baseline) draw all
//! randomness from the BLAKE3 cryptographic hash. This crate provides:
//!
//! * [`blake3`] — a from-scratch BLAKE3 implementation (hashing, keyed
//!   hashing, and extendable output), validated against the official test
//!   vectors;
//! * [`csprng::Blake3Rng`] — a deterministic, seedable stream of random
//!   bytes built on the BLAKE3 XOF;
//! * [`sampler`] — the three samplers HE encryption needs: uniform residues,
//!   ternary secrets, and clipped-normal error (σ = 3.2, SEAL-compatible).
//!
//! # Example
//!
//! ```
//! use choco_prng::csprng::Blake3Rng;
//! use choco_prng::sampler::sample_ternary;
//!
//! let mut rng = Blake3Rng::from_seed(b"choco demo seed");
//! let secret = sample_ternary(&mut rng, 1024, 0x3001);
//! assert!(secret.iter().all(|&c| c == 0 || c == 1 || c == 0x3000));
//! ```

#![forbid(unsafe_code)]
// Panics hide protocol bugs: outside tests, prefer typed errors (PR 1's
// robustness audit). New `unwrap`/`expect` calls in library code must either
// be converted to `Result` or carry a `# Panics` contract at the public API.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
pub mod blake3;
pub mod csprng;
pub mod sampler;

pub use csprng::Blake3Rng;
