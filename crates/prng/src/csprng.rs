//! A deterministic CSPRNG over the BLAKE3 XOF.
//!
//! Every random value in the HE stack (secrets, errors, public-key `a`
//! polynomials) is drawn from a [`Blake3Rng`] seeded explicitly, so whole
//! protocol runs are reproducible — the property the paper relies on when
//! counting accelerator PRNG throughput (§4.2 reports 565 MB/s peak demand).

use crate::blake3::{Hasher, XofReader};

/// A seeded, deterministic stream of cryptographically strong bytes.
pub struct Blake3Rng {
    reader: XofReader,
    /// Total bytes drawn so far (used by the accelerator model to account
    /// PRNG bandwidth demand).
    bytes_drawn: u64,
}

impl std::fmt::Debug for Blake3Rng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Blake3Rng")
            .field("bytes_drawn", &self.bytes_drawn)
            .finish()
    }
}

impl Blake3Rng {
    /// Creates a generator from arbitrary seed bytes.
    // choco-lint: ct-safe
    pub fn from_seed(seed: &[u8]) -> Self {
        let mut h = Hasher::new();
        h.update(seed);
        Blake3Rng {
            reader: h.finalize_xof_reader(),
            bytes_drawn: 0,
        }
    }

    /// Creates a generator from a seed and a domain-separation label, so
    /// independent streams can be derived from one master seed.
    // choco-lint: ct-safe
    pub fn from_seed_labeled(seed: &[u8], label: &str) -> Self {
        let mut h = Hasher::new();
        h.update(seed);
        h.update(&[0xff]);
        h.update(label.as_bytes());
        Blake3Rng {
            reader: h.finalize_xof_reader(),
            bytes_drawn: 0,
        }
    }

    /// Fills `out` with random bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        self.reader.fill(out);
        self.bytes_drawn += out.len() as u64;
    }

    /// Next random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut buf = [0u8; 8];
        self.fill_bytes(&mut buf);
        u64::from_le_bytes(buf)
    }

    /// Next random `u32`.
    pub fn next_u32(&mut self) -> u32 {
        let mut buf = [0u8; 4];
        self.fill_bytes(&mut buf);
        u32::from_le_bytes(buf)
    }

    /// Uniform value in `[0, bound)` by rejection sampling (no modulo bias).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        // Largest multiple of bound that fits in u64.
        let zone = u64::MAX - (u64::MAX % bound) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Total bytes drawn since construction.
    pub fn bytes_drawn(&self) -> u64 {
        self.bytes_drawn
    }

    /// Fast-forwards the stream by `n` bytes (draw and discard).
    ///
    /// A generator's state is fully determined by its seed and
    /// [`Blake3Rng::bytes_drawn`], so `from_seed(s)` + `skip(n)` restores a
    /// checkpointed stream exactly — the primitive session resume is built
    /// on.
    pub fn skip(&mut self, n: u64) {
        let mut buf = [0u8; 256];
        let mut left = n;
        while left > 0 {
            let chunk = left.min(buf.len() as u64) as usize;
            self.fill_bytes(&mut buf[..chunk]);
            left -= chunk as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Blake3Rng::from_seed(b"seed");
        let mut b = Blake3Rng::from_seed(b"seed");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Blake3Rng::from_seed(b"seed-a");
        let mut b = Blake3Rng::from_seed(b"seed-b");
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn labels_separate_domains() {
        let mut a = Blake3Rng::from_seed_labeled(b"seed", "secret");
        let mut b = Blake3Rng::from_seed_labeled(b"seed", "error");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = Blake3Rng::from_seed(b"bounds");
        for bound in [1u64, 2, 3, 7, 100, 1 << 20, u64::MAX / 2 + 3] {
            for _ in 0..50 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut rng = Blake3Rng::from_seed(b"uniformity");
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[rng.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c} out of range");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Blake3Rng::from_seed(b"floats");
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn skip_fast_forwards_exactly() {
        let mut reference = Blake3Rng::from_seed(b"skip");
        let drawn: Vec<u64> = (0..100).map(|_| reference.next_u64()).collect();
        for cut in [0usize, 1, 7, 50, 99] {
            let mut restored = Blake3Rng::from_seed(b"skip");
            restored.skip(cut as u64 * 8);
            assert_eq!(restored.bytes_drawn(), cut as u64 * 8);
            for (i, &want) in drawn[cut..].iter().enumerate() {
                assert_eq!(restored.next_u64(), want, "cut {cut} draw {i}");
            }
        }
    }

    #[test]
    fn skip_handles_odd_and_large_offsets() {
        let mut a = Blake3Rng::from_seed(b"skip odd");
        let mut junk = vec![0u8; 1000];
        a.fill_bytes(&mut junk);
        let want = a.next_u64();
        let mut b = Blake3Rng::from_seed(b"skip odd");
        b.skip(1000);
        assert_eq!(b.next_u64(), want);
    }

    #[test]
    fn byte_accounting() {
        let mut rng = Blake3Rng::from_seed(b"count");
        rng.next_u64();
        rng.next_u32();
        let mut buf = [0u8; 10];
        rng.fill_bytes(&mut buf);
        assert_eq!(rng.bytes_drawn(), 8 + 4 + 10);
    }
}
