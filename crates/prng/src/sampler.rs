//! RLWE noise and secret samplers.
//!
//! Three distributions cover everything BFV/CKKS encryption needs (Eq. 2 of
//! the paper: `u ← R_2` ternary, `e_1, e_2 ← χ` error):
//!
//! * uniform residues modulo `q` (public-key randomness),
//! * ternary coefficients in `{-1, 0, 1}` (secrets and encryption `u`),
//! * clipped centered normal with σ = 3.2 and tail cut at 6σ — the same
//!   error distribution SEAL uses.

use crate::csprng::Blake3Rng;

/// Standard deviation of the RLWE error distribution (SEAL default).
pub const ERROR_STDDEV: f64 = 3.2;

/// Error samples are clipped to ±6σ like SEAL's clipped normal.
pub const ERROR_BOUND: i64 = 19; // floor(6 * 3.2)

/// Samples `n` coefficients uniform in `[0, q)`.
// choco-lint: secret (public: n, q)
pub fn sample_uniform(rng: &mut Blake3Rng, n: usize, q: u64) -> Vec<u64> {
    (0..n).map(|_| rng.next_below(q)).collect()
}

/// Samples `n` ternary coefficients in `{-1, 0, 1}` represented modulo `q`
/// (i.e. `-1` is stored as `q - 1`).
// choco-lint: secret (public: n, q)
pub fn sample_ternary(rng: &mut Blake3Rng, n: usize, q: u64) -> Vec<u64> {
    (0..n)
        // Each draw is consumed whole by a three-way map whose arms all cost
        // one move; no data-dependent iteration or memory access follows.
        // choco-lint: allow(SEC001) fresh draw mapped to its output, uniform-cost arms
        .map(|_| match rng.next_below(3) {
            0 => 0,
            1 => 1,
            _ => q - 1,
        })
        .collect()
}

/// Samples one clipped-normal error value as a signed integer.
// choco-lint: secret
pub fn sample_error_value(rng: &mut Blake3Rng) -> i64 {
    loop {
        // Box–Muller transform driven by the XOF stream.
        let u1 = rng.next_f64().max(f64::MIN_POSITIVE);
        let u2 = rng.next_f64();
        let mag = (-2.0 * u1.ln()).sqrt();
        let z = mag * (2.0 * std::f64::consts::PI * u2).cos();
        let e = (z * ERROR_STDDEV).round() as i64;
        // Rejection sampling on a *fresh* draw: the retry count is
        // independent of any previously established secret, and accepted
        // values leak only the public fact that they passed the clip test.
        // choco-lint: allow(SEC001) rejection sampling on fresh randomness
        if e.abs() <= ERROR_BOUND {
            return e;
        }
    }
}

/// Samples `n` ternary coefficients as signed values in `{-1, 0, 1}`.
///
/// The RNS layer maps one signed draw into every prime's residue ring, so
/// samplers must produce scheme-independent signed values; this is the
/// signed counterpart of [`sample_ternary`].
// choco-lint: secret (public: n)
pub fn sample_ternary_signed(rng: &mut Blake3Rng, n: usize) -> Vec<i8> {
    (0..n)
        // choco-lint: allow(SEC001) fresh draw mapped to its output, uniform-cost arms
        .map(|_| match rng.next_below(3) {
            0 => 0,
            1 => 1,
            _ => -1,
        })
        .collect()
}

/// Samples `n` clipped-normal error coefficients as signed integers.
// choco-lint: secret (public: n)
pub fn sample_error_signed(rng: &mut Blake3Rng, n: usize) -> Vec<i64> {
    (0..n).map(|_| sample_error_value(rng)).collect()
}

/// Samples `n` clipped-normal error coefficients represented modulo `q`.
// choco-lint: secret (public: n, q)
pub fn sample_error(rng: &mut Blake3Rng, n: usize, q: u64) -> Vec<u64> {
    // Branchless sign fold: `rem_euclid` maps e < 0 to q + e without a
    // secret-dependent branch (q > 2·ERROR_BOUND for every valid modulus).
    (0..n)
        .map(|_| sample_error_value(rng).rem_euclid(q as i64) as u64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q: u64 = 0x3FFF_FFFF_0000_0001 % 0xFFFF_FFFF; // arbitrary test modulus
    const N: usize = 4096;

    #[test]
    fn uniform_stays_in_range_and_spreads() {
        let mut rng = Blake3Rng::from_seed(b"u");
        let v = sample_uniform(&mut rng, N, Q);
        assert!(v.iter().all(|&x| x < Q));
        let mean = v.iter().map(|&x| x as f64).sum::<f64>() / N as f64;
        let expect = Q as f64 / 2.0;
        assert!((mean - expect).abs() < 0.05 * Q as f64, "mean {mean}");
    }

    #[test]
    fn ternary_hits_all_three_values() {
        let mut rng = Blake3Rng::from_seed(b"t");
        let v = sample_ternary(&mut rng, N, Q);
        let zeros = v.iter().filter(|&&x| x == 0).count();
        let ones = v.iter().filter(|&&x| x == 1).count();
        let negs = v.iter().filter(|&&x| x == Q - 1).count();
        assert_eq!(zeros + ones + negs, N);
        for c in [zeros, ones, negs] {
            let frac = c as f64 / N as f64;
            assert!((frac - 1.0 / 3.0).abs() < 0.05, "fraction {frac}");
        }
    }

    #[test]
    fn error_values_clipped_and_centered() {
        let mut rng = Blake3Rng::from_seed(b"e");
        let mut sum = 0i64;
        let mut sq = 0f64;
        for _ in 0..N {
            let e = sample_error_value(&mut rng);
            assert!(e.abs() <= ERROR_BOUND);
            sum += e;
            sq += (e * e) as f64;
        }
        let mean = sum as f64 / N as f64;
        let std = (sq / N as f64 - mean * mean).sqrt();
        assert!(mean.abs() < 0.3, "mean {mean}");
        assert!((std - ERROR_STDDEV).abs() < 0.3, "std {std}");
    }

    #[test]
    fn error_mod_q_encodes_sign() {
        let mut rng = Blake3Rng::from_seed(b"em");
        let v = sample_error(&mut rng, N, Q);
        for &x in &v {
            assert!(
                x <= ERROR_BOUND as u64 || x >= Q - ERROR_BOUND as u64,
                "residue {x} outside clipped band"
            );
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = Blake3Rng::from_seed(b"det");
        let mut b = Blake3Rng::from_seed(b"det");
        assert_eq!(sample_error(&mut a, 64, Q), sample_error(&mut b, 64, Q));
    }
}
