//! A from-scratch implementation of the BLAKE3 cryptographic hash.
//!
//! Follows the reference implementation structure from the BLAKE3 paper:
//! 1024-byte chunks of sixteen 64-byte blocks, a binary Merkle tree over
//! chunk chaining values, and an extendable-output root. Supports plain
//! hashing, keyed hashing, and XOF output — everything the CHOCO PRNG
//! needs. Validated against the official test vectors in this module's
//! tests.

const OUT_LEN: usize = 32;
const BLOCK_LEN: usize = 64;
const CHUNK_LEN: usize = 1024;

const CHUNK_START: u32 = 1 << 0;
const CHUNK_END: u32 = 1 << 1;
const PARENT: u32 = 1 << 2;
const ROOT: u32 = 1 << 3;
const KEYED_HASH: u32 = 1 << 4;

const IV: [u32; 8] = [
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A, 0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
];

const MSG_PERMUTATION: [usize; 16] = [2, 6, 3, 10, 7, 0, 4, 13, 1, 11, 12, 5, 9, 14, 15, 8];

#[inline(always)]
fn g(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize, mx: u32, my: u32) {
    state[a] = state[a].wrapping_add(state[b]).wrapping_add(mx);
    state[d] = (state[d] ^ state[a]).rotate_right(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_right(12);
    state[a] = state[a].wrapping_add(state[b]).wrapping_add(my);
    state[d] = (state[d] ^ state[a]).rotate_right(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_right(7);
}

fn round(state: &mut [u32; 16], m: &[u32; 16]) {
    // Columns.
    g(state, 0, 4, 8, 12, m[0], m[1]);
    g(state, 1, 5, 9, 13, m[2], m[3]);
    g(state, 2, 6, 10, 14, m[4], m[5]);
    g(state, 3, 7, 11, 15, m[6], m[7]);
    // Diagonals.
    g(state, 0, 5, 10, 15, m[8], m[9]);
    g(state, 1, 6, 11, 12, m[10], m[11]);
    g(state, 2, 7, 8, 13, m[12], m[13]);
    g(state, 3, 4, 9, 14, m[14], m[15]);
}

fn permute(m: &mut [u32; 16]) {
    let mut permuted = [0u32; 16];
    for i in 0..16 {
        permuted[i] = m[MSG_PERMUTATION[i]];
    }
    *m = permuted;
}

fn compress(
    chaining_value: &[u32; 8],
    block_words: &[u32; 16],
    counter: u64,
    block_len: u32,
    flags: u32,
) -> [u32; 16] {
    let mut state = [
        chaining_value[0],
        chaining_value[1],
        chaining_value[2],
        chaining_value[3],
        chaining_value[4],
        chaining_value[5],
        chaining_value[6],
        chaining_value[7],
        IV[0],
        IV[1],
        IV[2],
        IV[3],
        counter as u32,
        (counter >> 32) as u32,
        block_len,
        flags,
    ];
    let mut block = *block_words;
    for r in 0..7 {
        round(&mut state, &block);
        if r < 6 {
            permute(&mut block);
        }
    }
    for i in 0..8 {
        state[i] ^= state[i + 8];
        state[i + 8] ^= chaining_value[i];
    }
    state
}

fn words_from_block(bytes: &[u8]) -> [u32; 16] {
    debug_assert!(bytes.len() <= BLOCK_LEN);
    let mut words = [0u32; 16];
    for (i, chunk) in bytes.chunks(4).enumerate() {
        let mut buf = [0u8; 4];
        buf[..chunk.len()].copy_from_slice(chunk);
        words[i] = u32::from_le_bytes(buf);
    }
    words
}

fn first_8_words(words: [u32; 16]) -> [u32; 8] {
    let mut out = [0u32; 8];
    out.copy_from_slice(&words[..8]);
    out
}

/// The pending output of a chunk or parent node; can be finalized into a
/// chaining value or expanded as the root.
#[derive(Clone)]
struct Output {
    input_chaining_value: [u32; 8],
    block_words: [u32; 16],
    counter: u64,
    block_len: u32,
    flags: u32,
}

impl Output {
    fn chaining_value(&self) -> [u32; 8] {
        first_8_words(compress(
            &self.input_chaining_value,
            &self.block_words,
            self.counter,
            self.block_len,
            self.flags,
        ))
    }

    fn root_output_bytes(&self, out: &mut [u8], mut counter: u64) {
        for out_block in out.chunks_mut(2 * OUT_LEN) {
            let words = compress(
                &self.input_chaining_value,
                &self.block_words,
                counter,
                self.block_len,
                self.flags | ROOT,
            );
            for (word, dst) in words.iter().zip(out_block.chunks_mut(4)) {
                dst.copy_from_slice(&word.to_le_bytes()[..dst.len()]);
            }
            counter += 1;
        }
    }
}

#[derive(Clone)]
struct ChunkState {
    chaining_value: [u32; 8],
    chunk_counter: u64,
    block: [u8; BLOCK_LEN],
    block_len: u8,
    blocks_compressed: u8,
    flags: u32,
}

impl ChunkState {
    fn new(key_words: [u32; 8], chunk_counter: u64, flags: u32) -> Self {
        ChunkState {
            chaining_value: key_words,
            chunk_counter,
            block: [0; BLOCK_LEN],
            block_len: 0,
            blocks_compressed: 0,
            flags,
        }
    }

    fn len(&self) -> usize {
        BLOCK_LEN * self.blocks_compressed as usize + self.block_len as usize
    }

    fn start_flag(&self) -> u32 {
        if self.blocks_compressed == 0 {
            CHUNK_START
        } else {
            0
        }
    }

    fn update(&mut self, mut input: &[u8]) {
        while !input.is_empty() {
            // If the block buffer is full, compress it (it is not the last).
            if self.block_len as usize == BLOCK_LEN {
                let block_words = words_from_block(&self.block);
                self.chaining_value = first_8_words(compress(
                    &self.chaining_value,
                    &block_words,
                    self.chunk_counter,
                    BLOCK_LEN as u32,
                    self.flags | self.start_flag(),
                ));
                self.blocks_compressed += 1;
                self.block = [0; BLOCK_LEN];
                self.block_len = 0;
            }
            let want = BLOCK_LEN - self.block_len as usize;
            let take = want.min(input.len());
            self.block[self.block_len as usize..self.block_len as usize + take]
                .copy_from_slice(&input[..take]);
            self.block_len += take as u8;
            input = &input[take..];
        }
    }

    fn output(&self) -> Output {
        Output {
            input_chaining_value: self.chaining_value,
            block_words: words_from_block(&self.block[..self.block_len as usize]),
            counter: self.chunk_counter,
            block_len: self.block_len as u32,
            flags: self.flags | self.start_flag() | CHUNK_END,
        }
    }
}

fn parent_output(left: [u32; 8], right: [u32; 8], key_words: [u32; 8], flags: u32) -> Output {
    let mut block_words = [0u32; 16];
    block_words[..8].copy_from_slice(&left);
    block_words[8..].copy_from_slice(&right);
    Output {
        input_chaining_value: key_words,
        block_words,
        counter: 0,
        block_len: BLOCK_LEN as u32,
        flags: PARENT | flags,
    }
}

/// An incremental BLAKE3 hasher.
///
/// # Example
///
/// ```
/// use choco_prng::blake3::Hasher;
///
/// let mut h = Hasher::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// let digest = h.finalize();
/// assert_eq!(digest.len(), 32);
/// ```
#[derive(Clone)]
pub struct Hasher {
    chunk_state: ChunkState,
    key_words: [u32; 8],
    cv_stack: Vec<[u32; 8]>,
    flags: u32,
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher {
    /// A hasher for the plain (unkeyed) hash mode.
    pub fn new() -> Self {
        Self::new_internal(IV, 0)
    }

    /// A hasher for the keyed hash mode with a 32-byte key.
    pub fn new_keyed(key: &[u8; 32]) -> Self {
        let mut key_words = [0u32; 8];
        for (w, chunk) in key_words.iter_mut().zip(key.chunks_exact(4)) {
            let mut bytes = [0u8; 4];
            bytes.copy_from_slice(chunk);
            *w = u32::from_le_bytes(bytes);
        }
        Self::new_internal(key_words, KEYED_HASH)
    }

    fn new_internal(key_words: [u32; 8], flags: u32) -> Self {
        Hasher {
            chunk_state: ChunkState::new(key_words, 0, flags),
            key_words,
            cv_stack: Vec::new(),
            flags,
        }
    }

    fn add_chunk_chaining_value(&mut self, mut new_cv: [u32; 8], mut total_chunks: u64) {
        // Merge subtrees along the right edge: a completed subtree exists for
        // every trailing zero bit of the chunk count.
        while total_chunks & 1 == 0 {
            let left = self.cv_stack.pop().expect("cv stack underflow");
            new_cv = parent_output(left, new_cv, self.key_words, self.flags).chaining_value();
            total_chunks >>= 1;
        }
        self.cv_stack.push(new_cv);
    }

    /// Absorbs input bytes.
    pub fn update(&mut self, mut input: &[u8]) -> &mut Self {
        while !input.is_empty() {
            // If the current chunk is full, finalize it into the tree.
            if self.chunk_state.len() == CHUNK_LEN {
                let chunk_cv = self.chunk_state.output().chaining_value();
                let total_chunks = self.chunk_state.chunk_counter + 1;
                self.add_chunk_chaining_value(chunk_cv, total_chunks);
                self.chunk_state = ChunkState::new(self.key_words, total_chunks, self.flags);
            }
            let want = CHUNK_LEN - self.chunk_state.len();
            let take = want.min(input.len());
            self.chunk_state.update(&input[..take]);
            input = &input[take..];
        }
        self
    }

    fn root(&self) -> Output {
        let mut output = self.chunk_state.output();
        for &left in self.cv_stack.iter().rev() {
            output = parent_output(left, output.chaining_value(), self.key_words, self.flags);
        }
        output
    }

    /// Produces the standard 32-byte digest.
    pub fn finalize(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        self.root().root_output_bytes(&mut out, 0);
        out
    }

    /// Fills `out` with extendable output (XOF) bytes starting at offset 0.
    pub fn finalize_xof(&self, out: &mut [u8]) {
        self.root().root_output_bytes(out, 0);
    }

    /// Returns an [`XofReader`] for streaming unbounded output.
    pub fn finalize_xof_reader(&self) -> XofReader {
        XofReader {
            output: self.root(),
            counter: 0,
            buf: [0u8; 2 * OUT_LEN],
            buf_pos: 2 * OUT_LEN,
        }
    }
}

/// Streams XOF output 64 bytes at a time.
pub struct XofReader {
    output: Output,
    counter: u64,
    buf: [u8; 2 * OUT_LEN],
    buf_pos: usize,
}

impl XofReader {
    /// Fills `out` with the next output bytes.
    pub fn fill(&mut self, out: &mut [u8]) {
        for byte in out.iter_mut() {
            if self.buf_pos == self.buf.len() {
                let mut block = [0u8; 2 * OUT_LEN];
                self.output.root_output_bytes(&mut block, self.counter);
                self.buf = block;
                self.counter += 1;
                self.buf_pos = 0;
            }
            *byte = self.buf[self.buf_pos];
            self.buf_pos += 1;
        }
    }
}

/// Convenience one-shot hash.
pub fn hash(input: &[u8]) -> [u8; 32] {
    let mut h = Hasher::new();
    h.update(input);
    h.finalize()
}

/// Convenience one-shot keyed hash.
pub fn keyed_hash(key: &[u8; 32], input: &[u8]) -> [u8; 32] {
    let mut h = Hasher::new_keyed(key);
    h.update(input);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Official test vectors: input byte `i` is `i % 251`.
    fn tv_input(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn empty_input_matches_spec() {
        assert_eq!(
            hex(&hash(b"")),
            "af1349b9f5f9a1a6a0404dea36dcc9499bcb25c9adc112b7cc9a93cae41f3262"
        );
    }

    #[test]
    fn official_vectors_single_chunk() {
        let cases = [
            (
                1usize,
                "2d3adedff11b61f14c886e35afa036736dcd87a74d27b5c1510225d0f592e213",
            ),
            (
                63,
                "e9bc37a594daad83be9470df7f7b3798297c3d834ce80ba85d6e207627b7db7b",
            ),
            (
                64,
                "4eed7141ea4a5cd4b788606bd23f46e212af9cacebacdc7d1f4c6dc7f2511b98",
            ),
            (
                65,
                "de1e5fa0be70df6d2be8fffd0e99ceaa8eb6e8c93a63f2d8d1c30ecb6b263dee",
            ),
            (
                127,
                "d81293fda863f008c09e92fc382a81f5a0b4a1251cba1634016a0f86a6bd640d",
            ),
            (
                128,
                "f17e570564b26578c33bb7f44643f539624b05df1a76c81f30acd548c44b45ef",
            ),
            (
                1023,
                "10108970eeda3eb932baac1428c7a2163b0e924c9a9e25b35bba72b28f70bd11",
            ),
        ];
        for (len, expect) in cases {
            assert_eq!(hex(&hash(&tv_input(len))), expect, "len {len}");
        }
    }

    #[test]
    fn official_vectors_multi_chunk_tree() {
        let cases = [
            (
                1024usize,
                "42214739f095a406f3fc83deb889744ac00df831c10daa55189b5d121c855af7",
            ),
            (
                1025,
                "d00278ae47eb27b34faecf67b4fe263f82d5412916c1ffd97c8cb7fb814b8444",
            ),
            (
                2048,
                "e776b6028c7cd22a4d0ba182a8bf62205d2ef576467e838ed6f2529b85fba24a",
            ),
            (
                3072,
                "b98cb0ff3623be03326b373de6b9095218513e64f1ee2edd2525c7ad1e5cffd2",
            ),
            (
                4096,
                "015094013f57a5277b59d8475c0501042c0b642e531b0a1c8f58d2163229e969",
            ),
            (
                5120,
                "9cadc15fed8b5d854562b26a9536d9707cadeda9b143978f319ab34230535833",
            ),
            (
                8192,
                "aae792484c8efe4f19e2ca7d371d8c467ffb10748d8a5a1ae579948f718a2a63",
            ),
            (
                31744,
                "62b6960e1a44bcc1eb1a611a8d6235b6b4b78f32e7abc4fb4c6cdcce94895c47",
            ),
        ];
        for (len, expect) in cases {
            assert_eq!(hex(&hash(&tv_input(len))), expect, "len {len}");
        }
    }

    #[test]
    fn xof_output_matches_reference() {
        // First 96 XOF bytes for the empty input, generated from the official
        // blake3 crate.
        let mut out = [0u8; 96];
        Hasher::new().finalize_xof(&mut out);
        assert_eq!(
            hex(&out),
            "af1349b9f5f9a1a6a0404dea36dcc9499bcb25c9adc112b7cc9a93cae41f3262\
             e00f03e7b69af26b7faaf09fcd333050338ddfe085b8cc869ca98b206c08243a\
             26f5487789e8f660afe6c99ef9e0c52b92e7393024a80459cf91f476f9ffdbda"
                .replace(char::is_whitespace, "")
        );
    }

    #[test]
    fn keyed_hash_matches_reference() {
        let key = [7u8; 32];
        assert_eq!(
            hex(&keyed_hash(&key, b"hello")),
            "54ab3b148d829172a8e4abf8aa6bfe2f1254d33f90cb498a3f15f934d9393526"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let input = tv_input(5000);
        let oneshot = hash(&input);
        let mut h = Hasher::new();
        for chunk in input.chunks(17) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), oneshot);
    }

    #[test]
    fn xof_prefix_is_the_digest() {
        let input = tv_input(300);
        let digest = hash(&input);
        let mut long = [0u8; 100];
        let mut h = Hasher::new();
        h.update(&input);
        h.finalize_xof(&mut long);
        assert_eq!(&long[..32], &digest);
    }

    #[test]
    fn xof_reader_streams_consistently() {
        let mut h = Hasher::new();
        h.update(b"stream me");
        let mut all = [0u8; 200];
        h.finalize_xof(&mut all);
        let mut reader = h.finalize_xof_reader();
        let mut got = Vec::new();
        let mut buf = [0u8; 7];
        while got.len() < 200 {
            reader.fill(&mut buf);
            got.extend_from_slice(&buf);
        }
        assert_eq!(&got[..200], &all[..]);
    }

    #[test]
    fn different_keys_give_different_digests() {
        let a = keyed_hash(&[1u8; 32], b"data");
        let b = keyed_hash(&[2u8; 32], b"data");
        assert_ne!(a, b);
        assert_ne!(a, hash(b"data"));
    }
}
