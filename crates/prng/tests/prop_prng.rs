//! Property-based tests for the BLAKE3 implementation and samplers.

use choco_prng::blake3::{hash, Hasher};
use choco_prng::csprng::Blake3Rng;
use choco_prng::sampler::{sample_error_signed, sample_ternary_signed, ERROR_BOUND};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn incremental_hashing_is_chunking_invariant(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
        split in 0usize..4096,
    ) {
        let oneshot = hash(&data);
        let cut = split.min(data.len());
        let mut h = Hasher::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    #[test]
    fn distinct_inputs_distinct_digests(a in any::<Vec<u8>>(), b in any::<Vec<u8>>()) {
        prop_assume!(a != b);
        prop_assert_ne!(hash(&a), hash(&b));
    }

    #[test]
    fn xof_prefixes_are_consistent(data in any::<Vec<u8>>(), len in 1usize..200) {
        let mut h = Hasher::new();
        h.update(&data);
        let mut long = vec![0u8; 256];
        h.finalize_xof(&mut long);
        let mut short = vec![0u8; len];
        h.finalize_xof(&mut short);
        prop_assert_eq!(&short[..], &long[..len]);
    }

    #[test]
    fn rng_streams_are_seed_determined(seed in any::<[u8; 16]>()) {
        let mut a = Blake3Rng::from_seed(&seed);
        let mut b = Blake3Rng::from_seed(&seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bounded_sampling_honors_any_bound(seed in any::<[u8; 8]>(), bound in 1u64..u64::MAX) {
        let mut rng = Blake3Rng::from_seed(&seed);
        for _ in 0..8 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    #[test]
    fn samplers_stay_in_their_supports(seed in any::<[u8; 8]>()) {
        let mut rng = Blake3Rng::from_seed(&seed);
        for v in sample_ternary_signed(&mut rng, 256) {
            prop_assert!((-1..=1).contains(&v));
        }
        for e in sample_error_signed(&mut rng, 256) {
            prop_assert!(e.abs() <= ERROR_BOUND);
        }
    }
}
