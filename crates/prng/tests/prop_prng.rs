//! Property-based tests for the BLAKE3 implementation and samplers
//! (deterministic quickprop harness).

use choco_prng::blake3::{hash, Hasher};
use choco_prng::csprng::Blake3Rng;
use choco_prng::sampler::{sample_error_signed, sample_ternary_signed, ERROR_BOUND};
use choco_quickprop::run_cases;

#[test]
fn incremental_hashing_is_chunking_invariant() {
    run_cases("chunking invariance", 32, |g| {
        let data = g.bytes(4096);
        let split = g.u64_below(4096) as usize;
        let oneshot = hash(&data);
        let cut = split.min(data.len());
        let mut h = Hasher::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        assert_eq!(h.finalize(), oneshot);
    });
}

#[test]
fn distinct_inputs_distinct_digests() {
    run_cases("distinct digests", 32, |g| {
        let a = g.bytes(256);
        let b = g.bytes(256);
        if a == b {
            return; // discard collisions in the input generator
        }
        assert_ne!(hash(&a), hash(&b));
    });
}

#[test]
fn xof_prefixes_are_consistent() {
    run_cases("xof prefix consistency", 32, |g| {
        let data = g.bytes(512);
        let len = g.usize_in(1, 200);
        let mut h = Hasher::new();
        h.update(&data);
        let mut long = vec![0u8; 256];
        h.finalize_xof(&mut long);
        let mut short = vec![0u8; len];
        h.finalize_xof(&mut short);
        assert_eq!(&short[..], &long[..len]);
    });
}

#[test]
fn rng_streams_are_seed_determined() {
    run_cases("seed-determined streams", 32, |g| {
        let seed = g.array_u8::<16>();
        let mut a = Blake3Rng::from_seed(&seed);
        let mut b = Blake3Rng::from_seed(&seed);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    });
}

#[test]
fn bounded_sampling_honors_any_bound() {
    run_cases("bounded sampling", 32, |g| {
        let seed = g.array_u8::<8>();
        let bound = g.u64_in(1, u64::MAX);
        let mut rng = Blake3Rng::from_seed(&seed);
        for _ in 0..8 {
            assert!(rng.next_below(bound) < bound);
        }
    });
}

#[test]
fn samplers_stay_in_their_supports() {
    run_cases("sampler supports", 32, |g| {
        let seed = g.array_u8::<8>();
        let mut rng = Blake3Rng::from_seed(&seed);
        for v in sample_ternary_signed(&mut rng, 256) {
            assert!((-1..=1).contains(&v));
        }
        for e in sample_error_signed(&mut rng, 256) {
            assert!(e.abs() <= ERROR_BOUND);
        }
    });
}
