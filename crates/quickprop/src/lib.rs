//! A minimal, deterministic property-testing harness.
//!
//! The build must work with no registry access, so this crate replaces
//! `proptest` for the workspace's property suites. It is intentionally tiny:
//! a seeded generator ([`Gen`]) over the in-tree BLAKE3 CSPRNG and a case
//! runner ([`run_cases`]) that reports the failing case index so any failure
//! reproduces exactly (every case derives its randomness from the property
//! label and the case number — there is no global state and no shrinking).
//!
//! # Example
//!
//! ```
//! use choco_quickprop::run_cases;
//!
//! run_cases("addition commutes", 64, |g| {
//!     let (a, b) = (g.u64_below(1 << 30), g.u64_below(1 << 30));
//!     assert_eq!(a + b, b + a);
//! });
//! ```

#![forbid(unsafe_code)]
use choco_prng::Blake3Rng;

/// Default number of cases when a property has no special cost profile.
pub const DEFAULT_CASES: u32 = 64;

/// A per-case deterministic value generator.
pub struct Gen {
    rng: Blake3Rng,
    /// Case index within the property run (0-based).
    pub case: u32,
}

impl Gen {
    /// A generator for `case` of the property named `label`.
    pub fn for_case(label: &str, case: u32) -> Gen {
        let mut seed = Vec::with_capacity(label.len() + 4);
        seed.extend_from_slice(label.as_bytes());
        seed.extend_from_slice(&case.to_le_bytes());
        Gen {
            rng: Blake3Rng::from_seed_labeled(&seed, "quickprop"),
            case,
        }
    }

    /// Uniform `u64`.
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform `u32`.
    pub fn u32(&mut self) -> u32 {
        self.rng.next_u32()
    }

    /// Uniform `u8`.
    pub fn u8(&mut self) -> u8 {
        (self.rng.next_u32() & 0xff) as u8
    }

    /// Uniform `i64` over the full range.
    pub fn i64(&mut self) -> i64 {
        self.rng.next_u64() as i64
    }

    /// Uniform value in `[0, bound)` without modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        self.rng.next_below(bound)
    }

    /// Uniform value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.rng.next_below(hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// Uniform `i64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.rng.next_below((hi - lo) as u64) as i64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.rng.next_f64()
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.rng.next_f64() < p
    }

    /// A random byte vector with length in `[0, max_len]`.
    pub fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        let len = self.u64_below(max_len as u64 + 1) as usize;
        let mut out = vec![0u8; len];
        self.rng.fill_bytes(&mut out);
        out
    }

    /// A fixed-size random byte array.
    pub fn array_u8<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        self.rng.fill_bytes(&mut out);
        out
    }

    /// A fixed-size random `u64` array.
    pub fn array_u64<const N: usize>(&mut self) -> [u64; N] {
        let mut out = [0u64; N];
        for v in out.iter_mut() {
            *v = self.rng.next_u64();
        }
        out
    }

    /// A random `u64` vector of `len` values below `bound`.
    pub fn vec_u64_below(&mut self, len: usize, bound: u64) -> Vec<u64> {
        (0..len).map(|_| self.u64_below(bound)).collect()
    }
}

/// Runs `cases` deterministic cases of the property `body`; a panic inside
/// the body is re-raised annotated with the property label and case index,
/// which fully determine the failing inputs.
///
/// # Panics
///
/// Panics when any case fails.
pub fn run_cases<F>(label: &str, cases: u32, body: F)
where
    F: Fn(&mut Gen) + std::panic::RefUnwindSafe,
{
    for case in 0..cases {
        let result = std::panic::catch_unwind(|| {
            let mut g = Gen::for_case(label, case);
            body(&mut g);
        });
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic payload");
            panic!("property '{label}' failed at case {case}/{cases}: {msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let mut a = Gen::for_case("det", 7);
        let mut b = Gen::for_case("det", 7);
        assert_eq!(a.u64(), b.u64());
        assert_eq!(a.bytes(100), b.bytes(100));
        assert_eq!(a.i64_in(-50, 50), b.i64_in(-50, 50));
    }

    #[test]
    fn distinct_cases_diverge() {
        let mut a = Gen::for_case("div", 0);
        let mut b = Gen::for_case("div", 1);
        assert_ne!(a.u64(), b.u64());
    }

    #[test]
    fn ranges_are_respected() {
        run_cases("range bounds", 32, |g| {
            let v = g.u64_in(10, 20);
            assert!((10..20).contains(&v));
            let s = g.i64_in(-5, 5);
            assert!((-5..5).contains(&s));
            let bytes = g.bytes(16);
            assert!(bytes.len() <= 16);
        });
    }

    #[test]
    fn failure_reports_case_index() {
        let result = std::panic::catch_unwind(|| {
            run_cases("always fails", 3, |_| panic!("boom"));
        });
        let msg = match result {
            Err(p) => p.downcast_ref::<String>().expect("string payload").clone(),
            Ok(()) => panic!("expected failure"),
        };
        assert!(msg.contains("'always fails'"));
        assert!(msg.contains("case 0/3"));
        assert!(msg.contains("boom"));
    }
}
