//! From-scratch RNS homomorphic encryption: the BFV and CKKS schemes.
//!
//! This crate is the reproduction's substitute for Microsoft SEAL. It
//! implements the two vector HE schemes CHOCO targets:
//!
//! * **BFV** ([`bfv`]) — exact integer arithmetic modulo a plaintext
//!   modulus `t`, with SIMD batching ([`batch`]), Galois rotations,
//!   ciphertext multiplication with relinearization, and SEAL-compatible
//!   invariant-noise-budget measurement.
//! * **CKKS** ([`ckks`]) — approximate fixed-point arithmetic with the
//!   canonical-embedding encoder, rescaling, and rotations.
//!
//! Ciphertext coefficients are stored in RNS form over NTT-friendly primes
//! ([`params`]); the last prime of a parameter set is the *special prime*
//! reserved for key switching, exactly as in SEAL, so a parameter set
//! `{58,58,59}` yields 2-residue data ciphertexts — the property the paper
//! exploits to halve ciphertext size (§3.3, §5.3).
//!
//! # Example: BFV SIMD round trip
//!
//! ```
//! use choco_he::params::HeParams;
//! use choco_he::bfv::BfvContext;
//! use choco_prng::Blake3Rng;
//!
//! # fn main() -> Result<(), choco_he::HeError> {
//! let params = HeParams::bfv(4096, &[36, 36, 37], 17)?;
//! let ctx = BfvContext::new(&params)?;
//! let mut rng = Blake3Rng::from_seed(b"doc example");
//! let keys = ctx.keygen(&mut rng);
//! let values = vec![1u64, 2, 3, 4];
//! let pt = ctx.batch_encoder()?.encode(&values)?;
//! let ct = ctx.encryptor(keys.public_key()).encrypt(&pt, &mut rng);
//! let out = ctx.batch_encoder()?.decode(&ctx.decryptor(keys.secret_key()).decrypt(&ct))?;
//! assert_eq!(&out[..4], &values[..]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
// Panics hide protocol bugs: outside tests, prefer typed errors (PR 1's
// robustness audit). New `unwrap`/`expect` calls in library code must either
// be converted to `Result` or carry a `# Panics` contract at the public API.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
// Reference-style loops index multiple arrays in lockstep; the index
// form is clearer than zipped iterators for these numeric kernels.
#![allow(clippy::needless_range_loop)]

pub mod batch;
pub mod bfv;
pub mod cache;
pub mod ckks;
pub mod error;
pub mod keyswitch;
pub mod params;
pub mod rnspoly;
pub mod scheme;
pub mod serialize;

pub use cache::{CacheCounters, OperandCache};
pub use error::HeError;
pub use params::{HeParams, SchemeType};
pub use scheme::{Bfv, Ckks, HeScheme};
