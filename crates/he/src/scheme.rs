//! The scheme abstraction: one trait, two homomorphic schemes.
//!
//! CHOCO's client-aided offload model is scheme-agnostic — the paper runs
//! the same rotational-redundancy algorithms over BFV (exact workloads)
//! and CKKS (PageRank, K-Means), and CHET/EVA-style runtimes retarget
//! kernels without per-scheme rewrites. [`HeScheme`] captures the slice of
//! both schemes the offload protocol needs:
//!
//! * role setup (context, key generation, evaluation keys),
//! * the client boundary (encrypt / decrypt / health probe),
//! * the server-side linear algebra (`add`, `add_plain`, `mul_plain`,
//!   rotations, and the fused diagonal dot kernel),
//! * wire serialization hooks for the transport layer, and
//! * fixed-point **quantization hooks** that unify the two numeric models:
//!   BFV carries an explicit scale `2^(scale_bits·depth)` modulo `t`, while
//!   CKKS tracks its scale inside the ciphertext, so [`HeScheme::quantize`]
//!   is modular fixed-point for [`Bfv`] and the identity for [`Ckks`].
//!
//! Every method is an associated function on a zero-sized scheme marker
//! ([`Bfv`], [`Ckks`]), so generic code monomorphizes — there is no dynamic
//! dispatch anywhere on the hot path.
//!
//! The *health* probe generalizes the transport watchdog: for BFV it is the
//! invariant noise budget in bits (refresh when it runs low), for CKKS the
//! remaining rescaling levels (refresh before the chain runs out). A
//! session refreshes when health drops below [`HeScheme::HEALTH_FLOOR`].

use crate::bfv::{self, BfvContext};
use crate::ckks::{self, CkksContext};
use crate::params::{HeParams, SchemeType};
use crate::serialize;
use crate::HeError;
use choco_prng::Blake3Rng;

/// The homomorphic-scheme capability the offload protocol is generic over.
///
/// Implementations are zero-sized markers; all state lives in the
/// associated `Context`/key types. See the [module docs](self) for the
/// design rationale.
pub trait HeScheme: Sized + std::fmt::Debug + 'static {
    /// The slot value type: `u64` (exact, mod `t`) or `f64` (approximate).
    type Value: Copy + Default + PartialEq + std::fmt::Debug + Send + Sync;
    /// The scheme context (parameters, tables, encoders).
    type Context: Clone + std::fmt::Debug;
    /// A ciphertext.
    type Ciphertext: Clone + std::fmt::Debug;
    /// Client key material (secret + public key).
    type KeyBundle: std::fmt::Debug;
    /// The public encryption key (provisioned to the server).
    type PublicKey: Clone + std::fmt::Debug;
    /// The relinearization key.
    type RelinKey: std::fmt::Debug;
    /// The Galois rotation key set.
    type GaloisKeys: std::fmt::Debug;

    /// Which scheme this is (drives transport frame kinds and reports).
    const SCHEME: SchemeType;
    /// Default watchdog floor for [`HeScheme::health`]: noise-budget bits
    /// for BFV, remaining levels for CKKS.
    const HEALTH_FLOOR: f64;

    /// Builds a context from parameters.
    ///
    /// # Errors
    ///
    /// Propagates parameter validation failures.
    fn context(params: &HeParams) -> Result<Self::Context, HeError>;

    /// Generates a fresh secret/public key pair.
    fn keygen(ctx: &Self::Context, rng: &mut Blake3Rng) -> Self::KeyBundle;

    /// The public key inside a bundle.
    fn public_key(keys: &Self::KeyBundle) -> &Self::PublicKey;

    /// Generates the relinearization key.
    ///
    /// # Errors
    ///
    /// Propagates key-generation failures.
    fn relin_key(
        ctx: &Self::Context,
        keys: &Self::KeyBundle,
        rng: &mut Blake3Rng,
    ) -> Result<Self::RelinKey, HeError>;

    /// Generates Galois keys for the given rotation steps.
    ///
    /// # Errors
    ///
    /// Propagates key-generation failures.
    fn galois_keys(
        ctx: &Self::Context,
        keys: &Self::KeyBundle,
        steps: &[i64],
        rng: &mut Blake3Rng,
    ) -> Result<Self::GaloisKeys, HeError>;

    /// Encodes and encrypts a slot vector (the client boundary).
    ///
    /// # Errors
    ///
    /// Propagates encoding/encryption failures.
    fn encrypt(
        ctx: &Self::Context,
        keys: &Self::KeyBundle,
        values: &[Self::Value],
        rng: &mut Blake3Rng,
    ) -> Result<Self::Ciphertext, HeError>;

    /// Decrypts and decodes to a slot vector (the client boundary).
    ///
    /// # Errors
    ///
    /// Propagates decoding failures.
    fn decrypt(
        ctx: &Self::Context,
        keys: &Self::KeyBundle,
        ct: &Self::Ciphertext,
    ) -> Result<Vec<Self::Value>, HeError>;

    /// Remaining computation headroom of a ciphertext: invariant noise
    /// budget in bits (BFV, requires the secret key) or remaining rescale
    /// levels (CKKS, public).
    fn health(ctx: &Self::Context, keys: &Self::KeyBundle, ct: &Self::Ciphertext) -> f64;

    /// Width of one rotation group: the unit all packed kernels tile into
    /// (`degree/2` for BFV row rotations, the slot count for CKKS).
    fn slot_width(ctx: &Self::Context) -> usize;

    /// Serializes a ciphertext for the wire.
    fn ct_to_wire(ct: &Self::Ciphertext) -> Vec<u8>;

    /// Deserializes a ciphertext from the wire.
    ///
    /// # Errors
    ///
    /// Returns [`HeError`] on malformed bytes.
    fn ct_from_wire(bytes: &[u8]) -> Result<Self::Ciphertext, HeError>;

    /// Payload size of a ciphertext (the quantity the ledger bills).
    fn ct_bytes(ct: &Self::Ciphertext) -> usize;

    /// Wire size of the public key (provisioning accounting).
    fn public_key_bytes(pk: &Self::PublicKey) -> usize;

    /// Wire size of the relinearization key.
    fn relin_key_bytes(rk: &Self::RelinKey) -> usize;

    /// Wire size of the Galois key set.
    fn galois_keys_bytes(gk: &Self::GaloisKeys) -> usize;

    /// Ciphertext + ciphertext.
    ///
    /// # Errors
    ///
    /// Propagates operand mismatches.
    fn add(
        ctx: &Self::Context,
        a: &Self::Ciphertext,
        b: &Self::Ciphertext,
    ) -> Result<Self::Ciphertext, HeError>;

    /// Ciphertext − ciphertext.
    ///
    /// # Errors
    ///
    /// Propagates operand mismatches.
    fn sub(
        ctx: &Self::Context,
        a: &Self::Ciphertext,
        b: &Self::Ciphertext,
    ) -> Result<Self::Ciphertext, HeError>;

    /// Ciphertext + plaintext vector. CKKS encodes the operand at the
    /// ciphertext's current level and scale.
    ///
    /// # Errors
    ///
    /// Propagates encoding failures.
    fn add_plain(
        ctx: &Self::Context,
        ct: &Self::Ciphertext,
        values: &[Self::Value],
    ) -> Result<Self::Ciphertext, HeError>;

    /// Ciphertext × plaintext vector. CKKS encodes at the default scale and
    /// rescales afterwards (one level); BFV multiplies in place.
    ///
    /// # Errors
    ///
    /// Propagates encoding failures and exhausted level chains.
    fn mul_plain(
        ctx: &Self::Context,
        ct: &Self::Ciphertext,
        values: &[Self::Value],
    ) -> Result<Self::Ciphertext, HeError>;

    /// Rotates slots left by `step` within the rotation group.
    ///
    /// # Errors
    ///
    /// Returns [`HeError::MissingGaloisKey`] for unprovisioned steps.
    fn rotate(
        ctx: &Self::Context,
        ct: &Self::Ciphertext,
        step: i64,
        gk: &Self::GaloisKeys,
    ) -> Result<Self::Ciphertext, HeError>;

    /// Fused diagonal dot kernel: `Σ_k rot(ct, shift_k) ⊙ diag_k`, routed
    /// through each scheme's hoisted fast path (BFV `dot_rotations_plain`,
    /// CKKS `rotate_many`). The workhorse of the diagonal-method matvec.
    ///
    /// # Errors
    ///
    /// Propagates missing Galois keys and encoding failures.
    fn dot_diagonals(
        ctx: &Self::Context,
        ct: &Self::Ciphertext,
        diagonals: &[(i64, Vec<Self::Value>)],
        gk: &Self::GaloisKeys,
    ) -> Result<Self::Ciphertext, HeError>;

    /// Quantizes reals into the scheme's slot domain at fixed-point depth
    /// `depth`: BFV maps `v ↦ round(v · 2^(scale_bits·depth)) mod t`, CKKS
    /// passes values through (its ciphertexts carry the scale).
    fn quantize(
        ctx: &Self::Context,
        values: &[f64],
        scale_bits: u32,
        depth: u32,
    ) -> Vec<Self::Value>;

    /// Inverse of [`HeScheme::quantize`]: strips `depth` accumulated scale
    /// factors (BFV) or passes through (CKKS).
    fn dequantize(
        ctx: &Self::Context,
        values: &[Self::Value],
        scale_bits: u32,
        depth: u32,
    ) -> Vec<f64>;

    /// Serializes the client's secret/public key bundle for durable session
    /// checkpoints. The blob contains the **secret key** — checkpoint
    /// storage is trusted client territory only.
    fn keys_to_wire(keys: &Self::KeyBundle) -> Vec<u8>;

    /// Deserializes a key bundle from a checkpoint blob.
    ///
    /// # Errors
    ///
    /// Returns [`HeError::InvalidKeyMaterial`] on malformed bytes.
    fn keys_from_wire(bytes: &[u8]) -> Result<Self::KeyBundle, HeError>;

    /// Serializes the relinearization key.
    fn relin_to_wire(rk: &Self::RelinKey) -> Vec<u8>;

    /// Deserializes a relinearization key.
    ///
    /// # Errors
    ///
    /// Returns [`HeError::InvalidKeyMaterial`] on malformed bytes.
    fn relin_from_wire(bytes: &[u8]) -> Result<Self::RelinKey, HeError>;

    /// Serializes the Galois key set, deterministically (sorted elements).
    fn galois_to_wire(gk: &Self::GaloisKeys) -> Vec<u8>;

    /// Deserializes a Galois key set.
    ///
    /// # Errors
    ///
    /// Returns [`HeError::InvalidKeyMaterial`] on malformed bytes.
    fn galois_from_wire(bytes: &[u8]) -> Result<Self::GaloisKeys, HeError>;

    /// Whether a decrypted slot matches an expected sentinel value: exact
    /// equality for BFV, `|got − want| ≤ tol` for CKKS (approximate).
    fn value_matches(got: Self::Value, want: Self::Value, tol: f64) -> bool;
}

/// Marker for the exact integer scheme (BFV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bfv;

/// Marker for the approximate fixed-point scheme (CKKS).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ckks;

impl HeScheme for Bfv {
    type Value = u64;
    type Context = BfvContext;
    type Ciphertext = bfv::Ciphertext;
    type KeyBundle = bfv::KeyBundle;
    type PublicKey = bfv::PublicKey;
    type RelinKey = bfv::RelinKey;
    type GaloisKeys = bfv::GaloisKeys;

    const SCHEME: SchemeType = SchemeType::Bfv;
    /// Noise-budget bits below which a session refreshes.
    const HEALTH_FLOOR: f64 = 8.0;

    fn context(params: &HeParams) -> Result<BfvContext, HeError> {
        BfvContext::new(params)
    }

    // choco-lint: secret
    fn keygen(ctx: &BfvContext, rng: &mut Blake3Rng) -> bfv::KeyBundle {
        ctx.keygen(rng)
    }

    fn public_key(keys: &bfv::KeyBundle) -> &bfv::PublicKey {
        keys.public_key()
    }

    // choco-lint: secret (public: ctx)
    fn relin_key(
        ctx: &BfvContext,
        keys: &bfv::KeyBundle,
        rng: &mut Blake3Rng,
    ) -> Result<bfv::RelinKey, HeError> {
        ctx.relin_key(keys.secret_key(), rng)
    }

    // choco-lint: secret (public: ctx, steps)
    fn galois_keys(
        ctx: &BfvContext,
        keys: &bfv::KeyBundle,
        steps: &[i64],
        rng: &mut Blake3Rng,
    ) -> Result<bfv::GaloisKeys, HeError> {
        ctx.galois_keys(keys.secret_key(), steps, rng)
    }

    // choco-lint: secret (public: ctx, values)
    fn encrypt(
        ctx: &BfvContext,
        keys: &bfv::KeyBundle,
        values: &[u64],
        rng: &mut Blake3Rng,
    ) -> Result<bfv::Ciphertext, HeError> {
        let pt = ctx.batch_encoder()?.encode(values)?;
        Ok(ctx.encryptor(keys.public_key()).encrypt(&pt, rng))
    }

    // choco-lint: secret (public: ctx, ct)
    fn decrypt(
        ctx: &BfvContext,
        keys: &bfv::KeyBundle,
        ct: &bfv::Ciphertext,
    ) -> Result<Vec<u64>, HeError> {
        let pt = ctx.decryptor(keys.secret_key()).decrypt(ct);
        ctx.batch_encoder()?.decode(&pt)
    }

    // choco-lint: secret (public: ctx, ct)
    fn health(ctx: &BfvContext, keys: &bfv::KeyBundle, ct: &bfv::Ciphertext) -> f64 {
        ctx.decryptor(keys.secret_key()).invariant_noise_budget(ct)
    }

    fn slot_width(ctx: &BfvContext) -> usize {
        ctx.degree() / 2
    }

    fn ct_to_wire(ct: &bfv::Ciphertext) -> Vec<u8> {
        serialize::ciphertext_to_bytes(ct)
    }

    fn ct_from_wire(bytes: &[u8]) -> Result<bfv::Ciphertext, HeError> {
        serialize::ciphertext_from_bytes(bytes)
    }

    fn ct_bytes(ct: &bfv::Ciphertext) -> usize {
        ct.byte_size()
    }

    fn public_key_bytes(pk: &bfv::PublicKey) -> usize {
        pk.byte_size()
    }

    fn relin_key_bytes(rk: &bfv::RelinKey) -> usize {
        rk.size_bytes()
    }

    fn galois_keys_bytes(gk: &bfv::GaloisKeys) -> usize {
        gk.size_bytes()
    }

    fn add(
        ctx: &BfvContext,
        a: &bfv::Ciphertext,
        b: &bfv::Ciphertext,
    ) -> Result<bfv::Ciphertext, HeError> {
        ctx.evaluator().add(a, b)
    }

    fn sub(
        ctx: &BfvContext,
        a: &bfv::Ciphertext,
        b: &bfv::Ciphertext,
    ) -> Result<bfv::Ciphertext, HeError> {
        ctx.evaluator().sub(a, b)
    }

    fn add_plain(
        ctx: &BfvContext,
        ct: &bfv::Ciphertext,
        values: &[u64],
    ) -> Result<bfv::Ciphertext, HeError> {
        let pt = ctx.batch_encoder()?.encode(values)?;
        Ok(ctx.evaluator().add_plain(ct, &pt))
    }

    fn mul_plain(
        ctx: &BfvContext,
        ct: &bfv::Ciphertext,
        values: &[u64],
    ) -> Result<bfv::Ciphertext, HeError> {
        let pt = ctx.batch_encoder()?.encode(values)?;
        Ok(ctx.evaluator().multiply_plain(ct, &pt))
    }

    fn rotate(
        ctx: &BfvContext,
        ct: &bfv::Ciphertext,
        step: i64,
        gk: &bfv::GaloisKeys,
    ) -> Result<bfv::Ciphertext, HeError> {
        ctx.evaluator().rotate_rows(ct, step, gk)
    }

    fn dot_diagonals(
        ctx: &BfvContext,
        ct: &bfv::Ciphertext,
        diagonals: &[(i64, Vec<u64>)],
        gk: &bfv::GaloisKeys,
    ) -> Result<bfv::Ciphertext, HeError> {
        let encoder = ctx.batch_encoder()?;
        let pairs: Vec<(i64, bfv::Plaintext)> = diagonals
            .iter()
            .map(|(shift, diag)| Ok((*shift, encoder.encode(diag)?)))
            .collect::<Result<_, HeError>>()?;
        ctx.evaluator().dot_rotations_plain(ct, &pairs, gk)
    }

    fn quantize(ctx: &BfvContext, values: &[f64], scale_bits: u32, depth: u32) -> Vec<u64> {
        let t = ctx.plain_modulus();
        let factor = ((1u64 << scale_bits) as f64).powi(depth as i32);
        values
            .iter()
            .map(|&v| ((v * factor).round() as u64) % t)
            .collect()
    }

    fn dequantize(_ctx: &BfvContext, values: &[u64], scale_bits: u32, depth: u32) -> Vec<f64> {
        let factor = ((1u64 << scale_bits) as f64).powi(depth as i32);
        values.iter().map(|&v| v as f64 / factor).collect()
    }

    // choco-lint: secret
    fn keys_to_wire(keys: &bfv::KeyBundle) -> Vec<u8> {
        serialize::bfv_keys_to_bytes(keys)
    }

    // choco-lint: secret
    fn keys_from_wire(bytes: &[u8]) -> Result<bfv::KeyBundle, HeError> {
        serialize::bfv_keys_from_bytes(bytes)
    }

    fn relin_to_wire(rk: &bfv::RelinKey) -> Vec<u8> {
        serialize::bfv_relin_to_bytes(rk)
    }

    fn relin_from_wire(bytes: &[u8]) -> Result<bfv::RelinKey, HeError> {
        serialize::bfv_relin_from_bytes(bytes)
    }

    fn galois_to_wire(gk: &bfv::GaloisKeys) -> Vec<u8> {
        serialize::bfv_galois_to_bytes(gk)
    }

    fn galois_from_wire(bytes: &[u8]) -> Result<bfv::GaloisKeys, HeError> {
        serialize::bfv_galois_from_bytes(bytes)
    }

    fn value_matches(got: u64, want: u64, _tol: f64) -> bool {
        got == want
    }
}

impl HeScheme for Ckks {
    type Value = f64;
    type Context = CkksContext;
    type Ciphertext = ckks::CkksCiphertext;
    type KeyBundle = ckks::CkksKeyBundle;
    type PublicKey = ckks::CkksPublicKey;
    type RelinKey = ckks::CkksRelinKey;
    type GaloisKeys = ckks::CkksGaloisKeys;

    const SCHEME: SchemeType = SchemeType::Ckks;
    /// Remaining levels below which a session refreshes.
    const HEALTH_FLOOR: f64 = 2.0;

    fn context(params: &HeParams) -> Result<CkksContext, HeError> {
        CkksContext::new(params)
    }

    // choco-lint: secret
    fn keygen(ctx: &CkksContext, rng: &mut Blake3Rng) -> ckks::CkksKeyBundle {
        ctx.keygen(rng)
    }

    fn public_key(keys: &ckks::CkksKeyBundle) -> &ckks::CkksPublicKey {
        keys.public_key()
    }

    // choco-lint: secret (public: ctx)
    fn relin_key(
        ctx: &CkksContext,
        keys: &ckks::CkksKeyBundle,
        rng: &mut Blake3Rng,
    ) -> Result<ckks::CkksRelinKey, HeError> {
        Ok(ctx.relin_key(keys.secret_key(), rng))
    }

    // choco-lint: secret (public: ctx, steps)
    fn galois_keys(
        ctx: &CkksContext,
        keys: &ckks::CkksKeyBundle,
        steps: &[i64],
        rng: &mut Blake3Rng,
    ) -> Result<ckks::CkksGaloisKeys, HeError> {
        Ok(ctx.galois_keys(keys.secret_key(), steps, rng))
    }

    // choco-lint: secret (public: ctx, values)
    fn encrypt(
        ctx: &CkksContext,
        keys: &ckks::CkksKeyBundle,
        values: &[f64],
        rng: &mut Blake3Rng,
    ) -> Result<ckks::CkksCiphertext, HeError> {
        let pt = ctx.encode(values)?;
        ctx.encrypt(&pt, keys.public_key(), rng)
    }

    // choco-lint: secret (public: ctx, ct)
    fn decrypt(
        ctx: &CkksContext,
        keys: &ckks::CkksKeyBundle,
        ct: &ckks::CkksCiphertext,
    ) -> Result<Vec<f64>, HeError> {
        let pt = ctx.decrypt(ct, keys.secret_key());
        Ok(ctx.decode(&pt))
    }

    fn health(_ctx: &CkksContext, _keys: &ckks::CkksKeyBundle, ct: &ckks::CkksCiphertext) -> f64 {
        ct.level() as f64
    }

    fn slot_width(ctx: &CkksContext) -> usize {
        ctx.slot_count()
    }

    fn ct_to_wire(ct: &ckks::CkksCiphertext) -> Vec<u8> {
        serialize::ckks_ciphertext_to_bytes(ct)
    }

    fn ct_from_wire(bytes: &[u8]) -> Result<ckks::CkksCiphertext, HeError> {
        serialize::ckks_ciphertext_from_bytes(bytes)
    }

    fn ct_bytes(ct: &ckks::CkksCiphertext) -> usize {
        ct.byte_size()
    }

    fn public_key_bytes(pk: &ckks::CkksPublicKey) -> usize {
        pk.byte_size()
    }

    fn relin_key_bytes(rk: &ckks::CkksRelinKey) -> usize {
        rk.size_bytes()
    }

    fn galois_keys_bytes(gk: &ckks::CkksGaloisKeys) -> usize {
        gk.size_bytes()
    }

    fn add(
        ctx: &CkksContext,
        a: &ckks::CkksCiphertext,
        b: &ckks::CkksCiphertext,
    ) -> Result<ckks::CkksCiphertext, HeError> {
        ctx.add(a, b)
    }

    fn sub(
        ctx: &CkksContext,
        a: &ckks::CkksCiphertext,
        b: &ckks::CkksCiphertext,
    ) -> Result<ckks::CkksCiphertext, HeError> {
        ctx.sub(a, b)
    }

    fn add_plain(
        ctx: &CkksContext,
        ct: &ckks::CkksCiphertext,
        values: &[f64],
    ) -> Result<ckks::CkksCiphertext, HeError> {
        let pt = ctx.encode_at(values, ct.level(), ct.scale())?;
        ctx.add_plain(ct, &pt)
    }

    fn mul_plain(
        ctx: &CkksContext,
        ct: &ckks::CkksCiphertext,
        values: &[f64],
    ) -> Result<ckks::CkksCiphertext, HeError> {
        let pt = ctx.encode_at(values, ct.level(), ctx.default_scale())?;
        ctx.rescale(&ctx.multiply_plain(ct, &pt)?)
    }

    fn rotate(
        ctx: &CkksContext,
        ct: &ckks::CkksCiphertext,
        step: i64,
        gk: &ckks::CkksGaloisKeys,
    ) -> Result<ckks::CkksCiphertext, HeError> {
        ctx.rotate(ct, step, gk)
    }

    fn dot_diagonals(
        ctx: &CkksContext,
        ct: &ckks::CkksCiphertext,
        diagonals: &[(i64, Vec<f64>)],
        gk: &ckks::CkksGaloisKeys,
    ) -> Result<ckks::CkksCiphertext, HeError> {
        if diagonals.is_empty() {
            return Err(HeError::Mismatch("dot_diagonals needs terms".into()));
        }
        // One hoisted decomposition covers every nonzero shift.
        let steps: Vec<i64> = diagonals
            .iter()
            .map(|(s, _)| *s)
            .filter(|&s| s != 0)
            .collect();
        let rotated = ctx.rotate_many(ct, &steps, gk)?;
        let mut by_step = rotated.into_iter();
        let mut acc: Option<ckks::CkksCiphertext> = None;
        for (shift, diag) in diagonals {
            let term_ct = if *shift == 0 {
                ct.clone()
            } else {
                by_step
                    .next()
                    .ok_or_else(|| HeError::Mismatch("rotation count mismatch".into()))?
            };
            let pt = ctx.encode_at(diag, term_ct.level(), ctx.default_scale())?;
            let term = ctx.multiply_plain(&term_ct, &pt)?;
            acc = Some(match acc {
                None => term,
                Some(a) => ctx.add(&a, &term)?,
            });
        }
        // Checked non-empty above; one rescale for the whole dot.
        let acc = acc.ok_or_else(|| HeError::Mismatch("dot_diagonals needs terms".into()))?;
        ctx.rescale(&acc)
    }

    fn quantize(_ctx: &CkksContext, values: &[f64], _scale_bits: u32, _depth: u32) -> Vec<f64> {
        values.to_vec()
    }

    fn dequantize(_ctx: &CkksContext, values: &[f64], _scale_bits: u32, _depth: u32) -> Vec<f64> {
        values.to_vec()
    }

    // choco-lint: secret
    fn keys_to_wire(keys: &ckks::CkksKeyBundle) -> Vec<u8> {
        serialize::ckks_keys_to_bytes(keys)
    }

    // choco-lint: secret
    fn keys_from_wire(bytes: &[u8]) -> Result<ckks::CkksKeyBundle, HeError> {
        serialize::ckks_keys_from_bytes(bytes)
    }

    fn relin_to_wire(rk: &ckks::CkksRelinKey) -> Vec<u8> {
        serialize::ckks_relin_to_bytes(rk)
    }

    fn relin_from_wire(bytes: &[u8]) -> Result<ckks::CkksRelinKey, HeError> {
        serialize::ckks_relin_from_bytes(bytes)
    }

    fn galois_to_wire(gk: &ckks::CkksGaloisKeys) -> Vec<u8> {
        serialize::ckks_galois_to_bytes(gk)
    }

    fn galois_from_wire(bytes: &[u8]) -> Result<ckks::CkksGaloisKeys, HeError> {
        serialize::ckks_galois_from_bytes(bytes)
    }

    fn value_matches(got: f64, want: f64, tol: f64) -> bool {
        (got - want).abs() <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Blake3Rng {
        Blake3Rng::from_seed(b"scheme tests")
    }

    /// The generic boundary round-trips for any scheme; exactness is
    /// asserted by each monomorphization below.
    fn roundtrip<S: HeScheme>(params: &HeParams, values: &[S::Value]) -> Vec<S::Value> {
        let ctx = S::context(params).unwrap();
        let mut rng = rng();
        let keys = S::keygen(&ctx, &mut rng);
        let ct = S::encrypt(&ctx, &keys, values, &mut rng).unwrap();
        assert!(S::ct_bytes(&ct) > 0);
        let wire = S::ct_to_wire(&ct);
        let back = S::ct_from_wire(&wire).unwrap();
        S::decrypt(&ctx, &keys, &back).unwrap()
    }

    #[test]
    fn bfv_generic_roundtrip_is_exact() {
        let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 17).unwrap();
        let values: Vec<u64> = (0..64).collect();
        let out = roundtrip::<Bfv>(&params, &values);
        assert_eq!(&out[..64], &values[..]);
    }

    #[test]
    fn ckks_generic_roundtrip_is_close() {
        let params = HeParams::ckks_insecure(1024, &[45, 45, 46], 38).unwrap();
        let values: Vec<f64> = (0..64).map(|i| i as f64 / 8.0).collect();
        let out = roundtrip::<Ckks>(&params, &values);
        for (g, w) in out.iter().zip(&values) {
            assert!((g - w).abs() < 1e-2, "{g} vs {w}");
        }
    }

    #[test]
    fn generic_dot_diagonals_matches_per_scheme_reference() {
        // BFV: exact agreement with the rotate/multiply/add chain.
        let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 20).unwrap();
        let ctx = Bfv::context(&params).unwrap();
        let mut r = rng();
        let keys = Bfv::keygen(&ctx, &mut r);
        let gks = Bfv::galois_keys(&ctx, &keys, &[1, 2], &mut r).unwrap();
        let width = Bfv::slot_width(&ctx);
        let x: Vec<u64> = (0..width as u64).map(|i| i % 31).collect();
        let ct = Bfv::encrypt(&ctx, &keys, &x, &mut r).unwrap();
        let diags: Vec<(i64, Vec<u64>)> = vec![
            (0, vec![2u64; width]),
            (1, vec![3u64; width]),
            (2, vec![5u64; width]),
        ];
        let got = Bfv::dot_diagonals(&ctx, &ct, &diags, &gks).unwrap();
        let slots = Bfv::decrypt(&ctx, &keys, &got).unwrap();
        let t = ctx.plain_modulus();
        for i in 0..8 {
            let want = (2 * x[i] + 3 * x[(i + 1) % width] + 5 * x[(i + 2) % width]) % t;
            assert_eq!(slots[i], want, "slot {i}");
        }

        // CKKS: close agreement with the plain dot.
        let params = HeParams::ckks_insecure(1024, &[45, 45, 45, 46], 38).unwrap();
        let ctx = Ckks::context(&params).unwrap();
        let mut r = rng();
        let keys = Ckks::keygen(&ctx, &mut r);
        let gks = Ckks::galois_keys(&ctx, &keys, &[1, 2], &mut r).unwrap();
        let width = Ckks::slot_width(&ctx);
        let x: Vec<f64> = (0..width).map(|i| ((i % 13) as f64) / 13.0).collect();
        let ct = Ckks::encrypt(&ctx, &keys, &x, &mut r).unwrap();
        let diags: Vec<(i64, Vec<f64>)> = vec![
            (0, vec![0.5; width]),
            (1, vec![-1.0; width]),
            (2, vec![2.0; width]),
        ];
        let got = Ckks::dot_diagonals(&ctx, &ct, &diags, &gks).unwrap();
        let out = Ckks::decrypt(&ctx, &keys, &got).unwrap();
        for i in 0..8 {
            let want = 0.5 * x[i] - x[(i + 1) % width] + 2.0 * x[(i + 2) % width];
            assert!(
                (out[i] - want).abs() < 1e-2,
                "slot {i}: {} vs {want}",
                out[i]
            );
        }
    }

    #[test]
    fn quantize_hooks_invert_each_other() {
        let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 20).unwrap();
        let ctx = Bfv::context(&params).unwrap();
        let values = [0.25f64, 0.5, 0.125];
        let q = Bfv::quantize(&ctx, &values, 8, 1);
        assert_eq!(q, vec![64, 128, 32]);
        let back = Bfv::dequantize(&ctx, &q, 8, 1);
        for (b, v) in back.iter().zip(&values) {
            assert!((b - v).abs() < 1e-9);
        }
        // Depth compounds the scale.
        let q2 = Bfv::quantize(&ctx, &[0.5], 4, 2);
        assert_eq!(q2, vec![128]); // 0.5 · 2^(4·2)

        let cparams = HeParams::ckks_insecure(1024, &[45, 45, 46], 38).unwrap();
        let cctx = Ckks::context(&cparams).unwrap();
        assert_eq!(Ckks::quantize(&cctx, &values, 8, 3), values.to_vec());
        assert_eq!(Ckks::dequantize(&cctx, &values, 8, 3), values.to_vec());
    }

    #[test]
    fn health_probe_reports_scheme_native_headroom() {
        let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 20).unwrap();
        let ctx = Bfv::context(&params).unwrap();
        let mut r = rng();
        let keys = Bfv::keygen(&ctx, &mut r);
        let ct = Bfv::encrypt(&ctx, &keys, &[1; 64], &mut r).unwrap();
        assert!(Bfv::health(&ctx, &keys, &ct) > Bfv::HEALTH_FLOOR);

        let cparams = HeParams::ckks_insecure(1024, &[45, 45, 45, 46], 38).unwrap();
        let cctx = Ckks::context(&cparams).unwrap();
        let mut r = rng();
        let ckeys = Ckks::keygen(&cctx, &mut r);
        let cct = Ckks::encrypt(&cctx, &ckeys, &[1.0; 64], &mut r).unwrap();
        assert_eq!(Ckks::health(&cctx, &ckeys, &cct), cctx.top_level() as f64);
        let dropped = Ckks::mul_plain(&cctx, &cct, &vec![1.0; 64]).unwrap();
        assert_eq!(
            Ckks::health(&cctx, &ckeys, &dropped),
            (cctx.top_level() - 1) as f64
        );
    }
}
