//! Error types for the HE layer.

use choco_math::ntt::NttError;
use choco_math::rns::RnsError;

/// Errors surfaced by HE parameter validation and scheme operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeError {
    /// Parameters were structurally invalid (degree, moduli, plain modulus).
    InvalidParameters(String),
    /// The requested security level is not met by the parameters.
    InsecureParameters {
        /// Ring degree.
        n: usize,
        /// Total coefficient-modulus bits requested.
        total_bits: u32,
        /// Maximum bits allowed at 128-bit security for this degree.
        max_bits: u32,
    },
    /// Batching was requested but the plain modulus does not support it.
    BatchingUnsupported(u64),
    /// The operation needs a key-switching (special) prime but the parameter
    /// set has only one prime.
    NoSpecialPrime,
    /// Input vector too long for the available slots.
    TooManyValues {
        /// Provided element count.
        got: usize,
        /// Slot capacity.
        capacity: usize,
    },
    /// Operands belong to different contexts or have mismatched shapes.
    Mismatch(String),
    /// A Galois key for the requested rotation is missing.
    MissingGaloisKey(u64),
    /// Ciphertext noise exceeded the budget; decryption would be garbage.
    NoiseBudgetExhausted,
    /// A ciphertext had an unexpected size (e.g. degree-3 without relin).
    InvalidCiphertext(String),
    /// Serialized key material (key bundle, relin key, Galois keys) was
    /// malformed: bad magic, truncated payload, or implausible shape.
    InvalidKeyMaterial(String),
}

impl std::fmt::Display for HeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeError::InvalidParameters(m) => write!(f, "invalid parameters: {m}"),
            HeError::InsecureParameters {
                n,
                total_bits,
                max_bits,
            } => write!(
                f,
                "coefficient modulus of {total_bits} bits exceeds the {max_bits}-bit limit for \
                 128-bit security at degree {n}"
            ),
            HeError::BatchingUnsupported(t) => {
                write!(f, "plain modulus {t} does not support batching")
            }
            HeError::NoSpecialPrime => {
                write!(
                    f,
                    "operation requires a key-switching prime but none is available"
                )
            }
            HeError::TooManyValues { got, capacity } => {
                write!(f, "{got} values exceed the {capacity} available slots")
            }
            HeError::Mismatch(m) => write!(f, "operand mismatch: {m}"),
            HeError::MissingGaloisKey(e) => write!(f, "no galois key for element {e}"),
            HeError::NoiseBudgetExhausted => write!(f, "ciphertext noise budget exhausted"),
            HeError::InvalidCiphertext(m) => write!(f, "invalid ciphertext: {m}"),
            HeError::InvalidKeyMaterial(m) => write!(f, "invalid key material: {m}"),
        }
    }
}

impl std::error::Error for HeError {}

impl From<NttError> for HeError {
    fn from(e: NttError) -> Self {
        HeError::InvalidParameters(e.to_string())
    }
}

impl From<RnsError> for HeError {
    fn from(e: RnsError) -> Self {
        HeError::InvalidParameters(e.to_string())
    }
}
