//! Capacity-bounded caches for server-side HE artifacts.
//!
//! Steady-state offload traffic re-evaluates the same compiled programs
//! against the same plaintext models over and over; the expensive setup
//! work — compiling a program, encoding a constant vector into the
//! NTT/evaluation domain at a specific (level, scale) site — is identical
//! across requests and across tenants that share a parameter set. This
//! module provides the reusable building block: [`OperandCache`], a small
//! LRU map with explicit [`CacheCounters`] so callers can *prove* (in
//! tests and in live stats) that warm traffic does zero recompilation and
//! zero re-encoding.
//!
//! The cache is deliberately generic: `crates/serve` instantiates it once
//! per compiled program for encoded plaintext operands (keyed by constant
//! node and use site) and once globally for compiled programs (keyed by
//! params-hash ‖ program-hash). Values are handed out as clones; every
//! cached type here is cheap-to-clone or wrapped in `Arc` by the caller.

use std::collections::BTreeMap;

/// Hit/miss/eviction accounting for one cache instance.
///
/// `misses` counts exactly the builder invocations — for an operand cache
/// that is the number of real plaintext encodes, for a program cache the
/// number of real compiles — which is what the steady-state proofs assert
/// against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that ran the builder (cold entries).
    pub misses: u64,
    /// Entries inserted (equals `misses` for fallible builders that
    /// succeeded).
    pub insertions: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
}

impl CacheCounters {
    /// Merges another counter set into this one (for aggregated stats).
    pub fn absorb(&mut self, other: &CacheCounters) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
    }
}

/// A least-recently-used cache with explicit counters.
///
/// `capacity` of zero means unbounded (used for per-call scratch caches
/// where the working set is bounded by the program itself).
#[derive(Debug, Clone)]
pub struct OperandCache<K: Ord + Clone, V: Clone> {
    capacity: usize,
    map: BTreeMap<K, (u64, V)>,
    tick: u64,
    counters: CacheCounters,
}

impl<K: Ord + Clone, V: Clone> OperandCache<K, V> {
    /// An empty cache holding at most `capacity` entries (0 = unbounded).
    pub fn new(capacity: usize) -> Self {
        OperandCache {
            capacity,
            map: BTreeMap::new(),
            tick: 0,
            counters: CacheCounters::default(),
        }
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity bound (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Snapshot of the counters.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Looks `key` up; on a miss, runs `build`, caches a success, and
    /// evicts the least-recently-used entry if over capacity.
    ///
    /// # Errors
    ///
    /// Propagates the builder's error; failed builds are counted as misses
    /// but never cached.
    pub fn get_or_insert_with<E>(
        &mut self,
        key: &K,
        build: impl FnOnce() -> Result<V, E>,
    ) -> Result<V, E> {
        self.tick += 1;
        if let Some((stamp, v)) = self.map.get_mut(key) {
            *stamp = self.tick;
            self.counters.hits += 1;
            return Ok(v.clone());
        }
        self.counters.misses += 1;
        let v = build()?;
        self.counters.insertions += 1;
        self.map.insert(key.clone(), (self.tick, v.clone()));
        if self.capacity > 0 && self.map.len() > self.capacity {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                self.counters.evictions += 1;
            }
        }
        Ok(v)
    }

    /// Looks `key` up without inserting (no counter effect on miss paths
    /// that the caller handles itself).
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|(_, v)| v)
    }

    /// Iterates over the live values (stats aggregation over resident
    /// entries; evicted entries are gone).
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.map.values().map(|(_, v)| v)
    }

    /// Drops every entry; counters are preserved.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;

    fn get(c: &mut OperandCache<u32, String>, k: u32) -> String {
        let r: Result<String, Infallible> = c.get_or_insert_with(&k, || Ok(format!("v{k}")));
        match r {
            Ok(v) => v,
        }
    }

    #[test]
    fn cold_then_warm_counters() {
        let mut c = OperandCache::new(8);
        assert_eq!(get(&mut c, 1), "v1");
        assert_eq!(get(&mut c, 1), "v1");
        assert_eq!(get(&mut c, 2), "v2");
        let n = c.counters();
        assert_eq!(n.misses, 2);
        assert_eq!(n.hits, 1);
        assert_eq!(n.insertions, 2);
        assert_eq!(n.evictions, 0);
    }

    #[test]
    fn evicts_least_recently_used_at_capacity() {
        let mut c = OperandCache::new(2);
        get(&mut c, 1);
        get(&mut c, 2);
        get(&mut c, 1); // refresh 1 → 2 is now LRU
        get(&mut c, 3); // evicts 2
        assert_eq!(c.len(), 2);
        assert!(c.peek(&1).is_some());
        assert!(c.peek(&2).is_none());
        assert!(c.peek(&3).is_some());
        assert_eq!(c.counters().evictions, 1);
        // Re-fetching the evicted key is a fresh miss.
        get(&mut c, 2);
        assert_eq!(c.counters().misses, 4);
    }

    #[test]
    fn failed_builds_are_not_cached() {
        let mut c: OperandCache<u32, String> = OperandCache::new(4);
        let r: Result<String, &str> = c.get_or_insert_with(&7, || Err("boom"));
        assert!(r.is_err());
        assert_eq!(c.len(), 0);
        assert_eq!(c.counters().misses, 1);
        assert_eq!(c.counters().insertions, 0);
        // A later success caches normally.
        let r: Result<String, &str> = c.get_or_insert_with(&7, || Ok("ok".into()));
        assert_eq!(r.unwrap(), "ok");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn zero_capacity_is_unbounded() {
        let mut c = OperandCache::new(0);
        for k in 0..100 {
            get(&mut c, k);
        }
        assert_eq!(c.len(), 100);
        assert_eq!(c.counters().evictions, 0);
    }
}
