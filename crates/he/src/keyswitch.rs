//! RNS key switching with a reserved special prime (SEAL's hybrid method).
//!
//! Key switching re-encrypts a ciphertext component that is "keyed" to some
//! polynomial `s'` (a Galois image of the secret, or `s²` after a
//! multiplication) back to the secret key `s`. The RNS-decomposition +
//! special-prime construction keeps the added noise at a few bits — which is
//! exactly why the paper's rotations are cheap (Table 4: ~2 bits per
//! rotation) while masked permutations are not.
//!
//! For each data prime `q_j` the key holds a pair
//! `(b_j, a_j) = (−(a_j·s + e_j) + P·E_j·s',  a_j)` over the *full* modulus
//! `q·P`, where `E_j` is the CRT idempotent (`E_j ≡ 1 mod q_j`, `≡ 0` mod
//! every other data prime) and `P` is the special prime. Because the
//! idempotents behave identically under any prefix of the prime chain, one
//! key generated at the top level serves every CKKS level after rescaling.
//! Applying the key to an input `d` uses the plain residues `D_j = [d]_{q_j}`
//! as decomposition digits, accumulates `Σ_j D_j·(b_j, a_j)` over the active
//! primes plus `P`, and divides by `P` with rounding.

use crate::rnspoly::RnsPoly;
use choco_math::modops::{
    add_mod, center, inv_mod, mul_mod, pow_mod, reduce_signed, shoup_precompute,
};
use choco_math::ntt::apply_galois_ntt;
use choco_math::par;
use choco_math::pool::PolyPool;
use choco_math::rns::RnsBasis;
use choco_math::simd;
use choco_prng::Blake3Rng;

/// A key-switching key: one `(b_j, a_j)` pair per data prime, stored in NTT
/// form over the full basis (special prime last).
#[derive(Debug, Clone)]
pub struct KswitchKey {
    pairs: Vec<(RnsPoly, RnsPoly)>,
    full_prime_count: usize,
}

impl KswitchKey {
    /// Number of decomposition digits (= data prime count).
    pub fn digit_count(&self) -> usize {
        self.pairs.len()
    }

    /// Serialized size in bytes (`2 polys × k residues × N × 8` per digit).
    pub fn size_bytes(&self) -> usize {
        let n = self.pairs[0].0.degree();
        self.pairs.len() * 2 * self.full_prime_count * n * 8
    }

    /// The `(b_j, a_j)` digit pairs in NTT form (wire serialization).
    pub fn pairs(&self) -> &[(RnsPoly, RnsPoly)] {
        &self.pairs
    }

    /// Number of primes in the full basis the pairs are stored over.
    pub fn full_prime_count(&self) -> usize {
        self.full_prime_count
    }

    /// Reassembles a key from raw digit pairs (wire deserialization).
    ///
    /// Returns `None` when the shape is inconsistent: no digits, or a pair
    /// whose polynomials do not span `full_prime_count` residue rows.
    pub fn from_parts(pairs: Vec<(RnsPoly, RnsPoly)>, full_prime_count: usize) -> Option<Self> {
        if pairs.is_empty()
            || pairs.iter().any(|(b, a)| {
                b.row_count() != full_prime_count || a.row_count() != full_prime_count
            })
        {
            return None;
        }
        Some(KswitchKey {
            pairs,
            full_prime_count,
        })
    }
}

/// Generates a key-switching key taking `s'`-keyed components to `s`.
///
/// `s` and `s_prime` must be given over the full basis (all `k` primes,
/// special last); `data` is the prefix basis of the first `k − 1` primes.
// choco-lint: secret (public: full, data)
pub fn generate_ksk(
    s: &RnsPoly,
    s_prime: &RnsPoly,
    full: &RnsBasis,
    data: &RnsBasis,
    rng: &mut Blake3Rng,
) -> KswitchKey {
    let k = full.len();
    let d = data.len();
    assert!(
        k == d + 1,
        "full basis must be data basis plus special prime"
    );
    // choco-lint: allow(SEC001) row_count is public geometry, not key material
    assert_eq!(s.row_count(), k, "secret key must span the full basis");
    // choco-lint: allow(SEC001) row_count is public geometry, not key material
    assert_eq!(
        s_prime.row_count(),
        k,
        "target key must span the full basis"
    );
    let p_special = full.primes()[k - 1];

    let mut pairs = Vec::with_capacity(d);
    for j in 0..d {
        let a = RnsPoly::sample_uniform(rng, full);
        let e = RnsPoly::sample_error(rng, full);
        // b = -(a*s + e)
        let mut b = a.mul_poly(s, full);
        b.add_assign_poly(&e, full);
        b.neg_assign_poly(full);
        // Add P·E_j·s', which is nonzero only in residue row j where it
        // equals (P mod q_j)·s'.
        let qj = data.primes()[j];
        let w = p_special % qj;
        let sp_row = s_prime.row(j).to_vec();
        let row = b.row_mut(j);
        for (x, &sv) in row.iter_mut().zip(&sp_row) {
            *x = add_mod(*x, mul_mod(w, sv, qj), qj);
        }
        // Store in NTT form for fast application.
        let mut b_ntt = b;
        let mut a_ntt = a;
        b_ntt.ntt_forward(full);
        a_ntt.ntt_forward(full);
        pairs.push((b_ntt, a_ntt));
    }
    KswitchKey {
        pairs,
        full_prime_count: k,
    }
}

/// Applies a key-switching key to input component `d_poly` (given modulo the
/// level basis, a prefix of the data primes), returning `(delta_c0, c1_new)`
/// modulo the level basis such that `delta_c0 + c1_new·s ≈ d_poly·s'`.
///
/// `ks_basis` must contain the level's data primes followed by the special
/// prime (i.e. `level + 1` primes), and `level_basis` its prefix of data
/// primes. Both are precomputed by the scheme context.
pub fn apply_ksk(
    d_poly: &RnsPoly,
    ksk: &KswitchKey,
    ks_basis: &RnsBasis,
    level_basis: &RnsBasis,
) -> (RnsPoly, RnsPoly) {
    let hoisted = hoist_decompose(d_poly, ks_basis, level_basis);
    apply_ksk_hoisted(&hoisted, None, ksk, ks_basis, level_basis)
}

/// The NTT-form decomposition digits of a key-switch input, computed once
/// and reusable across many Galois elements ("hoisting").
///
/// Entry `j` holds `NTT_{q_i}([d]_{q_j} mod q_i)` for every prime `q_i` of
/// the ks basis. Because a Galois automorphism acts on NTT-domain data as a
/// pure index permutation ([`choco_math::ntt::galois_ntt_permutation`]),
/// rotating by `r` different steps costs one decomposition + `r` cheap
/// permute-and-accumulate passes instead of `r` full decompositions.
#[derive(Debug, Clone)]
pub struct HoistedDigits {
    digits: Vec<RnsPoly>,
    level: usize,
}

impl HoistedDigits {
    /// Number of data primes at the level this decomposition was taken.
    pub fn level(&self) -> usize {
        self.level
    }
}

/// Decomposes `d_poly` into NTT-form digits over `ks_basis` (the expensive
/// half of key switching: `level · (level+1)` modular reductions + forward
/// NTTs). The result feeds [`apply_ksk_hoisted`] any number of times.
pub fn hoist_decompose(
    d_poly: &RnsPoly,
    ks_basis: &RnsBasis,
    level_basis: &RnsBasis,
) -> HoistedDigits {
    let level = level_basis.len();
    assert_eq!(
        d_poly.row_count(),
        level,
        "input must be over the level basis"
    );
    assert_eq!(
        ks_basis.len(),
        level + 1,
        "ks basis must add the special prime"
    );
    let digits = par::par_map_range(level, |j| {
        // Digit D_j = [d]_{q_j}, interpreted as an integer polynomial and
        // re-reduced into every ks prime.
        let digit = d_poly.row(j);
        let rows = (0..=level)
            .map(|i| {
                let qi = ks_basis.primes()[i];
                let mut dmod = PolyPool::take_scratch(digit.len());
                for (x, &v) in dmod.iter_mut().zip(digit) {
                    *x = v % qi;
                }
                ks_basis.ntt_tables()[i].forward(&mut dmod);
                dmod
            })
            .collect();
        RnsPoly::from_rows(rows)
    });
    HoistedDigits { digits, level }
}

/// Applies a key-switching key to pre-decomposed digits, optionally
/// permuting each digit by a Galois NTT permutation first (`perm = None`
/// reproduces [`apply_ksk`] bit-for-bit).
///
/// With `Some(perm)` for the automorphism `x → x^e`, the permuted digits
/// are the RNS residues of the *signed* Galois image of each digit (sign
/// flips act as negation modulo every prime consistently), so the result is
/// a valid key-switch of the rotated input with the same noise bound as the
/// naive decompose-after-rotate path — the digit magnitudes are unchanged.
pub fn apply_ksk_hoisted(
    hoisted: &HoistedDigits,
    perm: Option<&[usize]>,
    ksk: &KswitchKey,
    ks_basis: &RnsBasis,
    level_basis: &RnsBasis,
) -> (RnsPoly, RnsPoly) {
    let (mut acc0, mut acc1) = hoisted_accumulate(hoisted, perm, ksk, ks_basis);
    acc0.ntt_inverse(ks_basis);
    acc1.ntt_inverse(ks_basis);
    (
        mod_down(&acc0, ks_basis, level_basis),
        mod_down(&acc1, ks_basis, level_basis),
    )
}

/// Like [`apply_ksk_hoisted`], but keeps the switched pair in the NTT
/// domain over `level_basis` (exactly the forward transform of the
/// [`apply_ksk_hoisted`] output — [`mod_down_ntt`] commutes with the NTT).
/// The fast path for kernels that consume rotations inside further
/// evaluation-domain arithmetic: only the special-prime row pays an
/// inverse transform.
pub fn apply_ksk_hoisted_ntt(
    hoisted: &HoistedDigits,
    perm: Option<&[usize]>,
    ksk: &KswitchKey,
    ks_basis: &RnsBasis,
    level_basis: &RnsBasis,
) -> (RnsPoly, RnsPoly) {
    let (acc0, acc1) = hoisted_accumulate(hoisted, perm, ksk, ks_basis);
    (
        mod_down_ntt(&acc0, ks_basis, level_basis),
        mod_down_ntt(&acc1, ks_basis, level_basis),
    )
}

/// Shared digit-MAC core of the hoisted key-switch paths: accumulates
/// `Σ_j perm(D_j) · ksk_j` in the NTT domain over the full ks basis. The
/// result still carries the special-prime factor `P`; callers divide it
/// out with [`mod_down`] / [`mod_down_ntt`] — immediately, or (second
/// hoisting) after summing several switched terms, paying one rounding for
/// the whole sum.
pub(crate) fn hoisted_accumulate(
    hoisted: &HoistedDigits,
    perm: Option<&[usize]>,
    ksk: &KswitchKey,
    ks_basis: &RnsBasis,
) -> (RnsPoly, RnsPoly) {
    let level = hoisted.level;
    let n = ks_basis.degree();
    assert_eq!(
        ks_basis.len(),
        level + 1,
        "ks basis must add the special prime"
    );
    assert!(level <= ksk.pairs.len(), "level exceeds key digit count");
    let k_storage = ksk.full_prime_count;

    // Accumulate in NTT form, one (acc0, acc1) row pair per ks prime. Rows
    // are independent, so this is the parallel axis; within a row the digit
    // order matches the sequential implementation, keeping results
    // bit-identical at any thread count.
    let rows: Vec<(Vec<u64>, Vec<u64>)> = par::par_map_range(level + 1, |i| {
        let qi = ks_basis.primes()[i];
        let storage_row = if i < level { i } else { k_storage - 1 };
        // Products are < 2^122 (primes stay below 2^61), so 32 of them fit
        // in a u128 accumulator; reduce lazily instead of per term. The
        // modular sum is unique, so this is bit-identical to eager
        // reduction.
        // choco-lint: lazy-domain
        let mut acc0 = PolyPool::take_zeroed_u128(n);
        let mut acc1 = PolyPool::take_zeroed_u128(n);
        let mut scratch = PolyPool::take_scratch(n);
        for (j, digit) in hoisted.digits.iter().enumerate() {
            if j > 0 && j % 32 == 0 {
                for v in acc0.iter_mut().chain(acc1.iter_mut()) {
                    *v %= qi as u128;
                }
            }
            let d_row = digit.row(i);
            let d: &[u64] = match perm {
                Some(p) => {
                    apply_galois_ntt(d_row, p, &mut scratch);
                    &scratch
                }
                None => d_row,
            };
            let (b_ntt, a_ntt) = &ksk.pairs[j];
            let b_row = b_ntt.row(storage_row);
            let a_row = a_ntt.row(storage_row);
            for (idx, &dv) in d.iter().enumerate() {
                acc0[idx] += dv as u128 * b_row[idx] as u128;
                acc1[idx] += dv as u128 * a_row[idx] as u128;
            }
        }
        let reduce = |acc: Vec<u128>| -> Vec<u64> {
            let mut out = PolyPool::take_scratch(acc.len());
            for (x, &v) in out.iter_mut().zip(&acc) {
                *x = (v % qi as u128) as u64;
            }
            PolyPool::recycle_u128(acc);
            out
        };
        let out = (reduce(acc0), reduce(acc1));
        PolyPool::recycle(scratch);
        // choco-lint: end-lazy-domain
        out
    });
    let (rows0, rows1): (Vec<_>, Vec<_>) = rows.into_iter().unzip();
    (RnsPoly::from_rows(rows0), RnsPoly::from_rows(rows1))
}

/// Divides a polynomial over `ks_basis` (level primes + special prime last)
/// by the special prime `P` with rounding, producing a level-basis
/// polynomial: `out ≡ (x − [x]_P)·P^{-1} (mod q_i)`.
pub fn mod_down(x: &RnsPoly, ks_basis: &RnsBasis, level_basis: &RnsBasis) -> RnsPoly {
    let k = ks_basis.len();
    let n = ks_basis.degree();
    let p = ks_basis.primes()[k - 1];
    let xp = x.row(k - 1);
    let rows = par::par_map_range(level_basis.len(), |i| {
        let qi = level_basis.primes()[i];
        let inv_p = inv_mod(p % qi, qi);
        let inv_p_shoup = shoup_precompute(inv_p, qi);
        // Materialize the rounding correction as one delta row, then finish
        // with the vectorized subtract and Shoup-scale passes — the same
        // sub_mod/mul_mod_shoup per element as the fused scalar loop.
        let mut delta = PolyPool::take_scratch(n);
        for (d, &v) in delta.iter_mut().zip(xp) {
            *d = reduce_signed(center(v, p), qi);
        }
        let mut row = PolyPool::take_copy(x.row(i));
        simd::sub_mod_slices(&mut row, &delta, qi);
        simd::scalar_mul_shoup_slices(&mut row, inv_p, inv_p_shoup, qi);
        PolyPool::recycle(delta);
        row
    });
    RnsPoly::from_rows(rows)
}

/// NTT-domain [`mod_down`]: takes `x` in the evaluation domain over the ks
/// basis and returns the rounded scale-down still in the evaluation domain
/// over `level_basis`. Because the NTT is linear and the `P^{-1}` scaling
/// is pointwise, this equals `NTT(mod_down(iNTT(x)))` bit-for-bit while
/// paying only one inverse transform (the special-prime row, which feeds
/// the rounding correction) instead of one per row.
pub fn mod_down_ntt(x: &RnsPoly, ks_basis: &RnsBasis, level_basis: &RnsBasis) -> RnsPoly {
    let k = ks_basis.len();
    let p = ks_basis.primes()[k - 1];
    let mut xp = PolyPool::take_copy(x.row(k - 1));
    ks_basis.ntt_tables()[k - 1].inverse(&mut xp);
    let rows = par::par_map_range(level_basis.len(), |i| {
        let qi = level_basis.primes()[i];
        let inv_p = inv_mod(p % qi, qi);
        let inv_p_shoup = shoup_precompute(inv_p, qi);
        let mut delta = PolyPool::take_scratch(xp.len());
        for (d, &v) in delta.iter_mut().zip(&xp) {
            *d = reduce_signed(center(v, p), qi);
        }
        level_basis.ntt_tables()[i].forward(&mut delta);
        let mut row = PolyPool::take_copy(x.row(i));
        simd::sub_mod_slices(&mut row, &delta, qi);
        simd::scalar_mul_shoup_slices(&mut row, inv_p, inv_p_shoup, qi);
        PolyPool::recycle(delta);
        row
    });
    PolyPool::recycle(xp);
    RnsPoly::from_rows(rows)
}

/// The Galois element for a row rotation by `steps` slots: `3^steps mod 2N`
/// (negative steps wrap around the half-row order `N/2`).
///
/// # Panics
///
/// Panics if `|steps| >= n/2` or `steps == 0`.
pub fn galois_element_rows(steps: i64, n: usize) -> u64 {
    let half = (n / 2) as i64;
    assert!(
        steps != 0 && steps.abs() < half,
        "rotation step out of range"
    );
    let s = steps.rem_euclid(half) as u64;
    let m = 2 * n as u64;
    pow_mod(3, s, m)
}

/// The Galois element for the row-swap (column rotation): `2N − 1`.
pub fn galois_element_columns(n: usize) -> u64 {
    2 * n as u64 - 1
}

/// The Galois element for a CKKS slot rotation by `steps`: `5^steps mod 2N`.
///
/// # Panics
///
/// Panics if `|steps| >= n/2` or `steps == 0`.
pub fn galois_element_ckks(steps: i64, n: usize) -> u64 {
    let half = (n / 2) as i64;
    assert!(
        steps != 0 && steps.abs() < half,
        "rotation step out of range"
    );
    let s = steps.rem_euclid(half) as u64;
    let m = 2 * n as u64;
    pow_mod(5, s, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use choco_math::prime::generate_ntt_primes;

    fn bases() -> (RnsBasis, RnsBasis) {
        let n = 256;
        let mut primes = generate_ntt_primes(40, n, 2);
        primes.extend(generate_ntt_primes(41, n, 1)); // special prime last
        let full = RnsBasis::new(n, &primes).unwrap();
        let data = full.prefix(2);
        (full, data)
    }

    #[test]
    fn keyswitch_preserves_relation_with_small_noise() {
        let (full, data) = bases();
        let mut rng = Blake3Rng::from_seed(b"ks test");
        let s = RnsPoly::sample_ternary(&mut rng, &full);
        let s_prime = RnsPoly::sample_ternary(&mut rng, &full);
        let d_in = RnsPoly::sample_uniform(&mut rng, &data);

        let ksk = generate_ksk(&s, &s_prime, &full, &data, &mut rng);
        let (k0, k1) = apply_ksk(&d_in, &ksk, &full, &data);

        // k0 + k1·s should equal d·s' up to small noise (all mod data basis).
        let s_data = s.prefix(data.len());
        let sp_data = s_prime.prefix(data.len());
        let mut got = k1.mul_poly(&s_data, &data);
        got.add_assign_poly(&k0, &data);
        let expect = d_in.mul_poly(&sp_data, &data);
        let mut diff = got;
        diff.sub_assign_poly(&expect, &data);
        let noise_bits = diff.centered_norm_log2(&data);
        // Expected noise ~ k · q_j · σ √N / P ≈ 2^10; anything below 2^25
        // proves the relation holds (a wrong implementation is ~2^79).
        assert!(
            noise_bits < 25.0,
            "keyswitch noise too large: 2^{noise_bits:.1}"
        );
    }

    #[test]
    fn keyswitch_works_at_reduced_level() {
        // Drop to a single data prime (as CKKS does after rescaling) and
        // check the same key still switches correctly.
        let n = 256;
        let mut primes = generate_ntt_primes(40, n, 2);
        primes.extend(generate_ntt_primes(41, n, 1));
        let full = RnsBasis::new(n, &primes).unwrap();
        let data = full.prefix(2);
        let level1 = full.prefix(1);
        let ks1 = RnsBasis::new(n, &[primes[0], primes[2]]).unwrap();

        let mut rng = Blake3Rng::from_seed(b"ks level");
        let s = RnsPoly::sample_ternary(&mut rng, &full);
        let s_prime = RnsPoly::sample_ternary(&mut rng, &full);
        let ksk = generate_ksk(&s, &s_prime, &full, &data, &mut rng);

        let d_in = RnsPoly::sample_uniform(&mut rng, &level1);
        let (k0, k1) = apply_ksk(&d_in, &ksk, &ks1, &level1);
        let s_l = s.prefix(1);
        let sp_l = s_prime.prefix(1);
        let mut got = k1.mul_poly(&s_l, &level1);
        got.add_assign_poly(&k0, &level1);
        let expect = d_in.mul_poly(&sp_l, &level1);
        let mut diff = got;
        diff.sub_assign_poly(&expect, &level1);
        assert!(
            diff.centered_norm_log2(&level1) < 25.0,
            "level-1 keyswitch failed"
        );
    }

    #[test]
    fn mod_down_divides_exact_multiples() {
        let (full, data) = bases();
        let p = *full.primes().last().unwrap();
        // x = P * y for small y → mod_down(x) == y exactly.
        let n = full.degree();
        let y_vals: Vec<i64> = (0..n as i64).map(|i| i % 17 - 8).collect();
        let mut x = RnsPoly::from_signed(&y_vals, &full);
        let scalars: Vec<u64> = full.primes().iter().map(|&q| p % q).collect();
        x.scalar_mul_per_row(&scalars, &full);
        let out = mod_down(&x, &full, &data);
        let expect = RnsPoly::from_signed(&y_vals, &data);
        assert_eq!(out, expect);
    }

    #[test]
    fn mod_down_rounds_to_nearest() {
        let (full, data) = bases();
        let p = *full.primes().last().unwrap();
        // x = P*y + r with |r| < P/2 → rounds to y.
        let n = full.degree();
        let mut vals: Vec<i64> = vec![0; n];
        vals[0] = 5;
        let mut x = RnsPoly::from_signed(&vals, &full);
        let scalars: Vec<u64> = full.primes().iter().map(|&q| p % q).collect();
        x.scalar_mul_per_row(&scalars, &full);
        // add small residual 3 (well below P/2)
        let mut resid = vec![0i64; n];
        resid[0] = 3;
        x.add_assign_poly(&RnsPoly::from_signed(&resid, &full), &full);
        let out = mod_down(&x, &full, &data);
        let (mag, neg) = out.coeff_centered(0, &data);
        assert!(!neg);
        assert_eq!(mag.to_u64(), 5);
    }

    #[test]
    fn galois_elements_are_odd_and_in_range() {
        let n = 8192;
        for steps in [1i64, 2, 5, -1, -7, 4095] {
            let e = galois_element_rows(steps, n);
            assert_eq!(e % 2, 1);
            assert!(e < 2 * n as u64);
        }
        assert_eq!(galois_element_columns(n), 2 * n as u64 - 1);
    }

    #[test]
    fn galois_rows_inverse_steps_compose_to_identity() {
        let n = 1024;
        let e1 = galois_element_rows(3, n);
        let e2 = galois_element_rows(-3, n);
        assert_eq!((e1 as u128 * e2 as u128 % (2 * n as u128)) as u64, 1);
    }

    #[test]
    #[should_panic(expected = "rotation step out of range")]
    fn galois_rejects_zero_step() {
        galois_element_rows(0, 1024);
    }
}
