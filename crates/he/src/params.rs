//! HE parameter sets (Table 2 / Table 3 of the paper).
//!
//! A parameter set fixes the ring degree `N`, the RNS coefficient-modulus
//! chain, and (for BFV) the plaintext modulus `t`. The **last** prime in the
//! chain is the *special prime* used exclusively for key switching (SEAL's
//! convention); fresh ciphertexts carry `k − 1` data residues, which is why
//! the paper's `{58,58,59}` set at `N = 8192` produces 256 KiB ciphertexts
//! (`2 polys × 8192 coeffs × 2 residues × 8 bytes`).

use crate::error::HeError;
use choco_math::prime::generate_ntt_primes;

/// Which HE scheme a parameter set targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeType {
    /// Brakerski/Fan-Vercauteren: exact integers modulo `t`.
    Bfv,
    /// Cheon-Kim-Kim-Song: approximate fixed point.
    Ckks,
}

impl std::fmt::Display for SchemeType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemeType::Bfv => write!(f, "BFV"),
            SchemeType::Ckks => write!(f, "CKKS"),
        }
    }
}

/// Bytes per stored ciphertext coefficient (the paper's word size `w`).
pub const WORD_BYTES: usize = 8;

/// Maximum total coefficient-modulus bits for 128-bit security with ternary
/// secrets, per the HomomorphicEncryption.org standard (the table SEAL
/// enforces).
///
/// Returns `None` when the degree is below the standardized range.
pub fn max_coeff_bits_128(n: usize) -> Option<u32> {
    match n {
        1024 => Some(27),
        2048 => Some(54),
        4096 => Some(109),
        8192 => Some(218),
        16384 => Some(438),
        32768 => Some(881),
        _ => None,
    }
}

/// A validated HE parameter set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeParams {
    scheme: SchemeType,
    n: usize,
    prime_bits: Vec<u32>,
    primes: Vec<u64>,
    plain_modulus: u64,
    scale_bits: u32,
    security_checked: bool,
}

impl HeParams {
    /// Builds a BFV parameter set: ring degree `n`, one coefficient prime per
    /// entry of `coeff_bits` (the last is the key-switching prime), and a
    /// batching-friendly plaintext modulus of `plain_bits` bits.
    ///
    /// # Errors
    ///
    /// Fails when the shape is invalid or the set misses 128-bit security.
    pub fn bfv(n: usize, coeff_bits: &[u32], plain_bits: u32) -> Result<Self, HeError> {
        Self::build(SchemeType::Bfv, n, coeff_bits, plain_bits, 0, true)
    }

    /// Like [`HeParams::bfv`] but skips the security check. Intended for unit
    /// tests and microbenchmarks at small degrees; never use for real data.
    pub fn bfv_insecure(n: usize, coeff_bits: &[u32], plain_bits: u32) -> Result<Self, HeError> {
        Self::build(SchemeType::Bfv, n, coeff_bits, plain_bits, 0, false)
    }

    /// Builds a CKKS parameter set with the given rescaling prime chain and
    /// default encoder scale `2^scale_bits`.
    ///
    /// # Errors
    ///
    /// Fails when the shape is invalid or the set misses 128-bit security.
    pub fn ckks(n: usize, coeff_bits: &[u32], scale_bits: u32) -> Result<Self, HeError> {
        Self::build(SchemeType::Ckks, n, coeff_bits, 0, scale_bits, true)
    }

    /// Like [`HeParams::ckks`] but skips the security check (tests only).
    pub fn ckks_insecure(n: usize, coeff_bits: &[u32], scale_bits: u32) -> Result<Self, HeError> {
        Self::build(SchemeType::Ckks, n, coeff_bits, 0, scale_bits, false)
    }

    fn build(
        scheme: SchemeType,
        n: usize,
        coeff_bits: &[u32],
        plain_bits: u32,
        scale_bits: u32,
        check_security: bool,
    ) -> Result<Self, HeError> {
        if !n.is_power_of_two() || n < 16 {
            return Err(HeError::InvalidParameters(format!(
                "ring degree {n} must be a power of two >= 16"
            )));
        }
        if coeff_bits.is_empty() {
            return Err(HeError::InvalidParameters(
                "coefficient modulus chain is empty".into(),
            ));
        }
        if coeff_bits.iter().any(|&b| !(20..=61).contains(&b)) {
            return Err(HeError::InvalidParameters(
                "coefficient prime sizes must be 20..=61 bits".into(),
            ));
        }
        let total_bits: u32 = coeff_bits.iter().sum();
        if check_security {
            let max = max_coeff_bits_128(n).ok_or_else(|| {
                HeError::InvalidParameters(format!("degree {n} below the standardized range"))
            })?;
            if total_bits > max {
                return Err(HeError::InsecureParameters {
                    n,
                    total_bits,
                    max_bits: max,
                });
            }
        }
        // Generate one prime per requested size; same-size requests take
        // successive primes scanning downward, so all primes are distinct.
        let mut primes = Vec::with_capacity(coeff_bits.len());
        let mut by_size: std::collections::HashMap<u32, Vec<u64>> =
            std::collections::HashMap::new();
        for &bits in coeff_bits {
            let pool = by_size.entry(bits).or_default();
            let needed = coeff_bits.iter().filter(|&&b| b == bits).count();
            if pool.is_empty() {
                *pool = generate_ntt_primes(bits, n, needed);
            }
            primes.push(pool.remove(0));
        }
        let plain_modulus = match scheme {
            SchemeType::Bfv => {
                if !(13..=40).contains(&plain_bits) {
                    return Err(HeError::InvalidParameters(
                        "plain modulus must be 13..=40 bits".into(),
                    ));
                }
                choco_math::prime::try_generate_plain_modulus(plain_bits, n).ok_or_else(|| {
                    HeError::InvalidParameters(format!(
                        "no {plain_bits}-bit batching plain modulus exists for degree {n}"
                    ))
                })?
            }
            SchemeType::Ckks => 0,
        };
        if scheme == SchemeType::Ckks && !(20..=50).contains(&scale_bits) {
            return Err(HeError::InvalidParameters(
                "ckks scale must be 20..=50 bits".into(),
            ));
        }
        Ok(HeParams {
            scheme,
            n,
            prime_bits: coeff_bits.to_vec(),
            primes,
            plain_modulus,
            scale_bits,
            security_checked: check_security,
        })
    }

    /// Paper Table 3, set **A**: BFV, `N = 8192`, `{58,58,59}`, 23-bit `t`.
    pub fn set_a() -> Self {
        Self::bfv(8192, &[58, 58, 59], 23).expect("paper set A is valid")
    }

    /// Paper Table 3, set **B**: BFV, `N = 4096`, `{36,36,37}`, 18-bit `t`.
    pub fn set_b() -> Self {
        Self::bfv(4096, &[36, 36, 37], 18).expect("paper set B is valid")
    }

    /// Paper Table 3, set **C**: CKKS, `N = 8192`, `{60,60,60}`, scale 2^40.
    pub fn set_c() -> Self {
        Self::ckks(8192, &[60, 60, 60], 40).expect("paper set C is valid")
    }

    /// Scheme this set targets.
    pub fn scheme(&self) -> SchemeType {
        self.scheme
    }

    /// Ring degree `N`.
    pub fn degree(&self) -> usize {
        self.n
    }

    /// All coefficient primes, key-switching prime last.
    pub fn primes(&self) -> &[u64] {
        &self.primes
    }

    /// Bit sizes of the coefficient primes.
    pub fn prime_bits(&self) -> &[u32] {
        &self.prime_bits
    }

    /// Number of primes `k` (including the key-switching prime).
    pub fn prime_count(&self) -> usize {
        self.primes.len()
    }

    /// Number of data primes carried by a fresh ciphertext (`k − 1`, or 1
    /// when the chain has a single prime and key switching is unavailable).
    pub fn data_prime_count(&self) -> usize {
        self.primes.len().max(2) - 1
    }

    /// BFV plaintext modulus `t` (0 for CKKS).
    pub fn plain_modulus(&self) -> u64 {
        self.plain_modulus
    }

    /// Default CKKS encoder scale.
    pub fn scale(&self) -> f64 {
        (2f64).powi(self.scale_bits as i32)
    }

    /// CKKS scale exponent in bits (0 for BFV parameter sets). Together with
    /// [`HeParams::prime_bits`] and the plain modulus this is enough to
    /// rebuild the parameter set from a checkpoint.
    pub fn scale_bits(&self) -> u32 {
        self.scale_bits
    }

    /// Total bits of the full coefficient modulus (including the special
    /// prime) — the quantity the security standard bounds.
    pub fn total_coeff_bits(&self) -> u32 {
        self.prime_bits.iter().sum()
    }

    /// Whether this set passed the 128-bit security validation.
    pub fn is_security_checked(&self) -> bool {
        self.security_checked
    }

    /// Serialized size in bytes of a fresh (2-component) ciphertext:
    /// `2 · N · (k−1) · w`. Matches the paper's Table 3 "Size" column.
    pub fn ciphertext_bytes(&self) -> usize {
        2 * self.n * self.data_prime_count() * WORD_BYTES
    }

    /// Number of SIMD slots (`N` for BFV batching, `N/2` for CKKS).
    pub fn slot_count(&self) -> usize {
        match self.scheme {
            SchemeType::Bfv => self.n,
            SchemeType::Ckks => self.n / 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use choco_math::prime::is_prime;

    #[test]
    fn table3_set_a_matches_paper() {
        let p = HeParams::set_a();
        assert_eq!(p.degree(), 8192);
        assert_eq!(p.prime_count(), 3);
        assert_eq!(p.data_prime_count(), 2);
        assert_eq!(p.ciphertext_bytes(), 262_144);
        assert_eq!(64 - p.plain_modulus().leading_zeros(), 23);
    }

    #[test]
    fn table3_set_b_matches_paper() {
        let p = HeParams::set_b();
        assert_eq!(p.degree(), 4096);
        assert_eq!(p.ciphertext_bytes(), 131_072);
        assert_eq!(p.total_coeff_bits(), 109);
    }

    #[test]
    fn table3_set_c_matches_paper() {
        let p = HeParams::set_c();
        assert_eq!(p.scheme(), SchemeType::Ckks);
        assert_eq!(p.ciphertext_bytes(), 262_144);
        assert_eq!(p.slot_count(), 4096);
    }

    #[test]
    fn primes_are_distinct_ntt_friendly() {
        let p = HeParams::bfv(8192, &[58, 58, 59], 20).unwrap();
        let primes = p.primes();
        assert_eq!(primes.len(), 3);
        let mut sorted = primes.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "primes must be distinct");
        for &q in primes {
            assert!(is_prime(q));
            assert_eq!(q % (2 * 8192), 1);
        }
    }

    #[test]
    fn security_gate_rejects_oversized_modulus() {
        let err = HeParams::bfv(4096, &[40, 40, 40], 20).unwrap_err();
        assert!(matches!(err, HeError::InsecureParameters { .. }));
        // Same shape allowed when explicitly insecure.
        assert!(HeParams::bfv_insecure(4096, &[40, 40, 40], 20).is_ok());
    }

    #[test]
    fn rejects_malformed_shapes() {
        assert!(HeParams::bfv(100, &[30], 17).is_err()); // non power of two
        assert!(HeParams::bfv(4096, &[], 17).is_err()); // empty chain
        assert!(HeParams::bfv(4096, &[10], 17).is_err()); // prime too small
        assert!(HeParams::bfv(4096, &[36, 36], 5).is_err()); // t too small
        assert!(HeParams::ckks(8192, &[60, 60], 60).is_err()); // scale too big
    }

    #[test]
    fn plain_modulus_supports_batching() {
        let p = HeParams::bfv(4096, &[36, 36, 37], 18).unwrap();
        assert_eq!(p.plain_modulus() % (2 * 4096), 1);
    }

    #[test]
    fn single_prime_set_has_one_data_prime() {
        let p = HeParams::bfv_insecure(2048, &[54], 17).unwrap();
        assert_eq!(p.prime_count(), 1);
        assert_eq!(p.data_prime_count(), 1);
    }

    #[test]
    fn security_table_is_monotone() {
        let degrees = [1024usize, 2048, 4096, 8192, 16384, 32768];
        let mut last = 0;
        for d in degrees {
            let m = max_coeff_bits_128(d).unwrap();
            assert!(m > last);
            last = m;
        }
        assert!(max_coeff_bits_128(512).is_none());
    }
}
