//! The Cheon-Kim-Kim-Song (CKKS) scheme in RNS form.
//!
//! CKKS encodes a vector of `N/2` real (or complex) numbers into the
//! canonical embedding of `Z[x]/(x^N + 1)` at a fixed-point scale `Δ`, and
//! supports approximate addition, multiplication with rescaling, and slot
//! rotations. The paper uses CKKS (via the EVA compiler in the original
//! artifact) for PageRank, KNN, and K-Means; here the encoder and scheme are
//! implemented directly.
//!
//! Slot `j` of the encoder corresponds to the primitive root `ζ^{5^j}`, so
//! the Galois automorphism `x → x^{5^r}` rotates slots left by `r` — the
//! same generator convention as HEAAN/SEAL.

use crate::error::HeError;
use crate::keyswitch::{
    apply_ksk, apply_ksk_hoisted, galois_element_ckks, generate_ksk, hoist_decompose, KswitchKey,
};
use crate::params::{HeParams, SchemeType};
use crate::rnspoly::RnsPoly;
use choco_math::fft::{fft_forward, fft_inverse, Complex};
use choco_math::rns::RnsBasis;
use choco_prng::Blake3Rng;
use std::collections::HashMap;
use std::sync::Arc;

/// A CKKS plaintext: an integer polynomial at some level and scale.
#[derive(Debug, Clone)]
pub struct CkksPlaintext {
    poly: RnsPoly,
    level: usize,
    scale: f64,
}

impl CkksPlaintext {
    /// Level (number of active data primes).
    pub fn level(&self) -> usize {
        self.level
    }

    /// Fixed-point scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

/// A CKKS ciphertext at some level and scale.
#[derive(Debug, Clone)]
pub struct CkksCiphertext {
    parts: Vec<RnsPoly>,
    level: usize,
    scale: f64,
}

impl CkksCiphertext {
    /// Reassembles a ciphertext from raw parts (wire deserialization).
    pub fn from_parts(parts: Vec<RnsPoly>, level: usize, scale: f64) -> Self {
        assert!(!parts.is_empty(), "ciphertext needs at least one part");
        CkksCiphertext {
            parts,
            level,
            scale,
        }
    }

    /// Number of polynomial components.
    pub fn size(&self) -> usize {
        self.parts.len()
    }

    /// The `i`-th polynomial component.
    pub fn part(&self, i: usize) -> &RnsPoly {
        &self.parts[i]
    }

    /// Level (number of active data primes).
    pub fn level(&self) -> usize {
        self.level
    }

    /// Fixed-point scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Serialized size in bytes at the current level.
    pub fn byte_size(&self) -> usize {
        self.parts.len() * self.level * self.parts[0].degree() * 8
    }
}

/// CKKS secret/public key pair.
#[derive(Debug, Clone)]
pub struct CkksKeyBundle {
    secret: CkksSecretKey,
    public: CkksPublicKey,
}

impl CkksKeyBundle {
    /// The secret key.
    pub fn secret_key(&self) -> &CkksSecretKey {
        &self.secret
    }

    /// The public key.
    pub fn public_key(&self) -> &CkksPublicKey {
        &self.public
    }

    /// Reassembles a bundle from its keys (checkpoint deserialization).
    // choco-lint: secret
    pub fn from_keys(secret: CkksSecretKey, public: CkksPublicKey) -> Self {
        CkksKeyBundle { secret, public }
    }
}

/// CKKS secret key over the full basis.
#[derive(Debug, Clone)]
pub struct CkksSecretKey {
    full: RnsPoly,
}

impl CkksSecretKey {
    /// The key polynomial over the full basis (wire serialization).
    pub fn key_poly(&self) -> &RnsPoly {
        &self.full
    }

    /// Reassembles a secret key from its full-basis polynomial.
    // choco-lint: secret
    pub fn from_poly(full: RnsPoly) -> Self {
        CkksSecretKey { full }
    }
}

/// CKKS public key over the data basis.
#[derive(Debug, Clone)]
pub struct CkksPublicKey {
    p0: RnsPoly,
    p1: RnsPoly,
}

impl CkksPublicKey {
    /// Serialized size in bytes (two top-level polynomials).
    pub fn byte_size(&self) -> usize {
        2 * self.p0.row_count() * self.p0.degree() * 8
    }

    /// The `(P0, P1)` component polynomials (wire serialization).
    pub fn parts(&self) -> (&RnsPoly, &RnsPoly) {
        (&self.p0, &self.p1)
    }

    /// Reassembles a public key from raw components (deserialization).
    pub fn from_parts(p0: RnsPoly, p1: RnsPoly) -> Self {
        CkksPublicKey { p0, p1 }
    }
}

/// CKKS relinearization key.
#[derive(Debug, Clone)]
pub struct CkksRelinKey {
    ksk: KswitchKey,
}

impl CkksRelinKey {
    /// Serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.ksk.size_bytes()
    }

    /// The underlying key-switching key (wire serialization).
    pub fn ksk(&self) -> &KswitchKey {
        &self.ksk
    }

    /// Reassembles a relinearization key (deserialization).
    pub fn from_ksk(ksk: KswitchKey) -> Self {
        CkksRelinKey { ksk }
    }
}

/// CKKS Galois (rotation) keys.
#[derive(Debug, Clone)]
pub struct CkksGaloisKeys {
    keys: HashMap<u64, KswitchKey>,
}

impl CkksGaloisKeys {
    /// Serialized size in bytes of all keys.
    pub fn size_bytes(&self) -> usize {
        self.keys.values().map(|k| k.size_bytes()).sum()
    }

    /// The Galois elements covered by this key set, in sorted order.
    pub fn elements(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.keys.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// The key for one Galois element, if provisioned.
    pub fn key_for(&self, element: u64) -> Option<&KswitchKey> {
        self.keys.get(&element)
    }

    /// Reassembles a key set from per-element keys (deserialization).
    pub fn from_map(keys: HashMap<u64, KswitchKey>) -> Self {
        CkksGaloisKeys { keys }
    }
}

/// Precomputed context for a CKKS parameter set.
#[derive(Debug, Clone)]
pub struct CkksContext {
    params: HeParams,
    full: Arc<RnsBasis>,
    /// `level_bases[l-1]` = prefix of `l` data primes.
    level_bases: Vec<Arc<RnsBasis>>,
    /// `ks_bases[l-1]` = `l` data primes + special prime.
    ks_bases: Vec<Arc<RnsBasis>>,
    /// slot j ↔ FFT bin holding root exponent 5^j; and the conjugate bin.
    slot_bins: Vec<(usize, usize)>,
    /// ζ^i pre-twiddles for the embedding FFT.
    zeta_pows: Vec<Complex>,
    default_scale: f64,
}

impl CkksContext {
    /// Builds the context for a CKKS parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`HeError::InvalidParameters`] for non-CKKS sets or unusable
    /// primes, and [`HeError::NoSpecialPrime`] for single-prime chains.
    pub fn new(params: &HeParams) -> Result<Self, HeError> {
        if params.scheme() != SchemeType::Ckks {
            return Err(HeError::InvalidParameters(
                "CkksContext requires a CKKS parameter set".into(),
            ));
        }
        if params.prime_count() < 2 {
            return Err(HeError::NoSpecialPrime);
        }
        let n = params.degree();
        let primes = params.primes();
        let full = Arc::new(RnsBasis::new(n, primes)?);
        let data_count = primes.len() - 1;
        let mut level_bases = Vec::with_capacity(data_count);
        let mut ks_bases = Vec::with_capacity(data_count);
        for l in 1..=data_count {
            level_bases.push(Arc::new(full.prefix(l)));
            let mut ks_primes: Vec<u64> = primes[..l].to_vec();
            ks_primes.push(primes[data_count]);
            ks_bases.push(Arc::new(RnsBasis::new(n, &ks_primes)?));
        }
        // Slot map: slot j ↔ exponent 5^j mod 2N; FFT bin of exponent e is
        // ((1 − e)/2) mod N (see encode()); conjugate exponent is 2N − e.
        let m = 2 * n as u64;
        let half = n / 2;
        let mut slot_bins = Vec::with_capacity(half);
        let mut e = 1u64;
        let bin_of = |e: u64| -> usize {
            let k = (1i64 - e as i64).rem_euclid(m as i64) as u64 / 2;
            (k as usize) % n
        };
        for _ in 0..half {
            slot_bins.push((bin_of(e), bin_of(m - e)));
            e = e * 5 % m;
        }
        let zeta_pows: Vec<Complex> = (0..n)
            .map(|i| Complex::from_angle(std::f64::consts::PI * i as f64 / n as f64))
            .collect();
        Ok(CkksContext {
            params: params.clone(),
            full,
            level_bases,
            ks_bases,
            slot_bins,
            zeta_pows,
            default_scale: params.scale(),
        })
    }

    /// The parameter set.
    pub fn params(&self) -> &HeParams {
        &self.params
    }

    /// Ring degree.
    pub fn degree(&self) -> usize {
        self.params.degree()
    }

    /// Number of SIMD slots (`N/2`).
    pub fn slot_count(&self) -> usize {
        self.degree() / 2
    }

    /// Top level (number of data primes).
    pub fn top_level(&self) -> usize {
        self.level_bases.len()
    }

    /// Default encoder scale.
    pub fn default_scale(&self) -> f64 {
        self.default_scale
    }

    fn level_basis(&self, level: usize) -> &RnsBasis {
        &self.level_bases[level - 1]
    }

    /// Encodes real values into a plaintext at the top level and default
    /// scale.
    ///
    /// # Errors
    ///
    /// Returns [`HeError::TooManyValues`] when more than `N/2` values are
    /// given.
    pub fn encode(&self, values: &[f64]) -> Result<CkksPlaintext, HeError> {
        self.encode_at(values, self.top_level(), self.default_scale)
    }

    /// Encodes at an explicit level and scale.
    ///
    /// # Errors
    ///
    /// Returns [`HeError::TooManyValues`] when more than `N/2` values are
    /// given.
    pub fn encode_at(
        &self,
        values: &[f64],
        level: usize,
        scale: f64,
    ) -> Result<CkksPlaintext, HeError> {
        let n = self.degree();
        let half = n / 2;
        if values.len() > half {
            return Err(HeError::TooManyValues {
                got: values.len(),
                capacity: half,
            });
        }
        // Fill the evaluation vector with conjugate symmetry.
        let mut evals = vec![Complex::zero(); n];
        for (j, &v) in values.iter().enumerate() {
            let (bin, conj_bin) = self.slot_bins[j];
            evals[bin] = Complex::new(v, 0.0);
            evals[conj_bin] = Complex::new(v, 0.0).conj();
        }
        // Inverse embedding: a_i = IFFT(evals)_i · ζ^{−i}.
        fft_inverse(&mut evals);
        let mut coeffs = vec![0i64; n];
        for i in 0..n {
            let c = evals[i] * self.zeta_pows[i].conj();
            coeffs[i] = (c.re * scale).round() as i64;
        }
        Ok(CkksPlaintext {
            poly: RnsPoly::from_signed(&coeffs, self.level_basis(level)),
            level,
            scale,
        })
    }

    /// Decodes a plaintext back to `N/2` real values.
    pub fn decode(&self, pt: &CkksPlaintext) -> Vec<f64> {
        let n = self.degree();
        let basis = self.level_basis(pt.level);
        let mut evals = vec![Complex::zero(); n];
        for i in 0..n {
            let (mag, neg) = pt.poly.coeff_centered(i, basis);
            let mut v = mag.to_f64() / pt.scale;
            if neg {
                v = -v;
            }
            evals[i] = Complex::new(v, 0.0) * self.zeta_pows[i];
        }
        fft_forward(&mut evals);
        self.slot_bins
            .iter()
            .map(|&(bin, _)| evals[bin].re)
            .collect()
    }

    /// Generates a fresh key pair.
    // choco-lint: secret
    pub fn keygen(&self, rng: &mut Blake3Rng) -> CkksKeyBundle {
        let s_full = RnsPoly::sample_ternary(rng, &self.full);
        let top = self.level_basis(self.top_level());
        let a = RnsPoly::sample_uniform(rng, top);
        let e = RnsPoly::sample_error(rng, top);
        let s_data = s_full.prefix(top.len());
        let mut p0 = a.mul_poly(&s_data, top);
        p0.add_assign_poly(&e, top);
        p0.neg_assign_poly(top);
        CkksKeyBundle {
            secret: CkksSecretKey { full: s_full },
            public: CkksPublicKey { p0, p1: a },
        }
    }

    /// Generates the relinearization key.
    pub fn relin_key(&self, sk: &CkksSecretKey, rng: &mut Blake3Rng) -> CkksRelinKey {
        let s2 = sk.full.mul_poly(&sk.full, &self.full);
        let data = self.level_basis(self.top_level());
        CkksRelinKey {
            ksk: generate_ksk(&sk.full, &s2, &self.full, data, rng),
        }
    }

    /// Generates Galois keys for the given rotation steps.
    pub fn galois_keys(
        &self,
        sk: &CkksSecretKey,
        steps: &[i64],
        rng: &mut Blake3Rng,
    ) -> CkksGaloisKeys {
        let n = self.degree();
        let data = self.level_basis(self.top_level());
        let mut keys = HashMap::new();
        for &s in steps {
            let e = galois_element_ckks(s, n);
            let s_e = sk.full.galois(e, &self.full);
            keys.insert(e, generate_ksk(&sk.full, &s_e, &self.full, data, rng));
        }
        CkksGaloisKeys { keys }
    }

    /// Encrypts a plaintext (must be at the top level).
    ///
    /// # Errors
    ///
    /// Returns [`HeError::Mismatch`] when the plaintext is not at top level.
    // choco-lint: secret
    pub fn encrypt(
        &self,
        pt: &CkksPlaintext,
        pk: &CkksPublicKey,
        rng: &mut Blake3Rng,
    ) -> Result<CkksCiphertext, HeError> {
        // choco-lint: allow(SEC001) level is public ciphertext metadata, not payload
        if pt.level != self.top_level() {
            return Err(HeError::Mismatch(
                "encryption requires a top-level plaintext".into(),
            ));
        }
        let basis = self.level_basis(pt.level);
        let u = RnsPoly::sample_ternary(rng, basis);
        let e1 = RnsPoly::sample_error(rng, basis);
        let e2 = RnsPoly::sample_error(rng, basis);
        let mut c0 = pk.p0.mul_poly(&u, basis);
        c0.add_assign_poly(&e1, basis);
        c0.add_assign_poly(&pt.poly, basis);
        let mut c1 = pk.p1.mul_poly(&u, basis);
        c1.add_assign_poly(&e2, basis);
        Ok(CkksCiphertext {
            parts: vec![c0, c1],
            level: pt.level,
            scale: pt.scale,
        })
    }

    /// Decrypts to a plaintext at the ciphertext's level/scale.
    // choco-lint: secret
    pub fn decrypt(&self, ct: &CkksCiphertext, sk: &CkksSecretKey) -> CkksPlaintext {
        let basis = self.level_basis(ct.level);
        let s = sk.full.prefix(ct.level);
        let mut x = ct.parts[0].clone();
        let mut s_pow = s.clone();
        for part in &ct.parts[1..] {
            x.add_assign_poly(&part.mul_poly(&s_pow, basis), basis);
            s_pow = s_pow.mul_poly(&s, basis);
        }
        CkksPlaintext {
            poly: x,
            level: ct.level,
            scale: ct.scale,
        }
    }

    fn check_compatible(&self, a: &CkksCiphertext, b: &CkksCiphertext) -> Result<(), HeError> {
        if a.level != b.level {
            return Err(HeError::Mismatch(format!(
                "levels {} vs {}",
                a.level, b.level
            )));
        }
        let ratio = a.scale / b.scale;
        if !(0.99..1.01).contains(&ratio) {
            return Err(HeError::Mismatch(format!(
                "scales {} vs {}",
                a.scale, b.scale
            )));
        }
        Ok(())
    }

    /// Homomorphic addition.
    ///
    /// # Errors
    ///
    /// Returns [`HeError::Mismatch`] on level/scale mismatch.
    pub fn add(&self, a: &CkksCiphertext, b: &CkksCiphertext) -> Result<CkksCiphertext, HeError> {
        self.check_compatible(a, b)?;
        if a.size() != b.size() {
            return Err(HeError::Mismatch("ciphertext sizes differ".into()));
        }
        let basis = self.level_basis(a.level);
        let parts = a
            .parts
            .iter()
            .zip(&b.parts)
            .map(|(x, y)| crate::rnspoly::add(x, y, basis))
            .collect();
        Ok(CkksCiphertext {
            parts,
            level: a.level,
            scale: a.scale,
        })
    }

    /// Homomorphic subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`HeError::Mismatch`] on level/scale mismatch.
    pub fn sub(&self, a: &CkksCiphertext, b: &CkksCiphertext) -> Result<CkksCiphertext, HeError> {
        self.check_compatible(a, b)?;
        let basis = self.level_basis(a.level);
        let parts = a
            .parts
            .iter()
            .zip(&b.parts)
            .map(|(x, y)| crate::rnspoly::sub(x, y, basis))
            .collect();
        Ok(CkksCiphertext {
            parts,
            level: a.level,
            scale: a.scale,
        })
    }

    /// Adds a plaintext.
    ///
    /// # Errors
    ///
    /// Returns [`HeError::Mismatch`] on level/scale mismatch.
    pub fn add_plain(
        &self,
        a: &CkksCiphertext,
        pt: &CkksPlaintext,
    ) -> Result<CkksCiphertext, HeError> {
        if a.level != pt.level || (a.scale / pt.scale - 1.0).abs() > 0.01 {
            return Err(HeError::Mismatch("plaintext level/scale mismatch".into()));
        }
        let basis = self.level_basis(a.level);
        let mut out = a.clone();
        out.parts[0].add_assign_poly(&pt.poly, basis);
        Ok(out)
    }

    /// Multiplies by a plaintext (scales multiply; rescale afterwards).
    ///
    /// # Errors
    ///
    /// Returns [`HeError::Mismatch`] on level mismatch.
    pub fn multiply_plain(
        &self,
        a: &CkksCiphertext,
        pt: &CkksPlaintext,
    ) -> Result<CkksCiphertext, HeError> {
        if a.level != pt.level {
            return Err(HeError::Mismatch("plaintext level mismatch".into()));
        }
        let basis = self.level_basis(a.level);
        let parts = a
            .parts
            .iter()
            .map(|p| p.mul_poly(&pt.poly, basis))
            .collect();
        Ok(CkksCiphertext {
            parts,
            level: a.level,
            scale: a.scale * pt.scale,
        })
    }

    /// Ciphertext multiplication with immediate relinearization.
    ///
    /// # Errors
    ///
    /// Returns [`HeError::Mismatch`] on level mismatch or non-2-component
    /// inputs.
    pub fn multiply_relin(
        &self,
        a: &CkksCiphertext,
        b: &CkksCiphertext,
        rk: &CkksRelinKey,
    ) -> Result<CkksCiphertext, HeError> {
        if a.level != b.level {
            return Err(HeError::Mismatch("levels differ".into()));
        }
        if a.size() != 2 || b.size() != 2 {
            return Err(HeError::InvalidCiphertext(
                "multiply requires 2-component operands".into(),
            ));
        }
        let level = a.level;
        let basis = self.level_basis(level);
        let d0 = a.parts[0].mul_poly(&b.parts[0], basis);
        let mut d1 = a.parts[0].mul_poly(&b.parts[1], basis);
        d1.add_assign_poly(&a.parts[1].mul_poly(&b.parts[0], basis), basis);
        let d2 = a.parts[1].mul_poly(&b.parts[1], basis);
        let (k0, k1) = apply_ksk(&d2, &rk.ksk, &self.ks_bases[level - 1], basis);
        let mut c0 = d0;
        c0.add_assign_poly(&k0, basis);
        let mut c1 = d1;
        c1.add_assign_poly(&k1, basis);
        Ok(CkksCiphertext {
            parts: vec![c0, c1],
            level,
            scale: a.scale * b.scale,
        })
    }

    /// Rescales: divides by the level's last prime, dropping one level.
    ///
    /// # Errors
    ///
    /// Returns [`HeError::Mismatch`] at level 1 (nothing left to drop).
    pub fn rescale(&self, a: &CkksCiphertext) -> Result<CkksCiphertext, HeError> {
        if a.level <= 1 {
            return Err(HeError::Mismatch("cannot rescale below level 1".into()));
        }
        let cur = self.level_basis(a.level);
        let next = self.level_basis(a.level - 1);
        let q_last = cur.primes()[a.level - 1];
        let parts = a
            .parts
            .iter()
            // (p − [p]_{q_last}) / q_last per remaining residue: mod_down
            // divides by the last prime of `cur`, which is exactly q_last.
            .map(|p| crate::keyswitch::mod_down(p, cur, next))
            .collect();
        Ok(CkksCiphertext {
            parts,
            level: a.level - 1,
            scale: a.scale / q_last as f64,
        })
    }

    /// Drops a ciphertext to a lower level without rescaling the message
    /// (mod-switch: used to align levels before addition).
    ///
    /// # Errors
    ///
    /// Returns [`HeError::Mismatch`] when the target level is not below the
    /// current one.
    pub fn mod_switch_to(
        &self,
        a: &CkksCiphertext,
        level: usize,
    ) -> Result<CkksCiphertext, HeError> {
        if level == 0 || level > a.level {
            return Err(HeError::Mismatch("invalid mod-switch target".into()));
        }
        let parts = a.parts.iter().map(|p| p.prefix(level)).collect();
        Ok(CkksCiphertext {
            parts,
            level,
            scale: a.scale,
        })
    }

    /// Rotates slots left by `steps`.
    ///
    /// # Errors
    ///
    /// Returns [`HeError::MissingGaloisKey`] when the key set lacks the
    /// rotation, [`HeError::InvalidCiphertext`] for 3-part inputs.
    pub fn rotate(
        &self,
        a: &CkksCiphertext,
        steps: i64,
        gk: &CkksGaloisKeys,
    ) -> Result<CkksCiphertext, HeError> {
        if a.size() != 2 {
            return Err(HeError::InvalidCiphertext(
                "rotation requires a 2-component ciphertext".into(),
            ));
        }
        let e = galois_element_ckks(steps, self.degree());
        let ksk = gk.keys.get(&e).ok_or(HeError::MissingGaloisKey(e))?;
        let basis = self.level_basis(a.level);
        let c0g = a.parts[0].galois(e, basis);
        let c1g = a.parts[1].galois(e, basis);
        let (k0, k1) = apply_ksk(&c1g, ksk, &self.ks_bases[a.level - 1], basis);
        let mut c0 = c0g;
        c0.add_assign_poly(&k0, basis);
        Ok(CkksCiphertext {
            parts: vec![c0, k1],
            level: a.level,
            scale: a.scale,
        })
    }

    /// Rotates the same ciphertext by many step counts with one shared
    /// ("hoisted") decomposition of `c1` — the fast path for CKKS
    /// diagonal-method matvec. Each output decrypts identically to
    /// [`CkksContext::rotate`] with the same noise growth.
    ///
    /// # Errors
    ///
    /// Returns [`HeError::MissingGaloisKey`] when the key set lacks any
    /// rotation, [`HeError::InvalidCiphertext`] for 3-part inputs.
    pub fn rotate_many(
        &self,
        a: &CkksCiphertext,
        steps: &[i64],
        gk: &CkksGaloisKeys,
    ) -> Result<Vec<CkksCiphertext>, HeError> {
        if a.size() != 2 {
            return Err(HeError::InvalidCiphertext(
                "rotation requires a 2-component ciphertext".into(),
            ));
        }
        let basis = self.level_basis(a.level);
        let ks_basis = &self.ks_bases[a.level - 1];
        let n = self.degree();
        let hoisted = hoist_decompose(&a.parts[1], ks_basis, basis);
        steps
            .iter()
            .map(|&s| {
                let e = galois_element_ckks(s, n);
                let ksk = gk.keys.get(&e).ok_or(HeError::MissingGaloisKey(e))?;
                let perm = choco_math::ntt::galois_ntt_permutation(n, e);
                let (k0, k1) = apply_ksk_hoisted(&hoisted, Some(&perm), ksk, ks_basis, basis);
                let mut c0 = a.parts[0].galois(e, basis);
                c0.add_assign_poly(&k0, basis);
                Ok(CkksCiphertext {
                    parts: vec![c0, k1],
                    level: a.level,
                    scale: a.scale,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> CkksContext {
        let params = HeParams::ckks_insecure(1024, &[45, 45, 45, 46], 38).unwrap();
        CkksContext::new(&params).unwrap()
    }

    fn rng() -> Blake3Rng {
        Blake3Rng::from_seed(b"ckks tests")
    }

    fn assert_close(got: &[f64], want: &[f64], tol: f64) {
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert!(
                (g - w).abs() < tol,
                "slot {i}: got {g}, want {w} (tol {tol})"
            );
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ctx = ctx();
        let values: Vec<f64> = (0..ctx.slot_count())
            .map(|i| (i as f64 * 0.37).sin() * 3.0)
            .collect();
        let pt = ctx.encode(&values).unwrap();
        let out = ctx.decode(&pt);
        assert_close(&out, &values, 1e-6);
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let ctx = ctx();
        let mut rng = rng();
        let keys = ctx.keygen(&mut rng);
        let values: Vec<f64> = (0..ctx.slot_count()).map(|i| i as f64 / 100.0).collect();
        let pt = ctx.encode(&values).unwrap();
        let ct = ctx.encrypt(&pt, keys.public_key(), &mut rng).unwrap();
        let out = ctx.decode(&ctx.decrypt(&ct, keys.secret_key()));
        assert_close(&out, &values, 1e-4);
    }

    #[test]
    fn homomorphic_add_sub() {
        let ctx = ctx();
        let mut rng = rng();
        let keys = ctx.keygen(&mut rng);
        let a: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..8).map(|i| 10.0 - i as f64).collect();
        let ca = ctx
            .encrypt(&ctx.encode(&a).unwrap(), keys.public_key(), &mut rng)
            .unwrap();
        let cb = ctx
            .encrypt(&ctx.encode(&b).unwrap(), keys.public_key(), &mut rng)
            .unwrap();
        let sum = ctx.add(&ca, &cb).unwrap();
        let out = ctx.decode(&ctx.decrypt(&sum, keys.secret_key()));
        assert_close(&out[..8], &[10.0; 8], 1e-3);
        let diff = ctx.sub(&sum, &cb).unwrap();
        let out = ctx.decode(&ctx.decrypt(&diff, keys.secret_key()));
        assert_close(&out[..8], &a, 1e-3);
    }

    #[test]
    fn multiply_and_rescale() {
        let ctx = ctx();
        let mut rng = rng();
        let keys = ctx.keygen(&mut rng);
        let rk = ctx.relin_key(keys.secret_key(), &mut rng);
        let a: Vec<f64> = (0..8).map(|i| (i + 1) as f64).collect();
        let b: Vec<f64> = (0..8).map(|i| 0.5 * (i + 1) as f64).collect();
        let ca = ctx
            .encrypt(&ctx.encode(&a).unwrap(), keys.public_key(), &mut rng)
            .unwrap();
        let cb = ctx
            .encrypt(&ctx.encode(&b).unwrap(), keys.public_key(), &mut rng)
            .unwrap();
        let prod = ctx.multiply_relin(&ca, &cb, &rk).unwrap();
        let rescaled = ctx.rescale(&prod).unwrap();
        assert_eq!(rescaled.level(), ctx.top_level() - 1);
        let out = ctx.decode(&ctx.decrypt(&rescaled, keys.secret_key()));
        let want: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x * y).collect();
        assert_close(&out[..8], &want, 1e-2);
    }

    #[test]
    fn multiply_plain_then_rescale() {
        let ctx = ctx();
        let mut rng = rng();
        let keys = ctx.keygen(&mut rng);
        let a = vec![2.0, 3.0, 4.0];
        let w = vec![1.5, -2.0, 0.25];
        let ca = ctx
            .encrypt(&ctx.encode(&a).unwrap(), keys.public_key(), &mut rng)
            .unwrap();
        let pw = ctx.encode(&w).unwrap();
        let prod = ctx.multiply_plain(&ca, &pw).unwrap();
        let rescaled = ctx.rescale(&prod).unwrap();
        let out = ctx.decode(&ctx.decrypt(&rescaled, keys.secret_key()));
        assert_close(&out[..3], &[3.0, -6.0, 1.0], 1e-2);
    }

    #[test]
    fn rotation_shifts_slots_left() {
        let ctx = ctx();
        let mut rng = rng();
        let keys = ctx.keygen(&mut rng);
        let gk = ctx.galois_keys(keys.secret_key(), &[1, 2], &mut rng);
        let values: Vec<f64> = (0..ctx.slot_count()).map(|i| i as f64).collect();
        let ct = ctx
            .encrypt(&ctx.encode(&values).unwrap(), keys.public_key(), &mut rng)
            .unwrap();
        let rot = ctx.rotate(&ct, 1, &gk).unwrap();
        let out = ctx.decode(&ctx.decrypt(&rot, keys.secret_key()));
        let half = ctx.slot_count();
        for i in 0..half {
            let want = values[(i + 1) % half];
            assert!(
                (out[i] - want).abs() < 1e-2,
                "slot {i}: {} vs {want}",
                out[i]
            );
        }
    }

    #[test]
    fn mod_switch_aligns_levels() {
        let ctx = ctx();
        let mut rng = rng();
        let keys = ctx.keygen(&mut rng);
        let a = vec![1.0, 2.0];
        let ct = ctx
            .encrypt(&ctx.encode(&a).unwrap(), keys.public_key(), &mut rng)
            .unwrap();
        let dropped = ctx.mod_switch_to(&ct, 2).unwrap();
        assert_eq!(dropped.level(), 2);
        let out = ctx.decode(&ctx.decrypt(&dropped, keys.secret_key()));
        assert_close(&out[..2], &a, 1e-3);
    }

    #[test]
    fn level_and_scale_mismatches_error() {
        let ctx = ctx();
        let mut rng = rng();
        let keys = ctx.keygen(&mut rng);
        let ct = ctx
            .encrypt(&ctx.encode(&[1.0]).unwrap(), keys.public_key(), &mut rng)
            .unwrap();
        let low = ctx.mod_switch_to(&ct, 1).unwrap();
        assert!(ctx.add(&ct, &low).is_err());
        assert!(ctx.rescale(&low).is_err());
        assert!(ctx.mod_switch_to(&ct, 10).is_err());
    }

    #[test]
    fn too_many_values_rejected() {
        let ctx = ctx();
        let too_many = vec![0.0; ctx.slot_count() + 1];
        assert!(matches!(
            ctx.encode(&too_many).unwrap_err(),
            HeError::TooManyValues { .. }
        ));
    }
}
