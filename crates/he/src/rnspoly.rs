//! Polynomials in RNS representation over `Z_q[x]/(x^N + 1)`.
//!
//! An [`RnsPoly`] stores one residue row per prime of an [`RnsBasis`]
//! (always in coefficient form — transforms happen inside operations). The
//! row order always matches the basis prime order, and a polynomial modulo
//! the data modulus is simply a prefix of the rows of one modulo the full
//! modulus, because the key-switching prime is last.

use choco_math::modops::{add_mod, mul_mod, reduce_signed};
use choco_math::par;
use choco_math::poly::{
    add_assign, apply_galois, dyadic_acc_assign, neg_assign, scalar_mul_assign, sub_assign,
};
use choco_math::pool::PolyPool;
use choco_math::rns::RnsBasis;
use choco_prng::sampler::{sample_error_signed, sample_ternary_signed};
use choco_prng::Blake3Rng;

/// A polynomial with `k` RNS residue rows of `n` coefficients each.
///
/// Residue rows are leased from [`PolyPool`]: every constructor draws its
/// rows from the pool and [`Drop`] returns them, so steady-state evaluation
/// recycles row buffers instead of hitting the allocator (the zero-alloc
/// test in `crates/he/tests/zero_alloc.rs` pins this property).
#[derive(Debug, PartialEq, Eq)]
pub struct RnsPoly {
    rows: Vec<Vec<u64>>,
}

impl Clone for RnsPoly {
    fn clone(&self) -> Self {
        RnsPoly {
            rows: self.rows.iter().map(|r| PolyPool::take_copy(r)).collect(),
        }
    }
}

impl Drop for RnsPoly {
    fn drop(&mut self) {
        for row in self.rows.drain(..) {
            PolyPool::recycle(row);
        }
    }
}

impl RnsPoly {
    /// The zero polynomial with `k` rows of `n` coefficients.
    pub fn zero(k: usize, n: usize) -> Self {
        RnsPoly {
            rows: (0..k).map(|_| PolyPool::take_zeroed(n)).collect(),
        }
    }

    /// Wraps existing residue rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: Vec<Vec<u64>>) -> Self {
        assert!(!rows.is_empty(), "rns poly needs at least one row");
        let n = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == n), "ragged residue rows");
        RnsPoly { rows }
    }

    /// Builds a polynomial from signed coefficients, reducing into every
    /// prime of `basis`.
    // choco-lint: secret (public: basis)
    pub fn from_signed<T: Into<i64> + Copy>(values: &[T], basis: &RnsBasis) -> Self {
        let rows = basis
            .primes()
            .iter()
            .map(|&q| {
                let mut row = PolyPool::take_scratch(values.len());
                for (x, &v) in row.iter_mut().zip(values) {
                    *x = reduce_signed(v.into(), q);
                }
                row
            })
            .collect();
        RnsPoly { rows }
    }

    /// Builds a polynomial whose coefficients are the (small, unsigned)
    /// integers of `values`, reduced into every prime of `basis`.
    // choco-lint: secret (public: basis)
    pub fn from_unsigned(values: &[u64], basis: &RnsBasis) -> Self {
        let rows = basis
            .primes()
            .iter()
            .map(|&q| {
                let mut row = PolyPool::take_scratch(values.len());
                for (x, &v) in row.iter_mut().zip(values) {
                    *x = v % q;
                }
                row
            })
            .collect();
        RnsPoly { rows }
    }

    /// Samples ternary coefficients (one signed draw mapped into every row).
    // choco-lint: secret (public: basis)
    pub fn sample_ternary(rng: &mut Blake3Rng, basis: &RnsBasis) -> Self {
        let vals = sample_ternary_signed(rng, basis.degree());
        Self::from_signed(&vals, basis)
    }

    /// Samples clipped-normal error coefficients.
    // choco-lint: secret (public: basis)
    pub fn sample_error(rng: &mut Blake3Rng, basis: &RnsBasis) -> Self {
        let vals = sample_error_signed(rng, basis.degree());
        Self::from_signed(&vals, basis)
    }

    /// Samples a uniform polynomial modulo the basis modulus (independent
    /// uniform residues per prime — exactly uniform by CRT).
    // choco-lint: secret (public: basis)
    pub fn sample_uniform(rng: &mut Blake3Rng, basis: &RnsBasis) -> Self {
        let n = basis.degree();
        let rows = basis
            .primes()
            .iter()
            .map(|&q| {
                let mut row = PolyPool::take_scratch(n);
                for x in row.iter_mut() {
                    *x = rng.next_below(q);
                }
                row
            })
            .collect();
        RnsPoly { rows }
    }

    /// Number of residue rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Ring degree.
    pub fn degree(&self) -> usize {
        self.rows[0].len()
    }

    /// Residue row `i`.
    pub fn row(&self, i: usize) -> &[u64] {
        &self.rows[i]
    }

    /// Mutable residue row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [u64] {
        &mut self.rows[i]
    }

    /// A copy containing only the first `k` rows (drop to a sub-basis).
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or exceeds the row count.
    pub fn prefix(&self, k: usize) -> RnsPoly {
        assert!(k >= 1 && k <= self.rows.len(), "invalid prefix length");
        RnsPoly {
            rows: self.rows[..k]
                .iter()
                .map(|r| PolyPool::take_copy(r))
                .collect(),
        }
    }

    fn check_match(&self, rhs: &RnsPoly) {
        assert_eq!(self.rows.len(), rhs.rows.len(), "row count mismatch");
        assert_eq!(self.degree(), rhs.degree(), "degree mismatch");
    }

    /// `self += rhs` over `basis`.
    pub fn add_assign_poly(&mut self, rhs: &RnsPoly, basis: &RnsBasis) {
        self.check_match(rhs);
        let primes = basis.primes();
        par::par_for_each_mut(&mut self.rows, |i, row| {
            add_assign(row, &rhs.rows[i], primes[i]);
        });
    }

    /// `self -= rhs` over `basis`.
    pub fn sub_assign_poly(&mut self, rhs: &RnsPoly, basis: &RnsBasis) {
        self.check_match(rhs);
        let primes = basis.primes();
        par::par_for_each_mut(&mut self.rows, |i, row| {
            sub_assign(row, &rhs.rows[i], primes[i]);
        });
    }

    /// `self = -self` over `basis`.
    pub fn neg_assign_poly(&mut self, basis: &RnsBasis) {
        let primes = basis.primes();
        par::par_for_each_mut(&mut self.rows, |i, row| {
            neg_assign(row, primes[i]);
        });
    }

    /// Negacyclic product `self * rhs` over `basis` (NTT per residue).
    pub fn mul_poly(&self, rhs: &RnsPoly, basis: &RnsBasis) -> RnsPoly {
        self.check_match(rhs);
        let tables = basis.ntt_tables();
        let rows = par::par_map_range(self.rows.len(), |i| {
            tables[i].negacyclic_mul(&self.rows[i], &rhs.rows[i])
        });
        RnsPoly { rows }
    }

    /// Multiplies by a small-integer polynomial (e.g. a BFV plaintext with
    /// coefficients `< t`), reducing the multiplier into each prime.
    pub fn mul_small_poly(&self, plain: &[u64], basis: &RnsBasis) -> RnsPoly {
        assert_eq!(plain.len(), self.degree(), "plaintext degree mismatch");
        let tables = basis.ntt_tables();
        let primes = basis.primes();
        let rows = par::par_map_range(self.rows.len(), |i| {
            let q = primes[i];
            let mut reduced = PolyPool::take_scratch(plain.len());
            for (x, &v) in reduced.iter_mut().zip(plain) {
                *x = v % q;
            }
            let out = tables[i].negacyclic_mul(&self.rows[i], &reduced);
            PolyPool::recycle(reduced);
            out
        });
        RnsPoly { rows }
    }

    /// Multiplies row `i` by the scalar `scalars[i]` (used for `Δ·m` where
    /// `Δ` is precomputed per residue).
    pub fn scalar_mul_per_row(&mut self, scalars: &[u64], basis: &RnsBasis) {
        assert_eq!(scalars.len(), self.rows.len(), "scalar count mismatch");
        let primes = basis.primes();
        par::par_for_each_mut(&mut self.rows, |i, row| {
            scalar_mul_assign(row, scalars[i], primes[i]);
        });
    }

    /// Applies the Galois automorphism `x → x^e` to every residue row.
    pub fn galois(&self, e: u64, basis: &RnsBasis) -> RnsPoly {
        let n = self.degree();
        let primes = basis.primes();
        let rows = par::par_map_range(self.rows.len(), |i| {
            // apply_galois zero-fills before scattering, so scratch is fine.
            let mut out = PolyPool::take_scratch(n);
            apply_galois(&self.rows[i], e, primes[i], &mut out);
            out
        });
        RnsPoly { rows }
    }

    /// Element-wise (already-NTT-form) product accumulate:
    /// `self[i] += a[i] ⊙ b[i]` — helper for key switching where operands
    /// are kept in the transform domain. Allocation-free: the products feed
    /// a fused multiply-add directly into the accumulator rows.
    pub fn dyadic_accumulate(&mut self, a: &RnsPoly, b: &RnsPoly, basis: &RnsBasis) {
        self.check_match(a);
        self.check_match(b);
        let primes = basis.primes();
        par::par_for_each_mut(&mut self.rows, |i, row| {
            dyadic_acc_assign(row, &a.rows[i], &b.rows[i], primes[i]);
        });
    }

    /// Forward NTT on every row.
    pub fn ntt_forward(&mut self, basis: &RnsBasis) {
        let tables = basis.ntt_tables();
        par::par_for_each_mut(&mut self.rows, |i, row| {
            tables[i].forward(row);
        });
    }

    /// Inverse NTT on every row.
    pub fn ntt_inverse(&mut self, basis: &RnsBasis) {
        let tables = basis.ntt_tables();
        par::par_for_each_mut(&mut self.rows, |i, row| {
            tables[i].inverse(row);
        });
    }

    /// Composes coefficient `j` into its centered big-integer value
    /// `(magnitude, is_negative)` over `basis`.
    pub fn coeff_centered(&self, j: usize, basis: &RnsBasis) -> (choco_math::UBig, bool) {
        let residues: Vec<u64> = self.rows.iter().map(|r| r[j]).collect();
        basis.compose_centered(&residues)
    }

    /// Infinity norm of the centered coefficients (as log2; `-inf` for zero).
    pub fn centered_norm_log2(&self, basis: &RnsBasis) -> f64 {
        let mut max = f64::NEG_INFINITY;
        for j in 0..self.degree() {
            let (mag, _) = self.coeff_centered(j, basis);
            let l = mag.log2();
            if l > max {
                max = l;
            }
        }
        max
    }
}

/// Convenience: `out = a + b`, built row-wise without an intermediate clone.
pub fn add(a: &RnsPoly, b: &RnsPoly, basis: &RnsBasis) -> RnsPoly {
    a.check_match(b);
    let primes = basis.primes();
    let rows = par::par_map_range(a.rows.len(), |i| {
        let mut row = PolyPool::take_copy(&a.rows[i]);
        add_assign(&mut row, &b.rows[i], primes[i]);
        row
    });
    RnsPoly { rows }
}

/// Convenience: `out = a - b`, built row-wise without an intermediate clone.
pub fn sub(a: &RnsPoly, b: &RnsPoly, basis: &RnsBasis) -> RnsPoly {
    a.check_match(b);
    let primes = basis.primes();
    let rows = par::par_map_range(a.rows.len(), |i| {
        let mut row = PolyPool::take_copy(&a.rows[i]);
        sub_assign(&mut row, &b.rows[i], primes[i]);
        row
    });
    RnsPoly { rows }
}

/// Scalar helper used during mod-down: `x mod q` for a centered `i64`.
pub fn signed_to_residue(v: i64, q: u64) -> u64 {
    reduce_signed(v, q)
}

/// Adds `a*b` computed coefficient-wise with scalars (tests only).
pub fn scalar_combine(a: u64, b: u64, q: u64) -> u64 {
    add_mod(a, mul_mod(a, b, q), q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use choco_math::prime::generate_ntt_primes;

    fn basis() -> RnsBasis {
        let primes = generate_ntt_primes(30, 64, 3);
        RnsBasis::new(64, &primes).unwrap()
    }

    #[test]
    fn from_signed_round_trips_via_centered_compose() {
        let b = basis();
        let vals: Vec<i64> = (0..64).map(|i| (i as i64 - 32) * 3).collect();
        let p = RnsPoly::from_signed(&vals, &b);
        for (j, &v) in vals.iter().enumerate() {
            let (mag, neg) = p.coeff_centered(j, &b);
            let got = if neg {
                -(mag.to_u64() as i64)
            } else {
                mag.to_u64() as i64
            };
            assert_eq!(got, v);
        }
    }

    #[test]
    fn add_sub_inverse() {
        let b = basis();
        let mut rng = Blake3Rng::from_seed(b"rp");
        let x = RnsPoly::sample_uniform(&mut rng, &b);
        let y = RnsPoly::sample_uniform(&mut rng, &b);
        let mut z = x.clone();
        z.add_assign_poly(&y, &b);
        z.sub_assign_poly(&y, &b);
        assert_eq!(z, x);
    }

    #[test]
    fn mul_distributes_over_add() {
        let b = basis();
        let mut rng = Blake3Rng::from_seed(b"dist");
        let x = RnsPoly::sample_uniform(&mut rng, &b);
        let y = RnsPoly::sample_uniform(&mut rng, &b);
        let z = RnsPoly::sample_uniform(&mut rng, &b);
        let lhs = add(&x, &y, &b).mul_poly(&z, &b);
        let rhs = add(&x.mul_poly(&z, &b), &y.mul_poly(&z, &b), &b);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn ternary_samples_are_consistent_across_rows() {
        let b = basis();
        let mut rng = Blake3Rng::from_seed(b"tern");
        let p = RnsPoly::sample_ternary(&mut rng, &b);
        for j in 0..p.degree() {
            let (mag, _) = p.coeff_centered(j, &b);
            assert!(mag.to_u64() <= 1, "ternary coefficient magnitude > 1");
        }
    }

    #[test]
    fn galois_then_inverse_galois_is_identity() {
        // e * e_inv ≡ 1 mod 2n restores the original polynomial.
        let b = basis();
        let n = 64u64;
        let mut rng = Blake3Rng::from_seed(b"gal");
        let p = RnsPoly::sample_uniform(&mut rng, &b);
        let e = 3u64;
        // inverse of 3 modulo 128
        let mut e_inv = 0;
        for cand in (1..2 * n).step_by(2) {
            if (cand * e) % (2 * n) == 1 {
                e_inv = cand;
                break;
            }
        }
        let q = p.galois(e, &b).galois(e_inv, &b);
        assert_eq!(q, p);
    }

    #[test]
    fn ntt_roundtrip_per_row() {
        let b = basis();
        let mut rng = Blake3Rng::from_seed(b"ntt");
        let p = RnsPoly::sample_uniform(&mut rng, &b);
        let mut q = p.clone();
        q.ntt_forward(&b);
        q.ntt_inverse(&b);
        assert_eq!(p, q);
    }

    #[test]
    fn prefix_drops_rows() {
        let _b = basis();
        let p = RnsPoly::zero(3, 64);
        assert_eq!(p.prefix(2).row_count(), 2);
    }

    #[test]
    fn centered_norm_of_small_poly() {
        let b = basis();
        let vals = vec![0i64; 64];
        let mut v2 = vals.clone();
        v2[5] = -8;
        let p = RnsPoly::from_signed(&v2, &b);
        assert!((p.centered_norm_log2(&b) - 3.0).abs() < 1e-9);
        let z = RnsPoly::from_signed(&vals, &b);
        assert_eq!(z.centered_norm_log2(&b), f64::NEG_INFINITY);
    }
}
