//! The Brakerski/Fan-Vercauteren (BFV) scheme in RNS form.
//!
//! Implements the full client-aided tool set the paper uses: asymmetric
//! encryption (Eq. 2), decryption (Eq. 3), homomorphic addition, plaintext
//! multiplication, ciphertext multiplication with relinearization, Galois
//! rotations, and SEAL-style invariant-noise-budget measurement (Table 4's
//! metric).
//!
//! Ciphertexts live modulo the *data* modulus `q` (all primes but the last);
//! the last prime is reserved for key switching. Ciphertext–ciphertext
//! multiplication lifts operands exactly into an auxiliary NTT basis wide
//! enough to hold the integer tensor product, then scales by `t/q` with
//! big-integer rounding — mathematically equivalent to SEAL's BEHZ base
//! conversion, chosen here for auditability.

use crate::batch::BatchEncoder;
use crate::error::HeError;
use crate::keyswitch::{
    apply_ksk, apply_ksk_hoisted, galois_element_columns, galois_element_rows, generate_ksk,
    hoist_decompose, hoisted_accumulate, mod_down_ntt, KswitchKey,
};
use crate::params::{HeParams, SchemeType};
use crate::rnspoly::RnsPoly;
use choco_math::modops::add_mod;
use choco_math::ntt::galois_ntt_permutation;
use choco_math::par;
use choco_math::pool::PolyPool;
use choco_math::prime::generate_ntt_primes;
use choco_math::rns::RnsBasis;
use choco_math::UBig;
use choco_prng::Blake3Rng;
use std::collections::HashMap;
use std::sync::Arc;

/// A BFV plaintext: `N` coefficients modulo `t`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plaintext {
    coeffs: Vec<u64>,
}

impl Plaintext {
    /// Wraps raw coefficients (must already be reduced modulo `t`).
    // choco-lint: ct-safe
    pub fn from_coeffs(coeffs: Vec<u64>) -> Self {
        Plaintext { coeffs }
    }

    /// The coefficient vector.
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// Mutable coefficient access (used by the encoder).
    pub fn coeffs_mut(&mut self) -> &mut [u64] {
        &mut self.coeffs
    }
}

/// A BFV ciphertext: 2 (fresh) or 3 (post-multiplication) polynomials over
/// the data basis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ciphertext {
    parts: Vec<RnsPoly>,
}

impl Ciphertext {
    /// Assembles a ciphertext from raw components (deserialization path).
    ///
    /// # Panics
    ///
    /// Panics on an empty component list.
    pub fn from_parts(parts: Vec<RnsPoly>) -> Self {
        assert!(!parts.is_empty(), "ciphertext needs at least one component");
        Ciphertext { parts }
    }

    /// Number of polynomial components (2 or 3).
    pub fn size(&self) -> usize {
        self.parts.len()
    }

    /// Component `i`.
    pub fn part(&self, i: usize) -> &RnsPoly {
        &self.parts[i]
    }

    /// Serialized size in bytes: `size · N · k_data · 8`.
    pub fn byte_size(&self) -> usize {
        self.parts.len() * self.parts[0].row_count() * self.parts[0].degree() * 8
    }
}

/// The secret key (ternary polynomial, kept over the full basis so key
/// switching material can be generated).
#[derive(Debug, Clone)]
pub struct SecretKey {
    full: RnsPoly,
}

impl SecretKey {
    /// The key polynomial over the full basis (exposed for key-switching
    /// material generation and tests).
    pub fn key_poly(&self) -> &RnsPoly {
        &self.full
    }

    /// Reassembles a secret key from its full-basis polynomial (checkpoint
    /// deserialization).
    // choco-lint: secret
    pub fn from_poly(full: RnsPoly) -> Self {
        SecretKey { full }
    }
}

/// The public encryption key `(P0, P1) = (−(a·s + e), a)` over the data basis.
#[derive(Debug, Clone)]
pub struct PublicKey {
    p0: RnsPoly,
    p1: RnsPoly,
}

impl PublicKey {
    /// Serialized size in bytes (two data-basis polynomials).
    pub fn byte_size(&self) -> usize {
        2 * self.p0.row_count() * self.p0.degree() * 8
    }

    /// The `(P0, P1)` component polynomials (wire serialization).
    pub fn parts(&self) -> (&RnsPoly, &RnsPoly) {
        (&self.p0, &self.p1)
    }

    /// Reassembles a public key from raw components (deserialization).
    pub fn from_parts(p0: RnsPoly, p1: RnsPoly) -> Self {
        PublicKey { p0, p1 }
    }
}

/// Secret/public key pair produced by [`BfvContext::keygen`].
#[derive(Debug, Clone)]
pub struct KeyBundle {
    secret: SecretKey,
    public: PublicKey,
}

impl KeyBundle {
    /// The secret key.
    pub fn secret_key(&self) -> &SecretKey {
        &self.secret
    }

    /// The public key.
    pub fn public_key(&self) -> &PublicKey {
        &self.public
    }

    /// Reassembles a bundle from its keys (checkpoint deserialization).
    // choco-lint: secret
    pub fn from_keys(secret: SecretKey, public: PublicKey) -> Self {
        KeyBundle { secret, public }
    }
}

/// Relinearization key (switches `s²`-keyed components back to `s`).
#[derive(Debug, Clone)]
pub struct RelinKey {
    ksk: KswitchKey,
}

impl RelinKey {
    /// Serialized size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.ksk.size_bytes()
    }

    /// The underlying key-switching key (wire serialization).
    pub fn ksk(&self) -> &KswitchKey {
        &self.ksk
    }

    /// Reassembles a relinearization key (deserialization).
    pub fn from_ksk(ksk: KswitchKey) -> Self {
        RelinKey { ksk }
    }
}

/// A set of Galois keys, one per automorphism element.
#[derive(Debug, Clone)]
pub struct GaloisKeys {
    keys: HashMap<u64, KswitchKey>,
}

impl GaloisKeys {
    /// The Galois elements covered by this key set.
    pub fn elements(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.keys.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Serialized size in bytes of all keys.
    pub fn size_bytes(&self) -> usize {
        self.keys.values().map(|k| k.size_bytes()).sum()
    }

    /// The key for one Galois element, if provisioned.
    pub fn key_for(&self, element: u64) -> Option<&KswitchKey> {
        self.keys.get(&element)
    }

    /// Reassembles a key set from per-element keys (deserialization).
    pub fn from_map(keys: HashMap<u64, KswitchKey>) -> Self {
        GaloisKeys { keys }
    }
}

/// Precomputed context for one BFV parameter set.
#[derive(Debug, Clone)]
pub struct BfvContext {
    params: HeParams,
    /// All primes (special last). Equal to `data` when only one prime exists.
    full: Arc<RnsBasis>,
    /// Data primes (fresh-ciphertext modulus `q`).
    data: Arc<RnsBasis>,
    /// Auxiliary basis wide enough for the exact integer tensor product.
    ext: Arc<RnsBasis>,
    /// Δ = ⌊q/t⌋ reduced modulo each data prime.
    delta_mod_qi: Vec<u64>,
    /// Prefix bases of the data primes (`level_bases[l-1]` has `l` primes),
    /// used by modulus-switched ciphertexts.
    level_bases: Vec<Arc<RnsBasis>>,
    /// ⌊q_level/t⌋ per level, aligned with `level_bases`.
    level_deltas: Vec<UBig>,
    t: u64,
    batch: Option<Arc<BatchEncoder>>,
}

impl BfvContext {
    /// Builds the context (bases, NTT tables, encoder) for `params`.
    ///
    /// # Errors
    ///
    /// Returns [`HeError::InvalidParameters`] when the parameter set is not
    /// a BFV set or its primes cannot support the ring degree.
    pub fn new(params: &HeParams) -> Result<Self, HeError> {
        if params.scheme() != SchemeType::Bfv {
            return Err(HeError::InvalidParameters(
                "BfvContext requires a BFV parameter set".into(),
            ));
        }
        let n = params.degree();
        let primes = params.primes();
        let full = Arc::new(RnsBasis::new(n, primes)?);
        let data = if primes.len() == 1 {
            full.clone()
        } else {
            Arc::new(full.prefix(primes.len() - 1))
        };
        // Extended basis for exact tensor products: needs
        // 2·log2(q) + log2(N) + 2 bits.
        let needed_bits = 2.0 * data.modulus_bits() + (n as f64).log2() + 2.0;
        let mut ext_primes = Vec::new();
        let mut bits = 0.0;
        let pool = generate_ntt_primes(
            59,
            n,
            (needed_bits / 58.0).ceil() as usize + primes.len() + 2,
        );
        for p in pool {
            if primes.contains(&p) {
                continue;
            }
            bits += (p as f64).log2();
            ext_primes.push(p);
            if bits >= needed_bits {
                break;
            }
        }
        let ext = Arc::new(RnsBasis::new(n, &ext_primes)?);
        let t = params.plain_modulus();
        let delta = data.modulus().divrem_u64(t).0;
        let delta_mod_qi = data.primes().iter().map(|&q| delta.rem_u64(q)).collect();
        let mut level_bases = Vec::with_capacity(data.len());
        let mut level_deltas = Vec::with_capacity(data.len());
        for l in 1..=data.len() {
            let basis = if l == data.len() {
                data.clone()
            } else {
                Arc::new(data.prefix(l))
            };
            level_deltas.push(basis.modulus().divrem_u64(t).0);
            level_bases.push(basis);
        }
        let batch = BatchEncoder::new(n, t).ok().map(Arc::new);
        Ok(BfvContext {
            params: params.clone(),
            full,
            data,
            ext,
            delta_mod_qi,
            level_bases,
            level_deltas,
            t,
            batch,
        })
    }

    /// The parameter set.
    pub fn params(&self) -> &HeParams {
        &self.params
    }

    /// Ring degree.
    pub fn degree(&self) -> usize {
        self.params.degree()
    }

    /// Plaintext modulus `t`.
    pub fn plain_modulus(&self) -> u64 {
        self.t
    }

    /// The data-modulus RNS basis.
    pub fn data_basis(&self) -> &RnsBasis {
        &self.data
    }

    /// log2 of the data modulus `q`.
    pub fn q_bits(&self) -> f64 {
        self.data.modulus_bits()
    }

    /// The SIMD batch encoder.
    ///
    /// # Errors
    ///
    /// Returns [`HeError::BatchingUnsupported`] when `t ∤ 1 (mod 2N)`.
    pub fn batch_encoder(&self) -> Result<&BatchEncoder, HeError> {
        self.batch
            .as_deref()
            .ok_or(HeError::BatchingUnsupported(self.t))
    }

    /// Generates a fresh secret/public key pair.
    // choco-lint: secret
    pub fn keygen(&self, rng: &mut Blake3Rng) -> KeyBundle {
        let s_full = RnsPoly::sample_ternary(rng, &self.full);
        let a = RnsPoly::sample_uniform(rng, &self.data);
        let e = RnsPoly::sample_error(rng, &self.data);
        let s_data = s_full.prefix(self.data.len());
        // p0 = -(a·s + e)
        let mut p0 = a.mul_poly(&s_data, &self.data);
        p0.add_assign_poly(&e, &self.data);
        p0.neg_assign_poly(&self.data);
        KeyBundle {
            secret: SecretKey { full: s_full },
            public: PublicKey { p0, p1: a },
        }
    }

    /// Generates a relinearization key for `s²`.
    ///
    /// # Errors
    ///
    /// Returns [`HeError::NoSpecialPrime`] for single-prime parameter sets.
    pub fn relin_key(&self, sk: &SecretKey, rng: &mut Blake3Rng) -> Result<RelinKey, HeError> {
        self.require_special_prime()?;
        let s2 = sk.full.mul_poly(&sk.full, &self.full);
        let ksk = generate_ksk(&sk.full, &s2, &self.full, &self.data, rng);
        Ok(RelinKey { ksk })
    }

    /// Generates Galois keys for the given rotation steps (rows) plus the
    /// column swap.
    ///
    /// # Errors
    ///
    /// Returns [`HeError::NoSpecialPrime`] for single-prime parameter sets.
    pub fn galois_keys(
        &self,
        sk: &SecretKey,
        steps: &[i64],
        rng: &mut Blake3Rng,
    ) -> Result<GaloisKeys, HeError> {
        self.require_special_prime()?;
        let n = self.degree();
        let mut elements: Vec<u64> = steps.iter().map(|&s| galois_element_rows(s, n)).collect();
        elements.push(galois_element_columns(n));
        elements.sort_unstable();
        elements.dedup();
        let mut keys = HashMap::new();
        for e in elements {
            let s_e = sk.full.galois(e, &self.full);
            keys.insert(e, generate_ksk(&sk.full, &s_e, &self.full, &self.data, rng));
        }
        Ok(GaloisKeys { keys })
    }

    fn require_special_prime(&self) -> Result<(), HeError> {
        if self.params.prime_count() < 2 {
            Err(HeError::NoSpecialPrime)
        } else {
            Ok(())
        }
    }

    /// An encryptor bound to `pk`.
    pub fn encryptor<'a>(&'a self, pk: &'a PublicKey) -> Encryptor<'a> {
        Encryptor { ctx: self, pk }
    }

    /// Symmetric, seed-compressed encryption: `c1 = a` is derived from a
    /// fresh 32-byte seed, `c0 = −(a·s + e) + Δ·m`, and only `(c0, seed)`
    /// travels — halving the client's upload bytes.
    // choco-lint: secret
    pub fn encrypt_symmetric_seeded(
        &self,
        pt: &Plaintext,
        sk: &SecretKey,
        rng: &mut Blake3Rng,
    ) -> SeededCiphertext {
        let data = &*self.data;
        let mut seed = [0u8; 32];
        rng.fill_bytes(&mut seed);
        let mut a_rng = Blake3Rng::from_seed_labeled(&seed, "bfv-seeded-c1");
        let a = RnsPoly::sample_uniform(&mut a_rng, data);
        let e = RnsPoly::sample_error(rng, data);
        let s = sk.full.prefix(data.len());
        // c0 = -(a·s + e) + Δ·m
        let mut c0 = a.mul_poly(&s, data);
        c0.add_assign_poly(&e, data);
        c0.neg_assign_poly(data);
        let mut dm = RnsPoly::from_unsigned(pt.coeffs(), data);
        dm.scalar_mul_per_row(&self.delta_mod_qi, data);
        c0.add_assign_poly(&dm, data);
        SeededCiphertext { c0, seed }
    }

    /// Expands a seed-compressed ciphertext back to a standard two-component
    /// ciphertext (the server does this on receipt).
    pub fn expand_seeded(&self, ct: &SeededCiphertext) -> Ciphertext {
        let mut a_rng = Blake3Rng::from_seed_labeled(&ct.seed, "bfv-seeded-c1");
        let c1 = RnsPoly::sample_uniform(&mut a_rng, &self.data);
        Ciphertext {
            parts: vec![ct.c0.clone(), c1],
        }
    }

    /// A decryptor bound to `sk`.
    pub fn decryptor<'a>(&'a self, sk: &'a SecretKey) -> Decryptor<'a> {
        Decryptor { ctx: self, sk }
    }

    /// The homomorphic evaluator.
    pub fn evaluator(&self) -> Evaluator<'_> {
        Evaluator { ctx: self }
    }
}

/// A symmetric-key ciphertext in seed-compressed form: the uniform `c1`
/// component is represented by the 32-byte PRNG seed that regenerates it,
/// so the client uploads `N·(k−1)·8 + 32` bytes instead of twice that.
///
/// Only the key holder can produce these (symmetric encryption), which is
/// exactly the client-aided upload direction.
#[derive(Debug, Clone)]
pub struct SeededCiphertext {
    c0: RnsPoly,
    seed: [u8; 32],
}

impl SeededCiphertext {
    /// Wire size in bytes: one polynomial plus the seed.
    pub fn byte_size(&self) -> usize {
        self.c0.row_count() * self.c0.degree() * 8 + 32
    }
}

/// Encrypts plaintexts under a public key (paper Eq. 2 / Fig. 5 dataflow).
#[derive(Debug)]
pub struct Encryptor<'a> {
    ctx: &'a BfvContext,
    pk: &'a PublicKey,
}

impl Encryptor<'_> {
    /// Encrypts a plaintext:
    /// `c1 = P1·u + e2`, `c0 = P0·u + e1 + Δ·m`.
    // choco-lint: secret
    pub fn encrypt(&self, pt: &Plaintext, rng: &mut Blake3Rng) -> Ciphertext {
        let ctx = self.ctx;
        let data = &*ctx.data;
        let u = RnsPoly::sample_ternary(rng, data);
        let e1 = RnsPoly::sample_error(rng, data);
        let e2 = RnsPoly::sample_error(rng, data);
        let mut c0 = self.pk.p0.mul_poly(&u, data);
        c0.add_assign_poly(&e1, data);
        // Δ·m: plaintext lifted into each residue then scaled by Δ mod q_i.
        let mut dm = RnsPoly::from_unsigned(pt.coeffs(), data);
        dm.scalar_mul_per_row(&ctx.delta_mod_qi, data);
        c0.add_assign_poly(&dm, data);
        let mut c1 = self.pk.p1.mul_poly(&u, data);
        c1.add_assign_poly(&e2, data);
        Ciphertext {
            parts: vec![c0, c1],
        }
    }

    /// Encrypts the all-zero plaintext (used by protocols to mask values).
    pub fn encrypt_zero(&self, rng: &mut Blake3Rng) -> Ciphertext {
        let zeros = Plaintext::from_coeffs(vec![0; self.ctx.degree()]);
        self.encrypt(&zeros, rng)
    }
}

/// Decrypts ciphertexts and measures noise budgets (paper Eq. 3).
#[derive(Debug)]
pub struct Decryptor<'a> {
    ctx: &'a BfvContext,
    sk: &'a SecretKey,
}

impl Decryptor<'_> {
    /// The basis a ciphertext lives in (full data modulus, or a prefix after
    /// modulus switching).
    fn basis_of(&self, ct: &Ciphertext) -> &RnsBasis {
        &self.ctx.level_bases[ct.parts[0].row_count() - 1]
    }

    /// Computes `x = c0 + c1·s (+ c2·s²)` over the ciphertext's basis.
    // choco-lint: secret
    fn dot_with_secret(&self, ct: &Ciphertext) -> RnsPoly {
        let basis = self.basis_of(ct);
        let s = self.sk.full.prefix(basis.len());
        let mut x = ct.parts[0].clone();
        let mut s_pow = s.clone();
        for part in &ct.parts[1..] {
            x.add_assign_poly(&part.mul_poly(&s_pow, basis), basis);
            s_pow = s_pow.mul_poly(&s, basis);
        }
        x
    }

    /// Decrypts: `m = ⌊t·x/q⌉ mod t` per coefficient.
    // choco-lint: secret
    pub fn decrypt(&self, ct: &Ciphertext) -> Plaintext {
        let ctx = self.ctx;
        let basis = self.basis_of(ct);
        let x = self.dot_with_secret(ct);
        let q = basis.modulus();
        let n = ctx.degree();
        let mut out = vec![0u64; n];
        for j in 0..n {
            let residues: Vec<u64> = (0..basis.len()).map(|i| x.row(i)[j]).collect();
            let v = basis.compose(&residues);
            let y = v.mul_u64(ctx.t).div_round(q);
            out[j] = y.rem_u64(ctx.t);
        }
        Plaintext::from_coeffs(out)
    }

    /// SEAL-style invariant noise budget in bits:
    /// `log2(q/t) − 1 − log2‖v‖∞` where `v = x − Δ·m (mod q)` centered.
    /// Returns 0 when the budget is exhausted.
    pub fn invariant_noise_budget(&self, ct: &Ciphertext) -> f64 {
        let ctx = self.ctx;
        let basis = self.basis_of(ct);
        let delta = &ctx.level_deltas[ct.parts[0].row_count() - 1];
        let x = self.dot_with_secret(ct);
        let m = self.decrypt(ct);
        let q = basis.modulus();
        let half = q.shr(1);
        let n = ctx.degree();
        let mut max_log = f64::NEG_INFINITY;
        for j in 0..n {
            let residues: Vec<u64> = (0..basis.len()).map(|i| x.row(i)[j]).collect();
            let v = basis.compose(&residues);
            // v_noise = x - Δ·m mod q, centered.
            let dm = delta.mul_u64(m.coeffs()[j]);
            let diff = if v >= dm {
                v.sub(&dm)
            } else {
                q.sub(&dm.sub(&v).divrem(q).1)
            };
            let centered = if diff > half { q.sub(&diff) } else { diff };
            let l = centered.log2();
            if l > max_log {
                max_log = l;
            }
        }
        let budget = q.log2() - (ctx.t as f64).log2() - 1.0 - max_log.max(0.0);
        budget.max(0.0)
    }
}

/// Homomorphic operations over BFV ciphertexts.
#[derive(Debug)]
pub struct Evaluator<'a> {
    ctx: &'a BfvContext,
}

impl Evaluator<'_> {
    /// Homomorphic addition.
    ///
    /// # Errors
    ///
    /// Returns [`HeError::Mismatch`] when sizes differ.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, HeError> {
        if a.size() != b.size() {
            return Err(HeError::Mismatch(format!(
                "ciphertext sizes {} vs {}",
                a.size(),
                b.size()
            )));
        }
        let data = &*self.ctx.data;
        let parts = a
            .parts
            .iter()
            .zip(&b.parts)
            .map(|(x, y)| crate::rnspoly::add(x, y, data))
            .collect();
        Ok(Ciphertext { parts })
    }

    /// Homomorphic subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`HeError::Mismatch`] when sizes differ.
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, HeError> {
        if a.size() != b.size() {
            return Err(HeError::Mismatch("size mismatch".into()));
        }
        let data = &*self.ctx.data;
        let parts = a
            .parts
            .iter()
            .zip(&b.parts)
            .map(|(x, y)| crate::rnspoly::sub(x, y, data))
            .collect();
        Ok(Ciphertext { parts })
    }

    /// Negation.
    pub fn negate(&self, a: &Ciphertext) -> Ciphertext {
        let data = &*self.ctx.data;
        let parts = a
            .parts
            .iter()
            .map(|p| {
                let mut p = p.clone();
                p.neg_assign_poly(data);
                p
            })
            .collect();
        Ciphertext { parts }
    }

    /// Adds a plaintext: `c0 += Δ·m`.
    pub fn add_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        let ctx = self.ctx;
        let data = &*ctx.data;
        let mut dm = RnsPoly::from_unsigned(pt.coeffs(), data);
        dm.scalar_mul_per_row(&ctx.delta_mod_qi, data);
        let mut out = a.clone();
        out.parts[0].add_assign_poly(&dm, data);
        out
    }

    /// Multiplies by a plaintext polynomial (the workhorse of encrypted
    /// linear algebra — Table 1's "Plaintext Multiply").
    pub fn multiply_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        let data = &*self.ctx.data;
        let parts = a
            .parts
            .iter()
            .map(|p| p.mul_small_poly(pt.coeffs(), data))
            .collect();
        Ciphertext { parts }
    }

    /// Ciphertext–ciphertext multiplication producing a 3-component result
    /// (relinearize to get back to 2).
    ///
    /// # Errors
    ///
    /// Returns [`HeError::InvalidCiphertext`] unless both inputs have 2
    /// components.
    pub fn multiply(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, HeError> {
        if a.size() != 2 || b.size() != 2 {
            return Err(HeError::InvalidCiphertext(
                "multiply requires 2-component operands".into(),
            ));
        }
        let ctx = self.ctx;
        let ext = &*ctx.ext;
        // Lift all four polynomials exactly into the extended basis.
        let mut lifted: Vec<RnsPoly> = [&a.parts[0], &a.parts[1], &b.parts[0], &b.parts[1]]
            .iter()
            .map(|p| ctx.lift_to_ext(p))
            .collect();
        for p in lifted.iter_mut() {
            p.ntt_forward(ext);
        }
        let (a0, a1, b0, b1) = (&lifted[0], &lifted[1], &lifted[2], &lifted[3]);
        let k = ext.len();
        let n = ctx.degree();
        let mut d0 = RnsPoly::zero(k, n);
        let mut d1 = RnsPoly::zero(k, n);
        let mut d2 = RnsPoly::zero(k, n);
        d0.dyadic_accumulate(a0, b0, ext);
        d1.dyadic_accumulate(a0, b1, ext);
        d1.dyadic_accumulate(a1, b0, ext);
        d2.dyadic_accumulate(a1, b1, ext);
        for d in [&mut d0, &mut d1, &mut d2] {
            d.ntt_inverse(ext);
        }
        // Scale each exact tensor component by t/q with rounding.
        let parts = vec![
            ctx.scale_from_ext(&d0),
            ctx.scale_from_ext(&d1),
            ctx.scale_from_ext(&d2),
        ];
        Ok(Ciphertext { parts })
    }

    /// Relinearizes a 3-component ciphertext back to 2 components.
    ///
    /// # Errors
    ///
    /// Returns [`HeError::InvalidCiphertext`] for other sizes.
    pub fn relinearize(&self, a: &Ciphertext, rk: &RelinKey) -> Result<Ciphertext, HeError> {
        if a.size() != 3 {
            return Err(HeError::InvalidCiphertext(
                "relinearize requires a 3-component ciphertext".into(),
            ));
        }
        let ctx = self.ctx;
        let (k0, k1) = apply_ksk(&a.parts[2], &rk.ksk, &ctx.full, &ctx.data);
        let mut c0 = a.parts[0].clone();
        c0.add_assign_poly(&k0, &ctx.data);
        let mut c1 = a.parts[1].clone();
        c1.add_assign_poly(&k1, &ctx.data);
        Ok(Ciphertext {
            parts: vec![c0, c1],
        })
    }

    /// Convenience: multiply then relinearize.
    ///
    /// # Errors
    ///
    /// Propagates [`Evaluator::multiply`] / [`Evaluator::relinearize`] errors.
    pub fn multiply_relin(
        &self,
        a: &Ciphertext,
        b: &Ciphertext,
        rk: &RelinKey,
    ) -> Result<Ciphertext, HeError> {
        let prod = self.multiply(a, b)?;
        self.relinearize(&prod, rk)
    }

    /// Applies a raw Galois automorphism with key switching.
    ///
    /// # Errors
    ///
    /// [`HeError::MissingGaloisKey`] if `gk` lacks the element;
    /// [`HeError::InvalidCiphertext`] for non-2-component inputs.
    pub fn apply_galois(
        &self,
        a: &Ciphertext,
        element: u64,
        gk: &GaloisKeys,
    ) -> Result<Ciphertext, HeError> {
        if a.size() != 2 {
            return Err(HeError::InvalidCiphertext(
                "galois requires a 2-component ciphertext (relinearize first)".into(),
            ));
        }
        let ksk = gk
            .keys
            .get(&element)
            .ok_or(HeError::MissingGaloisKey(element))?;
        let ctx = self.ctx;
        let data = &*ctx.data;
        let c0g = a.parts[0].galois(element, data);
        let c1g = a.parts[1].galois(element, data);
        let (k0, k1) = apply_ksk(&c1g, ksk, &ctx.full, data);
        let mut c0 = c0g;
        c0.add_assign_poly(&k0, data);
        Ok(Ciphertext {
            parts: vec![c0, k1],
        })
    }

    /// Applies many Galois automorphisms to the *same* ciphertext with one
    /// shared ("hoisted") decomposition: the expensive digit decomposition +
    /// forward NTTs of `c1` run once, and each element costs only a cheap
    /// NTT-domain permutation plus multiply-accumulate against its key.
    ///
    /// The outputs decrypt identically to [`Evaluator::apply_galois`] on
    /// each element, with the same noise growth (the permuted digits have
    /// the same magnitudes as freshly decomposed ones).
    ///
    /// # Errors
    ///
    /// [`HeError::MissingGaloisKey`] if `gk` lacks any element;
    /// [`HeError::InvalidCiphertext`] for non-2-component inputs.
    pub fn apply_galois_many(
        &self,
        a: &Ciphertext,
        elements: &[u64],
        gk: &GaloisKeys,
    ) -> Result<Vec<Ciphertext>, HeError> {
        if a.size() != 2 {
            return Err(HeError::InvalidCiphertext(
                "galois requires a 2-component ciphertext (relinearize first)".into(),
            ));
        }
        let ctx = self.ctx;
        let data = &*ctx.data;
        let n = ctx.degree();
        // Decompose c1 once; every element below reuses these digits.
        let hoisted = hoist_decompose(&a.parts[1], &ctx.full, data);
        elements
            .iter()
            .map(|&element| {
                let ksk = gk
                    .keys
                    .get(&element)
                    .ok_or(HeError::MissingGaloisKey(element))?;
                let perm = galois_ntt_permutation(n, element);
                let (k0, k1) = apply_ksk_hoisted(&hoisted, Some(&perm), ksk, &ctx.full, data);
                let mut c0 = a.parts[0].galois(element, data);
                c0.add_assign_poly(&k0, data);
                Ok(Ciphertext {
                    parts: vec![c0, k1],
                })
            })
            .collect()
    }

    /// Rotates batched rows by each of `steps` (positive = left) from the
    /// same input, sharing one hoisted decomposition across all rotations —
    /// the fast path for diagonal-method matvec and rotate-reduce kernels.
    ///
    /// # Errors
    ///
    /// Propagates [`Evaluator::apply_galois_many`] errors.
    pub fn rotate_rows_many(
        &self,
        a: &Ciphertext,
        steps: &[i64],
        gk: &GaloisKeys,
    ) -> Result<Vec<Ciphertext>, HeError> {
        let n = self.ctx.degree();
        let elements: Vec<u64> = steps.iter().map(|&s| galois_element_rows(s, n)).collect();
        self.apply_galois_many(a, &elements, gk)
    }

    /// Inner product against plaintext vectors: `Σ_i ct_i · pt_i` computed
    /// with a single NTT-domain accumulation — one forward transform per
    /// ciphertext row and one inverse per output row, instead of the
    /// forward+inverse per term that `multiply_plain`+`add` chains pay.
    /// The result is bit-identical to that chain (all arithmetic is exact).
    ///
    /// # Errors
    ///
    /// [`HeError::Mismatch`] on empty or unequal-length inputs or mixed
    /// levels; [`HeError::InvalidCiphertext`] unless every ciphertext has 2
    /// components.
    pub fn dot_plain(&self, cts: &[Ciphertext], pts: &[Plaintext]) -> Result<Ciphertext, HeError> {
        if cts.is_empty() || cts.len() != pts.len() {
            return Err(HeError::Mismatch(format!(
                "dot_plain needs matching non-empty inputs ({} cts, {} pts)",
                cts.len(),
                pts.len()
            )));
        }
        if cts.iter().any(|c| c.size() != 2) {
            return Err(HeError::InvalidCiphertext(
                "dot_plain requires 2-component ciphertexts".into(),
            ));
        }
        let rows = cts[0].parts[0].row_count();
        if cts.iter().any(|c| c.parts[0].row_count() != rows) {
            return Err(HeError::Mismatch("dot_plain inputs at mixed levels".into()));
        }
        let ctx = self.ctx;
        let basis = &*ctx.level_bases[rows - 1];
        let n = ctx.degree();
        if pts.iter().any(|p| p.coeffs().len() != n) {
            return Err(HeError::Mismatch("plaintext degree mismatch".into()));
        }
        let acc: Vec<(Vec<u64>, Vec<u64>)> = par::par_map_range(rows, |i| {
            let q = basis.primes()[i];
            let table = &basis.ntt_tables()[i];
            // Raw u128 accumulation: products stay below 2^122, so 32 terms
            // fit before a lazy reduction. The modular sum is unique, so the
            // result is bit-identical to a multiply_plain/add chain.
            let mut acc0 = PolyPool::take_zeroed_u128(n);
            let mut acc1 = PolyPool::take_zeroed_u128(n);
            let mut ct_ntt = PolyPool::take_scratch(n);
            let mut pt_ntt = PolyPool::take_scratch(n);
            for (term, (ct, pt)) in cts.iter().zip(pts).enumerate() {
                if term > 0 && term % 32 == 0 {
                    for v in acc0.iter_mut().chain(acc1.iter_mut()) {
                        *v %= q as u128;
                    }
                }
                for (dst, &coeff) in pt_ntt.iter_mut().zip(pt.coeffs()) {
                    *dst = coeff % q;
                }
                table.forward(&mut pt_ntt);
                for (part, acc) in ct.parts.iter().zip([&mut acc0, &mut acc1]) {
                    ct_ntt.copy_from_slice(part.row(i));
                    table.forward(&mut ct_ntt);
                    for ((slot, &cv), &pv) in acc.iter_mut().zip(&ct_ntt).zip(&pt_ntt) {
                        *slot += cv as u128 * pv as u128;
                    }
                }
            }
            let reduce = |acc: Vec<u128>| -> Vec<u64> {
                let mut out = PolyPool::take_scratch(acc.len());
                for (x, &v) in out.iter_mut().zip(&acc) {
                    *x = (v % q as u128) as u64;
                }
                PolyPool::recycle_u128(acc);
                out
            };
            let mut acc0 = reduce(acc0);
            let mut acc1 = reduce(acc1);
            table.inverse(&mut acc0);
            table.inverse(&mut acc1);
            PolyPool::recycle(ct_ntt);
            PolyPool::recycle(pt_ntt);
            (acc0, acc1)
        });
        let (rows0, rows1): (Vec<_>, Vec<_>) = acc.into_iter().unzip();
        Ok(Ciphertext {
            parts: vec![RnsPoly::from_rows(rows0), RnsPoly::from_rows(rows1)],
        })
    }

    /// Fused rotate-and-dot: computes `Σ_k rotate_rows(a, s_k) ⊙ pt_k`
    /// (step 0 meaning `a` itself) with *double hoisting* — the key-switch
    /// decomposition of `a` is shared by every rotation (first hoisting),
    /// and the switched terms are summed over the extended ks basis while
    /// still carrying the special-prime factor `P`, so the whole dot
    /// product pays a single rounded `mod_down` (second hoisting) instead
    /// of one per rotation. Everything stays in the NTT domain until the
    /// final pair of inverse transforms.
    ///
    /// Decrypts to exactly the same plaintext as the equivalent
    /// `rotate_rows` / `multiply_plain` / `add` chain, with *less* noise:
    /// one key-switch rounding for the sum instead of one scaled by each
    /// `pt_k` (the ciphertext bits differ for that reason).
    ///
    /// # Errors
    ///
    /// Returns [`HeError::Mismatch`] for empty input or plaintext length
    /// mismatches, [`HeError::InvalidCiphertext`] unless `a` has exactly two
    /// components, and [`HeError::MissingGaloisKey`] when a step's key is
    /// absent from `gk`.
    pub fn dot_rotations_plain(
        &self,
        a: &Ciphertext,
        pairs: &[(i64, Plaintext)],
        gk: &GaloisKeys,
    ) -> Result<Ciphertext, HeError> {
        if pairs.is_empty() {
            return Err(HeError::Mismatch("dot_rotations_plain needs terms".into()));
        }
        if a.size() != 2 {
            return Err(HeError::InvalidCiphertext(
                "dot_rotations_plain requires a 2-component ciphertext".into(),
            ));
        }
        let ctx = self.ctx;
        let data = &*ctx.data;
        let ks_basis = &*ctx.full;
        let n = ctx.degree();
        if pairs.iter().any(|(_, p)| p.coeffs().len() != n) {
            return Err(HeError::Mismatch("plaintext degree mismatch".into()));
        }
        let rows = data.len();
        let k = ks_basis.len();
        let mut c0_ntt = a.parts[0].clone();
        c0_ntt.ntt_forward(data);
        let mut c1_ntt = a.parts[1].clone();
        c1_ntt.ntt_forward(data);
        let hoisted = hoist_decompose(&a.parts[1], ks_basis, data);
        // Per ks prime: the P-scaled key-switch sums (sw0, sw1), and for the
        // data primes also the unswitched sums Σ pt ⊙ perm(c0) / Σ pt ⊙ c1.
        // u128 slots absorb up to 32 unreduced products (primes < 2^61).
        struct RowAcc {
            sw0: Vec<u128>,
            sw1: Vec<u128>,
            plain0: Vec<u128>,
            plain1: Vec<u128>,
        }
        let mut acc: Vec<RowAcc> = (0..k)
            .map(|i| {
                let data_row = if i < rows { n } else { 0 };
                RowAcc {
                    sw0: PolyPool::take_zeroed_u128(n),
                    sw1: PolyPool::take_zeroed_u128(n),
                    plain0: PolyPool::take_zeroed_u128(data_row),
                    plain1: PolyPool::take_zeroed_u128(data_row),
                }
            })
            .collect();
        for (term, (step, pt)) in pairs.iter().enumerate() {
            let switched = if *step == 0 {
                None
            } else {
                let element = galois_element_rows(*step, n);
                let ksk = gk
                    .keys
                    .get(&element)
                    .ok_or(HeError::MissingGaloisKey(element))?;
                let perm = galois_ntt_permutation(n, element);
                let (s0, s1) = hoisted_accumulate(&hoisted, Some(&perm), ksk, ks_basis);
                Some((s0, s1, perm))
            };
            let flush = term > 0 && term % 32 == 0;
            par::par_for_each_mut(&mut acc, |i, row| {
                let q = ks_basis.primes()[i];
                if flush {
                    for v in row
                        .sw0
                        .iter_mut()
                        .chain(row.sw1.iter_mut())
                        .chain(row.plain0.iter_mut())
                        .chain(row.plain1.iter_mut())
                    {
                        *v %= q as u128;
                    }
                }
                let mut pt_ntt = PolyPool::take_scratch(n);
                for (x, &c) in pt_ntt.iter_mut().zip(pt.coeffs()) {
                    *x = c % q;
                }
                ks_basis.ntt_tables()[i].forward(&mut pt_ntt);
                match &switched {
                    None => {
                        if i < rows {
                            let (r0, r1) = (c0_ntt.row(i), c1_ntt.row(i));
                            for c in 0..n {
                                row.plain0[c] += pt_ntt[c] as u128 * r0[c] as u128;
                                row.plain1[c] += pt_ntt[c] as u128 * r1[c] as u128;
                            }
                        }
                    }
                    Some((s0, s1, perm)) => {
                        let (s0r, s1r) = (s0.row(i), s1.row(i));
                        for c in 0..n {
                            row.sw0[c] += pt_ntt[c] as u128 * s0r[c] as u128;
                            row.sw1[c] += pt_ntt[c] as u128 * s1r[c] as u128;
                        }
                        if i < rows {
                            let r0 = c0_ntt.row(i);
                            for c in 0..n {
                                row.plain0[c] += pt_ntt[c] as u128 * r0[perm[c]] as u128;
                            }
                        }
                    }
                }
                PolyPool::recycle(pt_ntt);
            });
        }
        // Second hoisting: one rounded mod_down for the whole switched sum.
        let reduce = |acc: &[u128], q: u64| -> Vec<u64> {
            let mut out = PolyPool::take_scratch(acc.len());
            for (x, &v) in out.iter_mut().zip(acc) {
                *x = (v % q as u128) as u64;
            }
            out
        };
        let sw0 = RnsPoly::from_rows(
            (0..k)
                .map(|i| reduce(&acc[i].sw0, ks_basis.primes()[i]))
                .collect(),
        );
        let sw1 = RnsPoly::from_rows(
            (0..k)
                .map(|i| reduce(&acc[i].sw1, ks_basis.primes()[i]))
                .collect(),
        );
        let m0 = mod_down_ntt(&sw0, ks_basis, data);
        let m1 = mod_down_ntt(&sw1, ks_basis, data);
        let out: Vec<(Vec<u64>, Vec<u64>)> = par::par_map_range(rows, |i| {
            let q = data.primes()[i];
            let table = &data.ntt_tables()[i];
            let mut r0 = reduce(&acc[i].plain0, q);
            let mut r1 = reduce(&acc[i].plain1, q);
            for (dst, &m) in r0.iter_mut().zip(m0.row(i)) {
                *dst = add_mod(*dst, m, q);
            }
            for (dst, &m) in r1.iter_mut().zip(m1.row(i)) {
                *dst = add_mod(*dst, m, q);
            }
            table.inverse(&mut r0);
            table.inverse(&mut r1);
            (r0, r1)
        });
        for row_acc in acc {
            PolyPool::recycle_u128(row_acc.sw0);
            PolyPool::recycle_u128(row_acc.sw1);
            PolyPool::recycle_u128(row_acc.plain0);
            PolyPool::recycle_u128(row_acc.plain1);
        }
        let (rows0, rows1): (Vec<_>, Vec<_>) = out.into_iter().unzip();
        Ok(Ciphertext {
            parts: vec![RnsPoly::from_rows(rows0), RnsPoly::from_rows(rows1)],
        })
    }

    /// Switches a ciphertext down one modulus level (drops the last data
    /// prime with rounding): the message is preserved, the wire size shrinks
    /// by one residue per component, and a little noise headroom is spent.
    /// CHOCO clients use this to compress server→client downloads.
    ///
    /// # Errors
    ///
    /// Returns [`HeError::Mismatch`] when the ciphertext is already at the
    /// lowest level.
    pub fn mod_switch_to_next(&self, a: &Ciphertext) -> Result<Ciphertext, HeError> {
        let rows = a.parts[0].row_count();
        if rows <= 1 {
            return Err(HeError::Mismatch(
                "cannot modulus-switch below one residue".into(),
            ));
        }
        let cur = &*self.ctx.level_bases[rows - 1];
        let next = &*self.ctx.level_bases[rows - 2];
        let parts = a
            .parts
            .iter()
            .map(|p| crate::keyswitch::mod_down(p, cur, next))
            .collect();
        Ok(Ciphertext { parts })
    }

    /// Rotates batched rows by `steps` (positive = left).
    ///
    /// # Errors
    ///
    /// Propagates [`Evaluator::apply_galois`] errors.
    pub fn rotate_rows(
        &self,
        a: &Ciphertext,
        steps: i64,
        gk: &GaloisKeys,
    ) -> Result<Ciphertext, HeError> {
        let e = galois_element_rows(steps, self.ctx.degree());
        self.apply_galois(a, e, gk)
    }

    /// Swaps the two batched rows.
    ///
    /// # Errors
    ///
    /// Propagates [`Evaluator::apply_galois`] errors.
    pub fn rotate_columns(&self, a: &Ciphertext, gk: &GaloisKeys) -> Result<Ciphertext, HeError> {
        let e = galois_element_columns(self.ctx.degree());
        self.apply_galois(a, e, gk)
    }
}

impl BfvContext {
    /// Exactly lifts a data-basis polynomial (centered) into the extended
    /// multiplication basis.
    fn lift_to_ext(&self, p: &RnsPoly) -> RnsPoly {
        let n = self.degree();
        let ext = &*self.ext;
        let data = &*self.data;
        let mut out = RnsPoly::zero(ext.len(), n);
        for j in 0..n {
            let (mag, neg) = p.coeff_centered(j, data);
            let residues = ext.decompose_signed(&mag, neg);
            for (i, r) in residues.into_iter().enumerate() {
                out.row_mut(i)[j] = r;
            }
        }
        out
    }

    /// Composes an extended-basis polynomial (exact signed integers), scales
    /// by `t/q` with rounding, and reduces into the data basis.
    fn scale_from_ext(&self, p: &RnsPoly) -> RnsPoly {
        let n = self.degree();
        let ext = &*self.ext;
        let data = &*self.data;
        let q = data.modulus();
        let mut out = RnsPoly::zero(data.len(), n);
        for j in 0..n {
            let (mag, neg) = p.coeff_centered(j, ext);
            let y = mag.mul_u64(self.t).div_round(q);
            let residues = data.decompose_signed(&y, neg);
            for (i, r) in residues.into_iter().enumerate() {
                out.row_mut(i)[j] = r;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small but real parameter set: N=1024 (insecure, test-only).
    fn ctx_small() -> BfvContext {
        let params = HeParams::bfv_insecure(1024, &[40, 40, 41], 17).unwrap();
        BfvContext::new(&params).unwrap()
    }

    fn rng() -> Blake3Rng {
        Blake3Rng::from_seed(b"bfv tests")
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let ctx = ctx_small();
        let mut rng = rng();
        let keys = ctx.keygen(&mut rng);
        let t = ctx.plain_modulus();
        let coeffs: Vec<u64> = (0..ctx.degree() as u64).map(|i| (i * 37) % t).collect();
        let pt = Plaintext::from_coeffs(coeffs.clone());
        let ct = ctx.encryptor(keys.public_key()).encrypt(&pt, &mut rng);
        let out = ctx.decryptor(keys.secret_key()).decrypt(&ct);
        assert_eq!(out.coeffs(), &coeffs[..]);
    }

    #[test]
    fn fresh_ciphertext_has_healthy_noise_budget() {
        let ctx = ctx_small();
        let mut rng = rng();
        let keys = ctx.keygen(&mut rng);
        let pt = Plaintext::from_coeffs(vec![1; ctx.degree()]);
        let ct = ctx.encryptor(keys.public_key()).encrypt(&pt, &mut rng);
        let budget = ctx.decryptor(keys.secret_key()).invariant_noise_budget(&ct);
        // q_data = 80 bits, t = 17 bits, noise ~ 2^9 → expect ~52 bits.
        assert!(budget > 30.0, "budget {budget}");
        assert!(budget < 70.0, "budget {budget}");
    }

    #[test]
    fn homomorphic_addition() {
        let ctx = ctx_small();
        let mut rng = rng();
        let keys = ctx.keygen(&mut rng);
        let t = ctx.plain_modulus();
        let a: Vec<u64> = (0..ctx.degree() as u64).map(|i| i % t).collect();
        let b: Vec<u64> = (0..ctx.degree() as u64).map(|i| (i * 3 + 1) % t).collect();
        let enc = ctx.encryptor(keys.public_key());
        let ca = enc.encrypt(&Plaintext::from_coeffs(a.clone()), &mut rng);
        let cb = enc.encrypt(&Plaintext::from_coeffs(b.clone()), &mut rng);
        let sum = ctx.evaluator().add(&ca, &cb).unwrap();
        let out = ctx.decryptor(keys.secret_key()).decrypt(&sum);
        for i in 0..ctx.degree() {
            assert_eq!(out.coeffs()[i], (a[i] + b[i]) % t);
        }
    }

    #[test]
    fn add_plain_and_sub() {
        let ctx = ctx_small();
        let mut rng = rng();
        let keys = ctx.keygen(&mut rng);
        let t = ctx.plain_modulus();
        let a = vec![5u64; ctx.degree()];
        let b = vec![3u64; ctx.degree()];
        let enc = ctx.encryptor(keys.public_key());
        let ca = enc.encrypt(&Plaintext::from_coeffs(a), &mut rng);
        let with_plain = ctx.evaluator().add_plain(&ca, &Plaintext::from_coeffs(b));
        let out = ctx.decryptor(keys.secret_key()).decrypt(&with_plain);
        assert!(out.coeffs().iter().all(|&c| c == 8));

        let cb = enc.encrypt(&Plaintext::from_coeffs(vec![1u64; ctx.degree()]), &mut rng);
        let diff = ctx.evaluator().sub(&with_plain, &cb).unwrap();
        let out = ctx.decryptor(keys.secret_key()).decrypt(&diff);
        assert!(out.coeffs().iter().all(|&c| c == 7));

        let neg = ctx.evaluator().negate(&diff);
        let out = ctx.decryptor(keys.secret_key()).decrypt(&neg);
        assert!(out.coeffs().iter().all(|&c| c == t - 7));
    }

    #[test]
    fn multiply_plain_polynomial_semantics() {
        // Multiplying by the monomial x shifts coefficients negacyclically.
        let ctx = ctx_small();
        let mut rng = rng();
        let keys = ctx.keygen(&mut rng);
        let t = ctx.plain_modulus();
        let n = ctx.degree();
        let mut msg = vec![0u64; n];
        msg[0] = 7;
        msg[n - 1] = 2;
        let enc = ctx.encryptor(keys.public_key());
        let ct = enc.encrypt(&Plaintext::from_coeffs(msg), &mut rng);
        let mut x = vec![0u64; n];
        x[1] = 1;
        let prod = ctx
            .evaluator()
            .multiply_plain(&ct, &Plaintext::from_coeffs(x));
        let out = ctx.decryptor(keys.secret_key()).decrypt(&prod);
        assert_eq!(out.coeffs()[1], 7);
        assert_eq!(out.coeffs()[0], t - 2); // wrapped with sign flip
    }

    #[test]
    fn ciphertext_multiply_and_relinearize() {
        let ctx = ctx_small();
        let mut rng = rng();
        let keys = ctx.keygen(&mut rng);
        let rk = ctx.relin_key(keys.secret_key(), &mut rng).unwrap();
        let n = ctx.degree();
        // constant polynomials 6 and 7 → product constant 42.
        let mut a = vec![0u64; n];
        a[0] = 6;
        let mut b = vec![0u64; n];
        b[0] = 7;
        let enc = ctx.encryptor(keys.public_key());
        let ca = enc.encrypt(&Plaintext::from_coeffs(a), &mut rng);
        let cb = enc.encrypt(&Plaintext::from_coeffs(b), &mut rng);
        let prod = ctx.evaluator().multiply(&ca, &cb).unwrap();
        assert_eq!(prod.size(), 3);
        // Degree-2 decryption works directly.
        let out = ctx.decryptor(keys.secret_key()).decrypt(&prod);
        assert_eq!(out.coeffs()[0], 42);
        assert!(out.coeffs()[1..].iter().all(|&c| c == 0));
        // And after relinearization.
        let rel = ctx.evaluator().relinearize(&prod, &rk).unwrap();
        assert_eq!(rel.size(), 2);
        let out = ctx.decryptor(keys.secret_key()).decrypt(&rel);
        assert_eq!(out.coeffs()[0], 42);
    }

    #[test]
    fn multiply_consumes_noise_budget() {
        let ctx = ctx_small();
        let mut rng = rng();
        let keys = ctx.keygen(&mut rng);
        let rk = ctx.relin_key(keys.secret_key(), &mut rng).unwrap();
        let enc = ctx.encryptor(keys.public_key());
        let dec = ctx.decryptor(keys.secret_key());
        let pt = Plaintext::from_coeffs(vec![2; ctx.degree()]);
        let ct = enc.encrypt(&pt, &mut rng);
        let fresh = dec.invariant_noise_budget(&ct);
        let prod = ctx.evaluator().multiply_relin(&ct, &ct, &rk).unwrap();
        let after = dec.invariant_noise_budget(&prod);
        assert!(after < fresh - 10.0, "fresh {fresh}, after {after}");
        assert!(after > 0.0, "multiplication should not exhaust the budget");
    }

    #[test]
    fn mismatched_sizes_error() {
        let ctx = ctx_small();
        let mut rng = rng();
        let keys = ctx.keygen(&mut rng);
        let enc = ctx.encryptor(keys.public_key());
        let pt = Plaintext::from_coeffs(vec![1; ctx.degree()]);
        let c2 = enc.encrypt(&pt, &mut rng);
        let c3 = ctx.evaluator().multiply(&c2, &c2).unwrap();
        assert!(matches!(
            ctx.evaluator().add(&c2, &c3).unwrap_err(),
            HeError::Mismatch(_)
        ));
        assert!(matches!(
            ctx.evaluator().multiply(&c2, &c3).unwrap_err(),
            HeError::InvalidCiphertext(_)
        ));
    }

    #[test]
    fn mod_switch_shrinks_ciphertexts_and_preserves_message() {
        let ctx = ctx_small();
        let mut rng = rng();
        let keys = ctx.keygen(&mut rng);
        let t = ctx.plain_modulus();
        let coeffs: Vec<u64> = (0..ctx.degree() as u64).map(|i| (i * 5 + 1) % t).collect();
        let pt = Plaintext::from_coeffs(coeffs.clone());
        let ct = ctx.encryptor(keys.public_key()).encrypt(&pt, &mut rng);
        let dec = ctx.decryptor(keys.secret_key());
        let before_bytes = ct.byte_size();
        let before_budget = dec.invariant_noise_budget(&ct);

        // Data modulus has 2 residues; switching drops to 1 → half the bytes.
        let switched = ctx.evaluator().mod_switch_to_next(&ct).unwrap();
        assert_eq!(switched.byte_size(), before_bytes / 2);
        let out = dec.decrypt(&switched);
        assert_eq!(out.coeffs(), &coeffs[..]);
        // Budget shrinks with the modulus but stays positive.
        let after_budget = dec.invariant_noise_budget(&switched);
        assert!(after_budget > 0.0);
        assert!(after_budget < before_budget);
        // And the floor is enforced.
        assert!(matches!(
            ctx.evaluator().mod_switch_to_next(&switched).unwrap_err(),
            HeError::Mismatch(_)
        ));
    }

    #[test]
    fn seeded_symmetric_encryption_roundtrips_at_half_the_bytes() {
        let ctx = ctx_small();
        let mut rng = rng();
        let keys = ctx.keygen(&mut rng);
        let t = ctx.plain_modulus();
        let coeffs: Vec<u64> = (0..ctx.degree() as u64).map(|i| (i * 11) % t).collect();
        let pt = Plaintext::from_coeffs(coeffs.clone());
        let seeded = ctx.encrypt_symmetric_seeded(&pt, keys.secret_key(), &mut rng);
        let expanded = ctx.expand_seeded(&seeded);
        // Half the wire bytes (plus the 32-byte seed).
        assert_eq!(seeded.byte_size(), expanded.byte_size() / 2 + 32);
        // Decrypts to the same plaintext.
        let out = ctx.decryptor(keys.secret_key()).decrypt(&expanded);
        assert_eq!(out.coeffs(), &coeffs[..]);
        // Noise budget comparable to asymmetric encryption (in fact better:
        // no pk re-randomization term).
        let asym = ctx.encryptor(keys.public_key()).encrypt(&pt, &mut rng);
        let dec = ctx.decryptor(keys.secret_key());
        assert!(dec.invariant_noise_budget(&expanded) >= dec.invariant_noise_budget(&asym) - 1.0);
        // Expanded ciphertexts compose with normal homomorphic ops.
        let sum = ctx.evaluator().add(&expanded, &asym).unwrap();
        let out = dec.decrypt(&sum);
        assert_eq!(out.coeffs()[1], (2 * coeffs[1]) % t);
    }

    #[test]
    fn seeded_expansion_is_deterministic() {
        let ctx = ctx_small();
        let mut rng = rng();
        let keys = ctx.keygen(&mut rng);
        let pt = Plaintext::from_coeffs(vec![3; ctx.degree()]);
        let seeded = ctx.encrypt_symmetric_seeded(&pt, keys.secret_key(), &mut rng);
        assert_eq!(ctx.expand_seeded(&seeded), ctx.expand_seeded(&seeded));
    }

    #[test]
    fn single_prime_params_reject_keyswitch_keys() {
        let params = HeParams::bfv_insecure(1024, &[40], 17).unwrap();
        let ctx = BfvContext::new(&params).unwrap();
        let mut rng = rng();
        let keys = ctx.keygen(&mut rng);
        assert!(matches!(
            ctx.relin_key(keys.secret_key(), &mut rng).unwrap_err(),
            HeError::NoSpecialPrime
        ));
    }
}
