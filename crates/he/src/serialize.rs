//! Wire formats for ciphertexts and plaintexts.
//!
//! The paper's communication accounting assumes `s · N · (k−1) · 8` bytes
//! per ciphertext (Table 3); this module makes that concrete: ciphertexts
//! serialize to exactly that many payload bytes plus a fixed header (magic,
//! component count, residue count / level, degree, and for CKKS the scale).
//! The ledger in `choco::protocol` counts payload bytes, so serialized sizes
//! and ledger sizes agree.
//!
//! Deserialization is fully checked: every read is bounds-validated and
//! malformed frames surface as [`HeError::InvalidCiphertext`], never as a
//! panic — the transport layer (`choco::transport`) feeds these functions
//! bytes that crossed a lossy link, so "attacker-shaped" input is the normal
//! case, not the exception. Integrity (detecting *valid-shaped but altered*
//! frames) is layered above via the transport's keyed BLAKE3 tags;
//! [`ciphertext_from_bytes`] alone accepts any well-formed frame.

use crate::bfv::{self, Ciphertext};
use crate::ckks::{self, CkksCiphertext};
use crate::error::HeError;
use crate::keyswitch::KswitchKey;
use crate::rnspoly::RnsPoly;
use std::collections::HashMap;

/// Magic tag for BFV ciphertext frames.
const MAGIC: [u8; 4] = *b"CHO1";

/// Magic tag for CKKS ciphertext frames.
const CKKS_MAGIC: [u8; 4] = *b"CHO2";

/// Magic tag for BFV key-bundle blobs.
const BFV_KEYS_MAGIC: [u8; 4] = *b"CHB1";

/// Magic tag for CKKS key-bundle blobs.
const CKKS_KEYS_MAGIC: [u8; 4] = *b"CHB2";

/// Magic tag for BFV relinearization-key blobs.
const BFV_RELIN_MAGIC: [u8; 4] = *b"CHR1";

/// Magic tag for CKKS relinearization-key blobs.
const CKKS_RELIN_MAGIC: [u8; 4] = *b"CHR2";

/// Magic tag for BFV Galois-key-set blobs.
const BFV_GALOIS_MAGIC: [u8; 4] = *b"CHG1";

/// Magic tag for CKKS Galois-key-set blobs.
const CKKS_GALOIS_MAGIC: [u8; 4] = *b"CHG2";

/// BFV header size in bytes (magic, parts, rows, degree).
pub const HEADER_BYTES: usize = 16;

/// CKKS header size in bytes (magic, parts, level, degree, scale).
pub const CKKS_HEADER_BYTES: usize = 24;

/// A bounds-checked little-endian reader over a byte slice.
struct Reader<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Reader<'a> {
    // choco-lint: ct-safe
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, off: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], HeError> {
        let end = self
            .off
            .checked_add(n)
            .ok_or_else(|| HeError::InvalidCiphertext("frame offset overflow".into()))?;
        if end > self.bytes.len() {
            return Err(HeError::InvalidCiphertext(format!(
                "truncated frame: need {end} bytes, have {}",
                self.bytes.len()
            )));
        }
        let out = &self.bytes[self.off..end];
        self.off = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, HeError> {
        let b = self.take(4)?;
        let mut buf = [0u8; 4];
        buf.copy_from_slice(b);
        Ok(u32::from_le_bytes(buf))
    }

    fn u64(&mut self) -> Result<u64, HeError> {
        let b = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(b);
        Ok(u64::from_le_bytes(buf))
    }

    fn f64(&mut self) -> Result<f64, HeError> {
        Ok(f64::from_bits(self.u64()?))
    }
}

/// Reads `parts` polynomials of `rows × n` little-endian residues.
// choco-lint: ct-safe
fn read_polys(
    r: &mut Reader<'_>,
    parts: usize,
    rows: usize,
    n: usize,
) -> Result<Vec<RnsPoly>, HeError> {
    let mut polys = Vec::with_capacity(parts);
    for _ in 0..parts {
        let mut rows_vec = Vec::with_capacity(rows);
        for _ in 0..rows {
            let mut row = Vec::with_capacity(n);
            for _ in 0..n {
                row.push(r.u64()?);
            }
            rows_vec.push(row);
        }
        polys.push(RnsPoly::from_rows(rows_vec));
    }
    Ok(polys)
}

/// Serializes a BFV ciphertext: 16-byte header + little-endian residues.
pub fn ciphertext_to_bytes(ct: &Ciphertext) -> Vec<u8> {
    let parts = ct.size();
    let rows = ct.part(0).row_count();
    let n = ct.part(0).degree();
    let mut out = Vec::with_capacity(HEADER_BYTES + parts * rows * n * 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(parts as u32).to_le_bytes());
    out.extend_from_slice(&(rows as u32).to_le_bytes());
    out.extend_from_slice(&(n as u32).to_le_bytes());
    for p in 0..parts {
        for r in 0..rows {
            for &c in ct.part(p).row(r) {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
    }
    out
}

/// Deserializes a BFV ciphertext frame.
///
/// # Errors
///
/// Returns [`HeError::InvalidCiphertext`] on malformed frames (bad magic,
/// truncated payload, or implausible shape). Never panics, regardless of
/// input bytes.
pub fn ciphertext_from_bytes(bytes: &[u8]) -> Result<Ciphertext, HeError> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != MAGIC {
        return Err(HeError::InvalidCiphertext("bad frame header".into()));
    }
    let parts = r.u32()? as usize;
    let rows = r.u32()? as usize;
    let n = r.u32()? as usize;
    if parts == 0 || parts > 3 || rows == 0 || rows > 32 || !n.is_power_of_two() {
        return Err(HeError::InvalidCiphertext("implausible frame shape".into()));
    }
    let expect = HEADER_BYTES + parts * rows * n * 8;
    if bytes.len() != expect {
        return Err(HeError::InvalidCiphertext(format!(
            "frame length {} != expected {expect}",
            bytes.len()
        )));
    }
    let polys = read_polys(&mut r, parts, rows, n)?;
    Ok(Ciphertext::from_parts(polys))
}

/// Serializes a CKKS ciphertext: 24-byte header (magic, parts, level,
/// degree, scale bits) + little-endian residues of each part at the
/// ciphertext's level.
pub fn ckks_ciphertext_to_bytes(ct: &CkksCiphertext) -> Vec<u8> {
    let parts = ct.size();
    let level = ct.level();
    let n = ct.part(0).degree();
    let mut out = Vec::with_capacity(CKKS_HEADER_BYTES + parts * level * n * 8);
    out.extend_from_slice(&CKKS_MAGIC);
    out.extend_from_slice(&(parts as u32).to_le_bytes());
    out.extend_from_slice(&(level as u32).to_le_bytes());
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&ct.scale().to_bits().to_le_bytes());
    for p in 0..parts {
        for r in 0..level {
            for &c in ct.part(p).row(r) {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
    }
    out
}

/// Deserializes a CKKS ciphertext frame.
///
/// # Errors
///
/// Returns [`HeError::InvalidCiphertext`] on malformed frames (bad magic,
/// truncated payload, implausible shape, or a non-finite / non-positive
/// scale). Never panics, regardless of input bytes.
pub fn ckks_ciphertext_from_bytes(bytes: &[u8]) -> Result<CkksCiphertext, HeError> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != CKKS_MAGIC {
        return Err(HeError::InvalidCiphertext("bad CKKS frame header".into()));
    }
    let parts = r.u32()? as usize;
    let level = r.u32()? as usize;
    let n = r.u32()? as usize;
    let scale = r.f64()?;
    if parts == 0 || parts > 3 || level == 0 || level > 32 || !n.is_power_of_two() {
        return Err(HeError::InvalidCiphertext(
            "implausible CKKS frame shape".into(),
        ));
    }
    if !scale.is_finite() || scale <= 0.0 {
        return Err(HeError::InvalidCiphertext(format!(
            "implausible CKKS scale {scale}"
        )));
    }
    let expect = CKKS_HEADER_BYTES + parts * level * n * 8;
    if bytes.len() != expect {
        return Err(HeError::InvalidCiphertext(format!(
            "CKKS frame length {} != expected {expect}",
            bytes.len()
        )));
    }
    let polys = read_polys(&mut r, parts, level, n)?;
    Ok(CkksCiphertext::from_parts(polys, level, scale))
}

// choco-lint: ct-safe
fn write_poly(out: &mut Vec<u8>, poly: &RnsPoly) {
    for r in 0..poly.row_count() {
        for &c in poly.row(r) {
            out.extend_from_slice(&c.to_le_bytes());
        }
    }
}

// choco-lint: ct-safe
fn bad_keys(msg: &str) -> HeError {
    HeError::InvalidKeyMaterial(msg.into())
}

/// Shared key-bundle wire core: magic, secret-key rows (full basis), public
/// rows (data basis), degree, then secret ‖ P0 ‖ P1 residues.
// choco-lint: ct-safe
fn keys_to_bytes_impl(magic: [u8; 4], secret: &RnsPoly, p0: &RnsPoly, p1: &RnsPoly) -> Vec<u8> {
    let full_rows = secret.row_count();
    let data_rows = p0.row_count();
    let n = secret.degree();
    let mut out = Vec::with_capacity(16 + (full_rows + 2 * data_rows) * n * 8);
    out.extend_from_slice(&magic);
    out.extend_from_slice(&(full_rows as u32).to_le_bytes());
    out.extend_from_slice(&(data_rows as u32).to_le_bytes());
    out.extend_from_slice(&(n as u32).to_le_bytes());
    write_poly(&mut out, secret);
    write_poly(&mut out, p0);
    write_poly(&mut out, p1);
    out
}

// choco-lint: ct-safe
fn keys_from_bytes_impl(
    magic: [u8; 4],
    bytes: &[u8],
) -> Result<(RnsPoly, RnsPoly, RnsPoly), HeError> {
    let mut r = Reader::new(bytes);
    if r.take(4)
        .map_err(|_| bad_keys("truncated key-bundle header"))?
        != magic
    {
        return Err(bad_keys("bad key-bundle magic"));
    }
    let full_rows = r
        .u32()
        .map_err(|_| bad_keys("truncated key-bundle header"))? as usize;
    let data_rows = r
        .u32()
        .map_err(|_| bad_keys("truncated key-bundle header"))? as usize;
    let n = r
        .u32()
        .map_err(|_| bad_keys("truncated key-bundle header"))? as usize;
    if full_rows == 0
        || full_rows > 33
        || data_rows == 0
        || data_rows > 32
        || data_rows > full_rows
        || !n.is_power_of_two()
    {
        return Err(bad_keys("implausible key-bundle shape"));
    }
    let expect = 16 + (full_rows + 2 * data_rows) * n * 8;
    if bytes.len() != expect {
        return Err(bad_keys("key-bundle length mismatch"));
    }
    let read = |r: &mut Reader<'_>, rows: usize| -> Result<RnsPoly, HeError> {
        read_polys(r, 1, rows, n)?
            .pop()
            .ok_or_else(|| bad_keys("missing key polynomial"))
    };
    let secret = read(&mut r, full_rows).map_err(|_| bad_keys("truncated secret key"))?;
    let p0 = read(&mut r, data_rows).map_err(|_| bad_keys("truncated public key"))?;
    let p1 = read(&mut r, data_rows).map_err(|_| bad_keys("truncated public key"))?;
    Ok((secret, p0, p1))
}

/// Serializes a BFV secret/public key bundle (`CHB1` blob).
// choco-lint: secret (public: none)
pub fn bfv_keys_to_bytes(keys: &bfv::KeyBundle) -> Vec<u8> {
    let (p0, p1) = keys.public_key().parts();
    keys_to_bytes_impl(BFV_KEYS_MAGIC, keys.secret_key().key_poly(), p0, p1)
}

/// Deserializes a BFV key bundle.
///
/// # Errors
///
/// Returns [`HeError::InvalidKeyMaterial`] on malformed blobs. Never panics.
// choco-lint: ct-safe
pub fn bfv_keys_from_bytes(bytes: &[u8]) -> Result<bfv::KeyBundle, HeError> {
    let (secret, p0, p1) = keys_from_bytes_impl(BFV_KEYS_MAGIC, bytes)?;
    Ok(bfv::KeyBundle::from_keys(
        bfv::SecretKey::from_poly(secret),
        bfv::PublicKey::from_parts(p0, p1),
    ))
}

/// Serializes a CKKS secret/public key bundle (`CHB2` blob).
// choco-lint: secret (public: none)
pub fn ckks_keys_to_bytes(keys: &ckks::CkksKeyBundle) -> Vec<u8> {
    let (p0, p1) = keys.public_key().parts();
    keys_to_bytes_impl(CKKS_KEYS_MAGIC, keys.secret_key().key_poly(), p0, p1)
}

/// Deserializes a CKKS key bundle.
///
/// # Errors
///
/// Returns [`HeError::InvalidKeyMaterial`] on malformed blobs. Never panics.
// choco-lint: ct-safe
pub fn ckks_keys_from_bytes(bytes: &[u8]) -> Result<ckks::CkksKeyBundle, HeError> {
    let (secret, p0, p1) = keys_from_bytes_impl(CKKS_KEYS_MAGIC, bytes)?;
    Ok(ckks::CkksKeyBundle::from_keys(
        ckks::CkksSecretKey::from_poly(secret),
        ckks::CkksPublicKey::from_parts(p0, p1),
    ))
}

/// Writes one key-switching key's digit pairs (`b_j` then `a_j`, per digit).
fn write_ksk_pairs(out: &mut Vec<u8>, ksk: &KswitchKey) {
    for (b, a) in ksk.pairs() {
        write_poly(out, b);
        write_poly(out, a);
    }
}

/// Reads one key-switching key of known shape.
fn read_ksk(
    r: &mut Reader<'_>,
    digits: usize,
    fpc: usize,
    n: usize,
) -> Result<KswitchKey, HeError> {
    let mut pairs = Vec::with_capacity(digits);
    for _ in 0..digits {
        let mut pair = read_polys(r, 2, fpc, n)?;
        let a = pair.pop().ok_or_else(|| bad_keys("missing ksk digit"))?;
        let b = pair.pop().ok_or_else(|| bad_keys("missing ksk digit"))?;
        pairs.push((b, a));
    }
    KswitchKey::from_parts(pairs, fpc).ok_or_else(|| bad_keys("inconsistent ksk shape"))
}

/// Validates a serialized key-switch shape: `digits` data primes plus one
/// special prime.
fn check_ksk_shape(digits: usize, fpc: usize, n: usize) -> Result<(), HeError> {
    if digits == 0 || digits > 32 || fpc != digits + 1 || !n.is_power_of_two() {
        return Err(bad_keys("implausible key-switch shape"));
    }
    Ok(())
}

fn relin_to_bytes_impl(magic: [u8; 4], ksk: &KswitchKey) -> Vec<u8> {
    let digits = ksk.digit_count();
    let fpc = ksk.full_prime_count();
    let n = ksk.pairs()[0].0.degree();
    let mut out = Vec::with_capacity(16 + digits * 2 * fpc * n * 8);
    out.extend_from_slice(&magic);
    out.extend_from_slice(&(digits as u32).to_le_bytes());
    out.extend_from_slice(&(fpc as u32).to_le_bytes());
    out.extend_from_slice(&(n as u32).to_le_bytes());
    write_ksk_pairs(&mut out, ksk);
    out
}

fn relin_from_bytes_impl(magic: [u8; 4], bytes: &[u8]) -> Result<KswitchKey, HeError> {
    let mut r = Reader::new(bytes);
    if r.take(4)
        .map_err(|_| bad_keys("truncated relin-key header"))?
        != magic
    {
        return Err(bad_keys("bad relin-key magic"));
    }
    let digits = r
        .u32()
        .map_err(|_| bad_keys("truncated relin-key header"))? as usize;
    let fpc = r
        .u32()
        .map_err(|_| bad_keys("truncated relin-key header"))? as usize;
    let n = r
        .u32()
        .map_err(|_| bad_keys("truncated relin-key header"))? as usize;
    check_ksk_shape(digits, fpc, n)?;
    let expect = 16 + digits * 2 * fpc * n * 8;
    if bytes.len() != expect {
        return Err(bad_keys("relin-key length mismatch"));
    }
    read_ksk(&mut r, digits, fpc, n).map_err(|_| bad_keys("truncated relin-key payload"))
}

/// Serializes a BFV relinearization key (`CHR1` blob).
pub fn bfv_relin_to_bytes(rk: &bfv::RelinKey) -> Vec<u8> {
    relin_to_bytes_impl(BFV_RELIN_MAGIC, rk.ksk())
}

/// Deserializes a BFV relinearization key.
///
/// # Errors
///
/// Returns [`HeError::InvalidKeyMaterial`] on malformed blobs. Never panics.
pub fn bfv_relin_from_bytes(bytes: &[u8]) -> Result<bfv::RelinKey, HeError> {
    Ok(bfv::RelinKey::from_ksk(relin_from_bytes_impl(
        BFV_RELIN_MAGIC,
        bytes,
    )?))
}

/// Serializes a CKKS relinearization key (`CHR2` blob).
pub fn ckks_relin_to_bytes(rk: &ckks::CkksRelinKey) -> Vec<u8> {
    relin_to_bytes_impl(CKKS_RELIN_MAGIC, rk.ksk())
}

/// Deserializes a CKKS relinearization key.
///
/// # Errors
///
/// Returns [`HeError::InvalidKeyMaterial`] on malformed blobs. Never panics.
pub fn ckks_relin_from_bytes(bytes: &[u8]) -> Result<ckks::CkksRelinKey, HeError> {
    Ok(ckks::CkksRelinKey::from_ksk(relin_from_bytes_impl(
        CKKS_RELIN_MAGIC,
        bytes,
    )?))
}

/// Galois-key sets are written in **sorted element order**, so serialization
/// is deterministic regardless of map iteration order — a requirement for
/// bit-identical checkpoints.
fn galois_header(magic: [u8; 4], count: usize, digits: usize, fpc: usize, n: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(20 + count * (8 + digits * 2 * fpc * n * 8));
    out.extend_from_slice(&magic);
    out.extend_from_slice(&(count as u32).to_le_bytes());
    out.extend_from_slice(&(digits as u32).to_le_bytes());
    out.extend_from_slice(&(fpc as u32).to_le_bytes());
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out
}

fn galois_from_bytes_impl(
    magic: [u8; 4],
    bytes: &[u8],
) -> Result<HashMap<u64, KswitchKey>, HeError> {
    let mut r = Reader::new(bytes);
    if r.take(4)
        .map_err(|_| bad_keys("truncated galois-set header"))?
        != magic
    {
        return Err(bad_keys("bad galois-set magic"));
    }
    let count = r
        .u32()
        .map_err(|_| bad_keys("truncated galois-set header"))? as usize;
    let digits = r
        .u32()
        .map_err(|_| bad_keys("truncated galois-set header"))? as usize;
    let fpc = r
        .u32()
        .map_err(|_| bad_keys("truncated galois-set header"))? as usize;
    let n = r
        .u32()
        .map_err(|_| bad_keys("truncated galois-set header"))? as usize;
    if count > 4096 {
        return Err(bad_keys("implausible galois-set size"));
    }
    if count == 0 {
        if bytes.len() != 20 || digits != 0 || fpc != 0 {
            return Err(bad_keys("malformed empty galois set"));
        }
        return Ok(HashMap::new());
    }
    check_ksk_shape(digits, fpc, n)?;
    let expect = 20 + count * (8 + digits * 2 * fpc * n * 8);
    if bytes.len() != expect {
        return Err(bad_keys("galois-set length mismatch"));
    }
    let mut map = HashMap::with_capacity(count);
    let mut prev: Option<u64> = None;
    for _ in 0..count {
        let elem = r.u64().map_err(|_| bad_keys("truncated galois element"))?;
        if prev.is_some_and(|p| p >= elem) {
            return Err(bad_keys("galois elements not strictly increasing"));
        }
        prev = Some(elem);
        let ksk = read_ksk(&mut r, digits, fpc, n).map_err(|_| bad_keys("truncated galois key"))?;
        map.insert(elem, ksk);
    }
    Ok(map)
}

/// Serializes a BFV Galois key set (`CHG1` blob), elements sorted.
pub fn bfv_galois_to_bytes(gk: &bfv::GaloisKeys) -> Vec<u8> {
    let elements = gk.elements();
    let shape = elements.first().and_then(|&e| gk.key_for(e));
    let (digits, fpc, n) = match shape {
        Some(k) => (
            k.digit_count(),
            k.full_prime_count(),
            k.pairs()[0].0.degree(),
        ),
        None => (0, 0, 0),
    };
    let mut out = galois_header(BFV_GALOIS_MAGIC, elements.len(), digits, fpc, n);
    for &e in &elements {
        if let Some(k) = gk.key_for(e) {
            out.extend_from_slice(&e.to_le_bytes());
            write_ksk_pairs(&mut out, k);
        }
    }
    out
}

/// Deserializes a BFV Galois key set.
///
/// # Errors
///
/// Returns [`HeError::InvalidKeyMaterial`] on malformed blobs. Never panics.
pub fn bfv_galois_from_bytes(bytes: &[u8]) -> Result<bfv::GaloisKeys, HeError> {
    Ok(bfv::GaloisKeys::from_map(galois_from_bytes_impl(
        BFV_GALOIS_MAGIC,
        bytes,
    )?))
}

/// Serializes a CKKS Galois key set (`CHG2` blob), elements sorted.
pub fn ckks_galois_to_bytes(gk: &ckks::CkksGaloisKeys) -> Vec<u8> {
    let elements = gk.elements();
    let shape = elements.first().and_then(|&e| gk.key_for(e));
    let (digits, fpc, n) = match shape {
        Some(k) => (
            k.digit_count(),
            k.full_prime_count(),
            k.pairs()[0].0.degree(),
        ),
        None => (0, 0, 0),
    };
    let mut out = galois_header(CKKS_GALOIS_MAGIC, elements.len(), digits, fpc, n);
    for &e in &elements {
        if let Some(k) = gk.key_for(e) {
            out.extend_from_slice(&e.to_le_bytes());
            write_ksk_pairs(&mut out, k);
        }
    }
    out
}

/// Deserializes a CKKS Galois key set.
///
/// # Errors
///
/// Returns [`HeError::InvalidKeyMaterial`] on malformed blobs. Never panics.
pub fn ckks_galois_from_bytes(bytes: &[u8]) -> Result<ckks::CkksGaloisKeys, HeError> {
    Ok(ckks::CkksGaloisKeys::from_map(galois_from_bytes_impl(
        CKKS_GALOIS_MAGIC,
        bytes,
    )?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfv::{BfvContext, Plaintext};
    use crate::ckks::CkksContext;
    use crate::params::HeParams;
    use choco_prng::Blake3Rng;

    fn sample_ct() -> (BfvContext, crate::bfv::KeyBundle, Ciphertext) {
        let params = HeParams::bfv_insecure(256, &[40, 40, 41], 14).unwrap();
        let ctx = BfvContext::new(&params).unwrap();
        let mut rng = Blake3Rng::from_seed(b"serialize");
        let keys = ctx.keygen(&mut rng);
        let pt = Plaintext::from_coeffs((0..256u64).map(|i| i % 100).collect());
        let ct = ctx.encryptor(keys.public_key()).encrypt(&pt, &mut rng);
        (ctx, keys, ct)
    }

    fn sample_ckks() -> (CkksContext, crate::ckks::CkksKeyBundle, CkksCiphertext) {
        let params = HeParams::ckks_insecure(256, &[45, 45, 46], 38).unwrap();
        let ctx = CkksContext::new(&params).unwrap();
        let mut rng = Blake3Rng::from_seed(b"ckks serialize");
        let keys = ctx.keygen(&mut rng);
        let values: Vec<f64> = (0..ctx.slot_count()).map(|i| i as f64 / 8.0).collect();
        let pt = ctx.encode(&values).unwrap();
        let ct = ctx.encrypt(&pt, keys.public_key(), &mut rng).unwrap();
        (ctx, keys, ct)
    }

    #[test]
    fn roundtrip_preserves_decryption() {
        let (ctx, keys, ct) = sample_ct();
        let bytes = ciphertext_to_bytes(&ct);
        let back = ciphertext_from_bytes(&bytes).unwrap();
        assert_eq!(back, ct);
        let out = ctx.decryptor(keys.secret_key()).decrypt(&back);
        assert_eq!(out.coeffs()[5], 5);
    }

    #[test]
    fn payload_matches_table3_accounting() {
        let (_, _, ct) = sample_ct();
        let bytes = ciphertext_to_bytes(&ct);
        assert_eq!(bytes.len(), HEADER_BYTES + ct.byte_size());
        // 2 parts × 2 data residues × 256 coeffs × 8 B
        assert_eq!(ct.byte_size(), 2 * 2 * 256 * 8);
    }

    #[test]
    fn rejects_corrupted_frames() {
        let (_, _, ct) = sample_ct();
        let bytes = ciphertext_to_bytes(&ct);
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(ciphertext_from_bytes(&bad).is_err());
        // Truncated.
        assert!(ciphertext_from_bytes(&bytes[..bytes.len() - 9]).is_err());
        // Empty / header-only.
        assert!(ciphertext_from_bytes(&[]).is_err());
        assert!(ciphertext_from_bytes(&bytes[..HEADER_BYTES]).is_err());
        // Implausible shape.
        let mut weird = bytes.clone();
        weird[4..8].copy_from_slice(&100u32.to_le_bytes());
        assert!(ciphertext_from_bytes(&weird).is_err());
    }

    #[test]
    fn tampered_payload_still_parses_but_decrypts_to_garbage() {
        // Integrity is not part of the HE threat model (semi-honest server);
        // flipping payload bits yields a valid frame whose decryption is
        // wrong — documented behaviour, not a defect. The transport layer's
        // keyed tags exist precisely to catch this before decryption.
        let (ctx, keys, ct) = sample_ct();
        let mut bytes = ciphertext_to_bytes(&ct);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let tampered = ciphertext_from_bytes(&bytes).unwrap();
        let out = ctx.decryptor(keys.secret_key()).decrypt(&tampered);
        let orig = ctx.decryptor(keys.secret_key()).decrypt(&ct);
        assert_ne!(out, orig);
    }

    #[test]
    fn ckks_roundtrip_preserves_decryption() {
        let (ctx, keys, ct) = sample_ckks();
        let bytes = ckks_ciphertext_to_bytes(&ct);
        let back = ckks_ciphertext_from_bytes(&bytes).unwrap();
        assert_eq!(back.level(), ct.level());
        assert_eq!(back.scale(), ct.scale());
        assert_eq!(back.size(), ct.size());
        let out = ctx.decode(&ctx.decrypt(&back, keys.secret_key()));
        assert!((out[8] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn ckks_roundtrip_survives_rescale_levels() {
        // After a rescale the ciphertext sits at a lower level with fewer
        // residue rows; the wire format must carry exactly that shape.
        let (ctx, keys, ct) = sample_ckks();
        let rk = {
            let mut rng = Blake3Rng::from_seed(b"ckks serialize rk");
            ctx.relin_key(keys.secret_key(), &mut rng)
        };
        let sq = ctx.multiply_relin(&ct, &ct, &rk).unwrap();
        let dropped = ctx.rescale(&sq).unwrap();
        let bytes = ckks_ciphertext_to_bytes(&dropped);
        let back = ckks_ciphertext_from_bytes(&bytes).unwrap();
        assert_eq!(back.level(), dropped.level());
        let a = ctx.decode(&ctx.decrypt(&back, keys.secret_key()));
        let b = ctx.decode(&ctx.decrypt(&dropped, keys.secret_key()));
        assert!((a[4] - b[4]).abs() < 1e-9);
    }

    #[test]
    fn ckks_payload_matches_byte_size_accounting() {
        let (_, _, ct) = sample_ckks();
        let bytes = ckks_ciphertext_to_bytes(&ct);
        assert_eq!(bytes.len(), CKKS_HEADER_BYTES + ct.byte_size());
    }

    #[test]
    fn ckks_rejects_corrupted_frames() {
        let (_, _, ct) = sample_ckks();
        let bytes = ckks_ciphertext_to_bytes(&ct);
        // Bad magic (a BFV frame is not a CKKS frame).
        let mut bad = bytes.clone();
        bad[..4].copy_from_slice(b"CHO1");
        assert!(ckks_ciphertext_from_bytes(&bad).is_err());
        // Truncated.
        assert!(ckks_ciphertext_from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(ckks_ciphertext_from_bytes(&[]).is_err());
        // Implausible level.
        let mut weird = bytes.clone();
        weird[8..12].copy_from_slice(&77u32.to_le_bytes());
        assert!(ckks_ciphertext_from_bytes(&weird).is_err());
        // Non-finite scale.
        let mut nan = bytes.clone();
        nan[12..20].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(ckks_ciphertext_from_bytes(&nan).is_err());
    }

    #[test]
    fn bfv_key_bundle_roundtrips_exactly() {
        let (ctx, keys, ct) = sample_ct();
        let bytes = bfv_keys_to_bytes(&keys);
        let back = bfv_keys_from_bytes(&bytes).unwrap();
        // Bit-exact re-serialization proves the round trip lost nothing.
        assert_eq!(bfv_keys_to_bytes(&back), bytes);
        // The restored secret key must decrypt ciphertexts made under the
        // original bundle.
        let out = ctx.decryptor(back.secret_key()).decrypt(&ct);
        assert_eq!(out.coeffs()[5], 5);
    }

    #[test]
    fn ckks_key_bundle_roundtrips_exactly() {
        let (ctx, keys, ct) = sample_ckks();
        let bytes = ckks_keys_to_bytes(&keys);
        let back = ckks_keys_from_bytes(&bytes).unwrap();
        assert_eq!(ckks_keys_to_bytes(&back), bytes);
        let out = ctx.decode(&ctx.decrypt(&ct, back.secret_key()));
        assert!((out[8] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn relin_keys_roundtrip_and_still_relinearize() {
        let (ctx, keys, ct) = sample_ct();
        let mut rng = Blake3Rng::from_seed(b"serialize rk");
        let rk = ctx.relin_key(keys.secret_key(), &mut rng).unwrap();
        let bytes = bfv_relin_to_bytes(&rk);
        let back = bfv_relin_from_bytes(&bytes).unwrap();
        assert_eq!(bfv_relin_to_bytes(&back), bytes);
        let sq = ctx.evaluator().multiply_relin(&ct, &ct, &back).unwrap();
        assert_eq!(sq.size(), 2);

        let (ckks_ctx, ckks_keys, _) = sample_ckks();
        let mut rng = Blake3Rng::from_seed(b"ckks serialize rk");
        let crk = ckks_ctx.relin_key(ckks_keys.secret_key(), &mut rng);
        let cbytes = ckks_relin_to_bytes(&crk);
        let cback = ckks_relin_from_bytes(&cbytes).unwrap();
        assert_eq!(ckks_relin_to_bytes(&cback), cbytes);
    }

    #[test]
    fn galois_keys_roundtrip_sorted_and_deterministic() {
        let (ctx, keys, ct) = sample_ct();
        let mut rng = Blake3Rng::from_seed(b"serialize gk");
        let gk = ctx
            .galois_keys(keys.secret_key(), &[1, 3, -2], &mut rng)
            .unwrap();
        let bytes = bfv_galois_to_bytes(&gk);
        let back = bfv_galois_from_bytes(&bytes).unwrap();
        assert_eq!(back.elements(), gk.elements());
        // Serialization is sorted-by-element, so it is deterministic even
        // though the underlying storage is a HashMap.
        assert_eq!(bfv_galois_to_bytes(&back), bytes);
        let rotated = ctx.evaluator().rotate_rows(&ct, 1, &back).unwrap();
        assert_eq!(rotated.size(), 2);
    }

    #[test]
    fn empty_galois_set_roundtrips() {
        // CKKS sessions constructed with no rotation steps carry a genuinely
        // empty Galois set; the wire format must survive that shape.
        let (ckks_ctx, ckks_keys, _) = sample_ckks();
        let mut rng = Blake3Rng::from_seed(b"ckks serialize gk");
        let cgk = ckks_ctx.galois_keys(ckks_keys.secret_key(), &[], &mut rng);
        let cbytes = ckks_galois_to_bytes(&cgk);
        assert_eq!(cbytes.len(), 20);
        let cback = ckks_galois_from_bytes(&cbytes).unwrap();
        assert!(cback.elements().is_empty());
        assert_eq!(ckks_galois_to_bytes(&cback), cbytes);
        // Non-empty CKKS sets round-trip too.
        let full = ckks_ctx.galois_keys(ckks_keys.secret_key(), &[1, 4], &mut rng);
        let fbytes = ckks_galois_to_bytes(&full);
        let fback = ckks_galois_from_bytes(&fbytes).unwrap();
        assert_eq!(fback.elements(), full.elements());
        assert_eq!(ckks_galois_to_bytes(&fback), fbytes);
    }

    #[test]
    fn rejects_malformed_key_material() {
        let (ctx, keys, _) = sample_ct();
        let mut rng = Blake3Rng::from_seed(b"serialize reject");
        let rk = ctx.relin_key(keys.secret_key(), &mut rng).unwrap();
        let gk = ctx
            .galois_keys(keys.secret_key(), &[1, 2], &mut rng)
            .unwrap();
        let blobs: Vec<Vec<u8>> = vec![
            bfv_keys_to_bytes(&keys),
            bfv_relin_to_bytes(&rk),
            bfv_galois_to_bytes(&gk),
        ];
        let parsers: Vec<fn(&[u8]) -> bool> = vec![
            |b| bfv_keys_from_bytes(b).is_err(),
            |b| bfv_relin_from_bytes(b).is_err(),
            |b| bfv_galois_from_bytes(b).is_err(),
        ];
        for (blob, rejects) in blobs.iter().zip(&parsers) {
            // Bad magic.
            let mut bad = blob.clone();
            bad[0] = b'X';
            assert!(rejects(&bad));
            // Truncations at several cut points — typed error, never a panic.
            for cut in [0, 3, blob.len() / 2, blob.len() - 1] {
                assert!(rejects(&blob[..cut]));
            }
            // Trailing garbage fails the exact-length check.
            let mut long = blob.clone();
            long.push(0);
            assert!(rejects(&long));
            // Implausible header shape.
            let mut weird = blob.clone();
            weird[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
            assert!(rejects(&weird));
        }
        // Wrong-scheme magic: a BFV bundle must not parse as CKKS.
        assert!(ckks_keys_from_bytes(&bfv_keys_to_bytes(&keys)).is_err());
        // Galois elements must be strictly increasing (sorted + deduped).
        let gbytes = bfv_galois_to_bytes(&gk);
        let mut unsorted = gbytes.clone();
        // Swap the first element id for u64::MAX so ordering breaks later.
        unsorted[20..28].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(bfv_galois_from_bytes(&unsorted).is_err());
    }
}
