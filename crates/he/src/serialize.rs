//! Wire formats for ciphertexts and plaintexts.
//!
//! The paper's communication accounting assumes `s · N · (k−1) · 8` bytes
//! per ciphertext (Table 3); this module makes that concrete: ciphertexts
//! serialize to exactly that many payload bytes plus a fixed header (magic,
//! component count, residue count / level, degree, and for CKKS the scale).
//! The ledger in `choco::protocol` counts payload bytes, so serialized sizes
//! and ledger sizes agree.
//!
//! Deserialization is fully checked: every read is bounds-validated and
//! malformed frames surface as [`HeError::InvalidCiphertext`], never as a
//! panic — the transport layer (`choco::transport`) feeds these functions
//! bytes that crossed a lossy link, so "attacker-shaped" input is the normal
//! case, not the exception. Integrity (detecting *valid-shaped but altered*
//! frames) is layered above via the transport's keyed BLAKE3 tags;
//! [`ciphertext_from_bytes`] alone accepts any well-formed frame.

use crate::bfv::Ciphertext;
use crate::ckks::CkksCiphertext;
use crate::error::HeError;
use crate::rnspoly::RnsPoly;

/// Magic tag for BFV ciphertext frames.
const MAGIC: [u8; 4] = *b"CHO1";

/// Magic tag for CKKS ciphertext frames.
const CKKS_MAGIC: [u8; 4] = *b"CHO2";

/// BFV header size in bytes (magic, parts, rows, degree).
pub const HEADER_BYTES: usize = 16;

/// CKKS header size in bytes (magic, parts, level, degree, scale).
pub const CKKS_HEADER_BYTES: usize = 24;

/// A bounds-checked little-endian reader over a byte slice.
struct Reader<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, off: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], HeError> {
        let end = self
            .off
            .checked_add(n)
            .ok_or_else(|| HeError::InvalidCiphertext("frame offset overflow".into()))?;
        if end > self.bytes.len() {
            return Err(HeError::InvalidCiphertext(format!(
                "truncated frame: need {end} bytes, have {}",
                self.bytes.len()
            )));
        }
        let out = &self.bytes[self.off..end];
        self.off = end;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, HeError> {
        let b = self.take(4)?;
        let mut buf = [0u8; 4];
        buf.copy_from_slice(b);
        Ok(u32::from_le_bytes(buf))
    }

    fn u64(&mut self) -> Result<u64, HeError> {
        let b = self.take(8)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(b);
        Ok(u64::from_le_bytes(buf))
    }

    fn f64(&mut self) -> Result<f64, HeError> {
        Ok(f64::from_bits(self.u64()?))
    }
}

/// Reads `parts` polynomials of `rows × n` little-endian residues.
fn read_polys(
    r: &mut Reader<'_>,
    parts: usize,
    rows: usize,
    n: usize,
) -> Result<Vec<RnsPoly>, HeError> {
    let mut polys = Vec::with_capacity(parts);
    for _ in 0..parts {
        let mut rows_vec = Vec::with_capacity(rows);
        for _ in 0..rows {
            let mut row = Vec::with_capacity(n);
            for _ in 0..n {
                row.push(r.u64()?);
            }
            rows_vec.push(row);
        }
        polys.push(RnsPoly::from_rows(rows_vec));
    }
    Ok(polys)
}

/// Serializes a BFV ciphertext: 16-byte header + little-endian residues.
pub fn ciphertext_to_bytes(ct: &Ciphertext) -> Vec<u8> {
    let parts = ct.size();
    let rows = ct.part(0).row_count();
    let n = ct.part(0).degree();
    let mut out = Vec::with_capacity(HEADER_BYTES + parts * rows * n * 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(parts as u32).to_le_bytes());
    out.extend_from_slice(&(rows as u32).to_le_bytes());
    out.extend_from_slice(&(n as u32).to_le_bytes());
    for p in 0..parts {
        for r in 0..rows {
            for &c in ct.part(p).row(r) {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
    }
    out
}

/// Deserializes a BFV ciphertext frame.
///
/// # Errors
///
/// Returns [`HeError::InvalidCiphertext`] on malformed frames (bad magic,
/// truncated payload, or implausible shape). Never panics, regardless of
/// input bytes.
pub fn ciphertext_from_bytes(bytes: &[u8]) -> Result<Ciphertext, HeError> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != MAGIC {
        return Err(HeError::InvalidCiphertext("bad frame header".into()));
    }
    let parts = r.u32()? as usize;
    let rows = r.u32()? as usize;
    let n = r.u32()? as usize;
    if parts == 0 || parts > 3 || rows == 0 || rows > 32 || !n.is_power_of_two() {
        return Err(HeError::InvalidCiphertext("implausible frame shape".into()));
    }
    let expect = HEADER_BYTES + parts * rows * n * 8;
    if bytes.len() != expect {
        return Err(HeError::InvalidCiphertext(format!(
            "frame length {} != expected {expect}",
            bytes.len()
        )));
    }
    let polys = read_polys(&mut r, parts, rows, n)?;
    Ok(Ciphertext::from_parts(polys))
}

/// Serializes a CKKS ciphertext: 24-byte header (magic, parts, level,
/// degree, scale bits) + little-endian residues of each part at the
/// ciphertext's level.
pub fn ckks_ciphertext_to_bytes(ct: &CkksCiphertext) -> Vec<u8> {
    let parts = ct.size();
    let level = ct.level();
    let n = ct.part(0).degree();
    let mut out = Vec::with_capacity(CKKS_HEADER_BYTES + parts * level * n * 8);
    out.extend_from_slice(&CKKS_MAGIC);
    out.extend_from_slice(&(parts as u32).to_le_bytes());
    out.extend_from_slice(&(level as u32).to_le_bytes());
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&ct.scale().to_bits().to_le_bytes());
    for p in 0..parts {
        for r in 0..level {
            for &c in ct.part(p).row(r) {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
    }
    out
}

/// Deserializes a CKKS ciphertext frame.
///
/// # Errors
///
/// Returns [`HeError::InvalidCiphertext`] on malformed frames (bad magic,
/// truncated payload, implausible shape, or a non-finite / non-positive
/// scale). Never panics, regardless of input bytes.
pub fn ckks_ciphertext_from_bytes(bytes: &[u8]) -> Result<CkksCiphertext, HeError> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != CKKS_MAGIC {
        return Err(HeError::InvalidCiphertext("bad CKKS frame header".into()));
    }
    let parts = r.u32()? as usize;
    let level = r.u32()? as usize;
    let n = r.u32()? as usize;
    let scale = r.f64()?;
    if parts == 0 || parts > 3 || level == 0 || level > 32 || !n.is_power_of_two() {
        return Err(HeError::InvalidCiphertext(
            "implausible CKKS frame shape".into(),
        ));
    }
    if !scale.is_finite() || scale <= 0.0 {
        return Err(HeError::InvalidCiphertext(format!(
            "implausible CKKS scale {scale}"
        )));
    }
    let expect = CKKS_HEADER_BYTES + parts * level * n * 8;
    if bytes.len() != expect {
        return Err(HeError::InvalidCiphertext(format!(
            "CKKS frame length {} != expected {expect}",
            bytes.len()
        )));
    }
    let polys = read_polys(&mut r, parts, level, n)?;
    Ok(CkksCiphertext::from_parts(polys, level, scale))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfv::{BfvContext, Plaintext};
    use crate::ckks::CkksContext;
    use crate::params::HeParams;
    use choco_prng::Blake3Rng;

    fn sample_ct() -> (BfvContext, crate::bfv::KeyBundle, Ciphertext) {
        let params = HeParams::bfv_insecure(256, &[40, 40, 41], 14).unwrap();
        let ctx = BfvContext::new(&params).unwrap();
        let mut rng = Blake3Rng::from_seed(b"serialize");
        let keys = ctx.keygen(&mut rng);
        let pt = Plaintext::from_coeffs((0..256u64).map(|i| i % 100).collect());
        let ct = ctx.encryptor(keys.public_key()).encrypt(&pt, &mut rng);
        (ctx, keys, ct)
    }

    fn sample_ckks() -> (CkksContext, crate::ckks::CkksKeyBundle, CkksCiphertext) {
        let params = HeParams::ckks_insecure(256, &[45, 45, 46], 38).unwrap();
        let ctx = CkksContext::new(&params).unwrap();
        let mut rng = Blake3Rng::from_seed(b"ckks serialize");
        let keys = ctx.keygen(&mut rng);
        let values: Vec<f64> = (0..ctx.slot_count()).map(|i| i as f64 / 8.0).collect();
        let pt = ctx.encode(&values).unwrap();
        let ct = ctx.encrypt(&pt, keys.public_key(), &mut rng).unwrap();
        (ctx, keys, ct)
    }

    #[test]
    fn roundtrip_preserves_decryption() {
        let (ctx, keys, ct) = sample_ct();
        let bytes = ciphertext_to_bytes(&ct);
        let back = ciphertext_from_bytes(&bytes).unwrap();
        assert_eq!(back, ct);
        let out = ctx.decryptor(keys.secret_key()).decrypt(&back);
        assert_eq!(out.coeffs()[5], 5);
    }

    #[test]
    fn payload_matches_table3_accounting() {
        let (_, _, ct) = sample_ct();
        let bytes = ciphertext_to_bytes(&ct);
        assert_eq!(bytes.len(), HEADER_BYTES + ct.byte_size());
        // 2 parts × 2 data residues × 256 coeffs × 8 B
        assert_eq!(ct.byte_size(), 2 * 2 * 256 * 8);
    }

    #[test]
    fn rejects_corrupted_frames() {
        let (_, _, ct) = sample_ct();
        let bytes = ciphertext_to_bytes(&ct);
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(ciphertext_from_bytes(&bad).is_err());
        // Truncated.
        assert!(ciphertext_from_bytes(&bytes[..bytes.len() - 9]).is_err());
        // Empty / header-only.
        assert!(ciphertext_from_bytes(&[]).is_err());
        assert!(ciphertext_from_bytes(&bytes[..HEADER_BYTES]).is_err());
        // Implausible shape.
        let mut weird = bytes.clone();
        weird[4..8].copy_from_slice(&100u32.to_le_bytes());
        assert!(ciphertext_from_bytes(&weird).is_err());
    }

    #[test]
    fn tampered_payload_still_parses_but_decrypts_to_garbage() {
        // Integrity is not part of the HE threat model (semi-honest server);
        // flipping payload bits yields a valid frame whose decryption is
        // wrong — documented behaviour, not a defect. The transport layer's
        // keyed tags exist precisely to catch this before decryption.
        let (ctx, keys, ct) = sample_ct();
        let mut bytes = ciphertext_to_bytes(&ct);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let tampered = ciphertext_from_bytes(&bytes).unwrap();
        let out = ctx.decryptor(keys.secret_key()).decrypt(&tampered);
        let orig = ctx.decryptor(keys.secret_key()).decrypt(&ct);
        assert_ne!(out, orig);
    }

    #[test]
    fn ckks_roundtrip_preserves_decryption() {
        let (ctx, keys, ct) = sample_ckks();
        let bytes = ckks_ciphertext_to_bytes(&ct);
        let back = ckks_ciphertext_from_bytes(&bytes).unwrap();
        assert_eq!(back.level(), ct.level());
        assert_eq!(back.scale(), ct.scale());
        assert_eq!(back.size(), ct.size());
        let out = ctx.decode(&ctx.decrypt(&back, keys.secret_key()));
        assert!((out[8] - 1.0).abs() < 1e-2);
    }

    #[test]
    fn ckks_roundtrip_survives_rescale_levels() {
        // After a rescale the ciphertext sits at a lower level with fewer
        // residue rows; the wire format must carry exactly that shape.
        let (ctx, keys, ct) = sample_ckks();
        let rk = {
            let mut rng = Blake3Rng::from_seed(b"ckks serialize rk");
            ctx.relin_key(keys.secret_key(), &mut rng)
        };
        let sq = ctx.multiply_relin(&ct, &ct, &rk).unwrap();
        let dropped = ctx.rescale(&sq).unwrap();
        let bytes = ckks_ciphertext_to_bytes(&dropped);
        let back = ckks_ciphertext_from_bytes(&bytes).unwrap();
        assert_eq!(back.level(), dropped.level());
        let a = ctx.decode(&ctx.decrypt(&back, keys.secret_key()));
        let b = ctx.decode(&ctx.decrypt(&dropped, keys.secret_key()));
        assert!((a[4] - b[4]).abs() < 1e-9);
    }

    #[test]
    fn ckks_payload_matches_byte_size_accounting() {
        let (_, _, ct) = sample_ckks();
        let bytes = ckks_ciphertext_to_bytes(&ct);
        assert_eq!(bytes.len(), CKKS_HEADER_BYTES + ct.byte_size());
    }

    #[test]
    fn ckks_rejects_corrupted_frames() {
        let (_, _, ct) = sample_ckks();
        let bytes = ckks_ciphertext_to_bytes(&ct);
        // Bad magic (a BFV frame is not a CKKS frame).
        let mut bad = bytes.clone();
        bad[..4].copy_from_slice(b"CHO1");
        assert!(ckks_ciphertext_from_bytes(&bad).is_err());
        // Truncated.
        assert!(ckks_ciphertext_from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(ckks_ciphertext_from_bytes(&[]).is_err());
        // Implausible level.
        let mut weird = bytes.clone();
        weird[8..12].copy_from_slice(&77u32.to_le_bytes());
        assert!(ckks_ciphertext_from_bytes(&weird).is_err());
        // Non-finite scale.
        let mut nan = bytes.clone();
        nan[12..20].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(ckks_ciphertext_from_bytes(&nan).is_err());
    }
}
