//! Wire formats for ciphertexts and plaintexts.
//!
//! The paper's communication accounting assumes `s · N · (k−1) · 8` bytes
//! per ciphertext (Table 3); this module makes that concrete: ciphertexts
//! serialize to exactly that many payload bytes plus a fixed 16-byte header
//! (magic, component count, residue count, degree). The ledger in
//! `choco::protocol` counts payload bytes, so serialized sizes and ledger
//! sizes agree.

use crate::bfv::Ciphertext;
use crate::error::HeError;
use crate::rnspoly::RnsPoly;

/// Magic tag for BFV ciphertext frames.
const MAGIC: [u8; 4] = *b"CHO1";

/// Header size in bytes.
pub const HEADER_BYTES: usize = 16;

/// Serializes a BFV ciphertext: 16-byte header + little-endian residues.
pub fn ciphertext_to_bytes(ct: &Ciphertext) -> Vec<u8> {
    let parts = ct.size();
    let rows = ct.part(0).row_count();
    let n = ct.part(0).degree();
    let mut out = Vec::with_capacity(HEADER_BYTES + parts * rows * n * 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(parts as u32).to_le_bytes());
    out.extend_from_slice(&(rows as u32).to_le_bytes());
    out.extend_from_slice(&(n as u32).to_le_bytes());
    for p in 0..parts {
        for r in 0..rows {
            for &c in ct.part(p).row(r) {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
    }
    out
}

/// Deserializes a BFV ciphertext frame.
///
/// # Errors
///
/// Returns [`HeError::InvalidCiphertext`] on malformed frames (bad magic,
/// truncated payload, or implausible shape).
pub fn ciphertext_from_bytes(bytes: &[u8]) -> Result<Ciphertext, HeError> {
    if bytes.len() < HEADER_BYTES || bytes[..4] != MAGIC {
        return Err(HeError::InvalidCiphertext("bad frame header".into()));
    }
    let read_u32 = |off: usize| -> usize {
        u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes")) as usize
    };
    let parts = read_u32(4);
    let rows = read_u32(8);
    let n = read_u32(12);
    if parts == 0 || parts > 3 || rows == 0 || rows > 32 || !n.is_power_of_two() {
        return Err(HeError::InvalidCiphertext("implausible frame shape".into()));
    }
    let expect = HEADER_BYTES + parts * rows * n * 8;
    if bytes.len() != expect {
        return Err(HeError::InvalidCiphertext(format!(
            "frame length {} != expected {expect}",
            bytes.len()
        )));
    }
    let mut off = HEADER_BYTES;
    let mut polys = Vec::with_capacity(parts);
    for _ in 0..parts {
        let mut rows_vec = Vec::with_capacity(rows);
        for _ in 0..rows {
            let mut row = Vec::with_capacity(n);
            for _ in 0..n {
                row.push(u64::from_le_bytes(
                    bytes[off..off + 8].try_into().expect("8 bytes"),
                ));
                off += 8;
            }
            rows_vec.push(row);
        }
        polys.push(RnsPoly::from_rows(rows_vec));
    }
    Ok(Ciphertext::from_parts(polys))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfv::{BfvContext, Plaintext};
    use crate::params::HeParams;
    use choco_prng::Blake3Rng;

    fn sample_ct() -> (BfvContext, crate::bfv::KeyBundle, Ciphertext) {
        let params = HeParams::bfv_insecure(256, &[40, 40, 41], 14).unwrap();
        let ctx = BfvContext::new(&params).unwrap();
        let mut rng = Blake3Rng::from_seed(b"serialize");
        let keys = ctx.keygen(&mut rng);
        let pt = Plaintext::from_coeffs((0..256u64).map(|i| i % 100).collect());
        let ct = ctx.encryptor(keys.public_key()).encrypt(&pt, &mut rng);
        (ctx, keys, ct)
    }

    #[test]
    fn roundtrip_preserves_decryption() {
        let (ctx, keys, ct) = sample_ct();
        let bytes = ciphertext_to_bytes(&ct);
        let back = ciphertext_from_bytes(&bytes).unwrap();
        assert_eq!(back, ct);
        let out = ctx.decryptor(keys.secret_key()).decrypt(&back);
        assert_eq!(out.coeffs()[5], 5);
    }

    #[test]
    fn payload_matches_table3_accounting() {
        let (_, _, ct) = sample_ct();
        let bytes = ciphertext_to_bytes(&ct);
        assert_eq!(bytes.len(), HEADER_BYTES + ct.byte_size());
        // 2 parts × 2 data residues × 256 coeffs × 8 B
        assert_eq!(ct.byte_size(), 2 * 2 * 256 * 8);
    }

    #[test]
    fn rejects_corrupted_frames() {
        let (_, _, ct) = sample_ct();
        let bytes = ciphertext_to_bytes(&ct);
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(ciphertext_from_bytes(&bad).is_err());
        // Truncated.
        assert!(ciphertext_from_bytes(&bytes[..bytes.len() - 9]).is_err());
        // Implausible shape.
        let mut weird = bytes.clone();
        weird[4..8].copy_from_slice(&100u32.to_le_bytes());
        assert!(ciphertext_from_bytes(&weird).is_err());
    }

    #[test]
    fn tampered_payload_still_parses_but_decrypts_to_garbage() {
        // Integrity is not part of the HE threat model (semi-honest server);
        // flipping payload bits yields a valid frame whose decryption is
        // wrong — documented behaviour, not a defect.
        let (ctx, keys, ct) = sample_ct();
        let mut bytes = ciphertext_to_bytes(&ct);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let tampered = ciphertext_from_bytes(&bytes).unwrap();
        let out = ctx.decryptor(keys.secret_key()).decrypt(&tampered);
        let orig = ctx.decryptor(keys.secret_key()).decrypt(&ct);
        assert_ne!(out, orig);
    }
}
