//! BFV SIMD batch encoding (SEAL's `BatchEncoder`).
//!
//! When the plaintext modulus `t` is a prime with `t ≡ 1 (mod 2N)`, the
//! plaintext ring `Z_t[x]/(x^N + 1)` splits into `N` independent slots
//! arranged as a `2 × N/2` matrix. Polynomial multiplication then acts
//! slot-wise, and the Galois automorphisms `x → x^{3^r}` / `x → x^{-1}`
//! cyclically rotate the rows / swap them.
//!
//! The slot-to-evaluation-point map is derived *empirically* at construction
//! time: we transform the monomial `x` to discover which NTT output index
//! holds which power of `ψ`, then place slot `i` of row one at exponent
//! `3^i` and slot `i` of row two at exponent `−3^i`. This keeps the encoder
//! correct for any NTT output ordering and is validated by the rotation
//! tests below.

use crate::bfv::Plaintext;
use crate::error::HeError;
use choco_math::modops::mul_mod;
use choco_math::ntt::NttTable;
use std::collections::HashMap;

/// Encodes vectors of integers mod `t` into plaintext polynomials and back.
#[derive(Debug, Clone)]
pub struct BatchEncoder {
    n: usize,
    t: u64,
    table: NttTable,
    /// `slot_to_index[i]` = NTT output index holding slot `i`'s value.
    slot_to_index: Vec<usize>,
}

impl BatchEncoder {
    /// Builds the encoder for degree `n` and plain modulus `t`.
    ///
    /// # Errors
    ///
    /// Returns [`HeError::BatchingUnsupported`] when `t` is not an
    /// NTT-friendly prime for degree `n`.
    pub fn new(n: usize, t: u64) -> Result<Self, HeError> {
        let table = NttTable::new(n, t).map_err(|_| HeError::BatchingUnsupported(t))?;
        // Discover exponent at each NTT output index by transforming x:
        // NTT(x)[i] = ψ^{e(i)} for some odd e(i).
        let mut xpoly = vec![0u64; n];
        xpoly[1] = 1;
        table.forward(&mut xpoly);
        let psi = table.psi();
        let m = 2 * n as u64;
        let mut val_to_exp: HashMap<u64, u64> = HashMap::with_capacity(n);
        let psi_sq = mul_mod(psi, psi, t);
        let mut v = psi;
        let mut e = 1u64;
        while e < m {
            val_to_exp.insert(v, e);
            v = mul_mod(v, psi_sq, t);
            e += 2;
        }
        let mut index_of_exp: HashMap<u64, usize> = HashMap::with_capacity(n);
        for (i, &val) in xpoly.iter().enumerate() {
            let exp = *val_to_exp
                .get(&val)
                .ok_or(HeError::BatchingUnsupported(t))?;
            index_of_exp.insert(exp, i);
        }
        // Row 1: slot i at exponent 3^i; row 2: slot i at exponent −3^i.
        let half = n / 2;
        let mut slot_to_index = vec![0usize; n];
        let mut pos = 1u64;
        for i in 0..half {
            slot_to_index[i] = index_of_exp[&pos];
            slot_to_index[half + i] = index_of_exp[&(m - pos)];
            pos = pos * 3 % m;
        }
        Ok(BatchEncoder {
            n,
            t,
            table,
            slot_to_index,
        })
    }

    /// Number of slots (`N`).
    pub fn slot_count(&self) -> usize {
        self.n
    }

    /// The plain modulus.
    pub fn plain_modulus(&self) -> u64 {
        self.t
    }

    /// Encodes up to `N` values (reduced mod `t`) into a plaintext;
    /// missing trailing slots are zero.
    ///
    /// # Errors
    ///
    /// Returns [`HeError::TooManyValues`] when more than `N` values are given.
    pub fn encode(&self, values: &[u64]) -> Result<Plaintext, HeError> {
        if values.len() > self.n {
            return Err(HeError::TooManyValues {
                got: values.len(),
                capacity: self.n,
            });
        }
        let mut evals = vec![0u64; self.n];
        for (i, &v) in values.iter().enumerate() {
            evals[self.slot_to_index[i]] = v % self.t;
        }
        self.table.inverse(&mut evals);
        Ok(Plaintext::from_coeffs(evals))
    }

    /// Encodes signed values (negatives map to `t − |v|`).
    ///
    /// # Errors
    ///
    /// Returns [`HeError::TooManyValues`] when more than `N` values are given.
    pub fn encode_signed(&self, values: &[i64]) -> Result<Plaintext, HeError> {
        let mapped: Vec<u64> = values
            .iter()
            .map(|&v| v.rem_euclid(self.t as i64) as u64)
            .collect();
        self.encode(&mapped)
    }

    /// Decodes a plaintext back into its `N` slot values.
    ///
    /// # Errors
    ///
    /// Returns [`HeError::Mismatch`] if the plaintext degree is wrong.
    pub fn decode(&self, pt: &Plaintext) -> Result<Vec<u64>, HeError> {
        if pt.coeffs().len() != self.n {
            return Err(HeError::Mismatch(format!(
                "plaintext degree {} != {}",
                pt.coeffs().len(),
                self.n
            )));
        }
        let mut evals = pt.coeffs().to_vec();
        self.table.forward(&mut evals);
        Ok((0..self.n).map(|i| evals[self.slot_to_index[i]]).collect())
    }

    /// Decodes into centered signed values in `(−t/2, t/2]`.
    ///
    /// # Errors
    ///
    /// Returns [`HeError::Mismatch`] if the plaintext degree is wrong.
    pub fn decode_signed(&self, pt: &Plaintext) -> Result<Vec<i64>, HeError> {
        Ok(self
            .decode(pt)?
            .into_iter()
            .map(|v| choco_math::modops::center(v, self.t))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use choco_math::poly::apply_galois;
    use choco_math::prime::generate_plain_modulus;

    fn encoder(n: usize) -> BatchEncoder {
        let t = generate_plain_modulus(17, n);
        BatchEncoder::new(n, t).unwrap()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let enc = encoder(64);
        let values: Vec<u64> = (0..64u64).map(|i| i * 11 % enc.plain_modulus()).collect();
        let pt = enc.encode(&values).unwrap();
        assert_eq!(enc.decode(&pt).unwrap(), values);
    }

    #[test]
    fn partial_vectors_pad_with_zero() {
        let enc = encoder(64);
        let pt = enc.encode(&[9, 8, 7]).unwrap();
        let out = enc.decode(&pt).unwrap();
        assert_eq!(&out[..3], &[9, 8, 7]);
        assert!(out[3..].iter().all(|&v| v == 0));
    }

    #[test]
    fn too_many_values_rejected() {
        let enc = encoder(64);
        let err = enc.encode(&vec![1u64; 65]).unwrap_err();
        assert!(matches!(
            err,
            HeError::TooManyValues {
                got: 65,
                capacity: 64
            }
        ));
    }

    #[test]
    fn polynomial_product_is_slotwise_product() {
        let enc = encoder(64);
        let t = enc.plain_modulus();
        let a: Vec<u64> = (0..64u64).map(|i| (i * 7 + 1) % t).collect();
        let b: Vec<u64> = (0..64u64).map(|i| (i * 13 + 5) % t).collect();
        let pa = enc.encode(&a).unwrap();
        let pb = enc.encode(&b).unwrap();
        let prod_poly = enc.table.negacyclic_mul(pa.coeffs(), pb.coeffs());
        let out = enc.decode(&Plaintext::from_coeffs(prod_poly)).unwrap();
        for i in 0..64 {
            assert_eq!(out[i], mul_mod(a[i], b[i], t), "slot {i}");
        }
    }

    #[test]
    fn galois_three_rotates_rows_left() {
        let enc = encoder(64);
        let half = 32usize;
        let values: Vec<u64> = (0..64).map(|i| i as u64 + 1).collect();
        let pt = enc.encode(&values).unwrap();
        let mut rotated = vec![0u64; 64];
        apply_galois(pt.coeffs(), 3, enc.plain_modulus(), &mut rotated);
        let out = enc.decode(&Plaintext::from_coeffs(rotated)).unwrap();
        for i in 0..half {
            assert_eq!(out[i], values[(i + 1) % half], "row1 slot {i}");
            assert_eq!(
                out[half + i],
                values[half + (i + 1) % half],
                "row2 slot {i}"
            );
        }
    }

    #[test]
    fn galois_minus_one_swaps_rows() {
        let enc = encoder(64);
        let values: Vec<u64> = (0..64).map(|i| i as u64 + 1).collect();
        let pt = enc.encode(&values).unwrap();
        let mut swapped = vec![0u64; 64];
        apply_galois(pt.coeffs(), 2 * 64 - 1, enc.plain_modulus(), &mut swapped);
        let out = enc.decode(&Plaintext::from_coeffs(swapped)).unwrap();
        assert_eq!(&out[..32], &values[32..]);
        assert_eq!(&out[32..], &values[..32]);
    }

    #[test]
    fn signed_encoding_centers_values() {
        let enc = encoder(64);
        let values: Vec<i64> = vec![-3, -2, -1, 0, 1, 2, 3];
        let pt = enc.encode_signed(&values).unwrap();
        let out = enc.decode_signed(&pt).unwrap();
        assert_eq!(&out[..7], &values[..]);
    }

    #[test]
    fn rejects_non_batching_modulus() {
        // 97 is prime but 97 ≢ 1 mod 128.
        assert!(matches!(
            BatchEncoder::new(64, 97).unwrap_err(),
            HeError::BatchingUnsupported(97)
        ));
    }

    #[test]
    fn works_at_production_degree() {
        let enc = encoder(8192);
        let values: Vec<u64> = (0..8192u64).collect();
        let pt = enc.encode(&values).unwrap();
        assert_eq!(enc.decode(&pt).unwrap(), values);
    }
}
