//! Property-based tests of the HE schemes' homomorphic invariants
//! (deterministic quickprop harness).

use choco_he::bfv::BfvContext;
use choco_he::ckks::CkksContext;
use choco_he::params::HeParams;
use choco_prng::Blake3Rng;
use choco_quickprop::run_cases;

fn bfv_ctx() -> BfvContext {
    let params = HeParams::bfv_insecure(256, &[40, 40, 41], 14).unwrap();
    BfvContext::new(&params).unwrap()
}

#[test]
fn bfv_roundtrip_random_slot_vectors() {
    run_cases("bfv roundtrip", 12, |g| {
        let ctx = bfv_ctx();
        let t = ctx.plain_modulus();
        let seed = g.u64();
        let mut rng = Blake3Rng::from_seed(&seed.to_le_bytes());
        let keys = ctx.keygen(&mut rng);
        let values: Vec<u64> = (0..ctx.degree() as u64)
            .map(|i| i.wrapping_mul(seed | 1) % t)
            .collect();
        let encoder = ctx.batch_encoder().unwrap();
        let pt = encoder.encode(&values).unwrap();
        let ct = ctx.encryptor(keys.public_key()).encrypt(&pt, &mut rng);
        let out = encoder
            .decode(&ctx.decryptor(keys.secret_key()).decrypt(&ct))
            .unwrap();
        assert_eq!(out, values);
    });
}

#[test]
fn bfv_addition_is_homomorphic() {
    run_cases("bfv addition homomorphic", 12, |g| {
        let ctx = bfv_ctx();
        let t = ctx.plain_modulus();
        let seed = g.u64();
        let mut rng = Blake3Rng::from_seed(&seed.to_le_bytes());
        let keys = ctx.keygen(&mut rng);
        let encoder = ctx.batch_encoder().unwrap();
        let a: Vec<u64> = (0..ctx.degree() as u64).map(|i| (i ^ seed) % t).collect();
        let b: Vec<u64> = (0..ctx.degree() as u64)
            .map(|i| i.rotate_left(7).wrapping_add(seed) % t)
            .collect();
        let enc = ctx.encryptor(keys.public_key());
        let ca = enc.encrypt(&encoder.encode(&a).unwrap(), &mut rng);
        let cb = enc.encrypt(&encoder.encode(&b).unwrap(), &mut rng);
        let sum = ctx.evaluator().add(&ca, &cb).unwrap();
        let out = encoder
            .decode(&ctx.decryptor(keys.secret_key()).decrypt(&sum))
            .unwrap();
        for i in 0..a.len() {
            assert_eq!(out[i], (a[i] + b[i]) % t);
        }
    });
}

#[test]
fn bfv_plain_multiplication_is_slotwise() {
    run_cases("bfv plain mul slotwise", 12, |g| {
        let ctx = bfv_ctx();
        let t = ctx.plain_modulus();
        let seed = g.u64();
        let mut rng = Blake3Rng::from_seed(&seed.to_le_bytes());
        let keys = ctx.keygen(&mut rng);
        let encoder = ctx.batch_encoder().unwrap();
        let a: Vec<u64> = (0..ctx.degree() as u64)
            .map(|i| (i.wrapping_mul(3).wrapping_add(seed)) % 16)
            .collect();
        let w: Vec<u64> = (0..ctx.degree() as u64)
            .map(|i| (i.wrapping_add(seed >> 5)) % 16)
            .collect();
        let enc = ctx.encryptor(keys.public_key());
        let ca = enc.encrypt(&encoder.encode(&a).unwrap(), &mut rng);
        let prod = ctx
            .evaluator()
            .multiply_plain(&ca, &encoder.encode(&w).unwrap());
        let out = encoder
            .decode(&ctx.decryptor(keys.secret_key()).decrypt(&prod))
            .unwrap();
        for i in 0..a.len() {
            assert_eq!(out[i], a[i] * w[i] % t);
        }
    });
}

#[test]
fn bfv_rotation_permutes_rows() {
    run_cases("bfv rotation permutes", 7, |g| {
        let step = g.i64_in(1, 8);
        let ctx = bfv_ctx();
        let mut rng = Blake3Rng::from_seed(b"prop rot");
        let keys = ctx.keygen(&mut rng);
        let gks = ctx
            .galois_keys(keys.secret_key(), &[step], &mut rng)
            .unwrap();
        let encoder = ctx.batch_encoder().unwrap();
        let half = ctx.degree() / 2;
        let values: Vec<u64> = (0..ctx.degree() as u64).collect();
        let ct = ctx
            .encryptor(keys.public_key())
            .encrypt(&encoder.encode(&values).unwrap(), &mut rng);
        let rot = ctx.evaluator().rotate_rows(&ct, step, &gks).unwrap();
        let out = encoder
            .decode(&ctx.decryptor(keys.secret_key()).decrypt(&rot))
            .unwrap();
        for i in 0..half {
            assert_eq!(out[i], values[(i + step as usize) % half]);
        }
    });
}

#[test]
fn ckks_add_tracks_float_sum() {
    run_cases("ckks add tracks sum", 12, |g| {
        let params = HeParams::ckks_insecure(256, &[45, 45, 46], 38).unwrap();
        let ctx = CkksContext::new(&params).unwrap();
        let seed = g.u32();
        let mut rng = Blake3Rng::from_seed(&seed.to_le_bytes());
        let keys = ctx.keygen(&mut rng);
        let a: Vec<f64> = (0..ctx.slot_count())
            .map(|i| ((i as u32 ^ seed) % 100) as f64 / 10.0)
            .collect();
        let b: Vec<f64> = (0..ctx.slot_count())
            .map(|i| ((i as u32).wrapping_add(seed) % 100) as f64 / 10.0)
            .collect();
        let ca = ctx
            .encrypt(&ctx.encode(&a).unwrap(), keys.public_key(), &mut rng)
            .unwrap();
        let cb = ctx
            .encrypt(&ctx.encode(&b).unwrap(), keys.public_key(), &mut rng)
            .unwrap();
        let sum = ctx.add(&ca, &cb).unwrap();
        let out = ctx.decode(&ctx.decrypt(&sum, keys.secret_key()));
        for i in 0..a.len() {
            assert!((out[i] - (a[i] + b[i])).abs() < 1e-2);
        }
    });
}

#[test]
fn ckks_encoder_is_linear() {
    run_cases("ckks encoder linear", 12, |g| {
        let params = HeParams::ckks_insecure(256, &[45, 45, 46], 38).unwrap();
        let ctx = CkksContext::new(&params).unwrap();
        let seed = g.u32();
        let a: Vec<f64> = (0..ctx.slot_count())
            .map(|i| (((i as u32) ^ seed) % 64) as f64 / 8.0 - 4.0)
            .collect();
        let b: Vec<f64> = (0..ctx.slot_count())
            .map(|i| ((i as u32).wrapping_mul(seed | 1) % 64) as f64 / 8.0 - 4.0)
            .collect();
        // decode(encode(a)) + decode(encode(b)) ≈ decode over slot sums.
        let da = ctx.decode(&ctx.encode(&a).unwrap());
        let db = ctx.decode(&ctx.encode(&b).unwrap());
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let ds = ctx.decode(&ctx.encode(&sum).unwrap());
        for i in 0..8 {
            assert!((da[i] + db[i] - ds[i]).abs() < 1e-4);
        }
    });
}

#[test]
fn serialization_roundtrips_any_fresh_ciphertext() {
    run_cases("serialization roundtrip", 12, |g| {
        use choco_he::serialize::{ciphertext_from_bytes, ciphertext_to_bytes};
        let ctx = bfv_ctx();
        let seed = g.u64();
        let mut rng = Blake3Rng::from_seed(&seed.to_le_bytes());
        let keys = ctx.keygen(&mut rng);
        let t = ctx.plain_modulus();
        let values: Vec<u64> = (0..ctx.degree() as u64)
            .map(|i| i.wrapping_add(seed) % t)
            .collect();
        let encoder = ctx.batch_encoder().unwrap();
        let ct = ctx
            .encryptor(keys.public_key())
            .encrypt(&encoder.encode(&values).unwrap(), &mut rng);
        let back = ciphertext_from_bytes(&ciphertext_to_bytes(&ct)).unwrap();
        assert_eq!(&back, &ct);
        let out = encoder
            .decode(&ctx.decryptor(keys.secret_key()).decrypt(&back))
            .unwrap();
        assert_eq!(out, values);
    });
}

#[test]
fn seeded_encryption_roundtrips_any_vector() {
    run_cases("seeded encryption roundtrip", 12, |g| {
        let ctx = bfv_ctx();
        let seed = g.u64();
        let mut rng = Blake3Rng::from_seed(&seed.to_le_bytes());
        let keys = ctx.keygen(&mut rng);
        let t = ctx.plain_modulus();
        let values: Vec<u64> = (0..ctx.degree() as u64)
            .map(|i| ((i * 3) ^ seed) % t)
            .collect();
        let encoder = ctx.batch_encoder().unwrap();
        let pt = encoder.encode(&values).unwrap();
        let seeded = ctx.encrypt_symmetric_seeded(&pt, keys.secret_key(), &mut rng);
        let out = encoder
            .decode(
                &ctx.decryptor(keys.secret_key())
                    .decrypt(&ctx.expand_seeded(&seeded)),
            )
            .unwrap();
        assert_eq!(out, values);
    });
}

#[test]
fn hoisted_rotations_match_naive_per_step() {
    run_cases("hoisted rotations match naive", 5, |g| {
        let ctx = bfv_ctx();
        let t = ctx.plain_modulus();
        let seed = g.u64();
        let mut rng = Blake3Rng::from_seed(&seed.to_le_bytes());
        let keys = ctx.keygen(&mut rng);
        let steps = vec![1i64, 2, g.i64_in(3, 8)];
        let gks = ctx
            .galois_keys(keys.secret_key(), &steps, &mut rng)
            .unwrap();
        let encoder = ctx.batch_encoder().unwrap();
        let values: Vec<u64> = (0..ctx.degree() as u64)
            .map(|i| i.wrapping_mul(seed | 1) % t)
            .collect();
        let ct = ctx
            .encryptor(keys.public_key())
            .encrypt(&encoder.encode(&values).unwrap(), &mut rng);
        let dec = ctx.decryptor(keys.secret_key());
        let hoisted = ctx.evaluator().rotate_rows_many(&ct, &steps, &gks).unwrap();
        for (s, h) in steps.iter().zip(&hoisted) {
            let naive = ctx.evaluator().rotate_rows(&ct, *s, &gks).unwrap();
            assert_eq!(
                encoder.decode(&dec.decrypt(h)).unwrap(),
                encoder.decode(&dec.decrypt(&naive)).unwrap(),
                "hoisted rotation by {s} decrypts differently"
            );
            // Hoisting reorganizes the key switch; it must not cost noise
            // beyond rounding jitter relative to the per-step path.
            assert!(
                dec.invariant_noise_budget(h) >= dec.invariant_noise_budget(&naive) - 1.0,
                "hoisted rotation by {s} lost noise budget"
            );
        }
    });
}

#[test]
fn fused_dot_rotations_matches_rotate_multiply_add_chain() {
    run_cases("fused dot rotations match chain", 5, |g| {
        let ctx = bfv_ctx();
        let t = ctx.plain_modulus();
        let seed = g.u64();
        let mut rng = Blake3Rng::from_seed(&seed.to_le_bytes());
        let keys = ctx.keygen(&mut rng);
        let steps = [0i64, 1, 2, g.i64_in(3, 8)];
        let gks = ctx
            .galois_keys(keys.secret_key(), &steps[1..], &mut rng)
            .unwrap();
        let encoder = ctx.batch_encoder().unwrap();
        let values: Vec<u64> = (0..ctx.degree() as u64).map(|i| (i ^ seed) % t).collect();
        let ct = ctx
            .encryptor(keys.public_key())
            .encrypt(&encoder.encode(&values).unwrap(), &mut rng);
        let eval = ctx.evaluator();
        let pairs: Vec<_> = steps
            .iter()
            .enumerate()
            .map(|(j, &s)| {
                let w: Vec<u64> = (0..ctx.degree() as u64)
                    .map(|i| (i.wrapping_add(j as u64).wrapping_add(seed >> 7)) % 32)
                    .collect();
                (s, encoder.encode(&w).unwrap())
            })
            .collect();
        let fused = eval.dot_rotations_plain(&ct, &pairs, &gks).unwrap();
        let mut chain: Option<choco_he::bfv::Ciphertext> = None;
        for (s, pt) in &pairs {
            let rot = if *s == 0 {
                ct.clone()
            } else {
                eval.rotate_rows(&ct, *s, &gks).unwrap()
            };
            let term = eval.multiply_plain(&rot, pt);
            chain = Some(match chain {
                None => term,
                Some(c) => eval.add(&c, &term).unwrap(),
            });
        }
        let chain = chain.unwrap();
        let dec = ctx.decryptor(keys.secret_key());
        assert_eq!(
            encoder.decode(&dec.decrypt(&fused)).unwrap(),
            encoder.decode(&dec.decrypt(&chain)).unwrap(),
            "fused dot decrypts differently"
        );
        // Second hoisting rounds once for the whole sum, so the fused path
        // must be at least as healthy as the chain (up to estimator jitter).
        assert!(
            dec.invariant_noise_budget(&fused) >= dec.invariant_noise_budget(&chain) - 1.0,
            "fused dot lost noise budget"
        );
    });
}

#[test]
fn parallel_and_sequential_evaluation_bit_identical() {
    run_cases("parallel evaluation bit identical", 3, |g| {
        let seed = g.u64();
        let pipeline = |threads: usize| {
            choco_math::par::set_num_threads(threads);
            let ctx = bfv_ctx();
            let t = ctx.plain_modulus();
            let mut rng = Blake3Rng::from_seed(&seed.to_le_bytes());
            let keys = ctx.keygen(&mut rng);
            let gks = ctx
                .galois_keys(keys.secret_key(), &[1, 3], &mut rng)
                .unwrap();
            let encoder = ctx.batch_encoder().unwrap();
            let values: Vec<u64> = (0..ctx.degree() as u64)
                .map(|i| i.wrapping_add(seed) % t)
                .collect();
            let pt = encoder.encode(&values).unwrap();
            let ct = ctx.encryptor(keys.public_key()).encrypt(&pt, &mut rng);
            let prod = ctx.evaluator().multiply_plain(&ct, &pt);
            let rots = ctx
                .evaluator()
                .rotate_rows_many(&prod, &[1, 3], &gks)
                .unwrap();
            let out = ctx.evaluator().add(&rots[0], &rots[1]).unwrap();
            choco_math::par::set_num_threads(0); // restore the default
            out
        };
        let seq = pipeline(1);
        assert_eq!(seq, pipeline(2), "2 worker threads diverged");
        let max = choco_math::par::num_threads().max(2);
        assert_eq!(seq, pipeline(max), "{max} worker threads diverged");
    });
}

#[test]
fn bfv_noise_budget_never_increases_under_ops() {
    run_cases("noise budget monotone", 12, |g| {
        let ctx = bfv_ctx();
        let seed = g.u64();
        let mut rng = Blake3Rng::from_seed(&seed.to_le_bytes());
        let keys = ctx.keygen(&mut rng);
        let encoder = ctx.batch_encoder().unwrap();
        let dec = ctx.decryptor(keys.secret_key());
        let values: Vec<u64> = (0..ctx.degree() as u64).map(|i| i % 13).collect();
        let pt = encoder.encode(&values).unwrap();
        let ct = ctx.encryptor(keys.public_key()).encrypt(&pt, &mut rng);
        let fresh = dec.invariant_noise_budget(&ct);
        let added = ctx.evaluator().add(&ct, &ct).unwrap();
        assert!(dec.invariant_noise_budget(&added) <= fresh + 0.5);
        let mul = ctx.evaluator().multiply_plain(&ct, &pt);
        assert!(dec.invariant_noise_budget(&mul) < fresh);
    });
}
