//! Edge-case and failure-injection tests for the HE layer: wrong keys,
//! exhausted budgets, cross-context misuse, and boundary plaintexts.

use choco_he::bfv::{BfvContext, Plaintext};
use choco_he::params::HeParams;
use choco_he::HeError;
use choco_prng::Blake3Rng;

fn ctx() -> BfvContext {
    let params = HeParams::bfv_insecure(512, &[40, 40, 41], 14).unwrap();
    BfvContext::new(&params).unwrap()
}

#[test]
fn wrong_secret_key_decrypts_to_garbage() {
    let ctx = ctx();
    let mut rng = Blake3Rng::from_seed(b"right");
    let keys = ctx.keygen(&mut rng);
    let mut rng2 = Blake3Rng::from_seed(b"wrong");
    let other = ctx.keygen(&mut rng2);

    let msg: Vec<u64> = (0..ctx.degree() as u64).map(|i| i % 7).collect();
    let pt = Plaintext::from_coeffs(msg.clone());
    let ct = ctx.encryptor(keys.public_key()).encrypt(&pt, &mut rng);
    let wrong = ctx.decryptor(other.secret_key()).decrypt(&ct);
    assert_ne!(wrong.coeffs(), &msg[..], "wrong key must not decrypt");
    // And the wrong key sees zero noise budget (pure noise).
    let budget = ctx
        .decryptor(other.secret_key())
        .invariant_noise_budget(&ct);
    assert!(budget < 1.0, "wrong key sees (near-)zero budget: {budget}");
}

#[test]
fn noise_exhaustion_destroys_the_message() {
    // Chain plaintext multiplies until the budget is gone; decryption then
    // returns garbage, and the budget reports 0 — the undecryptable state
    // §2.1 describes.
    let ctx = ctx();
    let mut rng = Blake3Rng::from_seed(b"exhaust");
    let keys = ctx.keygen(&mut rng);
    let dec = ctx.decryptor(keys.secret_key());
    let eval = ctx.evaluator();
    let encoder = ctx.batch_encoder().unwrap();
    let t = ctx.plain_modulus();
    // A non-constant multiplier (an all-ones slot vector would encode to the
    // constant polynomial 1 and add no noise).
    let mvals: Vec<u64> = (0..ctx.degree() as u64).map(|i| i % 16).collect();
    let mpt = encoder.encode(&mvals).unwrap();

    let start: Vec<u64> = vec![3; ctx.degree()];
    let mut expect = start.clone();
    let mut ct = ctx
        .encryptor(keys.public_key())
        .encrypt(&encoder.encode(&start).unwrap(), &mut rng);
    let mut budgets = vec![dec.invariant_noise_budget(&ct)];
    for _ in 0..10 {
        ct = eval.multiply_plain(&ct, &mpt);
        for (e, &m) in expect.iter_mut().zip(&mvals) {
            *e = *e * m % t;
        }
        budgets.push(dec.invariant_noise_budget(&ct));
        if *budgets.last().unwrap() < 0.5 {
            break;
        }
    }
    assert!(
        *budgets.last().unwrap() < 0.5,
        "budget must collapse to ~zero: {budgets:?}"
    );
    assert!(
        budgets.windows(2).all(|w| w[1] <= w[0] + 0.5),
        "budget must be non-increasing: {budgets:?}"
    );
    // With the budget exhausted, decryption no longer matches the
    // mathematically expected slotwise products.
    let out = encoder.decode(&dec.decrypt(&ct)).unwrap();
    assert_ne!(out, expect, "exhausted ciphertext must corrupt");
}

#[test]
fn empty_and_full_slot_vectors_roundtrip() {
    let ctx = ctx();
    let encoder = ctx.batch_encoder().unwrap();
    // Empty input → all-zero slots.
    let pt = encoder.encode(&[]).unwrap();
    assert!(encoder.decode(&pt).unwrap().iter().all(|&v| v == 0));
    // Max values at every slot.
    let t = ctx.plain_modulus();
    let full = vec![t - 1; ctx.degree()];
    let pt = encoder.encode(&full).unwrap();
    assert_eq!(encoder.decode(&pt).unwrap(), full);
}

#[test]
fn galois_keys_report_their_elements() {
    let ctx = ctx();
    let mut rng = Blake3Rng::from_seed(b"gk");
    let keys = ctx.keygen(&mut rng);
    let gks = ctx
        .galois_keys(keys.secret_key(), &[1, 2], &mut rng)
        .unwrap();
    let elements = gks.elements();
    // Two rotation elements plus the column-swap element 2N−1.
    assert_eq!(elements.len(), 3);
    assert!(elements.contains(&(2 * ctx.degree() as u64 - 1)));
    assert!(gks.size_bytes() > 0);
}

#[test]
fn missing_galois_key_is_a_clean_error() {
    let ctx = ctx();
    let mut rng = Blake3Rng::from_seed(b"missing");
    let keys = ctx.keygen(&mut rng);
    let gks = ctx.galois_keys(keys.secret_key(), &[1], &mut rng).unwrap();
    let pt = Plaintext::from_coeffs(vec![1; ctx.degree()]);
    let ct = ctx.encryptor(keys.public_key()).encrypt(&pt, &mut rng);
    // Step 3 was never provisioned.
    let err = ctx.evaluator().rotate_rows(&ct, 3, &gks).unwrap_err();
    assert!(matches!(err, HeError::MissingGaloisKey(_)));
}

#[test]
fn rotating_a_three_part_ciphertext_is_rejected() {
    let ctx = ctx();
    let mut rng = Blake3Rng::from_seed(b"3part");
    let keys = ctx.keygen(&mut rng);
    let gks = ctx.galois_keys(keys.secret_key(), &[1], &mut rng).unwrap();
    let pt = Plaintext::from_coeffs(vec![2; ctx.degree()]);
    let ct = ctx.encryptor(keys.public_key()).encrypt(&pt, &mut rng);
    let prod = ctx.evaluator().multiply(&ct, &ct).unwrap();
    assert!(matches!(
        ctx.evaluator().rotate_rows(&prod, 1, &gks).unwrap_err(),
        HeError::InvalidCiphertext(_)
    ));
    // Relinearize first, then rotation works.
    let rk = ctx.relin_key(keys.secret_key(), &mut rng).unwrap();
    let rel = ctx.evaluator().relinearize(&prod, &rk).unwrap();
    assert!(ctx.evaluator().rotate_rows(&rel, 1, &gks).is_ok());
}

#[test]
fn keygen_is_deterministic_per_seed() {
    let ctx = ctx();
    let ct_a = {
        let mut rng = Blake3Rng::from_seed(b"det seed");
        let keys = ctx.keygen(&mut rng);
        let pt = Plaintext::from_coeffs(vec![5; ctx.degree()]);
        ctx.encryptor(keys.public_key()).encrypt(&pt, &mut rng)
    };
    let ct_b = {
        let mut rng = Blake3Rng::from_seed(b"det seed");
        let keys = ctx.keygen(&mut rng);
        let pt = Plaintext::from_coeffs(vec![5; ctx.degree()]);
        ctx.encryptor(keys.public_key()).encrypt(&pt, &mut rng)
    };
    assert_eq!(ct_a, ct_b, "same seed, same keys, same ciphertext");
}

#[test]
fn relin_key_size_accounting() {
    let ctx = ctx();
    let mut rng = Blake3Rng::from_seed(b"sizes");
    let keys = ctx.keygen(&mut rng);
    let rk = ctx.relin_key(keys.secret_key(), &mut rng).unwrap();
    // 2 digits × 2 polys × 3 full-basis residues × 512 coeffs × 8 B.
    assert_eq!(rk.size_bytes(), 2 * 2 * 3 * 512 * 8);
}
