//! Proof of the `PolyPool` steady-state property: once the evaluator is
//! warm, the kernel hot path (key switching, hoisted rotation, fused
//! rotation dot products) performs **zero fresh polynomial-buffer
//! allocations** — every row and scratch buffer is served from the pool's
//! free lists. The pool's global counters make this directly observable:
//! over a warm evaluation loop, `fresh` must not move while `reused` must.
//!
//! Scope note: "zero-alloc" is a statement about polynomial buffers (the
//! `Vec<u64>` rows and `Vec<u128>` accumulators that dominate steady-state
//! traffic), not about every allocation in the process. Small bookkeeping
//! allocations — ciphertext part vectors, galois permutation tables, the
//! big-integer temporaries of BFV's exact tensor scaling — are outside the
//! pool by design (see DESIGN.md §12).

use choco_he::bfv::BfvContext;
use choco_he::ckks::CkksContext;
use choco_he::params::HeParams;
use choco_math::pool::PolyPool;
use choco_prng::Blake3Rng;

#[test]
fn warm_evaluation_loop_allocates_no_polynomial_buffers() {
    // ---- BFV: keyswitch → hoisted rotation → matvec-style fused dot ----
    let params = HeParams::bfv_insecure(256, &[40, 40, 41], 14).unwrap();
    let ctx = BfvContext::new(&params).unwrap();
    let mut rng = Blake3Rng::from_seed(b"zero-alloc-bfv");
    let keys = ctx.keygen(&mut rng);
    let rk = ctx.relin_key(keys.secret_key(), &mut rng).unwrap();
    let steps = [1i64, 2, 3];
    let gks = ctx
        .galois_keys(keys.secret_key(), &steps, &mut rng)
        .unwrap();
    let encoder = ctx.batch_encoder().unwrap();
    let t = ctx.plain_modulus();
    let values: Vec<u64> = (0..ctx.degree() as u64).map(|i| i % t).collect();
    let pt = encoder.encode(&values).unwrap();
    let ct = ctx.encryptor(keys.public_key()).encrypt(&pt, &mut rng);
    let eval = ctx.evaluator();
    let pairs: Vec<_> = [0i64, 1, 2]
        .iter()
        .map(|&s| {
            let w: Vec<u64> = (0..ctx.degree() as u64)
                .map(|i| (i + s as u64) % 8)
                .collect();
            (s, encoder.encode(&w).unwrap())
        })
        .collect();

    let bfv_round = |out: &mut u64| {
        // Keyswitch: ct·ct multiply + relinearization.
        let prod = eval.multiply(&ct, &ct).unwrap();
        let relin = eval.relinearize(&prod, &rk).unwrap();
        // Hoisted rotation: one shared decomposition, several rotations.
        let rots = eval.rotate_rows_many(&relin, &steps, &gks).unwrap();
        // Matvec kernel: double-hoisted rotation dot product + NTT dot.
        let fused = eval.dot_rotations_plain(&ct, &pairs, &gks).unwrap();
        let dot = eval
            .dot_plain(&[ct.clone(), fused], &[pt.clone(), pt.clone()])
            .unwrap();
        // Keep results observable so nothing is optimised away.
        *out ^= rots[0].part(0).row(0)[0] ^ dot.part(0).row(0)[0];
    };

    // ---- CKKS: multiply+relin (keyswitch) → rescale → rotations ----
    let cparams = HeParams::ckks_insecure(256, &[45, 45, 46], 38).unwrap();
    let cctx = CkksContext::new(&cparams).unwrap();
    let mut crng = Blake3Rng::from_seed(b"zero-alloc-ckks");
    let ckeys = cctx.keygen(&mut crng);
    let crk = cctx.relin_key(ckeys.secret_key(), &mut crng);
    let cgks = cctx.galois_keys(ckeys.secret_key(), &[1, 2], &mut crng);
    let vals: Vec<f64> = (0..cctx.slot_count())
        .map(|i| (i % 7) as f64 / 8.0)
        .collect();
    let cpt = cctx.encode(&vals).unwrap();
    let cct = cctx.encrypt(&cpt, ckeys.public_key(), &mut crng).unwrap();

    let ckks_round = |out: &mut u64| {
        let prod = cctx.multiply_relin(&cct, &cct, &crk).unwrap();
        let scaled = cctx.rescale(&prod).unwrap();
        let r1 = cctx.rotate(&scaled, 1, &cgks).unwrap();
        let r2 = cctx.rotate(&r1, 2, &cgks).unwrap();
        *out ^= r2.part(0).row(0)[0];
    };

    // Warm the pool: the first passes populate every size class the loop
    // touches (including per-thread shard spill patterns).
    let mut sink = 0u64;
    for _ in 0..2 {
        bfv_round(&mut sink);
        ckks_round(&mut sink);
    }

    let before = PolyPool::stats();
    for _ in 0..4 {
        bfv_round(&mut sink);
        ckks_round(&mut sink);
    }
    let after = PolyPool::stats();
    assert!(sink != u64::MAX, "keep the results alive");

    assert_eq!(
        after.fresh - before.fresh,
        0,
        "warm evaluation loop hit the allocator for polynomial buffers \
         (fresh {} -> {}, reused {} -> {})",
        before.fresh,
        after.fresh,
        before.reused,
        after.reused
    );
    assert!(
        after.reused > before.reused,
        "warm loop should be served from the pool (reused {} -> {})",
        before.reused,
        after.reused
    );
    assert!(
        after.recycled > before.recycled,
        "warm loop should return buffers to the pool"
    );
}
