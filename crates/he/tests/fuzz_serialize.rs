//! Mutation fuzzing of the wire deserializers (deterministic quickprop
//! harness).
//!
//! The deserializers sit on the trust boundary: anything a channel can
//! mangle reaches them verbatim. The contract is *never panic* — every
//! mutated frame either fails with a typed [`HeError`] or parses as some
//! well-formed ciphertext (semantic integrity is the transport tag's job,
//! one layer up).

use choco_he::bfv::{BfvContext, Plaintext};
use choco_he::ckks::CkksContext;
use choco_he::params::HeParams;
use choco_he::serialize::{
    ciphertext_from_bytes, ciphertext_to_bytes, ckks_ciphertext_from_bytes,
    ckks_ciphertext_to_bytes,
};
use choco_prng::Blake3Rng;
use choco_quickprop::{run_cases, Gen};

fn bfv_frame() -> Vec<u8> {
    let params = HeParams::bfv_insecure(256, &[40, 40, 41], 14).unwrap();
    let ctx = BfvContext::new(&params).unwrap();
    let mut rng = Blake3Rng::from_seed(b"fuzz serialize bfv");
    let keys = ctx.keygen(&mut rng);
    let pt = Plaintext::from_coeffs((0..256u64).map(|i| i % 100).collect());
    let ct = ctx.encryptor(keys.public_key()).encrypt(&pt, &mut rng);
    ciphertext_to_bytes(&ct)
}

fn ckks_frame() -> Vec<u8> {
    let params = HeParams::ckks_insecure(256, &[45, 45, 46], 38).unwrap();
    let ctx = CkksContext::new(&params).unwrap();
    let mut rng = Blake3Rng::from_seed(b"fuzz serialize ckks");
    let keys = ctx.keygen(&mut rng);
    let values: Vec<f64> = (0..ctx.slot_count()).map(|i| i as f64 / 8.0).collect();
    let pt = ctx.encode(&values).unwrap();
    let ct = ctx.encrypt(&pt, keys.public_key(), &mut rng).unwrap();
    ckks_ciphertext_to_bytes(&ct)
}

/// Applies a random mutation (byte flips, truncation, extension, or a
/// combination) to `frame`.
fn mutate(g: &mut Gen, frame: &[u8]) -> Vec<u8> {
    let mut bytes = frame.to_vec();
    match g.u64_below(4) {
        0 => {
            // Flip 1..=8 random bytes anywhere in the frame.
            for _ in 0..g.usize_in(1, 9) {
                let i = g.usize_in(0, bytes.len());
                bytes[i] ^= g.u8().max(1);
            }
        }
        1 => {
            // Truncate to a random prefix (possibly empty).
            bytes.truncate(g.usize_in(0, bytes.len()));
        }
        2 => {
            // Append random garbage.
            bytes.extend(g.bytes(64));
        }
        _ => {
            // Truncate then flip — compound damage.
            bytes.truncate(g.usize_in(1, bytes.len()));
            let i = g.usize_in(0, bytes.len());
            bytes[i] ^= g.u8().max(1);
        }
    }
    bytes
}

#[test]
fn bfv_deserializer_never_panics_on_mutations() {
    let frame = bfv_frame();
    run_cases("bfv mutation fuzz", 256, |g| {
        let bytes = mutate(g, &frame);
        // Err or Ok are both acceptable; a panic fails the whole property
        // (quickprop catches it and reports the case index).
        let _ = ciphertext_from_bytes(&bytes);
    });
}

#[test]
fn ckks_deserializer_never_panics_on_mutations() {
    let frame = ckks_frame();
    run_cases("ckks mutation fuzz", 256, |g| {
        let bytes = mutate(g, &frame);
        let _ = ckks_ciphertext_from_bytes(&bytes);
    });
}

#[test]
fn deserializers_never_panic_on_pure_noise() {
    run_cases("noise fuzz", 256, |g| {
        let bytes = g.bytes(512);
        let _ = ciphertext_from_bytes(&bytes);
        let _ = ckks_ciphertext_from_bytes(&bytes);
    });
}

#[test]
fn truncations_always_yield_typed_errors() {
    // Every strict prefix must fail cleanly — a shorter frame can never be
    // a valid ciphertext of the same header.
    let frame = bfv_frame();
    for len in 0..frame.len() {
        assert!(
            ciphertext_from_bytes(&frame[..len]).is_err(),
            "prefix of {len} bytes parsed"
        );
    }
    let frame = ckks_frame();
    for len in 0..frame.len() {
        assert!(
            ckks_ciphertext_from_bytes(&frame[..len]).is_err(),
            "ckks prefix of {len} bytes parsed"
        );
    }
}
