//! Schedule-permutation race tests: the worker pool's chunk boundaries and
//! spawn order are deterministically perturbed across a sweep of seeds and
//! thread counts, and the *serialized ciphertext bytes* of a full
//! keygen → encrypt → rotate → multiply → relinearize pipeline must come
//! out bit-identical every time. Any data race or schedule-dependent
//! ordering in the parallel NTT/key-switch kernels would show up here as a
//! byte diff.

use choco_he::bfv::BfvContext;
use choco_he::params::HeParams;
use choco_he::serialize::ciphertext_to_bytes;
use choco_math::par;
use choco_prng::Blake3Rng;

/// One full deterministic pipeline run; everything derives from fixed seeds,
/// so the only degree of freedom left is the worker schedule.
fn pipeline_bytes() -> Vec<u8> {
    let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 18).unwrap();
    let ctx = BfvContext::new(&params).unwrap();
    let mut rng = Blake3Rng::from_seed(b"schedule race");
    let keys = ctx.keygen(&mut rng);
    let rk = ctx.relin_key(keys.secret_key(), &mut rng).unwrap();
    let gk = ctx
        .galois_keys(keys.secret_key(), &[1, -3], &mut rng)
        .unwrap();
    let encoder = ctx.batch_encoder().unwrap();
    let t = ctx.plain_modulus();

    let a: Vec<u64> = (0..ctx.degree() as u64).map(|i| (i * 17 + 3) % t).collect();
    let b: Vec<u64> = (0..ctx.degree() as u64).map(|i| (i * 29 + 7) % t).collect();
    let ca = ctx
        .encryptor(keys.public_key())
        .encrypt(&encoder.encode(&a).unwrap(), &mut rng);
    let cb = ctx
        .encryptor(keys.public_key())
        .encrypt(&encoder.encode(&b).unwrap(), &mut rng);

    let eval = ctx.evaluator();
    let rot = eval.rotate_rows(&ca, 1, &gk).unwrap();
    let prod = eval.multiply_relin(&rot, &cb, &rk).unwrap();
    let out = eval.add(&prod, &ca).unwrap();
    ciphertext_to_bytes(&out)
}

#[test]
fn pipeline_bytes_are_schedule_independent() {
    // Reference: strictly sequential, no perturbation.
    par::set_schedule_perturbation(0);
    par::set_num_threads(1);
    let reference = pipeline_bytes();

    for &threads in &[2usize, 4, 8] {
        for &seed in &[0u64, 1, 42, 0xc0ffee, 0x5eed_5eed_5eed_5eed] {
            par::set_num_threads(threads);
            par::set_schedule_perturbation(seed);
            let got = pipeline_bytes();
            assert_eq!(
                got, reference,
                "ciphertext bytes diverged at {threads} threads, perturbation seed {seed:#x}"
            );
        }
    }
    par::set_schedule_perturbation(0);
    par::set_num_threads(0);
}
