//! Server-side compiled-program and operand caches.
//!
//! Steady-state offload traffic evaluates the same circuits against the
//! same server-known models over and over, across requests and across
//! tenants that share a parameter set. The expensive per-program work —
//! compiling the source program, encoding each plaintext constant into
//! the scheme's evaluation domain at its exact use site — is fully
//! determined by `(params recipe, program bytes, compiler options)`, so it
//! is cached globally under the BLAKE3 pair `(params_hash, program_ref)`:
//!
//! * [`ServeCache`] holds one LRU [`OperandCache`] of compiled programs
//!   per scheme. A hit hands out an `Arc` of the cached entry; a miss with
//!   the program body attached compiles (counted); a miss without the body
//!   is reported as [`ProgramLookup::NeedProgram`] so the client resends
//!   with the body.
//! * Each cached entry is a [`CachedProgram`]: the verified
//!   [`CompiledProgram`] plus its [`ExecCache`] of encoded plaintext
//!   operands, shared by every request (any tenant) that evaluates it.
//!
//! Sharing across tenants is safe by construction: cached artifacts are
//! deterministic functions of *public* inputs (the program and the
//! parameter recipe) — no key material and no ciphertext data is ever
//! cached. Counters on both layers let tests and live stats prove that
//! warm traffic does zero recompilation and zero re-encoding.

use choco::compiler::{compile, CompilerOptions, ExecCache};
use choco::remote::program_from_wire;
use choco_he::cache::{CacheCounters, OperandCache};
use choco_he::{Bfv, Ckks};
use std::sync::{Arc, Mutex, MutexGuard};

pub use choco::compiler::{CompiledProgram, CompilerScheme};

/// The global cache key: `(params_hash, program_ref)`.
pub type ProgramKey = ([u8; 32], [u8; 32]);

/// The extra thread-safety a scheme needs to be evaluated server-side:
/// its artifacts cross from connection workers to the batch scheduler's
/// execution threads. Both schemes' concrete types are plain owned data,
/// so the bounds hold automatically; the trait also routes each scheme to
/// its slot in the [`ServeCache`].
pub trait EvalScheme:
    CompilerScheme
    + choco_he::HeScheme<
        Context: Send + Sync,
        Ciphertext: Send + Sync,
        RelinKey: Send + Sync,
        GaloisKeys: Send + Sync,
    >
{
    /// This scheme's program-cache slot.
    fn cache_slot(cache: &ServeCache) -> &Mutex<OperandCache<ProgramKey, Arc<CachedProgram<Self>>>>
    where
        Self: Sized;
}

impl EvalScheme for Bfv {
    fn cache_slot(cache: &ServeCache) -> &Mutex<OperandCache<ProgramKey, Arc<CachedProgram<Bfv>>>> {
        &cache.bfv
    }
}

impl EvalScheme for Ckks {
    fn cache_slot(
        cache: &ServeCache,
    ) -> &Mutex<OperandCache<ProgramKey, Arc<CachedProgram<Ckks>>>> {
        &cache.ckks
    }
}

/// One resident compiled program: the schedule plus the shared cache of
/// its encoded plaintext operands.
#[derive(Debug)]
pub struct CachedProgram<S: CompilerScheme> {
    /// The compiled, statically verified schedule.
    pub compiled: CompiledProgram,
    /// Encoded-operand cache shared by every evaluation of this program.
    pub operands: ExecCache<S>,
}

/// Result of a program lookup.
pub enum ProgramLookup<S: CompilerScheme> {
    /// Cached (or just compiled) and ready to execute.
    Ready(Arc<CachedProgram<S>>),
    /// Not cached and the request carried no body: the client must resend
    /// with the program attached.
    NeedProgram,
}

/// Point-in-time cache accounting, aggregated across both schemes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalCacheStats {
    /// Program-cache lookups (hits/misses/insertions/evictions). `misses`
    /// includes `NeedProgram` round trips; `insertions` counts successful
    /// compiles.
    pub programs: CacheCounters,
    /// Real `compile()` invocations (the steady-state zero-recompile
    /// proof asserts this stays flat under warm traffic).
    pub compiles: u64,
    /// Operand-encode counters aggregated over *resident* programs
    /// (`misses` = real encodes; evicted programs take their counters
    /// with them).
    pub operands: CacheCounters,
}

/// The server's global artifact cache (see module docs).
#[derive(Debug)]
pub struct ServeCache {
    bfv: Mutex<OperandCache<ProgramKey, Arc<CachedProgram<Bfv>>>>,
    ckks: Mutex<OperandCache<ProgramKey, Arc<CachedProgram<Ckks>>>>,
    compiles: Mutex<u64>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Sentinel "builder failure" used to record a typed miss when the body is
/// absent (the failed build is counted but nothing is cached).
enum LookupMiss {
    NeedProgram,
    Failed(String),
}

impl ServeCache {
    /// A cache holding at most `capacity` compiled programs per scheme
    /// (0 = unbounded).
    pub fn new(capacity: usize) -> Self {
        ServeCache {
            bfv: Mutex::new(OperandCache::new(capacity)),
            ckks: Mutex::new(OperandCache::new(capacity)),
            compiles: Mutex::new(0),
        }
    }

    /// Looks `(params_hash, program_ref)` up; on a miss, compiles the
    /// attached body (if any) and caches the result, evicting the
    /// least-recently-used program at capacity.
    ///
    /// # Errors
    ///
    /// A malformed or uncompilable body is returned as the rendered error
    /// message (it becomes the typed `Error` response on the wire).
    pub fn lookup_or_compile<S: EvalScheme>(
        &self,
        params_hash: [u8; 32],
        program_ref: [u8; 32],
        body: Option<&(Vec<u8>, CompilerOptions)>,
    ) -> Result<ProgramLookup<S>, String> {
        let key = (params_hash, program_ref);
        let mut slot = lock(S::cache_slot(self));
        let result = slot.get_or_insert_with(&key, || {
            let Some((wire, options)) = body else {
                return Err(LookupMiss::NeedProgram);
            };
            let program = program_from_wire(wire).map_err(|e| LookupMiss::Failed(e.to_string()))?;
            let compiled =
                compile(&program, options).map_err(|e| LookupMiss::Failed(format!("{e:?}")))?;
            *lock(&self.compiles) += 1;
            Ok(Arc::new(CachedProgram {
                compiled,
                operands: ExecCache::unbounded(),
            }))
        });
        match result {
            Ok(prog) => Ok(ProgramLookup::Ready(prog)),
            Err(LookupMiss::NeedProgram) => Ok(ProgramLookup::NeedProgram),
            Err(LookupMiss::Failed(msg)) => Err(msg),
        }
    }

    /// Resident program count across both schemes.
    pub fn len(&self) -> usize {
        lock(&self.bfv).len() + lock(&self.ckks).len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregated counters (see [`EvalCacheStats`]).
    pub fn stats(&self) -> EvalCacheStats {
        let mut programs = CacheCounters::default();
        let mut operands = CacheCounters::default();
        {
            let bfv = lock(&self.bfv);
            programs.absorb(&bfv.counters());
            for prog in bfv.values() {
                operands.absorb(&prog.operands.counters());
            }
        }
        {
            let ckks = lock(&self.ckks);
            programs.absorb(&ckks.counters());
            for prog in ckks.values() {
                operands.absorb(&prog.operands.counters());
            }
        }
        EvalCacheStats {
            programs,
            compiles: *lock(&self.compiles),
            operands,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use choco::compiler::Program;
    use choco::remote::{program_ref_of, program_to_wire};

    fn sample(scale: f64) -> (Vec<u8>, CompilerOptions) {
        let mut p = Program::new();
        let x = p.input("x");
        let w = p.constant(&[scale, 2.0 * scale]);
        let y = p.mul_plain(x, w);
        p.output(y);
        let options = CompilerOptions {
            scale_bits: 30,
            prime_bits: 45,
            max_levels: 3,
        };
        (program_to_wire(&p).unwrap(), options)
    }

    #[test]
    fn miss_without_body_is_need_program_then_compile_once() {
        let cache = ServeCache::new(4);
        let (wire, options) = sample(1.0);
        let refid = program_ref_of(&wire, &options);
        let ph = [7u8; 32];

        match cache.lookup_or_compile::<Ckks>(ph, refid, None).unwrap() {
            ProgramLookup::NeedProgram => {}
            ProgramLookup::Ready(_) => panic!("cold lookup without body returned Ready"),
        }
        let body = (wire, options);
        assert!(matches!(
            cache
                .lookup_or_compile::<Ckks>(ph, refid, Some(&body))
                .unwrap(),
            ProgramLookup::Ready(_)
        ));
        // Warm: no body needed, no compile.
        assert!(matches!(
            cache.lookup_or_compile::<Ckks>(ph, refid, None).unwrap(),
            ProgramLookup::Ready(_)
        ));
        let stats = cache.stats();
        assert_eq!(stats.compiles, 1);
        assert_eq!(stats.programs.hits, 1);
        assert_eq!(stats.programs.misses, 2); // NeedProgram + compile
        assert_eq!(stats.programs.insertions, 1);
    }

    #[test]
    fn capacity_evicts_lru_and_refetch_recompiles() {
        let cache = ServeCache::new(2);
        let ph = [1u8; 32];
        let bodies: Vec<_> = (0..3).map(|i| sample(1.0 + i as f64)).collect();
        let refs: Vec<_> = bodies.iter().map(|(w, o)| program_ref_of(w, o)).collect();
        for (body, refid) in bodies.iter().zip(&refs) {
            assert!(matches!(
                cache
                    .lookup_or_compile::<Ckks>(ph, *refid, Some(body))
                    .unwrap(),
                ProgramLookup::Ready(_)
            ));
        }
        // 3 programs through a 2-slot cache: the first was evicted.
        let stats = cache.stats();
        assert_eq!(stats.compiles, 3);
        assert_eq!(stats.programs.evictions, 1);
        match cache.lookup_or_compile::<Ckks>(ph, refs[0], None).unwrap() {
            ProgramLookup::NeedProgram => {}
            ProgramLookup::Ready(_) => panic!("evicted program still resident"),
        }
        // The still-resident ones are hits.
        assert!(matches!(
            cache.lookup_or_compile::<Ckks>(ph, refs[2], None).unwrap(),
            ProgramLookup::Ready(_)
        ));
    }

    #[test]
    fn schemes_and_params_do_not_collide() {
        let cache = ServeCache::new(4);
        let (wire, options) = sample(1.0);
        let refid = program_ref_of(&wire, &options);
        let body = (wire, options);
        assert!(matches!(
            cache
                .lookup_or_compile::<Ckks>([1; 32], refid, Some(&body))
                .unwrap(),
            ProgramLookup::Ready(_)
        ));
        // Same program hash, other scheme slot: separate entry.
        match cache
            .lookup_or_compile::<Bfv>([1; 32], refid, None)
            .unwrap()
        {
            ProgramLookup::NeedProgram => {}
            ProgramLookup::Ready(_) => panic!("BFV slot shared a CKKS entry"),
        }
        // Same scheme, different params hash: separate entry too.
        match cache
            .lookup_or_compile::<Ckks>([2; 32], refid, None)
            .unwrap()
        {
            ProgramLookup::NeedProgram => {}
            ProgramLookup::Ready(_) => panic!("different params shared an entry"),
        }
    }

    #[test]
    fn uncompilable_body_is_a_typed_error_and_not_cached() {
        let cache = ServeCache::new(4);
        // A program needing more depth than max_levels allows.
        let mut p = Program::new();
        let x = p.input("x");
        let mut acc = x;
        for _ in 0..6 {
            acc = p.mul(acc, acc);
        }
        p.output(acc);
        let options = CompilerOptions {
            scale_bits: 30,
            prime_bits: 45,
            max_levels: 2,
        };
        let wire = program_to_wire(&p).unwrap();
        let refid = program_ref_of(&wire, &options);
        let body = (wire, options);
        assert!(cache
            .lookup_or_compile::<Ckks>([3; 32], refid, Some(&body))
            .is_err());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().compiles, 0);
    }
}
