//! The cross-connection batching scheduler, with fault isolation.
//!
//! Connection workers do not execute HE kernels on their own threads —
//! they submit jobs here and block on a reply channel. The scheduler
//! collects jobs for a short window, groups them by
//! `(params_hash, program_ref)`, and executes each group as **one batch**:
//! every member shares the same `Arc<CachedProgram>` (compiled schedule +
//! encoded-operand cache), and members run concurrently on scoped threads.
//! That is what coalescing buys: N compatible requests — from one
//! pipelining client or from N different tenants — pay for one program
//! resolution and one warm operand set, and their kernel work overlaps.
//!
//! The window trades latency for coalescing: a lone request waits at most
//! `window_ms` before it runs. Batching never changes results (each job
//! still evaluates its own inputs; the shared cache is bit-transparent)
//! and never changes billing (each tenant is billed exactly its own
//! request/response payloads by its connection worker).
//!
//! **Fault isolation.** Batches fate-share: if any member's evaluation
//! returns a *poison* fault (an execution failure, as opposed to a
//! per-job input rejection), the whole batch's results are discarded and
//! the batch is recursively halved and re-run, so healthy co-batched jobs
//! — possibly other tenants' — still complete with correct results. Jobs
//! are therefore **re-runnable** ([`Job::run`] is `Fn`, deterministic by
//! construction) while delivery is once ([`Job::deliver`] is `FnOnce`).
//! A job that faults alone (a batch of one, or the single offender left
//! after bisection) has its `(params_hash, program_ref)` quarantined via
//! [`crate::isolate::Isolation`]; bisection costs at most
//! `n · (log₂ n + 1)` job evaluations for a poisoned batch of `n`.
//!
//! Jobs may also carry a dispatch **deadline**: a job whose deadline has
//! passed when its window closes is shed with its pre-built typed
//! response instead of evaluated — load shedding that never counts
//! against the tenant's circuit breaker.
//!
//! [`BatchScheduler::flush`] blocks until every submitted job has
//! *executed* — the drain path calls it so scheduled batches are never
//! abandoned mid-queue.

use crate::chaos::{EvalChaosState, EvalStage};
use crate::isolate::Isolation;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Jobs are grouped (and coalesced) by `(params_hash, program_ref)`.
pub type GroupKey = ([u8; 32], [u8; 32]);

/// Why a job's execution failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFault {
    /// The typed failure message (also carried by the job's response).
    pub reason: String,
    /// Whether the fault indicts the *program* (an execution failure):
    /// poison faults trigger batch bisection and, once isolated,
    /// quarantine. Non-poison faults (e.g. a rejected input blob) are
    /// job-local and deliver normally.
    pub poison: bool,
}

/// What one execution of a job produced: the response payload to deliver
/// and the fault classification, if any.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutcome {
    /// Serialized `EvalResponse` payload for the connection worker.
    pub response: Vec<u8>,
    /// Set when the execution failed (the response is then a typed
    /// error).
    pub fault: Option<JobFault>,
}

/// One unit of submitted work.
pub struct Job {
    /// Coalescing group: `(params_hash, program_ref)`.
    pub group: GroupKey,
    /// The submitting tenant — breaker outcomes are recorded against it.
    pub tenant: u64,
    /// Shed the job (typed response, no evaluation) if dispatch starts
    /// after this instant.
    pub deadline: Option<Instant>,
    /// Pre-built `DeadlineExceeded` response delivered on a shed.
    pub shed_response: Vec<u8>,
    /// Executes the job. Must be deterministic and side-effect free on
    /// shared state: bisection re-runs it, and every run of a batch must
    /// produce bit-identical outcomes.
    pub run: Box<dyn Fn() -> JobOutcome + Send + Sync>,
    /// Delivers the final response payload to the connection's reply
    /// channel. Called exactly once per job.
    pub deliver: Box<dyn FnOnce(Vec<u8>) + Send>,
}

/// Isolation state and fault-injection hooks threaded into the
/// dispatcher. [`SchedHooks::default`] is a no-op harness (fresh
/// isolation state, no chaos, no kill).
pub struct SchedHooks {
    /// Quarantine + breaker state shared with the admission path.
    pub isolation: Arc<Isolation>,
    /// Deterministic fault plan, if any.
    pub chaos: Option<Arc<EvalChaosState>>,
    /// Invoked when the chaos plan hard-kills the server at a scheduler
    /// stage; the owner flips its kill switch here.
    pub on_kill: Option<Box<dyn Fn() + Send + Sync>>,
}

impl Default for SchedHooks {
    fn default() -> Self {
        SchedHooks {
            isolation: Arc::new(Isolation::default()),
            chaos: None,
            on_kill: None,
        }
    }
}

/// Point-in-time batching counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Jobs executed (shed jobs included; bisection re-runs are not
    /// double-counted).
    pub jobs: u64,
    /// Batches executed (one per group per window).
    pub batches: u64,
    /// Jobs that shared a batch with at least one other job — the count
    /// of kernel invocations *saved* relative to sequential dispatch.
    pub coalesced: u64,
    /// Largest batch executed so far.
    pub max_batch: u64,
}

struct Inner {
    queue: Mutex<Vec<Job>>,
    wake: Condvar,
    stop: AtomicBool,
    /// Submitted but not yet finished executing (queued + running).
    in_flight: AtomicU64,
    stats: Mutex<SchedStats>,
    window_ms: u64,
    hooks: SchedHooks,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The scheduler: one dispatcher thread, scoped execution threads per
/// batch. See the module docs.
pub struct BatchScheduler {
    inner: Arc<Inner>,
    dispatcher: Option<JoinHandle<()>>,
}

impl BatchScheduler {
    /// Starts the dispatcher with the given coalescing window and no-op
    /// hooks.
    pub fn new(window_ms: u64) -> Self {
        BatchScheduler::with_hooks(window_ms, SchedHooks::default())
    }

    /// Starts the dispatcher with shared isolation state and (optional)
    /// chaos hooks.
    pub fn with_hooks(window_ms: u64, hooks: SchedHooks) -> Self {
        let inner = Arc::new(Inner {
            queue: Mutex::new(Vec::new()),
            wake: Condvar::new(),
            stop: AtomicBool::new(false),
            in_flight: AtomicU64::new(0),
            stats: Mutex::new(SchedStats::default()),
            window_ms,
            hooks,
        });
        let run_inner = Arc::clone(&inner);
        let dispatcher = thread::spawn(move || dispatch_loop(&run_inner));
        BatchScheduler {
            inner,
            dispatcher: Some(dispatcher),
        }
    }

    /// Queues a job. It will run within roughly one window, batched with
    /// every other queued job sharing its group.
    pub fn submit(&self, job: Job) {
        self.inner.in_flight.fetch_add(1, Ordering::SeqCst);
        lock(&self.inner.queue).push(job);
        self.inner.wake.notify_one();
    }

    /// Blocks until every job submitted so far has finished executing, or
    /// `budget` elapses. Returns whether the scheduler went idle.
    pub fn flush(&self, budget: Duration) -> bool {
        let start = Instant::now();
        while self.inner.in_flight.load(Ordering::SeqCst) > 0 {
            if start.elapsed() >= budget {
                return false;
            }
            thread::sleep(Duration::from_millis(1));
        }
        true
    }

    /// Jobs submitted but not yet executed.
    pub fn in_flight(&self) -> u64 {
        self.inner.in_flight.load(Ordering::SeqCst)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SchedStats {
        *lock(&self.inner.stats)
    }
}

impl Drop for BatchScheduler {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.wake.notify_all();
        if let Some(d) = self.dispatcher.take() {
            let _ = d.join();
        }
    }
}

fn dispatch_loop(inner: &Arc<Inner>) {
    loop {
        // Wait for work (or stop).
        let mut queue = lock(&inner.queue);
        while queue.is_empty() && !inner.stop.load(Ordering::SeqCst) {
            let (q, _) = match inner.wake.wait_timeout(queue, Duration::from_millis(50)) {
                Ok(r) => r,
                Err(poisoned) => poisoned.into_inner(),
            };
            queue = q;
        }
        if queue.is_empty() && inner.stop.load(Ordering::SeqCst) {
            return;
        }
        drop(queue);

        // Coalescing window: let concurrent submitters land in this round.
        // Skipped on stop so the final drain flushes promptly.
        if inner.window_ms > 0 && !inner.stop.load(Ordering::SeqCst) {
            thread::sleep(Duration::from_millis(inner.window_ms));
        }
        // Chaos: a stalled round sleeps past its jobs' deadlines, before
        // the shed check below runs. Rounds only fire with queued jobs,
        // so the occurrence count is deterministic.
        if let Some(chaos) = inner.hooks.chaos.as_deref() {
            if let Some(stall) = chaos.stall_this_round() {
                thread::sleep(stall);
            }
        }

        let jobs = std::mem::take(&mut *lock(&inner.queue));

        // Deadline shedding at dispatch: deliver the typed response
        // without evaluating. Sheds never count against the tenant's
        // breaker — load is not the tenant's error.
        let now = Instant::now();
        let mut live = Vec::with_capacity(jobs.len());
        for job in jobs {
            if job.deadline.is_some_and(|d| now > d) {
                inner.hooks.isolation.count_shed();
                lock(&inner.stats).jobs += 1;
                let shed = job.shed_response;
                (job.deliver)(shed);
                inner.in_flight.fetch_sub(1, Ordering::SeqCst);
            } else {
                live.push(job);
            }
        }

        let mut groups: BTreeMap<GroupKey, Vec<Job>> = BTreeMap::new();
        for job in live {
            groups.entry(job.group).or_default().push(job);
        }
        if groups.is_empty() {
            continue;
        }
        if kill_at(inner, EvalStage::Coalesce) {
            discard(inner, groups.into_values().flatten());
            continue;
        }
        for (_, batch) in groups {
            let n = batch.len() as u64;
            {
                let mut stats = lock(&inner.stats);
                stats.jobs += n;
                stats.batches += 1;
                if n > 1 {
                    stats.coalesced += n;
                }
                stats.max_batch = stats.max_batch.max(n);
            }
            if kill_at(inner, EvalStage::MidEval) {
                discard(inner, batch.into_iter());
                continue;
            }
            execute(inner, batch);
        }
    }
}

/// Fires the chaos kill for `stage` (if planned for this occurrence) and
/// invokes the owner's kill switch.
fn kill_at(inner: &Inner, stage: EvalStage) -> bool {
    let Some(chaos) = inner.hooks.chaos.as_deref() else {
        return false;
    };
    if !chaos.kill_at(stage) {
        return false;
    }
    if let Some(on_kill) = inner.hooks.on_kill.as_deref() {
        on_kill();
    }
    true
}

/// Drops killed jobs without delivery (the process is "dead"), keeping
/// the in-flight count honest so a later flush cannot hang.
fn discard(inner: &Inner, jobs: impl Iterator<Item = Job>) {
    for job in jobs {
        drop(job);
        inner.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Executes one batch with fate-sharing, bisecting around poison faults;
/// every job is delivered exactly once (or dropped by design on kill).
fn execute(inner: &Inner, mut jobs: Vec<Job>) {
    let outcomes = run_all(&jobs);
    let poisoned = outcomes
        .iter()
        .any(|o| o.fault.as_ref().is_some_and(|f| f.poison));
    if poisoned && jobs.len() > 1 {
        // Discard the whole batch's results and isolate the offender by
        // recursive halving: healthy members re-run bit-identically and
        // still succeed.
        inner.hooks.isolation.count_bisection();
        let right = jobs.split_off(jobs.len() / 2);
        execute(inner, jobs);
        execute(inner, right);
        return;
    }
    for (job, outcome) in jobs.into_iter().zip(outcomes) {
        match &outcome.fault {
            Some(fault) => {
                if fault.poison {
                    // Isolated offender (batch of one, or the single job
                    // left after bisection): quarantine its program.
                    inner.hooks.isolation.count_fault();
                    inner.hooks.isolation.quarantine(job.group, &fault.reason);
                }
                inner.hooks.isolation.record_outcome(job.tenant, false);
            }
            None => inner.hooks.isolation.record_outcome(job.tenant, true),
        }
        (job.deliver)(outcome.response);
        inner.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Runs every job in the (sub-)batch, concurrently when there is more
/// than one. A panicking job becomes a poison fault instead of taking the
/// dispatcher down.
fn run_all(jobs: &[Job]) -> Vec<JobOutcome> {
    let panicked = || JobOutcome {
        response: Vec::new(),
        fault: Some(JobFault {
            reason: "job panicked".into(),
            poison: true,
        }),
    };
    if let [job] = jobs {
        return vec![(job.run)()];
    }
    thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .iter()
            .map(|job| {
                let run = &*job.run;
                scope.spawn(run)
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| panicked()))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    fn ok_outcome(tag: u8) -> JobOutcome {
        JobOutcome {
            response: vec![tag],
            fault: None,
        }
    }

    fn poison_outcome(tag: u8) -> JobOutcome {
        JobOutcome {
            response: vec![tag],
            fault: Some(JobFault {
                reason: "poison".into(),
                poison: true,
            }),
        }
    }

    fn job(
        group: GroupKey,
        run: impl Fn() -> JobOutcome + Send + Sync + 'static,
        deliver: impl FnOnce(Vec<u8>) + Send + 'static,
    ) -> Job {
        Job {
            group,
            tenant: 1,
            deadline: None,
            shed_response: Vec::new(),
            run: Box::new(run),
            deliver: Box::new(deliver),
        }
    }

    #[test]
    fn jobs_execute_and_flush_waits_for_all() {
        let sched = BatchScheduler::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        for i in 0..8u8 {
            let hits = Arc::clone(&hits);
            sched.submit(job(
                ([i % 2; 32], [0; 32]),
                move || ok_outcome(i),
                move |_| {
                    hits.fetch_add(1, Ordering::SeqCst);
                },
            ));
        }
        assert!(sched.flush(Duration::from_secs(5)));
        assert_eq!(hits.load(Ordering::SeqCst), 8);
        assert_eq!(sched.in_flight(), 0);
        let stats = sched.stats();
        assert_eq!(stats.jobs, 8);
        assert!(stats.batches >= 2, "two groups → at least two batches");
    }

    #[test]
    fn same_group_jobs_coalesce_into_one_batch() {
        let sched = BatchScheduler::new(20);
        let (tx, rx) = mpsc::channel();
        for i in 0..4u8 {
            let tx = tx.clone();
            sched.submit(job(
                ([9; 32], [9; 32]),
                move || ok_outcome(i),
                move |resp| {
                    let _ = tx.send(resp);
                },
            ));
        }
        assert!(sched.flush(Duration::from_secs(5)));
        let mut got: Vec<u8> = rx.try_iter().map(|r| r[0]).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        let stats = sched.stats();
        assert_eq!(stats.jobs, 4);
        assert_eq!(stats.batches, 1, "window should coalesce all four");
        assert_eq!(stats.max_batch, 4);
        assert_eq!(stats.coalesced, 4);
    }

    #[test]
    fn drop_with_queued_jobs_still_runs_them() {
        // Stop is a flush, not an abort: pending jobs execute before the
        // dispatcher exits (drain correctness depends on this).
        let hits = Arc::new(AtomicUsize::new(0));
        {
            let sched = BatchScheduler::new(50);
            for _ in 0..3 {
                let hits = Arc::clone(&hits);
                sched.submit(job(
                    ([1; 32], [1; 32]),
                    || ok_outcome(0),
                    move |_| {
                        hits.fetch_add(1, Ordering::SeqCst);
                    },
                ));
            }
            // Dropped immediately: dispatcher must still drain the queue.
        }
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn bisection_isolates_the_poison_job_and_quarantines_it() {
        let isolation = Arc::new(Isolation::default());
        let sched = BatchScheduler::with_hooks(
            30,
            SchedHooks {
                isolation: Arc::clone(&isolation),
                ..SchedHooks::default()
            },
        );
        let (tx, rx) = mpsc::channel();
        let group = ([3; 32], [4; 32]);
        for i in 0..4u8 {
            let tx = tx.clone();
            sched.submit(Job {
                group,
                tenant: u64::from(i),
                deadline: None,
                shed_response: Vec::new(),
                run: Box::new(move || {
                    if i == 2 {
                        poison_outcome(i)
                    } else {
                        ok_outcome(i)
                    }
                }),
                deliver: Box::new(move |resp| {
                    let _ = tx.send((i, resp));
                }),
            });
        }
        assert!(sched.flush(Duration::from_secs(5)));
        let mut got: Vec<(u8, Vec<u8>)> = rx.try_iter().collect();
        got.sort();
        // Every job delivered exactly once, healthy ones with their own
        // (re-run, bit-identical) results; the poison job its typed error.
        assert_eq!(
            got,
            vec![(0, vec![0]), (1, vec![1]), (2, vec![2]), (3, vec![3])]
        );
        let stats = isolation.stats();
        assert!(stats.bisections >= 1, "a poisoned batch of 4 must bisect");
        assert_eq!(stats.faults, 1, "exactly one isolated fault");
        assert_eq!(stats.quarantined, 1);
        assert_eq!(
            isolation.check_quarantine(&group).as_deref(),
            Some("poison")
        );
    }

    #[test]
    fn expired_deadline_sheds_with_the_prebuilt_response() {
        let isolation = Arc::new(Isolation::default());
        let sched = BatchScheduler::with_hooks(
            5,
            SchedHooks {
                isolation: Arc::clone(&isolation),
                ..SchedHooks::default()
            },
        );
        let (tx, rx) = mpsc::channel();
        let ran = Arc::new(AtomicUsize::new(0));
        let ran_in_job = Arc::clone(&ran);
        let tx2 = tx.clone();
        sched.submit(Job {
            group: ([5; 32], [5; 32]),
            tenant: 1,
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            shed_response: b"shed".to_vec(),
            run: Box::new(move || {
                ran_in_job.fetch_add(1, Ordering::SeqCst);
                ok_outcome(0)
            }),
            deliver: Box::new(move |resp| {
                let _ = tx2.send(resp);
            }),
        });
        assert!(sched.flush(Duration::from_secs(5)));
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![b"shed".to_vec()]);
        assert_eq!(ran.load(Ordering::SeqCst), 0, "shed jobs never evaluate");
        assert_eq!(isolation.stats().shed_deadline, 1);
        let _ = tx;
    }

    #[test]
    fn chaos_kill_at_coalesce_drops_jobs_without_delivery() {
        use crate::chaos::EvalChaos;
        let killed = Arc::new(AtomicBool::new(false));
        let killed_hook = Arc::clone(&killed);
        let sched = BatchScheduler::with_hooks(
            5,
            SchedHooks {
                chaos: Some(Arc::new(EvalChaosState::new(EvalChaos {
                    kill: Some((EvalStage::Coalesce, 1)),
                    ..EvalChaos::default()
                }))),
                on_kill: Some(Box::new(move || killed_hook.store(true, Ordering::SeqCst))),
                ..SchedHooks::default()
            },
        );
        let (tx, rx) = mpsc::channel::<Vec<u8>>();
        let tx2 = tx.clone();
        sched.submit(job(
            ([6; 32], [6; 32]),
            || ok_outcome(0),
            move |resp| {
                let _ = tx2.send(resp);
            },
        ));
        assert!(sched.flush(Duration::from_secs(5)), "kill frees in-flight");
        assert!(killed.load(Ordering::SeqCst), "kill switch invoked");
        assert!(rx.try_iter().next().is_none(), "no delivery after a kill");
        let _ = tx;
    }
}
