//! The cross-connection batching scheduler.
//!
//! Connection workers do not execute HE kernels on their own threads —
//! they submit jobs here and block on a reply channel. The scheduler
//! collects jobs for a short window, groups them by
//! `(params_hash, program_ref)`, and executes each group as **one batch**:
//! every member shares the same `Arc<CachedProgram>` (compiled schedule +
//! encoded-operand cache), and members run concurrently on scoped threads.
//! That is what coalescing buys: N compatible requests — from one
//! pipelining client or from N different tenants — pay for one program
//! resolution and one warm operand set, and their kernel work overlaps.
//!
//! The window trades latency for coalescing: a lone request waits at most
//! `window_ms` before it runs. Batching never changes results (each job
//! still evaluates its own inputs; the shared cache is bit-transparent)
//! and never changes billing (each tenant is billed exactly its own
//! request/response payloads by its connection worker).
//!
//! [`BatchScheduler::flush`] blocks until every submitted job has
//! *executed* — the drain path calls it so scheduled batches are never
//! abandoned mid-queue.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Jobs are grouped (and coalesced) by `(params_hash, program_ref)`.
pub type GroupKey = ([u8; 32], [u8; 32]);

/// One unit of submitted work: the closure decodes inputs, executes the
/// program, and delivers the response to its connection's reply channel.
struct Job {
    group: GroupKey,
    run: Box<dyn FnOnce() + Send>,
}

/// Point-in-time batching counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Jobs executed.
    pub jobs: u64,
    /// Batches executed (one per group per window).
    pub batches: u64,
    /// Jobs that shared a batch with at least one other job — the count
    /// of kernel invocations *saved* relative to sequential dispatch.
    pub coalesced: u64,
    /// Largest batch executed so far.
    pub max_batch: u64,
}

struct Inner {
    queue: Mutex<Vec<Job>>,
    wake: Condvar,
    stop: AtomicBool,
    /// Submitted but not yet finished executing (queued + running).
    in_flight: AtomicU64,
    stats: Mutex<SchedStats>,
    window_ms: u64,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The scheduler: one dispatcher thread, scoped execution threads per
/// batch. See the module docs.
pub struct BatchScheduler {
    inner: Arc<Inner>,
    dispatcher: Option<JoinHandle<()>>,
}

impl BatchScheduler {
    /// Starts the dispatcher with the given coalescing window.
    pub fn new(window_ms: u64) -> Self {
        let inner = Arc::new(Inner {
            queue: Mutex::new(Vec::new()),
            wake: Condvar::new(),
            stop: AtomicBool::new(false),
            in_flight: AtomicU64::new(0),
            stats: Mutex::new(SchedStats::default()),
            window_ms,
        });
        let run_inner = Arc::clone(&inner);
        let dispatcher = thread::spawn(move || dispatch_loop(&run_inner));
        BatchScheduler {
            inner,
            dispatcher: Some(dispatcher),
        }
    }

    /// Queues a job. It will run within roughly one window, batched with
    /// every other queued job sharing its group.
    pub fn submit(&self, group: GroupKey, run: Box<dyn FnOnce() + Send>) {
        self.inner.in_flight.fetch_add(1, Ordering::SeqCst);
        lock(&self.inner.queue).push(Job { group, run });
        self.inner.wake.notify_one();
    }

    /// Blocks until every job submitted so far has finished executing, or
    /// `budget` elapses. Returns whether the scheduler went idle.
    pub fn flush(&self, budget: Duration) -> bool {
        let start = Instant::now();
        while self.inner.in_flight.load(Ordering::SeqCst) > 0 {
            if start.elapsed() >= budget {
                return false;
            }
            thread::sleep(Duration::from_millis(1));
        }
        true
    }

    /// Jobs submitted but not yet executed.
    pub fn in_flight(&self) -> u64 {
        self.inner.in_flight.load(Ordering::SeqCst)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SchedStats {
        *lock(&self.inner.stats)
    }
}

impl Drop for BatchScheduler {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.wake.notify_all();
        if let Some(d) = self.dispatcher.take() {
            let _ = d.join();
        }
    }
}

fn dispatch_loop(inner: &Arc<Inner>) {
    loop {
        // Wait for work (or stop).
        let mut queue = lock(&inner.queue);
        while queue.is_empty() && !inner.stop.load(Ordering::SeqCst) {
            let (q, _) = match inner.wake.wait_timeout(queue, Duration::from_millis(50)) {
                Ok(r) => r,
                Err(poisoned) => poisoned.into_inner(),
            };
            queue = q;
        }
        if queue.is_empty() && inner.stop.load(Ordering::SeqCst) {
            return;
        }
        drop(queue);

        // Coalescing window: let concurrent submitters land in this round.
        // Skipped on stop so the final drain flushes promptly.
        if inner.window_ms > 0 && !inner.stop.load(Ordering::SeqCst) {
            thread::sleep(Duration::from_millis(inner.window_ms));
        }

        let jobs = std::mem::take(&mut *lock(&inner.queue));
        let mut groups: BTreeMap<GroupKey, Vec<Job>> = BTreeMap::new();
        for job in jobs {
            groups.entry(job.group).or_default().push(job);
        }
        for (_, batch) in groups {
            let n = batch.len() as u64;
            {
                let mut stats = lock(&inner.stats);
                stats.jobs += n;
                stats.batches += 1;
                if n > 1 {
                    stats.coalesced += n;
                }
                stats.max_batch = stats.max_batch.max(n);
            }
            if batch.len() == 1 {
                for job in batch {
                    (job.run)();
                }
            } else {
                // One batch, one shared warm cache, members concurrent.
                thread::scope(|scope| {
                    for job in batch {
                        scope.spawn(move || (job.run)());
                    }
                });
            }
            inner.in_flight.fetch_sub(n, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    #[test]
    fn jobs_execute_and_flush_waits_for_all() {
        let sched = BatchScheduler::new(2);
        let hits = Arc::new(AtomicUsize::new(0));
        for i in 0..8u8 {
            let hits = Arc::clone(&hits);
            sched.submit(
                ([i % 2; 32], [0; 32]),
                Box::new(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                }),
            );
        }
        assert!(sched.flush(Duration::from_secs(5)));
        assert_eq!(hits.load(Ordering::SeqCst), 8);
        assert_eq!(sched.in_flight(), 0);
        let stats = sched.stats();
        assert_eq!(stats.jobs, 8);
        assert!(stats.batches >= 2, "two groups → at least two batches");
    }

    #[test]
    fn same_group_jobs_coalesce_into_one_batch() {
        let sched = BatchScheduler::new(20);
        let (tx, rx) = mpsc::channel();
        for i in 0..4u64 {
            let tx = tx.clone();
            sched.submit(
                ([9; 32], [9; 32]),
                Box::new(move || {
                    let _ = tx.send(i);
                }),
            );
        }
        assert!(sched.flush(Duration::from_secs(5)));
        let mut got: Vec<u64> = rx.try_iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        let stats = sched.stats();
        assert_eq!(stats.jobs, 4);
        assert_eq!(stats.batches, 1, "window should coalesce all four");
        assert_eq!(stats.max_batch, 4);
        assert_eq!(stats.coalesced, 4);
    }

    #[test]
    fn drop_with_queued_jobs_still_runs_them() {
        // Stop is a flush, not an abort: pending jobs execute before the
        // dispatcher exits (drain correctness depends on this).
        let hits = Arc::new(AtomicUsize::new(0));
        {
            let sched = BatchScheduler::new(50);
            for _ in 0..3 {
                let hits = Arc::clone(&hits);
                sched.submit(
                    ([1; 32], [1; 32]),
                    Box::new(move || {
                        hits.fetch_add(1, Ordering::SeqCst);
                    }),
                );
            }
            // Dropped immediately: dispatcher must still drain the queue.
        }
        assert_eq!(hits.load(Ordering::SeqCst), 3);
    }
}
