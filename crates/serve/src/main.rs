//! `choco-serve` — run a verified-relay offload server on a real socket.
//!
//! ```text
//! choco-serve --addr 127.0.0.1:7470 --tenant 1=my-session-seed
//! ```
//!
//! The process serves until it reads `drain` (or EOF — the
//! SIGTERM-equivalent in this libc-free build) on stdin, then drains
//! gracefully: admission stops, live sessions are checkpointed to the
//! `--checkpoint-dir`, and a later `choco-serve` over the same directory
//! resumes their records so reconnecting clients get exact duplicate
//! accounting.

#![forbid(unsafe_code)]

use choco_serve::{OffloadServer, ServeConfig, ServeStats, TenantRegistry};
use std::io::BufRead;
use std::path::PathBuf;

const USAGE: &str = "\
choco-serve: verified-relay offload server

USAGE:
  choco-serve [--addr HOST:PORT] [--max-sessions N] [--io-timeout-ms MS]
              [--checkpoint-dir DIR] [--tenant ID=SEED]...

OPTIONS:
  --addr HOST:PORT      listen address (default 127.0.0.1:7470; port 0 picks
                        an ephemeral port)
  --max-sessions N      admission limit; further hellos get a typed
                        Overloaded ack (default 64)
  --io-timeout-ms MS    handshake/write timeout (default 5000)
  --checkpoint-dir DIR  persist per-session records here on drain and load
                        them at startup
  --tenant ID=SEED      register a tenant (repeatable); the seed must equal
                        the client's session seed

Runtime commands on stdin: `stats` prints a one-line JSON snapshot (serve,
eval, cache, scheduler, isolation, and journal counters), `drain` (or EOF)
drains gracefully and exits.";

fn fail(msg: &str) -> ! {
    eprintln!("choco-serve: {msg}\n\n{USAGE}");
    std::process::exit(2)
}

fn need(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next()
        .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
}

fn parse_u64(value: &str, flag: &str) -> u64 {
    value
        .parse()
        .unwrap_or_else(|_| fail(&format!("{flag}: {value:?} is not a number")))
}

fn print_stats(stats: &ServeStats, active: u32) {
    let total = stats.book.combined();
    println!(
        "active={active} accepted={} resumed={} overloaded={} unknown_tenant={} \
         bad_auth={} draining={} malformed={}",
        stats.accepted,
        stats.resumed,
        stats.rejected_overload,
        stats.rejected_unknown_tenant,
        stats.rejected_bad_auth,
        stats.rejected_draining,
        stats.rejected_malformed,
    );
    println!(
        "tenants={} fresh_frames={} fresh_payload_bytes={} retransmit_bytes={}",
        stats.book.tenants(),
        total.uploads,
        total.upload_bytes,
        total.retransmit_bytes,
    );
    for rec in &stats.sessions {
        println!(
            "  tenant {} session {}: frames={} dup={} bad={} payload_bytes={} wire_bytes={}",
            rec.tenant,
            rec.session,
            rec.frames,
            rec.dup_frames,
            rec.bad_frames,
            rec.payload_bytes,
            rec.wire_bytes,
        );
    }
}

fn main() {
    let mut addr = "127.0.0.1:7470".to_string();
    let mut config = ServeConfig::default();
    let mut registry = TenantRegistry::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = need(&mut args, "--addr"),
            "--max-sessions" => {
                config.max_sessions = u32::try_from(parse_u64(
                    &need(&mut args, "--max-sessions"),
                    "--max-sessions",
                ))
                .unwrap_or_else(|_| fail("--max-sessions out of range"));
            }
            "--io-timeout-ms" => {
                config.io_timeout_ms =
                    parse_u64(&need(&mut args, "--io-timeout-ms"), "--io-timeout-ms");
            }
            "--checkpoint-dir" => {
                config.checkpoint_dir = Some(PathBuf::from(need(&mut args, "--checkpoint-dir")));
            }
            "--tenant" => {
                let spec = need(&mut args, "--tenant");
                let Some((id, seed)) = spec.split_once('=') else {
                    fail(&format!("--tenant {spec:?}: expected ID=SEED"));
                };
                registry.register(parse_u64(id, "--tenant"), seed.as_bytes());
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    if registry.is_empty() {
        fail("no tenants registered; pass at least one --tenant ID=SEED");
    }

    let tenants = registry.len();
    let server = OffloadServer::bind(&addr, config.clone(), registry)
        .unwrap_or_else(|e| fail(&format!("bind {addr}: {e}")));
    println!(
        "choco-serve listening on {} ({tenants} tenants, max {} sessions)",
        server.addr(),
        config.max_sessions
    );

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        match line.trim() {
            "" => {}
            "stats" => println!("{}", server.stats().to_json_line()),
            "drain" | "quit" | "exit" => break,
            other => println!("unknown command {other:?} (try: stats, drain)"),
        }
    }

    println!("choco-serve: draining...");
    let stats = server.shutdown();
    print_stats(&stats, 0);
    println!("choco-serve: drained");
}
