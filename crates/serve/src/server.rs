//! The offload server: verified relay + remote HE evaluator.
//!
//! [`OffloadServer`] listens on a real TCP socket. Each connection starts
//! with the authenticated hello handshake from
//! [`choco::transport::tcp`]: the server looks the tenant up in its
//! [`TenantRegistry`], checks the keyed auth tag, applies admission
//! control, and answers with a typed ack. Admitted connections get a
//! dedicated worker thread that reads length-prefixed frames, verifies
//! their keyed-BLAKE3 tags (batches are verified on the `choco-math::par`
//! pool), bills them to a per-tenant [`LedgerBook`], and then dispatches
//! by frame kind:
//!
//! * Relay kinds (ciphertext/plaintext/key/control) are echoed back — the
//!   acknowledgement the client's session layer treats as delivery.
//! * `EvalRequest` frames carry the remote-evaluation protocol
//!   (`choco::remote`): a session-key upload promotes the connection to
//!   an evaluator ([`crate::eval::EvalSession`]), and evaluate calls are
//!   resolved through the global program/operand cache
//!   ([`crate::cache::ServeCache`]) and coalesced across connections by
//!   the [`crate::sched::BatchScheduler`] before real kernel work runs.
//!   Responses come back to the worker over a reply channel and are
//!   written as `EvalResponse` frames under a server-side sequence
//!   counter.
//!
//! **Ledger semantics.** The server cannot see inside the relay protocol —
//! a frame is a frame, whether the client's session counts it as an
//! upload, a download, a refresh leg or recovery traffic. The server book
//! therefore bills every *fresh* frame's payload as `upload_bytes` (all
//! physical traffic is client → server) and every duplicate's wire bytes
//! as `retransmit_bytes`. On a clean loopback run the invariant that ties
//! the two views together is exact frame counts: server fresh frames ==
//! client `uploads + downloads` (+ recovery transfers after a resume), and
//! server `retransmit` is zero.
//!
//! **Eval billing under batching.** Remote evaluation adds server → client
//! traffic: every `EvalResponse` payload is billed to its tenant as
//! `download_bytes`. The attribution rule is per-request, not per-batch:
//! each tenant is billed exactly its own request payloads (upload, via the
//! fresh-frame rule above) and its own response payloads (download),
//! regardless of how the scheduler coalesced the compute. Batching shares
//! kernels and caches — never bytes — so the per-tenant book is identical
//! whether requests ran batched or sequentially.
//!
//! **Drain.** [`OffloadServer::drain`] stops admitting, flushes every
//! scheduled batch through the [`crate::sched::BatchScheduler`], lets
//! every worker deliver its pending eval responses and finish its current
//! read, and only then persists all session records (in parallel) to the
//! checkpoint directory, returning once the server is idle. Records are
//! written strictly after results are delivered, so a drained server never
//! persists accounting for work a client did not receive. A server bound
//! later over the same directory resumes the records, so duplicate
//! accounting is exact even across a full server restart.

use crate::cache::{EvalCacheStats, ServeCache};
use crate::chaos::{EvalChaos, EvalChaosState, EvalStage};
use crate::eval::{handle_eval_payload, EvalContext, EvalCounters, EvalOutcome, EvalSession};
use crate::isolate::{Isolation, IsolationConfig, IsolationStats};
use crate::journal::{JournalSet, JournalStats};
use crate::record::SessionRecord;
use crate::registry::TenantRegistry;
use crate::sched::{BatchScheduler, SchedHooks, SchedStats};
use choco::remote::EvalResponse;
use choco::transport::frame::{decode_frame, encode_frame, FrameKind};
use choco::transport::tcp::{decode_hello, encode_ack, BlobIo, HelloStatus, HELLO_BYTES};
use choco::transport::{TagKey, MAX_FRAME_BYTES};
use choco::LedgerBook;
use choco_math::par;
use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// How many already-buffered frames a worker verifies as one parallel
/// batch before echoing.
const VERIFY_BATCH: usize = 32;

/// Server tuning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Admission limit: concurrent sessions beyond this are refused with a
    /// typed `Overloaded` ack, never silently queued.
    pub max_sessions: u32,
    /// Handshake read/write timeout, in milliseconds.
    pub io_timeout_ms: u64,
    /// Worker read poll, in milliseconds: the granularity at which idle
    /// workers notice a drain request.
    pub worker_poll_ms: u64,
    /// Per-frame size bound (prefixes beyond it are rejected before any
    /// allocation).
    pub max_frame_bytes: u64,
    /// Where to persist session records on drain (and load them at bind).
    /// `None` disables persistence.
    pub checkpoint_dir: Option<PathBuf>,
    /// Compiled programs cached per scheme before LRU eviction kicks in
    /// (0 = unbounded).
    pub program_cache_capacity: usize,
    /// Batch coalescing window: how long the scheduler lets compatible
    /// evaluate requests accumulate before executing them as one batch.
    pub batch_window_ms: u64,
    /// Quarantine/circuit-breaker tuning.
    pub isolation: IsolationConfig,
    /// Deterministic eval fault plan (tests only; default injects
    /// nothing).
    pub eval_chaos: EvalChaos,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_sessions: 64,
            io_timeout_ms: 5_000,
            worker_poll_ms: 50,
            max_frame_bytes: MAX_FRAME_BYTES,
            checkpoint_dir: None,
            program_cache_capacity: 32,
            batch_window_ms: 4,
            isolation: IsolationConfig::default(),
            eval_chaos: EvalChaos::default(),
        }
    }
}

/// Hello/admission counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Counters {
    accepted: u64,
    resumed: u64,
    rejected_overload: u64,
    rejected_unknown_tenant: u64,
    rejected_bad_auth: u64,
    rejected_draining: u64,
    rejected_malformed: u64,
}

/// A point-in-time (or final) view of the server's accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections admitted (hello verified, under the session limit).
    pub accepted: u64,
    /// Subset of `accepted` that carried the resume flag.
    pub resumed: u64,
    /// Hellos refused with `Overloaded`.
    pub rejected_overload: u64,
    /// Hellos refused with `UnknownTenant`.
    pub rejected_unknown_tenant: u64,
    /// Hellos refused with `BadAuth`.
    pub rejected_bad_auth: u64,
    /// Hellos refused because the server was draining.
    pub rejected_draining: u64,
    /// Connections dropped before a well-formed hello arrived.
    pub rejected_malformed: u64,
    /// Per-tenant traffic ledgers (see the module docs for semantics).
    pub book: LedgerBook,
    /// Per-session records, `(tenant, session)` order.
    pub sessions: Vec<SessionRecord>,
    /// Remote-evaluation accounting.
    pub eval: EvalStats,
}

impl ServeStats {
    /// Renders the stats as one machine-readable JSON line — what the
    /// `choco-serve` `stats` stdin command prints. Hand-rolled (the
    /// workspace takes no serialization dependency); every value is an
    /// unsigned integer, so no escaping is ever needed.
    pub fn to_json_line(&self) -> String {
        let total = self.book.combined();
        let c = &self.eval.counters;
        let cache = &self.eval.cache;
        let s = &self.eval.sched;
        let i = &self.eval.isolation;
        let j = &self.eval.journal;
        format!(
            concat!(
                "{{\"accepted\":{},\"resumed\":{},\"rejected\":{},",
                "\"tenants\":{},\"upload_bytes\":{},\"download_bytes\":{},",
                "\"retransmit_bytes\":{},\"recovery_bytes\":{},",
                "\"eval\":{{\"setups\":{},\"requests\":{},\"need_program\":{},",
                "\"errors\":{},\"journal_queries\":{}}},",
                "\"cache\":{{\"program_hits\":{},\"program_misses\":{},",
                "\"compiles\":{},\"operand_hits\":{},\"operand_misses\":{}}},",
                "\"sched\":{{\"jobs\":{},\"batches\":{},\"coalesced\":{},",
                "\"max_batch\":{}}},",
                "\"isolation\":{{\"quarantined\":{},\"quarantine_refusals\":{},",
                "\"open_breakers\":{},\"breaker_refusals\":{},\"bisections\":{},",
                "\"shed_deadline\":{},\"faults\":{}}},",
                "\"journal\":{{\"accepted\":{},\"delivered\":{},",
                "\"reported_dead\":{}}}}}"
            ),
            self.accepted,
            self.resumed,
            self.rejected_overload
                + self.rejected_unknown_tenant
                + self.rejected_bad_auth
                + self.rejected_draining
                + self.rejected_malformed,
            self.book.tenants(),
            total.upload_bytes,
            total.download_bytes,
            total.retransmit_bytes,
            total.recovery_bytes,
            c.setups,
            c.requests,
            c.need_program,
            c.errors,
            c.journal_queries,
            cache.programs.hits,
            cache.programs.misses,
            cache.compiles,
            cache.operands.hits,
            cache.operands.misses,
            s.jobs,
            s.batches,
            s.coalesced,
            s.max_batch,
            i.quarantined,
            i.quarantine_refusals,
            i.open_breakers,
            i.breaker_refusals,
            i.bisections,
            i.shed_deadline,
            i.faults,
            j.accepted,
            j.delivered,
            j.reported_dead,
        )
    }
}

/// Remote-evaluation accounting: protocol events, cache effectiveness,
/// and batching behavior. The steady-state proof is
/// `cache.compiles` and `cache.operands.misses` staying flat while
/// `counters.requests` grows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Setup/request/error event counts.
    pub counters: EvalCounters,
    /// Program + operand cache counters.
    pub cache: EvalCacheStats,
    /// Batch scheduler counters.
    pub sched: SchedStats,
    /// Quarantine, breaker, bisection, and shed counters.
    pub isolation: IsolationStats,
    /// In-flight journal counters.
    pub journal: JournalStats,
}

struct Shared {
    config: ServeConfig,
    registry: TenantRegistry,
    stop: AtomicBool,
    draining: AtomicBool,
    active: Mutex<u32>,
    counters: Mutex<Counters>,
    sessions: Mutex<BTreeMap<(u64, u64), SessionRecord>>,
    book: Mutex<LedgerBook>,
    eval_cache: Arc<ServeCache>,
    eval_counters: Mutex<EvalCounters>,
    sched: BatchScheduler,
    isolation: Arc<Isolation>,
    journals: Arc<JournalSet>,
    chaos: Option<Arc<EvalChaosState>>,
    /// Set when the chaos plan "kills" the server: workers stop writing,
    /// the accept loop exits, nothing is persisted — the in-process
    /// equivalent of the process dying mid-pipeline.
    hard_killed: Arc<AtomicBool>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Shared {
    /// Bills one verified frame: fresh payload as upload, duplicate wire
    /// bytes as retransmit. Returns whether the frame was fresh.
    fn bill_frame(&self, tenant: u64, session: u64, seq: u64, payload_len: usize, wire_len: usize) {
        let mut sessions = lock(&self.sessions);
        let rec = sessions
            .entry((tenant, session))
            .or_insert_with(|| SessionRecord::new(tenant, session));
        let fresh = seq >= rec.seen_below;
        rec.wire_bytes += wire_len as u64;
        if fresh {
            rec.seen_below = seq + 1;
            rec.frames += 1;
            rec.payload_bytes += payload_len as u64;
        } else {
            rec.dup_frames += 1;
        }
        drop(sessions);
        let mut book = lock(&self.book);
        if fresh {
            book.bill(tenant).record_upload(payload_len);
        } else {
            book.bill(tenant).record_retransmit(wire_len);
        }
    }

    /// Bills one delivered eval-response payload as tenant download
    /// traffic. Responses are server-originated, so they never touch the
    /// (client → server) session record — only the ledger book.
    fn bill_download(&self, tenant: u64, payload_len: usize) {
        lock(&self.book).bill(tenant).record_download(payload_len);
    }

    fn bill_bad_frame(&self, tenant: u64, session: u64, wire_len: usize) {
        let mut sessions = lock(&self.sessions);
        let rec = sessions
            .entry((tenant, session))
            .or_insert_with(|| SessionRecord::new(tenant, session));
        rec.bad_frames += 1;
        rec.wire_bytes += wire_len as u64;
    }

    fn persist_session(&self, tenant: u64, session: u64) {
        let Some(dir) = self.config.checkpoint_dir.as_deref() else {
            return;
        };
        let rec = lock(&self.sessions).get(&(tenant, session)).copied();
        if let Some(rec) = rec {
            let _ = rec.save(dir);
        }
    }
}

/// A running server instance. Dropping it stops the accept loop; call
/// [`OffloadServer::shutdown`] for a graceful drain with final stats.
pub struct OffloadServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl OffloadServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port), loads any
    /// persisted session records from the checkpoint directory, and starts
    /// accepting connections.
    ///
    /// # Errors
    ///
    /// Propagates socket bind/configuration errors.
    pub fn bind(addr: &str, config: ServeConfig, registry: TenantRegistry) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let mut sessions = BTreeMap::new();
        if let Some(dir) = config.checkpoint_dir.as_deref() {
            for rec in SessionRecord::load_dir(dir) {
                sessions.insert((rec.tenant, rec.session), rec);
            }
        }
        let isolation = Arc::new(Isolation::new(config.isolation));
        let journals = Arc::new(JournalSet::open(config.checkpoint_dir.as_deref()));
        let chaos = (config.eval_chaos != EvalChaos::default())
            .then(|| Arc::new(EvalChaosState::new(config.eval_chaos)));
        let hard_killed = Arc::new(AtomicBool::new(false));
        let kill_switch = Arc::clone(&hard_killed);
        let hooks = SchedHooks {
            isolation: Arc::clone(&isolation),
            chaos: chaos.clone(),
            on_kill: Some(Box::new(move || {
                kill_switch.store(true, Ordering::SeqCst);
            })),
        };
        let shared = Arc::new(Shared {
            eval_cache: Arc::new(ServeCache::new(config.program_cache_capacity)),
            eval_counters: Mutex::new(EvalCounters::default()),
            sched: BatchScheduler::with_hooks(config.batch_window_ms, hooks),
            isolation,
            journals,
            chaos,
            hard_killed,
            config,
            registry,
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            active: Mutex::new(0),
            counters: Mutex::new(Counters::default()),
            sessions: Mutex::new(sessions),
            book: Mutex::new(LedgerBook::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = thread::spawn(move || accept_loop(&listener, &accept_shared));
        Ok(OffloadServer {
            addr: local,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Currently admitted sessions.
    pub fn active_sessions(&self) -> u32 {
        *lock(&self.shared.active)
    }

    /// Snapshot of the accounting state.
    pub fn stats(&self) -> ServeStats {
        let c = *lock(&self.shared.counters);
        ServeStats {
            accepted: c.accepted,
            resumed: c.resumed,
            rejected_overload: c.rejected_overload,
            rejected_unknown_tenant: c.rejected_unknown_tenant,
            rejected_bad_auth: c.rejected_bad_auth,
            rejected_draining: c.rejected_draining,
            rejected_malformed: c.rejected_malformed,
            book: lock(&self.shared.book).clone(),
            sessions: lock(&self.shared.sessions).values().copied().collect(),
            eval: EvalStats {
                counters: *lock(&self.shared.eval_counters),
                cache: self.shared.eval_cache.stats(),
                sched: self.shared.sched.stats(),
                isolation: self.shared.isolation.stats(),
                journal: self.shared.journals.stats(),
            },
        }
    }

    /// Whether a chaos plan (or [`OffloadServer::hard_kill`]) has "killed"
    /// this server instance.
    pub fn was_hard_killed(&self) -> bool {
        self.shared.hard_killed.load(Ordering::SeqCst)
    }

    /// Simulates the process dying right now: workers stop writing and
    /// close their sockets (an orderly FIN — responses already written
    /// flush to the client), the accept loop exits, and nothing further
    /// is persisted. The journal keeps whatever accepts were flushed, so
    /// a server bound later over the same checkpoint directory reports
    /// the unanswered requests as dead.
    pub fn hard_kill(&self) {
        self.shared.hard_killed.store(true, Ordering::SeqCst);
    }

    /// Stops admitting, flushes every scheduled batch, waits for every
    /// worker to deliver pending responses and exit (bounded by the worker
    /// poll plus the handshake timeout), then persists all session records
    /// in parallel on the `choco-math::par` pool — strictly after results
    /// were delivered.
    pub fn drain(&self) {
        if self.shared.hard_killed.load(Ordering::SeqCst) {
            // A dead process drains nothing; its journal is the only
            // record it leaves behind.
            return;
        }
        self.shared.draining.store(true, Ordering::SeqCst);
        let budget = Duration::from_millis(
            self.shared.config.io_timeout_ms + 4 * self.shared.config.worker_poll_ms + 1_000,
        );
        // Scheduled batches first: workers exiting on the drain flag block
        // on their in-flight responses, which only arrive once the
        // scheduler has executed them.
        let _ = self.shared.sched.flush(budget);
        let start = Instant::now();
        while *lock(&self.shared.active) > 0 && start.elapsed() < budget {
            thread::sleep(Duration::from_millis(2));
        }
        if let Some(dir) = self.shared.config.checkpoint_dir.as_deref() {
            let records: Vec<SessionRecord> =
                lock(&self.shared.sessions).values().copied().collect();
            let saved: Vec<bool> = par::par_map(&records, |_, rec| rec.save(dir).is_ok());
            let _ = saved;
        }
    }

    /// Graceful shutdown: [`OffloadServer::drain`], stop the accept loop,
    /// and return the final stats.
    pub fn shutdown(mut self) -> ServeStats {
        self.drain();
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.stats()
    }
}

impl Drop for OffloadServer {
    fn drop(&mut self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.stop.load(Ordering::SeqCst) && !shared.hard_killed.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_shared = Arc::clone(shared);
                thread::spawn(move || serve_connection(stream, &conn_shared));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Runs the hello handshake; on admission, runs the echo worker loop on
/// this same thread until the connection dies or the server drains.
fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let mut io = BlobIo::new(stream, shared.config.max_frame_bytes);
    let _ = io.stream().set_write_timeout(Some(Duration::from_millis(
        shared.config.io_timeout_ms.max(1),
    )));

    let hello = match io.read_msg(HELLO_BYTES, shared.config.io_timeout_ms) {
        Ok(Some(bytes)) => match decode_hello(&bytes) {
            Ok(h) => h,
            Err(_) => {
                lock(&shared.counters).rejected_malformed += 1;
                return;
            }
        },
        _ => {
            lock(&shared.counters).rejected_malformed += 1;
            return;
        }
    };

    if shared.draining.load(Ordering::SeqCst) {
        lock(&shared.counters).rejected_draining += 1;
        let _ = io.write_all(&encode_ack(HelloStatus::Draining));
        return;
    }
    let Some(key) = shared.registry.key_for(hello.tenant) else {
        lock(&shared.counters).rejected_unknown_tenant += 1;
        let _ = io.write_all(&encode_ack(HelloStatus::UnknownTenant));
        return;
    };
    if !hello.verify(&key) {
        lock(&shared.counters).rejected_bad_auth += 1;
        let _ = io.write_all(&encode_ack(HelloStatus::BadAuth));
        return;
    }
    {
        // Admission control: typed refusal, never a silent queue.
        let mut active = lock(&shared.active);
        if *active >= shared.config.max_sessions {
            let status = HelloStatus::Overloaded {
                active: *active,
                limit: shared.config.max_sessions,
            };
            drop(active);
            lock(&shared.counters).rejected_overload += 1;
            let _ = io.write_all(&encode_ack(status));
            return;
        }
        *active += 1;
    }
    if io.write_all(&encode_ack(HelloStatus::Ok)).is_err() {
        *lock(&shared.active) -= 1;
        return;
    }
    {
        let mut c = lock(&shared.counters);
        c.accepted += 1;
        if hello.resume {
            c.resumed += 1;
        }
    }

    conn_worker(&mut io, shared, hello.tenant, hello.session, &key);

    // Records are persisted only after the worker has delivered (or given
    // up on) every pending result — never for undelivered work, and never
    // by a "dead" process.
    if !shared.hard_killed.load(Ordering::SeqCst) {
        shared.persist_session(hello.tenant, hello.session);
    }
    *lock(&shared.active) -= 1;
}

/// Per-connection state the worker threads through its loop: the eval
/// session (set by key upload), the reply channel eval jobs answer on,
/// and the server-side response sequence counter.
struct ConnState {
    eval_session: Option<EvalSession>,
    reply_tx: mpsc::Sender<Vec<u8>>,
    reply_rx: mpsc::Receiver<Vec<u8>>,
    /// Jobs submitted to the scheduler whose responses are not yet
    /// written back.
    pending: u64,
    /// Sequence counter for server-originated `EvalResponse` frames.
    resp_seq: u64,
}

impl ConnState {
    fn new() -> Self {
        let (reply_tx, reply_rx) = mpsc::channel();
        ConnState {
            eval_session: None,
            reply_tx,
            reply_rx,
            pending: 0,
            resp_seq: 0,
        }
    }
}

/// The per-connection loop: read frames, verify batches in parallel, bill,
/// then echo (relay kinds) or evaluate (`EvalRequest` kinds). Exits on
/// disconnect, I/O error, or drain — after flushing pending eval
/// responses, so draining mid-batch never abandons delivered-but-unwritten
/// results.
fn conn_worker(io: &mut BlobIo, shared: &Arc<Shared>, tenant: u64, session: u64, key: &TagKey) {
    let poll = shared.config.worker_poll_ms.max(1);
    let mut conn = ConnState::new();
    loop {
        // Deliver any eval responses that finished since the last read.
        if flush_ready_responses(io, shared, tenant, session, key, &mut conn).is_err() {
            break;
        }
        if shared.stop.load(Ordering::SeqCst)
            || shared.draining.load(Ordering::SeqCst)
            || shared.hard_killed.load(Ordering::SeqCst)
        {
            break;
        }
        // While evaluations are in flight their results land on the reply
        // channel, not the socket — poll short so a finished response is
        // written within milliseconds instead of waiting out the full
        // read deadline (which would bound every evaluate round trip from
        // below by `worker_poll_ms`).
        let deadline = if conn.pending > 0 { poll.min(2) } else { poll };
        let first = match io.read_blob(deadline) {
            Ok(Some(wire)) => wire,
            Ok(None) => continue,
            Err(_) => break,
        };
        // Opportunistically batch frames that are already buffered so the
        // tag checks run data-parallel on the par pool — and so a client
        // pipelining evaluate requests gets them submitted to the batch
        // scheduler in one round.
        let mut batch = vec![first];
        while batch.len() < VERIFY_BATCH {
            match io.read_blob(0) {
                Ok(Some(wire)) => batch.push(wire),
                _ => break,
            }
        }
        let verified = par::par_map(&batch, |_, wire| decode_frame(wire, key));
        let mut dead = false;
        for (wire, decoded) in batch.iter().zip(verified) {
            match decoded {
                Ok(frame) => {
                    shared.bill_frame(tenant, session, frame.seq, frame.payload.len(), wire.len());
                    if frame.kind == FrameKind::EvalRequest {
                        let hard_killed = Arc::clone(&shared.hard_killed);
                        let hard_kill = move || hard_killed.store(true, Ordering::SeqCst);
                        let mut ctx = EvalContext {
                            session: &mut conn.eval_session,
                            cache: &shared.eval_cache,
                            sched: &shared.sched,
                            counters: &shared.eval_counters,
                            reply: &conn.reply_tx,
                            tenant,
                            conn_session: session,
                            isolation: &shared.isolation,
                            journal: &shared.journals,
                            chaos: shared.chaos.as_ref(),
                            hard_kill: &hard_kill,
                        };
                        match handle_eval_payload(&frame.payload, &mut ctx) {
                            EvalOutcome::Immediate(payload) => {
                                if write_response(
                                    io, shared, tenant, session, key, &mut conn, &payload,
                                )
                                .is_err()
                                {
                                    dead = true;
                                    break;
                                }
                            }
                            EvalOutcome::Submitted => conn.pending += 1,
                            EvalOutcome::Dropped => {
                                dead = true;
                                break;
                            }
                        }
                    } else {
                        // Echo duplicates too: a client resuming from a
                        // checkpoint legitimately resends frames it
                        // already sent, and its session blocks on the
                        // echo.
                        if io.write_all(wire).is_err() {
                            dead = true;
                            break;
                        }
                    }
                }
                Err(_) => shared.bill_bad_frame(tenant, session, wire.len()),
            }
        }
        if dead {
            break;
        }
    }
    if !shared.hard_killed.load(Ordering::SeqCst) {
        drain_pending_responses(io, shared, tenant, session, key, &mut conn);
    }
}

/// Writes one `EvalResponse` frame under the server's own sequence
/// counter. The download is billed — and the delivery journaled — only
/// *after* the socket accepted the bytes, so a hard kill can never bill a
/// response the client had no chance to receive.
#[allow(clippy::too_many_arguments)]
fn write_response(
    io: &mut BlobIo,
    shared: &Arc<Shared>,
    tenant: u64,
    session: u64,
    key: &TagKey,
    conn: &mut ConnState,
    payload: &[u8],
) -> Result<(), ()> {
    if shared.hard_killed.load(Ordering::SeqCst) {
        return Err(());
    }
    let request_id = EvalResponse::peek_request_id(payload);
    if request_id.is_some() {
        // PreReply kill-point: the response exists but the process dies
        // before the write. Only evaluation answers count occurrences —
        // setup acks and journal answers are not replies to jobs.
        if let Some(chaos) = shared.chaos.as_deref() {
            if chaos.kill_at(EvalStage::PreReply) {
                shared.hard_killed.store(true, Ordering::SeqCst);
                return Err(());
            }
        }
    }
    let wire = encode_frame(FrameKind::EvalResponse, conn.resp_seq, payload, key);
    conn.resp_seq += 1;
    io.write_all(&wire).map_err(|_| ())?;
    shared.bill_download(tenant, payload.len());
    if let Some(id) = request_id {
        shared.journals.deliver(tenant, session, id);
    }
    Ok(())
}

/// Delivers already-completed eval responses without blocking.
fn flush_ready_responses(
    io: &mut BlobIo,
    shared: &Arc<Shared>,
    tenant: u64,
    session: u64,
    key: &TagKey,
    conn: &mut ConnState,
) -> Result<(), ()> {
    while let Ok(payload) = conn.reply_rx.try_recv() {
        conn.pending -= 1;
        write_response(io, shared, tenant, session, key, conn, &payload)?;
    }
    Ok(())
}

/// Blocks until every submitted job has answered (bounded by the I/O
/// timeout per response) and writes the results out. Runs on every worker
/// exit path — including drain — so scheduled batches are never abandoned
/// with a client still waiting. Write failures keep draining the channel
/// (the jobs still finish; there is just no one to tell).
fn drain_pending_responses(
    io: &mut BlobIo,
    shared: &Arc<Shared>,
    tenant: u64,
    session: u64,
    key: &TagKey,
    conn: &mut ConnState,
) {
    let budget = Duration::from_millis(shared.config.io_timeout_ms.max(1));
    let mut sink_only = false;
    while conn.pending > 0 {
        match conn.reply_rx.recv_timeout(budget) {
            Ok(payload) => {
                conn.pending -= 1;
                if !sink_only
                    && write_response(io, shared, tenant, session, key, conn, &payload).is_err()
                {
                    sink_only = true;
                }
            }
            Err(_) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use choco::transport::frame::{encode_frame, FrameKind};
    use choco::transport::tcp::{dial, Redialer, TcpOptions};
    use choco::transport::{Channel, TransportError};

    fn registry() -> TenantRegistry {
        let mut reg = TenantRegistry::new();
        reg.register(1, b"serve unit tenant 1");
        reg
    }

    #[test]
    fn echoes_verified_frames_and_bills_per_tenant() {
        let server =
            OffloadServer::bind("127.0.0.1:0", ServeConfig::default(), registry()).unwrap();
        let key = TagKey::from_session_seed(b"serve unit tenant 1");
        let opts = TcpOptions::default();
        let (mut up, _down) = dial(&server.addr().to_string(), &key, 1, 1, false, &opts).unwrap();
        let wire = encode_frame(FrameKind::Control, 0, b"payload bytes", &key);
        up.send(wire.clone());
        let echo = loop {
            if let Some(d) = up.recv() {
                break d;
            }
        };
        assert_eq!(echo.wire, wire);
        // Duplicate (same seq) echoes again but bills retransmit.
        up.send(wire.clone());
        loop {
            if up.recv().is_some() {
                break;
            }
        }
        let stats = server.shutdown();
        assert_eq!(stats.accepted, 1);
        let ledger = stats.book.get(1).copied().unwrap();
        assert_eq!(ledger.uploads, 1);
        assert_eq!(ledger.upload_bytes, b"payload bytes".len() as u64);
        assert_eq!(ledger.retransmit_bytes, wire.len() as u64);
        assert_eq!(stats.sessions.len(), 1);
        assert_eq!(stats.sessions[0].frames, 1);
        assert_eq!(stats.sessions[0].dup_frames, 1);
    }

    #[test]
    fn stats_json_line_is_wellformed_and_single_line() {
        let server =
            OffloadServer::bind("127.0.0.1:0", ServeConfig::default(), registry()).unwrap();
        let line = server.shutdown().to_json_line();
        assert!(!line.contains('\n'), "must be a single line");
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert_eq!(line.matches('{').count(), line.matches('}').count());
        assert_eq!(line.matches('"').count() % 2, 0, "quotes must balance");
        for field in [
            "\"accepted\":",
            "\"upload_bytes\":",
            "\"eval\":{",
            "\"sched\":{",
            "\"isolation\":{\"quarantined\":",
            "\"journal\":{\"accepted\":",
        ] {
            assert!(line.contains(field), "missing {field} in {line}");
        }
    }

    #[test]
    fn unknown_tenant_and_bad_auth_are_refused() {
        let server =
            OffloadServer::bind("127.0.0.1:0", ServeConfig::default(), registry()).unwrap();
        let addr = server.addr().to_string();
        let opts = TcpOptions::default();
        let good = TagKey::from_session_seed(b"serve unit tenant 1");
        let wrong = TagKey::from_session_seed(b"not the tenant seed");
        assert!(matches!(
            dial(&addr, &good, 99, 1, false, &opts),
            Err(TransportError::Rejected(msg)) if msg.contains("unknown tenant")
        ));
        assert!(matches!(
            dial(&addr, &wrong, 1, 1, false, &opts),
            Err(TransportError::Rejected(msg)) if msg.contains("authentication")
        ));
        let stats = server.shutdown();
        assert_eq!(stats.rejected_unknown_tenant, 1);
        assert_eq!(stats.rejected_bad_auth, 1);
        assert_eq!(stats.accepted, 0);
    }

    #[test]
    fn over_admission_is_typed_overloaded() {
        let config = ServeConfig {
            max_sessions: 1,
            ..ServeConfig::default()
        };
        let server = OffloadServer::bind("127.0.0.1:0", config, registry()).unwrap();
        let addr = server.addr().to_string();
        let key = TagKey::from_session_seed(b"serve unit tenant 1");
        let opts = TcpOptions::default();
        let _held = dial(&addr, &key, 1, 1, false, &opts).unwrap();
        // Give the worker a beat to be counted active, then over-admit.
        let start = Instant::now();
        loop {
            match dial(&addr, &key, 1, 2, false, &opts) {
                Err(TransportError::Overloaded { active, limit }) => {
                    assert_eq!(active, 1);
                    assert_eq!(limit, 1);
                    break;
                }
                Ok(_) | Err(_) if start.elapsed() < Duration::from_secs(5) => {
                    thread::sleep(Duration::from_millis(10));
                }
                other => {
                    let _ = other;
                    unreachable!("expected Overloaded within 5s");
                }
            }
        }
        let stats = server.shutdown();
        assert!(stats.rejected_overload >= 1);
    }

    #[test]
    fn draining_server_refuses_and_redialer_backs_off() {
        let server =
            OffloadServer::bind("127.0.0.1:0", ServeConfig::default(), registry()).unwrap();
        server.drain();
        let addr = server.addr().to_string();
        let key = TagKey::from_session_seed(b"serve unit tenant 1");
        assert!(matches!(
            dial(&addr, &key, 1, 1, false, &TcpOptions::default()),
            Err(TransportError::Rejected(msg)) if msg.contains("draining")
        ));
        // The redialer treats draining as transient and exhausts retries.
        let mut redialer = Redialer::new(addr, b"serve unit tenant 1", 1, 1);
        redialer.policy.max_attempts = 2;
        redialer.policy.base_backoff_ms = 1;
        assert!(matches!(
            redialer.dial_fresh(),
            Err(TransportError::RetriesExhausted { attempts: 2, .. })
        ));
        let stats = server.shutdown();
        assert!(stats.rejected_draining >= 3);
    }
}
