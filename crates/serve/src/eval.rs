//! Per-connection remote-evaluation state and request handling.
//!
//! A connection is promoted from relay to evaluator by its first
//! [`SessionSetup`] payload: the server rebuilds the tenant's parameter
//! set from the recipe, deserializes the uploaded relinearization and
//! Galois keys, and pins an [`EvalSession`] to the connection. Subsequent
//! [`EvalRequest`] payloads resolve their program through the global
//! [`ServeCache`] and are submitted to the [`BatchScheduler`]; the
//! executed response comes back to the connection worker over its reply
//! channel, which writes it to the socket and bills the download.
//!
//! Everything here is typed-error territory: malformed setups, unknown
//! programs, cross-scheme key blobs, and failed kernels all become
//! [`EvalResponse`] messages (or `NeedProgram` round trips) — a hostile
//! or buggy client can never panic a worker.

use crate::cache::{EvalScheme, ProgramLookup, ServeCache};
use crate::sched::BatchScheduler;
use choco::remote::{EvalRequest, EvalResponse, SessionSetup, REQUEST_MAGIC, SETUP_MAGIC};
use choco_he::params::SchemeType;
use choco_he::{Bfv, Ckks};
use std::collections::HashMap;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::cache::CachedProgram;

/// Counts of eval-protocol events (beyond what the caches track).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalCounters {
    /// Session setups accepted.
    pub setups: u64,
    /// Evaluate requests admitted to the scheduler.
    pub requests: u64,
    /// `NeedProgram` round trips answered.
    pub need_program: u64,
    /// Typed error responses produced (setup or evaluate).
    pub errors: u64,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Scheme-typed evaluation state for one connection: context + uploaded
/// evaluation keys. Only *evaluation* keys live here — the server never
/// sees a secret key.
pub struct SchemeSession<S: EvalScheme> {
    /// The rebuilt context.
    pub ctx: S::Context,
    /// The tenant's relinearization key.
    pub relin: S::RelinKey,
    /// The tenant's Galois keys (the rotation steps its programs use).
    pub galois: S::GaloisKeys,
    /// BLAKE3 of the parameter recipe — half of every cache key.
    pub params_hash: [u8; 32],
}

/// A connection's evaluation state, once a setup has been accepted.
pub enum EvalSession {
    /// BFV session.
    Bfv(Arc<SchemeSession<Bfv>>),
    /// CKKS session.
    Ckks(Arc<SchemeSession<Ckks>>),
}

/// What the connection worker should do with one handled payload.
pub enum EvalOutcome {
    /// Write this response payload now (setup acks, `NeedProgram`, typed
    /// errors).
    Immediate(Vec<u8>),
    /// A job was queued; the response will arrive on the reply channel.
    Submitted,
}

/// Handles one `EvalRequest`-frame payload (already tag-verified by the
/// frame layer). Never panics; every failure is a typed response.
pub fn handle_eval_payload(
    payload: &[u8],
    session: &mut Option<EvalSession>,
    cache: &Arc<ServeCache>,
    sched: &BatchScheduler,
    counters: &Mutex<EvalCounters>,
    reply: &Sender<Vec<u8>>,
) -> EvalOutcome {
    if payload.get(..4) == Some(SETUP_MAGIC.as_slice()) {
        return handle_setup(payload, session, counters);
    }
    if payload.get(..4) == Some(REQUEST_MAGIC.as_slice()) {
        return handle_request(payload, session, cache, sched, counters, reply);
    }
    lock(counters).errors += 1;
    EvalOutcome::Immediate(
        EvalResponse::Error {
            request_id: 0,
            message: "unrecognized eval payload magic".into(),
        }
        .to_wire(),
    )
}

fn error_response(counters: &Mutex<EvalCounters>, request_id: u64, message: String) -> EvalOutcome {
    lock(counters).errors += 1;
    EvalOutcome::Immediate(
        EvalResponse::Error {
            request_id,
            message,
        }
        .to_wire(),
    )
}

fn handle_setup(
    payload: &[u8],
    session: &mut Option<EvalSession>,
    counters: &Mutex<EvalCounters>,
) -> EvalOutcome {
    let setup = match SessionSetup::from_wire(payload) {
        Ok(s) => s,
        Err(e) => return error_response(counters, 0, format!("bad session setup: {e}")),
    };
    let built = match setup.params.scheme() {
        SchemeType::Bfv => build_session::<Bfv>(&setup).map(EvalSession::Bfv),
        SchemeType::Ckks => build_session::<Ckks>(&setup).map(EvalSession::Ckks),
    };
    match built {
        Ok(s) => {
            *session = Some(s);
            lock(counters).setups += 1;
            EvalOutcome::Immediate(EvalResponse::SetupOk.to_wire())
        }
        Err(e) => error_response(counters, 0, format!("session setup refused: {e}")),
    }
}

fn build_session<S: EvalScheme>(
    setup: &SessionSetup,
) -> Result<Arc<SchemeSession<S>>, choco_he::HeError> {
    let ctx = S::context(&setup.params)?;
    let relin = S::relin_from_wire(&setup.relin_wire)?;
    let galois = S::galois_from_wire(&setup.galois_wire)?;
    Ok(Arc::new(SchemeSession {
        ctx,
        relin,
        galois,
        params_hash: choco::remote::params_hash(&setup.params),
    }))
}

fn handle_request(
    payload: &[u8],
    session: &Option<EvalSession>,
    cache: &Arc<ServeCache>,
    sched: &BatchScheduler,
    counters: &Mutex<EvalCounters>,
    reply: &Sender<Vec<u8>>,
) -> EvalOutcome {
    let req = match EvalRequest::from_wire(payload) {
        Ok(r) => r,
        Err(e) => return error_response(counters, 0, format!("bad eval request: {e}")),
    };
    let request_id = req.request_id;
    match session {
        None => error_response(
            counters,
            request_id,
            "evaluate before session setup (upload keys first)".into(),
        ),
        Some(EvalSession::Bfv(s)) => {
            submit_eval::<Bfv>(Arc::clone(s), req, cache, sched, counters, reply)
        }
        Some(EvalSession::Ckks(s)) => {
            submit_eval::<Ckks>(Arc::clone(s), req, cache, sched, counters, reply)
        }
    }
}

fn submit_eval<S: EvalScheme>(
    sess: Arc<SchemeSession<S>>,
    req: EvalRequest,
    cache: &Arc<ServeCache>,
    sched: &BatchScheduler,
    counters: &Mutex<EvalCounters>,
    reply: &Sender<Vec<u8>>,
) -> EvalOutcome {
    let request_id = req.request_id;
    let lookup =
        cache.lookup_or_compile::<S>(sess.params_hash, req.program_ref, req.program.as_ref());
    let prog = match lookup {
        Ok(ProgramLookup::Ready(p)) => p,
        Ok(ProgramLookup::NeedProgram) => {
            lock(counters).need_program += 1;
            return EvalOutcome::Immediate(EvalResponse::NeedProgram { request_id }.to_wire());
        }
        Err(msg) => {
            return error_response(counters, request_id, format!("program rejected: {msg}"))
        }
    };
    let group = (sess.params_hash, req.program_ref);
    let inputs = req.inputs;
    let reply = reply.clone();
    sched.submit(
        group,
        Box::new(move || {
            let resp = run_request::<S>(&sess, &prog, request_id, &inputs);
            // A dead receiver means the connection is gone; nothing to do.
            let _ = reply.send(resp.to_wire());
        }),
    );
    lock(counters).requests += 1;
    EvalOutcome::Submitted
}

/// Executes one request against the shared cached program. Runs on a
/// scheduler thread; the shared operand cache makes warm evaluations skip
/// every plaintext encode while staying bit-identical (the cache stores
/// exactly what the uncached path would compute).
fn run_request<S: EvalScheme>(
    sess: &SchemeSession<S>,
    prog: &CachedProgram<S>,
    request_id: u64,
    inputs: &[(String, Vec<u8>)],
) -> EvalResponse {
    let mut named: HashMap<String, S::Ciphertext> = HashMap::new();
    for (name, wire) in inputs {
        match S::ct_from_wire(wire) {
            Ok(ct) => {
                named.insert(name.clone(), ct);
            }
            Err(e) => {
                return EvalResponse::Error {
                    request_id,
                    message: format!("input {name:?} rejected: {e}"),
                }
            }
        }
    }
    match prog.compiled.execute_encrypted_cached::<S>(
        &sess.ctx,
        &named,
        &sess.relin,
        &sess.galois,
        &prog.operands,
    ) {
        Ok(outs) => EvalResponse::Outputs {
            request_id,
            outputs: outs.iter().map(|ct| S::ct_to_wire(ct)).collect(),
        },
        Err(e) => EvalResponse::Error {
            request_id,
            message: format!("execution failed: {e}"),
        },
    }
}
