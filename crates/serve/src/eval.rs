//! Per-connection remote-evaluation state and request handling.
//!
//! A connection is promoted from relay to evaluator by its first
//! [`SessionSetup`] payload: the server rebuilds the tenant's parameter
//! set from the recipe, deserializes the uploaded relinearization and
//! Galois keys, and pins an [`EvalSession`] to the connection. Subsequent
//! [`EvalRequest`] payloads resolve their program through the global
//! [`ServeCache`] and are submitted to the [`BatchScheduler`]; the
//! executed response comes back to the connection worker over its reply
//! channel, which writes it to the socket and bills the download.
//!
//! Admission is fault-isolated: a quarantined `(params_hash,
//! program_ref)` is refused with a typed `Quarantined` response before
//! the scheduler ever sees it, and a tenant whose circuit breaker is open
//! gets a typed `Unavailable { retry_after_ms }`. Admitted requests are
//! journaled ([`crate::journal::JournalSet`]) *before* scheduling, so a
//! hard-killed server can later tell the resuming client exactly which
//! requests died. A `CRJ1` journal query answers with that dead set.
//!
//! Everything here is typed-error territory: malformed setups, unknown
//! programs, cross-scheme key blobs, and failed kernels all become
//! [`EvalResponse`] messages (or `NeedProgram` round trips) — a hostile
//! or buggy client can never panic a worker.

use crate::cache::{EvalScheme, ProgramLookup, ServeCache};
use crate::chaos::{EvalChaosState, EvalStage};
use crate::isolate::{Admission, Isolation};
use crate::journal::{input_digest, JournalSet};
use crate::sched::{BatchScheduler, Job, JobFault, JobOutcome};
use choco::remote::{
    EvalRequest, EvalResponse, SessionSetup, JOURNAL_MAGIC, REQUEST_MAGIC, SETUP_MAGIC,
};
use choco_he::params::SchemeType;
use choco_he::{Bfv, Ckks};
use std::collections::HashMap;
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::cache::CachedProgram;

/// Counts of eval-protocol events (beyond what the caches track).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalCounters {
    /// Session setups accepted.
    pub setups: u64,
    /// Evaluate requests admitted to the scheduler.
    pub requests: u64,
    /// `NeedProgram` round trips answered.
    pub need_program: u64,
    /// Typed error responses produced (setup or evaluate).
    pub errors: u64,
    /// `CRJ1` journal queries answered.
    pub journal_queries: u64,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Scheme-typed evaluation state for one connection: context + uploaded
/// evaluation keys. Only *evaluation* keys live here — the server never
/// sees a secret key.
pub struct SchemeSession<S: EvalScheme> {
    /// The rebuilt context.
    pub ctx: S::Context,
    /// The tenant's relinearization key.
    pub relin: S::RelinKey,
    /// The tenant's Galois keys (the rotation steps its programs use).
    pub galois: S::GaloisKeys,
    /// BLAKE3 of the parameter recipe — half of every cache key.
    pub params_hash: [u8; 32],
}

/// A connection's evaluation state, once a setup has been accepted.
pub enum EvalSession {
    /// BFV session.
    Bfv(Arc<SchemeSession<Bfv>>),
    /// CKKS session.
    Ckks(Arc<SchemeSession<Ckks>>),
}

/// Everything one payload dispatch needs, bundled so the worker threads a
/// single context through instead of seven loose references.
pub struct EvalContext<'a> {
    /// The connection's evaluation session (set by the setup payload).
    pub session: &'a mut Option<EvalSession>,
    /// Global program/operand cache.
    pub cache: &'a Arc<ServeCache>,
    /// The batching scheduler jobs are submitted to.
    pub sched: &'a BatchScheduler,
    /// Shared protocol counters.
    pub counters: &'a Mutex<EvalCounters>,
    /// The connection's reply channel (scheduler → worker).
    pub reply: &'a Sender<Vec<u8>>,
    /// The authenticated tenant behind this connection.
    pub tenant: u64,
    /// The connection's session id (journal key, with the tenant).
    pub conn_session: u64,
    /// Quarantine + breaker state, checked at admission.
    pub isolation: &'a Arc<Isolation>,
    /// The in-flight eval journal.
    pub journal: &'a Arc<JournalSet>,
    /// Deterministic fault plan, if any.
    pub chaos: Option<&'a Arc<EvalChaosState>>,
    /// Flips the server's hard-kill switch (invoked by chaos triggers).
    pub hard_kill: &'a (dyn Fn() + Sync),
}

/// What the connection worker should do with one handled payload.
pub enum EvalOutcome {
    /// Write this response payload now (setup acks, `NeedProgram`, typed
    /// refusals and errors, journal answers).
    Immediate(Vec<u8>),
    /// A job was queued; the response will arrive on the reply channel.
    Submitted,
    /// The chaos plan hard-killed the server while handling this payload:
    /// write nothing, the connection is dying.
    Dropped,
}

/// Handles one `EvalRequest`-frame payload (already tag-verified by the
/// frame layer). Never panics; every failure is a typed response.
pub fn handle_eval_payload(payload: &[u8], ctx: &mut EvalContext) -> EvalOutcome {
    if payload.get(..4) == Some(SETUP_MAGIC.as_slice()) {
        return handle_setup(payload, ctx.session, ctx.counters);
    }
    if payload.get(..4) == Some(REQUEST_MAGIC.as_slice()) {
        return handle_request(payload, ctx);
    }
    if payload.get(..4) == Some(JOURNAL_MAGIC.as_slice()) {
        let dead = ctx.journal.dead_requests(ctx.tenant, ctx.conn_session);
        lock(ctx.counters).journal_queries += 1;
        return EvalOutcome::Immediate(
            EvalResponse::DeadRequests {
                request_ids: dead.into_iter().map(|d| d.request_id).collect(),
            }
            .to_wire(),
        );
    }
    lock(ctx.counters).errors += 1;
    EvalOutcome::Immediate(
        EvalResponse::Error {
            request_id: 0,
            message: "unrecognized eval payload magic".into(),
        }
        .to_wire(),
    )
}

fn error_response(counters: &Mutex<EvalCounters>, request_id: u64, message: String) -> EvalOutcome {
    lock(counters).errors += 1;
    EvalOutcome::Immediate(
        EvalResponse::Error {
            request_id,
            message,
        }
        .to_wire(),
    )
}

fn handle_setup(
    payload: &[u8],
    session: &mut Option<EvalSession>,
    counters: &Mutex<EvalCounters>,
) -> EvalOutcome {
    let setup = match SessionSetup::from_wire(payload) {
        Ok(s) => s,
        Err(e) => return error_response(counters, 0, format!("bad session setup: {e}")),
    };
    let built = match setup.params.scheme() {
        SchemeType::Bfv => build_session::<Bfv>(&setup).map(EvalSession::Bfv),
        SchemeType::Ckks => build_session::<Ckks>(&setup).map(EvalSession::Ckks),
    };
    match built {
        Ok(s) => {
            *session = Some(s);
            lock(counters).setups += 1;
            EvalOutcome::Immediate(EvalResponse::SetupOk.to_wire())
        }
        Err(e) => error_response(counters, 0, format!("session setup refused: {e}")),
    }
}

fn build_session<S: EvalScheme>(
    setup: &SessionSetup,
) -> Result<Arc<SchemeSession<S>>, choco_he::HeError> {
    let ctx = S::context(&setup.params)?;
    let relin = S::relin_from_wire(&setup.relin_wire)?;
    let galois = S::galois_from_wire(&setup.galois_wire)?;
    Ok(Arc::new(SchemeSession {
        ctx,
        relin,
        galois,
        params_hash: choco::remote::params_hash(&setup.params),
    }))
}

fn handle_request(payload: &[u8], ctx: &mut EvalContext) -> EvalOutcome {
    let req = match EvalRequest::from_wire(payload) {
        Ok(r) => r,
        Err(e) => return error_response(ctx.counters, 0, format!("bad eval request: {e}")),
    };
    let request_id = req.request_id;
    match &*ctx.session {
        None => error_response(
            ctx.counters,
            request_id,
            "evaluate before session setup (upload keys first)".into(),
        ),
        Some(EvalSession::Bfv(s)) => submit_eval::<Bfv>(Arc::clone(s), req, ctx),
        Some(EvalSession::Ckks(s)) => submit_eval::<Ckks>(Arc::clone(s), req, ctx),
    }
}

fn submit_eval<S: EvalScheme>(
    sess: Arc<SchemeSession<S>>,
    req: EvalRequest,
    ctx: &mut EvalContext,
) -> EvalOutcome {
    let request_id = req.request_id;
    let group = (sess.params_hash, req.program_ref);
    if let Some(reason) = ctx.isolation.check_quarantine(&group) {
        return EvalOutcome::Immediate(EvalResponse::Quarantined { request_id, reason }.to_wire());
    }
    let lookup =
        ctx.cache
            .lookup_or_compile::<S>(sess.params_hash, req.program_ref, req.program.as_ref());
    let prog = match lookup {
        Ok(ProgramLookup::Ready(p)) => p,
        Ok(ProgramLookup::NeedProgram) => {
            lock(ctx.counters).need_program += 1;
            return EvalOutcome::Immediate(EvalResponse::NeedProgram { request_id }.to_wire());
        }
        Err(msg) => {
            return error_response(ctx.counters, request_id, format!("program rejected: {msg}"))
        }
    };
    // Breaker last — the final gate before journaling and scheduling, so
    // every admitted request (half-open probes included) is guaranteed to
    // become a job whose outcome feeds back into the breaker. Checking it
    // earlier lets a `NeedProgram` exchange consume the probe slot and
    // wedge the tenant half-open with no outcome ever recorded.
    if let Admission::Refuse { retry_after_ms } = ctx.isolation.admit(ctx.tenant) {
        return EvalOutcome::Immediate(
            EvalResponse::Unavailable {
                request_id,
                retry_after_ms,
            }
            .to_wire(),
        );
    }
    // The accept is journaled (and flushed) before the scheduler sees the
    // job: a hard kill anywhere downstream leaves the accept on disk with
    // no matching deliver, which is exactly what the restarted server
    // reports as dead.
    ctx.journal.accept(
        ctx.tenant,
        ctx.conn_session,
        request_id,
        &req.program_ref,
        &input_digest(&req.inputs),
    );
    if let Some(chaos) = ctx.chaos {
        if chaos.kill_at(EvalStage::Accept) {
            (ctx.hard_kill)();
            return EvalOutcome::Dropped;
        }
    }
    let deadline = req
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let inputs = req.inputs;
    let chaos = ctx.chaos.map(Arc::clone);
    let reply = ctx.reply.clone();
    ctx.sched.submit(Job {
        group,
        tenant: ctx.tenant,
        deadline,
        shed_response: EvalResponse::DeadlineExceeded { request_id }.to_wire(),
        run: Box::new(move || {
            if chaos.as_deref().is_some_and(EvalChaosState::fail_this_job) {
                let reason = "chaos: injected evaluation fault".to_string();
                return JobOutcome {
                    response: EvalResponse::Error {
                        request_id,
                        message: reason.clone(),
                    }
                    .to_wire(),
                    fault: Some(JobFault {
                        reason,
                        poison: true,
                    }),
                };
            }
            run_request::<S>(&sess, &prog, request_id, &inputs)
        }),
        deliver: Box::new(move |payload| {
            // A dead receiver means the connection is gone; nothing to do.
            let _ = reply.send(payload);
        }),
    });
    lock(ctx.counters).requests += 1;
    EvalOutcome::Submitted
}

/// Executes one request against the shared cached program. Runs on a
/// scheduler thread; the shared operand cache makes warm evaluations skip
/// every plaintext encode while staying bit-identical (the cache stores
/// exactly what the uncached path would compute). Execution failures are
/// *poison* faults (they indict the program; the scheduler bisects and
/// quarantines); rejected input blobs are job-local faults.
fn run_request<S: EvalScheme>(
    sess: &SchemeSession<S>,
    prog: &CachedProgram<S>,
    request_id: u64,
    inputs: &[(String, Vec<u8>)],
) -> JobOutcome {
    let mut named: HashMap<String, S::Ciphertext> = HashMap::new();
    for (name, wire) in inputs {
        match S::ct_from_wire(wire) {
            Ok(ct) => {
                named.insert(name.clone(), ct);
            }
            Err(e) => {
                let reason = format!("input {name:?} rejected: {e}");
                return JobOutcome {
                    response: EvalResponse::Error {
                        request_id,
                        message: reason.clone(),
                    }
                    .to_wire(),
                    fault: Some(JobFault {
                        reason,
                        poison: false,
                    }),
                };
            }
        }
    }
    match prog.compiled.execute_encrypted_cached::<S>(
        &sess.ctx,
        &named,
        &sess.relin,
        &sess.galois,
        &prog.operands,
    ) {
        Ok(outs) => JobOutcome {
            response: EvalResponse::Outputs {
                request_id,
                outputs: outs.iter().map(|ct| S::ct_to_wire(ct)).collect(),
            }
            .to_wire(),
            fault: None,
        },
        Err(e) => {
            let reason = format!("execution failed: {e}");
            JobOutcome {
                response: EvalResponse::Error {
                    request_id,
                    message: reason.clone(),
                }
                .to_wire(),
                fault: Some(JobFault {
                    reason,
                    poison: true,
                }),
            }
        }
    }
}
