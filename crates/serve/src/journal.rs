//! The in-flight eval journal: crash recovery for accepted requests.
//!
//! Session records (`CSR1`) persist only on graceful drain — a hard kill
//! loses them, and with them every accepted-but-unanswered eval request.
//! The journal closes that gap with an *append-only* per-session log
//! written **before** a request enters the scheduler and appended again
//! when its response is actually written back. A restarted server loads
//! the directory, diffs accepted against delivered, and can tell a
//! resuming client (`CRJ1` journal query) exactly which request ids died
//! with the old process and must be resent — instead of the client
//! guessing.
//!
//! Each entry is individually sealed, so a record torn by the crash is
//! detected and parsing stops at the last good entry (the same trust
//! model as `CSR1`, adapted to an append-only file):
//!
//! ```text
//! accepted:  | "CEJA" | request_id u64 | program_ref 32 B |
//!            | input_digest 32 B | blake3(prior bytes) 32 B |
//! delivered: | "CEJD" | request_id u64 | blake3(prior bytes) 32 B |
//! ```
//!
//! File name: `t<tenant>_s<session>.cej`, kept alongside the `.csr`
//! records in the checkpoint directory.

use choco_prng::blake3;
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};

/// Magic of an accepted-entry.
pub const ACCEPT_MAGIC: &[u8; 4] = b"CEJA";
/// Magic of a delivered-entry.
pub const DELIVER_MAGIC: &[u8; 4] = b"CEJD";

/// Size of one accepted entry on disk.
pub const ACCEPT_BYTES: usize = 4 + 8 + 32 + 32 + 32;
/// Size of one delivered entry on disk.
pub const DELIVER_BYTES: usize = 4 + 8 + 32;

/// One accepted-but-unanswered request reconstructed from a journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadRequest {
    /// The client-chosen request id.
    pub request_id: u64,
    /// `program_ref` of the referenced program.
    pub program_ref: [u8; 32],
    /// BLAKE3 over the request's input ciphertext wires.
    pub input_digest: [u8; 32],
}

/// Point-in-time journal counters, exported through `ServeStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Accepted entries written.
    pub accepted: u64,
    /// Delivered entries written.
    pub delivered: u64,
    /// Requests reported dead to resuming clients.
    pub reported_dead: u64,
}

fn accept_entry(request_id: u64, program_ref: &[u8; 32], input_digest: &[u8; 32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ACCEPT_BYTES);
    out.extend_from_slice(ACCEPT_MAGIC);
    out.extend_from_slice(&request_id.to_le_bytes());
    out.extend_from_slice(program_ref);
    out.extend_from_slice(input_digest);
    let seal = blake3::hash(&out);
    out.extend_from_slice(&seal);
    out
}

fn deliver_entry(request_id: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(DELIVER_BYTES);
    out.extend_from_slice(DELIVER_MAGIC);
    out.extend_from_slice(&request_id.to_le_bytes());
    let seal = blake3::hash(&out);
    out.extend_from_slice(&seal);
    out
}

/// Little-endian u64 at `at`, or 0 when the slice is too short (the
/// caller has already length-checked the entry; 0 keeps this total).
fn u64_at(bytes: &[u8], at: usize) -> u64 {
    bytes
        .get(at..at + 8)
        .and_then(|b| <[u8; 8]>::try_from(b).ok())
        .map_or(0, u64::from_le_bytes)
}

/// 32-byte digest at `at`, zero-filled when the slice is too short.
fn arr32_at(bytes: &[u8], at: usize) -> [u8; 32] {
    let mut out = [0u8; 32];
    if let Some(src) = bytes.get(at..at + 32) {
        out.copy_from_slice(src);
    }
    out
}

fn magic_is(rest: &[u8], magic: &[u8; 4]) -> bool {
    rest.get(..4).is_some_and(|m| m == magic)
}

/// Parses a journal byte stream into its surviving dead set. Stops at the
/// first entry whose magic is unknown or whose seal fails — everything
/// after a torn record is untrusted.
fn parse(bytes: &[u8]) -> Vec<DeadRequest> {
    let mut accepted: BTreeMap<u64, DeadRequest> = BTreeMap::new();
    let mut rest = bytes;
    loop {
        if rest.len() >= ACCEPT_BYTES && magic_is(rest, ACCEPT_MAGIC) {
            let (entry, tail) = rest.split_at(ACCEPT_BYTES);
            let (body, seal) = entry.split_at(ACCEPT_BYTES - 32);
            if blake3::hash(body) != *seal {
                break;
            }
            let request_id = u64_at(body, 4);
            accepted.insert(
                request_id,
                DeadRequest {
                    request_id,
                    program_ref: arr32_at(body, 12),
                    input_digest: arr32_at(body, 44),
                },
            );
            rest = tail;
        } else if rest.len() >= DELIVER_BYTES && magic_is(rest, DELIVER_MAGIC) {
            let (entry, tail) = rest.split_at(DELIVER_BYTES);
            let (body, seal) = entry.split_at(DELIVER_BYTES - 32);
            if blake3::hash(body) != *seal {
                break;
            }
            accepted.remove(&u64_at(body, 4));
            rest = tail;
        } else {
            break;
        }
    }
    accepted.into_values().collect()
}

/// BLAKE3 over a request's input ciphertext wires (name + blob, length
/// prefixed) — the digest journaled with each accepted request.
pub fn input_digest(inputs: &[(String, Vec<u8>)]) -> [u8; 32] {
    let mut h = blake3::Hasher::new();
    for (name, wire) in inputs {
        h.update(&(name.len() as u64).to_le_bytes());
        h.update(name.as_bytes());
        h.update(&(wire.len() as u64).to_le_bytes());
        h.update(wire);
    }
    h.finalize()
}

struct OpenJournal {
    file: File,
}

struct Inner {
    /// Open append handles per live `(tenant, session)`.
    open: BTreeMap<(u64, u64), OpenJournal>,
    /// Dead sets loaded from the previous incarnation's journals.
    dead: BTreeMap<(u64, u64), Vec<DeadRequest>>,
    stats: JournalStats,
}

/// The server-side journal set: one append-only file per live session,
/// plus the dead sets recovered from the previous process's files.
/// `None`-directory servers (no `checkpoint_dir`) journal nothing and
/// report every session as having no dead requests.
pub struct JournalSet {
    dir: Option<PathBuf>,
    inner: Mutex<Inner>,
}

fn lock<'a>(m: &'a Mutex<Inner>) -> MutexGuard<'a, Inner> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn file_name(tenant: u64, session: u64) -> String {
    format!("t{tenant}_s{session}.cej")
}

impl JournalSet {
    /// Opens the journal set over `dir`, loading every prior journal's
    /// dead set, then truncating the files — the recovered information
    /// lives in memory and will be re-journaled as clients resend.
    pub fn open(dir: Option<&Path>) -> Self {
        let mut dead = BTreeMap::new();
        if let Some(dir) = dir {
            if let Ok(entries) = fs::read_dir(dir) {
                for entry in entries.flatten() {
                    let path = entry.path();
                    if path.extension().and_then(|e| e.to_str()) != Some("cej") {
                        continue;
                    }
                    let Some(key) = parse_file_name(&path) else {
                        continue;
                    };
                    if let Ok(bytes) = fs::read(&path) {
                        let set = parse(&bytes);
                        if !set.is_empty() {
                            dead.insert(key, set);
                        }
                    }
                    let _ = fs::remove_file(&path);
                }
            }
        }
        JournalSet {
            dir: dir.map(Path::to_path_buf),
            inner: Mutex::new(Inner {
                open: BTreeMap::new(),
                dead,
                stats: JournalStats::default(),
            }),
        }
    }

    /// Whether journaling is active (a checkpoint directory is set).
    pub fn active(&self) -> bool {
        self.dir.is_some()
    }

    /// Journals one accepted request *before* it enters the scheduler.
    /// Write failures disable nothing — the journal is best-effort, and a
    /// lost entry only costs the client a guess it already had to make.
    pub fn accept(
        &self,
        tenant: u64,
        session: u64,
        request_id: u64,
        program_ref: &[u8; 32],
        digest: &[u8; 32],
    ) {
        self.append(
            tenant,
            session,
            &accept_entry(request_id, program_ref, digest),
        );
        lock(&self.inner).stats.accepted += 1;
    }

    /// Journals one delivered response (called after the response frame
    /// was written back to the client's connection).
    pub fn deliver(&self, tenant: u64, session: u64, request_id: u64) {
        self.append(tenant, session, &deliver_entry(request_id));
        lock(&self.inner).stats.delivered += 1;
    }

    /// The dead requests the previous server process left behind for this
    /// session, consumed on first query (counted as reported).
    pub fn dead_requests(&self, tenant: u64, session: u64) -> Vec<DeadRequest> {
        let mut inner = lock(&self.inner);
        let set = inner.dead.remove(&(tenant, session)).unwrap_or_default();
        inner.stats.reported_dead += set.len() as u64;
        set
    }

    /// Counter snapshot.
    pub fn stats(&self) -> JournalStats {
        lock(&self.inner).stats
    }

    fn append(&self, tenant: u64, session: u64, entry: &[u8]) {
        let Some(dir) = &self.dir else { return };
        let mut inner = lock(&self.inner);
        let open = match inner.open.entry((tenant, session)) {
            std::collections::btree_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::btree_map::Entry::Vacant(v) => {
                let Ok(file) = open_append(dir, tenant, session) else {
                    return;
                };
                v.insert(OpenJournal { file })
            }
        };
        // One write per entry: either the whole sealed entry lands or the
        // parser stops at the torn tail. Flush so a kill -9 right after
        // scheduling still finds the accept on disk.
        let _ = open.file.write_all(entry);
        let _ = open.file.flush();
    }
}

fn open_append(dir: &Path, tenant: u64, session: u64) -> io::Result<File> {
    fs::create_dir_all(dir)?;
    OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join(file_name(tenant, session)))
}

fn parse_file_name(path: &Path) -> Option<(u64, u64)> {
    let stem = path.file_stem()?.to_str()?;
    let rest = stem.strip_prefix('t')?;
    let (tenant, session) = rest.split_once("_s")?;
    Some((tenant.parse().ok()?, session.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("choco-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn accepted_minus_delivered_survives_restart() {
        let dir = scratch("basic");
        let j = JournalSet::open(Some(&dir));
        j.accept(1, 2, 10, &[7; 32], &[8; 32]);
        j.accept(1, 2, 11, &[7; 32], &[9; 32]);
        j.deliver(1, 2, 10);
        j.accept(3, 4, 50, &[1; 32], &[2; 32]);
        drop(j);

        // "Restart": a fresh set over the same directory.
        let j2 = JournalSet::open(Some(&dir));
        let dead = j2.dead_requests(1, 2);
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].request_id, 11);
        assert_eq!(dead[0].program_ref, [7; 32]);
        // Consumed on first query.
        assert!(j2.dead_requests(1, 2).is_empty());
        assert_eq!(j2.dead_requests(3, 4).len(), 1);
        assert_eq!(j2.stats().reported_dead, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_stops_parsing_but_keeps_prefix() {
        let mut bytes = accept_entry(1, &[1; 32], &[2; 32]);
        bytes.extend_from_slice(&accept_entry(2, &[1; 32], &[3; 32]));
        // Simulate a crash mid-append: half an entry.
        let torn = accept_entry(3, &[1; 32], &[4; 32]);
        bytes.extend_from_slice(&torn[..ACCEPT_BYTES / 2]);
        let dead = parse(&bytes);
        assert_eq!(
            dead.iter().map(|d| d.request_id).collect::<Vec<_>>(),
            vec![1, 2]
        );
        // A flipped bit in a sealed entry invalidates it and the tail.
        let mut flipped = accept_entry(1, &[1; 32], &[2; 32]);
        flipped[10] ^= 1;
        flipped.extend_from_slice(&accept_entry(2, &[1; 32], &[3; 32]));
        assert!(parse(&flipped).is_empty());
    }

    #[test]
    fn inactive_journal_is_a_no_op() {
        let j = JournalSet::open(None);
        assert!(!j.active());
        j.accept(1, 1, 1, &[0; 32], &[0; 32]);
        assert!(j.dead_requests(1, 1).is_empty());
    }
}
