//! Socket-level fault injection for the chaos tests.
//!
//! [`ChaosProxy`] sits between a client and an [`crate::OffloadServer`] on
//! loopback and forwards bytes in both directions — until its
//! [`ChaosPlan`] says otherwise. Unlike the in-memory
//! `choco::transport::fault::FaultyChannel` (which perturbs whole frames),
//! the proxy works on raw socket bytes, so it can cut a connection *in the
//! middle of a frame* or delay individual TCP segments: exactly the
//! failures a real network produces and the frame layer must absorb.
//!
//! The kill fires once, on the client→server direction of the first
//! connection that crosses the byte threshold; connections dialed after
//! the kill pass through clean, so a client redial/resume succeeds. The
//! bit-flip corruption mode likewise fires once, at a byte offset, but
//! leaves the connection up — the frame tag, not EOF, must reject it.
//!
//! [`EvalChaos`]/[`EvalChaosState`] are the *in-process* counterpart:
//! deterministic nth-occurrence triggers inside the evaluation pipeline
//! (hard-kill at a stage, fault the nth job, stall the nth dispatch
//! round), mirroring the `CrashPlan` idiom used for session records.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// What the proxy does to the traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Cut both directions after this many client→server bytes have been
    /// forwarded (counted across connections; fires once). Choose a value
    /// inside a frame to simulate a mid-frame connection loss.
    pub kill_after_bytes: Option<u64>,
    /// Sleep this long before forwarding each chunk, both directions —
    /// a crude high-latency link (delayed ACK/echo delivery).
    pub delay_ms: u64,
    /// Flip one bit of the client→server byte at this offset (counted
    /// across connections; fires once), leaving the connection up — a
    /// corrupted-in-flight frame the keyed-BLAKE3 tag must catch.
    pub corrupt_at_byte: Option<u64>,
    /// Seed choosing *which* bit flips (deterministic: `seed % 8`), so a
    /// corruption sweep can walk all eight without new plumbing.
    pub corrupt_seed: u64,
}

struct ProxyState {
    plan: ChaosPlan,
    stop: AtomicBool,
    forwarded_c2s: AtomicU64,
    killed: AtomicBool,
    corrupted: AtomicBool,
}

/// A running loopback proxy. Stops (and closes its listener) on drop.
pub struct ChaosProxy {
    addr: SocketAddr,
    state: Arc<ProxyState>,
    accept: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts a proxy on an ephemeral loopback port, forwarding to
    /// `upstream` per `plan`.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn spawn(upstream: SocketAddr, plan: ChaosPlan) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(ProxyState {
            plan,
            stop: AtomicBool::new(false),
            forwarded_c2s: AtomicU64::new(0),
            killed: AtomicBool::new(false),
            corrupted: AtomicBool::new(false),
        });
        let accept_state = Arc::clone(&state);
        let accept = thread::spawn(move || accept_loop(&listener, upstream, &accept_state));
        Ok(ChaosProxy {
            addr,
            state,
            accept: Some(accept),
        })
    }

    /// The address clients should dial instead of the upstream.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the planned kill has fired.
    pub fn killed(&self) -> bool {
        self.state.killed.load(Ordering::SeqCst)
    }

    /// Whether the planned bit-flip has fired.
    pub fn corrupted(&self) -> bool {
        self.state.corrupted.load(Ordering::SeqCst)
    }

    /// Stops the proxy (idempotent; also runs on drop).
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.state.stop.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.halt();
    }
}

fn accept_loop(listener: &TcpListener, upstream: SocketAddr, state: &Arc<ProxyState>) {
    while !state.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _peer)) => {
                let Ok(server) = TcpStream::connect(upstream) else {
                    let _ = client.shutdown(Shutdown::Both);
                    continue;
                };
                spawn_pump(client, server, state);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn spawn_pump(client: TcpStream, server: TcpStream, state: &Arc<ProxyState>) {
    let (Ok(client2), Ok(server2)) = (client.try_clone(), server.try_clone()) else {
        let _ = client.shutdown(Shutdown::Both);
        let _ = server.shutdown(Shutdown::Both);
        return;
    };
    let c2s_state = Arc::clone(state);
    thread::spawn(move || pump(client, server, &c2s_state, true));
    let s2c_state = Arc::clone(state);
    thread::spawn(move || pump(server2, client2, &s2c_state, false));
}

/// Copies bytes `from` → `to`, applying the plan. `count_for_kill` marks
/// the client→server direction, the only one the byte-kill counts.
fn pump(mut from: TcpStream, mut to: TcpStream, state: &Arc<ProxyState>, count_for_kill: bool) {
    let _ = from.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = to.set_nodelay(true);
    let mut buf = [0u8; 4096];
    loop {
        if state.stop.load(Ordering::SeqCst) {
            break;
        }
        let got = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(_) => break,
        };
        if state.plan.delay_ms > 0 {
            thread::sleep(Duration::from_millis(state.plan.delay_ms));
        }
        let mut owned: Vec<u8>;
        let mut chunk = buf.get(..got).unwrap_or(&[]);
        let counted = state.plan.kill_after_bytes.is_some() || state.plan.corrupt_at_byte.is_some();
        if count_for_kill && counted && !state.killed.load(Ordering::SeqCst) {
            let before = state.forwarded_c2s.fetch_add(got as u64, Ordering::SeqCst);
            if let Some(offset) = state.plan.corrupt_at_byte {
                if offset >= before
                    && offset < before + got as u64
                    && !state.corrupted.swap(true, Ordering::SeqCst)
                {
                    // Flip one seed-chosen bit in place; the connection
                    // stays up so the tag check, not EOF, must reject it.
                    owned = chunk.to_vec();
                    let idx = (offset - before) as usize;
                    if let Some(byte) = owned.get_mut(idx) {
                        *byte ^= 1u8 << (state.plan.corrupt_seed % 8);
                    }
                    chunk = owned.as_slice();
                }
            }
            if let Some(threshold) = state.plan.kill_after_bytes {
                if before + got as u64 >= threshold && !state.killed.swap(true, Ordering::SeqCst) {
                    // Forward only up to the threshold, then cut both
                    // directions mid-frame.
                    let keep = (threshold.saturating_sub(before)) as usize;
                    chunk = chunk.get(..keep.min(chunk.len())).unwrap_or(&[]);
                    if !chunk.is_empty() {
                        let _ = to.write_all(chunk).and_then(|_| to.flush());
                    }
                    break;
                }
            }
        }
        if to.write_all(chunk).and_then(|_| to.flush()).is_err() {
            break;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// Evaluation stage at which an [`EvalChaos`] kill can fire, in pipeline
/// order: request admission, batch coalescing, mid-evaluation, and just
/// before the response is written back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalStage {
    /// The request was admitted (and journaled) but not yet scheduled.
    Accept,
    /// The scheduler closed a coalescing window and formed batches.
    Coalesce,
    /// A batch's jobs are being evaluated.
    MidEval,
    /// The response is built and about to be written to the socket.
    PreReply,
}

/// Deterministic in-process fault plan for the evaluation pipeline — the
/// eval-side sibling of the server's `CrashPlan`. Every trigger is an
/// "nth occurrence" (1-based) so a sweep can walk kill-points one by one
/// and replay bit-identically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalChaos {
    /// Hard-kill the server at the nth occurrence of the given stage.
    pub kill: Option<(EvalStage, u32)>,
    /// Inject a typed evaluation fault into the nth job executed.
    pub fail_job: Option<u32>,
    /// Stall the nth dispatch round by this many milliseconds before the
    /// deadline check runs, forcing queued jobs past their deadline.
    pub stall: Option<(u32, u64)>,
}

/// Shared occurrence counters for an [`EvalChaos`] plan. One instance is
/// threaded through the scheduler and eval hooks; each trigger fires at
/// most once.
#[derive(Debug, Default)]
pub struct EvalChaosState {
    plan: EvalChaos,
    stages: [AtomicU64; 4],
    jobs: AtomicU64,
    rounds: AtomicU64,
    kill_fired: AtomicBool,
}

impl EvalChaosState {
    /// State for `plan` with all counters at zero.
    pub fn new(plan: EvalChaos) -> Self {
        EvalChaosState {
            plan,
            ..EvalChaosState::default()
        }
    }

    /// Counts one occurrence of `stage`; returns `true` exactly when the
    /// plan's kill matches this stage and this occurrence number.
    pub fn kill_at(&self, stage: EvalStage) -> bool {
        let idx = stage as usize;
        let seen = self
            .stages
            .get(idx)
            .map(|c| c.fetch_add(1, Ordering::SeqCst) + 1)
            .unwrap_or(0);
        match self.plan.kill {
            Some((s, nth)) if s == stage && u64::from(nth) == seen => {
                self.kill_fired.store(true, Ordering::SeqCst);
                true
            }
            _ => false,
        }
    }

    /// Counts one executed job; returns `true` exactly for the planned
    /// nth job, which the evaluator must then fail with a typed error.
    pub fn fail_this_job(&self) -> bool {
        let seen = self.jobs.fetch_add(1, Ordering::SeqCst) + 1;
        matches!(self.plan.fail_job, Some(nth) if u64::from(nth) == seen)
    }

    /// Counts one dispatch round; returns the planned stall duration for
    /// the nth round, `None` otherwise.
    pub fn stall_this_round(&self) -> Option<Duration> {
        let seen = self.rounds.fetch_add(1, Ordering::SeqCst) + 1;
        match self.plan.stall {
            Some((nth, ms)) if u64::from(nth) == seen => Some(Duration::from_millis(ms)),
            _ => None,
        }
    }

    /// Whether the planned kill has fired.
    pub fn kill_fired(&self) -> bool {
        self.kill_fired.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial upstream echo: whatever arrives is written back.
    fn echo_upstream() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind echo upstream");
        let addr = listener.local_addr().expect("echo upstream addr");
        thread::spawn(move || {
            for stream in listener.incoming().flatten() {
                thread::spawn(move || {
                    let mut stream = stream;
                    let mut buf = [0u8; 1024];
                    while let Ok(n) = stream.read(&mut buf) {
                        if n == 0 || stream.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn clean_plan_forwards_both_directions() {
        let proxy = ChaosProxy::spawn(echo_upstream(), ChaosPlan::default()).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.write_all(b"over the proxy").unwrap();
        let mut got = [0u8; 14];
        conn.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"over the proxy");
        assert!(!proxy.killed());
    }

    #[test]
    fn kill_fires_once_and_later_connections_pass() {
        let plan = ChaosPlan {
            kill_after_bytes: Some(4),
            ..ChaosPlan::default()
        };
        let proxy = ChaosProxy::spawn(echo_upstream(), plan).unwrap();
        let mut first = TcpStream::connect(proxy.addr()).unwrap();
        first.write_all(b"0123456789").unwrap();
        // The cut drops the connection: reads end in EOF or reset.
        let mut sink = Vec::new();
        let _ = first.read_to_end(&mut sink);
        assert!(sink.len() <= 4, "at most 4 bytes may cross, got {sink:?}");
        assert!(proxy.killed());

        let mut second = TcpStream::connect(proxy.addr()).unwrap();
        second.write_all(b"after the kill").unwrap();
        let mut got = [0u8; 14];
        second.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"after the kill");
    }

    #[test]
    fn corruption_flips_exactly_one_seeded_bit_and_keeps_the_connection() {
        let plan = ChaosPlan {
            corrupt_at_byte: Some(2),
            corrupt_seed: 11, // bit 3
            ..ChaosPlan::default()
        };
        let proxy = ChaosProxy::spawn(echo_upstream(), plan).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.write_all(b"payload").unwrap();
        let mut got = [0u8; 7];
        conn.read_exact(&mut got).unwrap();
        let mut expect = *b"payload";
        expect[2] ^= 1 << 3;
        assert_eq!(got, expect, "exactly byte 2, bit 3 flipped");
        assert!(proxy.corrupted());
        assert!(!proxy.killed());
        // Fires once: a later round trips through unmodified.
        conn.write_all(b"clean").unwrap();
        let mut clean = [0u8; 5];
        conn.read_exact(&mut clean).unwrap();
        assert_eq!(&clean, b"clean");
    }

    #[test]
    fn eval_chaos_triggers_fire_on_exact_occurrences() {
        let state = EvalChaosState::new(EvalChaos {
            kill: Some((EvalStage::MidEval, 2)),
            fail_job: Some(3),
            stall: Some((1, 40)),
        });
        assert!(!state.kill_at(EvalStage::Accept));
        assert!(!state.kill_at(EvalStage::MidEval));
        assert!(!state.kill_fired());
        assert!(state.kill_at(EvalStage::MidEval), "second MidEval kills");
        assert!(state.kill_fired());
        assert!(!state.kill_at(EvalStage::MidEval), "fires once");
        assert!(!state.fail_this_job() && !state.fail_this_job());
        assert!(state.fail_this_job(), "third job faults");
        assert!(!state.fail_this_job());
        assert_eq!(state.stall_this_round(), Some(Duration::from_millis(40)));
        assert_eq!(state.stall_this_round(), None);
    }
}
