//! Per-tenant key registry.
//!
//! A tenant is identified by a `u64` id and authenticated by possession of
//! its session seed: the server derives the same [`TagKey`] the client's
//! session derives (`"transport-tag"` label over the seed), so hello auth
//! tags and frame tags verify without the seed ever crossing the wire.

use choco::transport::TagKey;
use std::collections::BTreeMap;

/// Maps tenant ids to their session seeds.
///
/// Iteration order is tenant-id order (`BTreeMap`), so reports and
/// checkpoints are deterministic.
#[derive(Debug, Clone, Default)]
pub struct TenantRegistry {
    seeds: BTreeMap<u64, Vec<u8>>,
}

impl TenantRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a tenant's session seed.
    pub fn register(&mut self, tenant: u64, seed: &[u8]) {
        self.seeds.insert(tenant, seed.to_vec());
    }

    /// Whether the tenant is known.
    pub fn contains(&self, tenant: u64) -> bool {
        self.seeds.contains_key(&tenant)
    }

    /// Derives the tenant's frame-tag key, if the tenant is registered.
    pub fn key_for(&self, tenant: u64) -> Option<TagKey> {
        self.seeds
            .get(&tenant)
            .map(|s| TagKey::from_session_seed(s))
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// Whether no tenants are registered.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// Registered tenant ids, ascending.
    pub fn tenants(&self) -> Vec<u64> {
        self.seeds.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use choco::transport::frame::{decode_frame, encode_frame, FrameKind};

    #[test]
    fn registry_key_matches_session_derivation() {
        let mut reg = TenantRegistry::new();
        reg.register(7, b"tenant seven seed");
        assert!(reg.contains(7));
        assert!(!reg.contains(8));
        assert_eq!(reg.tenants(), vec![7]);

        // A frame tagged by the client-side key must verify under the
        // registry-derived key.
        let client_key = TagKey::from_session_seed(b"tenant seven seed");
        let server_key = reg.key_for(7).unwrap();
        let wire = encode_frame(FrameKind::Control, 3, b"ping", &client_key);
        assert!(decode_frame(&wire, &server_key).is_ok());
        assert!(reg.key_for(8).is_none());
    }
}
