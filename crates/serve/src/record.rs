//! Durable per-session server records.
//!
//! The server keeps one [`SessionRecord`] per `(tenant, session)` pair: the
//! dedup cursor (`seen_below`) plus frame and byte counters. On graceful
//! drain every record is persisted as a small sealed blob
//! (`t<tenant>_s<session>.csr`), and a restarted server loads the directory
//! at bind time — so a client that resumes *across a server restart* still
//! gets exact duplicate accounting: frames it retransmits after the restart
//! are billed as retransmissions, not fresh uploads.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! | "CSR1" | tenant u64 | session u64 | seen_below u64 | frames u64 |
//! | dup_frames u64 | bad_frames u64 | payload_bytes u64 | wire_bytes u64 |
//! | blake3(prior bytes) 32 B |
//! ```

use choco::transport::TransportError;
use choco_prng::blake3;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Magic prefix of a serialized session record.
pub const RECORD_MAGIC: &[u8; 4] = b"CSR1";

/// Exact size of a serialized record: magic, eight `u64` fields, seal.
pub const RECORD_BYTES: usize = 4 + 8 * 8 + 32;

/// One session's server-side state: the duplicate-detection cursor and the
/// traffic counters that back the per-tenant ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionRecord {
    /// Tenant that owns the session.
    pub tenant: u64,
    /// Client-chosen session id.
    pub session: u64,
    /// Duplicate cursor: a frame is fresh iff `seq >= seen_below`; after
    /// accepting it, `seen_below = seq + 1`. Sequence numbers are monotonic
    /// per session, so one cursor suffices.
    pub seen_below: u64,
    /// Fresh frames verified and echoed.
    pub frames: u64,
    /// Duplicate frames (client retransmissions after a reconnect) —
    /// verified and re-echoed, but billed as retransmit traffic.
    pub dup_frames: u64,
    /// Frames that failed tag verification (never echoed).
    pub bad_frames: u64,
    /// Payload bytes of fresh frames (frame overhead excluded).
    pub payload_bytes: u64,
    /// Total wire bytes received, duplicates and overhead included.
    pub wire_bytes: u64,
}

fn take<'a>(rest: &mut &'a [u8], n: usize) -> Result<&'a [u8], TransportError> {
    if rest.len() < n {
        return Err(TransportError::BadCheckpoint(
            "session record: truncated".into(),
        ));
    }
    let (head, tail) = rest.split_at(n);
    *rest = tail;
    Ok(head)
}

fn take_u64(rest: &mut &[u8]) -> Result<u64, TransportError> {
    let b: [u8; 8] = take(rest, 8)?
        .try_into()
        .map_err(|_| TransportError::BadCheckpoint("session record: bad u64".into()))?;
    Ok(u64::from_le_bytes(b))
}

impl SessionRecord {
    /// A fresh record for one `(tenant, session)` pair.
    pub fn new(tenant: u64, session: u64) -> Self {
        SessionRecord {
            tenant,
            session,
            ..Self::default()
        }
    }

    /// The record's on-disk file name.
    pub fn file_name(&self) -> String {
        format!("t{}_s{}.csr", self.tenant, self.session)
    }

    /// Serializes the record with its BLAKE3 seal.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(RECORD_BYTES);
        out.extend_from_slice(RECORD_MAGIC);
        for field in [
            self.tenant,
            self.session,
            self.seen_below,
            self.frames,
            self.dup_frames,
            self.bad_frames,
            self.payload_bytes,
            self.wire_bytes,
        ] {
            out.extend_from_slice(&field.to_le_bytes());
        }
        let seal = blake3::hash(&out);
        out.extend_from_slice(&seal);
        out
    }

    /// Deserializes and validates a sealed record.
    ///
    /// # Errors
    ///
    /// [`TransportError::BadCheckpoint`] on bad magic, truncation, trailing
    /// bytes, or a seal mismatch (bit rot / tampering).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TransportError> {
        if bytes.len() != RECORD_BYTES {
            return Err(TransportError::BadCheckpoint(format!(
                "session record: {} bytes, expected {RECORD_BYTES}",
                bytes.len()
            )));
        }
        let body_len = RECORD_BYTES - 32;
        let (body, seal) = bytes.split_at(body_len);
        if blake3::hash(body) != *seal {
            return Err(TransportError::BadCheckpoint(
                "session record: seal mismatch".into(),
            ));
        }
        let mut rest = body;
        if take(&mut rest, 4)? != RECORD_MAGIC {
            return Err(TransportError::BadCheckpoint(
                "session record: bad magic".into(),
            ));
        }
        Ok(SessionRecord {
            tenant: take_u64(&mut rest)?,
            session: take_u64(&mut rest)?,
            seen_below: take_u64(&mut rest)?,
            frames: take_u64(&mut rest)?,
            dup_frames: take_u64(&mut rest)?,
            bad_frames: take_u64(&mut rest)?,
            payload_bytes: take_u64(&mut rest)?,
            wire_bytes: take_u64(&mut rest)?,
        })
    }

    /// Persists the record into `dir` (created if missing) with a
    /// write-to-temp-then-rename so a crash mid-write never leaves a
    /// half-written record behind.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        let tmp: PathBuf = dir.join(format!("{}.tmp", self.file_name()));
        fs::write(&tmp, self.to_bytes())?;
        fs::rename(&tmp, &path)
    }

    /// Loads every valid record from `dir`. Missing directories yield an
    /// empty set; unreadable or corrupt files are skipped (a torn record is
    /// strictly worse than none — the only cost of dropping one is that
    /// retransmitted frames bill as fresh instead of duplicates).
    pub fn load_dir(dir: &Path) -> Vec<SessionRecord> {
        let Ok(entries) = fs::read_dir(dir) else {
            return Vec::new();
        };
        let mut records = Vec::new();
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("csr") {
                continue;
            }
            if let Ok(bytes) = fs::read(&path) {
                if let Ok(rec) = SessionRecord::from_bytes(&bytes) {
                    records.push(rec);
                }
            }
        }
        records.sort_by_key(|r| (r.tenant, r.session));
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrips_and_detects_corruption() {
        let rec = SessionRecord {
            tenant: 3,
            session: 9,
            seen_below: 41,
            frames: 40,
            dup_frames: 2,
            bad_frames: 1,
            payload_bytes: 123_456,
            wire_bytes: 130_000,
        };
        let bytes = rec.to_bytes();
        assert_eq!(bytes.len(), RECORD_BYTES);
        assert_eq!(SessionRecord::from_bytes(&bytes).unwrap(), rec);

        for byte in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[byte] ^= 1;
            assert!(
                SessionRecord::from_bytes(&bad).is_err(),
                "flip at byte {byte} went undetected"
            );
        }
        assert!(SessionRecord::from_bytes(&bytes[..RECORD_BYTES - 1]).is_err());
    }

    #[test]
    fn save_and_load_dir_roundtrip() {
        let dir = std::env::temp_dir().join(format!("choco-serve-rec-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let a = SessionRecord::new(1, 1);
        let mut b = SessionRecord::new(2, 5);
        b.seen_below = 17;
        b.frames = 17;
        a.save(&dir).unwrap();
        b.save(&dir).unwrap();
        // A corrupt file in the directory is skipped, not fatal.
        fs::write(dir.join("t9_s9.csr"), b"garbage").unwrap();
        let loaded = SessionRecord::load_dir(&dir);
        assert_eq!(loaded, vec![a, b]);
        assert!(SessionRecord::load_dir(Path::new("/nonexistent-choco")).is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
