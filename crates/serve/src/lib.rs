//! `choco-serve`: the offload protocol's remote peer over real TCP.
//!
//! The [`crate::server::OffloadServer`] is a **verified relay**: it holds
//! each tenant's frame-tag key, verifies every keyed-BLAKE3 frame a client
//! sends, bills it to a per-tenant [`choco::LedgerBook`], and acknowledges
//! by echoing the verified frame bytes back. The HE state machine itself
//! stays inside the client process's [`choco::Session`] (the paper's
//! client-aided model keeps the secret key there anyway); what the server
//! adds is everything a real deployment needs around that loop:
//!
//! * a per-tenant key [`registry::TenantRegistry`] and an authenticated
//!   hello handshake (a client that does not know the tenant seed is
//!   rejected before any frame is exchanged),
//! * admission control with a typed `Overloaded` refusal instead of
//!   silent queueing,
//! * per-connection worker threads that verify frame batches on the
//!   `choco-math::par` pool,
//! * graceful drain: live per-session state is checkpointed to disk as
//!   sealed [`record::SessionRecord`]s so a restarted server keeps exact
//!   duplicate/retransmit accounting across the restart, and
//! * [`chaos::ChaosProxy`], a socket-level fault injector for the chaos
//!   tests (mid-frame connection kills, per-chunk delays).

#![forbid(unsafe_code)]

pub mod chaos;
pub mod record;
pub mod registry;
pub mod server;

pub use chaos::{ChaosPlan, ChaosProxy};
pub use record::SessionRecord;
pub use registry::TenantRegistry;
pub use server::{OffloadServer, ServeConfig, ServeStats};
