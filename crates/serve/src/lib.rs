//! `choco-serve`: the offload protocol's remote peer over real TCP.
//!
//! The [`crate::server::OffloadServer`] plays two roles. For the relay
//! protocol it is a **verified relay**: it holds each tenant's frame-tag
//! key, verifies every keyed-BLAKE3 frame a client sends, bills it to a
//! per-tenant [`choco::LedgerBook`], and acknowledges by echoing the
//! verified frame bytes back (the HE state machine stays inside the
//! client process's [`choco::Session`]; the paper's client-aided model
//! keeps the secret key there anyway). For the remote-evaluation protocol
//! (`choco::remote`) it is a **batching, caching HE evaluator**: clients
//! upload their evaluation keys once, then stream evaluate requests that
//! reference compiled programs by hash; the server coalesces compatible
//! requests across connections and tenants into batched kernel
//! invocations and caches compiled programs plus NTT-domain plaintext
//! operands so steady-state traffic does zero recompilation and zero
//! re-encoding. What the server adds around both loops:
//!
//! * a per-tenant key [`registry::TenantRegistry`] and an authenticated
//!   hello handshake (a client that does not know the tenant seed is
//!   rejected before any frame is exchanged),
//! * admission control with a typed `Overloaded` refusal instead of
//!   silent queueing,
//! * per-connection worker threads that verify frame batches on the
//!   `choco-math::par` pool,
//! * the global [`cache::ServeCache`] (LRU over `(params_hash,
//!   program_ref)` with hit/miss/eviction counters) and the
//!   [`sched::BatchScheduler`] (windowed cross-connection coalescing),
//! * graceful drain: scheduled batches are flushed and pending results
//!   delivered *before* live per-session state is checkpointed to disk as
//!   sealed [`record::SessionRecord`]s, so a restarted server keeps exact
//!   duplicate/retransmit accounting across the restart,
//! * fault isolation ([`isolate::Isolation`]): poison-program quarantine
//!   with batch bisection in the scheduler (healthy co-batched jobs still
//!   succeed), per-tenant circuit breakers with typed
//!   `Unavailable { retry_after_ms }` refusals, and per-job dispatch
//!   deadlines with typed `DeadlineExceeded` shedding,
//! * the in-flight eval [`journal::JournalSet`]: accepted requests are
//!   journaled before scheduling and marked off after delivery, so a
//!   hard-killed server's successor can tell a resuming client exactly
//!   which requests died and must be resent, and
//! * [`chaos::ChaosProxy`], a socket-level fault injector for the chaos
//!   tests (mid-frame connection kills, per-chunk delays, seeded
//!   bit-flips), plus [`chaos::EvalChaos`], the in-process eval-pipeline
//!   fault plan (stage kills, injected job faults, dispatch stalls).

#![forbid(unsafe_code)]
// Panics hide protocol bugs: outside tests, prefer typed errors (PR 1's
// robustness audit). New `unwrap`/`expect` calls in library code must either
// be converted to `Result` or carry a `# Panics` contract at the public API.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod cache;
pub mod chaos;
pub mod eval;
pub mod isolate;
pub mod journal;
pub mod record;
pub mod registry;
pub mod sched;
pub mod server;

pub use cache::{CachedProgram, EvalCacheStats, ProgramLookup, ServeCache};
pub use chaos::{ChaosPlan, ChaosProxy, EvalChaos, EvalChaosState, EvalStage};
pub use eval::{EvalCounters, EvalSession};
pub use isolate::{Isolation, IsolationConfig, IsolationStats};
pub use journal::{DeadRequest, JournalSet, JournalStats};
pub use record::SessionRecord;
pub use registry::TenantRegistry;
pub use sched::{BatchScheduler, SchedStats};
pub use server::{EvalStats, OffloadServer, ServeConfig, ServeStats};
