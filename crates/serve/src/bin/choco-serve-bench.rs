//! `choco-serve-bench` — loopback load generator for `choco-serve`.
//!
//! Spawns N concurrent clients against one server (in-process by default,
//! or an external one via `--addr`). Each client runs the paper's four
//! workload kinds round-robin over real TCP sessions — PageRank (BFV),
//! a conv layer (BFV), the LeNet-like pipeline (BFV) and K-Means (CKKS) —
//! and reports wall-clock percentiles per kind plus server-side totals as
//! JSON (`--json PATH`, e.g. the committed `BENCH_serve.json`).
//!
//! With `--batch N` the bench switches to the remote-evaluation protocol:
//! each client uploads its evaluation keys once, warms the server's
//! program/operand caches, then alternates measured **sequential** rounds
//! (N evaluate requests, one blocking round trip each) against measured
//! **batched** rounds (one pipelined `evaluate_batch` of N that the server
//! coalesces into a single kernel dispatch). The report records per-round
//! latency percentiles, request throughput for both modes, and their
//! ratio (`speedup`), plus the server's cache counters — steady-state
//! rounds show zero compiles and zero operand encodes.
//!
//! With `--faults` the bench additionally measures the fault-isolation
//! machinery under injected evaluation faults: per round it boots a fresh
//! in-process server with a deterministic `EvalChaos` plan and drives a
//! pipelined batch through it — a clean baseline, a poison fault bisected
//! out of the batch (the other jobs re-run and succeed), and a stalled
//! dispatch round that sheds every job past its deadline (the client
//! retries through the typed `DeadlineExceeded`). Every round's outputs
//! are compared bit-for-bit against the local reference; any mismatch is
//! a hard failure (`wrong_results` in the report, nonzero exit).

#![forbid(unsafe_code)]

use choco::remote::RemoteEvaluator;
use choco::transport::tcp::TcpOptions;
use choco::transport::{Redialer, RetryPolicy, Session, TcpChannel};
use choco_apps::distance::{distance_rotation_steps, PackingVariant};
use choco_apps::pagerank::{pagerank_rotation_steps, Graph};
use choco_apps::pipeline::{all_rotation_steps, seeded_weights, LenetLikeSpec};
use choco_apps::remote::{workload_params, RemoteWorkload};
use choco_apps::resumable::{
    drive_over_tcp, ResumableConvLayer, ResumableKmeans, ResumablePagerank, ResumablePipeline,
};
use choco_he::params::{HeParams, SchemeType};
use choco_he::{Bfv, Ckks, HeScheme};
use choco_serve::{EvalChaos, OffloadServer, ServeConfig, ServeStats, TenantRegistry};
use std::time::Instant;

const USAGE: &str = "\
choco-serve-bench: loopback load generator for choco-serve

USAGE:
  choco-serve-bench [--clients N] [--reps N] [--addr HOST:PORT] [--json PATH]
                    [--batch N] [--faults] [--smoke]

OPTIONS:
  --clients N   concurrent client threads (default 8)
  --reps N      workload runs per client (default 3)
  --addr A      benchmark an external choco-serve (tenants must be
                registered as ID=serve-bench tenant ID); default is an
                in-process server
  --json PATH   write the report as JSON to PATH (default: stdout only)
  --batch N     remote-evaluation mode: compare N sequential evaluate
                round trips per round against one pipelined batch of N
                (the PageRank circuit under BFV), report both latency
                distributions and the throughput speedup
  --faults      fault-injection phase against dedicated in-process chaos
                servers: per-kind latency percentiles for a clean round,
                a bisected poison fault, and a shed-and-retried deadline,
                asserting zero wrong results
  --smoke       tiny run (2 clients x 1 rep) for CI";

const KINDS: [&str; 4] = ["pagerank_bfv", "conv_bfv", "pipeline_bfv", "kmeans_ckks"];

fn fail(msg: &str) -> ! {
    eprintln!("choco-serve-bench: {msg}\n\n{USAGE}");
    std::process::exit(2)
}

fn tenant_seed(tenant: u64) -> String {
    format!("serve-bench-tenant-{tenant}")
}

fn err_str(e: impl std::fmt::Display) -> String {
    e.to_string()
}

/// One workload run over its own TCP session. Returns an error string on
/// failure (the bench reports failures, it does not panic).
fn run_workload(kind: usize, addr: &str, tenant: u64, session_id: u64) -> Result<(), String> {
    let seed = tenant_seed(tenant);
    let redialer = Redialer::new(addr, seed.as_bytes(), tenant, session_id);
    let dial = |r: &Redialer| r.dial_fresh().map_err(err_str);
    match kind {
        0 => {
            let g = Graph::from_adjacency(&[vec![1, 2], vec![2], vec![0], vec![0, 2]]);
            let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 24).map_err(err_str)?;
            let steps = pagerank_rotation_steps(g.len());
            let (up, down) = dial(&redialer)?;
            let session = Session::<Bfv, TcpChannel>::over(
                &params,
                seed.as_bytes(),
                &steps,
                up,
                down,
                RetryPolicy::default(),
            )
            .map_err(err_str)?;
            let w = ResumablePagerank::<Bfv>::new(&g, 0.85, 4, 2, 10).map_err(err_str)?;
            drive_over_tcp(
                &redialer,
                session,
                w,
                |p| ResumablePagerank::<Bfv>::restore(&g, 0.85, 4, 2, 10, p),
                |w, s| w.step(s),
                |_, _| Ok(()),
                2,
            )
            .map_err(err_str)?;
        }
        1 => {
            let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 18).map_err(err_str)?;
            let input: Vec<Vec<u64>> = vec![(0..64).map(|i| (i * 5 + 1) % 16).collect()];
            let weights: Vec<Vec<Vec<u64>>> = (0..2)
                .map(|c| vec![(0..9).map(|i| ((i + c * 3) % 16) as u64).collect()])
                .collect();
            let steps = choco_apps::dnn::conv_rotation_steps(1, 8, 8, 3);
            let (up, down) = dial(&redialer)?;
            let session = Session::<Bfv, TcpChannel>::over(
                &params,
                seed.as_bytes(),
                &steps,
                up,
                down,
                RetryPolicy::default(),
            )
            .map_err(err_str)?;
            let w = ResumableConvLayer::new(&input, &weights, 8, 8, 3).map_err(err_str)?;
            drive_over_tcp(
                &redialer,
                session,
                w,
                |p| ResumableConvLayer::restore(&input, &weights, 8, 8, 3, p),
                |w, s| w.step(s),
                |w, s| w.recover(s),
                2,
            )
            .map_err(err_str)?;
        }
        2 => {
            let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 18).map_err(err_str)?;
            let spec = LenetLikeSpec::tiny();
            let weights = seeded_weights(&spec, b"serve-bench pipe");
            let image: Vec<u64> = (0..spec.img * spec.img)
                .map(|i| ((i * 7 + 3) % 16) as u64)
                .collect();
            let steps = all_rotation_steps(&spec, params.degree() / 2);
            let (up, down) = dial(&redialer)?;
            let session = Session::<Bfv, TcpChannel>::over(
                &params,
                seed.as_bytes(),
                &steps,
                up,
                down,
                RetryPolicy::default(),
            )
            .map_err(err_str)?;
            let w = ResumablePipeline::new(&spec, &weights, &image).map_err(err_str)?;
            drive_over_tcp(
                &redialer,
                session,
                w,
                |p| ResumablePipeline::restore(&spec, &weights, &image, p),
                |w, s| w.step(s),
                |_, _| Ok(()),
                2,
            )
            .map_err(err_str)?;
        }
        _ => {
            let params = HeParams::ckks_insecure(1024, &[45, 45, 45, 46], 38).map_err(err_str)?;
            let points = vec![
                vec![0.0, 0.1, 0.0, 0.0],
                vec![0.1, 0.0, 0.1, 0.1],
                vec![0.05, 0.05, 0.0, 0.1],
                vec![2.0, 2.1, 2.0, 1.9],
                vec![2.1, 2.0, 1.9, 2.0],
                vec![1.9, 1.9, 2.1, 2.1],
            ];
            let init = vec![vec![0.5; 4], vec![1.5; 4]];
            let steps = distance_rotation_steps(4, points.len(), 512);
            let (up, down) = dial(&redialer)?;
            let session = Session::<Ckks, TcpChannel>::over(
                &params,
                seed.as_bytes(),
                &steps,
                up,
                down,
                RetryPolicy::default(),
            )
            .map_err(err_str)?;
            let w = ResumableKmeans::new(PackingVariant::DimensionMajor, &points, &init, 2, 1e-6)
                .map_err(err_str)?;
            drive_over_tcp(
                &redialer,
                session,
                w,
                |p| {
                    ResumableKmeans::restore(
                        PackingVariant::DimensionMajor,
                        &points,
                        &init,
                        2,
                        1e-6,
                        p,
                    )
                },
                |w, s| w.step(s),
                |_, _| Ok(()),
                2,
            )
            .map_err(err_str)?;
        }
    }
    Ok(())
}

fn percentile(sorted_ms: &[u64], pct: u64) -> u64 {
    if sorted_ms.is_empty() {
        return 0;
    }
    let rank = (pct * (sorted_ms.len() as u64 - 1) + 50) / 100;
    sorted_ms
        .get(rank as usize)
        .or_else(|| sorted_ms.last())
        .copied()
        .unwrap_or(0)
}

fn kind_json(label: &str, ms: &mut [u64], failed: u64) -> String {
    ms.sort_unstable();
    let mean = if ms.is_empty() {
        0
    } else {
        ms.iter().sum::<u64>() / ms.len() as u64
    };
    format!(
        "    \"{label}\": {{ \"runs\": {}, \"failed\": {failed}, \"p50_ms\": {}, \
         \"p90_ms\": {}, \"p99_ms\": {}, \"mean_ms\": {mean}, \"min_ms\": {}, \"max_ms\": {} }}",
        ms.len(),
        percentile(ms, 50),
        percentile(ms, 90),
        percentile(ms, 99),
        ms.first().copied().unwrap_or(0),
        ms.last().copied().unwrap_or(0),
    )
}

/// One client's measured remote-eval rounds: per-round wall times for the
/// sequential and the batched shape, in that order.
fn run_batch_client(
    addr: &str,
    tenant: u64,
    reps: u64,
    batch: usize,
) -> Result<(Vec<u64>, Vec<u64>), String> {
    let circuits = choco_apps::circuits::all_workloads();
    let circuit = circuits
        .iter()
        .find(|w| w.name == "pagerank")
        .ok_or("pagerank circuit missing")?;
    let params = workload_params(SchemeType::Bfv).map_err(err_str)?;
    let seed = tenant_seed(tenant);
    let w = RemoteWorkload::<Bfv>::prepare(circuit, &params, seed.as_bytes()).map_err(err_str)?;
    // Session ids above the relay phase's rep counter, so a combined run
    // gives the eval connection its own dedup cursor.
    let mut client = RemoteEvaluator::<Bfv>::connect(
        addr,
        seed.as_bytes(),
        tenant,
        10_000,
        &w.params,
        &w.relin,
        &w.galois,
        &TcpOptions::default(),
    )
    .map_err(err_str)?;
    let inputs = w.input_refs();

    // Warm-up: uploads the program body and fills the operand cache, so
    // both measured shapes see identical steady-state server work.
    client.evaluate(&w.prepared, &inputs).map_err(err_str)?;

    let mut sequential = Vec::with_capacity(reps as usize);
    let mut batched = Vec::with_capacity(reps as usize);
    for _ in 0..reps {
        let t0 = Instant::now();
        for _ in 0..batch {
            client.evaluate(&w.prepared, &inputs).map_err(err_str)?;
        }
        sequential.push(u64::try_from(t0.elapsed().as_millis()).unwrap_or(u64::MAX));

        let round: Vec<_> = (0..batch).map(|_| inputs.as_slice()).collect();
        let t0 = Instant::now();
        client
            .evaluate_batch(&w.prepared, &round)
            .map_err(err_str)?;
        batched.push(u64::try_from(t0.elapsed().as_millis()).unwrap_or(u64::MAX));
    }
    Ok((sequential, batched))
}

fn mode_json(label: &str, ms: &mut [u64], requests_per_round: u64) -> (String, f64) {
    ms.sort_unstable();
    let total_ms: u64 = ms.iter().sum();
    let total_requests = requests_per_round * ms.len() as u64;
    let throughput = if total_ms == 0 {
        0.0
    } else {
        total_requests as f64 * 1_000.0 / total_ms as f64
    };
    let mean = if ms.is_empty() {
        0
    } else {
        total_ms / ms.len() as u64
    };
    let json = format!(
        "    \"{label}\": {{ \"rounds\": {}, \"p50_ms\": {}, \"p90_ms\": {}, \
         \"p99_ms\": {}, \"mean_ms\": {mean}, \"throughput_per_s\": {throughput:.3} }}",
        ms.len(),
        percentile(ms, 50),
        percentile(ms, 90),
        percentile(ms, 99),
    );
    (json, throughput)
}

/// The `--batch N` phase: remote evaluation, sequential vs pipelined,
/// against the already-running server. Returns the `remote_eval` JSON
/// section and the number of failed clients.
fn run_batch_phase(clients: usize, reps: u64, batch: usize, addr: &str) -> (String, u64) {
    let wall = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|i| {
            let addr = addr.to_string();
            std::thread::spawn(move || run_batch_client(&addr, i as u64 + 1, reps, batch))
        })
        .collect();
    let mut sequential = Vec::new();
    let mut batched = Vec::new();
    let mut failed = 0u64;
    for handle in handles {
        match handle.join() {
            Ok(Ok((mut s, mut b))) => {
                sequential.append(&mut s);
                batched.append(&mut b);
            }
            Ok(Err(e)) => {
                failed += 1;
                eprintln!("choco-serve-bench: batch client failed: {e}");
            }
            Err(_) => fail("a batch client thread panicked"),
        }
    }
    let wall_ms = u64::try_from(wall.elapsed().as_millis()).unwrap_or(u64::MAX);

    let (seq_json, seq_tp) = mode_json("sequential", &mut sequential, batch as u64);
    let (bat_json, bat_tp) = mode_json("batched", &mut batched, batch as u64);
    let speedup = if seq_tp > 0.0 { bat_tp / seq_tp } else { 0.0 };
    let section = format!(
        "  \"remote_eval\": {{\n    \"batch\": {batch}, \"rounds_per_mode\": {},\n\
         {seq_json},\n{bat_json},\n    \
         \"speedup\": {speedup:.3}, \"failed_clients\": {failed}, \
         \"wall_ms\": {wall_ms}\n  }}",
        reps * clients as u64,
    );
    (section, failed)
}

/// One fault-injection configuration: the chaos plan a dedicated
/// in-process server boots with, and how the measuring client behaves.
struct FaultKind {
    label: &'static str,
    chaos: EvalChaos,
    /// Coalescing window for this kind's servers — generous for the
    /// bisection kind so the pipelined batch lands in one dispatch.
    batch_window_ms: u64,
    /// Client-side dispatch deadline, for the shedding kind.
    deadline_ms: Option<u64>,
}

/// Pipelined requests per fault round; the bisection kind injects exactly
/// one poison fault into the batch, so the injected fault rate is
/// `1 / FAULT_BATCH` of that kind's requests.
const FAULT_BATCH: usize = 3;

fn fault_kinds() -> [FaultKind; 3] {
    [
        FaultKind {
            label: "clean",
            chaos: EvalChaos::default(),
            batch_window_ms: 80,
            deadline_ms: None,
        },
        FaultKind {
            // One job of the coalesced batch faults (poison); the
            // scheduler bisects, the healthy jobs re-run bit-identically,
            // and the once-firing fault recovers on its own re-run — every
            // result still correct, the fault paid for in latency only.
            label: "bisected_fault",
            chaos: EvalChaos {
                fail_job: Some(1),
                ..EvalChaos::default()
            },
            batch_window_ms: 80,
            deadline_ms: None,
        },
        FaultKind {
            // The first dispatch round stalls past every job's deadline;
            // the jobs are shed with typed `DeadlineExceeded` responses
            // and the client resends them with a fresh budget.
            label: "shed_deadline",
            chaos: EvalChaos {
                stall: Some((1, 400)),
                ..EvalChaos::default()
            },
            batch_window_ms: 10,
            deadline_ms: Some(80),
        },
    ]
}

/// Phase-wide server-counter totals, accumulated across fault rounds.
#[derive(Default)]
struct FaultTotals {
    requests: u64,
    bisections: u64,
    shed: u64,
    quarantined: u64,
}

/// One measured fault round against a fresh chaos server. Returns the
/// round latency and the number of result vectors that differed from the
/// local reference (always 0 unless the isolation machinery is broken).
fn run_fault_round(
    kind: &FaultKind,
    w: &RemoteWorkload<Bfv>,
    local: &[Vec<u8>],
    session_id: u64,
    totals: &mut FaultTotals,
) -> Result<(u64, u64), String> {
    let seed = tenant_seed(1);
    let mut registry = TenantRegistry::new();
    registry.register(1, seed.as_bytes());
    let config = ServeConfig {
        max_sessions: 4,
        batch_window_ms: kind.batch_window_ms,
        eval_chaos: kind.chaos,
        ..ServeConfig::default()
    };
    let server = OffloadServer::bind("127.0.0.1:0", config, registry).map_err(err_str)?;
    let mut client = RemoteEvaluator::<Bfv>::connect(
        &server.addr().to_string(),
        seed.as_bytes(),
        1,
        session_id,
        &w.params,
        &w.relin,
        &w.galois,
        &TcpOptions::default(),
    )
    .map_err(err_str)?;
    client.set_deadline_ms(kind.deadline_ms);
    let inputs = w.input_refs();
    let round: Vec<_> = (0..FAULT_BATCH).map(|_| inputs.as_slice()).collect();

    let t0 = Instant::now();
    let results = client
        .evaluate_batch(&w.prepared, &round)
        .map_err(err_str)?;
    let ms = u64::try_from(t0.elapsed().as_millis()).unwrap_or(u64::MAX);
    let wrong = results
        .iter()
        .filter(|outs| {
            let wires: Vec<Vec<u8>> = outs.iter().map(Bfv::ct_to_wire).collect();
            wires != local
        })
        .count() as u64;
    drop(client);
    let stats = server.shutdown();
    let iso = stats.eval.isolation;
    totals.requests += stats.eval.counters.requests;
    totals.bisections += iso.bisections;
    totals.shed += iso.shed_deadline;
    totals.quarantined += iso.quarantined;
    Ok((ms, wrong))
}

/// The `--faults` phase: three server configurations, `rounds` measured
/// rounds each, every output compared against the local reference.
/// Returns the `faults` JSON section plus (failed_rounds, wrong_results).
fn run_faults_phase(reps: u64) -> (String, u64, u64) {
    let rounds = 2 * reps;
    eprintln!(
        "choco-serve-bench: fault-injection phase — {rounds} rounds x 3 kinds, \
         batch {FAULT_BATCH}, one poison fault or stalled dispatch per chaos round"
    );
    let setup = || -> Result<(RemoteWorkload<Bfv>, Vec<Vec<u8>>), String> {
        let circuits = choco_apps::circuits::all_workloads();
        let circuit = circuits
            .iter()
            .find(|w| w.name == "pagerank")
            .ok_or("pagerank circuit missing")?;
        let params = workload_params(SchemeType::Bfv).map_err(err_str)?;
        let w = RemoteWorkload::<Bfv>::prepare(circuit, &params, tenant_seed(1).as_bytes())
            .map_err(err_str)?;
        let local = w.local_output_wires().map_err(err_str)?;
        Ok((w, local))
    };
    let (w, local) = match setup() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("choco-serve-bench: faults phase setup failed: {e}");
            return (String::from("  \"faults\": { \"setup_failed\": 1 }"), 1, 0);
        }
    };

    let wall = Instant::now();
    let mut kind_lines = Vec::new();
    let mut failed = 0u64;
    let mut wrong_total = 0u64;
    let mut injected = 0u64;
    let mut totals = FaultTotals::default();
    for (k, kind) in fault_kinds().iter().enumerate() {
        let mut ms = Vec::with_capacity(rounds as usize);
        let mut kind_failed = 0u64;
        for round in 0..rounds {
            let session_id = 20_000 + (k as u64) * 1_000 + round;
            match run_fault_round(kind, &w, &local, session_id, &mut totals) {
                Ok((elapsed, wrong)) => {
                    ms.push(elapsed);
                    wrong_total += wrong;
                }
                Err(e) => {
                    kind_failed += 1;
                    eprintln!(
                        "choco-serve-bench: faults round {round} ({}) failed: {e}",
                        kind.label
                    );
                }
            }
            if kind.label != "clean" {
                injected += 1;
            }
        }
        failed += kind_failed;
        kind_lines.push(kind_json(kind.label, &mut ms, kind_failed));
    }
    let wall_ms = u64::try_from(wall.elapsed().as_millis()).unwrap_or(u64::MAX);

    let rate = if totals.requests == 0 {
        0.0
    } else {
        injected as f64 / totals.requests as f64
    };
    let section = format!(
        "  \"faults\": {{\n    \"batch\": {FAULT_BATCH}, \"rounds_per_kind\": {rounds},\n\
         {},\n    \"injected_faults\": {injected}, \"injected_fault_rate\": {rate:.3},\n    \
         \"requests\": {}, \"bisections\": {}, \"shed\": {}, \"quarantined\": {},\n    \
         \"wrong_results\": {wrong_total}, \"failed_rounds\": {failed}, \
         \"wall_ms\": {wall_ms}\n  }}",
        kind_lines.join(",\n"),
        totals.requests,
        totals.bisections,
        totals.shed,
        totals.quarantined,
    );
    (section, failed, wrong_total)
}

/// Server-side evaluator counters: cache effectiveness and coalescing.
fn eval_json(stats: &ServeStats) -> String {
    let e = &stats.eval;
    format!(
        "  \"eval\": {{ \"requests\": {}, \"errors\": {}, \"compiles\": {}, \
         \"program_hits\": {}, \"program_misses\": {}, \"program_evictions\": {}, \
         \"operand_hits\": {}, \"operand_misses\": {}, \"batches\": {}, \
         \"coalesced\": {}, \"max_batch\": {} }}",
        e.counters.requests,
        e.counters.errors,
        e.cache.compiles,
        e.cache.programs.hits,
        e.cache.programs.misses,
        e.cache.programs.evictions,
        e.cache.operands.hits,
        e.cache.operands.misses,
        e.sched.batches,
        e.sched.coalesced,
        e.sched.max_batch,
    )
}

fn server_json(stats: &ServeStats) -> String {
    let total = stats.book.combined();
    format!(
        "  \"server\": {{ \"accepted\": {}, \"resumed\": {}, \"rejected_overload\": {}, \
         \"tenants\": {}, \"fresh_frames\": {}, \"fresh_payload_bytes\": {}, \
         \"retransmit_bytes\": {}, \"sessions\": {} }}",
        stats.accepted,
        stats.resumed,
        stats.rejected_overload,
        stats.book.tenants(),
        total.uploads,
        total.upload_bytes,
        total.retransmit_bytes,
        stats.sessions.len(),
    )
}

fn main() {
    let mut clients: usize = 8;
    let mut reps: u64 = 3;
    let mut addr: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut batch: Option<usize> = None;
    let mut faults = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut need = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--clients" => {
                clients = need("--clients")
                    .parse()
                    .unwrap_or_else(|_| fail("--clients: not a number"));
            }
            "--reps" => {
                reps = need("--reps")
                    .parse()
                    .unwrap_or_else(|_| fail("--reps: not a number"));
            }
            "--addr" => addr = Some(need("--addr")),
            "--json" => json_path = Some(need("--json")),
            "--batch" => {
                batch = Some(
                    need("--batch")
                        .parse()
                        .unwrap_or_else(|_| fail("--batch: not a number")),
                );
            }
            "--faults" => faults = true,
            "--smoke" => {
                clients = 2;
                reps = 1;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    if clients == 0 || reps == 0 {
        fail("--clients and --reps must be positive");
    }
    if batch == Some(0) {
        fail("--batch must be positive");
    }

    // In-process server unless an external address was given.
    let mut registry = TenantRegistry::new();
    for i in 0..clients {
        let tenant = i as u64 + 1;
        registry.register(tenant, tenant_seed(tenant).as_bytes());
    }
    let server = match addr {
        Some(_) => None,
        None => {
            let config = ServeConfig {
                max_sessions: clients as u32 + 4,
                ..ServeConfig::default()
            };
            Some(
                OffloadServer::bind("127.0.0.1:0", config, registry)
                    .unwrap_or_else(|e| fail(&format!("bind in-process server: {e}"))),
            )
        }
    };
    let addr = addr.unwrap_or_else(|| {
        server
            .as_ref()
            .map(|s| s.addr().to_string())
            .unwrap_or_else(|| fail("no server"))
    });

    eprintln!(
        "choco-serve-bench: {clients} clients x {reps} reps against {addr} \
         ({} threads in the par pool)",
        choco_math::par::num_threads()
    );

    let wall = Instant::now();
    let mut handles = Vec::new();
    for i in 0..clients {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            let tenant = i as u64 + 1;
            let kind = i % KINDS.len();
            let mut runs: Vec<(usize, u64, Result<(), String>)> = Vec::new();
            for rep in 0..reps {
                let t0 = Instant::now();
                let outcome = run_workload(kind, &addr, tenant, rep);
                let ms = u64::try_from(t0.elapsed().as_millis()).unwrap_or(u64::MAX);
                runs.push((kind, ms, outcome));
            }
            runs
        }));
    }
    let mut runs: Vec<(usize, u64, Result<(), String>)> = Vec::new();
    for handle in handles {
        match handle.join() {
            Ok(mut r) => runs.append(&mut r),
            Err(_) => fail("a client thread panicked"),
        }
    }
    let wall_ms = u64::try_from(wall.elapsed().as_millis()).unwrap_or(u64::MAX);

    let mut failed_total = 0u64;
    for (kind, _, outcome) in &runs {
        if let Err(e) = outcome {
            failed_total += 1;
            eprintln!(
                "choco-serve-bench: {} run failed: {e}",
                KINDS.get(*kind).copied().unwrap_or("?")
            );
        }
    }

    let mut kind_lines = Vec::new();
    for (kind, label) in KINDS.iter().enumerate() {
        let mut ms: Vec<u64> = runs
            .iter()
            .filter(|(k, _, outcome)| *k == kind && outcome.is_ok())
            .map(|(_, ms, _)| *ms)
            .collect();
        let failed = runs
            .iter()
            .filter(|(k, _, outcome)| *k == kind && outcome.is_err())
            .count() as u64;
        if !ms.is_empty() || failed > 0 {
            kind_lines.push(kind_json(label, &mut ms, failed));
        }
    }

    // The remote-eval phase reuses the same server (and its registry) so
    // its counters land in the same report.
    let batch_phase = batch.map(|n| {
        eprintln!(
            "choco-serve-bench: remote-eval phase — {clients} clients, \
             {reps} rounds of {n} sequential vs one batch of {n}"
        );
        run_batch_phase(clients, reps, n, &addr)
    });

    // The faults phase boots its own chaos servers, so it runs regardless
    // of --addr, after the shared-server phases are done measuring.
    let faults_phase = faults.then(|| run_faults_phase(reps));

    let stats = server.map(OffloadServer::shutdown);
    let total_runs = runs.len() as u64;
    let throughput_per_s = if wall_ms == 0 {
        0.0
    } else {
        (total_runs - failed_total) as f64 * 1_000.0 / wall_ms as f64
    };
    let mut sections = vec![
        format!(
            "  \"config\": {{ \"clients\": {clients}, \"reps\": {reps}, \"addr\": \"{addr}\" }}"
        ),
        format!(
            "  \"total\": {{ \"runs\": {total_runs}, \"failed\": {failed_total}, \
             \"wall_ms\": {wall_ms}, \"throughput_per_s\": {throughput_per_s:.3} }}"
        ),
        format!("  \"workloads\": {{\n{}\n  }}", kind_lines.join(",\n")),
    ];
    let mut failed_batch_clients = 0u64;
    if let Some((section, failed)) = batch_phase {
        sections.push(section);
        failed_batch_clients = failed;
    }
    let mut failed_fault_rounds = 0u64;
    let mut wrong_results = 0u64;
    if let Some((section, failed, wrong)) = faults_phase {
        sections.push(section);
        failed_fault_rounds = failed;
        wrong_results = wrong;
    }
    if let Some(stats) = &stats {
        sections.push(server_json(stats));
        if batch.is_some() {
            sections.push(eval_json(stats));
        }
    }
    let report = format!("{{\n{}\n}}\n", sections.join(",\n"));

    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, &report) {
            fail(&format!("write {path}: {e}"));
        }
        eprintln!("choco-serve-bench: wrote {path}");
    }
    print!("{report}");
    if wrong_results > 0 {
        eprintln!(
            "choco-serve-bench: FAULT ISOLATION BROKEN — {wrong_results} result(s) \
             differed from the local reference under injected faults"
        );
    }
    if failed_total > 0 || failed_batch_clients > 0 || failed_fault_rounds > 0 || wrong_results > 0
    {
        std::process::exit(1);
    }
}
