//! `choco-serve-bench` — loopback load generator for `choco-serve`.
//!
//! Spawns N concurrent clients against one server (in-process by default,
//! or an external one via `--addr`). Each client runs the paper's four
//! workload kinds round-robin over real TCP sessions — PageRank (BFV),
//! a conv layer (BFV), the LeNet-like pipeline (BFV) and K-Means (CKKS) —
//! and reports wall-clock percentiles per kind plus server-side totals as
//! JSON (`--json PATH`, e.g. the committed `BENCH_serve.json`).

#![forbid(unsafe_code)]

use choco::transport::{Redialer, RetryPolicy, Session, TcpChannel};
use choco_apps::distance::{distance_rotation_steps, PackingVariant};
use choco_apps::pagerank::{pagerank_rotation_steps, Graph};
use choco_apps::pipeline::{all_rotation_steps, seeded_weights, LenetLikeSpec};
use choco_apps::resumable::{
    drive_over_tcp, ResumableConvLayer, ResumableKmeans, ResumablePagerank, ResumablePipeline,
};
use choco_he::params::HeParams;
use choco_he::{Bfv, Ckks};
use choco_serve::{OffloadServer, ServeConfig, ServeStats, TenantRegistry};
use std::time::Instant;

const USAGE: &str = "\
choco-serve-bench: loopback load generator for choco-serve

USAGE:
  choco-serve-bench [--clients N] [--reps N] [--addr HOST:PORT] [--json PATH]
                    [--smoke]

OPTIONS:
  --clients N   concurrent client threads (default 8)
  --reps N      workload runs per client (default 3)
  --addr A      benchmark an external choco-serve (tenants must be
                registered as ID=serve-bench tenant ID); default is an
                in-process server
  --json PATH   write the report as JSON to PATH (default: stdout only)
  --smoke       tiny run (2 clients x 1 rep) for CI";

const KINDS: [&str; 4] = ["pagerank_bfv", "conv_bfv", "pipeline_bfv", "kmeans_ckks"];

fn fail(msg: &str) -> ! {
    eprintln!("choco-serve-bench: {msg}\n\n{USAGE}");
    std::process::exit(2)
}

fn tenant_seed(tenant: u64) -> String {
    format!("serve-bench-tenant-{tenant}")
}

fn err_str(e: impl std::fmt::Display) -> String {
    e.to_string()
}

/// One workload run over its own TCP session. Returns an error string on
/// failure (the bench reports failures, it does not panic).
fn run_workload(kind: usize, addr: &str, tenant: u64, session_id: u64) -> Result<(), String> {
    let seed = tenant_seed(tenant);
    let redialer = Redialer::new(addr, seed.as_bytes(), tenant, session_id);
    let dial = |r: &Redialer| r.dial_fresh().map_err(err_str);
    match kind {
        0 => {
            let g = Graph::from_adjacency(&[vec![1, 2], vec![2], vec![0], vec![0, 2]]);
            let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 24).map_err(err_str)?;
            let steps = pagerank_rotation_steps(g.len());
            let (up, down) = dial(&redialer)?;
            let session = Session::<Bfv, TcpChannel>::over(
                &params,
                seed.as_bytes(),
                &steps,
                up,
                down,
                RetryPolicy::default(),
            )
            .map_err(err_str)?;
            let w = ResumablePagerank::<Bfv>::new(&g, 0.85, 4, 2, 10).map_err(err_str)?;
            drive_over_tcp(
                &redialer,
                session,
                w,
                |p| ResumablePagerank::<Bfv>::restore(&g, 0.85, 4, 2, 10, p),
                |w, s| w.step(s),
                |_, _| Ok(()),
                2,
            )
            .map_err(err_str)?;
        }
        1 => {
            let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 18).map_err(err_str)?;
            let input: Vec<Vec<u64>> = vec![(0..64).map(|i| (i * 5 + 1) % 16).collect()];
            let weights: Vec<Vec<Vec<u64>>> = (0..2)
                .map(|c| vec![(0..9).map(|i| ((i + c * 3) % 16) as u64).collect()])
                .collect();
            let steps = choco_apps::dnn::conv_rotation_steps(1, 8, 8, 3);
            let (up, down) = dial(&redialer)?;
            let session = Session::<Bfv, TcpChannel>::over(
                &params,
                seed.as_bytes(),
                &steps,
                up,
                down,
                RetryPolicy::default(),
            )
            .map_err(err_str)?;
            let w = ResumableConvLayer::new(&input, &weights, 8, 8, 3).map_err(err_str)?;
            drive_over_tcp(
                &redialer,
                session,
                w,
                |p| ResumableConvLayer::restore(&input, &weights, 8, 8, 3, p),
                |w, s| w.step(s),
                |w, s| w.recover(s),
                2,
            )
            .map_err(err_str)?;
        }
        2 => {
            let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 18).map_err(err_str)?;
            let spec = LenetLikeSpec::tiny();
            let weights = seeded_weights(&spec, b"serve-bench pipe");
            let image: Vec<u64> = (0..spec.img * spec.img)
                .map(|i| ((i * 7 + 3) % 16) as u64)
                .collect();
            let steps = all_rotation_steps(&spec, params.degree() / 2);
            let (up, down) = dial(&redialer)?;
            let session = Session::<Bfv, TcpChannel>::over(
                &params,
                seed.as_bytes(),
                &steps,
                up,
                down,
                RetryPolicy::default(),
            )
            .map_err(err_str)?;
            let w = ResumablePipeline::new(&spec, &weights, &image).map_err(err_str)?;
            drive_over_tcp(
                &redialer,
                session,
                w,
                |p| ResumablePipeline::restore(&spec, &weights, &image, p),
                |w, s| w.step(s),
                |_, _| Ok(()),
                2,
            )
            .map_err(err_str)?;
        }
        _ => {
            let params = HeParams::ckks_insecure(1024, &[45, 45, 45, 46], 38).map_err(err_str)?;
            let points = vec![
                vec![0.0, 0.1, 0.0, 0.0],
                vec![0.1, 0.0, 0.1, 0.1],
                vec![0.05, 0.05, 0.0, 0.1],
                vec![2.0, 2.1, 2.0, 1.9],
                vec![2.1, 2.0, 1.9, 2.0],
                vec![1.9, 1.9, 2.1, 2.1],
            ];
            let init = vec![vec![0.5; 4], vec![1.5; 4]];
            let steps = distance_rotation_steps(4, points.len(), 512);
            let (up, down) = dial(&redialer)?;
            let session = Session::<Ckks, TcpChannel>::over(
                &params,
                seed.as_bytes(),
                &steps,
                up,
                down,
                RetryPolicy::default(),
            )
            .map_err(err_str)?;
            let w = ResumableKmeans::new(PackingVariant::DimensionMajor, &points, &init, 2, 1e-6)
                .map_err(err_str)?;
            drive_over_tcp(
                &redialer,
                session,
                w,
                |p| {
                    ResumableKmeans::restore(
                        PackingVariant::DimensionMajor,
                        &points,
                        &init,
                        2,
                        1e-6,
                        p,
                    )
                },
                |w, s| w.step(s),
                |_, _| Ok(()),
                2,
            )
            .map_err(err_str)?;
        }
    }
    Ok(())
}

fn percentile(sorted_ms: &[u64], pct: u64) -> u64 {
    if sorted_ms.is_empty() {
        return 0;
    }
    let rank = (pct * (sorted_ms.len() as u64 - 1) + 50) / 100;
    sorted_ms
        .get(rank as usize)
        .or_else(|| sorted_ms.last())
        .copied()
        .unwrap_or(0)
}

fn kind_json(label: &str, ms: &mut [u64], failed: u64) -> String {
    ms.sort_unstable();
    let mean = if ms.is_empty() {
        0
    } else {
        ms.iter().sum::<u64>() / ms.len() as u64
    };
    format!(
        "    \"{label}\": {{ \"runs\": {}, \"failed\": {failed}, \"p50_ms\": {}, \
         \"p90_ms\": {}, \"p99_ms\": {}, \"mean_ms\": {mean}, \"min_ms\": {}, \"max_ms\": {} }}",
        ms.len(),
        percentile(ms, 50),
        percentile(ms, 90),
        percentile(ms, 99),
        ms.first().copied().unwrap_or(0),
        ms.last().copied().unwrap_or(0),
    )
}

fn server_json(stats: &ServeStats) -> String {
    let total = stats.book.combined();
    format!(
        "  \"server\": {{ \"accepted\": {}, \"resumed\": {}, \"rejected_overload\": {}, \
         \"tenants\": {}, \"fresh_frames\": {}, \"fresh_payload_bytes\": {}, \
         \"retransmit_bytes\": {}, \"sessions\": {} }}",
        stats.accepted,
        stats.resumed,
        stats.rejected_overload,
        stats.book.tenants(),
        total.uploads,
        total.upload_bytes,
        total.retransmit_bytes,
        stats.sessions.len(),
    )
}

fn main() {
    let mut clients: usize = 8;
    let mut reps: u64 = 3;
    let mut addr: Option<String> = None;
    let mut json_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut need = |flag: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--clients" => {
                clients = need("--clients")
                    .parse()
                    .unwrap_or_else(|_| fail("--clients: not a number"));
            }
            "--reps" => {
                reps = need("--reps")
                    .parse()
                    .unwrap_or_else(|_| fail("--reps: not a number"));
            }
            "--addr" => addr = Some(need("--addr")),
            "--json" => json_path = Some(need("--json")),
            "--smoke" => {
                clients = 2;
                reps = 1;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(&format!("unknown flag {other:?}")),
        }
    }
    if clients == 0 || reps == 0 {
        fail("--clients and --reps must be positive");
    }

    // In-process server unless an external address was given.
    let mut registry = TenantRegistry::new();
    for i in 0..clients {
        let tenant = i as u64 + 1;
        registry.register(tenant, tenant_seed(tenant).as_bytes());
    }
    let server = match addr {
        Some(_) => None,
        None => {
            let config = ServeConfig {
                max_sessions: clients as u32 + 4,
                ..ServeConfig::default()
            };
            Some(
                OffloadServer::bind("127.0.0.1:0", config, registry)
                    .unwrap_or_else(|e| fail(&format!("bind in-process server: {e}"))),
            )
        }
    };
    let addr = addr.unwrap_or_else(|| {
        server
            .as_ref()
            .map(|s| s.addr().to_string())
            .unwrap_or_else(|| fail("no server"))
    });

    eprintln!(
        "choco-serve-bench: {clients} clients x {reps} reps against {addr} \
         ({} threads in the par pool)",
        choco_math::par::num_threads()
    );

    let wall = Instant::now();
    let mut handles = Vec::new();
    for i in 0..clients {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            let tenant = i as u64 + 1;
            let kind = i % KINDS.len();
            let mut runs: Vec<(usize, u64, Result<(), String>)> = Vec::new();
            for rep in 0..reps {
                let t0 = Instant::now();
                let outcome = run_workload(kind, &addr, tenant, rep);
                let ms = u64::try_from(t0.elapsed().as_millis()).unwrap_or(u64::MAX);
                runs.push((kind, ms, outcome));
            }
            runs
        }));
    }
    let mut runs: Vec<(usize, u64, Result<(), String>)> = Vec::new();
    for handle in handles {
        match handle.join() {
            Ok(mut r) => runs.append(&mut r),
            Err(_) => fail("a client thread panicked"),
        }
    }
    let wall_ms = u64::try_from(wall.elapsed().as_millis()).unwrap_or(u64::MAX);

    let mut failed_total = 0u64;
    for (kind, _, outcome) in &runs {
        if let Err(e) = outcome {
            failed_total += 1;
            eprintln!(
                "choco-serve-bench: {} run failed: {e}",
                KINDS.get(*kind).copied().unwrap_or("?")
            );
        }
    }

    let mut kind_lines = Vec::new();
    for (kind, label) in KINDS.iter().enumerate() {
        let mut ms: Vec<u64> = runs
            .iter()
            .filter(|(k, _, outcome)| *k == kind && outcome.is_ok())
            .map(|(_, ms, _)| *ms)
            .collect();
        let failed = runs
            .iter()
            .filter(|(k, _, outcome)| *k == kind && outcome.is_err())
            .count() as u64;
        if !ms.is_empty() || failed > 0 {
            kind_lines.push(kind_json(label, &mut ms, failed));
        }
    }

    let stats = server.map(OffloadServer::shutdown);
    let total_runs = runs.len() as u64;
    let throughput_per_s = if wall_ms == 0 {
        0.0
    } else {
        (total_runs - failed_total) as f64 * 1_000.0 / wall_ms as f64
    };
    let mut sections = vec![
        format!(
            "  \"config\": {{ \"clients\": {clients}, \"reps\": {reps}, \"addr\": \"{addr}\" }}"
        ),
        format!(
            "  \"total\": {{ \"runs\": {total_runs}, \"failed\": {failed_total}, \
             \"wall_ms\": {wall_ms}, \"throughput_per_s\": {throughput_per_s:.3} }}"
        ),
        format!("  \"workloads\": {{\n{}\n  }}", kind_lines.join(",\n")),
    ];
    if let Some(stats) = &stats {
        sections.push(server_json(stats));
    }
    let report = format!("{{\n{}\n}}\n", sections.join(",\n"));

    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, &report) {
            fail(&format!("write {path}: {e}"));
        }
        eprintln!("choco-serve-bench: wrote {path}");
    }
    print!("{report}");
    if failed_total > 0 {
        std::process::exit(1);
    }
}
