//! Fault isolation for the shared evaluator: poison-program quarantine
//! and per-tenant circuit breakers.
//!
//! Both structures exist so one misbehaving tenant (or one poisoned
//! program) cannot degrade the evaluator for everyone else:
//!
//! * The **quarantine** is a capped list of `(params_hash, program_ref)`
//!   pairs whose evaluation failed *in isolation* (a batch of one, or the
//!   single offender left after bisection). A quarantined program gets an
//!   immediate typed refusal at admission — it never enters the scheduler
//!   again, so repeat offenders cost a hash lookup instead of evaluator
//!   time. The list is FIFO-capped: quarantining entry `cap + 1` evicts
//!   the oldest, bounding memory against an adversary minting unique
//!   poison programs.
//! * The **circuit breaker** tracks each tenant's recent evaluation
//!   outcomes in a fixed window. When errors dominate the window the
//!   breaker opens: the tenant's requests are refused with a typed
//!   `Unavailable { retry_after_ms }` until the cool-down elapses, after
//!   which the breaker goes **half-open** and admits exactly one probe.
//!   A successful probe closes the breaker (and clears the window); a
//!   failed probe re-opens it for another cool-down.
//!
//! All state is behind one mutex — admission checks are a lock, a map
//! lookup, and a clock read, far below the cost of the HE work they gate.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// The quarantine/breaker key: `(params_hash, program_ref)`.
pub type ProgramKey = ([u8; 32], [u8; 32]);

/// Tuning for [`Isolation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IsolationConfig {
    /// Maximum quarantined programs held (FIFO eviction beyond this).
    pub quarantine_capacity: usize,
    /// Outcomes remembered per tenant for the error-rate window.
    pub breaker_window: usize,
    /// Errors within the window that trip the breaker open.
    pub breaker_threshold: usize,
    /// Cool-down before an open breaker half-opens, in milliseconds. Also
    /// the `retry_after_ms` hint sent to the refused tenant.
    pub breaker_cooldown_ms: u64,
}

impl Default for IsolationConfig {
    fn default() -> Self {
        IsolationConfig {
            quarantine_capacity: 64,
            breaker_window: 16,
            breaker_threshold: 8,
            breaker_cooldown_ms: 250,
        }
    }
}

/// Point-in-time isolation counters, exported through `ServeStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IsolationStats {
    /// Programs currently quarantined.
    pub quarantined: u64,
    /// Admission refusals served straight from the quarantine list.
    pub quarantine_refusals: u64,
    /// Tenant breakers currently open (or half-open).
    pub open_breakers: u64,
    /// Admission refusals served by an open breaker.
    pub breaker_refusals: u64,
    /// Batches that were bisected after a member evaluation faulted.
    pub bisections: u64,
    /// Jobs shed because their deadline passed before dispatch.
    pub shed_deadline: u64,
    /// Jobs whose isolated evaluation faulted (quarantine insertions
    /// count these, minus FIFO evictions).
    pub faults: u64,
}

#[derive(Debug)]
enum BreakerState {
    Closed,
    /// Refusing until the stored instant; then half-open.
    Open {
        until: Instant,
    },
    /// One probe is in flight (or admitted); refusing further requests
    /// until the probe's outcome is recorded — or until the stored
    /// instant, after which another probe is admitted. The time bound
    /// keeps a probe that never produces an outcome (shed, `NeedProgram`,
    /// connection loss) from wedging the tenant half-open forever.
    HalfOpen {
        until: Instant,
    },
}

#[derive(Debug)]
struct Breaker {
    state: BreakerState,
    /// Recent outcomes, `true` = ok, newest at the back.
    window: VecDeque<bool>,
}

struct Inner {
    quarantine: BTreeMap<ProgramKey, String>,
    /// Insertion order for FIFO eviction.
    quarantine_order: VecDeque<ProgramKey>,
    breakers: BTreeMap<u64, Breaker>,
    stats: IsolationStats,
}

/// The admission decision for one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Admit the request.
    Allow,
    /// Refuse: the tenant's breaker is open; retry after the hint.
    Refuse {
        /// Milliseconds until the breaker half-opens.
        retry_after_ms: u64,
    },
}

/// Shared isolation state: quarantine list + per-tenant breakers.
pub struct Isolation {
    config: IsolationConfig,
    inner: Mutex<Inner>,
}

fn lock<'a>(m: &'a Mutex<Inner>) -> MutexGuard<'a, Inner> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Isolation {
    /// Fresh isolation state under `config`.
    pub fn new(config: IsolationConfig) -> Self {
        Isolation {
            config,
            inner: Mutex::new(Inner {
                quarantine: BTreeMap::new(),
                quarantine_order: VecDeque::new(),
                breakers: BTreeMap::new(),
                stats: IsolationStats::default(),
            }),
        }
    }

    /// The configured tuning.
    pub fn config(&self) -> IsolationConfig {
        self.config
    }

    /// If `key` is quarantined, returns the recorded reason and counts the
    /// refusal. Admission path — called before the scheduler ever sees the
    /// job.
    pub fn check_quarantine(&self, key: &ProgramKey) -> Option<String> {
        let mut inner = lock(&self.inner);
        let hit = inner.quarantine.get(key).cloned();
        if hit.is_some() {
            inner.stats.quarantine_refusals += 1;
        }
        hit
    }

    /// Quarantines `key` after an isolated evaluation fault, evicting the
    /// oldest entry past capacity. Idempotent per key.
    pub fn quarantine(&self, key: ProgramKey, reason: &str) {
        let mut inner = lock(&self.inner);
        if inner.quarantine.contains_key(&key) {
            return;
        }
        while inner.quarantine.len() >= self.config.quarantine_capacity.max(1) {
            if let Some(old) = inner.quarantine_order.pop_front() {
                inner.quarantine.remove(&old);
            } else {
                break;
            }
        }
        inner.quarantine.insert(key, reason.to_string());
        inner.quarantine_order.push_back(key);
        inner.stats.quarantined = inner.quarantine.len() as u64;
    }

    /// The tenant's admission decision. A breaker that has cooled down
    /// moves to half-open and admits exactly one probe; further requests
    /// keep being refused until the probe's outcome is recorded — or, if
    /// the probe never produces one, until a second cool-down admits the
    /// next probe.
    pub fn admit(&self, tenant: u64) -> Admission {
        let mut inner = lock(&self.inner);
        let cooldown = self.config.breaker_cooldown_ms;
        let Some(b) = inner.breakers.get_mut(&tenant) else {
            return Admission::Allow;
        };
        let now = Instant::now();
        let probe_until = now + Duration::from_millis(cooldown);
        let decision = match b.state {
            BreakerState::Closed => Admission::Allow,
            BreakerState::HalfOpen { until } | BreakerState::Open { until } if now >= until => {
                // Cool-down over (or the previous probe went silent):
                // admit one probe, time-bounded like the open state.
                b.state = BreakerState::HalfOpen { until: probe_until };
                Admission::Allow
            }
            BreakerState::HalfOpen { until } | BreakerState::Open { until } => Admission::Refuse {
                retry_after_ms: (until - now).as_millis().max(1) as u64,
            },
        };
        if matches!(decision, Admission::Refuse { .. }) {
            inner.stats.breaker_refusals += 1;
        }
        decision
    }

    /// Records one evaluation outcome for `tenant` and updates its breaker:
    /// a half-open probe closes (ok) or re-opens (fault) the breaker; in
    /// the closed state, `breaker_threshold` errors within the window trip
    /// it open. Deadline sheds are *not* recorded — load is not the
    /// tenant's error.
    pub fn record_outcome(&self, tenant: u64, ok: bool) {
        let mut inner = lock(&self.inner);
        let config = self.config;
        let b = inner.breakers.entry(tenant).or_insert_with(|| Breaker {
            state: BreakerState::Closed,
            window: VecDeque::new(),
        });
        match b.state {
            BreakerState::HalfOpen { .. } => {
                if ok {
                    b.state = BreakerState::Closed;
                    b.window.clear();
                } else {
                    b.state = BreakerState::Open {
                        until: Instant::now() + Duration::from_millis(config.breaker_cooldown_ms),
                    };
                }
            }
            BreakerState::Open { .. } => {
                // Outcomes of jobs admitted before the trip; ignore.
            }
            BreakerState::Closed => {
                b.window.push_back(ok);
                while b.window.len() > config.breaker_window.max(1) {
                    b.window.pop_front();
                }
                let errors = b.window.iter().filter(|ok| !**ok).count();
                if errors >= config.breaker_threshold.max(1) {
                    b.state = BreakerState::Open {
                        until: Instant::now() + Duration::from_millis(config.breaker_cooldown_ms),
                    };
                }
            }
        }
        inner.stats.open_breakers = inner
            .breakers
            .values()
            .filter(|b| !matches!(b.state, BreakerState::Closed))
            .count() as u64;
    }

    /// Counts one isolated evaluation fault (stats only; pair with
    /// [`Isolation::quarantine`]).
    pub fn count_fault(&self) {
        lock(&self.inner).stats.faults += 1;
    }

    /// Counts one batch bisection.
    pub fn count_bisection(&self) {
        lock(&self.inner).stats.bisections += 1;
    }

    /// Counts one deadline shed.
    pub fn count_shed(&self) {
        lock(&self.inner).stats.shed_deadline += 1;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> IsolationStats {
        lock(&self.inner).stats
    }
}

impl Default for Isolation {
    fn default() -> Self {
        Isolation::new(IsolationConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(b: u8) -> ProgramKey {
        ([b; 32], [b.wrapping_add(1); 32])
    }

    #[test]
    fn quarantine_refuses_and_caps_fifo() {
        let iso = Isolation::new(IsolationConfig {
            quarantine_capacity: 2,
            ..IsolationConfig::default()
        });
        assert!(iso.check_quarantine(&key(1)).is_none());
        iso.quarantine(key(1), "bad relin");
        iso.quarantine(key(2), "noise out");
        assert_eq!(iso.check_quarantine(&key(1)).as_deref(), Some("bad relin"));
        // Third entry evicts the oldest.
        iso.quarantine(key(3), "newest");
        assert!(iso.check_quarantine(&key(1)).is_none());
        assert!(iso.check_quarantine(&key(2)).is_some());
        assert!(iso.check_quarantine(&key(3)).is_some());
        let stats = iso.stats();
        assert_eq!(stats.quarantined, 2);
        assert_eq!(stats.quarantine_refusals, 3, "one refusal per hit");
    }

    #[test]
    fn breaker_trips_half_opens_and_closes() {
        let iso = Isolation::new(IsolationConfig {
            breaker_window: 4,
            breaker_threshold: 2,
            breaker_cooldown_ms: 20,
            ..IsolationConfig::default()
        });
        assert_eq!(iso.admit(7), Admission::Allow);
        iso.record_outcome(7, false);
        assert_eq!(iso.admit(7), Admission::Allow, "one error is tolerated");
        iso.record_outcome(7, false);
        assert!(matches!(iso.admit(7), Admission::Refuse { .. }));
        assert!(iso.stats().open_breakers == 1 && iso.stats().breaker_refusals >= 1);
        // Cool down → half-open admits exactly one probe.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(iso.admit(7), Admission::Allow);
        assert!(matches!(iso.admit(7), Admission::Refuse { .. }));
        // Failed probe re-opens; successful probe closes.
        iso.record_outcome(7, false);
        assert!(matches!(iso.admit(7), Admission::Refuse { .. }));
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(iso.admit(7), Admission::Allow);
        iso.record_outcome(7, true);
        assert_eq!(iso.admit(7), Admission::Allow);
        assert_eq!(iso.stats().open_breakers, 0);
        // Other tenants were never affected.
        assert_eq!(iso.admit(8), Admission::Allow);
    }
}
