//! End-to-end serving tests over real loopback TCP.
//!
//! * concurrency: ≥ 8 simultaneous client sessions complete real HE
//!   workloads with zero failures, and the per-tenant book's fresh frame
//!   counts reconcile exactly against each client's ledger;
//! * admission: the session over the limit gets a *typed*
//!   `Overloaded { active, limit }`, and capacity freed by a disconnect is
//!   reusable;
//! * drain/restart: a server drain mid-workload kills the client's link;
//!   the client redials a restarted server (same checkpoint directory) and
//!   resumes to a bit-identical result, billing only recovery bytes extra;
//! * chaos proxy: a mid-frame connection cut is absorbed by redial +
//!   resume, and a uniformly delayed link merely slows the run down.

use choco::transport::tcp::TcpOptions;
use choco::transport::TagKey;
use choco::transport::{dial, Redialer, RetryPolicy, Session, TcpChannel, TransportError};
use choco_apps::pagerank::{pagerank_rotation_steps, Graph};
use choco_apps::resumable::{
    drive_over_tcp, is_reconnectable, ResumablePagerank, ResumableWorkload,
};
use choco_he::params::HeParams;
use choco_he::Bfv;
use choco_serve::{ChaosPlan, ChaosProxy, OffloadServer, ServeConfig, TenantRegistry};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn graph() -> Graph {
    Graph::from_adjacency(&[vec![1, 2], vec![2], vec![0], vec![0, 2]])
}

fn params() -> HeParams {
    HeParams::bfv_insecure(1024, &[45, 45, 46], 24).unwrap()
}

fn tenant_seed(tenant: u64) -> String {
    format!("e2e tenant {tenant}")
}

fn registry(tenants: u64) -> TenantRegistry {
    let mut reg = TenantRegistry::new();
    for t in 1..=tenants {
        reg.register(t, tenant_seed(t).as_bytes());
    }
    reg
}

fn scratch_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("choco-serve-e2e-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs one full PageRank workload for `tenant` against `addr`; returns the
/// client's final primary ledger lines and result wire.
fn run_pagerank(
    addr: &str,
    tenant: u64,
    session_id: u64,
    max_reconnects: u32,
) -> Result<(choco::CommLedger, Vec<u8>), TransportError> {
    let g = graph();
    let params = params();
    let steps = pagerank_rotation_steps(g.len());
    let seed = tenant_seed(tenant);
    let redialer = Redialer::new(addr, seed.as_bytes(), tenant, session_id);
    let (up, down) = redialer.dial_fresh()?;
    let session = Session::<Bfv, TcpChannel>::over(
        &params,
        seed.as_bytes(),
        &steps,
        up,
        down,
        RetryPolicy::default(),
    )?;
    let w = ResumablePagerank::<Bfv>::new(&g, 0.85, 4, 2, 10)?;
    let (session, w) = drive_over_tcp(
        &redialer,
        session,
        w,
        |p| ResumablePagerank::<Bfv>::restore(&g, 0.85, 4, 2, 10, p),
        |w, s| w.step(s),
        |_, _| Ok(()),
        max_reconnects,
    )?;
    Ok((*session.ledger(), w.final_ct_wire().to_vec()))
}

#[test]
fn eight_concurrent_sessions_complete_with_zero_failures() {
    let config = ServeConfig {
        max_sessions: 16,
        ..ServeConfig::default()
    };
    let server = OffloadServer::bind("127.0.0.1:0", config, registry(8)).unwrap();
    let addr = server.addr().to_string();

    let handles: Vec<_> = (1..=8u64)
        .map(|tenant| {
            let addr = addr.clone();
            std::thread::spawn(move || run_pagerank(&addr, tenant, 0, 0))
        })
        .collect();
    let mut ledgers = Vec::new();
    for (i, handle) in handles.into_iter().enumerate() {
        let outcome = handle.join().expect("client thread panicked");
        let (ledger, wire) = outcome.unwrap_or_else(|e| panic!("client {} failed: {e}", i + 1));
        assert!(!wire.is_empty());
        ledgers.push(ledger);
    }

    // All 8 clients ran the same deterministic workload: identical primary
    // ledgers, no retransmissions, no recovery.
    for ledger in &ledgers {
        assert_eq!(ledger.retransmit_bytes, 0);
        assert_eq!(ledger.recovery_bytes, 0);
        assert_eq!(ledger.uploads, ledgers[0].uploads);
        assert_eq!(ledger.downloads, ledgers[0].downloads);
    }

    let stats = server.shutdown();
    assert_eq!(stats.accepted, 8);
    assert_eq!(stats.rejected_overload, 0);
    assert_eq!(stats.book.tenants(), 8);
    // Per-tenant reconciliation: every physical frame the server verified
    // fresh is one client transfer (the relay cannot tell uploads from
    // downloads apart — it sees their sum), and nothing was retransmitted
    // or rejected.
    for (tenant, ledger) in ledgers.iter().enumerate() {
        let tenant = tenant as u64 + 1;
        let server_side = stats.book.get(tenant).copied().unwrap();
        assert_eq!(
            server_side.uploads,
            ledger.uploads + ledger.downloads,
            "tenant {tenant}: server fresh frames vs client transfers"
        );
        assert_eq!(server_side.retransmit_bytes, 0, "tenant {tenant}");
    }
    assert!(stats
        .sessions
        .iter()
        .all(|r| r.bad_frames == 0 && r.dup_frames == 0));
}

#[test]
fn session_over_the_limit_gets_typed_overloaded_and_capacity_recovers() {
    let config = ServeConfig {
        max_sessions: 8,
        worker_poll_ms: 10,
        ..ServeConfig::default()
    };
    let server = OffloadServer::bind("127.0.0.1:0", config, registry(1)).unwrap();
    let addr = server.addr().to_string();
    let key = TagKey::from_session_seed(tenant_seed(1).as_bytes());
    let opts = TcpOptions::default();

    // Fill all 8 admission slots and let the server count them.
    let mut held = Vec::new();
    for session_id in 0..8 {
        held.push(dial(&addr, &key, 1, session_id, false, &opts).unwrap());
    }
    let start = Instant::now();
    while server.active_sessions() < 8 {
        assert!(start.elapsed() < Duration::from_secs(5), "admission lagged");
        std::thread::sleep(Duration::from_millis(5));
    }

    // The 9th concurrent session is refused with the typed error.
    match dial(&addr, &key, 1, 8, false, &opts) {
        Err(TransportError::Overloaded { active, limit }) => {
            assert_eq!(active, 8);
            assert_eq!(limit, 8);
        }
        Err(other) => panic!("expected Overloaded, got {other}"),
        Ok(_) => panic!("expected Overloaded, got an admitted session"),
    }

    // Freeing one slot makes the next hello admissible again.
    drop(held.pop());
    let start = Instant::now();
    loop {
        match dial(&addr, &key, 1, 9, false, &opts) {
            Ok(_) => break,
            Err(TransportError::Overloaded { .. }) if start.elapsed() < Duration::from_secs(5) => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => panic!("redial after capacity freed: {e}"),
        }
    }
    let stats = server.shutdown();
    assert!(stats.rejected_overload >= 1);
    assert_eq!(stats.accepted, 9);
}

#[test]
fn drain_restart_and_resume_is_bit_identical() {
    let dir = scratch_dir("drain-restart");
    let g = graph();
    let params = params();
    let steps = pagerank_rotation_steps(g.len());
    let seed = tenant_seed(1);
    let config = || ServeConfig {
        max_sessions: 4,
        worker_poll_ms: 10,
        checkpoint_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };

    // Uninterrupted baseline against its own session id.
    let server = OffloadServer::bind("127.0.0.1:0", config(), registry(1)).unwrap();
    let (base_ledger, base_wire) = run_pagerank(&server.addr().to_string(), 1, 0, 0).unwrap();

    // Interrupted run: two steps against the first server...
    let redial_policy = RetryPolicy {
        max_attempts: 3,
        base_backoff_ms: 5,
        max_backoff_ms: 50,
        round_timeout_ms: 10_000,
    };
    // A short recv deadline keeps the failing step quick: once the server
    // drains, every retry sees a dry pipe until the budget is spent.
    let fast_opts = TcpOptions {
        recv_deadline_ms: 100,
        ..TcpOptions::default()
    };
    let mut redialer = Redialer::new(server.addr().to_string(), seed.as_bytes(), 1, 1);
    redialer.opts = fast_opts;
    let (up, down) = redialer.dial_fresh().unwrap();
    let mut session =
        Session::<Bfv, TcpChannel>::over(&params, seed.as_bytes(), &steps, up, down, redial_policy)
            .unwrap();
    let mut w = ResumablePagerank::<Bfv>::new(&g, 0.85, 4, 2, 10).unwrap();
    w.step(&mut session).unwrap();
    assert!(!w.is_done(), "workload too small to interrupt");
    let ckpt = session.checkpoint(&w.progress());

    // ... then the server drains and shuts down underneath the client.
    let stats1 = server.shutdown();
    assert_eq!(stats1.accepted, 2);
    let rec1 = stats1
        .sessions
        .iter()
        .find(|r| r.session == 1)
        .copied()
        .expect("drained server persisted the live session record");
    assert!(rec1.frames > 0);

    let err = loop {
        match w.step(&mut session) {
            Ok(()) => continue,
            Err(e) => break e,
        }
    };
    assert!(is_reconnectable(&err), "expected a link error, got {err}");
    drop(session);

    // A restarted server over the same checkpoint directory picks the
    // session record back up; the client redials and resumes.
    let server2 = OffloadServer::bind("127.0.0.1:0", config(), registry(1)).unwrap();
    let mut redialer2 = Redialer::new(server2.addr().to_string(), seed.as_bytes(), 1, 1);
    redialer2.opts = fast_opts;
    let (up, down) = redialer2.redial().unwrap();
    let (mut session, progress) = Session::<Bfv, TcpChannel>::resume(&ckpt, up, down).unwrap();
    let mut w = ResumablePagerank::<Bfv>::restore(&g, 0.85, 4, 2, 10, &progress).unwrap();
    while !w.is_done() {
        w.step(&mut session).unwrap();
    }

    assert_eq!(w.final_ct_wire(), &base_wire[..], "result diverged");
    let ledger = session.ledger();
    assert_eq!(ledger.upload_bytes, base_ledger.upload_bytes);
    assert_eq!(ledger.download_bytes, base_ledger.download_bytes);
    assert_eq!(ledger.uploads, base_ledger.uploads);
    assert_eq!(ledger.downloads, base_ledger.downloads);
    assert_eq!(ledger.rounds, base_ledger.rounds);
    assert!(ledger.recovery_bytes > 0, "resume billed no recovery bytes");
    assert_eq!(base_ledger.recovery_bytes, 0);

    let stats2 = server2.shutdown();
    assert!(stats2.resumed >= 1, "resume hello not counted");
    let rec2 = stats2
        .sessions
        .iter()
        .find(|r| r.session == 1)
        .copied()
        .expect("restarted server kept the session record");
    assert!(
        rec2.seen_below > rec1.seen_below,
        "dedup cursor did not advance across the restart"
    );
    assert_eq!(rec2.bad_frames, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_frame_connection_cut_is_absorbed_by_redial_and_resume() {
    let server = OffloadServer::bind("127.0.0.1:0", ServeConfig::default(), registry(1)).unwrap();
    // Baseline without the proxy.
    let (base_ledger, base_wire) = run_pagerank(&server.addr().to_string(), 1, 0, 0).unwrap();

    // Cut the first connection mid-frame: the threshold lands inside a
    // ciphertext frame (tens of KB each), well past the 55-byte hello.
    let plan = ChaosPlan {
        kill_after_bytes: Some(40_000),
        ..ChaosPlan::default()
    };
    let proxy = ChaosProxy::spawn(server.addr(), plan).unwrap();
    let (ledger, wire) = run_pagerank(&proxy.addr().to_string(), 1, 1, 3).unwrap();
    assert!(proxy.killed(), "the planned mid-frame cut never fired");

    assert_eq!(wire, base_wire, "result diverged after the mid-frame cut");
    assert_eq!(ledger.upload_bytes, base_ledger.upload_bytes);
    assert_eq!(ledger.download_bytes, base_ledger.download_bytes);
    assert_eq!(ledger.uploads, base_ledger.uploads);
    assert_eq!(ledger.downloads, base_ledger.downloads);
    assert!(ledger.recovery_bytes > 0);

    let stats = server.shutdown();
    // The truncated frame died inside the proxy, so the server never saw a
    // bad tag; the resumed connection replayed in-flight frames, which the
    // dedup cursor may bill as retransmissions — never as fresh uploads.
    assert!(stats.sessions.iter().all(|r| r.bad_frames == 0));
    assert!(stats.resumed >= 1);
}

#[test]
fn uniformly_delayed_link_completes_without_recovery() {
    let server = OffloadServer::bind("127.0.0.1:0", ServeConfig::default(), registry(1)).unwrap();
    let plan = ChaosPlan {
        delay_ms: 2,
        ..ChaosPlan::default()
    };
    let proxy = ChaosProxy::spawn(server.addr(), plan).unwrap();
    let (ledger, wire) = run_pagerank(&proxy.addr().to_string(), 1, 0, 0).unwrap();
    assert!(!wire.is_empty());
    assert_eq!(ledger.recovery_bytes, 0);
    assert_eq!(ledger.retransmit_bytes, 0);
    let stats = server.shutdown();
    assert_eq!(stats.accepted, 1);
    assert!(stats.sessions.iter().all(|r| r.dup_frames == 0));
}
