//! End-to-end remote-evaluation tests over real loopback TCP.
//!
//! The contract under test, from ISSUE 9:
//!
//! * **bit identity** — for all four workload circuits under both
//!   schemes, evaluating remotely (batched and unbatched) returns the
//!   exact ciphertext wire bytes the local compiled twin produces;
//! * **steady state** — a warm cache serves repeat traffic with *zero*
//!   recompilations and *zero* plaintext re-encodes, proven by counters;
//! * **eviction** — at capacity the LRU program is dropped, the server
//!   answers `NeedProgram`, and the client transparently re-uploads;
//! * **batching correctness** — requests coalesced across tenants into
//!   one kernel invocation stay per-tenant correct (each tenant's outputs
//!   match *its own* local reference) and per-tenant billed (each book
//!   ledger equals that client's own ledger, exactly);
//! * **drain** — draining mid-batch still delivers every scheduled
//!   result, and session records are persisted only after delivery.

use choco::remote::RemoteEvaluator;
use choco::transport::tcp::TcpOptions;
use choco_apps::circuits::{all_workloads, WorkloadCircuit};
use choco_apps::remote::{workload_params, RemoteWorkload};
use choco_he::params::SchemeType;
use choco_he::{Bfv, Ckks};
use choco_serve::{OffloadServer, ServeConfig, TenantRegistry};
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn tenant_seed(tenant: u64) -> String {
    format!("remote-eval tenant {tenant}")
}

fn registry(tenants: u64) -> TenantRegistry {
    let mut reg = TenantRegistry::new();
    for t in 1..=tenants {
        reg.register(t, tenant_seed(t).as_bytes());
    }
    reg
}

fn bind(config: ServeConfig, tenants: u64) -> (OffloadServer, String) {
    let server = OffloadServer::bind("127.0.0.1:0", config, registry(tenants)).unwrap();
    let addr = server.addr().to_string();
    (server, addr)
}

fn connect<S: choco::compiler::CompilerScheme>(
    addr: &str,
    tenant: u64,
    w: &RemoteWorkload<S>,
) -> RemoteEvaluator<S> {
    RemoteEvaluator::<S>::connect(
        addr,
        tenant_seed(tenant).as_bytes(),
        tenant,
        0,
        &w.params,
        &w.relin,
        &w.galois,
        &TcpOptions::default(),
    )
    .unwrap_or_else(|e| panic!("connect failed: {e}"))
}

fn wires<S: choco::compiler::CompilerScheme>(outs: &[S::Ciphertext]) -> Vec<Vec<u8>> {
    outs.iter().map(|ct| S::ct_to_wire(ct)).collect()
}

/// Drives one workload remotely — unbatched, then a pipelined batch of
/// three — and asserts every result is byte-identical to the local twin.
fn assert_workload_bit_identical<S: choco::compiler::CompilerScheme>(
    addr: &str,
    circuit: &WorkloadCircuit,
    scheme: SchemeType,
) {
    let params = workload_params(scheme).unwrap();
    let seed = format!("bit-identity {} {scheme:?}", circuit.name);
    let w = RemoteWorkload::<S>::prepare(circuit, &params, seed.as_bytes())
        .unwrap_or_else(|e| panic!("{}: prepare failed: {e}", circuit.name));
    let local = w.local_output_wires().unwrap();
    assert!(!local.is_empty(), "{}: no outputs", circuit.name);

    let mut client = connect::<S>(addr, 1, &w);
    let inputs = w.input_refs();

    // Unbatched (cold cache for this program).
    let remote = client
        .evaluate(&w.prepared, &inputs)
        .unwrap_or_else(|e| panic!("{}: remote evaluate failed: {e}", circuit.name));
    assert_eq!(
        wires::<S>(&remote),
        local,
        "{}: unbatched remote != local",
        circuit.name
    );

    // Pipelined batch of three (warm cache), all coalescible.
    let batch = [inputs.as_slice(), inputs.as_slice(), inputs.as_slice()];
    let results = client
        .evaluate_batch(&w.prepared, &batch)
        .unwrap_or_else(|e| panic!("{}: batch evaluate failed: {e}", circuit.name));
    assert_eq!(results.len(), 3);
    for (i, outs) in results.iter().enumerate() {
        assert_eq!(
            wires::<S>(outs),
            local,
            "{}: batched result {i} != local",
            circuit.name
        );
    }
}

#[test]
fn all_workloads_are_bit_identical_remote_vs_local_bfv() {
    let (server, addr) = bind(ServeConfig::default(), 1);
    for circuit in all_workloads() {
        assert_workload_bit_identical::<Bfv>(&addr, &circuit, SchemeType::Bfv);
    }
    let stats = server.shutdown();
    // Four programs, each compiled exactly once across 4 requests each.
    assert_eq!(stats.eval.cache.compiles, 4);
    assert_eq!(stats.eval.counters.requests, 16);
    assert_eq!(stats.eval.counters.errors, 0);
}

#[test]
fn all_workloads_are_bit_identical_remote_vs_local_ckks() {
    let (server, addr) = bind(ServeConfig::default(), 1);
    for circuit in all_workloads() {
        assert_workload_bit_identical::<Ckks>(&addr, &circuit, SchemeType::Ckks);
    }
    let stats = server.shutdown();
    assert_eq!(stats.eval.cache.compiles, 4);
    assert_eq!(stats.eval.counters.requests, 16);
    assert_eq!(stats.eval.counters.errors, 0);
}

#[test]
fn steady_state_traffic_does_zero_recompilation_and_zero_reencoding() {
    let (server, addr) = bind(ServeConfig::default(), 1);
    let circuits = all_workloads();
    let circuit = circuits.iter().find(|w| w.name == "pagerank").unwrap();
    let params = workload_params(SchemeType::Bfv).unwrap();
    let w = RemoteWorkload::<Bfv>::prepare(circuit, &params, b"steady state").unwrap();
    let mut client = connect::<Bfv>(&addr, 1, &w);
    let inputs = w.input_refs();

    // Cold: one compile, every constant encoded once (operand misses).
    client.evaluate(&w.prepared, &inputs).unwrap();
    let cold = server.stats().eval;
    assert_eq!(cold.cache.compiles, 1);
    assert!(
        cold.cache.operands.misses > 0,
        "cold run must encode operands: {cold:?}"
    );

    // Warm: same request again — zero new compiles, zero new encodes.
    client.evaluate(&w.prepared, &inputs).unwrap();
    let warm = server.stats().eval;
    assert_eq!(warm.cache.compiles, cold.cache.compiles, "recompiled");
    assert_eq!(
        warm.cache.operands.misses, cold.cache.operands.misses,
        "re-encoded a cached operand"
    );
    assert!(
        warm.cache.operands.hits > cold.cache.operands.hits,
        "warm run did not hit the operand cache"
    );
    assert!(warm.cache.programs.hits > cold.cache.programs.hits);
    server.shutdown();
}

#[test]
fn program_eviction_at_capacity_answers_need_program_and_recovers() {
    let config = ServeConfig {
        program_cache_capacity: 1,
        ..ServeConfig::default()
    };
    let (server, addr) = bind(config, 2);
    let circuits = all_workloads();
    let a_circuit = circuits.iter().find(|w| w.name == "pagerank").unwrap();
    let b_circuit = circuits.iter().find(|w| w.name == "dnn_conv").unwrap();
    let params = workload_params(SchemeType::Bfv).unwrap();
    let a = RemoteWorkload::<Bfv>::prepare(a_circuit, &params, b"evict a").unwrap();
    let b = RemoteWorkload::<Bfv>::prepare(b_circuit, &params, b"evict b").unwrap();
    let a_local = a.local_output_wires().unwrap();
    let b_local = b.local_output_wires().unwrap();

    // Two connections (each session's Galois keys cover its own
    // workload); the program cache is global, so tenant 2's program
    // evicts tenant 1's.
    let mut client_a = connect::<Bfv>(&addr, 1, &a);
    let mut client_b = connect::<Bfv>(&addr, 2, &b);
    let a_inputs = a.input_refs();
    let b_inputs = b.input_refs();

    // A compiles into the single slot; B evicts it; asking for A again
    // makes the server answer NeedProgram and the client re-upload.
    let got_a = client_a.evaluate(&a.prepared, &a_inputs).unwrap();
    let got_b = client_b.evaluate(&b.prepared, &b_inputs).unwrap();
    let got_a2 = client_a.evaluate(&a.prepared, &a_inputs).unwrap();
    assert_eq!(wires::<Bfv>(&got_a), a_local);
    assert_eq!(wires::<Bfv>(&got_b), b_local);
    assert_eq!(
        wires::<Bfv>(&got_a2),
        a_local,
        "post-eviction result differs"
    );

    let stats = server.shutdown();
    assert_eq!(
        stats.eval.cache.compiles, 3,
        "evicted program must recompile"
    );
    assert!(stats.eval.cache.programs.evictions >= 2);
    assert_eq!(stats.eval.counters.need_program, 1);
    assert_eq!(stats.eval.counters.errors, 0);
}

#[test]
fn coalesced_cross_tenant_batches_stay_per_tenant_correct_and_billed() {
    // A wide window so both tenants' pipelined requests land in one
    // scheduler dispatch.
    let config = ServeConfig {
        batch_window_ms: 100,
        ..ServeConfig::default()
    };
    let (server, addr) = bind(config, 2);
    let circuits = all_workloads();
    let circuit = circuits.iter().find(|w| w.name == "pagerank").unwrap();
    let params = workload_params(SchemeType::Bfv).unwrap();

    // Different seeds: each tenant has its own keys and its own inputs, so
    // any cross-request mixup inside a coalesced batch is a wrong answer.
    let handles: Vec<_> = [1u64, 2u64]
        .into_iter()
        .map(|tenant| {
            let addr = addr.clone();
            let circuit = circuit.clone();
            let params = params.clone();
            std::thread::spawn(move || {
                let seed = format!("tenant {tenant} inputs");
                let w = RemoteWorkload::<Bfv>::prepare(&circuit, &params, seed.as_bytes()).unwrap();
                let local = w.local_output_wires().unwrap();
                let mut client = connect::<Bfv>(&addr, tenant, &w);
                let inputs = w.input_refs();
                let batch = [inputs.as_slice(), inputs.as_slice()];
                let results = client.evaluate_batch(&w.prepared, &batch).unwrap();
                for outs in &results {
                    assert_eq!(
                        wires::<Bfv>(outs),
                        local,
                        "tenant {tenant}: batched result != own local reference"
                    );
                }
                *client.ledger()
            })
        })
        .collect();
    let ledgers: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("tenant thread panicked"))
        .collect();

    let stats = server.shutdown();
    // Billing under batching: each tenant's book entry equals that
    // client's own ledger — payload bytes both ways, nothing shared.
    for (tenant, ledger) in ledgers.iter().enumerate() {
        let tenant = tenant as u64 + 1;
        let book = stats
            .book
            .get(tenant)
            .unwrap_or_else(|| panic!("tenant {tenant} missing from book"));
        assert_eq!(
            book.upload_bytes, ledger.upload_bytes,
            "tenant {tenant} upload attribution"
        );
        assert_eq!(
            book.download_bytes, ledger.download_bytes,
            "tenant {tenant} download attribution"
        );
        assert_eq!(book.downloads, ledger.downloads);
    }
    // Both tenants sent identical-shape traffic but distinct ciphertexts:
    // identical byte totals, and the shared program compiled exactly once.
    assert_eq!(ledgers[0].upload_bytes, ledgers[1].upload_bytes);
    assert_eq!(stats.eval.cache.compiles, 1);
    assert_eq!(stats.eval.counters.errors, 0);
}

#[test]
fn pipelined_batch_coalesces_into_one_kernel_dispatch() {
    let config = ServeConfig {
        batch_window_ms: 150,
        ..ServeConfig::default()
    };
    let (server, addr) = bind(config, 1);
    let circuits = all_workloads();
    let circuit = circuits.iter().find(|w| w.name == "pagerank").unwrap();
    let params = workload_params(SchemeType::Bfv).unwrap();
    let w = RemoteWorkload::<Bfv>::prepare(circuit, &params, b"coalesce").unwrap();
    let local = w.local_output_wires().unwrap();
    let mut client = connect::<Bfv>(&addr, 1, &w);
    let inputs = w.input_refs();

    // Warm the program cache so the batch itself is pure evaluation.
    client.evaluate(&w.prepared, &inputs).unwrap();
    let batch = [
        inputs.as_slice(),
        inputs.as_slice(),
        inputs.as_slice(),
        inputs.as_slice(),
    ];
    let results = client.evaluate_batch(&w.prepared, &batch).unwrap();
    for outs in &results {
        assert_eq!(wires::<Bfv>(outs), local);
    }

    let stats = server.shutdown();
    assert!(
        stats.eval.sched.max_batch >= 2,
        "pipelined requests never coalesced: {:?}",
        stats.eval.sched
    );
    assert!(stats.eval.sched.coalesced >= 2);
}

#[test]
fn drain_mid_batch_delivers_results_before_persisting_records() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("choco-remote-eval-drain-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServeConfig {
        checkpoint_dir: Some(dir.clone()),
        batch_window_ms: 120,
        ..ServeConfig::default()
    };
    let (server, addr) = bind(config, 1);
    let circuits = all_workloads();
    let circuit = circuits.iter().find(|w| w.name == "pipeline").unwrap();
    let params = workload_params(SchemeType::Bfv).unwrap();
    let w = RemoteWorkload::<Bfv>::prepare(circuit, &params, b"drain").unwrap();
    let local = w.local_output_wires().unwrap();
    let mut client = connect::<Bfv>(&addr, 1, &w);
    let inputs = w.input_refs();

    // Compile the program first so the batch sits in the scheduler window
    // when the drain lands.
    client.evaluate(&w.prepared, &inputs).unwrap();

    let server_handle = std::thread::spawn(move || {
        // Let the client's batch reach the scheduler queue, then drain
        // while it is still inside the batching window.
        std::thread::sleep(Duration::from_millis(40));
        server.drain();
        server.shutdown()
    });

    let batch = [inputs.as_slice(), inputs.as_slice(), inputs.as_slice()];
    let start = Instant::now();
    let results = client
        .evaluate_batch(&w.prepared, &batch)
        .unwrap_or_else(|e| panic!("drain must flush scheduled batches, not drop them: {e}"));
    assert_eq!(results.len(), 3);
    for outs in &results {
        assert_eq!(
            wires::<Bfv>(outs),
            local,
            "mid-drain batch result differs from local"
        );
    }
    assert!(start.elapsed() < Duration::from_secs(10));

    let stats = server_handle.join().expect("server thread panicked");
    // The session record was persisted (after delivery), and the book
    // billed every response the client actually received.
    assert_eq!(stats.sessions.len(), 1);
    let persisted = std::fs::read_dir(&dir).map(|d| d.count()).unwrap_or(0);
    assert!(persisted >= 1, "no session record persisted to {dir:?}");
    let book = stats.book.get(1).expect("tenant 1 billed");
    let ledger = client.ledger();
    assert_eq!(book.download_bytes, ledger.download_bytes);
    assert_eq!(book.upload_bytes, ledger.upload_bytes);
    let _ = std::fs::remove_dir_all(&dir);
}
