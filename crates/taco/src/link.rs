//! Communication link model and end-to-end client cost composition (§5.7).
//!
//! The paper's reference implementation communicates over 10 mW Bluetooth
//! at 22 Mbps. End-to-end client time is compute (enc/dec + non-linear) plus
//! transfer time; energy follows from the platform and radio powers.

use crate::baseline::IMX6_POWER_W;

/// A half-duplex radio link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Throughput in bits per second.
    pub bits_per_s: f64,
    /// Radio power while transferring, watts.
    pub power_w: f64,
}

impl LinkModel {
    /// The paper's Bluetooth reference link: 22 Mbps at 10 mW.
    pub fn bluetooth() -> Self {
        LinkModel {
            bits_per_s: 22e6,
            power_w: 0.010,
        }
    }

    /// A Wi-Fi-class link for sensitivity studies (100 Mbps, 80 mW).
    pub fn wifi() -> Self {
        LinkModel {
            bits_per_s: 100e6,
            power_w: 0.080,
        }
    }

    /// Transfer time for `bytes`, seconds.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        bytes as f64 * 8.0 / self.bits_per_s
    }

    /// Transfer energy for `bytes`, joules.
    pub fn transfer_energy(&self, bytes: u64) -> f64 {
        self.power_w * self.transfer_time(bytes)
    }
}

/// End-to-end client cost of one offloaded inference/computation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClientCost {
    /// Active cryptographic compute time (enc + dec), seconds.
    pub crypto_s: f64,
    /// Plaintext non-linear compute time, seconds.
    pub nonlinear_s: f64,
    /// Link transfer time, seconds.
    pub comm_s: f64,
    /// Total energy (compute + radio), joules.
    pub energy_j: f64,
}

impl ClientCost {
    /// Total wall-clock time (compute and communication serialize on a
    /// single-radio IoT client).
    pub fn total_time(&self) -> f64 {
        self.crypto_s + self.nonlinear_s + self.comm_s
    }
}

/// Composes the end-to-end client cost for a workload that performs
/// `encryptions`/`decryptions` crypto ops of the given per-op times,
/// transfers `comm_bytes` over `link`, and spends `nonlinear_s` in
/// plaintext operations.
///
/// `crypto_energy_per_op` is `(enc_energy, dec_energy)`; for the software
/// baseline pass IMX6 platform energy, for CHOCO-TACO pass the accelerator
/// profile energies.
#[allow(clippy::too_many_arguments)]
pub fn compose_client_cost(
    encryptions: u64,
    decryptions: u64,
    enc_time_s: f64,
    dec_time_s: f64,
    enc_energy_j: f64,
    dec_energy_j: f64,
    nonlinear_s: f64,
    comm_bytes: u64,
    link: &LinkModel,
) -> ClientCost {
    let crypto_s = encryptions as f64 * enc_time_s + decryptions as f64 * dec_time_s;
    let comm_s = link.transfer_time(comm_bytes);
    let energy_j = encryptions as f64 * enc_energy_j
        + decryptions as f64 * dec_energy_j
        + nonlinear_s * IMX6_POWER_W
        + link.transfer_energy(comm_bytes);
    ClientCost {
        crypto_s,
        nonlinear_s,
        comm_s,
        energy_j,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bluetooth_transfer_times() {
        let bt = LinkModel::bluetooth();
        // 1 MiB at 22 Mbps ≈ 0.38 s.
        let t = bt.transfer_time(1 << 20);
        assert!((0.3..0.5).contains(&t), "transfer {t} s");
        assert!((bt.transfer_energy(1 << 20) - 0.01 * t).abs() < 1e-12);
    }

    #[test]
    fn wifi_is_faster_but_hungrier() {
        let bt = LinkModel::bluetooth();
        let wifi = LinkModel::wifi();
        let bytes = 10 << 20;
        assert!(wifi.transfer_time(bytes) < bt.transfer_time(bytes));
        assert!(wifi.power_w > bt.power_w);
    }

    #[test]
    fn composition_adds_up() {
        let link = LinkModel::bluetooth();
        let cost = compose_client_cost(10, 10, 1e-3, 2e-3, 1e-4, 2e-4, 0.05, 1 << 20, &link);
        assert!((cost.crypto_s - 0.03).abs() < 1e-12);
        assert!((cost.nonlinear_s - 0.05).abs() < 1e-12);
        assert!(cost.comm_s > 0.3);
        assert!(
            (cost.total_time() - (cost.crypto_s + cost.nonlinear_s + cost.comm_s)).abs() < 1e-12
        );
        assert!(cost.energy_j > 0.0);
    }

    #[test]
    fn communication_dominates_bluetooth_inference() {
        // §5.7: with Bluetooth, communication time dominates end-to-end.
        let link = LinkModel::bluetooth();
        let cost = compose_client_cost(
            14,
            14,
            0.66e-3,
            0.65e-3,
            0.12e-3,
            0.12e-3,
            0.01,
            22 << 20,
            &link,
        );
        assert!(cost.comm_s > 5.0 * (cost.crypto_s + cost.nonlinear_s));
    }
}
