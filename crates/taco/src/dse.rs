//! Design-space exploration (§4.4, Figure 7).
//!
//! Sweeps tens of thousands of accelerator configurations, evaluates each
//! for time / power / area / energy on one `(N, k)` encryption, extracts the
//! Pareto frontier, and applies the paper's operating-point selection rule:
//! cap power at 200 mW, then take the smallest design within 1% of the
//! optimal runtime.

use crate::config::AcceleratorConfig;
use crate::model::{encryption_profile, HwProfile};

/// One evaluated design point.
#[derive(Debug, Clone, Copy)]
pub struct DesignPoint {
    /// The configuration evaluated.
    pub config: AcceleratorConfig,
    /// Its profile for a single encryption.
    pub profile: HwProfile,
}

/// The sweep grid (matching the paper's scale: tens of thousands of
/// configurations).
pub fn sweep_grid() -> Vec<AcceleratorConfig> {
    let prng = [1usize, 2, 4, 8];
    let ntt = [2usize, 4, 8, 16, 32];
    let intt = [2usize, 4, 8, 16, 32];
    let dyadic = [2usize, 4, 8, 16];
    let add = [1usize, 2, 4, 8];
    let modsw = [1usize, 2, 4, 8];
    let encode = [2usize, 4, 8];
    let layers = [1usize, 3];
    let mut out = Vec::new();
    for &p in &prng {
        for &nt in &ntt {
            for &it in &intt {
                for &dy in &dyadic {
                    for &ad in &add {
                        for &ms in &modsw {
                            for &en in &encode {
                                for &l in &layers {
                                    out.push(AcceleratorConfig {
                                        prng_blocks: p,
                                        ntt_butterflies: nt,
                                        intt_butterflies: it,
                                        dyadic_pes: dy,
                                        add_pes: ad,
                                        modswitch_pes: ms,
                                        encode_pes: en,
                                        residue_layers: l,
                                        clock_mhz: 100,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Evaluates every configuration in the grid for one `(n, k)` encryption.
pub fn explore(n: usize, k: usize) -> Vec<DesignPoint> {
    sweep_grid()
        .into_iter()
        .map(|config| DesignPoint {
            config,
            profile: encryption_profile(&config, n, k),
        })
        .collect()
}

/// Extracts the 3-objective (time, power, area) Pareto frontier.
pub fn pareto_frontier(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let dominates = |a: &HwProfile, b: &HwProfile| {
        a.time_s <= b.time_s
            && a.power_w <= b.power_w
            && a.area_mm2 <= b.area_mm2
            && (a.time_s < b.time_s || a.power_w < b.power_w || a.area_mm2 < b.area_mm2)
    };
    points
        .iter()
        .filter(|p| !points.iter().any(|q| dominates(&q.profile, &p.profile)))
        .copied()
        .collect()
}

/// Applies the paper's selection rule: among designs with power at most
/// `power_cap_mw`, find the optimal runtime, then return the smallest-area
/// design within `slack` (e.g. 0.01) of it.
pub fn select_operating_point(
    points: &[DesignPoint],
    power_cap_mw: f64,
    slack: f64,
) -> Option<DesignPoint> {
    let feasible: Vec<&DesignPoint> = points
        .iter()
        .filter(|p| p.profile.power_w * 1e3 <= power_cap_mw)
        .collect();
    let best_time = feasible
        .iter()
        .map(|p| p.profile.time_s)
        .fold(f64::INFINITY, f64::min);
    feasible
        .into_iter()
        .filter(|p| p.profile.time_s <= best_time * (1.0 + slack))
        .min_by(|a, b| {
            a.profile
                .area_mm2
                .partial_cmp(&b.profile.area_mm2)
                .expect("areas are finite")
        })
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_paper_scale() {
        let g = sweep_grid();
        assert!(
            (20_000..60_000).contains(&g.len()),
            "grid size {} should be tens of thousands",
            g.len()
        );
    }

    #[test]
    fn frontier_is_nonempty_and_nondominated() {
        // Small sub-grid for test speed.
        let points: Vec<DesignPoint> = explore(8192, 3).into_iter().step_by(97).collect();
        let frontier = pareto_frontier(&points);
        assert!(!frontier.is_empty());
        for a in &frontier {
            for b in &frontier {
                let dominated = b.profile.time_s < a.profile.time_s
                    && b.profile.power_w < a.profile.power_w
                    && b.profile.area_mm2 < a.profile.area_mm2;
                assert!(!dominated, "frontier point dominated");
            }
        }
        assert!(frontier.len() < points.len());
    }

    #[test]
    fn selection_respects_power_cap() {
        let points: Vec<DesignPoint> = explore(8192, 3).into_iter().step_by(53).collect();
        let chosen = select_operating_point(&points, 200.0, 0.01).unwrap();
        assert!(chosen.profile.power_w * 1e3 <= 200.0);
        // The chosen design should be competitive with the global optimum.
        let feasible_best = points
            .iter()
            .filter(|p| p.profile.power_w * 1e3 <= 200.0)
            .map(|p| p.profile.time_s)
            .fold(f64::INFINITY, f64::min);
        assert!(chosen.profile.time_s <= feasible_best * 1.01);
    }

    #[test]
    fn tighter_power_cap_yields_slower_designs() {
        let points: Vec<DesignPoint> = explore(8192, 3).into_iter().step_by(53).collect();
        let loose = select_operating_point(&points, 300.0, 0.01).unwrap();
        let tight = select_operating_point(&points, 100.0, 0.01).unwrap();
        assert!(tight.profile.time_s >= loose.profile.time_s);
    }
}
