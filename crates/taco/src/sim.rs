//! Discrete-event simulation of the CHOCO-TACO encryption dataflow.
//!
//! The paper explores its design space with "a custom simulation
//! infrastructure \[that\] captures the effects of parallelism and
//! pipelining" (§4.4). This module is that simulator: the Fig. 5 dataflow
//! is expressed as a task DAG, each task bound to a hardware resource
//! (module) with a finite processing rate and a replica count (residue
//! layers). A list scheduler assigns start times respecting both data
//! dependencies and resource contention, yielding a cycle-accurate-ish
//! latency that cross-validates the closed-form model in [`crate::model`]
//! (see the consistency test at the bottom).

use crate::config::AcceleratorConfig;

/// Hardware resources (accelerator modules) tasks contend for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// BLAKE3 PRNG module.
    Prng,
    /// Forward NTT block.
    Ntt,
    /// Inverse NTT block.
    Intt,
    /// Dyadic (element-wise) product block.
    Dyadic,
    /// Polynomial addition blocks.
    Add,
    /// Modulus-switching module.
    ModSwitch,
    /// Encode/decode module.
    Encode,
}

/// One node of the dataflow DAG.
#[derive(Debug, Clone)]
pub struct Task {
    /// Human-readable label (shows up in the schedule).
    pub name: &'static str,
    /// Executing module.
    pub resource: Resource,
    /// Work units (butterflies, coefficients, or bytes — consistent with
    /// the resource's rate).
    pub work: f64,
    /// Indices of tasks that must finish first.
    pub deps: Vec<usize>,
}

/// A scheduled task instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scheduled {
    /// Start cycle.
    pub start: f64,
    /// Finish cycle.
    pub finish: f64,
}

/// The full schedule of a simulated operation.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Per-task start/finish times, aligned with the task list.
    pub tasks: Vec<Scheduled>,
    /// Total latency in cycles (max finish).
    pub makespan: f64,
}

fn rate(cfg: &AcceleratorConfig, r: Resource) -> f64 {
    match r {
        Resource::Prng => 8.0 * cfg.prng_blocks as f64, // bytes/cycle
        Resource::Ntt => cfg.ntt_butterflies as f64,    // butterflies/cycle
        Resource::Intt => cfg.intt_butterflies as f64,
        Resource::Dyadic => cfg.dyadic_pes as f64, // coefficients/cycle
        Resource::Add => cfg.add_pes as f64,
        Resource::ModSwitch => cfg.modswitch_pes as f64 / 2.0, // 2 ops/coeff
        Resource::Encode => cfg.encode_pes as f64,
    }
}

/// List-schedules a task DAG on the configuration's resources.
///
/// Each resource has `residue_layers` independent replicas; a task occupies
/// one replica for `work / rate` cycles. Tasks are scheduled in topological
/// (input) order: start = max(latest dependency finish, earliest replica
/// free time).
///
/// # Panics
///
/// Panics if a task depends on a later-indexed task (the list must be in
/// topological order).
pub fn schedule(cfg: &AcceleratorConfig, tasks: &[Task]) -> Schedule {
    use std::collections::HashMap;
    let replicas = cfg.residue_layers.max(1);
    let mut free: HashMap<Resource, Vec<f64>> = HashMap::new();
    let mut out: Vec<Scheduled> = Vec::with_capacity(tasks.len());
    for (i, t) in tasks.iter().enumerate() {
        let dep_ready = t
            .deps
            .iter()
            .map(|&d| {
                assert!(d < i, "task list must be topologically ordered");
                out[d].finish
            })
            .fold(0.0f64, f64::max);
        let slots = free
            .entry(t.resource)
            .or_insert_with(|| vec![0.0; replicas]);
        // Earliest-free replica.
        let (best, &earliest) = slots
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("at least one replica");
        let start = dep_ready.max(earliest);
        let finish = start + t.work / rate(cfg, t.resource);
        slots[best] = finish;
        out.push(Scheduled { start, finish });
    }
    let makespan = out.iter().map(|s| s.finish).fold(0.0, f64::max);
    Schedule {
        tasks: out,
        makespan,
    }
}

/// Builds the Fig. 5 encryption dataflow for `(n, k)` as a task DAG.
///
/// Structure per residue: `NTT(u)` (shared) → dyadic with `P1` → `INTT` →
/// `+e2` → mod-switch (c1 path), and the same against `P0` plus the message
/// encode/add (c0 path). PRNG tasks feed `u`, `e1`, `e2`.
pub fn encryption_dag(n: usize, k: usize) -> Vec<Task> {
    let nf = n as f64;
    let bf = nf / 2.0 * (nf).log2();
    // Tasks 0-3: the PRNG draws (u ternary at 1 B/coeff; e1/e2 at
    // 8 B/coeff, overlapping with NTT/dyadic work) and the message encode.
    let mut tasks = vec![
        Task {
            name: "prng:u",
            resource: Resource::Prng,
            work: nf,
            deps: vec![],
        },
        Task {
            name: "prng:e2",
            resource: Resource::Prng,
            work: 8.0 * nf,
            deps: vec![],
        },
        Task {
            name: "prng:e1",
            resource: Resource::Prng,
            work: 8.0 * nf,
            deps: vec![],
        },
        Task {
            name: "encode:m",
            resource: Resource::Encode,
            work: bf,
            deps: vec![],
        },
    ];

    for _residue in 0..k {
        let ntt_u = tasks.len();
        tasks.push(Task {
            name: "ntt:u",
            resource: Resource::Ntt,
            work: bf,
            deps: vec![0],
        });
        // c1 path.
        let dy1 = tasks.len();
        tasks.push(Task {
            name: "dyadic:c1",
            resource: Resource::Dyadic,
            work: nf,
            deps: vec![ntt_u],
        });
        let intt1 = tasks.len();
        tasks.push(Task {
            name: "intt:c1",
            resource: Resource::Intt,
            work: bf,
            deps: vec![dy1],
        });
        let add1 = tasks.len();
        tasks.push(Task {
            name: "add:e2",
            resource: Resource::Add,
            work: nf,
            deps: vec![intt1, 1],
        });
        tasks.push(Task {
            name: "modsw:c1",
            resource: Resource::ModSwitch,
            work: nf,
            deps: vec![add1],
        });
        // c0 path (reuses NTT(u)).
        let dy0 = tasks.len();
        tasks.push(Task {
            name: "dyadic:c0",
            resource: Resource::Dyadic,
            work: nf,
            deps: vec![ntt_u],
        });
        let intt0 = tasks.len();
        tasks.push(Task {
            name: "intt:c0",
            resource: Resource::Intt,
            work: bf,
            deps: vec![dy0],
        });
        let add0 = tasks.len();
        tasks.push(Task {
            name: "add:e1",
            resource: Resource::Add,
            work: nf,
            deps: vec![intt0, 2],
        });
        let msw0 = tasks.len();
        tasks.push(Task {
            name: "modsw:c0",
            resource: Resource::ModSwitch,
            work: nf,
            deps: vec![add0],
        });
        // message add into c0 (scaled residues of the encoded message).
        tasks.push(Task {
            name: "add:m",
            resource: Resource::Add,
            work: nf,
            deps: vec![msw0, 3],
        });
    }
    tasks
}

/// Simulated encryption latency in seconds.
pub fn simulate_encryption(cfg: &AcceleratorConfig, n: usize, k: usize) -> f64 {
    let dag = encryption_dag(n, k);
    schedule(cfg, &dag).makespan * cfg.cycle_s()
}

/// Builds the decryption dataflow (§4.6): `NTT(c1)` → dyadic with `s` →
/// `INTT` → `+c0` per residue, then a *serial* cross-residue base-conversion
/// chain (each residue's conversion depends on the previous one — the
/// structural reason decryption gains less from residue parallelism) and a
/// final decode.
pub fn decryption_dag(n: usize, k: usize) -> Vec<Task> {
    let nf = n as f64;
    let bf = nf / 2.0 * nf.log2();
    let mut tasks = Vec::new();
    let mut conv_deps: Vec<usize> = Vec::new();
    for _residue in 0..k {
        let ntt = tasks.len();
        tasks.push(Task {
            name: "ntt:c1",
            resource: Resource::Ntt,
            work: bf,
            deps: vec![],
        });
        let dy = tasks.len();
        tasks.push(Task {
            name: "dyadic:c1*s",
            resource: Resource::Dyadic,
            work: nf,
            deps: vec![ntt],
        });
        let intt = tasks.len();
        tasks.push(Task {
            name: "intt:c1*s",
            resource: Resource::Intt,
            work: bf,
            deps: vec![dy],
        });
        let add = tasks.len();
        tasks.push(Task {
            name: "add:c0",
            resource: Resource::Add,
            work: nf,
            deps: vec![intt],
        });
        conv_deps.push(add);
    }
    // Cross-residue base conversion: a serial chain through ModSwitch.
    let mut prev: Option<usize> = None;
    for &d in &conv_deps {
        let mut deps = vec![d];
        if let Some(p) = prev {
            deps.push(p);
        }
        let id = tasks.len();
        tasks.push(Task {
            name: "baseconv",
            resource: Resource::ModSwitch,
            work: nf,
            deps,
        });
        prev = Some(id);
    }
    // Decode: NTT over the plain modulus + reorder.
    tasks.push(Task {
        name: "decode",
        resource: Resource::Encode,
        work: bf + nf,
        deps: vec![prev.expect("k >= 1")],
    });
    tasks
}

/// Simulated decryption latency in seconds.
pub fn simulate_decryption(cfg: &AcceleratorConfig, n: usize, k: usize) -> f64 {
    let dag = decryption_dag(n, k);
    schedule(cfg, &dag).makespan * cfg.cycle_s()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::encryption_profile;

    #[test]
    fn schedule_respects_dependencies() {
        let cfg = AcceleratorConfig::paper_operating_point();
        let dag = encryption_dag(1024, 2);
        let sch = schedule(&cfg, &dag);
        for (i, t) in dag.iter().enumerate() {
            for &d in &t.deps {
                assert!(
                    sch.tasks[i].start >= sch.tasks[d].finish - 1e-9,
                    "task {i} starts before dep {d} finishes"
                );
            }
        }
        assert!(sch.makespan > 0.0);
    }

    #[test]
    fn schedule_respects_resource_contention() {
        // With a single residue layer, the two INTT tasks of one residue
        // must serialize on the single INTT block.
        let mut cfg = AcceleratorConfig::paper_operating_point();
        cfg.residue_layers = 1;
        let dag = encryption_dag(1024, 1);
        let sch = schedule(&cfg, &dag);
        let intts: Vec<usize> = dag
            .iter()
            .enumerate()
            .filter(|(_, t)| t.resource == Resource::Intt)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(intts.len(), 2);
        let (a, b) = (sch.tasks[intts[0]], sch.tasks[intts[1]]);
        let overlap = a.finish.min(b.finish) - a.start.max(b.start);
        assert!(overlap <= 1e-9, "INTT tasks overlap on one block");
    }

    #[test]
    fn residue_layers_parallelize_the_dag() {
        let mut one = AcceleratorConfig::paper_operating_point();
        one.residue_layers = 1;
        let mut three = one;
        three.residue_layers = 3;
        let t1 = simulate_encryption(&one, 8192, 3);
        let t3 = simulate_encryption(&three, 8192, 3);
        assert!(
            t3 < t1 * 0.6,
            "3 layers should be much faster: {t1} vs {t3}"
        );
    }

    #[test]
    fn simulation_validates_the_analytic_model() {
        // The closed-form model (with its memory-stall derating) should sit
        // within ~2× of the scheduled dataflow across shapes and configs —
        // the analytic model serializes module passes that the scheduler
        // overlaps, and the stall factor compensates memory contention the
        // scheduler doesn't see.
        for (n, k) in [(4096usize, 2usize), (8192, 3), (16384, 3)] {
            let cfg = AcceleratorConfig::paper_operating_point();
            let sim = simulate_encryption(&cfg, n, k);
            let analytic = encryption_profile(&cfg, n, k).time_s;
            let ratio = analytic / sim;
            assert!(
                (0.5..4.0).contains(&ratio),
                "({n},{k}): analytic {analytic} vs simulated {sim} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn more_parallelism_never_hurts_the_simulation() {
        let small = AcceleratorConfig::minimal();
        let big = AcceleratorConfig::paper_operating_point();
        assert!(simulate_encryption(&big, 8192, 3) < simulate_encryption(&small, 8192, 3));
    }

    #[test]
    #[should_panic(expected = "topologically ordered")]
    fn forward_dependencies_rejected() {
        let cfg = AcceleratorConfig::paper_operating_point();
        let tasks = vec![Task {
            name: "bad",
            resource: Resource::Add,
            work: 1.0,
            deps: vec![5],
        }];
        let _ = schedule(&cfg, &tasks);
    }
}
