//! Software and partial-hardware baselines (§2.2, §5.2 methodology).
//!
//! The paper's client baseline is SEAL (modified to use BLAKE3) running on
//! an NXP IMX6 evaluation kit: ARM Cortex-A7 @ 528 MHz, 269.5 mW average
//! power (NXP AN5345). We reproduce it as an analytic cost model calibrated
//! against the paper's published ratios: a `(8192,3)` software encryption
//! costs 417× the accelerator's 0.66 ms (≈275 ms) and a decryption 125× of
//! 0.65 ms (≈81 ms). Scaling follows `N·log N·k`, the dominant term of
//! every SEAL kernel, which reproduces Figure 8's "software scales with both
//! N and k" trend.

/// IMX6 clock frequency, Hz.
pub const IMX6_CLOCK_HZ: f64 = 528e6;
/// IMX6 average active power (Dhrystone characterization, NXP AN5345), W.
pub const IMX6_POWER_W: f64 = 0.2695;

/// Calibrated software cycles per `N·log2(N)·k` unit for encryption.
pub const SW_ENC_CYCLES_PER_UNIT: f64 = 454.0;
/// Calibrated software cycles per `N·log2(N)·k` unit for decryption.
pub const SW_DEC_CYCLES_PER_UNIT: f64 = 134.0;

/// Fraction of SEAL enc/decryption time spent in NTT + polynomial multiply
/// (software profiling, §2.2): the only part prior hardware accelerates.
pub const NTT_POLYMUL_FRACTION: f64 = 0.6;
/// Speedup HEAX-class hardware provides on the covered fraction.
pub const HEAX_COVERED_SPEEDUP: f64 = 100.0;
/// Speedup the BFV encryption FPGA (Mert et al.) provides on the covered
/// fraction.
pub const FPGA_COVERED_SPEEDUP: f64 = 40.0;

/// Effective MACs per cycle for TFLite on the Cortex-A7. The dual-issue
/// in-order A7 running fp32 TFLite kernels (the paper's local baseline)
/// sustains well under one MAC per cycle; 0.5 calibrates the Figure 12/14
/// local-inference bars to the paper's (VGG16 ≈ 1.2 s locally, making
/// accelerated offload ~2.2× faster on average and a net energy win for
/// VGG-class networks).
pub const TFLITE_MACS_PER_CYCLE: f64 = 0.5;

fn unit(n: usize, k: usize) -> f64 {
    n as f64 * (n as f64).log2() * k as f64
}

/// Software encryption time on the IMX6, seconds.
pub fn sw_encryption_time(n: usize, k: usize) -> f64 {
    SW_ENC_CYCLES_PER_UNIT * unit(n, k) / IMX6_CLOCK_HZ
}

/// Software decryption time on the IMX6, seconds.
pub fn sw_decryption_time(n: usize, k: usize) -> f64 {
    SW_DEC_CYCLES_PER_UNIT * unit(n, k) / IMX6_CLOCK_HZ
}

/// Software enc/decryption energy on the IMX6, joules.
pub fn sw_energy(time_s: f64) -> f64 {
    IMX6_POWER_W * time_s
}

/// Client enc/decryption time with HEAX-style partial acceleration
/// (NTT + polynomial multiply only): Amdahl over the covered fraction.
pub fn heax_accelerated_time(sw_time_s: f64) -> f64 {
    sw_time_s * (1.0 - NTT_POLYMUL_FRACTION + NTT_POLYMUL_FRACTION / HEAX_COVERED_SPEEDUP)
}

/// Client enc/decryption time with the BFV-FPGA's partial acceleration.
pub fn fpga_accelerated_time(sw_time_s: f64) -> f64 {
    sw_time_s * (1.0 - NTT_POLYMUL_FRACTION + NTT_POLYMUL_FRACTION / FPGA_COVERED_SPEEDUP)
}

/// Local TFLite inference time on the IMX6 for a network of `macs`
/// multiply-accumulates, seconds.
pub fn tflite_inference_time(macs: u64) -> f64 {
    macs as f64 / TFLITE_MACS_PER_CYCLE / IMX6_CLOCK_HZ
}

/// Local TFLite inference energy, joules.
pub fn tflite_inference_energy(macs: u64) -> f64 {
    IMX6_POWER_W * tflite_inference_time(macs)
}

/// Time for the client's plaintext non-linear work (activations,
/// quantization) per layer output of `elements` values; a few cycles per
/// element on the A7.
pub fn client_nonlinear_time(elements: u64) -> f64 {
    8.0 * elements as f64 / IMX6_CLOCK_HZ
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AcceleratorConfig;
    use crate::model::{decryption_profile, encryption_profile};

    #[test]
    fn software_encryption_matches_calibration_target() {
        // Paper: ≈275 ms at (8192, 3).
        let t = sw_encryption_time(8192, 3);
        assert!((0.2..0.35).contains(&t), "sw enc {t} s");
        let d = sw_decryption_time(8192, 3);
        assert!((0.06..0.11).contains(&d), "sw dec {d} s");
    }

    #[test]
    fn accelerator_speedup_is_hundreds_of_x() {
        // Paper: 417× encryption, 125× decryption at (8192, 3).
        let cfg = AcceleratorConfig::paper_operating_point();
        let enc_speedup = sw_encryption_time(8192, 3) / encryption_profile(&cfg, 8192, 3).time_s;
        let dec_speedup = sw_decryption_time(8192, 3) / decryption_profile(&cfg, 8192, 3).time_s;
        assert!(
            (150.0..900.0).contains(&enc_speedup),
            "enc speedup {enc_speedup}"
        );
        assert!(
            (50.0..300.0).contains(&dec_speedup),
            "dec speedup {dec_speedup}"
        );
        assert!(
            enc_speedup > dec_speedup,
            "encryption gains more than decryption (§4.6)"
        );
    }

    #[test]
    fn energy_savings_are_large() {
        // Paper: 603× energy savings for encryption at (8192,3).
        let cfg = AcceleratorConfig::paper_operating_point();
        let hw = encryption_profile(&cfg, 8192, 3);
        let sw_e = sw_energy(sw_encryption_time(8192, 3));
        let saving = sw_e / hw.energy_j;
        assert!((200.0..1500.0).contains(&saving), "energy saving {saving}×");
    }

    #[test]
    fn partial_acceleration_is_amdahl_limited() {
        let sw = sw_encryption_time(8192, 3);
        let heax = heax_accelerated_time(sw);
        let fpga = fpga_accelerated_time(sw);
        // Covered fraction 60% → best case 2.5×.
        assert!(heax > sw / 2.6, "heax too fast: {heax}");
        assert!(heax < sw, "heax must help");
        assert!(fpga >= heax, "heax covers more speedup than the fpga");
    }

    #[test]
    fn software_scales_with_k_but_hardware_does_not() {
        // Figure 8's key contrast.
        let cfg = AcceleratorConfig {
            residue_layers: 8,
            ..AcceleratorConfig::paper_operating_point()
        };
        let sw_ratio = sw_encryption_time(8192, 8) / sw_encryption_time(8192, 2);
        let hw_ratio =
            encryption_profile(&cfg, 8192, 8).time_s / encryption_profile(&cfg, 8192, 2).time_s;
        assert!(sw_ratio > 3.5, "sw k-scaling {sw_ratio}");
        assert!(hw_ratio < 1.6, "hw k-scaling {hw_ratio}");
    }

    #[test]
    fn tflite_times_are_plausible() {
        // VGG16: 313.26 M MACs → ≈1.2 s on the A7 at fp32.
        let t = tflite_inference_time(313_260_000);
        assert!((0.5..2.0).contains(&t), "tflite vgg {t} s");
        // LeNet-small: 0.24 M MACs → around a millisecond.
        assert!(tflite_inference_time(240_000) < 2e-3);
    }
}
