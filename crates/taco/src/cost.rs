//! 45 nm component cost tables (the reproduction's stand-in for Cadence
//! Genus synthesis and Destiny memory modeling).
//!
//! Per-PE area and power constants are representative of published 45 nm
//! modular-arithmetic datapaths and are *calibrated* so that the paper's
//! chosen operating point reproduces its published figures (19.3 mm²,
//! <200 mW, 0.1228 mJ / 0.66 ms per `(8192,3)` encryption at 100 MHz).
//! Everything that shapes the design space — which module dominates area,
//! how power scales with parallelism, where the Pareto frontier bends —
//! follows from the per-module accounting, not from the calibration point.

use crate::config::AcceleratorConfig;

/// Area of one NTT/INTT butterfly unit (modular multiplier + add/sub), mm².
pub const AREA_BUTTERFLY_MM2: f64 = 0.055;
/// Area of one modular-multiplier PE (dyadic, mod-switch, encode), mm².
pub const AREA_MODMUL_MM2: f64 = 0.045;
/// Area of one modular adder PE, mm².
pub const AREA_ADD_MM2: f64 = 0.008;
/// Area of one BLAKE3 PRNG block, mm².
pub const AREA_PRNG_MM2: f64 = 0.35;
/// Destiny-style SRAM area per KiB (aggressive wire technology), mm².
pub const AREA_SRAM_MM2_PER_KB: f64 = 0.010;

/// Dynamic power of one butterfly unit at 100 MHz, mW.
pub const POWER_BUTTERFLY_MW: f64 = 0.75;
/// Dynamic power of one modular-multiplier PE at 100 MHz, mW.
pub const POWER_MODMUL_MW: f64 = 0.60;
/// Dynamic power of one adder PE at 100 MHz, mW.
pub const POWER_ADD_MW: f64 = 0.10;
/// Dynamic power of one PRNG block at 100 MHz, mW.
pub const POWER_PRNG_MW: f64 = 3.0;
/// SRAM dynamic power per KiB at 100 MHz (read-energy optimized), mW.
pub const POWER_SRAM_MW_PER_KB: f64 = 0.042;
/// Leakage per mm², mW.
pub const LEAKAGE_MW_PER_MM2: f64 = 0.5;

/// Single-port SRAM contention / pipeline-fill derating applied to the
/// ideal throughput cycle count (the paper's 100 MHz clock is itself
/// limited by the energy-optimized memory access latency, §4.4).
pub const MEMORY_STALL_FACTOR: f64 = 1.65;

/// Total SRAM capacity in KiB for a configuration at ring degree `n`.
///
/// NTT and INTT working buffers plus twiddle ROM must hold a full
/// polynomial per residue layer (e.g. 64 KiB each at `N = 8192`, §4.2
/// "Memory"); streaming buffers between the other modules are sub-1 KiB.
pub fn sram_kb(cfg: &AcceleratorConfig, n: usize) -> f64 {
    let poly_kb = (n * 8) as f64 / 1024.0;
    let per_layer = 3.0 * poly_kb // NTT wb + INTT wb + twiddle ROM
        + 1.0                     // streaming buffers (sub-1KiB each)
        + 0.5; // context/key staging
    let encode_kb = 2.0 * poly_kb; // encode/decode module's NTT buffers
    cfg.residue_layers as f64 * per_layer + encode_kb
}

/// Total silicon area in mm².
pub fn area_mm2(cfg: &AcceleratorConfig, n: usize) -> f64 {
    let l = cfg.residue_layers as f64;
    let logic = l
        * (cfg.prng_blocks as f64 * AREA_PRNG_MM2
            + cfg.ntt_butterflies as f64 * AREA_BUTTERFLY_MM2
            + cfg.intt_butterflies as f64 * AREA_BUTTERFLY_MM2
            + cfg.dyadic_pes as f64 * AREA_MODMUL_MM2
            + cfg.add_pes as f64 * AREA_ADD_MM2
            + cfg.modswitch_pes as f64 * AREA_MODMUL_MM2
            + cfg.encode_pes as f64 * AREA_MODMUL_MM2);
    logic + sram_kb(cfg, n) * AREA_SRAM_MM2_PER_KB
}

/// Total power (dynamic at the configured clock + leakage) in mW.
pub fn power_mw(cfg: &AcceleratorConfig, n: usize) -> f64 {
    let l = cfg.residue_layers as f64;
    let clock_scale = cfg.clock_mhz as f64 / 100.0;
    let dynamic = l
        * (cfg.prng_blocks as f64 * POWER_PRNG_MW
            + cfg.ntt_butterflies as f64 * POWER_BUTTERFLY_MW
            + cfg.intt_butterflies as f64 * POWER_BUTTERFLY_MW
            + cfg.dyadic_pes as f64 * POWER_MODMUL_MW
            + cfg.add_pes as f64 * POWER_ADD_MW
            + cfg.modswitch_pes as f64 * POWER_MODMUL_MW
            + cfg.encode_pes as f64 * POWER_MODMUL_MW)
        * clock_scale
        + sram_kb(cfg, n) * POWER_SRAM_MW_PER_KB * clock_scale;
    dynamic + area_mm2(cfg, n) * LEAKAGE_MW_PER_MM2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_point_lands_near_published_area_and_power() {
        let cfg = AcceleratorConfig::paper_operating_point();
        let a = area_mm2(&cfg, 8192);
        let p = power_mw(&cfg, 8192);
        assert!((12.0..25.0).contains(&a), "area {a} mm2");
        assert!(p <= 200.0, "power {p} mW exceeds the 200 mW envelope");
        assert!(p >= 100.0, "power {p} mW suspiciously low");
    }

    #[test]
    fn area_grows_with_parallelism_and_degree() {
        let small = AcceleratorConfig::minimal();
        let big = AcceleratorConfig::paper_operating_point();
        assert!(area_mm2(&big, 8192) > area_mm2(&small, 8192));
        assert!(area_mm2(&big, 32768) > area_mm2(&big, 8192));
    }

    #[test]
    fn power_scales_with_clock() {
        let mut cfg = AcceleratorConfig::paper_operating_point();
        let base = power_mw(&cfg, 8192);
        cfg.clock_mhz = 200;
        assert!(power_mw(&cfg, 8192) > 1.5 * base - LEAKAGE_MW_PER_MM2 * 25.0);
    }

    #[test]
    fn sram_dominated_by_working_buffers() {
        let cfg = AcceleratorConfig::paper_operating_point();
        let kb = sram_kb(&cfg, 8192);
        // 3 layers × (3×64 KiB + small) + 128 KiB ≈ 710 KiB
        assert!((500.0..900.0).contains(&kb), "sram {kb} KiB");
    }
}
