//! Timing/energy model of the Fig. 5 encryption dataflow and its decryption
//! counterpart (§4.3, §4.6).

use crate::config::AcceleratorConfig;
use crate::cost::{area_mm2, power_mw, MEMORY_STALL_FACTOR};

/// Modeled time, energy, power, and area for one operation on one
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwProfile {
    /// Latency of one operation, seconds.
    pub time_s: f64,
    /// Energy of one operation, joules.
    pub energy_j: f64,
    /// Average power, watts.
    pub power_w: f64,
    /// Silicon area, mm².
    pub area_mm2: f64,
}

fn log2n(n: usize) -> f64 {
    (n as f64).log2()
}

/// Ideal (un-stalled) cycle count for one BFV/CKKS encryption at `(n, k)`.
///
/// Work items follow Figure 5: sample `u`, `e1`, `e2`; NTT `u` per residue;
/// two dyadic passes against the public keys; two INTTs; error additions;
/// modulus switching to `k − 1` residues; message encode + final add.
/// Residue layers process RNS rows in parallel; a configuration with fewer
/// layers than residues serializes in `ceil(k / layers)` waves.
pub fn encryption_cycles(cfg: &AcceleratorConfig, n: usize, k: usize) -> f64 {
    let nf = n as f64;
    let bf_per_ntt = nf / 2.0 * log2n(n);
    let waves = (k as f64 / cfg.residue_layers as f64).ceil();
    let waves_data = ((k.max(2) - 1) as f64 / cfg.residue_layers as f64).ceil();

    // PRNG: u (1 B/coeff ternary) + e1, e2 (8 B/coeff each) = 17 B/coeff.
    let prng = 17.0 * nf / (8.0 * cfg.prng_blocks as f64);
    // NTT of u, once per residue (shared by the c0 and c1 paths).
    let ntt = waves * bf_per_ntt / cfg.ntt_butterflies as f64;
    // Dyadic products against P1 then P0.
    let dyadic = 2.0 * waves * nf / cfg.dyadic_pes as f64;
    // INTT back for each ciphertext component.
    let intt = 2.0 * waves * bf_per_ntt / cfg.intt_butterflies as f64;
    // Error additions (e1, e2) and the final message addition.
    let add = 3.0 * waves * nf / cfg.add_pes as f64;
    // Modulus switching both components down to k−1 residues
    // (multiply + reduce ≈ 2 ops per coefficient).
    let modswitch = 2.0 * 2.0 * waves_data * nf / cfg.modswitch_pes as f64;
    // Message encode: small NTT + per-residue scaling.
    let encode = (bf_per_ntt + (k.max(2) - 1) as f64 * nf) / cfg.encode_pes as f64;

    prng + ntt + dyadic + intt + add + modswitch + encode
}

/// Ideal cycle count for one decryption at `(n, k)`.
///
/// Decryption processes a single ciphertext polynomial product plus base
/// conversion and decode; base conversion interacts across residues, which
/// precludes residue-layer parallelism (§4.6 reports the resulting smaller
/// speedup).
pub fn decryption_cycles(cfg: &AcceleratorConfig, n: usize, k: usize) -> f64 {
    let nf = n as f64;
    let bf_per_ntt = nf / 2.0 * log2n(n);
    let kf = k as f64;
    let ntt = kf * bf_per_ntt / cfg.ntt_butterflies as f64;
    let dyadic = kf * nf / cfg.dyadic_pes as f64;
    let intt = kf * bf_per_ntt / cfg.intt_butterflies as f64;
    let add = kf * nf / cfg.add_pes as f64;
    // Fast base conversion + error correction: cross-residue, serial.
    let base_conv = 2.0 * kf * nf / cfg.modswitch_pes as f64;
    // Decode: NTT over the plain modulus + plain-mod reduction.
    let decode = (bf_per_ntt + nf) / cfg.encode_pes as f64;
    ntt + dyadic + intt + add + base_conv + decode
}

/// Full profile of one hardware-accelerated encryption.
pub fn encryption_profile(cfg: &AcceleratorConfig, n: usize, k: usize) -> HwProfile {
    profile(cfg, n, encryption_cycles(cfg, n, k))
}

/// Full profile of one hardware-accelerated decryption.
pub fn decryption_profile(cfg: &AcceleratorConfig, n: usize, k: usize) -> HwProfile {
    profile(cfg, n, decryption_cycles(cfg, n, k))
}

fn profile(cfg: &AcceleratorConfig, n: usize, ideal_cycles: f64) -> HwProfile {
    let cycles = ideal_cycles * MEMORY_STALL_FACTOR;
    let time_s = cycles * cfg.cycle_s();
    let power_w = power_mw(cfg, n) / 1e3;
    HwProfile {
        time_s,
        energy_j: power_w * time_s,
        power_w,
        area_mm2: area_mm2(cfg, n),
    }
}

/// Fraction of CKKS encrypt+encode time the BFV datapath covers with the
/// extra routing of §4.7 (the remainder is complex-conjugate processing
/// left in software).
pub const CKKS_ENC_COVERAGE: f64 = 0.95;
/// Fraction of CKKS decrypt+decode time covered.
pub const CKKS_DEC_COVERAGE: f64 = 0.56;

/// CKKS encrypt+encode time with CHOCO-TACO support (§4.7): the covered
/// 95% runs at the BFV datapath's speedup; the conjugate-processing tail
/// stays at software speed.
pub fn ckks_encryption_time_hw(cfg: &AcceleratorConfig, n: usize, k: usize, sw_time_s: f64) -> f64 {
    let bfv_speedup = sw_time_s.max(f64::MIN_POSITIVE) / encryption_profile(cfg, n, k).time_s;
    sw_time_s * (CKKS_ENC_COVERAGE / bfv_speedup + (1.0 - CKKS_ENC_COVERAGE))
}

/// CKKS decrypt+decode time with CHOCO-TACO support (§4.7).
pub fn ckks_decryption_time_hw(cfg: &AcceleratorConfig, n: usize, k: usize, sw_time_s: f64) -> f64 {
    let bfv_speedup = sw_time_s.max(f64::MIN_POSITIVE) / decryption_profile(cfg, n, k).time_s;
    sw_time_s * (CKKS_DEC_COVERAGE / bfv_speedup + (1.0 - CKKS_DEC_COVERAGE))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ckks_coverage_model_matches_paper_ratios() {
        // Paper §4.7: encrypt+encode 310 ms → 18 ms (17×); decrypt+decode
        // 37 ms → 16 ms (2.3×) on the IMX6 at (8192, 3).
        let cfg = AcceleratorConfig::paper_operating_point();
        let enc = ckks_encryption_time_hw(&cfg, 8192, 3, 0.310);
        let dec = ckks_decryption_time_hw(&cfg, 8192, 3, 0.037);
        let enc_speedup = 0.310 / enc;
        let dec_speedup = 0.037 / dec;
        assert!(
            (10.0..25.0).contains(&enc_speedup),
            "enc speedup {enc_speedup}"
        );
        assert!(
            (1.5..3.5).contains(&dec_speedup),
            "dec speedup {dec_speedup}"
        );
        // Amdahl: the software tail bounds the gain.
        assert!(enc > 0.310 * (1.0 - CKKS_ENC_COVERAGE));
    }

    #[test]
    fn paper_point_encryption_matches_published_numbers() {
        let cfg = AcceleratorConfig::paper_operating_point();
        let p = encryption_profile(&cfg, 8192, 3);
        // Paper: 0.66 ms and 0.1228 mJ. Accept ±35%.
        assert!(
            (0.43e-3..0.9e-3).contains(&p.time_s),
            "encryption time {} s",
            p.time_s
        );
        assert!(
            (0.08e-3..0.17e-3).contains(&p.energy_j),
            "encryption energy {} J",
            p.energy_j
        );
    }

    #[test]
    fn paper_point_decryption_close_to_published() {
        let cfg = AcceleratorConfig::paper_operating_point();
        let p = decryption_profile(&cfg, 8192, 3);
        // Paper: 0.65 ms.
        assert!(
            (0.4e-3..1.1e-3).contains(&p.time_s),
            "decryption time {} s",
            p.time_s
        );
    }

    #[test]
    fn hw_time_scales_with_n_but_not_k_when_layers_match() {
        // §4.5: with layers = k, encryption time scales with N only.
        let mut cfg = AcceleratorConfig::paper_operating_point();
        cfg.residue_layers = 4;
        let t_k2 = encryption_profile(&cfg, 8192, 2).time_s;
        let t_k4 = encryption_profile(&cfg, 8192, 4).time_s;
        // k only affects mod-switch/encode lightly: within 40%.
        assert!(t_k4 < 1.4 * t_k2, "k scaling {t_k2} → {t_k4}");
        let t_n2 = encryption_profile(&cfg, 16384, 2).time_s;
        assert!(t_n2 > 1.7 * t_k2, "N scaling {t_k2} → {t_n2}");
    }

    #[test]
    fn more_parallelism_is_never_slower() {
        let small = AcceleratorConfig::minimal();
        let big = AcceleratorConfig::paper_operating_point();
        assert!(
            encryption_cycles(&big, 8192, 3) < encryption_cycles(&small, 8192, 3),
            "parallel config must be faster"
        );
        assert!(decryption_cycles(&big, 8192, 3) < decryption_cycles(&small, 8192, 3));
    }

    #[test]
    fn decryption_benefits_less_from_layers() {
        // §4.6: decryption's cross-residue base conversion is serial.
        let mut one = AcceleratorConfig::paper_operating_point();
        one.residue_layers = 1;
        let mut three = one;
        three.residue_layers = 3;
        let enc_gain = encryption_cycles(&one, 8192, 3) / encryption_cycles(&three, 8192, 3);
        let dec_gain = decryption_cycles(&one, 8192, 3) / decryption_cycles(&three, 8192, 3);
        assert!(enc_gain > dec_gain, "enc {enc_gain} vs dec {dec_gain}");
    }
}
