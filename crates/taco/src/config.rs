//! Accelerator configurations: the parallelism knobs of Figure 6.

/// Processing-element counts per module plus global settings.
///
/// Each field corresponds to a replicated functional block of Figure 6.
/// "Layers" replicate the multiply/add/mod-switch pipeline once per RNS
/// residue so residues are processed in parallel (§4.2 "Parallelism").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AcceleratorConfig {
    /// BLAKE3 PRNG blocks (each produces 8 bytes/cycle, pipelined).
    pub prng_blocks: usize,
    /// Butterfly units in the NTT block.
    pub ntt_butterflies: usize,
    /// Butterfly units in the INTT block.
    pub intt_butterflies: usize,
    /// Modular multipliers in the dyadic-product block.
    pub dyadic_pes: usize,
    /// Modular adders in the polynomial-addition blocks.
    pub add_pes: usize,
    /// Modular multiply-reduce units in the modulus-switching block.
    pub modswitch_pes: usize,
    /// PEs in the encode/decode module (small NTT + scaling).
    pub encode_pes: usize,
    /// Replicated RNS residue layers (1 ≤ layers ≤ k).
    pub residue_layers: usize,
    /// Clock frequency in MHz (paper: 100 MHz, limited by SRAM latency).
    pub clock_mhz: u32,
}

impl AcceleratorConfig {
    /// The operating point §4.4 selects: ≤200 mW, smallest area within 1%
    /// of optimal runtime; 19.3 mm², 0.66 ms / 0.1228 mJ per encryption at
    /// `(N, k) = (8192, 3)`.
    pub fn paper_operating_point() -> Self {
        AcceleratorConfig {
            prng_blocks: 4,
            ntt_butterflies: 16,
            intt_butterflies: 16,
            dyadic_pes: 8,
            add_pes: 4,
            modswitch_pes: 4,
            encode_pes: 8,
            residue_layers: 3,
            clock_mhz: 100,
        }
    }

    /// A deliberately small single-lane configuration (DSE lower corner).
    pub fn minimal() -> Self {
        AcceleratorConfig {
            prng_blocks: 1,
            ntt_butterflies: 1,
            intt_butterflies: 1,
            dyadic_pes: 1,
            add_pes: 1,
            modswitch_pes: 1,
            encode_pes: 1,
            residue_layers: 1,
            clock_mhz: 100,
        }
    }

    /// Total processing elements (used by the cost model).
    pub fn total_pes(&self) -> usize {
        (self.prng_blocks * 8 // a PRNG block is ~8 PE-equivalents of logic
            + self.ntt_butterflies
            + self.intt_butterflies
            + self.dyadic_pes
            + self.add_pes
            + self.modswitch_pes
            + self.encode_pes)
            * self.residue_layers.max(1)
    }

    /// Cycle time in seconds.
    pub fn cycle_s(&self) -> f64 {
        1.0 / (self.clock_mhz as f64 * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_point_is_within_sane_bounds() {
        let c = AcceleratorConfig::paper_operating_point();
        assert_eq!(c.clock_mhz, 100);
        assert!(c.residue_layers >= 1);
        assert!(c.total_pes() > 0);
    }

    #[test]
    fn minimal_has_fewest_pes() {
        assert!(
            AcceleratorConfig::minimal().total_pes()
                < AcceleratorConfig::paper_operating_point().total_pes()
        );
    }

    #[test]
    fn cycle_time_matches_clock() {
        let c = AcceleratorConfig::paper_operating_point();
        assert!((c.cycle_s() - 1e-8).abs() < 1e-15);
    }
}
