//! CHOCO-TACO: the client-side HE encryption/decryption accelerator (§4).
//!
//! The paper implements the accelerator in RTL, synthesizes it with Cadence
//! Genus at 45 nm, and models memories with Destiny. This crate reproduces
//! that flow as a first-principles *analytical* model:
//!
//! * [`config`] — an accelerator configuration: processing-element counts
//!   per module (PRNG, NTT, INTT, dyadic product, polynomial add, modulus
//!   switching, encode) and the number of replicated RNS residue layers.
//! * [`cost`] — 45 nm component cost tables (area/power per PE, Destiny-like
//!   SRAM model). Constants are calibrated so the paper's chosen operating
//!   point lands at its published numbers (19.3 mm², ≤200 mW, 0.66 ms,
//!   0.1228 mJ for one `N=8192, k=3` encryption at 100 MHz); the *relative*
//!   design-space structure comes from the work accounting, not the
//!   calibration.
//! * [`model`] — work accounting per the Fig. 5 dataflow and a critical-path
//!   timing model for encryption and decryption.
//! * [`dse`] — the design-space sweep of §4.4 (tens of thousands of
//!   configurations), Pareto-frontier extraction, and the paper's selection
//!   rule.
//! * [`baseline`] — software cost models: SEAL-style encryption on the IMX6
//!   (ARM Cortex-A7 @528 MHz), TFLite local inference, and the
//!   partial-acceleration estimates for HEAX and the BFV-FPGA used in
//!   Figures 2 and 12.
//! * [`link`] — the Bluetooth link model (22 Mbps, 10 mW) and end-to-end
//!   client time/energy composition of Figure 14.
//!
//! # Example
//!
//! ```
//! use choco_taco::config::AcceleratorConfig;
//! use choco_taco::model::encryption_profile;
//!
//! let cfg = AcceleratorConfig::paper_operating_point();
//! let p = encryption_profile(&cfg, 8192, 3);
//! assert!(p.time_s < 1e-3, "one encryption should take well under 1 ms");
//! ```

#![forbid(unsafe_code)]
pub mod baseline;
pub mod config;
pub mod cost;
pub mod dse;
pub mod link;
pub mod model;
pub mod sim;

pub use config::AcceleratorConfig;
pub use model::HwProfile;
