//! Crash-point chaos sweep: kill → checkpoint-resume → bit-identical.
//!
//! For every resumable workload, this harness first runs the workload
//! uninterrupted and records (a) the serialized final result ciphertext
//! and (b) the communication ledger. It then replays the workload once per
//! crash point — the first and last occurrence of every session operation
//! the baseline performed (upload, download, refresh, compute) — arming a
//! deterministic [`CrashPlan`] each time. When the simulated crash fires,
//! the harness rebuilds the session from the last durable checkpoint with
//! [`Session::resume`], restores the workload driver from the progress
//! blob the checkpoint carried, runs its recovery hook, and continues.
//!
//! The acceptance bar, per crash point:
//!
//! * the final result ciphertext is **bit-identical** to the uninterrupted
//!   run's (the client RNG and all payloads replay exactly);
//! * every *primary* ledger line (upload/download bytes and counts,
//!   rounds, refresh rounds) matches the uninterrupted run — recovery
//!   traffic appears only in `recovery_bytes` (and, on faulty links,
//!   `retransmit_bytes`);
//! * the uninterrupted run bills zero recovery bytes, every crashed run
//!   bills more than zero.

use choco::protocol::CommLedger;
use choco::transport::{
    Channel, CrashOp, CrashPlan, DirectChannel, FaultPlan, FaultyChannel, RetryPolicy, Session,
    TransportError,
};
use choco_apps::distance::{distance_rotation_steps, PackingVariant};
use choco_apps::pagerank::{pagerank_rotation_steps, Graph};
use choco_apps::pipeline::{all_rotation_steps, seeded_weights, LenetLikeSpec};
use choco_apps::resumable::{
    ResumableConvLayer, ResumableKmeans, ResumablePagerank, ResumablePipeline, ResumableWorkload,
};
use choco_he::params::HeParams;
use choco_he::{Bfv, Ckks, HeScheme};

const OPS: [CrashOp; 4] = [
    CrashOp::Upload,
    CrashOp::Download,
    CrashOp::Refresh,
    CrashOp::Compute,
];

fn assert_primary_lines_match(label: &str, base: &CommLedger, got: &CommLedger) {
    assert_eq!(got.upload_bytes, base.upload_bytes, "{label}: upload_bytes");
    assert_eq!(
        got.download_bytes, base.download_bytes,
        "{label}: download_bytes"
    );
    assert_eq!(got.uploads, base.uploads, "{label}: uploads");
    assert_eq!(got.downloads, base.downloads, "{label}: downloads");
    assert_eq!(got.rounds, base.rounds, "{label}: rounds");
    assert_eq!(
        got.refresh_rounds, base.refresh_rounds,
        "{label}: refresh_rounds"
    );
}

/// Runs one workload through the full kill → resume → compare sweep.
///
/// `make_session` builds the session a fresh run starts from (the same
/// construction for baseline and crashed runs); `resume_channel` builds
/// one fresh post-crash channel per direction; `restore` rebuilds the
/// workload driver from a checkpointed progress blob; `recover` is the
/// workload's post-resume hook (re-upload of server-resident state).
#[allow(clippy::too_many_arguments)]
fn sweep<S, C, W>(
    label: &str,
    make_session: impl Fn() -> Session<S, C>,
    resume_channel: impl Fn(&'static str) -> C,
    make_workload: impl Fn() -> W,
    restore: impl Fn(&[u8]) -> Result<W, TransportError>,
    mut step: impl FnMut(&mut W, &mut Session<S, C>) -> Result<(), TransportError>,
    mut recover: impl FnMut(&mut W, &mut Session<S, C>) -> Result<(), TransportError>,
) where
    S: HeScheme,
    C: Channel,
    W: ResumableWorkload,
{
    // Uninterrupted baseline.
    let mut session = make_session();
    let mut w = make_workload();
    while !w.is_done() {
        step(&mut w, &mut session).unwrap_or_else(|e| panic!("{label}: baseline step: {e}"));
    }
    let base_wire = w.final_ct_wire().to_vec();
    assert!(
        !base_wire.is_empty(),
        "{label}: baseline produced no result ciphertext"
    );
    let base_ledger = *session.ledger();
    assert_eq!(
        base_ledger.recovery_bytes, 0,
        "{label}: uninterrupted run billed recovery bytes"
    );
    let counts: Vec<(CrashOp, u32)> = OPS
        .iter()
        .map(|&op| (op, session.op_count(op)))
        .filter(|&(_, c)| c > 0)
        .collect();
    assert!(
        !counts.is_empty(),
        "{label}: baseline performed no session ops"
    );

    let mut exercised = 0u32;
    for &(op, count) in &counts {
        let mut nths = vec![1];
        if count > 1 {
            nths.push(count);
        }
        for nth in nths {
            let point = format!("{label} {op:?} #{nth}/{count}");
            let mut session = make_session();
            session.arm_crash(CrashPlan { op, nth });
            let mut w = make_workload();
            let mut ckpt = session.checkpoint(&w.progress());
            let mut crashes = 0u32;
            loop {
                match step(&mut w, &mut session) {
                    Ok(()) => {
                        if w.is_done() {
                            break;
                        }
                        ckpt = session.checkpoint(&w.progress());
                    }
                    Err(TransportError::Crashed { .. }) => {
                        crashes += 1;
                        assert_eq!(crashes, 1, "{point}: crash fired more than once");
                        let (resumed, progress) =
                            Session::resume(&ckpt, resume_channel("up"), resume_channel("down"))
                                .unwrap_or_else(|e| panic!("{point}: resume: {e}"));
                        session = resumed;
                        w = restore(&progress).unwrap_or_else(|e| panic!("{point}: restore: {e}"));
                        recover(&mut w, &mut session)
                            .unwrap_or_else(|e| panic!("{point}: recover: {e}"));
                    }
                    Err(e) => panic!("{point}: unexpected error: {e}"),
                }
            }
            assert_eq!(crashes, 1, "{point}: armed crash never fired");
            assert_eq!(
                w.final_ct_wire(),
                &base_wire[..],
                "{point}: final ciphertext differs from the uninterrupted run"
            );
            assert_primary_lines_match(&point, &base_ledger, session.ledger());
            assert!(
                session.ledger().recovery_bytes > 0,
                "{point}: crashed run billed no recovery bytes"
            );
            exercised += 1;
        }
    }
    assert!(exercised > 0, "{label}: no crash point exercised");
}

fn chaos_graph() -> Graph {
    Graph::from_adjacency(&[vec![1, 2], vec![2], vec![0], vec![0, 2]])
}

fn pagerank_sweep_over<S: HeScheme>(label: &str, params: &HeParams, burst: u32, scale_bits: u32) {
    let g = chaos_graph();
    let steps = pagerank_rotation_steps(g.len());
    sweep(
        label,
        || Session::<S>::direct(params, b"chaos-pagerank", &steps).unwrap(),
        |_| Box::new(DirectChannel::new()) as Box<dyn Channel>,
        || ResumablePagerank::<S>::new(&g, 0.85, 4, burst, scale_bits).unwrap(),
        |progress| ResumablePagerank::<S>::restore(&g, 0.85, 4, burst, scale_bits, progress),
        |w, s| w.step(s),
        |_, _| Ok(()),
    );
}

#[test]
fn chaos_pagerank_bfv() {
    let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 24).unwrap();
    pagerank_sweep_over::<Bfv>("pagerank/bfv", &params, 2, 10);
}

#[test]
fn chaos_pagerank_ckks() {
    let params = HeParams::ckks_insecure(1024, &[45, 45, 45, 46], 38).unwrap();
    pagerank_sweep_over::<Ckks>("pagerank/ckks", &params, 1, 0);
}

/// PageRank over lossy links: drops, duplicates, and latency on both
/// directions, for the baseline, the crashed runs, *and* the fresh
/// channels each resume reconnects over. Primary ledger lines must still
/// match exactly; only `retransmit_bytes` (fault-RNG draws shift across a
/// reconnect) and `recovery_bytes` may differ.
#[test]
fn chaos_pagerank_bfv_over_faulty_links() {
    let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 24).unwrap();
    let g = chaos_graph();
    let steps = pagerank_rotation_steps(g.len());
    let plan = FaultPlan::default()
        .with_drop_rate(0.15)
        .with_duplicate_rate(0.2)
        .with_max_latency_ms(5);
    let policy = RetryPolicy {
        max_attempts: 16,
        base_backoff_ms: 1,
        max_backoff_ms: 64,
        round_timeout_ms: 1_000_000,
    };
    sweep(
        "pagerank/bfv/faulty",
        || {
            Session::<Bfv, FaultyChannel>::over(
                &params,
                b"chaos-pagerank",
                &steps,
                FaultyChannel::new(b"chaos-up", plan),
                FaultyChannel::new(b"chaos-down", plan),
                policy,
            )
            .unwrap()
        },
        |dir| FaultyChannel::new(dir.as_bytes(), plan),
        || ResumablePagerank::<Bfv>::new(&g, 0.85, 4, 2, 10).unwrap(),
        |progress| ResumablePagerank::<Bfv>::restore(&g, 0.85, 4, 2, 10, progress),
        |w, s| w.step(s),
        |_, _| Ok(()),
    );
}

/// The conv layer keeps its input ciphertext resident on the server across
/// steps, so this sweep is the one that exercises the recovery re-upload
/// path. The refresh floor is forced sky-high so every guard triggers a
/// refresh round, putting `CrashOp::Refresh` points on the map too.
#[test]
fn chaos_conv_layer_bfv_with_forced_refreshes() {
    let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 18).unwrap();
    let input: Vec<Vec<u64>> = vec![(0..64).map(|i| (i * 5 + 1) % 16).collect()];
    let weights: Vec<Vec<Vec<u64>>> = (0..2)
        .map(|c| vec![(0..9).map(|i| ((i + c * 3) % 16) as u64).collect()])
        .collect();
    let steps = choco_apps::dnn::conv_rotation_steps(1, 8, 8, 3);
    sweep(
        "conv/bfv",
        || {
            Session::<Bfv>::direct(&params, b"chaos-conv", &steps)
                .unwrap()
                .with_refresh_floor(10_000.0)
        },
        |_| Box::new(DirectChannel::new()) as Box<dyn Channel>,
        || ResumableConvLayer::new(&input, &weights, 8, 8, 3).unwrap(),
        |progress| ResumableConvLayer::restore(&input, &weights, 8, 8, 3, progress),
        |w, s| w.step(s),
        |w, s| w.recover(s),
    );
}

#[test]
fn chaos_pipeline_bfv() {
    let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 18).unwrap();
    let spec = LenetLikeSpec::tiny();
    let weights = seeded_weights(&spec, b"chaos-pipe");
    let image: Vec<u64> = (0..spec.img * spec.img)
        .map(|i| ((i * 7 + 3) % 16) as u64)
        .collect();
    let steps = all_rotation_steps(&spec, params.degree() / 2);
    sweep(
        "pipeline/bfv",
        || Session::<Bfv>::direct(&params, b"chaos-pipe", &steps).unwrap(),
        |_| Box::new(DirectChannel::new()) as Box<dyn Channel>,
        || ResumablePipeline::new(&spec, &weights, &image).unwrap(),
        |progress| ResumablePipeline::restore(&spec, &weights, &image, progress),
        |w, s| w.step(s),
        |_, _| Ok(()),
    );
}

#[test]
fn chaos_kmeans_ckks() {
    let params = HeParams::ckks_insecure(1024, &[45, 45, 45, 46], 38).unwrap();
    let points = vec![
        vec![0.0, 0.1, 0.0, 0.0],
        vec![0.1, 0.0, 0.1, 0.1],
        vec![0.05, 0.05, 0.0, 0.1],
        vec![2.0, 2.1, 2.0, 1.9],
        vec![2.1, 2.0, 1.9, 2.0],
        vec![1.9, 1.9, 2.1, 2.1],
    ];
    let init = vec![vec![0.5; 4], vec![1.5; 4]];
    let steps = distance_rotation_steps(4, points.len(), 512);
    sweep(
        "kmeans/ckks",
        || Session::<Ckks>::direct(&params, b"chaos-kmeans", &steps).unwrap(),
        |_| Box::new(DirectChannel::new()) as Box<dyn Channel>,
        || ResumableKmeans::new(PackingVariant::DimensionMajor, &points, &init, 2, 1e-6).unwrap(),
        |progress| {
            ResumableKmeans::restore(
                PackingVariant::DimensionMajor,
                &points,
                &init,
                2,
                1e-6,
                progress,
            )
        },
        |w, s| w.step(s),
        |_, _| Ok(()),
    );
}
