//! Eval-pipeline chaos sweep: hard kills at every evaluation stage, plus
//! poison-job isolation, deadline shedding, and circuit-breaker recovery —
//! all over real loopback TCP.
//!
//! `chaos_tcp.rs` proves the relay protocol survives socket loss. This
//! suite proves the *remote-evaluation* protocol survives the server
//! process dying mid-batch, at every stage of a request's life:
//!
//! * **Accept** — journaled but never scheduled;
//! * **Coalesce** — queued, died in the batching window;
//! * **MidEval** — died with the kernel invocation in flight;
//! * **PreReply** — evaluated, died before the response write.
//!
//! For each stage × both schemes, a supervisor restarts the server over
//! the same checkpoint directory, the client recovers through the eval
//! journal (redial → re-setup → dead-request query → resend), and the run
//! must end with **bit-identical** output ciphertext wire bytes and
//! **exactly** the uninterrupted run's primary ledger lines — resends land
//! on `recovery_bytes`/`retransmit_bytes`, never on the primary lines.
//!
//! The isolation tests then prove the scheduler's blast-radius bounds: a
//! poison job co-batched with three healthy tenants is bisected out
//! (healthy results correct and billed), its program group is quarantined
//! (second submission refused without entering the scheduler), a stalled
//! dispatch sheds past-deadline jobs with a typed response the client
//! retries through, and an error storm trips the tenant's breaker open —
//! typed `Unavailable` — until a half-open probe succeeds.

use choco::compiler::Program;
use choco::protocol::CommLedger;
use choco::remote::PreparedProgram;
use choco::transport::tcp::TcpOptions;
use choco::transport::{RetryPolicy, TransportError};
use choco_apps::circuits::{all_workloads, WorkloadCircuit};
use choco_apps::remote::{workload_options, workload_params, RemoteWorkload};
use choco_he::params::SchemeType;
use choco_he::{Bfv, Ckks, HeScheme};
use choco_serve::{
    EvalChaos, EvalStage, IsolationConfig, OffloadServer, ServeConfig, TenantRegistry,
};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

const TENANT: u64 = 1;
const COPIES: usize = 3;

fn tenant_seed(tenant: u64) -> String {
    format!("chaos-eval tenant {tenant}")
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn scratch_dir(label: &str) -> PathBuf {
    let slug: String = label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let dir = std::env::temp_dir().join(format!("choco-chaos-eval-{slug}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bind_server(dir: &Path, tenants: u64, eval_chaos: EvalChaos) -> OffloadServer {
    let mut registry = TenantRegistry::new();
    for t in 1..=tenants {
        registry.register(t, tenant_seed(t).as_bytes());
    }
    let config = ServeConfig {
        checkpoint_dir: Some(dir.to_path_buf()),
        batch_window_ms: 60,
        eval_chaos,
        ..ServeConfig::default()
    };
    OffloadServer::bind("127.0.0.1:0", config, registry).expect("bind chaos-eval server")
}

fn policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 8,
        base_backoff_ms: 20,
        max_backoff_ms: 500,
        round_timeout_ms: 10_000,
    }
}

/// Client options with a widened recv deadline. Chaos-eval clients spend
/// long stretches waiting on an open-but-silent connection (batch windows,
/// bisection re-runs, injected dispatch stalls), and under heavy test
/// parallelism the default 2 s deadline can fire from CPU starvation alone.
fn wide_opts() -> TcpOptions {
    TcpOptions {
        recv_deadline_ms: 10_000,
        ..TcpOptions::default()
    }
}

fn assert_primary_lines_match(label: &str, base: &CommLedger, got: &CommLedger) {
    assert_eq!(got.upload_bytes, base.upload_bytes, "{label}: upload_bytes");
    assert_eq!(
        got.download_bytes, base.download_bytes,
        "{label}: download_bytes"
    );
    assert_eq!(got.uploads, base.uploads, "{label}: uploads");
    assert_eq!(got.downloads, base.downloads, "{label}: downloads");
}

/// The full kill sweep for one scheme: an uninterrupted baseline, then a
/// hard kill at each eval stage with a supervisor-driven restart over the
/// same checkpoint directory.
fn kill_sweep<S: choco::compiler::CompilerScheme>(scheme: SchemeType, label: &str) {
    let circuits = all_workloads();
    let circuit = circuits.iter().find(|w| w.name == "pagerank").unwrap();
    let params = workload_params(scheme).unwrap();
    let prep_seed = format!("chaos-eval keys {label}");
    let w = RemoteWorkload::<S>::prepare(circuit, &params, prep_seed.as_bytes())
        .unwrap_or_else(|e| panic!("{label}: prepare: {e}"));
    let local = w.local_output_wires().unwrap();
    let opts = wide_opts();

    // Uninterrupted baseline through the same reliable client path.
    let dir = scratch_dir(&format!("{label}-baseline"));
    let server = bind_server(&dir, 1, EvalChaos::default());
    let addr = Arc::new(Mutex::new(server.addr().to_string()));
    let mut client = w
        .connect_reliable(
            addr,
            tenant_seed(TENANT).as_bytes(),
            TENANT,
            0,
            &opts,
            policy(),
        )
        .unwrap_or_else(|e| panic!("{label}: baseline connect: {e}"));
    let base_wires = w
        .drive_to_completion(&mut client, COPIES)
        .unwrap_or_else(|e| panic!("{label}: baseline batch: {e}"));
    for copy in &base_wires {
        assert_eq!(copy, &local, "{label}: baseline remote != local");
    }
    let base_ledger = *client.ledger();
    assert_eq!(base_ledger.recovery_bytes, 0, "{label}: baseline recovery");
    assert_eq!(
        base_ledger.retransmit_bytes, 0,
        "{label}: baseline retransmit"
    );
    drop(client);
    let stats = server.shutdown();
    // No-crash run: exact per-tenant ledger-vs-book equality.
    let book = stats.book.get(TENANT).expect("baseline book entry");
    assert_eq!(book.upload_bytes, base_ledger.upload_bytes, "{label}: book");
    assert_eq!(book.download_bytes, base_ledger.download_bytes);
    let _ = std::fs::remove_dir_all(&dir);

    let stages = [
        EvalStage::Accept,
        EvalStage::Coalesce,
        EvalStage::MidEval,
        EvalStage::PreReply,
    ];
    for (i, &stage) in stages.iter().enumerate() {
        let point = format!("{label} kill@{stage:?}");
        let dir = scratch_dir(&point);
        let server_a = bind_server(
            &dir,
            1,
            EvalChaos {
                kill: Some((stage, 1)),
                ..EvalChaos::default()
            },
        );
        let addr = Arc::new(Mutex::new(server_a.addr().to_string()));

        // Supervisor: wait for the kill, reclaim the dead instance, bind a
        // successor over the same checkpoint dir, repoint the client.
        let sup_addr = Arc::clone(&addr);
        let sup_dir = dir.clone();
        let sup_point = point.clone();
        let supervisor = std::thread::spawn(move || {
            let start = Instant::now();
            while !server_a.was_hard_killed() {
                assert!(
                    start.elapsed() < Duration::from_secs(30),
                    "{sup_point}: kill never fired"
                );
                std::thread::sleep(Duration::from_millis(2));
            }
            let stats_a = server_a.shutdown();
            let server_b = bind_server(&sup_dir, 1, EvalChaos::default());
            *lock(&sup_addr) = server_b.addr().to_string();
            (stats_a, server_b)
        });

        let session = 1 + i as u64;
        let mut client = w
            .connect_reliable(
                Arc::clone(&addr),
                tenant_seed(TENANT).as_bytes(),
                TENANT,
                session,
                &opts,
                policy(),
            )
            .unwrap_or_else(|e| panic!("{point}: connect: {e}"));
        let wires = w
            .drive_to_completion(&mut client, COPIES)
            .unwrap_or_else(|e| panic!("{point}: batch did not survive the kill: {e}"));
        assert_eq!(
            wires, base_wires,
            "{point}: outputs differ from the uninterrupted run"
        );
        let ledger = *client.ledger();
        assert_primary_lines_match(&point, &base_ledger, &ledger);
        assert!(
            ledger.recovery_bytes > 0,
            "{point}: recovery billed no bytes"
        );
        drop(client);

        let (stats_a, server_b) = supervisor.join().expect("supervisor panicked");
        assert!(
            stats_a.eval.journal.accepted > 0,
            "{point}: dead server journaled no accepts"
        );
        if stage == EvalStage::Accept {
            // The kill fires during the first request's admission, so the
            // later requests were never journaled. They are resent outside
            // the journal-confirmed recovery line: as retransmits when
            // their first transmission had already left the client, or on
            // the primary upload line when the kill beat the send — the
            // exact-equality check above pins that split either way.
            assert_eq!(
                stats_a.eval.journal.accepted, 1,
                "{point}: kill@Accept must leave the later requests unjournaled"
            );
        }
        let stats_b = server_b.shutdown();
        assert!(
            stats_b.eval.journal.reported_dead >= 1,
            "{point}: successor reported no dead requests"
        );
        assert!(
            stats_b.sessions.iter().all(|r| r.bad_frames == 0),
            "{point}: successor saw bad frames"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn kill_at_every_eval_stage_recovers_bit_identical_bfv() {
    kill_sweep::<Bfv>(SchemeType::Bfv, "eval/bfv");
}

#[test]
fn kill_at_every_eval_stage_recovers_bit_identical_ckks() {
    kill_sweep::<Ckks>(SchemeType::Ckks, "eval/ckks");
}

/// One poison job co-batched with three healthy tenants: all four submit
/// the *same program* under the same parameters (one coalesced group), but
/// the poison tenant's session uploaded no Galois keys, so only its
/// evaluation faults. Bisection must rescue the healthy three, the poison
/// group is quarantined, and a second submission is refused without
/// entering the scheduler.
#[test]
fn poison_job_is_bisected_out_and_quarantined_healthy_tenants_unharmed() {
    let circuits = all_workloads();
    let circuit = circuits.iter().find(|w| w.name == "pagerank").unwrap();
    // Same program (same program_ref), no key coverage: compiles fine,
    // faults at execution — a poison program the static path can't see.
    let poison_circuit = WorkloadCircuit {
        galois_steps: vec![],
        ..circuit.clone()
    };
    let params = workload_params(SchemeType::Bfv).unwrap();

    let mut registry = TenantRegistry::new();
    for t in 1..=4 {
        registry.register(t, tenant_seed(t).as_bytes());
    }
    let config = ServeConfig {
        // A wide window so all four tenants' requests coalesce into one
        // scheduler dispatch.
        batch_window_ms: 300,
        ..ServeConfig::default()
    };
    let server = OffloadServer::bind("127.0.0.1:0", config, registry).unwrap();
    let addr = server.addr().to_string();

    let barrier = Arc::new(Barrier::new(4));
    let healthy: Vec<_> = (1u64..=3)
        .map(|tenant| {
            let addr = addr.clone();
            let circuit = circuit.clone();
            let params = params.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let seed = format!("poison-iso tenant {tenant}");
                let w = RemoteWorkload::<Bfv>::prepare(&circuit, &params, seed.as_bytes()).unwrap();
                let local = w.local_output_wires().unwrap();
                let mut client = choco::remote::RemoteEvaluator::<Bfv>::connect(
                    &addr,
                    tenant_seed(tenant).as_bytes(),
                    tenant,
                    0,
                    &w.params,
                    &w.relin,
                    &w.galois,
                    &wide_opts(),
                )
                .unwrap();
                let inputs = w.input_refs();
                barrier.wait();
                let outs = client
                    .evaluate(&w.prepared, &inputs)
                    .unwrap_or_else(|e| panic!("healthy tenant {tenant} failed: {e}"));
                let wires: Vec<Vec<u8>> = outs.iter().map(Bfv::ct_to_wire).collect();
                assert_eq!(
                    wires, local,
                    "healthy tenant {tenant}: result corrupted by co-batched poison job"
                );
                *client.ledger()
            })
        })
        .collect();

    // Poison tenant on this thread (keys cover no rotations).
    let pw =
        RemoteWorkload::<Bfv>::prepare(&poison_circuit, &params, b"poison-iso tenant 4").unwrap();
    let mut poison_client = choco::remote::RemoteEvaluator::<Bfv>::connect(
        &addr,
        tenant_seed(4).as_bytes(),
        4,
        0,
        &pw.params,
        &pw.relin,
        &pw.galois,
        &wide_opts(),
    )
    .unwrap();
    let poison_inputs = pw.input_refs();
    barrier.wait();
    match poison_client.evaluate(&pw.prepared, &poison_inputs) {
        Err(TransportError::Rejected(msg)) => {
            assert!(
                msg.contains("execution failed"),
                "poison refusal should name the execution fault: {msg}"
            );
        }
        Err(e) => panic!("poison job: expected a typed execution refusal, got {e}"),
        Ok(_) => panic!("poison job evaluated successfully without Galois keys"),
    }
    let ledgers: Vec<_> = healthy
        .into_iter()
        .map(|h| h.join().expect("healthy tenant panicked"))
        .collect();

    // Second submission of the quarantined program: typed refusal straight
    // from the quarantine list — the scheduler never sees the job.
    let before = server.stats().eval;
    match poison_client.evaluate(&pw.prepared, &poison_inputs) {
        Err(TransportError::Quarantined(reason)) => {
            assert!(
                reason.contains("execution failed"),
                "quarantine should carry the original fault: {reason}"
            );
        }
        Err(e) => panic!("expected Quarantined, got {e}"),
        Ok(_) => panic!("quarantined program evaluated successfully"),
    }
    let after = server.stats().eval;
    assert_eq!(
        after.sched.jobs, before.sched.jobs,
        "quarantined resubmission entered the scheduler"
    );
    assert_eq!(
        after.counters.requests, before.counters.requests,
        "quarantined resubmission counted as an accepted request"
    );
    assert_eq!(after.isolation.quarantine_refusals, 1);

    let stats = server.shutdown();
    assert_eq!(stats.eval.isolation.quarantined, 1);
    assert!(stats.eval.isolation.faults >= 1);
    assert!(
        stats.eval.isolation.bisections >= 1,
        "poison job was never co-batched: {:?}",
        stats.eval
    );
    assert!(stats.eval.sched.max_batch >= 2, "{:?}", stats.eval.sched);
    // Healthy tenants billed exactly: book equals each client's own ledger.
    for (tenant, ledger) in ledgers.iter().enumerate() {
        let tenant = tenant as u64 + 1;
        let book = stats
            .book
            .get(tenant)
            .unwrap_or_else(|| panic!("tenant {tenant} missing from book"));
        assert_eq!(book.upload_bytes, ledger.upload_bytes, "tenant {tenant}");
        assert_eq!(
            book.download_bytes, ledger.download_bytes,
            "tenant {tenant}"
        );
        assert_eq!(book.downloads, ledger.downloads, "tenant {tenant}");
    }
}

/// A stalled dispatch round (chaos) holds the queue past the job's
/// deadline: the scheduler sheds it with a typed `DeadlineExceeded`, the
/// client retries on the retransmit line, and the second round completes
/// with the correct result.
#[test]
fn stalled_dispatch_sheds_past_deadline_jobs_and_client_retries() {
    let circuits = all_workloads();
    let circuit = circuits.iter().find(|w| w.name == "pagerank").unwrap();
    let params = workload_params(SchemeType::Bfv).unwrap();
    let w = RemoteWorkload::<Bfv>::prepare(circuit, &params, b"deadline-shed").unwrap();
    let local = w.local_output_wires().unwrap();

    let mut registry = TenantRegistry::new();
    registry.register(TENANT, tenant_seed(TENANT).as_bytes());
    let config = ServeConfig {
        batch_window_ms: 10,
        eval_chaos: EvalChaos {
            stall: Some((1, 400)),
            ..EvalChaos::default()
        },
        ..ServeConfig::default()
    };
    let server = OffloadServer::bind("127.0.0.1:0", config, registry).unwrap();
    let addr = server.addr().to_string();

    let mut client = choco::remote::RemoteEvaluator::<Bfv>::connect(
        &addr,
        tenant_seed(TENANT).as_bytes(),
        TENANT,
        0,
        &w.params,
        &w.relin,
        &w.galois,
        &wide_opts(),
    )
    .unwrap();
    client.set_deadline_ms(Some(80));
    let inputs = w.input_refs();
    let outs = client
        .evaluate(&w.prepared, &inputs)
        .unwrap_or_else(|e| panic!("shed request never completed: {e}"));
    let wires: Vec<Vec<u8>> = outs.iter().map(Bfv::ct_to_wire).collect();
    assert_eq!(wires, local, "post-shed retry returned a wrong result");
    let ledger = *client.ledger();
    assert!(
        ledger.retransmit_bytes > 0,
        "shed retry must bill the retransmit line"
    );

    let stats = server.shutdown();
    assert_eq!(
        stats.eval.isolation.shed_deadline, 1,
        "{:?}",
        stats.eval.isolation
    );
    assert_eq!(stats.eval.counters.errors, 0);
}

/// A compiler-IR program whose single rotation the session's (empty)
/// Galois key set cannot cover — compiles cleanly, faults at execution.
fn uncovered_rotation_program(step: i64) -> Program {
    let mut p = Program::new();
    let x = p.input("x");
    let r = p.rotate(x, step);
    let y = p.add(x, r);
    p.output(y);
    p
}

/// A rotation-free probe program the same (keyless) session *can* run.
fn rotation_free_circuit() -> WorkloadCircuit {
    let mut p = Program::new();
    let x = p.input("x");
    let c = p.constant(&[0.25, 0.5, 0.75, 1.0]);
    let m = p.mul_plain(x, c);
    let y = p.add_plain(m, c);
    p.output(y);
    WorkloadCircuit {
        name: "breaker-probe",
        program: p,
        galois_steps: vec![],
    }
}

/// An error storm trips the tenant's circuit breaker: subsequent requests
/// get a typed `Unavailable { retry_after_ms }` without touching the
/// pipeline, and after the cool-down a half-open probe closes the breaker
/// again — proven end-to-end through the client's retry loop.
#[test]
fn error_storm_trips_breaker_and_half_open_probe_recovers() {
    let params = workload_params(SchemeType::Bfv).unwrap();
    let probe = rotation_free_circuit();
    let w = RemoteWorkload::<Bfv>::prepare(&probe, &params, b"breaker storm").unwrap();
    let local = w.local_output_wires().unwrap();

    let mut registry = TenantRegistry::new();
    registry.register(TENANT, tenant_seed(TENANT).as_bytes());
    let config = ServeConfig {
        batch_window_ms: 5,
        isolation: IsolationConfig {
            breaker_threshold: 2,
            breaker_window: 8,
            breaker_cooldown_ms: 150,
            ..IsolationConfig::default()
        },
        ..ServeConfig::default()
    };
    let server = OffloadServer::bind("127.0.0.1:0", config, registry).unwrap();
    let addr = server.addr().to_string();

    let mut client = choco::remote::RemoteEvaluator::<Bfv>::connect(
        &addr,
        tenant_seed(TENANT).as_bytes(),
        TENANT,
        0,
        &w.params,
        &w.relin,
        &w.galois,
        &wide_opts(),
    )
    .unwrap();
    let inputs = w.input_refs();

    // Two distinct poison programs → two error outcomes → breaker opens.
    for step in [1i64, 2] {
        let poison =
            PreparedProgram::new(&uncovered_rotation_program(step), &workload_options()).unwrap();
        match client.evaluate(&poison, &inputs) {
            Err(TransportError::Rejected(msg)) => {
                assert!(msg.contains("execution failed"), "{msg}");
            }
            Err(e) => panic!("storm program {step}: expected typed refusal, got {e}"),
            Ok(_) => panic!("storm program {step} evaluated without its Galois key"),
        }
    }

    // The healthy probe rides through the open breaker: typed Unavailable
    // absorbed by the client's retry loop, half-open probe succeeds.
    let outs = client
        .evaluate(&w.prepared, &inputs)
        .unwrap_or_else(|e| panic!("probe never recovered through the breaker: {e}"));
    let wires: Vec<Vec<u8>> = outs.iter().map(Bfv::ct_to_wire).collect();
    assert_eq!(wires, local, "post-breaker probe returned a wrong result");
    let ledger = *client.ledger();
    assert!(
        ledger.retransmit_bytes > 0,
        "breaker retries must bill the retransmit line"
    );

    let stats = server.shutdown();
    assert!(
        stats.eval.isolation.breaker_refusals >= 1,
        "{:?}",
        stats.eval.isolation
    );
    assert_eq!(stats.eval.isolation.quarantined, 2);
}
