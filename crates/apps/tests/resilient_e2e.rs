//! End-to-end resilience acceptance tests (deterministic quickprop
//! harness).
//!
//! The transport contract, observed from the application layer:
//!
//! * any seeded fault schedule *within* the retry budget yields results
//!   bit-identical to the fault-free run — faults cost retransmitted bytes,
//!   never correctness — and nothing panics;
//! * a schedule *beyond* the budget surfaces a typed [`TransportError`]
//!   instead of a wrong answer;
//! * when noise runs out mid-workload, the session's watchdog buys more
//!   depth with client-aided refresh rounds, visible in the ledger.

use choco::transport::{
    Channel, FaultPlan, FaultyChannel, LinkConfig, RetryPolicy, Session, TransportError,
};
use choco_apps::distance::{
    distance_rotation_steps, encrypted_distances, knn_classify, PackingVariant,
};
use choco_apps::pipeline::{run_encrypted, seeded_weights, LenetLikeSpec};
use choco_he::params::HeParams;
use choco_he::{Bfv, Ckks};
use choco_quickprop::{run_cases, Gen};

fn test_image(spec: &LenetLikeSpec) -> Vec<u64> {
    (0..spec.img * spec.img)
        .map(|i| ((i * 7 + 3) % 16) as u64)
        .collect()
}

fn bfv_params() -> HeParams {
    HeParams::bfv_insecure(1024, &[45, 45, 46], 18).unwrap()
}

/// A random fault schedule that a 16-attempt budget beats with margin.
fn survivable_plan(g: &mut Gen, label: &str) -> Box<dyn Channel> {
    let plan = FaultPlan::lossless()
        .with_drop_rate(g.f64() * 0.3)
        .with_corrupt_rate(g.f64() * 0.25)
        .with_truncate_rate(g.f64() * 0.15)
        .with_duplicate_rate(g.f64() * 0.2)
        .with_max_latency_ms(g.u64_below(30));
    let seed: Vec<u8> = label.bytes().chain(g.array_u8::<8>()).collect();
    Box::new(FaultyChannel::new(&seed, plan))
}

#[test]
fn dnn_pipeline_is_bit_identical_under_survivable_faults() {
    let spec = LenetLikeSpec::tiny();
    let weights = seeded_weights(&spec, b"e2e weights");
    let image = test_image(&spec);
    let params = bfv_params();
    let baseline = run_encrypted(
        &spec,
        &weights,
        &image,
        &params,
        b"e2e pipe",
        LinkConfig::direct(),
    )
    .unwrap();

    run_cases("resilient dnn bit-identical", 5, |g| {
        let link = LinkConfig {
            uplink: survivable_plan(g, "up"),
            downlink: survivable_plan(g, "down"),
            policy: RetryPolicy {
                max_attempts: 16,
                ..RetryPolicy::default()
            },
        };
        let enc = run_encrypted(&spec, &weights, &image, &params, b"e2e pipe", link).unwrap();
        assert_eq!(enc.logits, baseline.logits, "logits diverged under faults");
        assert_eq!(enc.class, baseline.class);
        // Figure-10-comparable counters are unchanged; only the
        // retransmission column grows.
        assert_eq!(enc.ledger.upload_bytes, baseline.ledger.upload_bytes);
        assert_eq!(enc.ledger.download_bytes, baseline.ledger.download_bytes);
        assert_eq!(enc.ledger.rounds, baseline.ledger.rounds);
    });
}

#[test]
fn dnn_pipeline_over_perfect_channels_matches_and_bills_nothing_extra() {
    let spec = LenetLikeSpec::tiny();
    let weights = seeded_weights(&spec, b"e2e weights");
    let image = test_image(&spec);
    let params = bfv_params();
    let baseline = run_encrypted(
        &spec,
        &weights,
        &image,
        &params,
        b"e2e pipe",
        LinkConfig::direct(),
    )
    .unwrap();
    let enc = run_encrypted(
        &spec,
        &weights,
        &image,
        &params,
        b"e2e pipe",
        LinkConfig::direct(),
    )
    .unwrap();
    assert_eq!(enc.logits, baseline.logits);
    assert_eq!(enc.ledger.retransmit_bytes, 0);
    assert_eq!(enc.ledger.refresh_rounds, 0);
}

#[test]
fn dnn_pipeline_beyond_budget_fails_typed_not_wrong() {
    let spec = LenetLikeSpec::tiny();
    let weights = seeded_weights(&spec, b"e2e weights");
    let image = test_image(&spec);
    let params = bfv_params();
    let link = LinkConfig {
        uplink: Box::new(FaultyChannel::new(b"dead uplink", FaultPlan::blackhole())),
        ..LinkConfig::direct()
    };
    let err = run_encrypted(&spec, &weights, &image, &params, b"e2e pipe", link).unwrap_err();
    assert!(
        matches!(err, TransportError::RetriesExhausted { .. }),
        "expected RetriesExhausted, got {err}"
    );
}

#[test]
fn watchdog_extends_multiply_depth_with_refresh_rounds() {
    // A multiply-plain chain deeper than the parameters' noise budget
    // allows: without the watchdog this dies with NoiseBudgetExhausted;
    // with it, each low-budget checkpoint becomes a client-aided refresh
    // round billed to the ledger.
    let params = bfv_params();
    let mut session = Session::<Bfv>::direct(&params, b"watchdog e2e", &[]).unwrap();
    let values = vec![1u64; 16];
    let ct = session.client_mut().encrypt_slots(&values).unwrap();
    let mut at_server = session.upload(&ct).unwrap();
    let two = session.server().encode(&[2u64; 16]).unwrap();
    for _ in 0..24 {
        at_server = session.ensure_budget(&at_server, 15.0).unwrap();
        at_server = session
            .server()
            .evaluator()
            .multiply_plain(&at_server, &two);
    }
    let back = session.download(&at_server).unwrap();
    let slots = session.client_mut().decrypt_slots(&back).unwrap();
    let t = session.server().context().plain_modulus();
    let want = (0..24).fold(1u64, |acc, _| acc.wrapping_mul(2) % t);
    assert_eq!(slots[0], want, "chain result wrong after refreshes");
    let ledger = session.ledger();
    assert!(
        ledger.refresh_rounds > 0,
        "a 24-deep chain must have triggered refreshes"
    );
    assert!(ledger.rounds >= ledger.refresh_rounds);
}

#[test]
fn knn_over_faulty_channels_matches_direct_classification() {
    let (dims, n) = (4usize, 6usize);
    let query: Vec<f64> = (0..dims).map(|i| (i as f64 * 0.7).sin()).collect();
    let points: Vec<Vec<f64>> = (0..n)
        .map(|p| {
            (0..dims)
                .map(|i| ((p * dims + i) as f64 * 0.3).cos())
                .collect()
        })
        .collect();
    let labels = [0usize, 1, 0, 1, 0, 1];
    let params = HeParams::ckks_insecure(1024, &[45, 45, 45, 46], 38).unwrap();
    let steps = distance_rotation_steps(dims, n, 512);

    // Direct reference.
    let mut direct_session = Session::<Ckks>::direct(&params, b"knn e2e", &steps).unwrap();
    let direct = encrypted_distances(
        PackingVariant::PointMajor,
        &mut direct_session,
        &query,
        &points,
    )
    .unwrap();
    let direct_class = knn_classify(&direct.distances, &labels, 3);

    // Same computation across lossy channels (rates high enough that a
    // point-major round's two transfers are certain to see faults).
    let plan = FaultPlan::flaky()
        .with_drop_rate(0.6)
        .with_corrupt_rate(0.5);
    let link = LinkConfig {
        uplink: Box::new(FaultyChannel::new(b"knn up", plan)),
        downlink: Box::new(FaultyChannel::new(b"knn down", plan)),
        policy: RetryPolicy {
            max_attempts: 16,
            ..RetryPolicy::default()
        },
    };
    let mut session = Session::<Ckks>::with_link(&params, b"knn e2e", &steps, link).unwrap();
    let res =
        encrypted_distances(PackingVariant::PointMajor, &mut session, &query, &points).unwrap();
    assert_eq!(res.distances, direct.distances, "bit-identical distances");
    assert_eq!(knn_classify(&res.distances, &labels, 3), direct_class);
    assert!(
        res.ledger.retransmit_bytes > 0,
        "flaky link must bill retries"
    );
}
