//! Socket-level chaos sweep: real TCP, real connection kills, real server
//! restarts.
//!
//! The in-memory sweep (`chaos_sweep.rs`) proves the kill → resume →
//! bit-identical invariant over simulated channels. This suite re-proves
//! it over genuine loopback TCP against a live `choco-serve` process
//! object: the baseline run and every crashed run exchange every frame
//! through a real socket, the crash is materialized as a real socket
//! teardown (dropping the session closes the connection under the
//! server's feet), and every *other* crash point additionally restarts
//! the server — graceful drain, session records persisted, a brand-new
//! listener on a brand-new port — before the client redials and resumes.
//!
//! Acceptance bar, per crash point (identical to the in-memory sweep):
//!
//! * final result ciphertext **bit-identical** to the uninterrupted run;
//! * every primary ledger line matches exactly (upload/download bytes and
//!   counts, rounds, refresh rounds);
//! * the uninterrupted run bills zero recovery bytes, every crashed run
//!   bills more than zero;
//! * server-side: no frame ever fails tag verification.

use choco::protocol::CommLedger;
use choco::remote::{RemoteEvaluator, SessionSetup};
use choco::transport::frame::{encode_frame, FrameKind};
use choco::transport::tcp::{TcpOptions, HELLO_BYTES};
use choco::transport::{CrashOp, CrashPlan, Redialer, Session, TagKey, TcpChannel, TransportError};
use choco_apps::circuits::all_workloads;
use choco_apps::distance::{distance_rotation_steps, PackingVariant};
use choco_apps::pagerank::{pagerank_rotation_steps, Graph};
use choco_apps::remote::{workload_params, RemoteWorkload};
use choco_apps::resumable::{
    ResumableConvLayer, ResumableKmeans, ResumablePagerank, ResumableWorkload,
};
use choco_he::params::{HeParams, SchemeType};
use choco_he::{Bfv, Ckks, HeScheme};
use choco_serve::{ChaosPlan, ChaosProxy, OffloadServer, ServeConfig, TenantRegistry};
use std::path::{Path, PathBuf};

const OPS: [CrashOp; 4] = [
    CrashOp::Upload,
    CrashOp::Download,
    CrashOp::Refresh,
    CrashOp::Compute,
];

const TENANT: u64 = 1;

fn assert_primary_lines_match(label: &str, base: &CommLedger, got: &CommLedger) {
    assert_eq!(got.upload_bytes, base.upload_bytes, "{label}: upload_bytes");
    assert_eq!(
        got.download_bytes, base.download_bytes,
        "{label}: download_bytes"
    );
    assert_eq!(got.uploads, base.uploads, "{label}: uploads");
    assert_eq!(got.downloads, base.downloads, "{label}: downloads");
    assert_eq!(got.rounds, base.rounds, "{label}: rounds");
    assert_eq!(
        got.refresh_rounds, base.refresh_rounds,
        "{label}: refresh_rounds"
    );
}

fn scratch_dir(label: &str) -> PathBuf {
    let slug: String = label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    let dir = std::env::temp_dir().join(format!("choco-chaos-tcp-{slug}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bind_server(seed: &[u8], dir: &Path) -> OffloadServer {
    let mut registry = TenantRegistry::new();
    registry.register(TENANT, seed);
    let config = ServeConfig {
        max_sessions: 4,
        worker_poll_ms: 10,
        checkpoint_dir: Some(dir.to_path_buf()),
        ..ServeConfig::default()
    };
    OffloadServer::bind("127.0.0.1:0", config, registry).expect("bind chaos server")
}

fn running(server: &Option<OffloadServer>) -> &OffloadServer {
    server
        .as_ref()
        .unwrap_or_else(|| unreachable!("server running"))
}

fn dial(
    server: &OffloadServer,
    seed: &[u8],
    session_id: u64,
    resume: bool,
) -> (TcpChannel, TcpChannel) {
    let redialer = Redialer::new(server.addr().to_string(), seed, TENANT, session_id);
    let dialed = if resume {
        redialer.redial()
    } else {
        redialer.dial_fresh()
    };
    dialed.unwrap_or_else(|e| panic!("dial {}: {e}", server.addr()))
}

/// Runs one workload through the kill → redial → resume sweep over real
/// TCP. Crash points alternate between "socket teardown only" and "socket
/// teardown plus full server restart".
#[allow(clippy::too_many_arguments)]
fn sweep_tcp<S, W>(
    label: &str,
    seed: &'static [u8],
    make_session: impl Fn(TcpChannel, TcpChannel) -> Session<S, TcpChannel>,
    make_workload: impl Fn() -> W,
    restore: impl Fn(&[u8]) -> Result<W, TransportError>,
    mut step: impl FnMut(&mut W, &mut Session<S, TcpChannel>) -> Result<(), TransportError>,
    mut recover: impl FnMut(&mut W, &mut Session<S, TcpChannel>) -> Result<(), TransportError>,
) where
    S: HeScheme,
    W: ResumableWorkload,
{
    let dir = scratch_dir(label);
    let mut server = Some(bind_server(seed, &dir));

    // Uninterrupted baseline, itself over real TCP.
    let (up, down) = dial(running(&server), seed, 0, false);
    let mut session = make_session(up, down);
    let mut w = make_workload();
    while !w.is_done() {
        step(&mut w, &mut session).unwrap_or_else(|e| panic!("{label}: baseline step: {e}"));
    }
    let base_wire = w.final_ct_wire().to_vec();
    assert!(
        !base_wire.is_empty(),
        "{label}: baseline produced no result"
    );
    let base_ledger = *session.ledger();
    assert_eq!(
        base_ledger.recovery_bytes, 0,
        "{label}: uninterrupted run billed recovery bytes"
    );
    let counts: Vec<(CrashOp, u32)> = OPS
        .iter()
        .map(|&op| (op, session.op_count(op)))
        .filter(|&(_, c)| c > 0)
        .collect();
    assert!(!counts.is_empty(), "{label}: baseline performed no ops");
    drop(session);

    let mut crash_idx = 0u32;
    let mut restarts = 0u32;
    let mut session_id = 0u64;
    let mut accepted_total = 0u64;
    for &(op, count) in &counts {
        let mut nths = vec![1];
        if count > 1 {
            nths.push(count);
        }
        for nth in nths {
            crash_idx += 1;
            session_id += 1;
            let point = format!("{label} {op:?} #{nth}/{count}");
            let (up, down) = dial(running(&server), seed, session_id, false);
            let mut session = make_session(up, down);
            session.arm_crash(CrashPlan { op, nth });
            let mut w = make_workload();
            let mut ckpt = session.checkpoint(&w.progress());
            let mut crashes = 0u32;
            loop {
                match step(&mut w, &mut session) {
                    Ok(()) => {
                        if w.is_done() {
                            break;
                        }
                        ckpt = session.checkpoint(&w.progress());
                    }
                    Err(TransportError::Crashed { .. }) => {
                        crashes += 1;
                        assert_eq!(crashes, 1, "{point}: crash fired more than once");
                        // Materialize the crash as a real teardown: dropping
                        // the session closes the TCP connection under the
                        // server's feet.
                        drop(session);
                        if crash_idx.is_multiple_of(2) {
                            // And on alternate points, restart the whole
                            // server: drain (persists session records), then
                            // a fresh listener on a fresh port.
                            let stats = server
                                .take()
                                .unwrap_or_else(|| unreachable!("server running"))
                                .shutdown();
                            assert!(
                                stats.sessions.iter().all(|r| r.bad_frames == 0),
                                "{point}: server saw bad frames before restart"
                            );
                            accepted_total += stats.accepted;
                            server = Some(bind_server(seed, &dir));
                            restarts += 1;
                        }
                        let (up, down) = dial(running(&server), seed, session_id, true);
                        let (resumed, progress) = Session::<S, TcpChannel>::resume(&ckpt, up, down)
                            .unwrap_or_else(|e| panic!("{point}: resume: {e}"));
                        session = resumed;
                        w = restore(&progress).unwrap_or_else(|e| panic!("{point}: restore: {e}"));
                        recover(&mut w, &mut session)
                            .unwrap_or_else(|e| panic!("{point}: recover: {e}"));
                    }
                    Err(e) => panic!("{point}: unexpected error: {e}"),
                }
            }
            assert_eq!(crashes, 1, "{point}: armed crash never fired");
            assert_eq!(
                w.final_ct_wire(),
                &base_wire[..],
                "{point}: final ciphertext differs from the uninterrupted run"
            );
            assert_primary_lines_match(&point, &base_ledger, session.ledger());
            assert!(
                session.ledger().recovery_bytes > 0,
                "{point}: crashed run billed no recovery bytes"
            );
            drop(session);
        }
    }
    assert!(crash_idx > 0, "{label}: no crash point exercised");
    assert!(restarts > 0, "{label}: no crash point restarted the server");

    let stats = server
        .take()
        .unwrap_or_else(|| unreachable!("server running"))
        .shutdown();
    assert!(
        stats.sessions.iter().all(|r| r.bad_frames == 0),
        "{label}: server saw frames that failed tag verification"
    );
    accepted_total += stats.accepted;
    // Baseline + one connection per crash point + one redial per crash.
    assert!(
        accepted_total > 2 * u64::from(crash_idx),
        "{label}: accepted {accepted_total} connections, expected at least {}",
        1 + 2 * u64::from(crash_idx)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A bit flipped in-flight inside an eval request frame must surface as a
/// typed error, never a panic and never a wrong result: the keyed-BLAKE3
/// tag rejects the frame server-side (billed to the session's
/// `bad_frames`, connection left up), the client's receive deadline turns
/// the missing answer into a typed `TimeoutExceeded`, and a clean
/// follow-up connection still computes the bit-exact local reference.
#[test]
fn corrupted_eval_frame_is_typed_never_wrong() {
    let seed: &[u8] = b"chaos-tcp-corrupt";
    let dir = scratch_dir("tcp/corrupt/eval");
    let server = bind_server(seed, &dir);

    let circuits = all_workloads();
    let circuit = circuits.iter().find(|w| w.name == "pagerank").unwrap();
    let params = workload_params(SchemeType::Bfv).unwrap();
    let w = RemoteWorkload::<Bfv>::prepare(circuit, &params, b"corrupt-frame keys").unwrap();
    let local = w.local_output_wires().unwrap();

    // Locate the first eval-request frame on the client→server stream:
    // hello, then the session-setup frame (seq 0), then the request. The
    // flip lands 200 bytes into the request frame, so session setup passes
    // untouched and only the request is mangled.
    let key = TagKey::from_session_seed(seed);
    let setup = SessionSetup {
        params: w.params.clone(),
        relin_wire: Bfv::relin_to_wire(&w.relin),
        galois_wire: Bfv::galois_to_wire(&w.galois),
    };
    let setup_frame = encode_frame(FrameKind::EvalRequest, 0, &setup.to_wire(), &key);
    let plan = ChaosPlan {
        corrupt_at_byte: Some((HELLO_BYTES + setup_frame.len() + 200) as u64),
        corrupt_seed: 5,
        ..ChaosPlan::default()
    };
    let proxy = ChaosProxy::spawn(server.addr(), plan).expect("spawn chaos proxy");

    let opts = TcpOptions {
        recv_deadline_ms: 500,
        ..TcpOptions::default()
    };
    let mut through_proxy = RemoteEvaluator::<Bfv>::connect(
        &proxy.addr().to_string(),
        seed,
        TENANT,
        1,
        &w.params,
        &w.relin,
        &w.galois,
        &opts,
    )
    .expect("session setup must cross the proxy untouched");
    let err = through_proxy
        .evaluate(&w.prepared, &w.input_refs())
        .expect_err("a corrupted request frame must not yield a result");
    assert!(
        matches!(err, TransportError::TimeoutExceeded { .. }),
        "expected a typed timeout for the dropped frame, got {err}"
    );
    assert!(proxy.corrupted(), "the planned bit flip never fired");
    drop(through_proxy);
    proxy.stop();

    // A clean, direct connection still computes the right answer — the
    // corruption cost a round trip, never correctness.
    let mut direct = RemoteEvaluator::<Bfv>::connect(
        &server.addr().to_string(),
        seed,
        TENANT,
        2,
        &w.params,
        &w.relin,
        &w.galois,
        &TcpOptions::default(),
    )
    .expect("clean connect after corruption");
    let out = direct
        .evaluate(&w.prepared, &w.input_refs())
        .expect("clean evaluate after corruption");
    let wires: Vec<Vec<u8>> = out.iter().map(Bfv::ct_to_wire).collect();
    assert_eq!(wires, local, "clean retry must match the local reference");
    drop(direct);

    let stats = server.shutdown();
    let mangled = stats
        .sessions
        .iter()
        .find(|r| r.tenant == TENANT && r.session == 1)
        .expect("proxied session record");
    assert!(
        mangled.bad_frames >= 1,
        "server never rejected the mangled frame: {mangled:?}"
    );
    let clean = stats
        .sessions
        .iter()
        .find(|r| r.tenant == TENANT && r.session == 2)
        .expect("clean session record");
    assert_eq!(clean.bad_frames, 0, "clean session saw bad frames");
    let _ = std::fs::remove_dir_all(&dir);
}

fn chaos_graph() -> Graph {
    Graph::from_adjacency(&[vec![1, 2], vec![2], vec![0], vec![0, 2]])
}

#[test]
fn chaos_tcp_pagerank_bfv() {
    let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 24).unwrap();
    let g = chaos_graph();
    let steps = pagerank_rotation_steps(g.len());
    sweep_tcp(
        "tcp/pagerank/bfv",
        b"chaos-tcp-pagerank",
        |up, down| {
            Session::<Bfv, TcpChannel>::over(
                &params,
                b"chaos-tcp-pagerank",
                &steps,
                up,
                down,
                Default::default(),
            )
            .unwrap()
        },
        || ResumablePagerank::<Bfv>::new(&g, 0.85, 4, 2, 10).unwrap(),
        |progress| ResumablePagerank::<Bfv>::restore(&g, 0.85, 4, 2, 10, progress),
        |w, s| w.step(s),
        |_, _| Ok(()),
    );
}

#[test]
fn chaos_tcp_pagerank_ckks() {
    let params = HeParams::ckks_insecure(1024, &[45, 45, 45, 46], 38).unwrap();
    let g = chaos_graph();
    let steps = pagerank_rotation_steps(g.len());
    sweep_tcp(
        "tcp/pagerank/ckks",
        b"chaos-tcp-pagerank-ckks",
        |up, down| {
            Session::<Ckks, TcpChannel>::over(
                &params,
                b"chaos-tcp-pagerank-ckks",
                &steps,
                up,
                down,
                Default::default(),
            )
            .unwrap()
        },
        || ResumablePagerank::<Ckks>::new(&g, 0.85, 4, 1, 0).unwrap(),
        |progress| ResumablePagerank::<Ckks>::restore(&g, 0.85, 4, 1, 0, progress),
        |w, s| w.step(s),
        |_, _| Ok(()),
    );
}

/// The conv layer keeps its input ciphertext resident server-side, so this
/// sweep exercises the post-resume recovery re-upload over a real socket;
/// the sky-high refresh floor forces `CrashOp::Refresh` points too.
#[test]
fn chaos_tcp_conv_layer_bfv_with_forced_refreshes() {
    let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 18).unwrap();
    let input: Vec<Vec<u64>> = vec![(0..64).map(|i| (i * 5 + 1) % 16).collect()];
    let weights: Vec<Vec<Vec<u64>>> = (0..2)
        .map(|c| vec![(0..9).map(|i| ((i + c * 3) % 16) as u64).collect()])
        .collect();
    let steps = choco_apps::dnn::conv_rotation_steps(1, 8, 8, 3);
    sweep_tcp(
        "tcp/conv/bfv",
        b"chaos-tcp-conv",
        |up, down| {
            Session::<Bfv, TcpChannel>::over(
                &params,
                b"chaos-tcp-conv",
                &steps,
                up,
                down,
                Default::default(),
            )
            .unwrap()
            .with_refresh_floor(10_000.0)
        },
        || ResumableConvLayer::new(&input, &weights, 8, 8, 3).unwrap(),
        |progress| ResumableConvLayer::restore(&input, &weights, 8, 8, 3, progress),
        |w, s| w.step(s),
        |w, s| w.recover(s),
    );
}

#[test]
fn chaos_tcp_kmeans_ckks() {
    let params = HeParams::ckks_insecure(1024, &[45, 45, 45, 46], 38).unwrap();
    let points = vec![
        vec![0.0, 0.1, 0.0, 0.0],
        vec![0.1, 0.0, 0.1, 0.1],
        vec![0.05, 0.05, 0.0, 0.1],
        vec![2.0, 2.1, 2.0, 1.9],
        vec![2.1, 2.0, 1.9, 2.0],
        vec![1.9, 1.9, 2.1, 2.1],
    ];
    let init = vec![vec![0.5; 4], vec![1.5; 4]];
    let steps = distance_rotation_steps(4, points.len(), 512);
    sweep_tcp(
        "tcp/kmeans/ckks",
        b"chaos-tcp-kmeans",
        |up, down| {
            Session::<Ckks, TcpChannel>::over(
                &params,
                b"chaos-tcp-kmeans",
                &steps,
                up,
                down,
                Default::default(),
            )
            .unwrap()
        },
        || ResumableKmeans::new(PackingVariant::DimensionMajor, &points, &init, 2, 1e-6).unwrap(),
        |progress| {
            ResumableKmeans::restore(
                PackingVariant::DimensionMajor,
                &points,
                &init,
                2,
                1e-6,
                progress,
            )
        },
        |w, s| w.step(s),
        |_, _| Ok(()),
    );
}
