//! Step-granular resumable workload drivers for crash-tolerant offloading.
//!
//! Each workload of the suite gets a driver that advances in discrete
//! steps, so a caller can interleave [`Session::checkpoint`] between steps
//! and, after a crash ([`choco::transport::TransportError::Crashed`] or a
//! real process death), rebuild both session and workload from the last
//! checkpoint with [`Session::resume`] + `restore` and continue exactly
//! where the run left off:
//!
//! * [`ResumablePagerank`] — one refresh burst per step (BFV or CKKS);
//! * [`ResumableConvLayer`] — one upload step, then one output channel per
//!   step; after a resume, [`ResumableConvLayer::recover`] re-uploads the
//!   server-side input ciphertext from its checkpointed wire bytes, billed
//!   to [`choco::CommLedger::recovery_bytes`];
//! * [`ResumablePipeline`] — one network stage per step (conv1, conv2,
//!   FC), with sentinel verification of the FC output via
//!   [`Session::download_checked`];
//! * [`ResumableKmeans`] — one K-Means iteration per step.
//!
//! Determinism contract: a step is a pure function of the workload's
//! progress state and the session state at the step boundary — every
//! random draw comes from the checkpointed client RNG. Replaying a crashed
//! step from the last checkpoint therefore reproduces the uninterrupted
//! run's ciphertexts bit for bit, and the primary ledger lines (uploads,
//! downloads, bytes, rounds, refreshes) land on identical totals; only
//! `retransmit_bytes`, `recovery_bytes` and the simulated clock may
//! differ. The crash-point sweep in `tests/chaos_sweep.rs` enforces this
//! for every workload × crash point.
//!
//! Progress blobs carry only the *mutable* workload state; static
//! configuration (graph, weights, image, point set) is plaintext the
//! restarted client binary already has and is passed back to `restore`.
//! Integrity comes from the checkpoint seal around the whole blob;
//! `restore` still validates shape and never panics on garbage.

use crate::distance::{encrypted_distances, kmeans_update, PackingVariant};
use crate::dnn::{conv_taps, run_encrypted_conv_layer};
use crate::pagerank::Graph;
use crate::pipeline::{max_pool2x2, requantize, LenetLikeSpec, LenetLikeWeights};
use choco::linalg::{accumulate_channels, matvec_diagonals, replicate_for_matvec, stacked_conv};
use choco::rotation::RedundantLayout;
use choco::stacking::StackedLayout;
use choco::transport::{Channel, Redialer, Session, TcpChannel, TransportError};
use choco_he::{Bfv, Ckks, HeError, HeScheme};
use std::marker::PhantomData;

/// Common surface of the step-granular resumable drivers.
pub trait ResumableWorkload {
    /// Serializes the mutable workload state for a session checkpoint.
    fn progress(&self) -> Vec<u8>;

    /// Whether every step has completed.
    fn is_done(&self) -> bool;

    /// Wire bytes of the most recently downloaded result ciphertext (empty
    /// until the first download) — the bit-identity witness crash sweeps
    /// compare against the uninterrupted run.
    fn final_ct_wire(&self) -> &[u8];
}

fn bad_progress(msg: impl Into<String>) -> TransportError {
    TransportError::BadCheckpoint(format!("workload progress: {}", msg.into()))
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn put_u64s(out: &mut Vec<u8>, v: &[u64]) {
    out.extend_from_slice(&(v.len() as u32).to_le_bytes());
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn put_f64s(out: &mut Vec<u8>, v: &[f64]) {
    out.extend_from_slice(&(v.len() as u32).to_le_bytes());
    for x in v {
        out.extend_from_slice(&x.to_bits().to_le_bytes());
    }
}

/// Bounds-checked cursor over a progress blob. The enclosing checkpoint
/// seal already guarantees integrity; this guards against version and
/// programming mismatches with typed errors instead of panics.
struct ProgressReader<'a> {
    rest: &'a [u8],
}

impl<'a> ProgressReader<'a> {
    fn new(bytes: &'a [u8], magic: &[u8; 4]) -> Result<Self, TransportError> {
        let mut r = ProgressReader { rest: bytes };
        let got = r.take(4)?;
        if got != magic {
            return Err(bad_progress(format!(
                "expected magic {magic:?}, found {got:?}"
            )));
        }
        Ok(r)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], TransportError> {
        if self.rest.len() < n {
            return Err(bad_progress("truncated"));
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, TransportError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, TransportError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, TransportError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    fn bytes(&mut self) -> Result<&'a [u8], TransportError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    fn u64s(&mut self) -> Result<Vec<u64>, TransportError> {
        let count = self.u32()? as usize;
        let mut v = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            v.push(self.u64()?);
        }
        Ok(v)
    }

    fn f64s(&mut self) -> Result<Vec<f64>, TransportError> {
        let count = self.u32()? as usize;
        let mut v = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            v.push(f64::from_bits(self.u64()?));
        }
        Ok(v)
    }

    fn finish(self) -> Result<(), TransportError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(bad_progress("trailing bytes"))
        }
    }
}

// ---------------------------------------------------------------------------
// PageRank
// ---------------------------------------------------------------------------

const PAGERANK_MAGIC: &[u8; 4] = b"RPG1";

/// Burst-granular resumable PageRank: each step is one refresh burst of
/// the client-aided loop in [`crate::pagerank::pagerank_encrypted`] —
/// quantize + encrypt + upload, `burst` encrypted iterations, download,
/// decrypt + renormalize. Generic over the HE scheme like the one-shot
/// runner.
#[derive(Debug, Clone)]
pub struct ResumablePagerank<S: HeScheme> {
    graph: Graph,
    damping: f64,
    total_iterations: u32,
    iters_per_refresh: u32,
    scale_bits: u32,
    ranks: Vec<f64>,
    done: u32,
    final_wire: Vec<u8>,
    _scheme: PhantomData<S>,
}

impl<S: HeScheme> ResumablePagerank<S> {
    /// Starts a fresh run at the uniform rank vector.
    ///
    /// # Errors
    ///
    /// [`HeError::Mismatch`] (wrapped) for a zero refresh cadence or an
    /// empty graph.
    pub fn new(
        graph: &Graph,
        damping: f64,
        total_iterations: u32,
        iters_per_refresh: u32,
        scale_bits: u32,
    ) -> Result<Self, TransportError> {
        if iters_per_refresh < 1 {
            return Err(HeError::Mismatch("need at least one iteration per refresh".into()).into());
        }
        if graph.is_empty() {
            return Err(HeError::Mismatch("empty graph".into()).into());
        }
        let n = graph.len();
        Ok(ResumablePagerank {
            graph: graph.clone(),
            damping,
            total_iterations,
            iters_per_refresh,
            scale_bits,
            ranks: vec![1.0 / n as f64; n],
            done: 0,
            final_wire: Vec::new(),
            _scheme: PhantomData,
        })
    }

    /// Rebuilds the driver from checkpointed progress plus the static
    /// configuration the restarted client still has.
    ///
    /// # Errors
    ///
    /// [`TransportError::BadCheckpoint`] on malformed or mismatched blobs.
    pub fn restore(
        graph: &Graph,
        damping: f64,
        total_iterations: u32,
        iters_per_refresh: u32,
        scale_bits: u32,
        progress: &[u8],
    ) -> Result<Self, TransportError> {
        let mut fresh = Self::new(
            graph,
            damping,
            total_iterations,
            iters_per_refresh,
            scale_bits,
        )?;
        let mut r = ProgressReader::new(progress, PAGERANK_MAGIC)?;
        let done = r.u32()?;
        let ranks = r.f64s()?;
        let final_wire = r.bytes()?.to_vec();
        r.finish()?;
        if done > total_iterations {
            return Err(bad_progress("iteration counter exceeds the schedule"));
        }
        if ranks.len() != graph.len() {
            return Err(bad_progress("rank vector does not match the graph"));
        }
        if ranks.iter().any(|x| !x.is_finite()) {
            return Err(bad_progress("non-finite rank"));
        }
        fresh.done = done;
        fresh.ranks = ranks;
        fresh.final_wire = final_wire;
        Ok(fresh)
    }

    /// Current rank vector (final answer once [`Self::is_done`]).
    pub fn ranks(&self) -> &[f64] {
        &self.ranks
    }

    /// Runs one refresh burst.
    ///
    /// # Errors
    ///
    /// Transport and HE errors exactly as the one-shot runner; a crashed
    /// session surfaces [`TransportError::Crashed`] with the workload
    /// state untouched since the last completed step.
    pub fn step<C: Channel>(&mut self, session: &mut Session<S, C>) -> Result<(), TransportError> {
        if self.is_done() {
            return Ok(());
        }
        let n = self.graph.len();
        let width = session.server().slot_width();
        if 2 * n > width {
            return Err(HeError::Mismatch("graph too large for one ciphertext row".into()).into());
        }
        let ctx = session.server().context().clone();
        let burst = self
            .iters_per_refresh
            .min(self.total_iterations - self.done);

        let qm: Vec<Vec<S::Value>> = self
            .graph
            .transition
            .iter()
            .map(|row| {
                let damped: Vec<f64> = row.iter().map(|&v| self.damping * v).collect();
                S::quantize(&ctx, &damped, self.scale_bits, 1)
            })
            .collect();
        let teleport = (1.0 - self.damping) / n as f64;
        let mask_plain: Vec<S::Value> = {
            let mut mask = vec![0.0f64; width];
            for s in mask.iter_mut().take(n) {
                *s = 1.0;
            }
            S::quantize(&ctx, &mask, self.scale_bits, 0)
        };

        let qr = S::quantize(&ctx, &self.ranks, self.scale_bits, 1);
        let replicated = replicate_for_matvec(&qr, width);
        let ct = session.client_mut().encrypt(&replicated)?;
        let uploaded = session.upload(&ct)?;
        let mut at_server = session.guard(&uploaded)?;

        session.compute_tick()?;
        for it in 0..burst {
            at_server = matvec_diagonals(session.server(), &at_server, &qm)?;
            let mut tvec = vec![0.0f64; width];
            for s in tvec.iter_mut().take(n) {
                *s = teleport;
            }
            let tq = S::quantize(&ctx, &tvec, self.scale_bits, it + 2);
            at_server = session.server().add_plain(&at_server, &tq)?;
            if it + 1 < burst {
                let masked = session.server().mul_plain(&at_server, &mask_plain)?;
                let copy = session.server().rotate(&masked, -(n as i64))?;
                at_server = session.server().add(&masked, &copy)?;
            }
        }
        let back = session.download(&at_server)?;
        self.final_wire = S::ct_to_wire(&back);
        session.ledger_mut().end_round();

        let slots = session.client_mut().decrypt(&back)?;
        let stripped = S::dequantize(&ctx, &slots[..n], self.scale_bits, burst + 1);
        self.ranks.copy_from_slice(&stripped);
        let sum: f64 = self.ranks.iter().sum();
        for r in self.ranks.iter_mut() {
            *r /= sum;
        }
        self.done += burst;
        Ok(())
    }
}

impl<S: HeScheme> ResumableWorkload for ResumablePagerank<S> {
    fn progress(&self) -> Vec<u8> {
        let mut out = PAGERANK_MAGIC.to_vec();
        out.extend_from_slice(&self.done.to_le_bytes());
        put_f64s(&mut out, &self.ranks);
        put_bytes(&mut out, &self.final_wire);
        out
    }

    fn is_done(&self) -> bool {
        self.done >= self.total_iterations
    }

    fn final_ct_wire(&self) -> &[u8] {
        &self.final_wire
    }
}

// ---------------------------------------------------------------------------
// Convolution layer
// ---------------------------------------------------------------------------

const CONV_MAGIC: &[u8; 4] = b"RCV1";

/// Channel-granular resumable encrypted convolution layer (BFV). Step 0
/// packs + encrypts + uploads the stacked input; each later step computes
/// one output channel server-side and downloads it. Because the input
/// ciphertext lives on the (crashed) server across steps, resuming
/// requires [`Self::recover`], which re-uploads its checkpointed wire
/// bytes billed to `recovery_bytes` — never re-encrypting, so the client
/// RNG stream stays on the uninterrupted run's schedule.
#[derive(Debug, Clone)]
pub struct ResumableConvLayer {
    input: Vec<Vec<u64>>,
    weights: Vec<Vec<Vec<u64>>>,
    h: usize,
    w: usize,
    f: usize,
    /// Wire bytes of the input ciphertext at the server (empty = not yet
    /// uploaded). Updated after each guard, since a refresh replaces it.
    uploaded: Vec<u8>,
    maps: Vec<Vec<u64>>,
    final_wire: Vec<u8>,
}

impl ResumableConvLayer {
    /// Starts a fresh layer run.
    ///
    /// # Errors
    ///
    /// [`HeError::Mismatch`] (wrapped) for empty inputs or weights.
    pub fn new(
        input: &[Vec<u64>],
        weights: &[Vec<Vec<u64>>],
        h: usize,
        w: usize,
        f: usize,
    ) -> Result<Self, TransportError> {
        if input.is_empty() || weights.is_empty() {
            return Err(HeError::Mismatch("empty conv input or weights".into()).into());
        }
        Ok(ResumableConvLayer {
            input: input.to_vec(),
            weights: weights.to_vec(),
            h,
            w,
            f,
            uploaded: Vec::new(),
            maps: Vec::new(),
            final_wire: Vec::new(),
        })
    }

    /// Rebuilds the driver from checkpointed progress.
    ///
    /// # Errors
    ///
    /// [`TransportError::BadCheckpoint`] on malformed or mismatched blobs.
    pub fn restore(
        input: &[Vec<u64>],
        weights: &[Vec<Vec<u64>>],
        h: usize,
        w: usize,
        f: usize,
        progress: &[u8],
    ) -> Result<Self, TransportError> {
        let mut fresh = Self::new(input, weights, h, w, f)?;
        let mut r = ProgressReader::new(progress, CONV_MAGIC)?;
        let uploaded = r.bytes()?.to_vec();
        let count = r.u32()? as usize;
        if count > weights.len() {
            return Err(bad_progress("more channel maps than output channels"));
        }
        let mut maps = Vec::with_capacity(count);
        for _ in 0..count {
            let m = r.u64s()?;
            if m.len() != h * w {
                return Err(bad_progress("channel map has the wrong pixel count"));
            }
            maps.push(m);
        }
        let final_wire = r.bytes()?.to_vec();
        r.finish()?;
        if count > 0 && uploaded.is_empty() {
            return Err(bad_progress("channel maps recorded before any upload"));
        }
        fresh.uploaded = uploaded;
        fresh.maps = maps;
        fresh.final_wire = final_wire;
        Ok(fresh)
    }

    fn layout(&self) -> StackedLayout {
        let red = (self.f / 2) * (self.w + 1);
        StackedLayout::new(self.input.len(), RedundantLayout::new(self.h * self.w, red))
    }

    /// Per-output-channel feature maps computed so far (all of them once
    /// [`Self::is_done`]).
    pub fn maps(&self) -> &[Vec<u64>] {
        &self.maps
    }

    /// Re-establishes server-side state after a [`Session::resume`]: if
    /// the input ciphertext was already uploaded, sends its stored wire
    /// bytes again through [`Session::recover_upload`] (billed to
    /// `recovery_bytes`). Call once, before the next [`Self::step`].
    ///
    /// # Errors
    ///
    /// Transport errors from the recovery upload.
    pub fn recover<C: Channel>(
        &mut self,
        session: &mut Session<Bfv, C>,
    ) -> Result<(), TransportError> {
        if !self.uploaded.is_empty() {
            let delivered = session.recover_upload(&self.uploaded)?;
            self.uploaded = Bfv::ct_to_wire(&delivered);
        }
        Ok(())
    }

    /// Runs the next step: the initial upload, or one output channel.
    ///
    /// # Errors
    ///
    /// Transport and HE errors as
    /// [`crate::dnn::run_encrypted_conv_layer`]; capacity overflows are
    /// [`HeError::Mismatch`].
    pub fn step<C: Channel>(
        &mut self,
        session: &mut Session<Bfv, C>,
    ) -> Result<(), TransportError> {
        if self.is_done() {
            return Ok(());
        }
        let layout = self.layout();
        if self.uploaded.is_empty() {
            if !layout.fits(session.server().context().degree() / 2) {
                return Err(HeError::Mismatch(
                    "layer too large for one ciphertext; split across ciphertexts".into(),
                )
                .into());
            }
            let slots = layout.pack(&self.input);
            let ct = session.client_mut().encrypt_slots(&slots)?;
            let at_server = session.upload(&ct)?;
            self.uploaded = Bfv::ct_to_wire(&at_server);
            return Ok(());
        }

        let at_server = Bfv::ct_from_wire(&self.uploaded)?;
        let at_server = session.guard(&at_server)?;
        self.uploaded = Bfv::ct_to_wire(&at_server);
        session.compute_tick()?;
        let taps = conv_taps(
            &self.weights[self.maps.len()],
            self.input.len(),
            self.f,
            self.w,
        );
        let conv = stacked_conv(session.server(), &at_server, &layout, &taps)?;
        let acc = accumulate_channels(session.server(), &conv, &layout)?;
        let back = session.download(&acc)?;
        self.final_wire = Bfv::ct_to_wire(&back);
        let slots = session.client_mut().decrypt_slots(&back)?;
        self.maps.push(layout.extract(&slots)[0].clone());
        if self.is_done() {
            session.ledger_mut().end_round();
        }
        Ok(())
    }
}

impl ResumableWorkload for ResumableConvLayer {
    fn progress(&self) -> Vec<u8> {
        let mut out = CONV_MAGIC.to_vec();
        put_bytes(&mut out, &self.uploaded);
        out.extend_from_slice(&(self.maps.len() as u32).to_le_bytes());
        for m in &self.maps {
            put_u64s(&mut out, m);
        }
        put_bytes(&mut out, &self.final_wire);
        out
    }

    fn is_done(&self) -> bool {
        self.maps.len() == self.weights.len()
    }

    fn final_ct_wire(&self) -> &[u8] {
        &self.final_wire
    }
}

// ---------------------------------------------------------------------------
// Whole-network pipeline
// ---------------------------------------------------------------------------

const PIPELINE_MAGIC: &[u8; 4] = b"RPL1";

/// Stage-granular resumable LeNet-style inference: step 0 runs the first
/// encrypted convolution (plus client requantize/pool), step 1 the second,
/// step 2 the fully-connected layer. The FC download goes through
/// [`Session::download_checked`] with the class-0 logit as a sentinel —
/// the client can compute it exactly from its own plaintext features, so
/// a server returning an inconsistent result surfaces as
/// [`choco::transport::TransportError::SentinelMismatch`] instead of a
/// silently wrong argmax.
#[derive(Debug, Clone)]
pub struct ResumablePipeline {
    spec: LenetLikeSpec,
    weights: LenetLikeWeights,
    image: Vec<u64>,
    stage: u8,
    pooled1: Vec<Vec<u64>>,
    pooled2: Vec<Vec<u64>>,
    logits: Vec<u64>,
    final_wire: Vec<u8>,
}

impl ResumablePipeline {
    /// Starts a fresh inference.
    ///
    /// # Errors
    ///
    /// [`HeError::Mismatch`] (wrapped) when the image does not match the
    /// spec geometry.
    pub fn new(
        spec: &LenetLikeSpec,
        weights: &LenetLikeWeights,
        image: &[u64],
    ) -> Result<Self, TransportError> {
        if image.len() != spec.img * spec.img {
            return Err(HeError::Mismatch(format!(
                "image has {} pixels, spec wants {}x{}",
                image.len(),
                spec.img,
                spec.img
            ))
            .into());
        }
        if spec.classes == 0 {
            return Err(HeError::Mismatch("need at least one output class".into()).into());
        }
        Ok(ResumablePipeline {
            spec: *spec,
            weights: weights.clone(),
            image: image.to_vec(),
            stage: 0,
            pooled1: Vec::new(),
            pooled2: Vec::new(),
            logits: Vec::new(),
            final_wire: Vec::new(),
        })
    }

    /// Rebuilds the driver from checkpointed progress.
    ///
    /// # Errors
    ///
    /// [`TransportError::BadCheckpoint`] on malformed or mismatched blobs.
    pub fn restore(
        spec: &LenetLikeSpec,
        weights: &LenetLikeWeights,
        image: &[u64],
        progress: &[u8],
    ) -> Result<Self, TransportError> {
        let mut fresh = Self::new(spec, weights, image)?;
        let mut r = ProgressReader::new(progress, PIPELINE_MAGIC)?;
        let stage = r.u8()?;
        if stage > 3 {
            return Err(bad_progress("unknown pipeline stage"));
        }
        let read_maps = |r: &mut ProgressReader, want_maps: usize, want_len: usize| {
            let count = r.u32()? as usize;
            if count != want_maps {
                return Err(bad_progress("pooled map count mismatch"));
            }
            let mut maps = Vec::with_capacity(count);
            for _ in 0..count {
                let m = r.u64s()?;
                if m.len() != want_len {
                    return Err(bad_progress("pooled map size mismatch"));
                }
                maps.push(m);
            }
            Ok(maps)
        };
        let p1 = spec.img / 2;
        let p2 = p1 / 2;
        if stage >= 1 {
            fresh.pooled1 = read_maps(&mut r, spec.conv1_ch, p1 * p1)?;
        }
        if stage >= 2 {
            fresh.pooled2 = read_maps(&mut r, spec.conv2_ch, p2 * p2)?;
        }
        if stage >= 3 {
            let logits = r.u64s()?;
            if logits.len() != spec.classes {
                return Err(bad_progress("logit count mismatch"));
            }
            fresh.logits = logits;
        }
        fresh.final_wire = r.bytes()?.to_vec();
        r.finish()?;
        fresh.stage = stage;
        Ok(fresh)
    }

    /// Raw class scores (complete once [`Self::is_done`]).
    pub fn logits(&self) -> &[u64] {
        &self.logits
    }

    /// Predicted class (argmax of the logits).
    pub fn class(&self) -> usize {
        self.logits
            .iter()
            .enumerate()
            .max_by_key(|&(_, v)| *v)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Runs the next network stage.
    ///
    /// # Errors
    ///
    /// Transport and HE errors as [`crate::pipeline::run_encrypted`];
    /// [`choco::transport::TransportError::SentinelMismatch`] when the FC
    /// reply contradicts the client-computed class-0 logit.
    pub fn step<C: Channel>(
        &mut self,
        session: &mut Session<Bfv, C>,
    ) -> Result<(), TransportError> {
        let spec = self.spec;
        let p1 = spec.img / 2;
        match self.stage {
            0 => {
                let maps1 = run_encrypted_conv_layer(
                    session,
                    std::slice::from_ref(&self.image),
                    &self.weights.conv1,
                    spec.img,
                    spec.img,
                    spec.filter,
                )?;
                self.pooled1 = maps1
                    .iter()
                    .map(|m| max_pool2x2(&requantize(m), spec.img, spec.img))
                    .collect();
                self.stage = 1;
            }
            1 => {
                let maps2 = run_encrypted_conv_layer(
                    session,
                    &self.pooled1,
                    &self.weights.conv2,
                    p1,
                    p1,
                    spec.filter,
                )?;
                self.pooled2 = maps2
                    .iter()
                    .map(|m| max_pool2x2(&requantize(m), p1, p1))
                    .collect();
                self.stage = 2;
            }
            2 => {
                let row = session.server().context().degree() / 2;
                let t = session.server().context().plain_modulus();
                let mut features = Vec::with_capacity(spec.fc_inputs());
                for m in &self.pooled2 {
                    features.extend_from_slice(m);
                }
                // The sentinel: class 0's logit, computed exactly in
                // plaintext (mod t, u128 accumulation) from state the
                // client already holds.
                let expected0 =
                    self.weights.fc[0]
                        .iter()
                        .zip(&features)
                        .fold(0u64, |acc, (w, x)| {
                            ((acc as u128 + (*w as u128 * *x as u128) % t as u128) % t as u128)
                                as u64
                        });
                let ct = session
                    .client_mut()
                    .encrypt_slots(&replicate_for_matvec(&features, row))?;
                let uploaded = session.upload(&ct)?;
                let at_server = session.guard(&uploaded)?;
                session.compute_tick()?;
                let logits_ct = matvec_diagonals(session.server(), &at_server, &self.weights.fc)?;
                let (back, slots) = session.download_checked(&logits_ct, &[(0, expected0)], 0.0)?;
                self.final_wire = Bfv::ct_to_wire(&back);
                session.ledger_mut().end_round();
                self.logits = slots[..spec.classes].to_vec();
                self.stage = 3;
            }
            _ => {}
        }
        Ok(())
    }
}

impl ResumableWorkload for ResumablePipeline {
    fn progress(&self) -> Vec<u8> {
        let mut out = PIPELINE_MAGIC.to_vec();
        out.push(self.stage);
        if self.stage >= 1 {
            out.extend_from_slice(&(self.pooled1.len() as u32).to_le_bytes());
            for m in &self.pooled1 {
                put_u64s(&mut out, m);
            }
        }
        if self.stage >= 2 {
            out.extend_from_slice(&(self.pooled2.len() as u32).to_le_bytes());
            for m in &self.pooled2 {
                put_u64s(&mut out, m);
            }
        }
        if self.stage >= 3 {
            put_u64s(&mut out, &self.logits);
        }
        put_bytes(&mut out, &self.final_wire);
        out
    }

    fn is_done(&self) -> bool {
        self.stage >= 3
    }

    fn final_ct_wire(&self) -> &[u8] {
        &self.final_wire
    }
}

// ---------------------------------------------------------------------------
// K-Means
// ---------------------------------------------------------------------------

const KMEANS_MAGIC: &[u8; 4] = b"RKM1";

/// Round-granular resumable K-Means (CKKS): each step is one full
/// iteration — an encrypted distance round per centroid plus the client's
/// plaintext assignment/update — mirroring
/// [`crate::distance::kmeans_encrypted`].
#[derive(Debug, Clone)]
pub struct ResumableKmeans {
    variant: PackingVariant,
    points: Vec<Vec<f64>>,
    max_iterations: u32,
    tolerance: f64,
    centroids: Vec<Vec<f64>>,
    iterations: u32,
    converged: bool,
    finished: bool,
    final_wire: Vec<u8>,
}

impl ResumableKmeans {
    /// Starts a fresh clustering run.
    ///
    /// # Errors
    ///
    /// [`HeError::Mismatch`] (wrapped) for empty points or centroids.
    pub fn new(
        variant: PackingVariant,
        points: &[Vec<f64>],
        initial_centroids: &[Vec<f64>],
        max_iterations: u32,
        tolerance: f64,
    ) -> Result<Self, TransportError> {
        if points.is_empty() || initial_centroids.is_empty() {
            return Err(HeError::Mismatch(
                "k-means needs at least one point and one centroid".into(),
            )
            .into());
        }
        Ok(ResumableKmeans {
            variant,
            points: points.to_vec(),
            max_iterations,
            tolerance,
            centroids: initial_centroids.to_vec(),
            iterations: 0,
            converged: false,
            finished: max_iterations == 0,
            final_wire: Vec::new(),
        })
    }

    /// Rebuilds the driver from checkpointed progress.
    ///
    /// # Errors
    ///
    /// [`TransportError::BadCheckpoint`] on malformed or mismatched blobs.
    pub fn restore(
        variant: PackingVariant,
        points: &[Vec<f64>],
        initial_centroids: &[Vec<f64>],
        max_iterations: u32,
        tolerance: f64,
        progress: &[u8],
    ) -> Result<Self, TransportError> {
        let mut fresh = Self::new(
            variant,
            points,
            initial_centroids,
            max_iterations,
            tolerance,
        )?;
        let mut r = ProgressReader::new(progress, KMEANS_MAGIC)?;
        let iterations = r.u32()?;
        let converged = r.u8()?;
        let finished = r.u8()?;
        let k = r.u32()? as usize;
        if k != initial_centroids.len() {
            return Err(bad_progress("centroid count mismatch"));
        }
        let d = points[0].len();
        let mut centroids = Vec::with_capacity(k);
        for _ in 0..k {
            let c = r.f64s()?;
            if c.len() != d {
                return Err(bad_progress("centroid dimension mismatch"));
            }
            centroids.push(c);
        }
        let final_wire = r.bytes()?.to_vec();
        r.finish()?;
        if converged > 1 || finished > 1 {
            return Err(bad_progress("flag byte out of range"));
        }
        if iterations > max_iterations {
            return Err(bad_progress("iteration counter exceeds the budget"));
        }
        fresh.iterations = iterations;
        fresh.converged = converged == 1;
        fresh.finished = finished == 1;
        fresh.centroids = centroids;
        fresh.final_wire = final_wire;
        Ok(fresh)
    }

    /// Current centroids (final once [`Self::is_done`]).
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Iterations executed so far.
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// Whether the run converged within tolerance.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// Runs one K-Means iteration.
    ///
    /// # Errors
    ///
    /// Transport and HE errors from the distance kernels.
    pub fn step<C: Channel>(
        &mut self,
        session: &mut Session<Ckks, C>,
    ) -> Result<(), TransportError> {
        if self.is_done() {
            return Ok(());
        }
        let mut dists = Vec::with_capacity(self.centroids.len());
        let mut last_wire = Vec::new();
        for c in &self.centroids {
            session.compute_tick()?;
            let res = encrypted_distances(self.variant, session, c, &self.points)?;
            last_wire = res.reply_wire;
            dists.push(res.distances);
        }
        self.final_wire = last_wire;
        self.iterations += 1;
        let updated = kmeans_update(&self.points, &dists);
        let movement = self
            .centroids
            .iter()
            .zip(&updated)
            .flat_map(|(a, b)| a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)))
            .fold(0.0f64, f64::max);
        self.centroids = updated;
        if movement < self.tolerance * self.tolerance {
            self.converged = true;
        }
        if self.converged || self.iterations >= self.max_iterations {
            self.finished = true;
        }
        Ok(())
    }
}

impl ResumableWorkload for ResumableKmeans {
    fn progress(&self) -> Vec<u8> {
        let mut out = KMEANS_MAGIC.to_vec();
        out.extend_from_slice(&self.iterations.to_le_bytes());
        out.push(self.converged as u8);
        out.push(self.finished as u8);
        out.extend_from_slice(&(self.centroids.len() as u32).to_le_bytes());
        for c in &self.centroids {
            put_f64s(&mut out, c);
        }
        put_bytes(&mut out, &self.final_wire);
        out
    }

    fn is_done(&self) -> bool {
        self.finished
    }

    fn final_ct_wire(&self) -> &[u8] {
        &self.final_wire
    }
}

/// Whether a step failure means "the link died — redial and resume" (as
/// opposed to a protocol or HE error that a reconnect cannot fix).
///
/// Over a real socket, a dead connection surfaces either directly as
/// [`TransportError::Disconnected`] or laundered through the session's
/// retry machinery as [`TransportError::RetriesExhausted`] /
/// [`TransportError::TimeoutExceeded`] (the sticky socket error makes
/// every remaining attempt see a dry pipe).
pub fn is_reconnectable(e: &TransportError) -> bool {
    matches!(
        e,
        TransportError::Disconnected(_)
            | TransportError::RetriesExhausted { .. }
            | TransportError::TimeoutExceeded { .. }
    )
}

/// Drives a resumable workload over a real TCP session to completion,
/// absorbing link failures: every successful step refreshes the client's
/// checkpoint, and when the link dies the client redials (with the
/// [`Redialer`]'s bounded backoff), rebuilds the session with
/// [`Session::resume`] (the reconnect handshake is billed to
/// [`choco::CommLedger::recovery_bytes`]), restores the workload from the
/// checkpointed progress blob and runs its `recover` hook.
///
/// `restore` maps a progress blob back to a workload; `step` advances it
/// by one step; `recover` re-establishes server-side state after a resume
/// (pass a no-op for workloads that keep no ciphertext resident
/// server-side).
///
/// # Errors
///
/// The last step error once `max_reconnects` redials have been spent, any
/// non-reconnectable step error, and redial/resume/restore failures.
pub fn drive_over_tcp<S, W, R, T, V>(
    redialer: &Redialer,
    session: Session<S, TcpChannel>,
    workload: W,
    restore: R,
    step: T,
    recover: V,
    max_reconnects: u32,
) -> Result<(Session<S, TcpChannel>, W), TransportError>
where
    S: HeScheme,
    W: ResumableWorkload,
    R: Fn(&[u8]) -> Result<W, TransportError>,
    T: Fn(&mut W, &mut Session<S, TcpChannel>) -> Result<(), TransportError>,
    V: Fn(&mut W, &mut Session<S, TcpChannel>) -> Result<(), TransportError>,
{
    let mut session = session;
    let mut workload = workload;
    let mut ck = session.checkpoint(&workload.progress());
    let mut reconnects = 0u32;
    while !workload.is_done() {
        match step(&mut workload, &mut session) {
            Ok(()) => ck = session.checkpoint(&workload.progress()),
            Err(e) if is_reconnectable(&e) => {
                if reconnects >= max_reconnects {
                    return Err(e);
                }
                reconnects += 1;
                // Drop the dead session first: closing its socket before
                // redialing keeps the server's admission count honest.
                drop(session);
                let (up, down) = redialer.redial()?;
                let (resumed, progress) = Session::<S, TcpChannel>::resume(&ck, up, down)?;
                session = resumed;
                workload = restore(&progress)?;
                recover(&mut workload, &mut session)?;
            }
            Err(e) => return Err(e),
        }
    }
    Ok((session, workload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::{pagerank_encrypted, pagerank_plain, pagerank_rotation_steps};
    use crate::pipeline::{run_plain, seeded_weights};
    use choco::transport::LinkConfig;
    use choco_he::params::HeParams;

    fn small_graph() -> Graph {
        Graph::from_adjacency(&[vec![1, 2], vec![2], vec![0], vec![0, 2]])
    }

    #[test]
    fn resumable_pagerank_matches_one_shot_runner_exactly() {
        let g = small_graph();
        let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 24).unwrap();
        let oneshot =
            pagerank_encrypted::<Bfv>(&g, 0.85, 4, 1, &params, 10, LinkConfig::direct()).unwrap();

        let steps = pagerank_rotation_steps(g.len());
        let mut session = Session::<Bfv>::direct(&params, b"pagerank", &steps).unwrap();
        let mut w = ResumablePagerank::<Bfv>::new(&g, 0.85, 4, 1, 10).unwrap();
        while !w.is_done() {
            w.step(&mut session).unwrap();
        }
        // Same seed, same draw schedule: bit-identical ranks and matching
        // primary ledger lines.
        assert_eq!(w.ranks(), &oneshot.ranks[..]);
        assert_eq!(session.ledger().upload_bytes, oneshot.ledger.upload_bytes);
        assert_eq!(session.ledger().rounds, oneshot.ledger.rounds);
        assert!(!w.final_ct_wire().is_empty());
    }

    #[test]
    fn resumable_pipeline_matches_plain_twin_and_checks_sentinel() {
        let spec = LenetLikeSpec::tiny();
        let weights = seeded_weights(&spec, b"pipeline test");
        let image: Vec<u64> = (0..spec.img * spec.img)
            .map(|i| ((i * 7 + 3) % 16) as u64)
            .collect();
        let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 18).unwrap();
        let steps = crate::pipeline::all_rotation_steps(&spec, params.degree() / 2);
        let mut session = Session::<Bfv>::direct(&params, b"pipe", &steps).unwrap();
        let mut w = ResumablePipeline::new(&spec, &weights, &image).unwrap();
        while !w.is_done() {
            w.step(&mut session).unwrap();
        }
        let t = session.server().context().plain_modulus();
        let (logits, class) = run_plain(&spec, &weights, &image, t);
        assert_eq!(w.logits(), &logits[..]);
        assert_eq!(w.class(), class);
    }

    #[test]
    fn progress_blobs_roundtrip_and_reject_garbage() {
        let g = small_graph();
        let mut w = ResumablePagerank::<Bfv>::new(&g, 0.85, 4, 1, 10).unwrap();
        w.done = 2;
        w.ranks = vec![0.4, 0.3, 0.2, 0.1];
        w.final_wire = vec![7; 33];
        let blob = w.progress();
        let back = ResumablePagerank::<Bfv>::restore(&g, 0.85, 4, 1, 10, &blob).unwrap();
        assert_eq!(back.progress(), blob);

        // Truncations and a wrong magic are typed errors, never panics.
        for cut in 0..blob.len() {
            let err = ResumablePagerank::<Bfv>::restore(&g, 0.85, 4, 1, 10, &blob[..cut]);
            assert!(matches!(err, Err(TransportError::BadCheckpoint(_))));
        }
        let err = ResumablePagerank::<Bfv>::restore(&g, 0.85, 4, 1, 10, KMEANS_MAGIC);
        assert!(matches!(err, Err(TransportError::BadCheckpoint(_))));
        // A rank vector that doesn't match the graph is rejected.
        let other = Graph::from_adjacency(&[vec![1], vec![0]]);
        let err = ResumablePagerank::<Bfv>::restore(&other, 0.85, 4, 1, 10, &blob);
        assert!(matches!(err, Err(TransportError::BadCheckpoint(_))));
    }

    #[test]
    fn plain_reference_still_converges() {
        // Anchor: the resumable driver's answer is compared against the
        // one-shot runner above; that runner is itself anchored here.
        let g = small_graph();
        let r = pagerank_plain(&g, 0.85, 50);
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
