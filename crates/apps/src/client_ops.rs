//! Client-side plaintext operators shared across workloads.
//!
//! At every non-linear boundary of the client-aided protocol (§5.1) the
//! client holds *plaintext* intermediate values, so the non-linear stages
//! are ordinary integer code. These operators are used by the LeNet-style
//! pipeline and the DNN layer runners alike — one implementation, exercised
//! identically by the encrypted path and its plaintext twin.

/// Requantizes accumulated values back to 4 bits, scaling by the observed
/// maximum (dynamic activation quantization — the client sees plaintext
/// values at every boundary, so it can pick the scale exactly).
pub fn requantize(values: &[u64]) -> Vec<u64> {
    let max = values.iter().copied().max().unwrap_or(0).max(1);
    let bits = 64 - max.leading_zeros();
    let shift = bits.saturating_sub(4);
    values.iter().map(|&v| (v >> shift).min(15)).collect()
}

/// 2×2 max pooling over a flattened `h×w` map.
///
/// # Panics
///
/// Panics if `map.len() != h * w`.
pub fn max_pool2x2(map: &[u64], h: usize, w: usize) -> Vec<u64> {
    assert_eq!(map.len(), h * w, "map shape mismatch");
    let (oh, ow) = (h / 2, w / 2);
    let mut out = vec![0u64; oh * ow];
    for y in 0..oh {
        for x in 0..ow {
            let mut m = 0u64;
            for dy in 0..2 {
                for dx in 0..2 {
                    m = m.max(map[(2 * y + dy) * w + 2 * x + dx]);
                }
            }
            out[y * ow + x] = m;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requantize_saturates_at_15() {
        let out = requantize(&[0, 100, 5625]);
        assert_eq!(out[0], 0);
        assert_eq!(out[2], 10); // 5625 >> 9
        assert!(out.iter().all(|&v| v <= 15));
        assert_eq!(requantize(&[3, 7, 15]), vec![3, 7, 15]); // already 4-bit
    }

    #[test]
    fn requantize_handles_empty_and_all_zero_inputs() {
        assert_eq!(requantize(&[]), Vec::<u64>::new());
        assert_eq!(requantize(&[0, 0, 0]), vec![0, 0, 0]);
    }

    #[test]
    fn max_pool_picks_block_maxima() {
        let map = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16];
        assert_eq!(max_pool2x2(&map, 4, 4), vec![6, 8, 14, 16]);
    }

    #[test]
    fn max_pool_is_position_independent_of_block_layout() {
        // Maximum can sit in any corner of the 2×2 block.
        let map = vec![9, 0, 0, 7, 0, 1, 2, 0];
        assert_eq!(max_pool2x2(&map, 2, 4), vec![9, 7]);
    }
}
