//! Communication totals of prior privacy-preserving inference protocols
//! (Figure 10's comparison points).
//!
//! The paper compares CHOCO's measured communication against seven prior
//! systems for single-image MNIST (vs. LeNet-5-Large) and CIFAR-10
//! (vs. SqueezeNet) inference, including offline preprocessing traffic.
//! The original artifacts are unavailable here, so each comparison point is
//! an analytic constant reconstructed from the protocol papers' published
//! totals where available and otherwise from the improvement factors this
//! paper reports (the 14×–2948× range of §1/§5.3, with ≈90× vs. Gazelle).
//! Treat them as the *shape* of Figure 10, not fresh measurements.

/// A prior protocol's published/reconstructed communication for one
/// single-image inference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolComm {
    /// Protocol name.
    pub name: &'static str,
    /// Benchmark dataset.
    pub dataset: &'static str,
    /// Total communication in megabytes (offline + online).
    pub comm_mb: f64,
    /// Whether the protocol is client-aided (needs per-layer interaction).
    pub client_aided: bool,
}

/// The Figure 10 comparison set for MNIST (vs. CHOCO's LeNet-5-Large).
pub fn mnist_protocols() -> Vec<ProtocolComm> {
    vec![
        ProtocolComm {
            name: "LoLa",
            dataset: "MNIST",
            comm_mb: 36.4,
            client_aided: false,
        },
        ProtocolComm {
            name: "Gazelle",
            dataset: "MNIST",
            comm_mb: 234.0,
            client_aided: true,
        },
        ProtocolComm {
            name: "MiniONN",
            dataset: "MNIST",
            comm_mb: 657.5,
            client_aided: true,
        },
        ProtocolComm {
            name: "SecureML",
            dataset: "MNIST",
            comm_mb: 791.0,
            client_aided: true,
        },
        ProtocolComm {
            name: "CryptoNets",
            dataset: "MNIST",
            comm_mb: 372.0,
            client_aided: false,
        },
    ]
}

/// The Figure 10 comparison set for CIFAR-10 (vs. CHOCO's SqueezeNet).
pub fn cifar_protocols() -> Vec<ProtocolComm> {
    vec![
        ProtocolComm {
            name: "Gazelle",
            dataset: "CIFAR-10",
            comm_mb: 1242.0,
            client_aided: true,
        },
        ProtocolComm {
            name: "MiniONN",
            dataset: "CIFAR-10",
            comm_mb: 9272.0,
            client_aided: true,
        },
        ProtocolComm {
            name: "DELPHI",
            dataset: "CIFAR-10",
            comm_mb: 2100.0,
            client_aided: true,
        },
        ProtocolComm {
            name: "XONN",
            dataset: "CIFAR-10",
            comm_mb: 40_700.0,
            client_aided: true,
        },
    ]
}

/// Improvement factor of a CHOCO measurement over a comparison point.
pub fn improvement(choco_mb: f64, other: &ProtocolComm) -> f64 {
    other.comm_mb / choco_mb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnn::{client_aided_plan, Network};
    use choco_he::params::HeParams;

    #[test]
    fn improvement_range_matches_paper_claims() {
        // CHOCO's measured totals for the two comparison networks.
        let lenet = client_aided_plan(&Network::lenet_large(), &HeParams::set_b());
        let sqz = client_aided_plan(&Network::squeezenet(), &HeParams::set_a());
        let lenet_mb = lenet.comm_bytes as f64 / 1e6;
        let sqz_mb = sqz.comm_bytes as f64 / 1e6;

        let mut factors = Vec::new();
        for p in mnist_protocols() {
            factors.push(improvement(lenet_mb, &p));
        }
        for p in cifar_protocols() {
            factors.push(improvement(sqz_mb, &p));
        }
        let min = factors.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = factors.iter().cloned().fold(0.0, f64::max);
        // Paper: improvements range 14×–2948×. Our measured ciphertext
        // stream differs in constants; require the same order of magnitude.
        assert!(min > 3.0, "min improvement {min}×");
        assert!(max > 500.0, "max improvement {max}×");
        assert!(
            factors.iter().all(|&f| f > 1.0),
            "CHOCO must beat every baseline"
        );
    }

    #[test]
    fn xonn_is_the_heaviest_baseline() {
        let max = cifar_protocols()
            .into_iter()
            .max_by(|a, b| a.comm_mb.partial_cmp(&b.comm_mb).unwrap())
            .unwrap();
        assert_eq!(max.name, "XONN");
    }

    #[test]
    fn gazelle_is_the_closest_comparable() {
        // §5.3: "for the most closely comparable protocol, namely Gazelle,
        // CHOCO still provides nearly 90× improvement".
        let lenet = client_aided_plan(&Network::lenet_large(), &HeParams::set_b());
        let gazelle = mnist_protocols()
            .into_iter()
            .find(|p| p.name == "Gazelle")
            .unwrap();
        let f = improvement(lenet.comm_bytes as f64 / 1e6, &gazelle);
        assert!((10.0..500.0).contains(&f), "Gazelle improvement {f}×");
    }
}
