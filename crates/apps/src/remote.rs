//! Client-side remote-offload drivers for the four workload circuits.
//!
//! [`RemoteWorkload::prepare`] packages everything one tenant session
//! needs to evaluate a [`crate::circuits::WorkloadCircuit`] on a
//! `choco-serve` evaluator: the compiled program and its wire form
//! ([`PreparedProgram`]), the session's evaluation keys (relinearization
//! plus the workload's provisioned Galois steps), and deterministic
//! encrypted inputs for every `Input` node the circuit declares.
//!
//! The same struct also runs the **local reference execution**
//! ([`RemoteWorkload::local_outputs`]) through the identical compiled
//! artifact, which is what makes the e2e suite's strongest claim cheap to
//! state: remote evaluation returns *bit-identical ciphertext wire bytes*
//! to evaluating locally, batched or not, warm cache or cold.
//!
//! Input values are a deterministic fixed-point ramp quantized through
//! [`CompilerScheme::quantize_const`], so BFV sessions get integer slots
//! and CKKS sessions get the raw reals — the same client-side quantization
//! boundary the paper's workloads use.

use crate::circuits::WorkloadCircuit;
use choco::compiler::{
    compile, CompileError, CompiledProgram, CompilerOptions, CompilerScheme, Op,
};
use choco::remote::{PreparedProgram, RemoteEvaluator};
use choco::transport::tcp::TcpOptions;
use choco::transport::{RetryPolicy, TransportError};
use choco_he::params::{HeParams, SchemeType};
use choco_he::HeError;
use choco_prng::Blake3Rng;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The compiler options the remote drivers pin — the same waterline the
/// circuit verification tests use (`scale 2^30`, 45-bit rescale primes,
/// 3 levels).
pub fn workload_options() -> CompilerOptions {
    CompilerOptions {
        scale_bits: 30,
        prime_bits: 45,
        max_levels: 3,
    }
}

/// Test-size (insecure) parameter sets matching [`workload_options`]:
/// degree 1024, three data levels, and — for CKKS — an encoder scale equal
/// to the compiler waterline, so encrypted inputs land exactly where the
/// compiled rescale schedule expects them.
///
/// # Errors
///
/// Propagates parameter-shape errors (none for these pinned shapes).
pub fn workload_params(scheme: SchemeType) -> Result<HeParams, HeError> {
    match scheme {
        SchemeType::Bfv => HeParams::bfv_insecure(1024, &[45, 45, 46], 17),
        SchemeType::Ckks => HeParams::ckks_insecure(1024, &[45, 45, 45, 46], 30),
    }
}

/// Errors from preparing a workload for remote evaluation.
#[derive(Debug)]
pub enum DriverError {
    /// The circuit failed to compile at the driver options.
    Compile(CompileError),
    /// The program wire form was rejected (compiled nodes, size caps).
    Wire(TransportError),
    /// Context, key generation, or input encryption failed.
    He(HeError),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::Compile(e) => write!(f, "compile failed: {e}"),
            DriverError::Wire(e) => write!(f, "program wire rejected: {e}"),
            DriverError::He(e) => write!(f, "he error: {e}"),
        }
    }
}

impl std::error::Error for DriverError {}

impl From<CompileError> for DriverError {
    fn from(e: CompileError) -> Self {
        DriverError::Compile(e)
    }
}

impl From<TransportError> for DriverError {
    fn from(e: TransportError) -> Self {
        DriverError::Wire(e)
    }
}

impl From<HeError> for DriverError {
    fn from(e: HeError) -> Self {
        DriverError::He(e)
    }
}

/// One workload, fully provisioned for a remote-evaluation session under
/// scheme `S`: program (wire + compiled twin), session keys, and encrypted
/// inputs.
pub struct RemoteWorkload<S: CompilerScheme> {
    /// Workload name (`"pipeline"`, `"dnn_conv"`, …).
    pub name: &'static str,
    /// The parameter set the session was provisioned under.
    pub params: HeParams,
    /// The compiler options baked into `prepared`'s program reference.
    pub options: CompilerOptions,
    /// The program's wire form + content-addressed reference.
    pub prepared: PreparedProgram,
    /// The locally compiled twin (the reference executor).
    pub compiled: CompiledProgram,
    /// The scheme context.
    pub ctx: S::Context,
    /// The full key bundle (client side keeps the secret key).
    pub keys: S::KeyBundle,
    /// Relinearization key — uploaded at session setup.
    pub relin: S::RelinKey,
    /// Galois keys over the workload's provisioned rotation steps —
    /// uploaded at session setup.
    pub galois: S::GaloisKeys,
    /// One encrypted input per `Input` node, in declaration order.
    pub inputs: Vec<(String, S::Ciphertext)>,
}

impl<S: CompilerScheme> RemoteWorkload<S> {
    /// Compiles `circuit` at [`workload_options`], generates session keys
    /// from `seed`, and encrypts a deterministic fixed-point ramp for each
    /// declared input (offset per input so multi-input circuits like
    /// `distance` get distinct operands).
    ///
    /// # Errors
    ///
    /// Propagates compile, wire-encoding, and HE failures.
    pub fn prepare(
        circuit: &WorkloadCircuit,
        params: &HeParams,
        seed: &[u8],
    ) -> Result<Self, DriverError> {
        let options = workload_options();
        let prepared = PreparedProgram::new(&circuit.program, &options)?;
        let compiled = compile(&circuit.program, &options)?;
        let ctx = S::context(params)?;
        let mut rng = Blake3Rng::from_seed(seed);
        let keys = S::keygen(&ctx, &mut rng);
        let relin = S::relin_key(&ctx, &keys, &mut rng)?;
        let galois = S::galois_keys(&ctx, &keys, &circuit.galois_steps, &mut rng)?;

        let width = S::slot_width(&ctx);
        let mut inputs = Vec::new();
        for op in circuit.program.ops() {
            if let Op::Input(name) = op {
                let offset = inputs.len();
                let reals: Vec<f64> = (0..width)
                    .map(|j| (((j + 3 * offset) % 13) as f64 - 6.0) / 8.0)
                    .collect();
                let values = S::quantize_const(&ctx, &reals, options.scale_bits);
                let ct = S::encrypt(&ctx, &keys, &values, &mut rng)?;
                inputs.push((name.clone(), ct));
            }
        }
        Ok(RemoteWorkload {
            name: circuit.name,
            params: params.clone(),
            options,
            prepared,
            compiled,
            ctx,
            keys,
            relin,
            galois,
            inputs,
        })
    }

    /// The inputs as the borrowed slice shape
    /// [`choco::remote::RemoteEvaluator::evaluate`] takes.
    pub fn input_refs(&self) -> Vec<(&str, &S::Ciphertext)> {
        self.inputs
            .iter()
            .map(|(name, ct)| (name.as_str(), ct))
            .collect()
    }

    /// Executes the compiled program locally on the same encrypted inputs
    /// — the bit-identity reference for the remote path.
    ///
    /// # Errors
    ///
    /// Propagates execution failures.
    pub fn local_outputs(&self) -> Result<Vec<S::Ciphertext>, HeError> {
        let named: HashMap<String, S::Ciphertext> = self.inputs.iter().cloned().collect();
        let prog = &self.compiled;
        // choco-lint: allow(VERIFY001) `prog` comes straight out of compile() in prepare()
        prog.execute_encrypted::<S>(&self.ctx, &named, &self.relin, &self.galois)
    }

    /// The local reference outputs as ciphertext wire bytes.
    ///
    /// # Errors
    ///
    /// Propagates execution failures.
    pub fn local_output_wires(&self) -> Result<Vec<Vec<u8>>, HeError> {
        Ok(self
            .local_outputs()?
            .iter()
            .map(|ct| S::ct_to_wire(ct))
            .collect())
    }

    /// Opens a fault-tolerant evaluator session for this workload:
    /// [`RemoteEvaluator::connect_reliable`] with this session's
    /// parameters and evaluation keys. The shared `addr` handle lets a
    /// supervisor repoint the client at a restarted server mid-run.
    ///
    /// # Errors
    ///
    /// Propagates dial/handshake errors once the retry budget is spent.
    pub fn connect_reliable(
        &self,
        addr: Arc<Mutex<String>>,
        seed: &[u8],
        tenant: u64,
        session: u64,
        opts: &TcpOptions,
        policy: RetryPolicy,
    ) -> Result<RemoteEvaluator<S>, TransportError> {
        RemoteEvaluator::connect_reliable(
            addr,
            seed,
            tenant,
            session,
            &self.params,
            &self.relin,
            &self.galois,
            opts,
            policy,
        )
    }

    /// Drives `copies` pipelined evaluations of this workload through
    /// `evaluator` to completion — across server loss, shed deadlines, and
    /// journal-guided resends when the session was opened with
    /// [`RemoteWorkload::connect_reliable`] — and returns each copy's
    /// output ciphertext wire bytes, ready for bit-identity comparison
    /// against [`RemoteWorkload::local_output_wires`].
    ///
    /// # Errors
    ///
    /// Propagates transport errors and terminal typed refusals.
    pub fn drive_to_completion(
        &self,
        evaluator: &mut RemoteEvaluator<S>,
        copies: usize,
    ) -> Result<Vec<Vec<Vec<u8>>>, TransportError> {
        let refs = self.input_refs();
        let batch: Vec<&[(&str, &S::Ciphertext)]> = (0..copies).map(|_| refs.as_slice()).collect();
        let results = evaluator.evaluate_batch(&self.prepared, &batch)?;
        Ok(results
            .iter()
            .map(|cts| cts.iter().map(|ct| S::ct_to_wire(ct)).collect())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuits::all_workloads;
    use choco_he::{Bfv, Ckks};

    #[test]
    fn every_workload_prepares_under_both_schemes() {
        for w in all_workloads() {
            let bfv = RemoteWorkload::<Bfv>::prepare(
                &w,
                &workload_params(SchemeType::Bfv).unwrap(),
                b"driver test bfv",
            )
            .unwrap_or_else(|e| panic!("{}: bfv prepare failed: {e}", w.name));
            assert!(!bfv.inputs.is_empty());
            let ckks = RemoteWorkload::<Ckks>::prepare(
                &w,
                &workload_params(SchemeType::Ckks).unwrap(),
                b"driver test ckks",
            )
            .unwrap_or_else(|e| panic!("{}: ckks prepare failed: {e}", w.name));
            assert_eq!(bfv.prepared.program_ref, ckks.prepared.program_ref);
            // The distance workload is the suite's two-input circuit.
            if w.name == "distance" {
                assert_eq!(bfv.inputs.len(), 2);
            }
        }
    }

    #[test]
    fn local_reference_is_deterministic() {
        let w = &all_workloads()[2]; // pagerank: depth-2, single input
        let params = workload_params(SchemeType::Bfv).unwrap();
        let a = RemoteWorkload::<Bfv>::prepare(w, &params, b"det seed").unwrap();
        let b = RemoteWorkload::<Bfv>::prepare(w, &params, b"det seed").unwrap();
        assert_eq!(
            a.local_output_wires().unwrap(),
            b.local_output_wires().unwrap()
        );
    }
}
