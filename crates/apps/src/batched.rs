//! Batching-style (throughput-oriented) encrypted algorithms (§2.1).
//!
//! The paper contrasts two packing philosophies: *packed* algorithms
//! (Gazelle/LoLa/CHOCO) put one input's many elements in one ciphertext and
//! optimize latency; *batching* algorithms (CryptoNets, nGraph-HE) put one
//! element from many inputs in each slot and optimize throughput — SIMD
//! across the batch, no rotations at all, but one ciphertext **per
//! element**, which is hopeless for single-image IoT inference.
//!
//! Both the real kernel ([`batched_matvec`]) and the communication model
//! that exposes the crossover ([`batched_comm_per_input`] vs. the packed
//! plan) are implemented here.

use choco::transport::{Channel, Session, TransportError};
use choco_he::bfv::Ciphertext;
use choco_he::params::HeParams;
use choco_he::{Bfv, HeError};

/// Communication bytes *per input* for a batched boundary carrying
/// `elements` values with `batch` inputs amortizing each ciphertext.
pub fn batched_comm_per_input(elements: usize, batch: usize, params: &HeParams) -> f64 {
    let batch = batch.max(1);
    elements as f64 * params.ciphertext_bytes() as f64 / batch as f64
}

/// Batch size at which the batched packing's per-input communication drops
/// below a packed implementation that needs `packed_cts` ciphertexts for
/// the same boundary. Returns `None` if even a full batch (N slots) cannot
/// catch up.
pub fn batched_breakeven(elements: usize, packed_cts: usize, params: &HeParams) -> Option<usize> {
    let slots = params.slot_count();
    let needed = elements.div_ceil(packed_cts);
    (needed <= slots).then_some(needed)
}

/// Runs a batched matrix-vector product: `B` inputs of `n` features flow
/// through `n` input ciphertexts (slot `b` of ciphertext `i` holds input
/// `b`'s feature `i`); the server computes `m` output ciphertexts with only
/// plaintext multiplies and additions — zero rotations, the batching
/// hallmark.
///
/// Returns the `B × m` outputs.
///
/// # Errors
///
/// Propagates transport and HE errors; an empty batch, ragged
/// inputs/weights, or a batch exceeding the slot capacity are reported as
/// [`HeError::Mismatch`] wrapped in [`TransportError::He`].
pub fn batched_matvec<C: Channel>(
    session: &mut Session<Bfv, C>,
    inputs: &[Vec<u64>],
    weights: &[Vec<u64>],
) -> Result<Vec<Vec<u64>>, TransportError> {
    let batch = inputs.len();
    if batch == 0 {
        return Err(HeError::Mismatch("need at least one input".into()).into());
    }
    let n = inputs[0].len();
    if inputs.iter().any(|x| x.len() != n) {
        return Err(HeError::Mismatch("ragged inputs".into()).into());
    }
    let m = weights.len();
    if weights.iter().any(|w| w.len() != n) {
        return Err(HeError::Mismatch("ragged weights".into()).into());
    }
    let row = session.server().context().degree() / 2;
    if batch > row {
        return Err(HeError::Mismatch("batch exceeds slot capacity".into()).into());
    }

    // Client: one ciphertext per feature, batch across slots.
    let mut feature_cts = Vec::with_capacity(n);
    for i in 0..n {
        let slots: Vec<u64> = inputs.iter().map(|x| x[i]).collect();
        let ct = session.client_mut().encrypt_slots(&slots)?;
        feature_cts.push(session.upload(&ct)?);
    }

    // Server: y_o = Σ_i w[o][i] · x_i — plain multiplies + adds only.
    let mut replies = Vec::with_capacity(m);
    {
        let server = session.server();
        let eval = server.evaluator();
        for w in weights {
            let mut acc: Option<Ciphertext> = None;
            for (i, ct) in feature_cts.iter().enumerate() {
                if w[i] == 0 {
                    continue;
                }
                let wvec = vec![w[i]; row];
                let wpt = server.encode(&wvec)?;
                let term = eval.multiply_plain(ct, &wpt);
                acc = Some(match acc {
                    None => term,
                    Some(a) => eval.add(&a, &term)?,
                });
            }
            replies.push(acc.unwrap_or_else(|| feature_cts[0].clone()));
        }
    }
    let mut outputs = Vec::with_capacity(m);
    for reply in &replies {
        outputs.push(session.download(reply)?);
    }
    session.ledger_mut().end_round();

    // Client: decrypt each output ciphertext; slot b holds input b's result.
    let mut out = vec![vec![0u64; m]; batch];
    for (o, ct) in outputs.iter().enumerate() {
        let slots = session.client_mut().decrypt_slots(ct)?;
        for (b, row_out) in out.iter_mut().enumerate() {
            row_out[o] = slots[b];
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batched_matvec_matches_plain_for_every_batch_entry() {
        let params = HeParams::bfv_insecure(1024, &[45, 45, 46], 20).unwrap();
        let mut session = Session::<Bfv>::direct(&params, b"batched", &[1]).unwrap();
        let t = session.server().context().plain_modulus();

        let batch = 8usize;
        let inputs: Vec<Vec<u64>> = (0..batch)
            .map(|b| (0..4).map(|i| ((b * 4 + i) % 16) as u64).collect())
            .collect();
        let weights = vec![vec![1u64, 2, 3, 4], vec![5, 0, 1, 2], vec![0, 0, 0, 7]];

        let got = batched_matvec(&mut session, &inputs, &weights).unwrap();
        for (b, x) in inputs.iter().enumerate() {
            for (o, w) in weights.iter().enumerate() {
                let want: u64 = w.iter().zip(x).map(|(wi, xi)| wi * xi).sum::<u64>() % t;
                assert_eq!(got[b][o], want, "input {b}, output {o}");
            }
        }
        // n=4 uploads, m=3 downloads — independent of batch size.
        assert_eq!(session.ledger().uploads, 4);
        assert_eq!(session.ledger().downloads, 3);
    }

    #[test]
    fn per_input_comm_amortizes_with_batch() {
        let params = HeParams::set_b();
        let single = batched_comm_per_input(1000, 1, &params);
        let batched = batched_comm_per_input(1000, 256, &params);
        assert!((single / batched - 256.0).abs() < 1e-9);
        // At batch 1, batching is catastrophically worse than a packed
        // implementation of the same boundary (the paper's motivation for
        // packed algorithms on single-image IoT workloads).
        let packed_cts = 1000usize.div_ceil(params.slot_count() / 2);
        let packed = packed_cts * params.ciphertext_bytes();
        assert!(single > 100.0 * packed as f64);
    }

    #[test]
    fn breakeven_batch_is_the_amortization_point() {
        let params = HeParams::set_b();
        // 1000 elements, packed in 1 ct → batched needs the full 1000
        // inputs in flight to tie.
        assert_eq!(batched_breakeven(1000, 1, &params), Some(1000));
        // If packed needs 4 cts, batching ties at 250 concurrent inputs.
        assert_eq!(batched_breakeven(1000, 4, &params), Some(250));
        // More elements than slots with one packed ct → batching can never
        // amortize enough.
        assert_eq!(batched_breakeven(100_000, 1, &params), None);
    }
}
